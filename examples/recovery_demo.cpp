// Recovery demo: run traffic, crash a primary, promote a backup with lock
// reconstruction and roll-forward, and keep serving -- the paper's section
// 4.2.1 flow end to end on the public API.

#include <cstdio>
#include <functional>

#include "src/common/rng.h"
#include "src/txn/recovery.h"

using namespace xenic;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

namespace {

constexpr store::TableId kBank = 0;

store::Value Balance(int64_t v) {
  store::Value out(16, 0);
  store::PutI64(out, 0, v);
  return out;
}

TxnRequest Transfer(store::Key a, store::Key b, int64_t amt) {
  TxnRequest req;
  req.reads = {{kBank, a}, {kBank, b}};
  req.writes = {{kBank, a}, {kBank, b}};
  req.execute = [amt](ExecRound& er) {
    (*er.writes)[0].value = Balance(store::GetI64((*er.reads)[0].value, 0) - amt);
    (*er.writes)[1].value = Balance(store::GetI64((*er.reads)[1].value, 0) + amt);
  };
  return req;
}

}  // namespace

int main() {
  txn::XenicClusterOptions options;
  options.num_nodes = 4;
  options.replication = 3;
  options.tables = {store::TableSpec{kBank, "accounts", 13, 16, 8, 8}};
  txn::HashPartitioner partitioner(options.num_nodes);
  txn::XenicCluster cluster(options, &partitioner);

  constexpr uint64_t kAccounts = 2000;
  for (store::Key k = 0; k < kAccounts; ++k) {
    cluster.LoadReplicated(kBank, k, Balance(1000));
  }
  cluster.StartWorkers();
  txn::ClusterManager manager(&cluster.engine(), options.num_nodes, 500 * sim::kNsPerUs);

  // Phase 1: normal traffic with lease renewals.
  Rng rng(99);
  int committed = 0;
  int remaining = 1500;
  int active = 0;
  std::function<void(store::NodeId)> run_one = [&](store::NodeId n) {
    if (remaining == 0) {
      active--;
      return;
    }
    remaining--;
    manager.RenewLease(n);
    const store::Key a = rng.NextBounded(kAccounts);
    store::Key b = rng.NextBounded(kAccounts);
    while (b == a) {
      b = rng.NextBounded(kAccounts);
    }
    cluster.node(n).Submit(Transfer(a, b, 1), [&, n](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        committed++;
      }
      run_one(n);
    });
  };
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (int c = 0; c < 4; ++c) {
      active++;
      run_one(n);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(100 * sim::kNsPerUs);
  }
  cluster.engine().RunFor(1000 * sim::kNsPerUs);
  std::printf("phase 1: %d transfers committed across 4 nodes\n", committed);

  // Phase 2: node 2 "crashes" -- its lease expires; the cluster manager
  // detects it and we promote its first backup.
  const store::NodeId failed = 2;
  manager.MarkFailed(failed);
  std::printf("phase 2: node %u failed (config epoch now %llu)\n", failed,
              static_cast<unsigned long long>(manager.epoch()));

  const store::NodeId promoted = cluster.map().BackupsOf(failed)[0];
  txn::RecoveryReport report = txn::RecoverShard(cluster, failed, promoted);
  std::printf("recovery: scanned %zu log records, rebuilt %zu locks, "
              "rolled forward %zu txns, discarded %zu\n",
              report.records_scanned, report.locks_rebuilt, report.rolled_forward,
              report.discarded);

  // Phase 3: route the failed shard to the promoted node and verify the
  // data survived by auditing total money on the surviving replicas.
  txn::RemappedPartitioner remap(&partitioner, {{failed, promoted}});
  int64_t total = 0;
  for (store::Key k = 0; k < kAccounts; ++k) {
    const store::NodeId p = remap.PrimaryOf(kBank, k);
    auto r = cluster.datastore(p).table(kBank).Lookup(k);
    if (r) {
      total += store::GetI64(r->value, 0);
    }
  }
  cluster.StopWorkers();
  cluster.engine().Run();
  std::printf("phase 3: shard of node %u now served by node %u; "
              "audited total = %lld (expected %lld)\n",
              failed, promoted, static_cast<long long>(total),
              static_cast<long long>(kAccounts * 1000));
  return total == static_cast<int64_t>(kAccounts) * 1000 ? 0 : 1;
}
