// Quickstart: bring up a simulated Xenic cluster, create a table, and run
// read-write transactions through the public API.
//
//   $ ./quickstart
//
// Walks through: cluster construction, loading data, submitting a
// transaction with an execution closure, and reading results back --
// everything driven by the discrete-event engine.

#include <cstdio>

#include "src/txn/xenic_cluster.h"

using namespace xenic;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

int main() {
  // 1. Describe the deployment: 3 nodes, 2-way replication, one table of
  //    64-byte objects.
  txn::XenicClusterOptions options;
  options.num_nodes = 3;
  options.replication = 2;
  options.tables = {store::TableSpec{/*id=*/0, "kv", /*capacity_log2=*/16,
                                     /*value_size=*/64, /*max_displacement=*/8, 8}};

  txn::HashPartitioner partitioner(options.num_nodes);
  txn::XenicCluster cluster(options, &partitioner);

  // 2. Load some objects (replicated to the primary and its backup).
  for (store::Key k = 1; k <= 100; ++k) {
    store::Value v(64, 0);
    store::PutU64(v, 0, k * 1000);  // a counter starting at k*1000
    cluster.LoadReplicated(0, k, v);
  }
  cluster.StartWorkers();

  // 3. A transaction: read keys 7 and 42, add 1 to each counter.
  TxnRequest txn;
  txn.reads = {{0, 7}, {0, 42}};
  txn.writes = {{0, 7}, {0, 42}};
  txn.execute = [](ExecRound& round) {
    for (size_t i = 0; i < round.reads->size(); ++i) {
      store::Value v = (*round.reads)[i].value;
      store::PutU64(v, 0, store::GetU64(v, 0) + 1);
      (*round.writes)[i].value = std::move(v);
    }
  };

  bool finished = false;
  cluster.node(0).Submit(std::move(txn), [&](TxnOutcome outcome) {
    finished = true;
    std::printf("transaction outcome: %s\n",
                outcome == TxnOutcome::kCommitted ? "COMMITTED" : "ABORTED");
  });

  // 4. Drive the simulation until the transaction (and the background
  //    replication work) completes.
  while (!finished) {
    cluster.engine().RunFor(10 * sim::kNsPerUs);
  }
  cluster.engine().RunFor(500 * sim::kNsPerUs);  // let workers drain
  cluster.StopWorkers();
  cluster.engine().Run();

  // 5. Read the values back directly from the primaries.
  for (store::Key k : {store::Key{7}, store::Key{42}}) {
    const store::NodeId primary = cluster.map().PrimaryOf(0, k);
    auto r = cluster.datastore(primary).table(0).Lookup(k);
    std::printf("key %llu -> %llu (version %u, primary node %u)\n",
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(store::GetU64(r->value, 0)), r->seq, primary);
  }

  auto stats = cluster.TotalStats();
  std::printf("committed=%llu aborted=%llu shipped-multihop=%llu messages=%llu\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted),
              static_cast<unsigned long long>(stats.shipped_multihop),
              static_cast<unsigned long long>(stats.messages));
  std::printf("simulated time: %.1f us\n",
              static_cast<double>(cluster.engine().now()) / 1000.0);
  return 0;
}
