// System comparison: run the same Smallbank workload on Xenic and on the
// DrTM+H baseline through the harness, and print a side-by-side of
// throughput, latency, and resource utilization -- a miniature of the
// paper's Figure 8 methodology.

#include <cstdio>

#include "src/common/table_printer.h"
#include "src/harness/runner.h"
#include "src/workload/smallbank.h"

using namespace xenic;

int main() {
  const uint32_t nodes = 6;
  auto make_workload = [&] {
    workload::Smallbank::Options wo;
    wo.num_nodes = nodes;
    wo.accounts_per_node = 20000;
    return std::make_unique<workload::Smallbank>(wo);
  };

  harness::RunConfig rc;
  rc.contexts_per_node = 32;
  rc.warmup = 150 * sim::kNsPerUs;
  rc.measure = 800 * sim::kNsPerUs;

  TablePrinter tp({"System", "Tput/server", "Median (us)", "P99 (us)", "Abort %",
                   "Host util %", "NIC util %"});

  for (int which = 0; which < 2; ++which) {
    harness::SystemConfig cfg;
    if (which == 0) {
      cfg.kind = harness::SystemConfig::Kind::kXenic;
    } else {
      cfg.kind = harness::SystemConfig::Kind::kBaseline;
      cfg.mode = baseline::BaselineMode::kDrtmH;
    }
    cfg.num_nodes = nodes;
    cfg.replication = 3;

    auto wl = make_workload();
    auto system = harness::BuildSystem(cfg, *wl);
    harness::LoadWorkload(*system, *wl);
    harness::RunResult r = harness::RunWorkload(*system, *wl, rc);

    tp.AddRow({system->Name(), TablePrinter::FmtOps(r.tput_per_server),
               TablePrinter::Fmt(r.MedianLatencyUs(), 1),
               TablePrinter::Fmt(r.P99LatencyUs(), 1),
               TablePrinter::Fmt(r.abort_rate * 100, 1),
               TablePrinter::Fmt(r.host_utilization * 100, 0),
               TablePrinter::Fmt(r.nic_utilization * 100, 0)});
  }

  std::printf("%s\n", tp.Render("Smallbank: Xenic vs DrTM+H (32 contexts/node)").c_str());
  std::printf("Xenic offloads the commit protocol to the SmartNIC: note the host\n"
              "utilization difference at comparable load.\n");
  return 0;
}
