// Social network: a Retwis-style application on the Xenic public API --
// users post tweets (read-modify-write across profile, tweet, and timeline
// objects) while others read timelines (multi-key read-only transactions).
// Demonstrates mixed read/write workloads, Zipf-skewed access, the NIC
// cache absorbing hot reads, and latency percentiles per transaction type.

#include <cstdio>
#include <functional>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

using namespace xenic;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

namespace {

constexpr store::TableId kUsers = 0;     // profile: follower count, last post id
constexpr store::TableId kTweets = 1;    // tweet payloads
constexpr store::TableId kTimelines = 2; // per-user timeline head (ring of tweet ids)

constexpr uint64_t kUsers_n = 5000;
constexpr size_t kTimelineSlots = 8;

store::Value UserRow(uint64_t posts) {
  store::Value v(32, 0);
  store::PutU64(v, 0, posts);
  return v;
}

store::Value TimelineRow() { return store::Value(16 + 8 * kTimelineSlots, 0); }

}  // namespace

int main() {
  txn::XenicClusterOptions options;
  options.num_nodes = 6;
  options.replication = 3;
  options.tables = {
      store::TableSpec{kUsers, "users", 14, 32, 8, 8},
      store::TableSpec{kTweets, "tweets", 16, 140, 8, 8},  // tweet-sized payloads
      store::TableSpec{kTimelines, "timelines", 14, 16 + 8 * kTimelineSlots, 8, 8},
  };
  txn::HashPartitioner partitioner(options.num_nodes);
  txn::XenicCluster cluster(options, &partitioner);

  for (uint64_t u = 0; u < kUsers_n; ++u) {
    cluster.LoadReplicated(kUsers, u, UserRow(0));
    cluster.LoadReplicated(kTimelines, u, TimelineRow());
  }
  cluster.StartWorkers();

  Rng rng(7);
  ZipfGenerator zipf(kUsers_n, 0.5);
  Histogram post_latency;
  Histogram read_latency;
  uint64_t next_tweet_id = 1;
  int remaining = 6000;
  int active = 0;

  std::function<void(store::NodeId)> run_one = [&](store::NodeId node) {
    if (remaining == 0) {
      active--;
      return;
    }
    remaining--;
    const sim::Tick start = cluster.engine().now();
    const uint64_t author = ScrambleKey(zipf.Next(rng)) % kUsers_n;

    if (rng.NextBool(0.5)) {
      // PostTweet: read the author's profile and timeline, write a new
      // tweet object, bump the post counter, push onto the timeline ring.
      const uint64_t tweet = next_tweet_id++;
      TxnRequest req;
      req.reads = {{kUsers, author}, {kTimelines, author}};
      req.writes = {{kUsers, author}, {kTimelines, author}, {kTweets, tweet}};
      req.execute = [tweet](ExecRound& round) {
        store::Value user = (*round.reads)[0].value;
        store::Value timeline = (*round.reads)[1].value;
        const uint64_t posts = store::GetU64(user, 0);
        store::PutU64(user, 0, posts + 1);
        store::PutU64(timeline, 16 + 8 * (posts % kTimelineSlots), tweet);
        store::PutU64(timeline, 0, posts + 1);
        (*round.writes)[0].value = std::move(user);
        (*round.writes)[1].value = std::move(timeline);
        store::Value body(140, 0);
        store::PutU64(body, 0, tweet);
        (*round.writes)[2].value = std::move(body);
      };
      cluster.node(node).Submit(std::move(req), [&, node, start](TxnOutcome o) {
        if (o == TxnOutcome::kCommitted) {
          post_latency.Record(cluster.engine().now() - start);
        }
        run_one(node);
      });
    } else {
      // GetTimeline: read the timeline head, then fetch the referenced
      // tweets in a second execution round (a multi-shot transaction).
      TxnRequest req;
      req.reads = {{kTimelines, author}};
      req.allow_ship = false;  // multi-round
      req.execute = [](ExecRound& round) {
        if (round.round == 0) {
          const store::Value& tl = (*round.reads)[0].value;
          if (tl.empty()) {
            return;
          }
          const uint64_t posts = store::GetU64(tl, 0);
          const size_t n = posts < kTimelineSlots ? posts : kTimelineSlots;
          for (size_t i = 0; i < n; ++i) {
            const uint64_t id = store::GetU64(tl, 16 + 8 * i);
            if (id != 0) {
              round.add_reads->push_back({kTweets, id});
            }
          }
        }
      };
      cluster.node(node).Submit(std::move(req), [&, node, start](TxnOutcome o) {
        if (o == TxnOutcome::kCommitted) {
          read_latency.Record(cluster.engine().now() - start);
        }
        run_one(node);
      });
    }
  };

  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (int c = 0; c < 6; ++c) {
      active++;
      run_one(n);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(100 * sim::kNsPerUs);
  }
  cluster.engine().RunFor(1000 * sim::kNsPerUs);
  cluster.StopWorkers();
  cluster.engine().Run();

  const auto stats = cluster.TotalStats();
  std::printf("posts:     %s\n", post_latency.Summary().c_str());
  std::printf("timelines: %s\n", read_latency.Summary().c_str());
  std::printf("committed=%llu aborted=%llu local-fastpath=%llu\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted),
              static_cast<unsigned long long>(stats.local_fastpath));
  // The NIC cache served hot reads without PCIe: report cache population.
  uint64_t cached = 0;
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (store::TableId t = 0; t < 3; ++t) {
      cached += cluster.datastore(n).index(t).cached_objects();
    }
  }
  std::printf("NIC-cached objects across cluster: %llu\n",
              static_cast<unsigned long long>(cached));
  return 0;
}
