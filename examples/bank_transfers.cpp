// Bank transfers: a Smallbank-flavoured application exercising Xenic's
// multi-hop shipped path. Accounts live on different shards; transfers
// between two shards qualify for remote-NIC execution (paper section
// 4.2.3) and commit in three message hops instead of four.
//
// Runs thousands of concurrent transfers, retries OCC aborts, then audits
// the conservation-of-money invariant across all primaries and replicas.

#include <cstdio>
#include <functional>

#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

using namespace xenic;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

namespace {

constexpr store::TableId kAccounts = 0;
constexpr int64_t kInitialBalance = 1000;
constexpr uint64_t kNumAccounts = 3000;

store::Value Balance(int64_t v) {
  store::Value out(16, 0);
  store::PutI64(out, 0, v);
  return out;
}

TxnRequest MakeTransfer(store::Key from, store::Key to, int64_t amount) {
  TxnRequest req;
  req.reads = {{kAccounts, from}, {kAccounts, to}};
  req.writes = {{kAccounts, from}, {kAccounts, to}};
  req.allow_ship = true;  // two shards max: eligible for multi-hop
  req.execute = [amount](ExecRound& round) {
    const int64_t a = store::GetI64((*round.reads)[0].value, 0);
    const int64_t b = store::GetI64((*round.reads)[1].value, 0);
    if (a < amount) {
      *round.abort = true;  // insufficient funds
      return;
    }
    (*round.writes)[0].value = Balance(a - amount);
    (*round.writes)[1].value = Balance(b + amount);
  };
  return req;
}

}  // namespace

int main() {
  txn::XenicClusterOptions options;
  options.num_nodes = 6;
  options.replication = 3;
  options.tables = {store::TableSpec{kAccounts, "accounts", 14, 16, 8, 8}};
  txn::HashPartitioner partitioner(options.num_nodes);
  txn::XenicCluster cluster(options, &partitioner);

  for (store::Key a = 0; a < kNumAccounts; ++a) {
    cluster.LoadReplicated(kAccounts, a, Balance(kInitialBalance));
  }
  cluster.StartWorkers();

  Rng rng(2024);
  Histogram latency;
  int in_flight = 0;
  int remaining = 5000;

  // One closed-loop context: pick a random transfer, submit it, retry OCC
  // aborts with randomized backoff, record commit latency, repeat.
  std::function<void(store::NodeId)> run_one = [&](store::NodeId node) {
    if (remaining == 0) {
      in_flight--;
      return;
    }
    remaining--;
    const store::Key from = rng.NextBounded(kNumAccounts);
    store::Key to = rng.NextBounded(kNumAccounts);
    while (to == from) {
      to = rng.NextBounded(kNumAccounts);
    }
    const auto amount = static_cast<int64_t>(rng.NextRange(1, 25));
    const sim::Tick start = cluster.engine().now();

    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [&, node, start, from, to, amount, attempt] {
      cluster.node(node).Submit(MakeTransfer(from, to, amount),
                                [&, node, start, attempt](TxnOutcome o) {
                                  if (o == TxnOutcome::kAborted) {
                                    cluster.engine().ScheduleAfter(
                                        2000 + rng.NextBounded(4000), [attempt] { (*attempt)(); });
                                    return;
                                  }
                                  latency.Record(cluster.engine().now() - start);
                                  run_one(node);
                                });
    };
    (*attempt)();
  };

  // 8 concurrent application contexts per node.
  for (uint32_t n = 0; n < cluster.size(); ++n) {
    for (int c = 0; c < 8; ++c) {
      in_flight++;
      run_one(n);
    }
  }
  while (in_flight > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(100 * sim::kNsPerUs);
    if (remaining == 0 && latency.count() >= 5000) {
      break;
    }
  }
  cluster.engine().RunFor(1000 * sim::kNsPerUs);
  cluster.StopWorkers();
  cluster.engine().Run();

  // Audit: total money conserved at the primaries, replicas in sync.
  int64_t total = 0;
  uint64_t replica_mismatches = 0;
  for (store::Key a = 0; a < kNumAccounts; ++a) {
    const store::NodeId p = cluster.map().PrimaryOf(kAccounts, a);
    const auto pv = cluster.datastore(p).table(kAccounts).Lookup(a);
    total += store::GetI64(pv->value, 0);
    for (store::NodeId b : cluster.map().BackupsOf(p)) {
      const auto bv = cluster.datastore(b).table(kAccounts).Lookup(a);
      if (!bv || bv->value != pv->value) {
        replica_mismatches++;
      }
    }
  }

  const auto stats = cluster.TotalStats();
  std::printf("transfers committed: %llu (aborted-and-retried: %llu)\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted));
  std::printf("multi-hop shipped:   %llu of %llu\n",
              static_cast<unsigned long long>(stats.shipped_multihop),
              static_cast<unsigned long long>(stats.committed));
  std::printf("latency: %s\n", latency.Summary().c_str());
  std::printf("audit: total=%lld (expected %lld), replica mismatches=%llu\n",
              static_cast<long long>(total),
              static_cast<long long>(kNumAccounts * kInitialBalance),
              static_cast<unsigned long long>(replica_mismatches));
  return total == static_cast<int64_t>(kNumAccounts) * kInitialBalance &&
                 replica_mismatches == 0
             ? 0
             : 1;
}
