// Retry-policy behavior: the uniform policy reproduces the historical
// harness backoff byte-for-byte, every policy is deterministic and bounded,
// the contention window actually widens under pressure, and a full
// RunWorkload stays bit-deterministic (and tracing-invariant) under every
// policy -- the contract tools/check_determinism.sh enforces end to end.

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/obs/txn_trace.h"
#include "src/txn/retry_policy.h"
#include "src/workload/smallbank.h"

namespace xenic::txn {
namespace {

TEST(RetryPolicyTest, UniformMatchesHistoricalFormula) {
  RetryPolicyConfig cfg;
  cfg.kind = RetryPolicyKind::kUniform;
  cfg.backoff_base = 4 * sim::kNsPerUs;
  Rng policy_rng(99);
  Rng formula_rng(99);
  for (uint32_t tries = 0; tries < 64; ++tries) {
    const sim::Tick expect =
        cfg.backoff_base + formula_rng.NextBounded(cfg.backoff_base + 1);
    EXPECT_EQ(RetryBackoff(cfg, tries, /*contention=*/tries % 7, policy_rng), expect)
        << "uniform draw " << tries << " diverged from the historical formula";
  }
}

TEST(RetryPolicyTest, EveryPolicyDeterministicForSeed) {
  for (auto kind : {RetryPolicyKind::kUniform, RetryPolicyKind::kExpJitter,
                    RetryPolicyKind::kContentionWindow}) {
    RetryPolicyConfig cfg;
    cfg.kind = kind;
    Rng a(7), b(7);
    for (uint32_t tries = 0; tries < 200; ++tries) {
      const uint8_t contention = static_cast<uint8_t>(tries * 37);
      EXPECT_EQ(RetryBackoff(cfg, tries, contention, a),
                RetryBackoff(cfg, tries, contention, b));
    }
  }
}

TEST(RetryPolicyTest, BackoffBoundedAndPositive) {
  RetryPolicyConfig cfg;
  cfg.backoff_base = 4 * sim::kNsPerUs;
  cfg.backoff_cap = 64 * sim::kNsPerUs;
  Rng rng(13);
  for (auto kind : {RetryPolicyKind::kUniform, RetryPolicyKind::kExpJitter,
                    RetryPolicyKind::kContentionWindow}) {
    cfg.kind = kind;
    for (uint32_t tries = 0; tries < 300; ++tries) {
      const sim::Tick b = RetryBackoff(cfg, tries, 255, rng);
      EXPECT_GE(b, 1u);
      if (kind != RetryPolicyKind::kUniform) {
        EXPECT_LE(b, cfg.backoff_cap) << RetryPolicyName(kind) << " exceeded its cap";
      }
    }
  }
  // Degenerate config: base 0 must still return a strictly positive wait.
  cfg.kind = RetryPolicyKind::kExpJitter;
  cfg.backoff_base = 0;
  EXPECT_GE(RetryBackoff(cfg, 0, 0, rng), 1u);
}

TEST(RetryPolicyTest, ContentionWindowWidensWithPressure) {
  RetryPolicyConfig cfg;
  cfg.kind = RetryPolicyKind::kContentionWindow;
  cfg.backoff_base = 4 * sim::kNsPerUs;
  cfg.backoff_cap = 1000 * sim::kNsPerUs;
  // Full jitter over the contention-scaled window: compare mean draws.
  auto mean_of = [&](uint8_t contention, uint32_t tries) {
    Rng rng(1);
    double sum = 0;
    for (int i = 0; i < 2000; ++i) {
      sum += static_cast<double>(RetryBackoff(cfg, tries, contention, rng));
    }
    return sum / 2000;
  };
  EXPECT_GT(mean_of(128, 0), mean_of(0, 0) * 1.5);
  EXPECT_GT(mean_of(255, 3), mean_of(255, 0) * 1.5);
  // Uncontended aborts retry FASTER than the uniform baseline on average
  // (uniform's mean is 1.5 * base; an unscaled window's is ~base / 2).
  EXPECT_LT(mean_of(0, 0), 1.5 * static_cast<double>(cfg.backoff_base));
}

TEST(RetryPolicyTest, ParseNamesRoundTrip) {
  RetryPolicyKind kind = RetryPolicyKind::kUniform;
  for (auto expect : {RetryPolicyKind::kUniform, RetryPolicyKind::kExpJitter,
                      RetryPolicyKind::kContentionWindow}) {
    ASSERT_TRUE(ParseRetryPolicy(RetryPolicyName(expect), &kind));
    EXPECT_EQ(kind, expect);
  }
  kind = RetryPolicyKind::kExpJitter;
  EXPECT_FALSE(ParseRetryPolicy("fibonacci", &kind));
  EXPECT_EQ(kind, RetryPolicyKind::kExpJitter);  // untouched on failure
}

// --- End-to-end harness coverage -------------------------------------------

harness::SystemConfig XenicCfg() {
  harness::SystemConfig cfg;
  cfg.kind = harness::SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  return cfg;
}

std::unique_ptr<workload::Smallbank> SkewedWl() {
  workload::Smallbank::Options wo;
  wo.num_nodes = 3;
  wo.accounts_per_node = 300;  // small pool -> real contention
  return std::make_unique<workload::Smallbank>(wo);
}

harness::RunConfig ShortRun(RetryPolicyKind kind) {
  harness::RunConfig rc;
  rc.contexts_per_node = 8;
  rc.seed = 11;
  rc.warmup = 50 * sim::kNsPerUs;
  rc.measure = 300 * sim::kNsPerUs;
  rc.retry.kind = kind;
  return rc;
}

TEST(RetryPolicyTest, RunWorkloadDeterministicPerPolicy) {
  for (auto kind : {RetryPolicyKind::kUniform, RetryPolicyKind::kExpJitter,
                    RetryPolicyKind::kContentionWindow}) {
    harness::RunResult runs[2];
    for (int i = 0; i < 2; ++i) {
      auto wl = SkewedWl();
      auto sys = harness::BuildSystem(XenicCfg(), *wl);
      harness::LoadWorkload(*sys, *wl);
      runs[i] = harness::RunWorkload(*sys, *wl, ShortRun(kind));
    }
    EXPECT_DOUBLE_EQ(runs[0].tput_per_server, runs[1].tput_per_server)
        << RetryPolicyName(kind);
    EXPECT_EQ(runs[0].committed, runs[1].committed) << RetryPolicyName(kind);
    EXPECT_EQ(runs[0].aborted, runs[1].aborted) << RetryPolicyName(kind);
  }
}

TEST(RetryPolicyTest, TracingCannotChangeResults) {
  for (auto kind : {RetryPolicyKind::kExpJitter, RetryPolicyKind::kContentionWindow}) {
    harness::RunResult plain, traced;
    {
      auto wl = SkewedWl();
      auto sys = harness::BuildSystem(XenicCfg(), *wl);
      harness::LoadWorkload(*sys, *wl);
      plain = harness::RunWorkload(*sys, *wl, ShortRun(kind));
    }
    {
      auto wl = SkewedWl();
      auto sys = harness::BuildSystem(XenicCfg(), *wl);
      harness::LoadWorkload(*sys, *wl);
      harness::RunConfig rc = ShortRun(kind);
      obs::TxnTraceSink sink;
      rc.txn_trace = &sink;
      traced = harness::RunWorkload(*sys, *wl, rc);
    }
    EXPECT_DOUBLE_EQ(plain.tput_per_server, traced.tput_per_server)
        << RetryPolicyName(kind);
    EXPECT_EQ(plain.committed, traced.committed) << RetryPolicyName(kind);
    EXPECT_EQ(plain.aborted, traced.aborted) << RetryPolicyName(kind);
  }
}

TEST(RetryPolicyTest, HotPathEngagesUnderSkew) {
  auto wl = SkewedWl();
  harness::SystemConfig cfg = XenicCfg();
  cfg.features.hot_key_fastpath = true;
  auto sys = harness::BuildSystem(cfg, *wl);
  harness::LoadWorkload(*sys, *wl);
  harness::RunConfig rc = ShortRun(RetryPolicyKind::kContentionWindow);
  rc.measure = 500 * sim::kNsPerUs;
  const harness::RunResult r = harness::RunWorkload(*sys, *wl, rc);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.txn_stats.hot_path, 0u)
      << "skewed Smallbank never promoted a key onto the fast path";
}

TEST(RetryPolicyTest, AbortReasonsConserveTotal) {
  auto wl = SkewedWl();
  auto sys = harness::BuildSystem(XenicCfg(), *wl);
  harness::LoadWorkload(*sys, *wl);
  const harness::RunResult r =
      harness::RunWorkload(*sys, *wl, ShortRun(RetryPolicyKind::kUniform));
  ASSERT_GT(r.aborted, 0u) << "contended Smallbank run produced no aborts";
  const TxnStats& s = r.txn_stats;
  const uint64_t attributed = s.abort_lock_execute + s.abort_lock_local +
                              s.abort_lock_ship + s.abort_validate + s.abort_gap +
                              s.abort_other;
  EXPECT_EQ(attributed, s.aborted)
      << "every Xenic abort must carry exactly one first-cause reason";
}

}  // namespace
}  // namespace xenic::txn
