// Metric-reporting helpers shared by the figure benches: the
// no-commits-latency sentinel fix, peak-point selection, and the
// observability flag parsing.

#include "bench/bench_common.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/table_printer.h"

namespace xenic::bench {
namespace {

Curve MakeCurve(std::initializer_list<std::pair<double, uint64_t>> pts) {
  // Each pair: (tput_per_server, median_latency_ns or 0 for "no commits").
  Curve c;
  c.system = "test";
  uint32_t contexts = 1;
  for (const auto& [tput, lat_ns] : pts) {
    CurvePoint p;
    p.contexts = contexts++;
    p.result.tput_per_server = tput;
    if (lat_ns > 0) {
      p.result.latency.Record(lat_ns);
    }
    c.points.push_back(std::move(p));
  }
  return c;
}

TEST(CurveTest, MinMedianLatencyUsIsNanWhenNoCommits) {
  // The bug this pins: an all-abort curve used to report its 1e18-style
  // init sentinel as a "latency", poisoning comparison summaries.
  const Curve empty;
  EXPECT_TRUE(std::isnan(empty.MinMedianLatencyUs()));

  const Curve no_commits = MakeCurve({{0.0, 0}, {0.0, 0}});
  EXPECT_TRUE(std::isnan(no_commits.MinMedianLatencyUs()));
}

TEST(CurveTest, MinMedianLatencyUsSkipsEmptyPoints) {
  // Points without latency samples are skipped, not treated as 0.
  const Curve c = MakeCurve({{10.0, 0}, {20.0, 5000}, {30.0, 3000}});
  EXPECT_NEAR(c.MinMedianLatencyUs(), 3.0, 0.2);
}

TEST(CurveTest, PeakIndexPicksHighestThroughput) {
  const Curve empty;
  EXPECT_EQ(empty.PeakIndex(), -1);

  const Curve c = MakeCurve({{10.0, 1000}, {50.0, 2000}, {30.0, 3000}});
  EXPECT_EQ(c.PeakIndex(), 1);
  EXPECT_DOUBLE_EQ(c.PeakTput(), 50.0);
}

TEST(TablePrinterNanTest, NanRendersAsNoData) {
  // TablePrinter treats NaN as "no data" so the latency sentinel fix
  // renders "--" instead of a garbage number.
  EXPECT_EQ(TablePrinter::Fmt(std::numeric_limits<double>::quiet_NaN(), 1), "--");
  EXPECT_EQ(TablePrinter::Fmt(std::numeric_limits<double>::quiet_NaN(), 0), "--");
  EXPECT_EQ(TablePrinter::Fmt(1.25, 1), "1.2");
}

TEST(BenchOptionsTest, ParseFlags) {
  {
    const char* argv[] = {"bench"};
    const BenchOptions o = BenchOptions::Parse(1, const_cast<char**>(argv));
    EXPECT_FALSE(o.attrib);
    EXPECT_TRUE(o.trace_path.empty());
  }
  {
    const char* argv[] = {"bench", "--attrib", "--trace", "out.json"};
    const BenchOptions o = BenchOptions::Parse(4, const_cast<char**>(argv));
    EXPECT_TRUE(o.attrib);
    EXPECT_EQ(o.trace_path, "out.json");
  }
  {
    const char* argv[] = {"bench", "--trace=x.trace.json"};
    const BenchOptions o = BenchOptions::Parse(2, const_cast<char**>(argv));
    EXPECT_FALSE(o.attrib);
    EXPECT_EQ(o.trace_path, "x.trace.json");
  }
  {
    // --trace with no value is ignored rather than reading past argv.
    const char* argv[] = {"bench", "--trace"};
    const BenchOptions o = BenchOptions::Parse(2, const_cast<char**>(argv));
    EXPECT_TRUE(o.trace_path.empty());
  }
}

}  // namespace
}  // namespace xenic::bench
