// Workload generator tests: transaction mixes, key distributions, request
// structure, and the TPC-C logical-record application helpers.

#include <gtest/gtest.h>

#include <map>

#include "src/workload/retwis.h"
#include "src/workload/smallbank.h"
#include "src/store/robinhood_table.h"
#include "src/workload/tpcc.h"

namespace xenic::workload {
namespace {

TEST(SmallbankTest, MixMatchesWeights) {
  Smallbank::Options o;
  o.num_nodes = 3;
  o.accounts_per_node = 1000;
  Smallbank wl(o);
  Rng rng(1);
  std::map<uint8_t, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    counts[wl.NextTxn(0, rng).tag]++;
  }
  EXPECT_NEAR(counts[Smallbank::kBalance], n * 0.15, n * 0.02);
  EXPECT_NEAR(counts[Smallbank::kSendPayment], n * 0.25, n * 0.02);
  EXPECT_NEAR(counts[Smallbank::kAmalgamate], n * 0.15, n * 0.02);
}

TEST(SmallbankTest, BalanceIsReadOnly) {
  Smallbank::Options o;
  o.num_nodes = 3;
  o.accounts_per_node = 1000;
  o.mix = {0, 100, 0, 0, 0, 0};  // Balance only
  Smallbank wl(o);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    auto req = wl.NextTxn(0, rng);
    EXPECT_EQ(req.tag, Smallbank::kBalance);
    EXPECT_EQ(req.reads.size(), 2u);
    EXPECT_TRUE(req.writes.empty());
    // Savings and checking of the SAME account: single shard.
    EXPECT_EQ(req.reads[0].key, req.reads[1].key);
  }
}

TEST(SmallbankTest, HotspotConcentratesAccess) {
  Smallbank::Options o;
  o.num_nodes = 3;
  o.accounts_per_node = 10000;
  o.mix = {0, 0, 100, 0, 0, 0};  // DepositChecking: one key per txn
  Smallbank wl(o);
  Rng rng(3);
  const uint64_t hot = static_cast<uint64_t>(0.04 * static_cast<double>(wl.total_accounts()));
  std::map<store::Key, int> freq;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    freq[wl.NextTxn(0, rng).reads[0].key]++;
  }
  // ~90% of accesses should land on ~4% of keys.
  std::vector<int> counts;
  for (auto& [k, c] : freq) {
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  int64_t hot_hits = 0;
  for (size_t i = 0; i < hot && i < counts.size(); ++i) {
    hot_hits += counts[i];
  }
  EXPECT_GT(static_cast<double>(hot_hits) / n, 0.80);
}

TEST(SmallbankTest, KeysWithinRange) {
  Smallbank::Options o;
  o.num_nodes = 2;
  o.accounts_per_node = 100;
  Smallbank wl(o);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    auto req = wl.NextTxn(0, rng);
    for (const auto& k : req.reads) {
      EXPECT_LT(k.key, wl.total_accounts());
    }
  }
}

TEST(RetwisTest, MixAndKeyCounts) {
  Retwis::Options o;
  o.num_nodes = 3;
  o.keys_per_node = 5000;
  Retwis wl(o);
  Rng rng(5);
  int read_only = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto req = wl.NextTxn(0, rng);
    switch (req.tag) {
      case Retwis::kAddUser:
        EXPECT_EQ(req.reads.size(), 1u);
        EXPECT_EQ(req.writes.size(), 3u);
        break;
      case Retwis::kFollow:
        EXPECT_EQ(req.reads.size(), 2u);
        EXPECT_EQ(req.writes.size(), 2u);
        break;
      case Retwis::kPostTweet:
        EXPECT_EQ(req.reads.size(), 3u);
        EXPECT_EQ(req.writes.size(), 5u);
        break;
      case Retwis::kGetTimeline:
        EXPECT_GE(req.reads.size(), 1u);
        EXPECT_LE(req.reads.size(), 10u);
        EXPECT_TRUE(req.writes.empty());
        read_only++;
        break;
      default:
        FAIL();
    }
  }
  EXPECT_NEAR(read_only, n * 0.5, n * 0.02);  // 50% read-only
}

TEST(RetwisTest, ZipfSkewsPopularity) {
  Retwis::Options o;
  o.num_nodes = 3;
  o.keys_per_node = 50000;
  Retwis wl(o);
  Rng rng(6);
  std::map<store::Key, int> freq;
  for (int i = 0; i < 50000; ++i) {
    auto req = wl.NextTxn(0, rng);
    for (const auto& k : req.reads) {
      freq[k.key]++;
    }
  }
  std::vector<int> counts;
  for (auto& [k, c] : freq) {
    counts.push_back(c);
  }
  std::sort(counts.rbegin(), counts.rend());
  // The head of the popularity distribution clearly dominates the tail.
  EXPECT_GT(counts[0], 20);
}

TEST(TpccTest, NewOrderStructure) {
  Tpcc::Options o;
  o.num_nodes = 3;
  o.warehouses_per_node = 2;
  o.new_order_only = true;
  o.uniform_remote_items = true;
  Tpcc wl(o);
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    auto req = wl.NextTxn(1, rng);
    EXPECT_EQ(req.tag, Tpcc::kNewOrder);
    // district + customer + 5..15 stocks read; district + stocks written.
    EXPECT_GE(req.reads.size(), 2u + 5u);
    EXPECT_LE(req.reads.size(), 2u + 15u);
    EXPECT_EQ(req.writes.size(), req.reads.size() - 1);
    EXPECT_EQ(req.reads[0].table, Tpcc::kDistrict);
    EXPECT_EQ(req.reads[1].table, Tpcc::kCustomer);
    EXPECT_FALSE(req.local_log_writes.empty());
    EXPECT_EQ(req.local_log_writes[0].table, Tpcc::kOrderPack);
    // Home warehouse belongs to the coordinator.
    EXPECT_EQ(wl.NodeOfWarehouse(req.reads[0].key / 16), 1u);
  }
}

TEST(TpccTest, UniformRemoteItemsSpreadAcrossCluster) {
  Tpcc::Options o;
  o.num_nodes = 3;
  o.warehouses_per_node = 2;
  o.new_order_only = true;
  o.uniform_remote_items = true;
  Tpcc wl(o);
  Rng rng(8);
  std::map<store::NodeId, int> shard_hits;
  for (int i = 0; i < 1000; ++i) {
    auto req = wl.NextTxn(0, rng);
    for (size_t k = 2; k < req.reads.size(); ++k) {
      shard_hits[wl.partitioner().PrimaryOf(Tpcc::kStock, req.reads[k].key)]++;
    }
  }
  // Supplying warehouses uniform across all 3 nodes.
  EXPECT_EQ(shard_hits.size(), 3u);
  for (auto& [n, c] : shard_hits) {
    EXPECT_GT(c, 1000);
  }
}

TEST(TpccTest, StandardModeMostlyLocal) {
  Tpcc::Options o;
  o.num_nodes = 3;
  o.warehouses_per_node = 2;
  o.new_order_only = true;
  o.uniform_remote_items = false;
  Tpcc wl(o);
  Rng rng(9);
  int remote_orders = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto req = wl.NextTxn(0, rng);
    bool remote = false;
    for (const auto& k : req.reads) {
      remote |= wl.partitioner().PrimaryOf(k.table, k.key) != 0;
    }
    remote_orders += remote ? 1 : 0;
  }
  // ~1% per item x ~10 items => ~10% remote new-orders (paper 5.3).
  EXPECT_NEAR(static_cast<double>(remote_orders) / n, 0.10, 0.05);
}

TEST(TpccTest, FullMixProportions) {
  Tpcc::Options o;
  o.num_nodes = 3;
  o.warehouses_per_node = 2;
  Tpcc wl(o);
  Rng rng(10);
  std::map<uint8_t, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    counts[wl.NextTxn(0, rng).tag]++;
  }
  EXPECT_NEAR(counts[Tpcc::kNewOrder], n * 0.45, n * 0.02);
  EXPECT_NEAR(counts[Tpcc::kPayment], n * 0.43, n * 0.02);
  EXPECT_NEAR(counts[Tpcc::kDelivery], n * 0.04, n * 0.01);
  EXPECT_TRUE(wl.CountsForThroughput(Tpcc::kNewOrder));
  EXPECT_FALSE(wl.CountsForThroughput(Tpcc::kPayment));
}

TEST(TpccTest, OrderPackApplication) {
  Tpcc::Options o;
  o.num_nodes = 2;
  o.warehouses_per_node = 1;
  o.initial_orders_per_district = 0;
  Tpcc wl(o);
  auto hook = wl.WorkerHook(0);

  // Build a pack via a generated new-order request and apply it.
  Rng rng(11);
  auto req = wl.NextTxn(0, rng);
  while (req.tag != Tpcc::kNewOrder) {
    req = wl.NextTxn(0, rng);
  }
  const auto& pack = req.local_log_writes[0];
  const uint64_t dkey = pack.key;
  const uint32_t before = wl.local(0).next_o[dkey];
  const sim::Tick cost = hook(pack);
  EXPECT_GT(cost, 0u);
  EXPECT_EQ(wl.local(0).next_o[dkey], before + 1);
  EXPECT_TRUE(wl.local(0).orders.Contains(Tpcc::OrderKey(dkey, before)));
  EXPECT_TRUE(wl.local(0).new_orders.Contains(Tpcc::OrderKey(dkey, before)));
}

TEST(TpccTest, DeliveryPackPopsOldest) {
  Tpcc::Options o;
  o.num_nodes = 2;
  o.warehouses_per_node = 1;
  o.initial_orders_per_district = 10;
  Tpcc wl(o);
  wl.Load([](store::TableId, store::Key, const store::Value&) {});  // populate B+trees
  // Pre-populated: orders 8..10 are undelivered (the last 30%).
  auto hook = wl.WorkerHook(0);
  const uint64_t dkey = Tpcc::DKey(1, 1);
  const size_t before = wl.local(0).new_orders.size();
  ASSERT_GT(before, 0u);
  store::Value dpack(16, 0);
  store::PutU64(dpack, 0, dkey);
  hook(store::LogWrite{Tpcc::kDeliveryPack, dkey, 0, dpack, false});
  EXPECT_EQ(wl.local(0).new_orders.size(), before - 1);
}

TEST(TpccTest, TableSizesCoverRows) {
  Tpcc::Options o;
  o.num_nodes = 3;
  o.warehouses_per_node = 4;
  o.items = 500;
  Tpcc wl(o);
  auto tables = wl.Tables();
  ASSERT_EQ(tables.size(), 4u);
  EXPECT_EQ(tables[2].value_size, Tpcc::kCustomerBytes);
  EXPECT_GT(tables[2].value_size, store::kInlineValueLimit);  // large-object path
  EXPECT_GT(tables[3].value_size, store::kInlineValueLimit);
  // Stock table capacity >= total stock rows.
  EXPECT_GE(size_t{1} << tables[3].capacity_log2,
            static_cast<size_t>(wl.total_warehouses()) * 500);
}

}  // namespace
}  // namespace xenic::workload
