// SLO parsing and error-budget accounting semantics. These tests pin the
// contract documented in src/obs/slo.h: strict window-level thresholds
// (exactly-at-threshold violates), vacuously compliant zero-traffic
// windows, and integer burn-rate / budget-exhaustion arithmetic.

#include "src/obs/slo.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/histogram.h"

namespace xenic::obs {
namespace {

constexpr sim::Tick kUs = sim::kNsPerUs;

SloSpec MustParse(const std::string& text) {
  SloSpec spec;
  std::string err;
  EXPECT_TRUE(ParseSloSpec(text, &spec, &err)) << err;
  return spec;
}

// A goodput-only window: `committed` commits and `aborted` aborts.
SloWindowInput GoodputWindow(sim::Tick start, uint64_t committed, uint64_t aborted) {
  SloWindowInput w;
  w.start = start;
  w.width = 50 * kUs;
  w.committed = committed;
  w.aborted = aborted;
  return w;
}

// --- Parsing -------------------------------------------------------------

TEST(SloParseTest, ValidSpec) {
  const SloSpec spec = MustParse("p99<50us,goodput>0.95");
  ASSERT_EQ(spec.objectives.size(), 2u);
  const SloObjective& lat = spec.objectives[0];
  EXPECT_EQ(lat.kind, SloKind::kLatencyQuantile);
  EXPECT_DOUBLE_EQ(lat.quantile, 0.99);
  EXPECT_EQ(lat.threshold_ns, 50000u);
  EXPECT_EQ(lat.budget_ppm, 10000u);  // 1% of events may exceed the bound
  const SloObjective& gp = spec.objectives[1];
  EXPECT_EQ(gp.kind, SloKind::kGoodput);
  EXPECT_EQ(gp.min_goodput_ppm, 950000u);
  EXPECT_EQ(gp.budget_ppm, 50000u);
}

TEST(SloParseTest, QuantileDigitsScaleExactly) {
  EXPECT_EQ(MustParse("p999<1ms").objectives[0].threshold_ns, 1000000u);
  EXPECT_EQ(MustParse("p999<1ms").objectives[0].budget_ppm, 1000u);
  EXPECT_EQ(MustParse("p50<200ns").objectives[0].budget_ppm, 500000u);
}

TEST(SloParseTest, RejectsMalformedClauses) {
  SloSpec spec;
  std::string err;
  EXPECT_FALSE(ParseSloSpec("", &spec, &err));
  EXPECT_FALSE(ParseSloSpec(",,,", &spec, &err));
  EXPECT_FALSE(ParseSloSpec("p99<50parsecs", &spec, &err));
  EXPECT_NE(err.find("unit"), std::string::npos) << err;
  EXPECT_FALSE(ParseSloSpec("p0<1us", &spec, &err));     // quantile 0
  EXPECT_FALSE(ParseSloSpec("latency<5us", &spec, &err));
  EXPECT_FALSE(ParseSloSpec("goodput>1", &spec, &err));  // must be < 1
  EXPECT_FALSE(ParseSloSpec("goodput>1.5", &spec, &err));
  EXPECT_FALSE(ParseSloSpec("goodput>0", &spec, &err));
  // One bad clause poisons the whole spec (fail closed, not drop-clause).
  EXPECT_FALSE(ParseSloSpec("p99<50us,bogus", &spec, &err));
}

// --- Zero traffic --------------------------------------------------------

TEST(SloEvalTest, ZeroTrafficWindowsAreVacuouslyCompliant) {
  const SloSpec spec = MustParse("goodput>0.95");
  std::vector<SloWindowInput> windows = {
      GoodputWindow(0, 0, 0),
      GoodputWindow(50 * kUs, 0, 0),
  };
  const SloReport report = EvaluateSlo(spec, windows);
  ASSERT_EQ(report.objectives.size(), 1u);
  const SloObjectiveResult& r = report.objectives[0];
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(r.windows_with_traffic, 0u);
  EXPECT_EQ(r.windows_violating, 0u);
  EXPECT_EQ(r.first_violation_us, -1);
  EXPECT_EQ(r.budget_exhausted_us, -1);
  EXPECT_EQ(r.max_window_burn_x1000, 0u);
  EXPECT_EQ(r.run_burn_x1000, 0u);
}

TEST(SloEvalTest, LatencyObjectiveIgnoresWindowsWithNoHistogram) {
  const SloSpec spec = MustParse("p99<50us");
  // Committed traffic but a null latency histogram (e.g. a window whose
  // completions were all aborts): no quantile to test, no burn.
  std::vector<SloWindowInput> windows = {GoodputWindow(0, 10, 0)};
  const SloReport report = EvaluateSlo(spec, windows);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.objectives[0].windows_with_traffic, 0u);
  EXPECT_EQ(report.objectives[0].total_events, 0u);
}

// --- Strict thresholds ---------------------------------------------------

TEST(SloEvalTest, GoodputExactlyAtThresholdViolates) {
  const SloSpec spec = MustParse("goodput>0.95");
  // 95 / 100 committed: goodput == 0.95 exactly, which violates "> 0.95".
  std::vector<SloWindowInput> at = {GoodputWindow(0, 95, 5)};
  EXPECT_FALSE(EvaluateSlo(spec, at).ok());
  // One more commit: 96 / 101 > 0.95, compliant.
  std::vector<SloWindowInput> above = {GoodputWindow(0, 96, 5)};
  EXPECT_TRUE(EvaluateSlo(spec, above).ok());
}

TEST(SloEvalTest, LatencyExactlyAtThresholdViolates) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(40000);  // 40us
  }
  // Bucketed histogram: read back the p99 the evaluator will see and pin
  // the threshold to it exactly.
  const uint64_t p99 = h.ValueAtQuantile(0.99);
  ASSERT_GT(p99, 0u);
  SloWindowInput w;
  w.width = 50 * kUs;
  w.latency = &h;
  const SloSpec at = MustParse("p99<" + std::to_string(p99) + "ns");
  EXPECT_FALSE(EvaluateSlo(at, {w}).ok());  // p99 >= threshold: violated
  const SloSpec above = MustParse("p99<" + std::to_string(p99 + 1) + "ns");
  EXPECT_TRUE(EvaluateSlo(above, {w}).ok());
}

TEST(SloEvalTest, FirstViolationReportsWindowStart) {
  const SloSpec spec = MustParse("goodput>0.9");
  std::vector<SloWindowInput> windows = {
      GoodputWindow(0, 100, 0),          // compliant
      GoodputWindow(50 * kUs, 0, 0),     // no traffic
      GoodputWindow(100 * kUs, 50, 50),  // violating
      GoodputWindow(150 * kUs, 10, 90),  // violating again
  };
  const SloObjectiveResult& r = EvaluateSlo(spec, windows).objectives[0];
  EXPECT_EQ(r.windows_violating, 2u);
  EXPECT_EQ(r.first_violation_us, 100);
}

// --- Burn rates and budget exhaustion ------------------------------------

TEST(SloEvalTest, BurnRateArithmetic) {
  // goodput>0.9: budget_ppm = 100000 (10% of events may be bad).
  const SloSpec spec = MustParse("goodput>0.9");
  std::vector<SloWindowInput> windows = {
      GoodputWindow(0, 80, 20),         // 20% bad: burning 2x budget
      GoodputWindow(50 * kUs, 100, 0),  // clean
  };
  const SloObjectiveResult& r = EvaluateSlo(spec, windows).objectives[0];
  EXPECT_EQ(r.total_events, 200u);
  EXPECT_EQ(r.bad_events, 20u);
  // Window burn x1000: 20/100 over a 0.1 budget = 2.0x -> 2000.
  EXPECT_EQ(r.max_window_burn_x1000, 2000u);
  // Run burn: 20/200 over 0.1 = 1.0x -> 1000; exactly the full budget.
  EXPECT_EQ(r.run_burn_x1000, 1000u);
  EXPECT_EQ(r.budget_consumed_ppm, 1000000u);
}

TEST(SloEvalTest, BudgetExhaustionMidRun) {
  // goodput>0.9 over 300 events total: run budget = 30 bad events.
  const SloSpec spec = MustParse("goodput>0.9");
  std::vector<SloWindowInput> windows = {
      GoodputWindow(0, 80, 20),           // cum bad 20: within budget
      GoodputWindow(50 * kUs, 89, 11),    // cum bad 31 > 30: exhausted here
      GoodputWindow(100 * kUs, 100, 0),
  };
  const SloObjectiveResult& r = EvaluateSlo(spec, windows).objectives[0];
  EXPECT_EQ(r.budget_exhausted_us, 50);
  EXPECT_GT(r.budget_consumed_ppm, 1000000u);
}

TEST(SloEvalTest, ExactlyAtBudgetIsNotExhausted) {
  // 200 events, budget 20: exactly 20 bad events consume the whole budget
  // without crossing it.
  const SloSpec spec = MustParse("goodput>0.9");
  std::vector<SloWindowInput> windows = {
      GoodputWindow(0, 80, 20),
      GoodputWindow(50 * kUs, 100, 0),
  };
  const SloObjectiveResult& r = EvaluateSlo(spec, windows).objectives[0];
  EXPECT_EQ(r.budget_exhausted_us, -1);
  EXPECT_EQ(r.budget_consumed_ppm, 1000000u);
}

// --- Series plumbing and report rendering --------------------------------

TEST(SloEvalTest, InputsFromSeriesMapWindows) {
  MetricRegistry reg;
  WindowCounter* committed = reg.AddCounter("c");
  WindowCounter* aborted = reg.AddCounter("a");
  WindowHistogram* lat = reg.AddHistogram("l");
  reg.BeginWindows(WindowSeries(50 * kUs, 130 * kUs), 0);
  committed->Add(10 * kUs);
  committed->Add(60 * kUs);
  aborted->Add(60 * kUs);
  lat->Record(10 * kUs, 1234);
  const auto inputs = SloInputsFromSeries(reg.series(), committed, aborted, lat);
  ASSERT_EQ(inputs.size(), 3u);
  EXPECT_EQ(inputs[0].committed, 1u);
  EXPECT_EQ(inputs[1].committed, 1u);
  EXPECT_EQ(inputs[1].aborted, 1u);
  EXPECT_NE(inputs[0].latency, nullptr);
  EXPECT_EQ(inputs[1].latency, nullptr);
  EXPECT_EQ(inputs[2].width, 30 * kUs);  // partial final window
}

TEST(SloReportTest, LinesAreIntegerOnlyAndPrefixed) {
  const SloSpec spec = MustParse("goodput>0.9");
  std::vector<SloWindowInput> windows = {GoodputWindow(0, 50, 50)};
  const SloReport report = EvaluateSlo(spec, windows);
  const std::string text = report.Lines("slo ");
  EXPECT_NE(text.find("slo objective=goodput>0.9 violated=1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("slo verdict=VIOLATED"), std::string::npos) << text;
  // Every line carries the strippable prefix.
  size_t pos = 0;
  while (pos < text.size()) {
    EXPECT_EQ(text.compare(pos, 4, "slo "), 0) << text.substr(pos, 40);
    pos = text.find('\n', pos);
    ASSERT_NE(pos, std::string::npos);
    ++pos;
  }
}

}  // namespace
}  // namespace xenic::obs
