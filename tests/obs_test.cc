// Observability layer: trace recording, per-resource monitoring, bottleneck
// attribution, and the zero-interference contract (tracing must never change
// simulation results).

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/harness/system_adapter.h"
#include "src/obs/attribution.h"
#include "src/obs/resource_stats.h"
#include "src/obs/trace_recorder.h"
#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/workload/smallbank.h"

namespace xenic {
namespace {

TEST(TraceRecorderTest, EmptyRecorderEmitsValidSkeleton) {
  obs::TraceRecorder rec;
  EXPECT_EQ(rec.num_events(), 0u);
  const std::string json = rec.ToJson();
  EXPECT_EQ(json, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[]}");
}

TEST(TraceRecorderTest, SpansAndInstantsSerialized) {
  obs::TraceRecorder rec;
  const uint32_t t0 = rec.RegisterTrack("n0", "service");
  const uint32_t t1 = rec.RegisterTrack("n1", "service");
  rec.Span(t0, "EXECUTE", 1000, 3500, 42);
  rec.Instant(t1, "apply", 4000, 42);
  EXPECT_EQ(rec.num_events(), 2u);
  EXPECT_EQ(rec.num_tracks(), 2u);

  const std::string json = rec.ToJson();
  // Metadata names both processes and both tracks.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // The span: ph X, us timestamps with ns precision, duration 2.5us.
  EXPECT_NE(json.find("\"name\":\"EXECUTE\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500"), std::string::npos);
  // The instant: ph i with scope.
  EXPECT_NE(json.find("\"name\":\"apply\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\",\"ts\":4.000,\"s\":\"t\""), std::string::npos);
  // Correlation id carried in args.
  EXPECT_NE(json.find("\"args\":{\"id\":42}"), std::string::npos);
}

TEST(TraceRecorderTest, TracksUnderSameProcessSharePid) {
  obs::TraceRecorder rec;
  rec.RegisterTrack("node", "a");
  rec.RegisterTrack("node", "b");
  rec.RegisterTrack("other", "c");
  const std::string json = rec.ToJson();
  // Two process_name metadata entries, three thread_name entries.
  size_t pn = 0;
  for (size_t pos = 0; (pos = json.find("process_name", pos)) != std::string::npos; ++pos) {
    pn++;
  }
  size_t tn = 0;
  for (size_t pos = 0; (pos = json.find("thread_name", pos)) != std::string::npos; ++pos) {
    tn++;
  }
  EXPECT_EQ(pn, 2u);
  EXPECT_EQ(tn, 3u);
}

TEST(TraceRecorderTest, EscapesNames) {
  obs::TraceRecorder rec;
  const uint32_t t = rec.RegisterTrack("we\"ird", "tr\\ack");
  rec.Span(t, "na\"me", 0, 1, 0);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("we\\\"ird"), std::string::npos);
  EXPECT_NE(json.find("tr\\\\ack"), std::string::npos);
  EXPECT_NE(json.find("na\\\"me"), std::string::npos);
}

TEST(ResourceTraceTest, ResourceAndChannelEmitServiceSpans) {
  sim::Engine e;
  obs::TraceRecorder rec;
  e.set_trace(&rec);
  sim::Resource r(&e, "core", 1);
  sim::Channel c(&e, "wire", 1.0, 5);
  r.Submit(10, [] {});
  c.Send(100, [] {});
  e.Run();
  e.set_trace(nullptr);
  EXPECT_EQ(rec.num_events(), 2u);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"name\":\"core\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"wire\""), std::string::npos);
}

TEST(ResourceMonitorTest, AggregatesByNameAcrossNodes) {
  sim::Engine e;
  sim::Resource r0(&e, "n0.cores", 2);
  sim::Resource r1(&e, "n1.cores", 2);
  sim::Channel c0(&e, "n0.wire", 1.0, 0);

  obs::ResourceMonitor mon;
  mon.Track(obs::ResourceRef{"cores", 0, &r0, nullptr});
  mon.Track(obs::ResourceRef{"cores", 1, &r1, nullptr});
  mon.Track(obs::ResourceRef{"wire", 0, nullptr, &c0});
  EXPECT_EQ(mon.tracked(), 3u);

  for (int i = 0; i < 4; ++i) {
    r0.Submit(100, [] {});  // 2 servers: 2 run, 2 wait 100
    r1.Submit(50, [] {});
  }
  c0.Send(500, [] {});
  e.Run();

  auto rows = mon.Snapshot(1000);
  ASSERT_EQ(rows.size(), 2u);
  // First-Track order, aggregated by canonical name.
  EXPECT_EQ(rows[0].name, "cores");
  EXPECT_EQ(rows[0].instances, 2u);
  EXPECT_EQ(rows[0].servers, 4u);
  EXPECT_EQ(rows[0].completed, 8u);
  EXPECT_EQ(rows[0].busy_ns, 4u * 100u + 4u * 50u);
  // Mean of the two per-node utilizations: (400/2000 + 200/2000) / 2.
  EXPECT_DOUBLE_EQ(rows[0].utilization, (0.2 + 0.1) / 2);
  EXPECT_EQ(rows[0].wait.count(), 8u);
  EXPECT_EQ(rows[0].max_wait_ns, 100u);

  EXPECT_EQ(rows[1].name, "wire");
  EXPECT_TRUE(rows[1].is_link);
  EXPECT_EQ(rows[1].completed, 1u);
  EXPECT_DOUBLE_EQ(rows[1].utilization, 0.5);  // 500 ns busy / 1000
}

TEST(ResourceMonitorTest, ResetWindowClearsWaitsAndDetachOnDestroy) {
  sim::Engine e;
  sim::Resource r(&e, "core", 1);
  {
    obs::ResourceMonitor mon;
    mon.Track(obs::ResourceRef{"core", 0, &r, nullptr});
    r.Submit(10, [] {});
    r.Submit(10, [] {});
    e.Run();
    auto rows = mon.Snapshot(100);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].wait.count(), 2u);
    mon.ResetWindow();
    rows = mon.Snapshot(100);
    EXPECT_EQ(rows[0].wait.count(), 0u);
  }
  // Monitor destroyed: the resource must not write into freed memory.
  r.Submit(10, [] {});
  e.Run();
  EXPECT_EQ(r.completed(), 3u);
}

TEST(AttributionTest, RanksByUtilizationThenWait) {
  std::vector<obs::ResourceSnapshot> rows(3);
  rows[0].name = "idle";
  rows[0].utilization = 0.1;
  rows[1].name = "busy";
  rows[1].utilization = 0.9;
  rows[1].mean_wait_ns = 50;
  rows[2].name = "busier_wait";
  rows[2].utilization = 0.9;
  rows[2].mean_wait_ns = 500;

  const obs::BottleneckReport report = obs::Attribute(rows);
  ASSERT_EQ(report.ranked.size(), 3u);
  EXPECT_EQ(report.ranked[0].name, "busier_wait");  // same util, longer wait
  EXPECT_EQ(report.ranked[1].name, "busy");
  EXPECT_EQ(report.ranked[2].name, "idle");
  EXPECT_EQ(report.binding, 0);
  EXPECT_TRUE(report.saturated);

  const std::string table = obs::RenderAttribution(report, "test");
  EXPECT_NE(table.find("binding: busier_wait"), std::string::npos);

  const std::string json = obs::AttributionJson(report);
  EXPECT_NE(json.find("\"binding\":\"busier_wait\""), std::string::npos);
  EXPECT_NE(json.find("\"saturated\":true"), std::string::npos);
}

TEST(AttributionTest, UnsaturatedSystemSaysSo) {
  std::vector<obs::ResourceSnapshot> rows(1);
  rows[0].name = "cores";
  rows[0].utilization = 0.2;
  const obs::BottleneckReport report = obs::Attribute(rows);
  EXPECT_EQ(report.binding, 0);
  EXPECT_FALSE(report.saturated);
  const std::string table = obs::RenderAttribution(report, "test");
  EXPECT_NE(table.find("none saturated"), std::string::npos);
  EXPECT_NE(obs::AttributionJson(report).find("\"saturated\":false"), std::string::npos);
}

TEST(AttributionTest, EmptyReport) {
  const obs::BottleneckReport report = obs::Attribute({});
  EXPECT_EQ(report.binding, -1);
  EXPECT_FALSE(report.saturated);
  const std::string table = obs::RenderAttribution(report, "test");
  EXPECT_NE(table.find("no resources tracked"), std::string::npos);
  EXPECT_NE(obs::AttributionJson(report).find("\"binding\":null"), std::string::npos);
}

// The tentpole contract: attaching a trace sink and resource monitor must
// not change ANY simulation-derived value.
TEST(ObsDeterminismTest, TracingDoesNotPerturbSimulation) {
  auto run = [](bool observe, obs::TraceRecorder* rec) {
    workload::Smallbank::Options wo;
    wo.num_nodes = 2;
    wo.accounts_per_node = 2000;
    workload::Smallbank wl(wo);
    harness::SystemConfig cfg;
    cfg.kind = harness::SystemConfig::Kind::kXenic;
    cfg.num_nodes = 2;
    cfg.replication = 2;
    auto system = harness::BuildSystem(cfg, wl);
    harness::LoadWorkload(*system, wl);
    harness::RunConfig rc;
    rc.contexts_per_node = 8;
    rc.warmup = 50 * sim::kNsPerUs;
    rc.measure = 200 * sim::kNsPerUs;
    rc.collect_resources = observe;
    rc.trace = observe ? rec : nullptr;
    return harness::RunWorkload(*system, wl, rc);
  };

  obs::TraceRecorder rec;
  const harness::RunResult plain = run(false, nullptr);
  const harness::RunResult traced = run(true, &rec);

  EXPECT_EQ(plain.committed, traced.committed);
  EXPECT_EQ(plain.aborted, traced.aborted);
  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.latency.count(), traced.latency.count());
  EXPECT_EQ(plain.latency.Median(), traced.latency.Median());
  EXPECT_EQ(plain.latency.max(), traced.latency.max());
  EXPECT_EQ(plain.measure_window, traced.measure_window);
  EXPECT_DOUBLE_EQ(plain.tput_per_server, traced.tput_per_server);

  // The traced run actually produced a trace with txn phases and resource
  // service spans...
  EXPECT_GT(rec.num_events(), 0u);
  const std::string json = rec.ToJson();
  EXPECT_NE(json.find("\"EXECUTE\""), std::string::npos);
  // ...and the monitored run collected per-resource rows while the plain
  // one skipped the work entirely.
  EXPECT_TRUE(plain.resources.empty());
  EXPECT_FALSE(traced.resources.empty());
  bool found_nic_cores = false;
  for (const auto& row : traced.resources) {
    if (row.name == "nic_cores") {
      found_nic_cores = true;
      EXPECT_EQ(row.instances, 2u);
      EXPECT_GT(row.completed, 0u);
    }
  }
  EXPECT_TRUE(found_nic_cores);
}

}  // namespace
}  // namespace xenic
