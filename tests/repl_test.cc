// Replication-subsystem tests: quorum accounting (ReplicationGroup), the
// crash-guard boundary at exactly-quorum survivors, roll-forward/discard
// conformance under configured quorums at replication 3 and 5, the NIC log
// applier's continuous backup apply, fenced replica reads, and planned
// lease handoff (routing flip without crash, chain rewrite, and
// byte-determinism of a handoff chaos run across engine-job counts).

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/chaos/chaos_run.h"
#include "src/repl/failover.h"
#include "src/txn/recovery.h"

namespace xenic::repl {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;
using txn::ExecRound;
using txn::HashPartitioner;
using txn::RecoveryReport;
using txn::TxnOutcome;
using txn::TxnRequest;
using txn::XenicCluster;
using txn::XenicClusterOptions;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

XenicClusterOptions Opts(uint32_t nodes, uint32_t repl, uint32_t quorum = 0) {
  XenicClusterOptions o;
  o.num_nodes = nodes;
  o.replication = repl;
  o.quorum = quorum;
  o.tables = {store::TableSpec{kBank, "bank", 12, 16, 8, 8}};
  o.workers_per_node = 2;
  return o;
}

store::Key KeyOn(const XenicCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

TxnRequest Transfer(store::Key a, store::Key b, int64_t amt) {
  TxnRequest req;
  req.reads = {{kBank, a}, {kBank, b}};
  req.writes = {{kBank, a}, {kBank, b}};
  req.execute = [amt](ExecRound& er) {
    (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) - amt);
    (*er.writes)[1].value = Balance(GetI64((*er.reads)[1].value, 0) + amt);
  };
  return req;
}

void RunToDone(XenicCluster& c, bool* done) {
  for (int i = 0; i < 5000 && !*done; ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
  }
  ASSERT_TRUE(*done);
  c.engine().RunFor(1000 * sim::kNsPerUs);
  c.StopWorkers();
  c.engine().Run();
}

// ---------------------------------------------------------------- quorum --

TEST(ReplicationGroupTest, DefaultIsWaitForAll) {
  HashPartitioner part(6);
  XenicCluster c(Opts(6, 3), &part);
  const ReplicationGroup& rg = c.repl();
  EXPECT_EQ(rg.replication(), 3u);
  EXPECT_EQ(rg.quorum(), 3u);
  EXPECT_FALSE(rg.QuorumArmed());
  EXPECT_EQ(rg.AcksRequired(0), rg.BackupsOf(0).size());
  EXPECT_EQ(rg.CompletenessThreshold(0), rg.BackupsOf(0).size());
}

TEST(ReplicationGroupTest, QuorumArmsAndClamps) {
  HashPartitioner part(6);
  XenicCluster c(Opts(6, 3, 2), &part);
  const ReplicationGroup& rg = c.repl();
  EXPECT_EQ(rg.quorum(), 2u);
  EXPECT_TRUE(rg.QuorumArmed());
  // Quorum counts the primary: one backup ack reaches 2 total copies.
  EXPECT_EQ(rg.AcksRequired(0), 1u);
  EXPECT_EQ(rg.CompletenessThreshold(0), 1u);

  // Over-asking clamps back to wait-for-all.
  XenicCluster c2(Opts(6, 3, 7), &part);
  EXPECT_EQ(c2.repl().quorum(), 3u);
  EXPECT_FALSE(c2.repl().QuorumArmed());
}

// Satellite: the chaos crash guard, driven by the configured group rather
// than a hard-coded constant. A crash is admissible exactly when the
// survivors still form a commit quorum.
TEST(ReplicationGroupTest, CrashAllowedAtExactlyQuorumSurvivors) {
  HashPartitioner part(6);
  XenicCluster c(Opts(6, 3, 2), &part);
  const ReplicationGroup& rg = c.repl();
  // 3 live, quorum 2: crashing one leaves exactly quorum -- allowed.
  EXPECT_TRUE(rg.CrashAllowed(3));
  // 2 live: a crash would leave sub-quorum survivors -- refused.
  EXPECT_FALSE(rg.CrashAllowed(2));

  // Default (wait-for-all, quorum == replication == 3): the historical
  // guard shape, crash only while more than `replication` nodes live.
  XenicCluster d(Opts(6, 3), &part);
  EXPECT_TRUE(d.repl().CrashAllowed(4));
  EXPECT_FALSE(d.repl().CrashAllowed(3));
}

TEST(ReplicationGroupTest, IsBackupOfWalksChainAndSkipsFailed) {
  HashPartitioner part(6);
  XenicCluster c(Opts(6, 3), &part);
  const ReplicationGroup& rg = c.repl();
  const auto backups = rg.BackupsOf(2);
  ASSERT_EQ(backups.size(), 2u);
  for (store::NodeId b : backups) {
    EXPECT_TRUE(rg.IsBackupOf(b, 2));
  }
  EXPECT_FALSE(rg.IsBackupOf(2, 2));
  c.mutable_map().MarkFailed(backups[0]);
  EXPECT_FALSE(rg.IsBackupOf(backups[0], 2));
}

// --------------------------------------- roll-forward/discard conformance --

store::LogRecord LogRec(store::TxnId txn, store::Key key, int64_t v) {
  store::LogRecord rec;
  rec.type = store::LogRecordType::kLog;
  rec.txn = txn;
  rec.writes.push_back(store::LogWrite{kBank, key, 2, Balance(v), false});
  return rec;
}

// Shared scenario: a LOG record reached `copies` of the failed primary's
// backups before the crash. Returns the recovery report.
RecoveryReport RecoverWithCopies(uint32_t nodes, uint32_t repl, uint32_t quorum,
                                 size_t copies) {
  HashPartitioner part(nodes);
  XenicCluster c(Opts(nodes, repl, quorum), &part);
  const store::NodeId failed = 1;
  const store::Key key = KeyOn(c, failed);
  c.LoadReplicated(kBank, key, Balance(100));
  const auto backups = c.repl().BackupsOf(failed);
  EXPECT_EQ(backups.size(), static_cast<size_t>(repl - 1));
  EXPECT_LE(copies, backups.size());
  const store::TxnId txn = store::MakeTxnId(0, 42);
  for (size_t i = 0; i < copies; ++i) {
    EXPECT_TRUE(c.datastore(backups[i]).log().Append(LogRec(txn, key, 150)).ok());
  }
  return RecoverShard(c, failed, backups[0]);
}

TEST(ReplQuorumRecoveryTest, Replication3QuorumButNotAllRollsForward) {
  // quorum 2 of 3: the coordinator commits after ONE backup ack, so a
  // single surviving copy proves the transaction may have reported.
  RecoveryReport r = RecoverWithCopies(4, 3, 2, 1);
  EXPECT_EQ(r.rolled_forward, 1u);
  EXPECT_EQ(r.discarded, 0u);
}

TEST(ReplQuorumRecoveryTest, Replication3WaitForAllDiscardsSingleCopy) {
  // Same single-copy evidence, but at wait-for-all the commit point needs
  // both backups: the record must be discarded.
  RecoveryReport r = RecoverWithCopies(4, 3, 0, 1);
  EXPECT_EQ(r.rolled_forward, 0u);
  EXPECT_EQ(r.discarded, 1u);
}

TEST(ReplQuorumRecoveryTest, Replication5QuorumButNotAllRollsForward) {
  // quorum 3 of 5 (2 backup acks): two surviving copies out of four
  // backups reach the commit point.
  RecoveryReport r = RecoverWithCopies(6, 5, 3, 2);
  EXPECT_EQ(r.rolled_forward, 1u);
  EXPECT_EQ(r.discarded, 0u);
}

TEST(ReplQuorumRecoveryTest, Replication5SubQuorumDiscards) {
  // One copy is sub-quorum at quorum 3: the coordinator cannot have
  // collected its acks, so recovery discards.
  RecoveryReport r = RecoverWithCopies(6, 5, 3, 1);
  EXPECT_EQ(r.rolled_forward, 0u);
  EXPECT_EQ(r.discarded, 1u);
}

// ----------------------------------------------------- NIC log applier --

TEST(NicLogApplierTest, ContinuouslyAppliesBackupState) {
  XenicClusterOptions o = Opts(3, 2);
  o.features.nic_log_apply = true;
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  const store::Key a = KeyOn(c, 0);
  const store::Key b = KeyOn(c, 1);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(100));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(Transfer(a, b, 30), [&](TxnOutcome oc) {
    EXPECT_EQ(oc, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);

  EXPECT_GT(c.TotalStats().nic_log_applied, 0u);
  // The backup of b's shard holds the post-commit value: the applier kept
  // the replica continuously current, no recovery scan required.
  const store::NodeId backup = c.repl().BackupsOf(1)[0];
  auto r = c.datastore(backup).table(kBank).Lookup(b);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(GetI64(r->value, 0), 130);
}

// ------------------------------------------------------- replica reads --

TEST(ReplicaReadTest, BackupServesFencedReadLocally) {
  XenicClusterOptions o = Opts(3, 2);
  o.features.nic_log_apply = true;
  o.features.replica_reads = true;
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  const store::Key key = KeyOn(c, 1);
  c.LoadReplicated(kBank, key, Balance(100));
  c.StartWorkers();

  const store::NodeId backup = c.repl().BackupsOf(1)[0];
  ASSERT_NE(backup, 1u);
  int64_t got = 0;
  TxnRequest req;
  req.reads = {{kBank, key}};
  req.execute = [&got](ExecRound& er) { got = GetI64((*er.reads)[0].value, 0); };
  bool done = false;
  c.node(backup).Submit(std::move(req), [&](TxnOutcome oc) {
    EXPECT_EQ(oc, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);

  EXPECT_EQ(got, 100);
  EXPECT_EQ(c.TotalStats().replica_reads, 1u);
}

TEST(ReplicaReadTest, NonBackupTakesDistributedPath) {
  XenicClusterOptions o = Opts(4, 2);
  o.features.nic_log_apply = true;
  o.features.replica_reads = true;
  HashPartitioner part(4);
  XenicCluster c(o, &part);
  const store::Key key = KeyOn(c, 1);
  c.LoadReplicated(kBank, key, Balance(100));
  c.StartWorkers();

  // Node 3 is not in shard 1's backup chain (replication 2 -> backup is
  // node 2 only): the read must go distributed and still commit.
  ASSERT_FALSE(c.repl().IsBackupOf(3, 1));
  int64_t got = 0;
  TxnRequest req;
  req.reads = {{kBank, key}};
  req.execute = [&got](ExecRound& er) { got = GetI64((*er.reads)[0].value, 0); };
  bool done = false;
  c.node(3).Submit(std::move(req), [&](TxnOutcome oc) {
    EXPECT_EQ(oc, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);
  EXPECT_EQ(got, 100);
  EXPECT_EQ(c.TotalStats().replica_reads, 0u);
}

// ---------------------------------------------------- planned failover --

TEST(PlannedFailoverTest, HandoffFlipsRoutingWithoutCrash) {
  HashPartitioner part(4);
  XenicCluster c(Opts(4, 3), &part);
  const store::Key key = KeyOn(c, 1);
  c.LoadReplicated(kBank, key, Balance(100));

  std::map<store::NodeId, store::NodeId> promotions;
  std::unique_ptr<txn::RemappedPartitioner> remapped;
  const uint64_t v0 = c.map().version;
  HandoffReport r = PlannedHandoff(c, 1, &part, &promotions, &remapped);
  ASSERT_TRUE(r.performed);
  EXPECT_EQ(r.promoted, c.repl().BackupsOf(1)[0]);
  EXPECT_EQ(c.map().PrimaryOf(kBank, key), r.promoted);
  // No crash, no eviction: the old primary keeps coordinating and acking.
  EXPECT_FALSE(c.node(1).crashed());
  EXPECT_FALSE(c.map().IsFailed(1));
  EXPECT_EQ(c.map().version, v0 + 1);

  // Traffic against the moved shard commits at the new primary.
  c.StartWorkers();
  const store::Key other = KeyOn(c, 0);
  c.LoadReplicated(kBank, other, Balance(100));
  bool done = false;
  c.node(0).Submit(Transfer(other, key, 25), [&](TxnOutcome oc) {
    EXPECT_EQ(oc, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);
  auto after = c.datastore(r.promoted).table(kBank).Lookup(key);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(GetI64(after->value, 0), 125);
}

TEST(PlannedFailoverTest, ChainedHandoffsFollowTheLease) {
  HashPartitioner part(4);
  XenicCluster c(Opts(4, 3), &part);
  const store::Key k1 = KeyOn(c, 1);

  std::map<store::NodeId, store::NodeId> promotions;
  std::unique_ptr<txn::RemappedPartitioner> remapped;
  HandoffReport r1 = PlannedHandoff(c, 1, &part, &promotions, &remapped);
  ASSERT_TRUE(r1.performed);
  // Hand off the promoted node too: shard 1's keys must follow the lease
  // to the SECOND promotion, not dangle at the first.
  HandoffReport r2 = PlannedHandoff(c, r1.promoted, &part, &promotions, &remapped);
  ASSERT_TRUE(r2.performed);
  EXPECT_NE(r2.promoted, r1.promoted);
  EXPECT_EQ(c.map().PrimaryOf(kBank, k1), r2.promoted);
}

TEST(PlannedFailoverTest, RefusesWithoutLiveBackup) {
  HashPartitioner part(4);
  XenicCluster c(Opts(4, 2), &part);  // one backup per shard
  const store::NodeId backup = c.repl().BackupsOf(1)[0];
  c.node(backup).Crash();
  std::map<store::NodeId, store::NodeId> promotions;
  std::unique_ptr<txn::RemappedPartitioner> remapped;
  HandoffReport r = PlannedHandoff(c, 1, &part, &promotions, &remapped);
  EXPECT_FALSE(r.performed);
}

// A handoff chaos run is part of the determinism contract: identical
// verdict AND identical timeline bytes for any engine-job count.
TEST(PlannedFailoverTest, HandoffChaosRunIsDeterministic) {
  chaos::ChaosConfig cfg;
  cfg.seed = 5;
  cfg.faults.crashes = 0;
  cfg.faults.planned_handoffs = 2;
  cfg.system.features.nic_log_apply = true;
  cfg.timeline = true;

  chaos::ChaosConfig jobs4 = cfg;
  jobs4.engine_jobs = 4;
  const chaos::ChaosVerdict a = chaos::RunChaos(cfg);
  const chaos::ChaosVerdict b = chaos::RunChaos(jobs4);
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_GT(a.faults.handoffs, 0u);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.Timeline(), b.Timeline());
}

// Regression: a crash of a node that had previously RECEIVED a planned
// handoff (promotion chain handoff {A->B}, then crash of B). The one-hop
// routing table must collapse the chain to the crash-promoted backup, and
// the handoff's state transfer must have seeded the new serving set with
// the chained shard's base snapshot -- without either, shard-A reads land
// on a node with no copy (this exact schedule segfaulted on a null read
// result before the fix). Replication 2 makes the chain unavoidable:
// every node has exactly one backup.
TEST(PlannedFailoverTest, CrashAfterHandoffCollapsesPromotionChain) {
  chaos::ChaosConfig cfg;
  cfg.seed = 2;
  cfg.system.replication = 2;
  cfg.faults.crashes = 1;
  cfg.faults.eviction_storms = 2;
  cfg.faults.stall_windows = 1;
  cfg.faults.drop_prob = 0.01;
  cfg.faults.dup_prob = 0.01;
  cfg.faults.delay_prob = 0.02;
  cfg.faults.planned_handoffs = 1;

  const chaos::ChaosVerdict v = chaos::RunChaos(cfg);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_EQ(v.faults.crashes, 1u);
  EXPECT_EQ(v.faults.handoffs, 1u);
}

}  // namespace
}  // namespace xenic::repl
