#include "src/store/large_object_heap.h"

#include <gtest/gtest.h>

namespace xenic::store {
namespace {

TEST(LargeObjectHeapTest, AllocGetFree) {
  LargeObjectHeap heap;
  auto h = heap.Alloc(Value(300, 7));
  EXPECT_TRUE(heap.Valid(h));
  EXPECT_EQ(heap.Get(h), Value(300, 7));
  EXPECT_EQ(heap.live_objects(), 1u);
  EXPECT_EQ(heap.live_bytes(), 300u);
  heap.Free(h);
  EXPECT_FALSE(heap.Valid(h));
  EXPECT_EQ(heap.live_objects(), 0u);
  EXPECT_EQ(heap.live_bytes(), 0u);
}

TEST(LargeObjectHeapTest, HandleReuse) {
  LargeObjectHeap heap;
  auto h1 = heap.Alloc(Value(10, 1));
  heap.Free(h1);
  auto h2 = heap.Alloc(Value(10, 2));
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(heap.Get(h2), Value(10, 2));
}

TEST(LargeObjectHeapTest, UpdateChangesSizeAccounting) {
  LargeObjectHeap heap;
  auto h = heap.Alloc(Value(100, 1));
  heap.Update(h, Value(500, 2));
  EXPECT_EQ(heap.live_bytes(), 500u);
  EXPECT_EQ(heap.Get(h), Value(500, 2));
}

TEST(LargeObjectHeapTest, ManyObjectsIndependent) {
  LargeObjectHeap heap;
  std::vector<LargeObjectHeap::Handle> hs;
  for (int i = 0; i < 100; ++i) {
    hs.push_back(heap.Alloc(Value(8, static_cast<uint8_t>(i))));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(heap.Get(hs[static_cast<size_t>(i)]), Value(8, static_cast<uint8_t>(i)));
  }
  for (int i = 0; i < 100; i += 2) {
    heap.Free(hs[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(heap.live_objects(), 50u);
  for (int i = 1; i < 100; i += 2) {
    EXPECT_EQ(heap.Get(hs[static_cast<size_t>(i)]), Value(8, static_cast<uint8_t>(i)));
  }
}

TEST(LargeObjectHeapTest, InvalidHandleChecks) {
  LargeObjectHeap heap;
  EXPECT_FALSE(heap.Valid(LargeObjectHeap::kNullHandle));
  EXPECT_FALSE(heap.Valid(0));
}

}  // namespace
}  // namespace xenic::store
