#include "src/store/robinhood_table.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace xenic::store {
namespace {

RobinhoodTable::Options SmallOpts(size_t cap_log2 = 10, size_t value_size = 16,
                                  uint16_t dm = 8) {
  RobinhoodTable::Options o;
  o.capacity_log2 = cap_log2;
  o.value_size = value_size;
  o.max_displacement = dm;
  o.segment_slots = 8;
  return o;
}

Value V(uint8_t fill, size_t n = 16) { return Value(n, fill); }

TEST(RobinhoodTest, InsertLookup) {
  RobinhoodTable t(SmallOpts());
  EXPECT_TRUE(t.Insert(42, V(7)).ok());
  auto r = t.Lookup(42);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, V(7));
  EXPECT_EQ(r->seq, 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(RobinhoodTest, MissingKeyNotFound) {
  RobinhoodTable t(SmallOpts());
  EXPECT_FALSE(t.Lookup(42).has_value());
  EXPECT_FALSE(t.GetSeq(42).has_value());
}

TEST(RobinhoodTest, DuplicateInsertRejected) {
  RobinhoodTable t(SmallOpts());
  ASSERT_TRUE(t.Insert(1, V(1)).ok());
  EXPECT_EQ(t.Insert(1, V(2)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(t.Lookup(1)->value, V(1));
}

TEST(RobinhoodTest, UpdateBumpsVersion) {
  RobinhoodTable t(SmallOpts());
  ASSERT_TRUE(t.Insert(1, V(1)).ok());
  ASSERT_TRUE(t.Update(1, V(9)).ok());
  auto r = t.Lookup(1);
  EXPECT_EQ(r->value, V(9));
  EXPECT_EQ(r->seq, 2u);
}

TEST(RobinhoodTest, UpdateMissingFails) {
  RobinhoodTable t(SmallOpts());
  EXPECT_EQ(t.Update(5, V(1)).code(), StatusCode::kNotFound);
}

TEST(RobinhoodTest, ApplySetsExplicitSeq) {
  RobinhoodTable t(SmallOpts());
  ASSERT_TRUE(t.Apply(1, V(1), 17).ok());
  EXPECT_EQ(t.GetSeq(1).value(), 17u);
  ASSERT_TRUE(t.Apply(1, V(2), 18).ok());
  EXPECT_EQ(t.GetSeq(1).value(), 18u);
  EXPECT_EQ(t.Lookup(1)->value, V(2));
}

TEST(RobinhoodTest, EraseRemovesKey) {
  RobinhoodTable t(SmallOpts());
  ASSERT_TRUE(t.Insert(1, V(1)).ok());
  ASSERT_TRUE(t.Erase(1).ok());
  EXPECT_FALSE(t.Lookup(1).has_value());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Erase(1).code(), StatusCode::kNotFound);
}

TEST(RobinhoodTest, ManyKeysAllFindable) {
  RobinhoodTable t(SmallOpts(12, 16, 16));
  const size_t n = static_cast<size_t>(0.9 * t.capacity());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(i * 977 + 13, V(static_cast<uint8_t>(i))).ok()) << i;
  }
  EXPECT_EQ(t.size(), n);
  for (size_t i = 0; i < n; ++i) {
    auto r = t.Lookup(i * 977 + 13);
    ASSERT_TRUE(r.has_value()) << i;
    EXPECT_EQ(r->value[0], static_cast<uint8_t>(i));
  }
}

TEST(RobinhoodTest, DisplacementInvariantHolds) {
  // After a heavy load, every table element's probe path must satisfy
  // disp(t) >= t - home for all slots t on the path (the invariant the
  // deletion logic relies on).
  RobinhoodTable t(SmallOpts(12, 8, 16));
  Rng rng(3);
  const size_t n = static_cast<size_t>(0.9 * t.capacity());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(t.Insert(rng.Next(), V(1, 8)).ok());
  }
  std::vector<uint8_t> region;
  t.ReadRegion(0, t.capacity(), region);
  for (size_t s = 0; s < t.capacity(); ++s) {
    SlotView view = t.ViewInRegion(region, s);
    if (!view.occupied()) {
      continue;
    }
    const size_t home = (s - view.disp()) & (t.capacity() - 1);
    EXPECT_EQ(home, t.HomeSlot(view.key()));
    EXPECT_LT(view.disp(), t.max_displacement());
    for (size_t d = 0; d < view.disp(); ++d) {
      SlotView path = t.ViewInRegion(region, (home + d) & (t.capacity() - 1));
      ASSERT_TRUE(path.occupied()) << "hole in probe path";
      ASSERT_GE(path.disp(), d) << "robinhood invariant violated";
    }
  }
}

TEST(RobinhoodTest, OverflowUsedWhenDisplacementLimited) {
  RobinhoodTable t(SmallOpts(10, 8, 4));  // tight Dm forces overflow
  Rng rng(4);
  const size_t n = static_cast<size_t>(0.9 * t.capacity());
  std::vector<Key> keys;
  for (size_t i = 0; i < n; ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, V(static_cast<uint8_t>(i), 8)).ok());
    keys.push_back(k);
  }
  EXPECT_GT(t.overflow_size(), 0u);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto r = t.Lookup(keys[i]);
    ASSERT_TRUE(r.has_value()) << i;
    EXPECT_EQ(r->value[0], static_cast<uint8_t>(i));
  }
}

TEST(RobinhoodTest, UpdateAndEraseInOverflow) {
  RobinhoodTable t(SmallOpts(10, 8, 4));
  Rng rng(5);
  std::vector<Key> keys;
  for (size_t i = 0; i < static_cast<size_t>(0.9 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, V(1, 8)).ok());
    keys.push_back(k);
  }
  ASSERT_GT(t.overflow_size(), 0u);
  // Find a key that lives in overflow: probe all keys and test update/erase
  // still works for each (covers both locations).
  for (Key k : keys) {
    ASSERT_TRUE(t.Update(k, V(2, 8)).ok());
  }
  for (Key k : keys) {
    ASSERT_TRUE(t.Erase(k).ok());
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.overflow_size(), 0u);
}

TEST(RobinhoodTest, SegmentHintsUpperBoundActualDisp) {
  RobinhoodTable t(SmallOpts(12, 8, 16));
  Rng rng(6);
  for (size_t i = 0; i < static_cast<size_t>(0.85 * t.capacity()); ++i) {
    ASSERT_TRUE(t.Insert(rng.Next(), V(1, 8)).ok());
  }
  std::vector<uint8_t> region;
  t.ReadRegion(0, t.capacity(), region);
  for (size_t s = 0; s < t.capacity(); ++s) {
    SlotView view = t.ViewInRegion(region, s);
    if (!view.occupied()) {
      continue;
    }
    const size_t seg = t.SegmentOfKey(view.key());
    EXPECT_GE(t.SegmentMaxDisp(seg), view.disp());
  }
}

TEST(RobinhoodTest, TightenHintsMatchesActual) {
  RobinhoodTable t(SmallOpts(12, 8, 16));
  Rng rng(7);
  std::vector<Key> keys;
  for (size_t i = 0; i < static_cast<size_t>(0.8 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, V(1, 8)).ok());
    keys.push_back(k);
  }
  for (size_t i = 0; i < keys.size() / 2; ++i) {
    ASSERT_TRUE(t.Erase(keys[i]).ok());
  }
  t.TightenHints();
  // After tightening, hints must still upper-bound actual displacements.
  std::vector<uint8_t> region;
  t.ReadRegion(0, t.capacity(), region);
  for (size_t s = 0; s < t.capacity(); ++s) {
    SlotView view = t.ViewInRegion(region, s);
    if (view.occupied()) {
      EXPECT_GE(t.SegmentMaxDisp(t.SegmentOfKey(view.key())), view.disp());
    }
  }
}

TEST(RobinhoodTest, ReadRegionWrapsAround) {
  RobinhoodTable t(SmallOpts(6, 8, 8));  // 64 slots
  std::vector<uint8_t> region;
  t.ReadRegion(60, 8, region);
  EXPECT_EQ(region.size(), 8 * t.slot_size());
}

TEST(RobinhoodTest, FindInRegionLocatesKey) {
  RobinhoodTable t(SmallOpts());
  ASSERT_TRUE(t.Insert(123, V(9)).ok());
  const size_t home = t.HomeSlot(123);
  std::vector<uint8_t> region;
  t.ReadRegion(home, t.max_displacement(), region);
  auto off = t.FindInRegion(region, home, 123);
  ASSERT_TRUE(off.has_value());
  SlotView view = t.ViewInRegion(region, *off);
  EXPECT_EQ(view.key(), 123u);
  EXPECT_EQ(t.DecodeValue(view), V(9));
}

TEST(RobinhoodTest, LargeValuesIndirectThroughHeap) {
  RobinhoodTable t(SmallOpts(10, 600, 8));
  EXPECT_TRUE(t.large_values());
  EXPECT_EQ(t.slot_size(), sizeof(SlotHeader) + 8);
  Value big(600, 0xAB);
  ASSERT_TRUE(t.Insert(5, big).ok());
  EXPECT_EQ(t.Lookup(5)->value, big);
  EXPECT_EQ(t.heap().live_objects(), 1u);
  Value big2(600, 0xCD);
  ASSERT_TRUE(t.Update(5, big2).ok());
  EXPECT_EQ(t.Lookup(5)->value, big2);
  EXPECT_EQ(t.heap().live_objects(), 1u);
  ASSERT_TRUE(t.Erase(5).ok());
  EXPECT_EQ(t.heap().live_objects(), 0u);
}

TEST(RobinhoodTest, LargeValueVisibleThroughRegionRead) {
  RobinhoodTable t(SmallOpts(10, 600, 8));
  Value big(600, 0x11);
  ASSERT_TRUE(t.Insert(77, big).ok());
  const size_t home = t.HomeSlot(77);
  std::vector<uint8_t> region;
  t.ReadRegion(home, t.max_displacement(), region);
  auto off = t.FindInRegion(region, home, 77);
  ASSERT_TRUE(off.has_value());
  SlotView view = t.ViewInRegion(region, *off);
  EXPECT_TRUE(view.large_value());
  EXPECT_EQ(t.heap().Get(view.large_handle()), big);
}

TEST(RobinhoodTest, UnlimitedDisplacementNeverOverflows) {
  RobinhoodTable::Options o = SmallOpts(12, 8, 0);  // Dm = unlimited
  RobinhoodTable t(o);
  Rng rng(8);
  for (size_t i = 0; i < static_cast<size_t>(0.95 * t.capacity()); ++i) {
    ASSERT_TRUE(t.Insert(rng.Next(), V(1, 8)).ok());
  }
  EXPECT_EQ(t.overflow_size(), 0u);
}

TEST(RobinhoodTest, DmaConsistentSwapNeverLosesKeys) {
  // At every intermediate step of every insert's swap chain, all
  // previously inserted keys must be findable in (table region + overflow)
  // — the property a concurrent DMA read depends on.
  RobinhoodTable t(SmallOpts(8, 8, 6));  // small + tight to force swaps
  Rng rng(9);
  std::vector<Key> inserted;
  uint64_t checks = 0;
  t.set_swap_step_hook([&] {
    std::vector<uint8_t> region;
    t.ReadRegion(0, t.capacity(), region);
    for (Key k : inserted) {
      bool found = t.FindInRegion(region, 0, k).has_value();
      if (!found) {
        for (size_t seg = 0; seg < t.num_segments() && !found; ++seg) {
          for (const auto& e : t.ReadOverflow(seg)) {
            if (e.key == k) {
              found = true;
              break;
            }
          }
        }
      }
      ASSERT_TRUE(found) << "key " << k << " invisible mid-swap";
      checks++;
    }
  });
  for (size_t i = 0; i < static_cast<size_t>(0.9 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, V(1, 8)).ok());
    inserted.push_back(k);
  }
  EXPECT_GT(t.total_swaps(), 0u);
  EXPECT_GT(checks, 0u);
}

TEST(RobinhoodTest, SwapsReduceProbeVariance) {
  // Sanity on the Robinhood property itself: with balancing, max
  // displacement stays far below a plain linear-probing table's worst case.
  RobinhoodTable t(SmallOpts(14, 8, 0));
  Rng rng(10);
  for (size_t i = 0; i < static_cast<size_t>(0.9 * t.capacity()); ++i) {
    ASSERT_TRUE(t.Insert(rng.Next(), V(1, 8)).ok());
  }
  uint16_t max_disp = 0;
  std::vector<uint8_t> region;
  t.ReadRegion(0, t.capacity(), region);
  for (size_t s = 0; s < t.capacity(); ++s) {
    SlotView view = t.ViewInRegion(region, s);
    if (view.occupied()) {
      max_disp = std::max(max_disp, view.disp());
    }
  }
  // Robinhood at 90% keeps max displacement small (tens, not hundreds).
  EXPECT_LT(max_disp, 64);
  EXPECT_GT(t.total_swaps(), 0u);
}

}  // namespace
}  // namespace xenic::store


namespace xenic::store {
namespace {

TEST(RobinhoodDeletionTest, OverflowPullInFillsHole) {
  // Craft a table where deletion can pull an overflow element back into
  // the freed slot: tight Dm, dense segment.
  RobinhoodTable::Options o;
  o.capacity_log2 = 8;
  o.value_size = 8;
  o.max_displacement = 4;
  o.segment_slots = 8;
  RobinhoodTable t(o);
  Rng rng(77);
  std::vector<Key> keys;
  for (size_t i = 0; i < static_cast<size_t>(0.92 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, Value(8, static_cast<uint8_t>(i))).ok());
    keys.push_back(k);
  }
  ASSERT_GT(t.overflow_size(), 0u);
  const size_t overflow_before = t.overflow_size();

  // Delete table-resident keys until an overflow pull-in happens (the
  // overflow population shrinks without an explicit overflow-key erase).
  bool pulled = false;
  for (Key k : keys) {
    // Skip keys currently in overflow (their erase reduces overflow too,
    // but via the direct path) -- detect via region scan.
    const size_t home = t.HomeSlot(k);
    std::vector<uint8_t> region;
    t.ReadRegion(home, t.max_displacement(), region);
    if (!t.FindInRegion(region, home, k).has_value()) {
      continue;  // overflow-resident
    }
    ASSERT_TRUE(t.Erase(k).ok());
    if (t.overflow_size() < overflow_before) {
      pulled = true;
      break;
    }
  }
  EXPECT_TRUE(pulled) << "no deletion pulled an overflow element back";
  // All remaining keys still findable.
  size_t found = 0;
  for (Key k : keys) {
    found += t.Contains(k) ? 1 : 0;
  }
  EXPECT_EQ(found, t.size());
}

TEST(RobinhoodDeletionTest, BackwardShiftPreservesLookups) {
  RobinhoodTable::Options o;
  o.capacity_log2 = 10;
  o.value_size = 8;
  o.max_displacement = 0;  // unlimited: only backward shifts on delete
  RobinhoodTable t(o);
  Rng rng(88);
  std::vector<Key> keys;
  for (size_t i = 0; i < static_cast<size_t>(0.9 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k, Value(8, 1)).ok());
    keys.push_back(k);
  }
  // Delete every third key; all others must remain findable.
  std::vector<Key> remaining;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(t.Erase(keys[i]).ok());
    } else {
      remaining.push_back(keys[i]);
    }
  }
  for (Key k : remaining) {
    ASSERT_TRUE(t.Contains(k)) << k;
  }
  EXPECT_EQ(t.size(), remaining.size());
}

}  // namespace
}  // namespace xenic::store
