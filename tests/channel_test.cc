#include "src/sim/channel.h"

#include <gtest/gtest.h>

namespace xenic::sim {
namespace {

TEST(ChannelTest, DeliveryTimeIsSerializationPlusLatency) {
  Engine e;
  // 1 byte/ns, 100 ns propagation.
  Channel ch(&e, "link", 1.0, 100);
  Tick delivered = 0;
  ch.Send(50, [&] { delivered = e.now(); });
  e.Run();
  EXPECT_EQ(delivered, 150u);
}

TEST(ChannelTest, BackToBackSendsSerialize) {
  Engine e;
  Channel ch(&e, "link", 1.0, 0);
  std::vector<Tick> times;
  ch.Send(100, [&] { times.push_back(e.now()); });
  ch.Send(100, [&] { times.push_back(e.now()); });
  e.Run();
  EXPECT_EQ(times, (std::vector<Tick>{100, 200}));
}

TEST(ChannelTest, IdleGapResetsStart) {
  Engine e;
  Channel ch(&e, "link", 1.0, 0);
  std::vector<Tick> times;
  ch.Send(10, [&] { times.push_back(e.now()); });
  e.ScheduleAt(1000, [&] { ch.Send(10, [&] { times.push_back(e.now()); }); });
  e.Run();
  EXPECT_EQ(times, (std::vector<Tick>{10, 1010}));
}

TEST(ChannelTest, BandwidthMatches100Gbe) {
  // 100 Gbps = 12.5 bytes/ns. A 1500 B frame takes 120 ns to serialize.
  Engine e;
  Channel ch(&e, "100g", 12.5, 0);
  Tick delivered = 0;
  ch.Send(1500, [&] { delivered = e.now(); });
  e.Run();
  EXPECT_EQ(delivered, 120u);
}

TEST(ChannelTest, UtilizationAccounting) {
  Engine e;
  Channel ch(&e, "link", 2.0, 0);
  ch.Send(1000, [] {});
  e.Run();
  // 1000 bytes over a 1000 ns window on a 2 B/ns link = 50%.
  EXPECT_DOUBLE_EQ(ch.Utilization(1000), 0.5);
  EXPECT_EQ(ch.bytes_sent(), 1000u);
  EXPECT_EQ(ch.sends(), 1u);
  ch.ResetStats();
  EXPECT_EQ(ch.bytes_sent(), 0u);
}

TEST(ChannelTest, ManySmallVsOneLargeSameOccupancy) {
  Engine e;
  Channel a(&e, "a", 1.0, 0);
  Channel b(&e, "b", 1.0, 0);
  Tick last_a = 0;
  Tick last_b = 0;
  for (int i = 0; i < 10; ++i) {
    a.Send(10, [&] { last_a = e.now(); });
  }
  b.Send(100, [&] { last_b = e.now(); });
  e.Run();
  EXPECT_EQ(last_a, last_b);
}

}  // namespace
}  // namespace xenic::sim
