// Cross-system workload integration: run Retwis and a money-conserving
// Smallbank mix on every engine via the harness, then audit invariants by
// reading back through the public transaction API (no internal peeking),
// exactly as an application would.

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/workload/retwis.h"
#include "src/workload/smallbank.h"

namespace xenic::harness {
namespace {

std::vector<SystemConfig> AllSystems() {
  std::vector<SystemConfig> out;
  SystemConfig x;
  x.kind = SystemConfig::Kind::kXenic;
  x.num_nodes = 3;
  x.replication = 2;
  out.push_back(x);
  for (auto mode : {baseline::BaselineMode::kDrtmH, baseline::BaselineMode::kDrtmHNC,
                    baseline::BaselineMode::kFasst, baseline::BaselineMode::kDrtmR}) {
    SystemConfig b;
    b.kind = SystemConfig::Kind::kBaseline;
    b.mode = mode;
    b.num_nodes = 3;
    b.replication = 2;
    out.push_back(b);
  }
  return out;
}

// Read one key's first-8-bytes value through a transaction.
int64_t ReadBalance(SystemAdapter& sys, store::TableId t, store::Key k,
                    store::NodeId coordinator) {
  int64_t got = 0;
  bool done = false;
  txn::TxnRequest req;
  req.reads = {{t, k}};
  req.execute = [&got](txn::ExecRound& er) {
    got = (*er.reads)[0].found ? store::GetI64((*er.reads)[0].value, 0) : 0;
  };
  sys.Submit(coordinator, std::move(req), [&](txn::TxnOutcome o) {
    EXPECT_EQ(o, txn::TxnOutcome::kCommitted);
    done = true;
  });
  for (int i = 0; i < 2000 && !done; ++i) {
    sys.engine().RunFor(10 * sim::kNsPerUs);
  }
  EXPECT_TRUE(done);
  return got;
}

TEST(WorkloadIntegrationTest, SmallbankMoneyConservedOnEverySystem) {
  for (const auto& cfg : AllSystems()) {
    workload::Smallbank::Options wo;
    wo.num_nodes = 3;
    wo.accounts_per_node = 400;
    wo.mix = {40, 10, 0, 50, 0, 0};  // Amalgamate / Balance / SendPayment
    workload::Smallbank wl(wo);
    auto sys = BuildSystem(cfg, wl);
    LoadWorkload(*sys, wl);

    RunConfig rc;
    rc.contexts_per_node = 4;
    rc.warmup = 100 * sim::kNsPerUs;
    rc.measure = 600 * sim::kNsPerUs;
    RunResult r = RunWorkload(*sys, wl, rc);
    ASSERT_GT(r.committed, 50u) << sys->Name();

    // Drain, then audit total money through the public API.
    sys->StartWorkers();
    sys->engine().RunFor(2000 * sim::kNsPerUs);
    int64_t total = 0;
    for (store::Key a = 0; a < wl.total_accounts(); ++a) {
      total += ReadBalance(*sys, workload::Smallbank::kSavings, a, 0);
      total += ReadBalance(*sys, workload::Smallbank::kChecking, a, 0);
    }
    EXPECT_EQ(total, wl.initial_total()) << sys->Name();
    sys->StopWorkers();
    sys->engine().Run();
  }
}

TEST(WorkloadIntegrationTest, RetwisWritesVisibleOnEverySystem) {
  for (const auto& cfg : AllSystems()) {
    workload::Retwis::Options wo;
    wo.num_nodes = 3;
    wo.keys_per_node = 1500;
    workload::Retwis wl(wo);
    auto sys = BuildSystem(cfg, wl);
    LoadWorkload(*sys, wl);

    RunConfig rc;
    rc.contexts_per_node = 4;
    rc.warmup = 100 * sim::kNsPerUs;
    rc.measure = 500 * sim::kNsPerUs;
    RunResult r = RunWorkload(*sys, wl, rc);
    EXPECT_GT(r.committed, 100u) << sys->Name();
    EXPECT_LT(r.abort_rate, 0.5) << sys->Name();

    // Every key must still be readable (no lost objects under the mix of
    // blind writes and read-modify-writes).
    sys->StartWorkers();
    bool done = false;
    size_t found = 0;
    txn::TxnRequest audit;
    for (store::Key k = 0; k < 10; ++k) {
      audit.reads.push_back({workload::Retwis::kStore, k * 97 % wl.total_keys()});
    }
    audit.allow_ship = false;
    audit.execute = [&found](txn::ExecRound& er) {
      found = 0;
      for (const auto& rr : *er.reads) {
        found += rr.found ? 1 : 0;
      }
    };
    sys->Submit(0, std::move(audit), [&](txn::TxnOutcome o) {
      EXPECT_EQ(o, txn::TxnOutcome::kCommitted);
      done = true;
    });
    for (int i = 0; i < 2000 && !done; ++i) {
      sys->engine().RunFor(10 * sim::kNsPerUs);
    }
    ASSERT_TRUE(done) << sys->Name();
    EXPECT_EQ(found, 10u) << sys->Name();
    sys->StopWorkers();
    sys->engine().Run();
  }
}

}  // namespace
}  // namespace xenic::harness
