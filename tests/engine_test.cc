#include "src/sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace xenic::sim {
namespace {

TEST(EngineTest, StartsAtZeroIdle) {
  Engine e;
  EXPECT_EQ(e.now(), 0u);
  EXPECT_TRUE(e.idle());
  EXPECT_FALSE(e.Step());
}

TEST(EngineTest, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.ScheduleAt(30, [&] { order.push_back(3); });
  e.ScheduleAt(10, [&] { order.push_back(1); });
  e.ScheduleAt(20, [&] { order.push_back(2); });
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(EngineTest, TieBrokenByInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  e.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EngineTest, ScheduleAfterUsesCurrentTime) {
  Engine e;
  Tick seen = 0;
  e.ScheduleAt(100, [&] {
    e.ScheduleAfter(50, [&] { seen = e.now(); });
  });
  e.Run();
  EXPECT_EQ(seen, 150u);
}

TEST(EngineTest, CascadingEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      e.ScheduleAfter(1, recurse);
    }
  };
  e.ScheduleAt(0, recurse);
  e.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99u);
}

TEST(EngineTest, RunUntilStopsAtBoundary) {
  Engine e;
  int ran = 0;
  e.ScheduleAt(10, [&] { ran++; });
  e.ScheduleAt(20, [&] { ran++; });
  e.ScheduleAt(21, [&] { ran++; });
  e.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(e.now(), 20u);
  EXPECT_EQ(e.pending_events(), 1u);
}

TEST(EngineTest, RunUntilAdvancesClockWhenIdle) {
  Engine e;
  e.RunUntil(500);
  EXPECT_EQ(e.now(), 500u);
}

TEST(EngineTest, EventCountTracked) {
  Engine e;
  for (int i = 0; i < 5; ++i) {
    e.ScheduleAt(static_cast<Tick>(i), [] {});
  }
  e.Run();
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(EngineTest, EventsScheduledDuringRunUntilWindowExecute) {
  Engine e;
  int count = 0;
  e.ScheduleAt(5, [&] {
    count++;
    e.ScheduleAfter(2, [&] { count++; });  // lands at 7, inside window
    e.ScheduleAfter(100, [&] { count++; });  // outside window
  });
  e.RunUntil(50);
  EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace xenic::sim
