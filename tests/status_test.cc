#include "src/common/status.h"

#include <gtest/gtest.h>

namespace xenic {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpers) {
  EXPECT_EQ(Status::NotFound().code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Aborted().code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Capacity().code(), StatusCode::kCapacity);
  EXPECT_EQ(Status::AlreadyExists().code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Unavailable().code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal().code(), StatusCode::kInternal);
  EXPECT_FALSE(Status::NotFound().ok());
}

TEST(StatusTest, MessagePropagates) {
  Status s = Status::Aborted("lock held by txn 7");
  EXPECT_EQ(s.message(), "lock held by txn 7");
  EXPECT_EQ(s.ToString(), "ABORTED: lock held by txn 7");
}

TEST(StatusTest, EqualityByCode) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::Aborted());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace xenic
