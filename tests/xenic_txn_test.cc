// End-to-end correctness tests for the Xenic transaction engine: commit
// visibility, aborts, validation, local fast paths, multi-hop shipping,
// multi-round execution, replication, and serializability invariants under
// concurrency -- across all protocol feature-flag combinations.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

using store::GetI64;
using store::MakeValue;
using store::PutI64;
using store::TableSpec;
using store::Value;

constexpr store::TableId kBank = 0;

XenicClusterOptions SmallCluster(uint32_t nodes = 3, uint32_t replication = 2) {
  XenicClusterOptions o;
  o.num_nodes = nodes;
  o.replication = replication;
  o.tables = {TableSpec{kBank, "bank", 12, 16, 8, 8}};
  o.workers_per_node = 2;
  return o;
}

Value Balance(int64_t v) {
  Value out = MakeValue(16, 0);
  PutI64(out, 0, v);
  return out;
}

TxnRequest MakeTransfer(store::Key from, store::Key to, int64_t amount) {
  TxnRequest req;
  req.reads = {{kBank, from}, {kBank, to}};
  req.writes = {{kBank, from}, {kBank, to}};
  req.execute = [amount](ExecRound& er) {
    const int64_t a = GetI64((*er.reads)[0].value, 0);
    const int64_t b = GetI64((*er.reads)[1].value, 0);
    if (a < amount) {
      *er.abort = true;
      return;
    }
    (*er.writes)[0].value = Balance(a - amount);
    (*er.writes)[1].value = Balance(b + amount);
  };
  return req;
}

TxnRequest MakeRead(std::vector<store::Key> keys, std::vector<int64_t>* out) {
  TxnRequest req;
  for (auto k : keys) {
    req.reads.push_back({kBank, k});
  }
  req.execute = [out](ExecRound& er) {
    out->clear();
    for (const auto& r : *er.reads) {
      out->push_back(r.found ? GetI64(r.value, 0) : -1);
    }
  };
  return req;
}

// Run the engine until all submitted txns completed and logs stayed
// drained for several windows (commit records trail the commit report).
void Quiesce(XenicCluster& c, const std::function<bool()>& all_done) {
  int stable = 0;
  for (int i = 0; i < 100000 && !c.engine().idle(); ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
    bool logs_drained = true;
    for (uint32_t n = 0; n < c.size(); ++n) {
      logs_drained &= c.datastore(n).log().unreclaimed() == 0;
    }
    if (all_done() && logs_drained) {
      if (++stable >= 10) {
        break;
      }
    } else {
      stable = 0;
    }
  }
  c.StopWorkers();
  c.engine().Run();
}

// Find a key whose primary is `node`.
store::Key KeyOn(const XenicCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

struct ClusterFixture {
  explicit ClusterFixture(XenicClusterOptions o = SmallCluster())
      : cluster(o, &part), part_holder() {}
  HashPartitioner part{3};
  XenicCluster cluster;
  int part_holder;
};

class XenicFeaturesTest : public ::testing::TestWithParam<int> {
 protected:
  XenicClusterOptions Options() {
    XenicClusterOptions o = SmallCluster();
    const int p = GetParam();
    o.features.smart_remote_ops = (p & 1) != 0;
    o.features.nic_execution = (p & 2) != 0;
    o.features.occ_multihop = (p & 4) != 0;
    o.nic_features.eth_aggregation = (p & 1) != 0;  // vary together
    o.nic_features.async_dma_batching = (p & 2) != 0;
    return o;
  }
};

TEST(XenicTxnTest, DistributedTransferCommitsAndReplicates) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(50));
  c.StartWorkers();

  bool done = false;
  TxnOutcome outcome = TxnOutcome::kAborted;
  c.node(0).Submit(MakeTransfer(a, b, 30), [&](TxnOutcome o) {
    done = true;
    outcome = o;
  });
  Quiesce(c, [&] { return done; });

  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  // Primary copies updated.
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0), 70);
  EXPECT_EQ(GetI64(c.datastore(2).table(kBank).Lookup(b)->value, 0), 80);
  // Backup copies updated by the Robinhood workers.
  for (store::NodeId bk : c.map().BackupsOf(1)) {
    EXPECT_EQ(GetI64(c.datastore(bk).table(kBank).Lookup(a)->value, 0), 70);
  }
  for (store::NodeId bk : c.map().BackupsOf(2)) {
    EXPECT_EQ(GetI64(c.datastore(bk).table(kBank).Lookup(b)->value, 0), 80);
  }
  // Versions bumped.
  EXPECT_EQ(c.datastore(1).table(kBank).GetSeq(a).value(), 2u);
  // No pinned cache entries remain.
  EXPECT_EQ(c.datastore(1).index(kBank).pinned_objects(), 0u);
  EXPECT_EQ(c.datastore(2).index(kBank).pinned_objects(), 0u);
}

TEST(XenicTxnTest, InsufficientFundsAppAborts) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(10));
  c.LoadReplicated(kBank, b, Balance(0));
  c.StartWorkers();

  bool done = false;
  TxnOutcome outcome = TxnOutcome::kCommitted;
  c.node(0).Submit(MakeTransfer(a, b, 500), [&](TxnOutcome o) {
    done = true;
    outcome = o;
  });
  Quiesce(c, [&] { return done; });
  EXPECT_EQ(outcome, TxnOutcome::kAppAborted);
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0), 10);
  // All locks released.
  EXPECT_FALSE(c.datastore(1).index(kBank).IsLocked(a));
  EXPECT_FALSE(c.datastore(2).index(kBank).IsLocked(b));
}

TEST(XenicTxnTest, ReadOnlyRemoteSeesCommittedValue) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(42));
  c.LoadReplicated(kBank, b, Balance(7));
  c.StartWorkers();

  std::vector<int64_t> got;
  bool done = false;
  c.node(0).Submit(MakeRead({a, b}, &got), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 42);
  EXPECT_EQ(got[1], 7);
}

TEST(XenicTxnTest, LocalFastPathsAvoidNetwork) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(3, 1), &part);  // replication 1: no log msgs
  const store::Key a = KeyOn(c, 0);
  const store::Key b = KeyOn(c, 0, 1);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(0));
  c.StartWorkers();

  bool done1 = false;
  bool done2 = false;
  std::vector<int64_t> got;
  c.node(0).Submit(MakeTransfer(a, b, 10),
                   [&](TxnOutcome o) {
                     done1 = true;
                     EXPECT_EQ(o, TxnOutcome::kCommitted);
                   });
  c.node(0).Submit(MakeRead({a}, &got), [&](TxnOutcome o) {
    done2 = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done1 && done2; });
  EXPECT_EQ(c.node(0).stats().local_fastpath, 2u);
  EXPECT_EQ(c.node(0).stats().messages, 0u);
  EXPECT_EQ(c.nic(0).messages_sent(), 0u);
  EXPECT_EQ(GetI64(c.datastore(0).table(kBank).Lookup(a)->value, 0), 90);
}

TEST(XenicTxnTest, MultiHopShippedPathUsed) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key local = KeyOn(c, 0);
  const store::Key remote = KeyOn(c, 1);
  c.LoadReplicated(kBank, local, Balance(100));
  c.LoadReplicated(kBank, remote, Balance(100));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(MakeTransfer(local, remote, 25), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  EXPECT_EQ(c.node(0).stats().shipped_multihop, 1u);
  EXPECT_EQ(GetI64(c.datastore(0).table(kBank).Lookup(local)->value, 0), 75);
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(remote)->value, 0), 125);
  EXPECT_FALSE(c.datastore(0).index(kBank).IsLocked(local));
  EXPECT_FALSE(c.datastore(1).index(kBank).IsLocked(remote));
}

TEST(XenicTxnTest, ShippedPathDisabledWhenFeatureOff) {
  auto opts = SmallCluster();
  opts.features.occ_multihop = false;
  HashPartitioner part(3);
  XenicCluster c(opts, &part);
  const store::Key local = KeyOn(c, 0);
  const store::Key remote = KeyOn(c, 1);
  c.LoadReplicated(kBank, local, Balance(100));
  c.LoadReplicated(kBank, remote, Balance(100));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(MakeTransfer(local, remote, 25),
                   [&](TxnOutcome o) {
                     done = true;
                     EXPECT_EQ(o, TxnOutcome::kCommitted);
                   });
  Quiesce(c, [&] { return done; });
  EXPECT_EQ(c.node(0).stats().shipped_multihop, 0u);
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(remote)->value, 0), 125);
}

TEST(XenicTxnTest, WriteConflictAborts) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(1000));
  c.LoadReplicated(kBank, b, Balance(1000));
  c.StartWorkers();

  // Three concurrent conflicting transfers from different coordinators:
  // aborts are expected (locked keys abort the execute phase); each is
  // retried with backoff until it commits, and money is conserved.
  int committed = 0;
  int aborted = 0;
  std::function<void(store::NodeId, TxnRequest, uint64_t)> submit =
      [&](store::NodeId n, TxnRequest req, uint64_t backoff) {
        TxnRequest copy = req;
        c.node(n).Submit(std::move(copy), [&, n, req, backoff](TxnOutcome o) mutable {
          if (o == TxnOutcome::kCommitted) {
            committed++;
          } else if (o == TxnOutcome::kAborted) {
            aborted++;
            c.engine().ScheduleAfter(backoff, [&, n, req = std::move(req), backoff]() mutable {
              submit(n, std::move(req), backoff);
            });
          }
        });
      };
  submit(0, MakeTransfer(a, b, 10), 5 * sim::kNsPerUs);
  submit(1, MakeTransfer(a, b, 20), 11 * sim::kNsPerUs);
  submit(2, MakeTransfer(b, a, 30), 17 * sim::kNsPerUs);
  Quiesce(c, [&] { return committed == 3; });
  EXPECT_EQ(committed, 3);
  const int64_t total = GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0) +
                        GetI64(c.datastore(2).table(kBank).Lookup(b)->value, 0);
  EXPECT_EQ(total, 2000);
  EXPECT_FALSE(c.datastore(1).index(kBank).IsLocked(a));
  EXPECT_FALSE(c.datastore(2).index(kBank).IsLocked(b));
}

TEST(XenicTxnTest, MultiRoundExecutionAddsKeys) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  const store::Key ptr = KeyOn(c, 1, 2);
  c.LoadReplicated(kBank, a, Balance(5));
  c.LoadReplicated(kBank, b, Balance(17));
  // `ptr` holds the key of `b`: round 0 reads ptr, round 1 reads b.
  Value pv = MakeValue(16, 0);
  store::PutU64(pv, 0, b);
  c.LoadReplicated(kBank, ptr, pv);
  c.StartWorkers();

  int64_t indirect = -1;
  TxnRequest req;
  req.reads = {{kBank, ptr}};
  req.allow_ship = false;  // multi-round: not shippable
  req.execute = [&indirect](ExecRound& er) {
    if (er.round == 0) {
      const store::Key next = store::GetU64((*er.reads)[0].value, 0);
      er.add_reads->push_back({kBank, next});
      return;
    }
    indirect = GetI64((*er.reads)[1].value, 0);
  };
  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  EXPECT_EQ(indirect, 17);
}

TEST(XenicTxnTest, InsertNewKeyViaTransaction) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  c.StartWorkers();
  const store::Key fresh = KeyOn(c, 1, 3);

  TxnRequest req;
  req.writes = {{kBank, fresh}};
  req.execute = [](ExecRound& er) { (*er.writes)[0].value = Balance(777); };
  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  auto r = c.datastore(1).table(kBank).Lookup(fresh);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(GetI64(r->value, 0), 777);
  EXPECT_EQ(r->seq, 1u);
  // Replicated to backups.
  for (store::NodeId bk : c.map().BackupsOf(1)) {
    ASSERT_TRUE(c.datastore(bk).table(kBank).Contains(fresh));
  }
}

TEST_P(XenicFeaturesTest, BalanceConservationUnderConcurrency) {
  HashPartitioner part(3);
  XenicCluster c(Options(), &part);
  Rng rng(1234);
  constexpr int kAccounts = 60;
  constexpr int64_t kInitial = 1000;
  std::vector<store::Key> keys;
  for (int i = 0; i < kAccounts; ++i) {
    keys.push_back(static_cast<store::Key>(i + 1));
    c.LoadReplicated(kBank, keys.back(), Balance(kInitial));
  }
  c.StartWorkers();

  // Closed-loop contexts per node, each running random transfers.
  constexpr int kPerNode = 4;
  constexpr int kTxnsPerCtx = 40;
  int completed = 0;
  int committed = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      completed++;
      return;
    }
    const store::Key from = keys[rng.NextBounded(kAccounts)];
    store::Key to = keys[rng.NextBounded(kAccounts)];
    while (to == from) {
      to = keys[rng.NextBounded(kAccounts)];
    }
    const int64_t amt = static_cast<int64_t>(rng.NextBounded(20)) + 1;
    c.node(n).Submit(MakeTransfer(from, to, amt), [&, n, left](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        committed++;
      }
      run_one(n, left - 1);
    });
  };
  for (uint32_t n = 0; n < c.size(); ++n) {
    for (int k = 0; k < kPerNode; ++k) {
      run_one(n, kTxnsPerCtx);
    }
  }
  Quiesce(c, [&] { return completed == static_cast<int>(c.size()) * kPerNode; });

  EXPECT_GT(committed, 100);
  // Conservation at the primaries.
  int64_t total = 0;
  for (auto k : keys) {
    const store::NodeId p = c.map().PrimaryOf(kBank, k);
    total += GetI64(c.datastore(p).table(kBank).Lookup(k)->value, 0);
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  // Replica consistency after quiesce.
  for (auto k : keys) {
    const store::NodeId p = c.map().PrimaryOf(kBank, k);
    const auto pv = c.datastore(p).table(kBank).Lookup(k);
    for (store::NodeId bk : c.map().BackupsOf(p)) {
      const auto bv = c.datastore(bk).table(kBank).Lookup(k);
      ASSERT_TRUE(bv.has_value());
      EXPECT_EQ(pv->value, bv->value) << "replica divergence on key " << k;
      EXPECT_EQ(pv->seq, bv->seq);
    }
  }
  // No leaked locks or pins.
  for (uint32_t n = 0; n < c.size(); ++n) {
    EXPECT_EQ(c.datastore(n).index(kBank).pinned_objects(), 0u) << "node " << n;
    for (auto k : keys) {
      EXPECT_FALSE(c.datastore(n).index(kBank).IsLocked(k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FeatureMatrix, XenicFeaturesTest, ::testing::Range(0, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           const int p = info.param;
                           std::string s = "smart";
                           s += (p & 1) ? "1" : "0";
                           s += "_nicexec";
                           s += (p & 2) ? "1" : "0";
                           s += "_multihop";
                           s += (p & 4) ? "1" : "0";
                           return s;
                         });

TEST(XenicTxnTest, ValidationCatchesConcurrentWrite) {
  // A read-only txn spanning two shards races a transfer between the same
  // keys. Whatever the interleaving, the reader must never observe a state
  // where the sum of the two balances differs from the invariant.
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(500));
  c.LoadReplicated(kBank, b, Balance(500));
  c.StartWorkers();

  int readers_done = 0;
  int writer_done = 0;
  int checked = 0;
  std::function<void(int)> reader = [&](int left) {
    if (left == 0) {
      readers_done++;
      return;
    }
    auto got = std::make_shared<std::vector<int64_t>>();
    c.node(0).Submit(MakeRead({a, b}, got.get()), [&, got, left](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        EXPECT_EQ((*got)[0] + (*got)[1], 1000) << "non-serializable read";
        checked++;
      }
      reader(left - 1);
    });
  };
  std::function<void(int)> writer = [&](int left) {
    if (left == 0) {
      writer_done = 1;
      return;
    }
    // Space the writes out so readers get commit windows.
    c.node(1).Submit(MakeTransfer(a, b, 7), [&, left](TxnOutcome) {
      c.engine().ScheduleAfter(40 * sim::kNsPerUs, [&, left] { writer(left - 1); });
    });
  };
  reader(50);
  writer(30);
  Quiesce(c, [&] { return readers_done == 1 && writer_done == 1; });
  EXPECT_GT(checked, 10);
}

TEST(XenicTxnTest, WorkersDrainLogAndUnpin) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(100));
  c.StartWorkers();
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    c.node(0).Submit(MakeTransfer(a, b, 1), [&](TxnOutcome) { done++; });
  }
  Quiesce(c, [&] { return done == 20; });
  for (uint32_t n = 0; n < c.size(); ++n) {
    EXPECT_EQ(c.datastore(n).log().unreclaimed(), 0u);
    EXPECT_EQ(c.datastore(n).index(kBank).pinned_objects(), 0u);
    EXPECT_GT(c.datastore(n).records_applied() + 1, 0u);
  }
}

TEST(XenicTxnTest, DeleteViaTransaction) {
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  c.LoadReplicated(kBank, a, Balance(1));
  c.StartWorkers();
  TxnRequest req;
  req.writes = {{kBank, a}};
  req.allow_ship = false;
  req.execute = [](ExecRound& er) { (*er.writes)[0].is_delete = true; };
  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  EXPECT_FALSE(c.datastore(1).table(kBank).Contains(a));
  for (store::NodeId bk : c.map().BackupsOf(1)) {
    EXPECT_FALSE(c.datastore(bk).table(kBank).Contains(a));
  }
}

TEST(XenicTxnTest, RecoveryRebuildsLocksFromLog) {
  // Simulate the 4.2.1 flow: a backup is promoted; unacked LOG records are
  // scanned and their write-set keys re-locked before serving.
  HashPartitioner part(3);
  XenicCluster c(SmallCluster(), &part);
  const store::Key a = KeyOn(c, 1);
  c.LoadReplicated(kBank, a, Balance(9));

  // Build an unacked log record as it would exist on a backup.
  store::LogRecord rec;
  rec.type = store::LogRecordType::kLog;
  rec.txn = store::MakeTxnId(0, 42);
  rec.writes.push_back(store::LogWrite{kBank, a, 2, Balance(123), false});

  const store::NodeId backup = c.map().BackupsOf(1)[0];
  XenicNode& promoted = c.node(backup);
  const size_t locked = promoted.RebuildLocksFromLog({rec});
  EXPECT_EQ(locked, 1u);
  EXPECT_TRUE(c.datastore(backup).index(kBank).IsLocked(a));
  EXPECT_EQ(c.datastore(backup).index(kBank).LockOwner(a), rec.txn);

  // Reconciliation applies the record, then releases the lock.
  c.datastore(backup).ApplyRecord(rec);
  c.datastore(backup).index(kBank).ReleaseLock(a, rec.txn);
  EXPECT_FALSE(c.datastore(backup).index(kBank).IsLocked(a));
  EXPECT_EQ(GetI64(c.datastore(backup).table(kBank).Lookup(a)->value, 0), 123);
}

}  // namespace
}  // namespace xenic::txn
