#include "src/common/table_printer.h"

#include <gtest/gtest.h>

namespace xenic {
namespace {

TEST(TablePrinterTest, RendersAlignedColumns) {
  TablePrinter tp({"System", "Tput", "Lat"});
  tp.AddRow({"Xenic", "1.19M", "12"});
  tp.AddRow({"DrTM+H", "490k", "29"});
  const std::string out = tp.Render("Fig 8a");
  EXPECT_NE(out.find("== Fig 8a =="), std::string::npos);
  EXPECT_NE(out.find("System"), std::string::npos);
  EXPECT_NE(out.find("Xenic"), std::string::npos);
  EXPECT_NE(out.find("DrTM+H"), std::string::npos);
  // Header line and both rows present.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter tp({"a", "b", "c"});
  tp.AddRow({"x"});
  const std::string csv = tp.RenderCsv();
  EXPECT_NE(csv.find("x,,"), std::string::npos);
}

TEST(TablePrinterTest, CsvFormat) {
  TablePrinter tp({"k", "v"});
  tp.AddRow({"1", "2"});
  EXPECT_EQ(tp.RenderCsv(), "k,v\n1,2\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::FmtOps(1190000.0), "1.19M");
  EXPECT_EQ(TablePrinter::FmtOps(232000.0), "232k");
  EXPECT_EQ(TablePrinter::FmtOps(17.0), "17");
  EXPECT_EQ(TablePrinter::FmtUs(12345.0), "12.3");
}

}  // namespace
}  // namespace xenic
