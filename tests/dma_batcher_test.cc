// Adaptive DMA vector sizing: starts wide (static-model equivalence under
// load and for the first idle submissions), shrinks to 1 on sustained idle,
// doubles back up under backlog, and never leaves [1, vector_max]. The
// equivalence window is what lets NicFeatures::adaptive_dma_batching default
// off with zero behavior change -- and what bench_redo_relief measures when
// it is on.

#include <gtest/gtest.h>

#include "src/nicmodel/dma_batcher.h"

namespace xenic::nicmodel {
namespace {

TEST(DmaBatcherTest, StartsAtVectorMax) {
  DmaVectorBatcher b(15);
  EXPECT_EQ(b.vector(), 15u);
  EXPECT_EQ(b.vector_max(), 15u);
}

TEST(DmaBatcherTest, StaticEquivalenceUnderSustainedLoad) {
  DmaVectorBatcher b(15);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(b.OnSubmit(/*queue_depth=*/20), 15u)
        << "backed-up queues must amortize over the full vector, like the "
           "static model";
  }
}

TEST(DmaBatcherTest, StaticEquivalenceForEarlyIdleSubmissions) {
  DmaVectorBatcher b(15);
  // The first kIdleShrinkAfter idle submissions are still charged the full
  // vector's share; only then does the size drop.
  for (uint32_t i = 0; i < DmaVectorBatcher::kIdleShrinkAfter; ++i) {
    EXPECT_EQ(b.OnSubmit(0), 15u);
  }
  EXPECT_EQ(b.vector(), 7u);
}

TEST(DmaBatcherTest, SustainedIdleShrinksToOne) {
  DmaVectorBatcher b(16);
  for (int i = 0; i < 200; ++i) {
    b.OnSubmit(0);
  }
  EXPECT_EQ(b.vector(), 1u);
  EXPECT_EQ(b.OnSubmit(0), 1u);  // floor holds
}

TEST(DmaBatcherTest, BacklogDoublesUpToMax) {
  DmaVectorBatcher b(16);
  for (int i = 0; i < 200; ++i) {
    b.OnSubmit(0);
  }
  ASSERT_EQ(b.vector(), 1u);
  uint64_t expect = 1;
  while (expect < 16) {
    b.OnSubmit(/*queue_depth=*/b.vector());  // depth >= vector -> double
    expect = std::min<uint64_t>(16, expect * 2);
    EXPECT_EQ(b.vector(), expect);
  }
  b.OnSubmit(100);
  EXPECT_EQ(b.vector(), 16u);  // capped at vector_max
}

TEST(DmaBatcherTest, IntermediateDepthHoldsAndResetsIdleStreak) {
  DmaVectorBatcher b(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(b.OnSubmit(3), 8u);  // 0 < depth < vector: hold
  }
  // Idle streaks broken by a busy submission never accumulate to a shrink.
  for (int round = 0; round < 50; ++round) {
    for (uint32_t i = 0; i < DmaVectorBatcher::kIdleShrinkAfter - 1; ++i) {
      b.OnSubmit(0);
    }
    b.OnSubmit(3);
  }
  EXPECT_EQ(b.vector(), 8u);
}

TEST(DmaBatcherTest, DeterministicFromDepthSequence) {
  DmaVectorBatcher a(15), b(15);
  const uint64_t depths[] = {0, 0, 20, 0, 0, 0, 0, 0, 3, 17, 0, 1, 0, 0, 0, 0, 9};
  for (int round = 0; round < 30; ++round) {
    for (uint64_t d : depths) {
      EXPECT_EQ(a.OnSubmit(d), b.OnSubmit(d));
    }
  }
  EXPECT_EQ(a.vector(), b.vector());
}

TEST(DmaBatcherTest, DegenerateVectorMaxClampsToOne) {
  DmaVectorBatcher b(0);
  EXPECT_EQ(b.vector_max(), 1u);
  EXPECT_EQ(b.OnSubmit(50), 1u);
  EXPECT_EQ(b.OnSubmit(0), 1u);
  EXPECT_EQ(b.vector(), 1u);
}

}  // namespace
}  // namespace xenic::nicmodel
