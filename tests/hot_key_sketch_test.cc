// Hot-key sketch: promotion at the conflict threshold, hysteresis between
// promote and demote, lossy-counting eviction (uniform conflict spray can
// never fake a hot key), deterministic lazy decay, and the 0..255 pressure
// level the contention-window retry policy consumes.

#include <gtest/gtest.h>

#include "src/txn/hot_key_sketch.h"

namespace xenic::txn {
namespace {

constexpr KeyRef kKey{0, 42};
constexpr sim::Tick kUs = sim::kNsPerUs;

HotKeySketch::Options SmallOptions() {
  HotKeySketch::Options o;
  o.slots = 4;
  o.promote_threshold = 6;
  o.demote_threshold = 2;
  o.decay_interval = 100 * kUs;
  return o;
}

TEST(HotKeySketchTest, PromotesAtThreshold) {
  HotKeySketch sketch(SmallOptions());
  for (uint64_t i = 0; i < 5; ++i) {
    sketch.RecordConflict(kKey, 0);
    EXPECT_FALSE(sketch.IsHot(kKey, 0)) << "hot after only " << i + 1 << " conflicts";
  }
  sketch.RecordConflict(kKey, 0);
  EXPECT_TRUE(sketch.IsHot(kKey, 0));
  EXPECT_EQ(sketch.HotCount(0), 1u);
}

TEST(HotKeySketchTest, HysteresisHoldsBetweenThresholds) {
  HotKeySketch sketch(SmallOptions());
  for (int i = 0; i < 6; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  ASSERT_TRUE(sketch.IsHot(kKey, 0));
  // One decay interval: 6 -> 3, above the demote floor of 2: still hot
  // (a fresh key with count 3 would NOT be hot -- that's the hysteresis).
  EXPECT_TRUE(sketch.IsHot(kKey, 100 * kUs));
  // Next interval: 3 -> 1 <= demote threshold: demoted.
  EXPECT_FALSE(sketch.IsHot(kKey, 200 * kUs));
}

TEST(HotKeySketchTest, OneOffConflictsNeverPromote) {
  HotKeySketch sketch(SmallOptions());
  // A stream of never-repeating keys: every newcomer starts at count 1
  // (lossy-counting underestimate), so no slot can ever reach the
  // promotion threshold however long the stream runs.
  for (store::Key k = 1; k <= 10000; ++k) {
    sketch.RecordConflict(KeyRef{0, k}, 0);
  }
  EXPECT_EQ(sketch.HotCount(0), 0u);
}

TEST(HotKeySketchTest, HotKeySurvivesSprayEviction) {
  HotKeySketch sketch(SmallOptions());
  for (int i = 0; i < 6; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  ASSERT_TRUE(sketch.IsHot(kKey, 0));
  // Hot slots are never eviction victims, however many newcomers arrive.
  for (store::Key k = 100; k < 300; ++k) {
    sketch.RecordConflict(KeyRef{0, k}, 0);
  }
  EXPECT_TRUE(sketch.IsHot(kKey, 0));
}

TEST(HotKeySketchTest, LevelScalesWithCount) {
  HotKeySketch sketch(SmallOptions());
  EXPECT_EQ(sketch.Level(kKey, 0), 0u);  // untracked
  for (int i = 0; i < 3; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  EXPECT_EQ(sketch.Level(kKey, 0), 64u);  // half the threshold -> 64
  for (int i = 0; i < 3; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  EXPECT_EQ(sketch.Level(kKey, 0), 128u);  // exactly at threshold -> 128
  for (int i = 0; i < 100; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  EXPECT_EQ(sketch.Level(kKey, 0), 255u);  // saturates
}

TEST(HotKeySketchTest, DecayIsLazyAndDeterministic) {
  HotKeySketch a(SmallOptions());
  HotKeySketch b(SmallOptions());
  for (int i = 0; i < 6; ++i) {
    a.RecordConflict(kKey, 0);
    b.RecordConflict(kKey, 0);
  }
  // One query at t=300us must equal three queries at 100/200/300us: decay
  // depends only on elapsed sim time, not on how often anyone looked.
  (void)b.Level(kKey, 100 * kUs);
  (void)b.Level(kKey, 200 * kUs);
  EXPECT_EQ(a.Level(kKey, 300 * kUs), b.Level(kKey, 300 * kUs));
}

TEST(HotKeySketchTest, LongIdleGapZeroesSlots) {
  HotKeySketch sketch(SmallOptions());
  for (int i = 0; i < 200; ++i) {
    sketch.RecordConflict(kKey, 0);
  }
  ASSERT_TRUE(sketch.IsHot(kKey, 0));
  // 100 intervals (and in particular >= 64, the shift clamp) fully clears.
  EXPECT_FALSE(sketch.IsHot(kKey, 10000 * kUs));
  EXPECT_EQ(sketch.Level(kKey, 10000 * kUs), 0u);
  EXPECT_EQ(sketch.HotCount(10000 * kUs), 0u);
}

TEST(HotKeySketchTest, DefaultOptionsTrackSixtyFourSlots) {
  HotKeySketch sketch;
  for (store::Key k = 1; k <= 64; ++k) {
    for (int i = 0; i < 6; ++i) {
      sketch.RecordConflict(KeyRef{0, k}, 0);
    }
  }
  EXPECT_EQ(sketch.HotCount(0), 64u);
}

}  // namespace
}  // namespace xenic::txn
