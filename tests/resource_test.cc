#include "src/sim/resource.h"

#include <gtest/gtest.h>

namespace xenic::sim {
namespace {

TEST(ResourceTest, SingleServerSerializes) {
  Engine e;
  Resource r(&e, "core", 1);
  std::vector<Tick> done;
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [&] { done.push_back(e.now()); });
  }
  e.Run();
  EXPECT_EQ(done, (std::vector<Tick>{10, 20, 30}));
  EXPECT_EQ(r.completed(), 3u);
}

TEST(ResourceTest, MultipleServersRunConcurrently) {
  Engine e;
  Resource r(&e, "cores", 4);
  std::vector<Tick> done;
  for (int i = 0; i < 4; ++i) {
    r.Submit(10, [&] { done.push_back(e.now()); });
  }
  e.Run();
  EXPECT_EQ(done, (std::vector<Tick>{10, 10, 10, 10}));
}

TEST(ResourceTest, QueueDrainsFifo) {
  Engine e;
  Resource r(&e, "core", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.Submit(5, [&order, i] { order.push_back(i); });
  }
  e.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, UtilizationLaw) {
  // 1 server, jobs arriving faster than service: utilization ~ 1.
  Engine e;
  Resource r(&e, "core", 1);
  for (int i = 0; i < 100; ++i) {
    r.Submit(10, [] {});
  }
  e.Run();
  EXPECT_EQ(e.now(), 1000u);
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 1.0);
}

TEST(ResourceTest, PartialUtilization) {
  Engine e;
  Resource r(&e, "cores", 2);
  r.Submit(100, [] {});
  e.RunUntil(1000);
  // 100 ns busy on one of two servers over a 1000 ns window.
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 0.05);
}

TEST(ResourceTest, LateSubmissionStartsImmediately) {
  Engine e;
  Resource r(&e, "core", 1);
  Tick done_at = 0;
  e.ScheduleAt(500, [&] { r.Submit(10, [&] { done_at = e.now(); }); });
  e.Run();
  EXPECT_EQ(done_at, 510u);
}

TEST(ResourceTest, QueueDepthVisible) {
  Engine e;
  Resource r(&e, "core", 1);
  for (int i = 0; i < 5; ++i) {
    r.Submit(10, [] {});
  }
  EXPECT_EQ(r.queue_depth(), 4u);
  EXPECT_EQ(r.busy(), 1u);
  e.Run();
  EXPECT_EQ(r.queue_depth(), 0u);
  EXPECT_EQ(r.busy(), 0u);
}

TEST(ResourceTest, ResetStatsClearsCounters) {
  Engine e;
  Resource r(&e, "core", 1);
  r.Submit(10, [] {});
  e.Run();
  r.ResetStats();
  EXPECT_EQ(r.completed(), 0u);
  EXPECT_EQ(r.busy_time(), 0u);
}

TEST(ResourceTest, ZeroServiceTimeCompletes) {
  Engine e;
  Resource r(&e, "core", 1);
  bool done = false;
  r.Submit(0, [&] { done = true; });
  e.Run();
  EXPECT_TRUE(done);
}

TEST(ResourceTest, UtilizationGuardsEmptyWindow) {
  Engine e;
  Resource r(&e, "core", 1);
  r.Submit(10, [] {});
  e.Run();
  // window == 0 means "nothing elapsed": report 0, never divide by zero.
  EXPECT_DOUBLE_EQ(r.Utilization(0), 0.0);
}

TEST(ResourceTest, UtilizationGuardsZeroServers) {
  Engine e;
  Resource r(&e, "core", 1);
  r.Submit(10, [] {});
  e.Run();
  // Table 3 sweeps lower server counts between runs; 0 must not divide.
  r.set_servers(0);
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 0.0);
}

TEST(ResourceTest, QueueWaitAccounting) {
  // 1 server, 3 jobs of 10 ns submitted together: waits are 0, 10, 20.
  Engine e;
  Resource r(&e, "core", 1);
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [] {});
  }
  e.Run();
  EXPECT_EQ(r.jobs_started(), 3u);
  EXPECT_EQ(r.wait_time_total(), 30u);
  EXPECT_DOUBLE_EQ(r.MeanWaitNs(), 10.0);
  EXPECT_EQ(r.peak_queue_depth(), 2u);
}

TEST(ResourceTest, UtilizationLawWithWaitAccounting) {
  // Utilization law: busy_time == completed * service; the queue-wait
  // accounting must agree (total wait = 10 * (0 + 1 + ... + 99)).
  Engine e;
  Resource r(&e, "core", 1);
  for (int i = 0; i < 100; ++i) {
    r.Submit(10, [] {});
  }
  e.Run();
  EXPECT_EQ(r.busy_time(), r.completed() * 10);
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 1.0);
  EXPECT_EQ(r.wait_time_total(), 10u * (99u * 100u / 2u));
  EXPECT_EQ(r.peak_queue_depth(), 99u);
}

TEST(ResourceTest, WaitHistogramRecordsEveryGrant) {
  Engine e;
  Resource r(&e, "core", 1);
  Histogram waits;
  r.set_wait_histogram(&waits);
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [] {});
  }
  e.Run();
  EXPECT_EQ(waits.count(), 3u);
  EXPECT_EQ(waits.min(), 0u);
  EXPECT_EQ(waits.max(), 20u);
  r.set_wait_histogram(nullptr);  // detach: further jobs must not record
  r.Submit(10, [] {});
  e.Run();
  EXPECT_EQ(waits.count(), 3u);
}

TEST(ResourceTest, ResetStatsClearsWaitAccounting) {
  Engine e;
  Resource r(&e, "core", 1);
  for (int i = 0; i < 3; ++i) {
    r.Submit(10, [] {});
  }
  e.Run();
  r.ResetStats();
  EXPECT_EQ(r.wait_time_total(), 0u);
  EXPECT_EQ(r.jobs_started(), 0u);
  EXPECT_EQ(r.peak_queue_depth(), 0u);
}

}  // namespace
}  // namespace xenic::sim
