// Serializability checker: run concurrent read-modify-write transactions,
// record the version each transaction read and wrote for every key, build
// the precedence graph (write-read, write-write, and read-write
// anti-dependency edges derived from the per-key version chains), and
// verify it is acyclic. A cycle would be a serializability violation.
//
// Runs against the Xenic engine (all feature combinations) and every
// baseline engine.

#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "src/baseline/baseline_cluster.h"
#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

namespace xenic {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

constexpr store::TableId kBank = 0;

struct Observation {
  // (key -> version read); writes produced version read+1 for every key
  // (all transactions here are read-modify-write on their whole key set).
  std::map<store::Key, store::Seq> reads;
};

// Kahn's algorithm over the precedence graph; true iff acyclic.
bool Acyclic(const std::vector<std::vector<int>>& adj) {
  const size_t n = adj.size();
  std::vector<int> indeg(n, 0);
  for (const auto& out : adj) {
    for (int v : out) {
      indeg[static_cast<size_t>(v)]++;
    }
  }
  std::queue<int> q;
  for (size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) {
      q.push(static_cast<int>(i));
    }
  }
  size_t seen = 0;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    seen++;
    for (int v : adj[static_cast<size_t>(u)]) {
      if (--indeg[static_cast<size_t>(v)] == 0) {
        q.push(v);
      }
    }
  }
  return seen == n;
}

// Build the precedence graph from per-key version chains and check it.
// Each committed txn i read version r(i,k) and wrote r(i,k)+1 of every key
// k it touched. Version 1 is the initial load (virtual txn -1, ignored).
void CheckHistory(const std::vector<Observation>& txns) {
  // writer_of[k][v] = txn that produced version v of key k.
  std::map<store::Key, std::map<store::Seq, int>> writer_of;
  for (size_t i = 0; i < txns.size(); ++i) {
    for (const auto& [k, r] : txns[i].reads) {
      auto [it, fresh] = writer_of[k].emplace(r + 1, static_cast<int>(i));
      ASSERT_TRUE(fresh) << "two transactions produced version " << r + 1 << " of key " << k
                         << ": txns " << it->second << " and " << i;
    }
  }

  std::vector<std::vector<int>> adj(txns.size());
  for (size_t i = 0; i < txns.size(); ++i) {
    for (const auto& [k, r] : txns[i].reads) {
      const auto& chain = writer_of[k];
      // wr edge: the writer of the version we read precedes us.
      if (auto it = chain.find(r); it != chain.end() && it->second != static_cast<int>(i)) {
        adj[static_cast<size_t>(it->second)].push_back(static_cast<int>(i));
      }
      // ww edge: we precede the writer of the next version (that is the
      // writer of r+2, since we wrote r+1).
      if (auto it = chain.find(r + 2); it != chain.end()) {
        adj[i].push_back(it->second);
      }
    }
  }
  EXPECT_TRUE(Acyclic(adj)) << "serializability violation: precedence cycle";
}

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

// A transfer whose execute closure records the versions it observed.
TxnRequest RecordingTransfer(std::vector<store::Key> keys,
                             std::shared_ptr<Observation> obs) {
  TxnRequest req;
  for (auto k : keys) {
    req.reads.push_back({kBank, k});
    req.writes.push_back({kBank, k});
  }
  req.execute = [obs](ExecRound& er) {
    obs->reads.clear();
    int64_t sum = 0;
    for (const auto& r : *er.reads) {
      sum += GetI64(r.value, 0);
    }
    for (size_t i = 0; i < er.reads->size(); ++i) {
      obs->reads[(*er.read_keys)[i].key] = (*er.reads)[i].seq;
      // Rebalance: spread the total across the keys (conserves money and
      // forces real read-write dependencies between overlapping txns).
      const int64_t share = sum / static_cast<int64_t>(er.reads->size()) +
                            (i == 0 ? sum % static_cast<int64_t>(er.reads->size()) : 0);
      (*er.writes)[i].value = Balance(share);
    }
  };
  return req;
}

template <typename Cluster>
void RunHistoryTest(Cluster& cluster, uint32_t nodes, int txns_per_ctx) {
  Rng rng(777);
  constexpr int kKeys = 24;
  for (store::Key k = 1; k <= kKeys; ++k) {
    cluster.LoadReplicated(kBank, k, Balance(120));
  }
  cluster.StartWorkers();

  std::vector<Observation> committed;
  int active = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      active--;
      return;
    }
    const size_t n_keys = 2 + rng.NextBounded(2);
    std::vector<store::Key> keys;
    while (keys.size() < n_keys) {
      const store::Key k = 1 + rng.NextBounded(kKeys);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    auto obs = std::make_shared<Observation>();
    cluster.node(n).Submit(RecordingTransfer(keys, obs), [&, n, left, obs](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        committed.push_back(*obs);
      }
      run_one(n, left - 1);
    });
  };
  for (uint32_t n = 0; n < nodes; ++n) {
    for (int c = 0; c < 3; ++c) {
      active++;
      run_one(n, txns_per_ctx);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(50 * sim::kNsPerUs);
  }
  cluster.StopWorkers();
  cluster.engine().Run();

  ASSERT_GT(committed.size(), 30u);
  CheckHistory(committed);
}

class XenicSerializabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(XenicSerializabilityTest, HistoryIsSerializable) {
  txn::XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  const int p = GetParam();
  o.features.smart_remote_ops = (p & 1) != 0;
  o.features.nic_execution = (p & 2) != 0;
  o.features.occ_multihop = (p & 4) != 0;
  txn::HashPartitioner part(3);
  txn::XenicCluster cluster(o, &part);
  RunHistoryTest(cluster, 3, 25);
}

INSTANTIATE_TEST_SUITE_P(Features, XenicSerializabilityTest, ::testing::Values(0, 3, 7));

class BaselineSerializabilityTest
    : public ::testing::TestWithParam<baseline::BaselineMode> {};

TEST_P(BaselineSerializabilityTest, HistoryIsSerializable) {
  baseline::BaselineClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.mode = GetParam();
  o.tables = {baseline::BaselineStore::TableSpec{kBank, 10, 16}};
  txn::HashPartitioner part(3);
  baseline::BaselineCluster cluster(o, &part);
  RunHistoryTest(cluster, 3, 25);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BaselineSerializabilityTest,
                         ::testing::Values(baseline::BaselineMode::kDrtmH,
                                           baseline::BaselineMode::kDrtmHNC,
                                           baseline::BaselineMode::kFasst,
                                           baseline::BaselineMode::kDrtmR),
                         [](const ::testing::TestParamInfo<baseline::BaselineMode>& info) {
                           switch (info.param) {
                             case baseline::BaselineMode::kDrtmH:
                               return "DrtmH";
                             case baseline::BaselineMode::kDrtmHNC:
                               return "DrtmHNC";
                             case baseline::BaselineMode::kFasst:
                               return "Fasst";
                             case baseline::BaselineMode::kDrtmR:
                               return "DrtmR";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace xenic
