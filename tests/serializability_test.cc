// Serializability of concurrent read-modify-write histories, checked with
// the reusable checker from src/chaos/history.h: the HistoryRecorder wraps
// each request's execute closure to capture the versions read and keys
// written, and CheckSerializability rebuilds the per-key version chains,
// derives the precedence graph, and verifies it is acyclic with no lost
// updates.
//
// Runs against the Xenic engine (all feature combinations) and every
// baseline engine.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/baseline/baseline_cluster.h"
#include "src/chaos/history.h"
#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

namespace xenic {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

// A transfer over a small key set. Rebalances the total across the keys:
// conserves money and forces real read-write dependencies between
// overlapping transactions.
TxnRequest Transfer(std::vector<store::Key> keys) {
  TxnRequest req;
  for (auto k : keys) {
    req.reads.push_back({kBank, k});
    req.writes.push_back({kBank, k});
  }
  req.execute = [](ExecRound& er) {
    int64_t sum = 0;
    for (const auto& r : *er.reads) {
      sum += GetI64(r.value, 0);
    }
    for (size_t i = 0; i < er.reads->size(); ++i) {
      const int64_t share = sum / static_cast<int64_t>(er.reads->size()) +
                            (i == 0 ? sum % static_cast<int64_t>(er.reads->size()) : 0);
      (*er.writes)[i].value = Balance(share);
    }
  };
  return req;
}

template <typename Cluster>
void RunHistoryTest(Cluster& cluster, uint32_t nodes, int txns_per_ctx) {
  Rng rng(777);
  constexpr int kKeys = 24;
  for (store::Key k = 1; k <= kKeys; ++k) {
    cluster.LoadReplicated(kBank, k, Balance(120));
  }
  cluster.StartWorkers();

  chaos::HistoryRecorder recorder;
  int active = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      active--;
      return;
    }
    const size_t n_keys = 2 + rng.NextBounded(2);
    std::vector<store::Key> keys;
    while (keys.size() < n_keys) {
      const store::Key k = 1 + rng.NextBounded(kKeys);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    TxnRequest req = Transfer(keys);
    auto obs = recorder.Instrument(req);
    cluster.node(n).Submit(std::move(req), [&, n, left, obs](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        recorder.Commit(obs);
      }
      run_one(n, left - 1);
    });
  };
  for (uint32_t n = 0; n < nodes; ++n) {
    for (int c = 0; c < 3; ++c) {
      active++;
      run_one(n, txns_per_ctx);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(50 * sim::kNsPerUs);
  }
  cluster.StopWorkers();
  cluster.engine().Run();

  ASSERT_GT(recorder.history().size(), 30u);
  const chaos::CheckResult result = recorder.Check();
  EXPECT_TRUE(result.ok()) << [&] {
    std::string all;
    for (const auto& v : result.violations) {
      all += v + "\n";
    }
    return all;
  }();
  // Fault-free runs never roll anything forward behind the recorder's back,
  // so every version a txn read must have a recorded writer (or be the
  // initial load).
  EXPECT_EQ(result.version_gaps, 0u);
  EXPECT_GT(result.edges, 0u);
}

class XenicSerializabilityTest : public ::testing::TestWithParam<int> {};

TEST_P(XenicSerializabilityTest, HistoryIsSerializable) {
  txn::XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  const int p = GetParam();
  o.features.smart_remote_ops = (p & 1) != 0;
  o.features.nic_execution = (p & 2) != 0;
  o.features.occ_multihop = (p & 4) != 0;
  txn::HashPartitioner part(3);
  txn::XenicCluster cluster(o, &part);
  RunHistoryTest(cluster, 3, 25);
}

INSTANTIATE_TEST_SUITE_P(Features, XenicSerializabilityTest, ::testing::Values(0, 3, 7));

class BaselineSerializabilityTest
    : public ::testing::TestWithParam<baseline::BaselineMode> {};

TEST_P(BaselineSerializabilityTest, HistoryIsSerializable) {
  baseline::BaselineClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.mode = GetParam();
  o.tables = {baseline::BaselineStore::TableSpec{kBank, 10, 16}};
  txn::HashPartitioner part(3);
  baseline::BaselineCluster cluster(o, &part);
  RunHistoryTest(cluster, 3, 25);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BaselineSerializabilityTest,
                         ::testing::Values(baseline::BaselineMode::kDrtmH,
                                           baseline::BaselineMode::kDrtmHNC,
                                           baseline::BaselineMode::kFasst,
                                           baseline::BaselineMode::kDrtmR),
                         [](const ::testing::TestParamInfo<baseline::BaselineMode>& info) {
                           switch (info.param) {
                             case baseline::BaselineMode::kDrtmH:
                               return "DrtmH";
                             case baseline::BaselineMode::kDrtmHNC:
                               return "DrtmHNC";
                             case baseline::BaselineMode::kFasst:
                               return "Fasst";
                             case baseline::BaselineMode::kDrtmR:
                               return "DrtmR";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace xenic
