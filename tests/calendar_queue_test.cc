// Determinism tests for the calendar-queue engine: an adversarial schedule
// (ties, far-future events beyond the wheel window, zero-delay
// self-rescheduling, randomized churn) must execute in exactly the same
// order as a reference binary-heap implementation of the (time, seq)
// contract.

#include "src/sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace xenic::sim {
namespace {

// Reference implementation: the seed engine's std::priority_queue ordered
// by (time, seq). Records are plain ids so popping needs no callback moves.
class ReferenceQueue {
 public:
  void Push(Tick t, uint64_t seq, int id) { q_.push({t, seq, id}); }
  bool empty() const { return q_.empty(); }
  Tick PeekTime() const { return q_.top().time; }
  int Pop(Tick* time_out) {
    Rec r = q_.top();
    q_.pop();
    *time_out = r.time;
    return r.id;
  }

 private:
  struct Rec {
    Tick time;
    uint64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const Rec& a, const Rec& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Rec, std::vector<Rec>, Later> q_;
};

TEST(CalendarQueueTest, PopsInTimeSeqOrder) {
  CalendarQueue q;
  std::vector<int> order;
  uint64_t seq = 0;
  q.Push(30, seq++, [&order] { order.push_back(3); });
  q.Push(10, seq++, [&order] { order.push_back(1); });
  q.Push(10, seq++, [&order] { order.push_back(2); });  // tie: seq breaks it
  q.Push(5, seq++, [&order] { order.push_back(0); });
  while (!q.empty()) {
    Tick t = 0;
    q.PopNext(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueueTest, FarFutureEventsCrossTheWheelWindow) {
  CalendarQueue q;
  std::vector<int> order;
  uint64_t seq = 0;
  // Far beyond the wheel window (kWheelSize ticks): lands in the overflow
  // heap and migrates back on rebase.
  const Tick far = CalendarQueue::kWheelSize * 10;
  q.Push(far, seq++, [&order] { order.push_back(2); });
  q.Push(far + 1, seq++, [&order] { order.push_back(3); });
  q.Push(1, seq++, [&order] { order.push_back(0); });
  q.Push(2, seq++, [&order] { order.push_back(1); });
  std::vector<Tick> times;
  while (!q.empty()) {
    const Tick peeked = q.PeekTime();
    Tick t = 0;
    q.PopNext(&t)();
    EXPECT_EQ(t, peeked);
    times.push_back(t);
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(times, (std::vector<Tick>{1, 2, far, far + 1}));
}

// The full adversarial schedule, driven through Engine so zero-delay
// self-rescheduling (events pushed into the bucket currently draining) is
// exercised, mirrored against a reference engine built on ReferenceQueue.
TEST(CalendarQueueTest, AdversarialScheduleMatchesReferenceHeap) {
  // Script the schedule first so both implementations replay the identical
  // event set: (delay-from-previous-now, kind) pairs.
  struct Op {
    Tick at;
    int id;
  };
  std::vector<Op> script;
  Rng rng(2024);
  Tick t = 0;
  for (int i = 0; i < 5000; ++i) {
    switch (rng.NextBounded(8)) {
      case 0:
        t += 0;  // exact tie with the previous event
        break;
      case 1:
        t += rng.NextBounded(4);  // dense near-term cluster
        break;
      case 2:
        t += CalendarQueue::kWheelSize + rng.NextBounded(1000);  // past the window
        break;
      default:
        t += rng.NextBounded(500);
        break;
    }
    script.push_back({t, i});
  }

  // Reference order.
  std::vector<int> ref_order;
  {
    ReferenceQueue rq;
    uint64_t seq = 0;
    for (const Op& op : script) {
      rq.Push(op.at, seq++, op.id);
    }
    while (!rq.empty()) {
      Tick tt = 0;
      ref_order.push_back(rq.Pop(&tt));
    }
  }

  // Engine order, plus zero-delay and short-delay self-rescheduling layered
  // on top (both implementations would agree on those too, but the point
  // here is that they cannot perturb the scripted order's relative
  // sequence... so track scripted ids only).
  std::vector<int> engine_order;
  {
    Engine eng;
    for (const Op& op : script) {
      eng.ScheduleAt(op.at, [&engine_order, id = op.id] { engine_order.push_back(id); });
    }
    // Zero-delay self-rescheduling chain: runs interleaved with the script
    // without touching engine_order.
    int bounce = 0;
    std::function<void()> chain = [&] {
      if (++bounce < 64) {
        eng.ScheduleAfter(0, chain);
      }
    };
    eng.ScheduleAt(0, chain);
    eng.Run();
    EXPECT_EQ(bounce, 64);
  }

  ASSERT_EQ(engine_order.size(), ref_order.size());
  EXPECT_EQ(engine_order, ref_order);
}

// Same-timestamp FIFO audit (ISSUE 8 satellite): the byte-identical
// contract silently leans on ties popping in push order even when the tied
// events took different routes through the structure -- some straight into
// a wheel bucket, some through the overflow heap and back during a rebase,
// across an arbitrary interleaving of pushes and pops. The randomized
// property test drives exactly that interleaving against the reference
// heap; the targeted test pins the overflow-migration tie case by hand.
// (Audit verdict: the behavior is correct -- bucket FIFO == seq order
// because sequence numbers are globally monotone, and RebaseFromOverflow
// migrates in heap (time, seq) order, so migrated ties land in the bucket
// in seq order ahead of any later, higher-seq push. These tests pin it.)
TEST(CalendarQueueTest, InterleavedRandomChurnMatchesReferenceHeap) {
  for (uint64_t trial_seed : {7u, 77u, 7777u}) {
    CalendarQueue cq;
    ReferenceQueue rq;
    Rng rng(trial_seed);
    uint64_t seq = 0;
    Tick now = 0;  // time of the last popped event (engine clock)
    int next_id = 0;
    std::vector<std::pair<Tick, int>> got;
    std::vector<std::pair<Tick, int>> want;
    for (int round = 0; round < 2000; ++round) {
      // Push a burst. Delays mix exact ties (including ties with events
      // already queued at `now`), dense near-term, the wheel-window edge,
      // and far-future overflow territory.
      const uint32_t pushes = 1 + static_cast<uint32_t>(rng.NextBounded(4));
      for (uint32_t p = 0; p < pushes; ++p) {
        Tick delta = 0;
        switch (rng.NextBounded(10)) {
          case 0:
          case 1:
          case 2:
            delta = 0;  // heavy tie pressure at the current tick
            break;
          case 3:
            delta = rng.NextBounded(3);
            break;
          case 4:
            delta = CalendarQueue::kWheelSize - 1 + rng.NextBounded(3);  // window edge
            break;
          case 5:
            delta = CalendarQueue::kWheelSize * (1 + rng.NextBounded(4));  // deep overflow
            break;
          default:
            delta = rng.NextBounded(600);
            break;
        }
        const Tick at = now + delta;
        const int id = next_id++;
        cq.Push(at, seq, [&got, at, id] { got.push_back({at, id}); });
        rq.Push(at, seq, id);
        seq++;
      }
      // Pop a few (sometimes none, sometimes a full drain) -- pops advance
      // `now`, dragging the wheel base across rebases and forcing ties
      // pushed before and after a migration into the same bucket.
      uint32_t pops = static_cast<uint32_t>(rng.NextBounded(6));
      if (rng.NextBounded(64) == 0) {
        pops = static_cast<uint32_t>(cq.size());  // full drain -> rebase on next push
      }
      for (uint32_t p = 0; p < pops && !cq.empty(); ++p) {
        ASSERT_EQ(cq.PeekTime(), rq.PeekTime());
        Tick t_cq = 0;
        Tick t_rq = 0;
        cq.PopNext(&t_cq)();
        want.push_back({t_rq, 0});
        want.back().second = rq.Pop(&t_rq);
        want.back().first = t_rq;
        ASSERT_EQ(t_cq, t_rq);
        now = t_cq;
      }
    }
    while (!cq.empty()) {
      Tick t_cq = 0;
      Tick t_rq = 0;
      cq.PopNext(&t_cq)();
      const int id = rq.Pop(&t_rq);
      want.push_back({t_rq, id});
      ASSERT_EQ(t_cq, t_rq);
    }
    EXPECT_TRUE(rq.empty());
    ASSERT_EQ(got.size(), want.size()) << "seed " << trial_seed;
    EXPECT_EQ(got, want) << "seed " << trial_seed;
  }
}

TEST(CalendarQueueTest, TiesStraddlingOverflowMigrationStayFifo) {
  CalendarQueue q;
  std::vector<int> order;
  uint64_t seq = 0;
  const Tick far = CalendarQueue::kWheelSize + 100;
  // Two ties pushed into the overflow heap (beyond the window)...
  q.Push(far, seq++, [&order] { order.push_back(0); });
  q.Push(far, seq++, [&order] { order.push_back(1); });
  // ...a near event whose pop drains the wheel and triggers the rebase...
  q.Push(1, seq++, [&order] { order.push_back(-1); });
  Tick t = 0;
  q.PopNext(&t)();
  ASSERT_EQ(t, 1u);
  // ...then a third tie pushed AFTER the migration put 0 and 1 into the
  // rebased wheel bucket. FIFO within the bucket must still be seq order.
  q.Push(far, seq++, [&order] { order.push_back(2); });
  while (!q.empty()) {
    q.PopNext(&t)();
    EXPECT_EQ(t, far);
  }
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1, 2}));
}

TEST(CalendarQueueTest, ZeroDelaySelfRescheduleStaysFifoWithinTick) {
  Engine eng;
  std::vector<int> order;
  eng.ScheduleAt(10, [&] {
    order.push_back(0);
    eng.ScheduleAfter(0, [&] { order.push_back(2); });  // same tick, later seq
  });
  eng.ScheduleAt(10, [&] { order.push_back(1); });
  eng.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(eng.now(), 10u);
}

TEST(CalendarQueueTest, RunAndRunUntilReturnEventsExecutedDelta) {
  Engine eng;
  for (int i = 0; i < 10; ++i) {
    eng.ScheduleAt(static_cast<Tick>(i * 100), [] {});
  }
  const uint64_t first = eng.RunUntil(449);
  EXPECT_EQ(first, 5u);
  EXPECT_EQ(eng.events_executed(), 5u);
  const uint64_t rest = eng.Run();
  EXPECT_EQ(rest, 5u);
  EXPECT_EQ(eng.events_executed(), 10u);
}

TEST(CalendarQueueTest, MoveOnlyCaptureAndLargeCaptureBothWork) {
  Engine eng;
  int hits = 0;
  auto big = std::make_unique<int>(41);
  // Move-only capture (unique_ptr): impossible with std::function.
  eng.ScheduleAt(1, [p = std::move(big), &hits] { hits += *p - 40; });
  // Capture larger than the inline buffer: heap fallback path.
  struct Fat {
    char pad[96] = {0};
  };
  Fat fat;
  fat.pad[0] = 1;
  eng.ScheduleAt(2, [fat, &hits] { hits += fat.pad[0]; });
  eng.Run();
  EXPECT_EQ(hits, 2);
}

}  // namespace
}  // namespace xenic::sim
