// Tests for the Datastore pending-writes index: host-local reads must
// observe committed-but-unapplied log writes (read-your-log), LOG records
// must NOT leak into local reads, and application clears entries.

#include <gtest/gtest.h>

#include "src/store/datastore.h"

namespace xenic::store {
namespace {

std::vector<TableSpec> OneTable() { return {TableSpec{0, "t", 10, 16, 8, 8}}; }

LogRecord CommitRecord(TxnId txn, Key key, Seq seq, uint8_t fill) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = txn;
  rec.writes.push_back(LogWrite{0, key, seq, Value(16, fill), false});
  return rec;
}

TEST(DatastorePendingTest, FreshLookupSeesUnappliedCommit) {
  Datastore ds(OneTable(), {});
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 1)).ok());
  ASSERT_TRUE(ds.Append(CommitRecord(100, 1, 2, 9)).ok());

  // Table still has the old value; FreshLookup sees the pending commit.
  EXPECT_EQ(ds.table(0).Lookup(1)->seq, 1u);
  auto fresh = ds.FreshLookup(0, 1);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->seq, 2u);
  EXPECT_EQ(fresh->value, Value(16, 9));
  EXPECT_EQ(ds.FreshSeq(0, 1).value(), 2u);

  // Worker applies; pending entry clears; both views agree.
  auto acks = ds.ApplyNext();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(ds.pending_writes(), 0u);
  EXPECT_EQ(ds.table(0).Lookup(1)->seq, 2u);
  EXPECT_EQ(ds.FreshSeq(0, 1).value(), 2u);
}

TEST(DatastorePendingTest, LogRecordsDoNotLeakIntoLocalReads) {
  // A backup-replication LOG record must not change the local view: local
  // transactions never read backup state.
  Datastore ds(OneTable(), {});
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 1)).ok());
  LogRecord rec = CommitRecord(100, 1, 2, 9);
  rec.type = LogRecordType::kLog;
  ASSERT_TRUE(ds.Append(std::move(rec)).ok());
  EXPECT_EQ(ds.pending_writes(), 0u);
  EXPECT_EQ(ds.FreshSeq(0, 1).value(), 1u);
}

TEST(DatastorePendingTest, NewestOfStackedCommitsWins) {
  Datastore ds(OneTable(), {});
  ASSERT_TRUE(ds.Load(0, 7, Value(16, 1)).ok());
  ASSERT_TRUE(ds.Append(CommitRecord(100, 7, 2, 2)).ok());
  ASSERT_TRUE(ds.Append(CommitRecord(101, 7, 3, 3)).ok());
  EXPECT_EQ(ds.FreshSeq(0, 7).value(), 3u);
  EXPECT_EQ(ds.FreshLookup(0, 7)->value, Value(16, 3));
  // Apply in order; the freshest view never regresses.
  ds.ApplyNext();
  EXPECT_EQ(ds.FreshSeq(0, 7).value(), 3u);
  ds.ApplyNext();
  EXPECT_EQ(ds.FreshSeq(0, 7).value(), 3u);
  EXPECT_EQ(ds.table(0).GetSeq(7).value(), 3u);
  EXPECT_EQ(ds.pending_writes(), 0u);
}

TEST(DatastorePendingTest, PendingDeleteHidesKey) {
  Datastore ds(OneTable(), {});
  ASSERT_TRUE(ds.Load(0, 5, Value(16, 1)).ok());
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = 1;
  rec.writes.push_back(LogWrite{0, 5, 0, Value{}, true});
  ASSERT_TRUE(ds.Append(std::move(rec)).ok());
  EXPECT_FALSE(ds.FreshLookup(0, 5).has_value());
  EXPECT_FALSE(ds.FreshSeq(0, 5).has_value());
  EXPECT_TRUE(ds.table(0).Contains(5));  // not applied yet
  ds.ApplyNext();
  EXPECT_FALSE(ds.table(0).Contains(5));
}

TEST(DatastorePendingTest, PendingInsertVisibleBeforeApply) {
  Datastore ds(OneTable(), {});
  ASSERT_TRUE(ds.Append(CommitRecord(100, 42, 1, 7)).ok());
  auto fresh = ds.FreshLookup(0, 42);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_EQ(fresh->value, Value(16, 7));
  EXPECT_FALSE(ds.table(0).Contains(42));
  ds.ApplyNext();
  EXPECT_TRUE(ds.table(0).Contains(42));
}

TEST(DatastorePendingTest, WorkloadManagedWritesSkipped) {
  Datastore ds(OneTable(), {});
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = 1;
  rec.writes.push_back(LogWrite{200, 1, 1, Value(8, 1), false});  // table id 200
  ASSERT_TRUE(ds.Append(std::move(rec)).ok());
  EXPECT_EQ(ds.pending_writes(), 0u);
}

}  // namespace
}  // namespace xenic::store
