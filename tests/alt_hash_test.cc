#include "src/store/alt_hash.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace xenic::store {
namespace {

TEST(HopscotchTest, InsertLookup) {
  HopscotchTable t({.capacity_log2 = 10, .neighborhood = 8});
  ASSERT_TRUE(t.Insert(42, 5).ok());
  RemoteLookupStats s;
  auto r = t.RemoteLookup(42, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 5u);
  EXPECT_EQ(s.roundtrips, 1u);
  EXPECT_EQ(s.objects_read, 8u);
}

TEST(HopscotchTest, DuplicateRejected) {
  HopscotchTable t({.capacity_log2 = 8});
  ASSERT_TRUE(t.Insert(1).ok());
  EXPECT_EQ(t.Insert(1).code(), StatusCode::kAlreadyExists);
}

TEST(HopscotchTest, HighOccupancyAllFindable) {
  HopscotchTable t({.capacity_log2 = 14, .neighborhood = 8});
  Rng rng(1);
  std::vector<Key> keys;
  const size_t n = static_cast<size_t>(0.9 * t.capacity());
  for (size_t i = 0; i < n; ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k).ok());
    keys.push_back(k);
  }
  EXPECT_EQ(t.size(), n);
  for (Key k : keys) {
    RemoteLookupStats s;
    ASSERT_TRUE(t.RemoteLookup(k, &s).has_value());
    EXPECT_LE(s.roundtrips, 2u);
  }
}

TEST(HopscotchTest, OverflowCausesSecondRoundtrip) {
  HopscotchTable t({.capacity_log2 = 12, .neighborhood = 8});
  Rng rng(2);
  std::vector<Key> keys;
  for (size_t i = 0; i < static_cast<size_t>(0.92 * t.capacity()); ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k).ok());
    keys.push_back(k);
  }
  EXPECT_GT(t.overflow_size(), 0u);
  uint64_t total_rt = 0;
  for (Key k : keys) {
    RemoteLookupStats s;
    ASSERT_TRUE(t.RemoteLookup(k, &s).has_value());
    total_rt += s.roundtrips;
  }
  // Mean roundtrips slightly above 1 (paper: 1.04 at 90%).
  const double mean_rt = static_cast<double>(total_rt) / keys.size();
  EXPECT_GT(mean_rt, 1.0);
  EXPECT_LT(mean_rt, 1.5);
}

TEST(HopscotchTest, MissingKeyCounted) {
  HopscotchTable t({.capacity_log2 = 8});
  RemoteLookupStats s;
  EXPECT_FALSE(t.RemoteLookup(123, &s).has_value());
  EXPECT_FALSE(s.found);
  EXPECT_EQ(s.roundtrips, 1u);
}

TEST(ChainedTest, InsertLookup) {
  ChainedTable t({.capacity_log2 = 10, .bucket_slots = 4});
  ASSERT_TRUE(t.Insert(42, 5).ok());
  RemoteLookupStats s;
  auto r = t.RemoteLookup(42, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 5u);
  EXPECT_EQ(s.roundtrips, 1u);
  EXPECT_EQ(s.objects_read, 4u);
}

TEST(ChainedTest, DuplicateRejected) {
  ChainedTable t({.capacity_log2 = 8});
  ASSERT_TRUE(t.Insert(1).ok());
  EXPECT_EQ(t.Insert(1).code(), StatusCode::kAlreadyExists);
}

TEST(ChainedTest, ChainsGrowAndStayFindable) {
  ChainedTable t({.capacity_log2 = 12, .bucket_slots = 4});
  Rng rng(3);
  std::vector<Key> keys;
  const size_t n = static_cast<size_t>(0.9 * (t.num_buckets() * 4));
  for (size_t i = 0; i < n; ++i) {
    const Key k = rng.Next();
    ASSERT_TRUE(t.Insert(k).ok());
    keys.push_back(k);
  }
  EXPECT_GT(t.chained_buckets(), 0u);
  uint64_t rt = 0;
  uint64_t objs = 0;
  for (Key k : keys) {
    RemoteLookupStats s;
    ASSERT_TRUE(t.RemoteLookup(k, &s).has_value());
    rt += s.roundtrips;
    objs += s.objects_read;
  }
  const double mean_rt = static_cast<double>(rt) / keys.size();
  const double mean_objs = static_cast<double>(objs) / keys.size();
  // Paper Table 2 (B=4): 4.65 objects, 1.16 roundtrips at 90% occupancy.
  EXPECT_GT(mean_rt, 1.05);
  EXPECT_LT(mean_rt, 1.35);
  EXPECT_GT(mean_objs, 4.0);
  EXPECT_LT(mean_objs, 6.0);
}

TEST(ChainedTest, LargerBucketsFewerRoundtripsMoreObjects) {
  Rng rng(4);
  std::vector<Key> keys;
  for (int i = 0; i < 14745; ++i) {  // 90% of 2^14 slots
    keys.push_back(rng.Next());
  }
  double rt[2];
  double objs[2];
  int idx = 0;
  for (uint32_t b : {4u, 16u}) {
    ChainedTable t({.capacity_log2 = 14, .bucket_slots = b});
    for (Key k : keys) {
      ASSERT_TRUE(t.Insert(k).ok());
    }
    uint64_t total_rt = 0;
    uint64_t total_objs = 0;
    for (Key k : keys) {
      RemoteLookupStats s;
      ASSERT_TRUE(t.RemoteLookup(k, &s).has_value());
      total_rt += s.roundtrips;
      total_objs += s.objects_read;
    }
    rt[idx] = static_cast<double>(total_rt) / keys.size();
    objs[idx] = static_cast<double>(total_objs) / keys.size();
    idx++;
  }
  EXPECT_GT(rt[0], rt[1]);      // B=16 needs fewer roundtrips
  EXPECT_LT(objs[0], objs[1]);  // ...but reads more objects
}

}  // namespace
}  // namespace xenic::store
