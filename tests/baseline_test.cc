// Correctness tests for the four RDMA baseline engines, mirroring the
// Xenic engine tests: commit visibility, replication, aborts, validation,
// and balance conservation under concurrency, parameterized by mode.

#include <gtest/gtest.h>

#include "src/baseline/baseline_cluster.h"
#include "src/common/rng.h"

namespace xenic::baseline {
namespace {

using store::GetI64;
using store::MakeValue;
using store::PutI64;
using store::Value;
using txn::TxnOutcome;
using txn::TxnRequest;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out = MakeValue(16, 0);
  PutI64(out, 0, v);
  return out;
}

TxnRequest MakeTransfer(store::Key from, store::Key to, int64_t amount) {
  TxnRequest req;
  req.reads = {{kBank, from}, {kBank, to}};
  req.writes = {{kBank, from}, {kBank, to}};
  req.execute = [amount](txn::ExecRound& er) {
    const int64_t a = GetI64((*er.reads)[0].value, 0);
    const int64_t b = GetI64((*er.reads)[1].value, 0);
    if (a < amount) {
      *er.abort = true;
      return;
    }
    (*er.writes)[0].value = Balance(a - amount);
    (*er.writes)[1].value = Balance(b + amount);
  };
  return req;
}

BaselineClusterOptions Opts(BaselineMode mode, uint32_t nodes = 3, uint32_t repl = 2) {
  BaselineClusterOptions o;
  o.num_nodes = nodes;
  o.replication = repl;
  o.mode = mode;
  o.tables = {BaselineStore::TableSpec{kBank, 12, 16}};
  o.workers_per_node = 2;
  return o;
}

store::Key KeyOn(const BaselineCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

void Quiesce(BaselineCluster& c, const std::function<bool()>& all_done) {
  int stable = 0;
  for (int i = 0; i < 100000 && !c.engine().idle(); ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
    bool drained = true;
    for (uint32_t n = 0; n < c.size(); ++n) {
      drained &= c.store(n).log().unreclaimed() == 0;
    }
    if (all_done() && drained) {
      if (++stable >= 10) {
        break;
      }
    } else {
      stable = 0;
    }
  }
  c.StopWorkers();
  c.engine().Run();
}

class BaselineModeTest : public ::testing::TestWithParam<BaselineMode> {};

TEST_P(BaselineModeTest, TransferCommitsAndReplicates) {
  txn::HashPartitioner part(3);
  BaselineCluster c(Opts(GetParam()), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(50));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(MakeTransfer(a, b, 30), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });

  EXPECT_EQ(GetI64(c.store(1).table(kBank).Lookup(a)->value, 0), 70);
  EXPECT_EQ(GetI64(c.store(2).table(kBank).Lookup(b)->value, 0), 80);
  for (store::NodeId bk : c.map().BackupsOf(1)) {
    EXPECT_EQ(GetI64(c.store(bk).table(kBank).Lookup(a)->value, 0), 70);
  }
  EXPECT_EQ(c.store(1).table(kBank).Lookup(a)->seq, 2u);
  EXPECT_EQ(c.store(1).table(kBank).Lookup(a)->lock_owner, store::kNoTxn);
  EXPECT_EQ(c.store(2).table(kBank).Lookup(b)->lock_owner, store::kNoTxn);
}

TEST_P(BaselineModeTest, AppAbortLeavesStateClean) {
  txn::HashPartitioner part(3);
  BaselineCluster c(Opts(GetParam()), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(5));
  c.LoadReplicated(kBank, b, Balance(5));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(MakeTransfer(a, b, 100), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kAppAborted);
  });
  Quiesce(c, [&] { return done; });
  EXPECT_EQ(GetI64(c.store(1).table(kBank).Lookup(a)->value, 0), 5);
  EXPECT_EQ(c.store(1).table(kBank).Lookup(a)->lock_owner, store::kNoTxn);
  EXPECT_EQ(c.store(2).table(kBank).Lookup(b)->lock_owner, store::kNoTxn);
}

TEST_P(BaselineModeTest, ReadOnlySeesConsistentValues) {
  txn::HashPartitioner part(3);
  BaselineCluster c(Opts(GetParam()), &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(42));
  c.LoadReplicated(kBank, b, Balance(17));
  c.StartWorkers();

  std::vector<int64_t> got;
  TxnRequest req;
  req.reads = {{kBank, a}, {kBank, b}};
  req.execute = [&got](txn::ExecRound& er) {
    got.clear();
    for (const auto& r : *er.reads) {
      got.push_back(r.found ? GetI64(r.value, 0) : -1);
    }
  };
  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  Quiesce(c, [&] { return done; });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], 42);
  EXPECT_EQ(got[1], 17);
}

TEST_P(BaselineModeTest, BalanceConservationUnderConcurrency) {
  txn::HashPartitioner part(3);
  BaselineCluster c(Opts(GetParam()), &part);
  Rng rng(77);
  constexpr int kAccounts = 40;
  constexpr int64_t kInitial = 1000;
  std::vector<store::Key> keys;
  for (int i = 0; i < kAccounts; ++i) {
    keys.push_back(static_cast<store::Key>(i + 1));
    c.LoadReplicated(kBank, keys.back(), Balance(kInitial));
  }
  c.StartWorkers();

  constexpr int kPerNode = 3;
  constexpr int kTxnsPerCtx = 25;
  int completed = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      completed++;
      return;
    }
    const store::Key from = keys[rng.NextBounded(kAccounts)];
    store::Key to = keys[rng.NextBounded(kAccounts)];
    while (to == from) {
      to = keys[rng.NextBounded(kAccounts)];
    }
    c.node(n).Submit(MakeTransfer(from, to, 1),
                     [&, n, left](TxnOutcome) { run_one(n, left - 1); });
  };
  for (uint32_t n = 0; n < c.size(); ++n) {
    for (int k = 0; k < kPerNode; ++k) {
      run_one(n, kTxnsPerCtx);
    }
  }
  Quiesce(c, [&] { return completed == static_cast<int>(c.size()) * kPerNode; });

  int64_t total = 0;
  for (auto k : keys) {
    const store::NodeId p = c.map().PrimaryOf(kBank, k);
    total += GetI64(c.store(p).table(kBank).Lookup(k)->value, 0);
    EXPECT_EQ(c.store(p).table(kBank).Lookup(k)->lock_owner, store::kNoTxn);
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  // Replicas converged.
  for (auto k : keys) {
    const store::NodeId p = c.map().PrimaryOf(kBank, k);
    const auto* pv = c.store(p).table(kBank).Lookup(k);
    for (store::NodeId bk : c.map().BackupsOf(p)) {
      const auto* bv = c.store(bk).table(kBank).Lookup(k);
      ASSERT_NE(bv, nullptr);
      EXPECT_EQ(pv->value, bv->value);
    }
  }
  EXPECT_GT(c.TotalStats().committed, 50u);
}

INSTANTIATE_TEST_SUITE_P(AllModes, BaselineModeTest,
                         ::testing::Values(BaselineMode::kDrtmH, BaselineMode::kDrtmHNC,
                                           BaselineMode::kFasst, BaselineMode::kDrtmR),
                         [](const ::testing::TestParamInfo<BaselineMode>& info) {
                           switch (info.param) {
                             case BaselineMode::kDrtmH:
                               return "DrtmH";
                             case BaselineMode::kDrtmHNC:
                               return "DrtmHNC";
                             case BaselineMode::kFasst:
                               return "Fasst";
                             case BaselineMode::kDrtmR:
                               return "DrtmR";
                           }
                           return "unknown";
                         });

TEST(ChainedStoreTest, InsertLockUnlock) {
  ChainedStore s({.capacity_log2 = 8, .value_size = 8});
  ASSERT_TRUE(s.Insert(5, Value(8, 1)).ok());
  EXPECT_TRUE(s.TryLock(5, 100));
  EXPECT_FALSE(s.TryLock(5, 200));
  EXPECT_TRUE(s.TryLock(5, 100));  // re-entrant
  s.Unlock(5, 200);                // wrong owner: no-op
  EXPECT_EQ(s.Lookup(5)->lock_owner, 100u);
  s.Unlock(5, 100);
  EXPECT_TRUE(s.TryLock(5, 200));
  s.Unlock(5, 200);
}

TEST(ChainedStoreTest, InsertLockingOnAbsentKey) {
  ChainedStore s({.capacity_log2 = 8, .value_size = 8});
  EXPECT_TRUE(s.TryLock(99, 7));
  // Placeholder exists while locked; unlock of a never-written key removes it.
  EXPECT_NE(s.Lookup(99), nullptr);
  s.Unlock(99, 7);
  EXPECT_EQ(s.Lookup(99), nullptr);
}

TEST(ChainedStoreTest, PlanLookupCountsChainHops) {
  ChainedStore s({.capacity_log2 = 6, .bucket_slots = 2, .value_size = 8});
  // Fill well past main-bucket capacity to force chains.
  Rng rng(5);
  std::vector<store::Key> keys;
  for (int i = 0; i < 60; ++i) {
    const store::Key k = rng.Next();
    ASSERT_TRUE(s.Insert(k, Value(8, 1)).ok());
    keys.push_back(k);
  }
  bool saw_multi = false;
  for (auto k : keys) {
    const auto plan = s.PlanLookup(k);
    EXPECT_TRUE(plan.found);
    saw_multi |= plan.roundtrips > 1;
  }
  EXPECT_TRUE(saw_multi);
}

}  // namespace
}  // namespace xenic::baseline
