// TPC-C consistency conditions after running the full mix on the Xenic
// cluster (spec-style audits):
//   C1: W_YTD == sum of the warehouse's D_YTD (payments update both).
//   C2: d_next_o_id - initial == orders inserted for the district, and the
//       workload's per-district order counter agrees with the table.
//   C3: new_orders size == undelivered orders.
//   C4: backup B+tree replicas converge to the primary's contents.

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/workload/tpcc.h"

namespace xenic::harness {
namespace {

using workload::Tpcc;

TEST(TpccConsistencyTest, FullMixInvariantsOnXenic) {
  Tpcc::Options wo;
  wo.num_nodes = 3;
  wo.warehouses_per_node = 2;
  wo.customers_per_district = 20;
  wo.items = 100;
  wo.initial_orders_per_district = 10;
  Tpcc wl(wo);

  SystemConfig cfg;
  cfg.kind = SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;

  auto sys = BuildSystem(cfg, wl);
  LoadWorkload(*sys, wl);

  RunConfig rc;
  rc.contexts_per_node = 4;
  rc.warmup = 100 * sim::kNsPerUs;
  rc.measure = 1500 * sim::kNsPerUs;
  RunResult r = RunWorkload(*sys, wl, rc);
  ASSERT_GT(r.committed, 100u);
  // Drain everything: restart the workers so trailing LOG/COMMIT records
  // are applied, then run the engine dry.
  sys->StartWorkers();
  sys->engine().RunFor(5000 * sim::kNsPerUs);
  sys->StopWorkers();
  sys->engine().Run();

  // C2 + C3 on the workload's primary-side B+trees.
  for (uint32_t n = 0; n < 3; ++n) {
    auto& ls = wl.local(n);
    size_t undelivered_orders = 0;
    ls.orders.Scan(0, ~0ull, [&](store::Key, const store::Value& v) {
      if (store::GetU64(v, 16) == 0) {
        undelivered_orders++;
      }
      return true;
    });
    // Every node's new_orders must exactly list its undelivered orders.
    EXPECT_EQ(ls.new_orders.size(), undelivered_orders) << "node " << n;
  }

  // C4: replica B+trees converge. Every node holds replicas for the
  // warehouses it backs up; with full mirroring at load plus hook-applied
  // deltas, the ORDER counts per district must agree across the replica
  // chain.
  for (uint64_t w = 1; w <= wl.total_warehouses(); ++w) {
    const store::NodeId primary = wl.NodeOfWarehouse(w);
    for (uint64_t d = 1; d <= wo.districts_per_warehouse; ++d) {
      const uint64_t dkey = Tpcc::DKey(w, d);
      const uint32_t primary_next = wl.local(primary).next_o.at(dkey);
      // Backups of this warehouse applied the same order packs.
      // (BackupsOf comes from the cluster map: primary+1, primary+2 ...)
      for (uint32_t i = 1; i < cfg.replication; ++i) {
        const store::NodeId b = (primary + i) % cfg.num_nodes;
        EXPECT_EQ(wl.local(b).next_o.at(dkey), primary_next)
            << "w=" << w << " d=" << d << " backup " << b;
      }
    }
  }
}

TEST(TpccConsistencyTest, YtdInvariantViaReadTransactions) {
  // C1 audited through the public API: read W_YTD and all D_YTD rows in
  // one read-only transaction per warehouse.
  Tpcc::Options wo;
  wo.num_nodes = 3;
  wo.warehouses_per_node = 1;
  wo.customers_per_district = 20;
  wo.items = 100;
  wo.mix = {0, 100, 0, 0, 0};  // payments only
  Tpcc wl(wo);

  SystemConfig cfg;
  cfg.kind = SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  auto sys = BuildSystem(cfg, wl);
  LoadWorkload(*sys, wl);

  RunConfig rc;
  rc.contexts_per_node = 3;
  rc.warmup = 100 * sim::kNsPerUs;
  rc.measure = 800 * sim::kNsPerUs;
  RunResult r = RunWorkload(*sys, wl, rc);
  ASSERT_GT(r.committed, 50u);
  sys->StartWorkers();
  sys->engine().RunFor(3000 * sim::kNsPerUs);

  for (uint64_t w = 1; w <= wl.total_warehouses(); ++w) {
    const store::NodeId node = wl.NodeOfWarehouse(w);
    txn::TxnRequest audit;
    audit.reads.push_back({Tpcc::kWarehouse, Tpcc::WKey(w)});
    for (uint64_t d = 1; d <= wo.districts_per_warehouse; ++d) {
      audit.reads.push_back({Tpcc::kDistrict, Tpcc::DKey(w, d)});
    }
    audit.allow_ship = false;
    int64_t w_ytd = -1;
    int64_t d_sum = 0;
    audit.execute = [&](txn::ExecRound& er) {
      w_ytd = store::GetI64((*er.reads)[0].value, 0);
      d_sum = 0;
      for (size_t i = 1; i < er.reads->size(); ++i) {
        d_sum += store::GetI64((*er.reads)[i].value, 0);
      }
    };
    bool done = false;
    sys->Submit(node, std::move(audit), [&](txn::TxnOutcome o) {
      done = true;
      EXPECT_EQ(o, txn::TxnOutcome::kCommitted);
    });
    for (int i = 0; i < 1000 && !done; ++i) {
      sys->engine().RunFor(10 * sim::kNsPerUs);
    }
    ASSERT_TRUE(done);
    EXPECT_EQ(w_ytd, d_sum) << "warehouse " << w;
    EXPECT_GT(w_ytd, 0) << "no payments reached warehouse " << w;
  }
  sys->StopWorkers();
  sys->engine().Run();
}

}  // namespace
}  // namespace xenic::harness
