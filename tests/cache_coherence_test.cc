// Whole-system cache coherence audit: after running a write-heavy mix on
// the Xenic cluster and quiescing (workers drained, no in-flight txns),
// every value-carrying NIC cache entry must agree exactly with the host
// table -- version and bytes -- with no pins or locks left behind. This is
// the paper's coherence contract (pinned-until-applied, commit-time cache
// updates) checked end to end.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

class CacheCoherenceTest : public ::testing::TestWithParam<uint64_t /*budget*/> {};

TEST_P(CacheCoherenceTest, CacheAgreesWithHostAfterQuiesce) {
  XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 12, 16, 8, 8}};
  o.nic_index.memory_budget = GetParam();
  HashPartitioner part(3);
  XenicCluster c(o, &part);

  Rng rng(4242);
  constexpr int kAccounts = 400;
  for (store::Key k = 1; k <= kAccounts; ++k) {
    c.LoadReplicated(kBank, k, Balance(500));
  }
  c.StartWorkers();

  int completed = 0;
  constexpr int kCtx = 9;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      completed++;
      return;
    }
    const store::Key from = 1 + rng.NextBounded(kAccounts);
    store::Key to = 1 + rng.NextBounded(kAccounts);
    while (to == from) {
      to = 1 + rng.NextBounded(kAccounts);
    }
    TxnRequest req;
    req.reads = {{kBank, from}, {kBank, to}};
    req.writes = {{kBank, from}, {kBank, to}};
    req.execute = [](ExecRound& er) {
      (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) - 1);
      (*er.writes)[1].value = Balance(GetI64((*er.reads)[1].value, 0) + 1);
    };
    c.node(n).Submit(std::move(req), [&, n, left](TxnOutcome) { run_one(n, left - 1); });
  };
  for (uint32_t n = 0; n < 3; ++n) {
    for (int i = 0; i < kCtx / 3; ++i) {
      run_one(n, 60);
    }
  }

  // Quiesce: all contexts done, all logs drained (stable).
  int stable = 0;
  for (int i = 0; i < 100000 && !c.engine().idle(); ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
    bool drained = completed == kCtx;
    for (uint32_t n = 0; n < 3; ++n) {
      drained &= c.datastore(n).log().unreclaimed() == 0;
    }
    if (drained && ++stable >= 10) {
      break;
    }
    if (!drained) {
      stable = 0;
    }
  }
  c.StopWorkers();
  c.engine().Run();

  // Audit every node's cache against its own host table. Only keys this
  // node is PRIMARY for are maintained by the commit protocol; backup
  // caches are never consulted (and are invalidated on promotion -- see
  // recovery_test).
  uint64_t audited = 0;
  for (uint32_t n = 0; n < 3; ++n) {
    for (const auto& e : c.datastore(n).index(kBank).CachedEntries()) {
      EXPECT_FALSE(e.pinned) << "node " << n << " key " << e.key;
      EXPECT_FALSE(e.locked) << "node " << n << " key " << e.key;
      if (c.map().PrimaryOf(kBank, e.key) != n) {
        continue;
      }
      auto host = c.datastore(n).table(kBank).Lookup(e.key);
      ASSERT_TRUE(host.has_value()) << "cached key absent from host: " << e.key;
      EXPECT_EQ(host->seq, e.seq) << "node " << n << " key " << e.key;
      EXPECT_EQ(host->value, *e.value) << "node " << n << " key " << e.key;
      audited++;
    }
    EXPECT_EQ(c.datastore(n).pending_writes(), 0u);
  }
  EXPECT_GT(audited, 100u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, CacheCoherenceTest,
                         ::testing::Values(0ull, 64ull * 1024, 8ull * 1024),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return info.param == 0 ? std::string("unlimited")
                                                  : std::to_string(info.param / 1024) + "KiB";
                         });

}  // namespace
}  // namespace xenic::txn
