#include "src/store/nic_index.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace xenic::store {
namespace {

struct Fixture {
  explicit Fixture(uint16_t dm = 8, size_t value_size = 16, NicIndex::Options nic_opts = {}) {
    RobinhoodTable::Options o;
    o.capacity_log2 = 12;
    o.value_size = value_size;
    o.max_displacement = dm;
    host = std::make_unique<RobinhoodTable>(o);
    index = std::make_unique<NicIndex>(host.get(), nic_opts);
  }
  std::unique_ptr<RobinhoodTable> host;
  std::unique_ptr<NicIndex> index;
};

Value V(uint8_t fill, size_t n = 16) { return Value(n, fill); }

TEST(NicIndexTest, MissThenHit) {
  Fixture f;
  ASSERT_TRUE(f.host->Insert(10, V(3)).ok());
  f.index->SyncHintsFromHost();

  NicIndex::LookupStats s1;
  auto r1 = f.index->LookupRemote(10, &s1);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->value, V(3));
  EXPECT_FALSE(s1.cache_hit);
  EXPECT_GE(s1.dma_reads, 1u);
  EXPECT_GT(s1.bytes_read, 0u);

  NicIndex::LookupStats s2;
  auto r2 = f.index->LookupRemote(10, &s2);
  ASSERT_TRUE(r2.has_value());
  EXPECT_TRUE(s2.cache_hit);
  EXPECT_EQ(s2.dma_reads, 0u);
  EXPECT_EQ(r2->value, V(3));
}

TEST(NicIndexTest, AbsentKeyCostsReads) {
  Fixture f;
  NicIndex::LookupStats s;
  EXPECT_FALSE(f.index->LookupRemote(99, &s).has_value());
  EXPECT_GE(s.dma_reads, 1u);
  EXPECT_FALSE(s.found);
}

TEST(NicIndexTest, FreshHintSingleDmaRead) {
  Fixture f;
  Rng rng(1);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    const Key k = rng.Next();
    if (f.host->Insert(k, V(1)).ok()) {
      keys.push_back(k);
    }
  }
  f.index->SyncHintsFromHost();
  // With exact hints, table-resident keys need exactly one region DMA read;
  // only keys that spilled to overflow need a second (overflow page) read.
  uint64_t single = 0;
  uint64_t total = 0;
  for (Key k : keys) {
    NicIndex::LookupStats s;
    auto r = f.index->ReadMetadata(k, &s);
    ASSERT_TRUE(r.has_value());
    if (s.cache_hit) {
      continue;
    }
    total++;
    EXPECT_LE(s.dma_reads, 2u);
    if (s.dma_reads == 1) {
      single++;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(single) / total, 0.95);
}

TEST(NicIndexTest, StaleHintTriggersSecondRead) {
  Fixture f(/*dm=*/16);
  // Insert one key, sync hints, then pile inserts into the same segment
  // region to push displacements past the synced hint.
  ASSERT_TRUE(f.host->Insert(1000, V(1)).ok());
  f.index->SyncHintsFromHost();
  Rng rng(2);
  for (int i = 0; i < 3500; ++i) {
    f.host->Insert(rng.Next(), V(2));
  }
  // Lookups of keys displaced beyond (hint + k) need the second adjacent
  // read. Aggregate across many keys: at least some need 2 reads, all
  // succeed.
  uint64_t two_reads = 0;
  uint64_t lookups = 0;
  Rng rng2(2);
  // Re-derive the inserted keys (same sequence).
  std::vector<Key> keys;
  for (int i = 0; i < 3500; ++i) {
    keys.push_back(rng2.Next());
  }
  for (Key k : keys) {
    if (!f.host->Contains(k)) {
      continue;
    }
    NicIndex::LookupStats s;
    auto r = f.index->ReadMetadata(k, &s);
    if (s.cache_hit) {
      continue;
    }
    ASSERT_TRUE(r.has_value()) << "key " << k;
    lookups++;
    if (s.dma_reads >= 2) {
      two_reads++;
    }
  }
  ASSERT_GT(lookups, 1000u);
  EXPECT_GT(two_reads, 0u);
  // Second reads should be the minority: hints adapt as lookups discover
  // displacement growth.
  EXPECT_LT(static_cast<double>(two_reads) / lookups, 0.5);
}

TEST(NicIndexTest, OverflowKeyFoundViaOverflowRead) {
  Fixture f(/*dm=*/4);
  Rng rng(3);
  std::vector<Key> keys;
  for (int i = 0; i < 3600; ++i) {
    const Key k = rng.Next();
    if (f.host->Insert(k, V(1)).ok()) {
      keys.push_back(k);
    }
  }
  ASSERT_GT(f.host->overflow_size(), 0u);
  f.index->SyncHintsFromHost();
  for (Key k : keys) {
    NicIndex::LookupStats s;
    auto r = f.index->LookupRemote(k, &s);
    ASSERT_TRUE(r.has_value()) << k;
  }
}

TEST(NicIndexTest, LargeValueSecondHop) {
  Fixture f(/*dm=*/8, /*value_size=*/400);
  Value big(400, 0x7E);
  ASSERT_TRUE(f.host->Insert(5, big).ok());
  f.index->SyncHintsFromHost();
  NicIndex::LookupStats s;
  auto r = f.index->LookupRemote(5, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, big);
  EXPECT_EQ(s.dma_reads, 2u);  // region read + heap object read
  EXPECT_GE(s.bytes_read, 400u);
}

TEST(NicIndexTest, LockAcquireConflictRelease) {
  Fixture f;
  const TxnId t1 = MakeTxnId(0, 1);
  const TxnId t2 = MakeTxnId(1, 1);
  EXPECT_TRUE(f.index->AcquireLock(7, t1).ok());
  EXPECT_TRUE(f.index->IsLocked(7));
  EXPECT_EQ(f.index->LockOwner(7), t1);
  EXPECT_EQ(f.index->AcquireLock(7, t2).code(), StatusCode::kAborted);
  // Re-acquire by the same owner is idempotent.
  EXPECT_TRUE(f.index->AcquireLock(7, t1).ok());
  f.index->ReleaseLock(7, t2);  // wrong owner: no-op
  EXPECT_TRUE(f.index->IsLocked(7));
  f.index->ReleaseLock(7, t1);
  EXPECT_FALSE(f.index->IsLocked(7));
  EXPECT_TRUE(f.index->AcquireLock(7, t2).ok());
  f.index->ReleaseLock(7, t2);
}

TEST(NicIndexTest, LockStateVisibleThroughLookup) {
  Fixture f;
  ASSERT_TRUE(f.host->Insert(10, V(1)).ok());
  f.index->SyncHintsFromHost();
  const TxnId t1 = MakeTxnId(0, 5);
  ASSERT_TRUE(f.index->AcquireLock(10, t1).ok());
  NicIndex::LookupStats s;
  auto r = f.index->LookupRemote(10, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lock_owner, t1);
}

TEST(NicIndexTest, ApplyCommitPinsUntilHostApplied) {
  Fixture f;
  ASSERT_TRUE(f.host->Insert(20, V(1)).ok());
  f.index->SyncHintsFromHost();
  f.index->ApplyCommit(20, V(9), 2);
  EXPECT_EQ(f.index->pinned_objects(), 1u);
  // The cache must serve the new value even though the host still has the
  // old one.
  NicIndex::LookupStats s;
  auto r = f.index->LookupRemote(20, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(s.cache_hit);
  EXPECT_EQ(r->value, V(9));
  EXPECT_EQ(r->seq, 2u);
  // Host applies; ack unpins.
  ASSERT_TRUE(f.host->Apply(20, V(9), 2).ok());
  const size_t seg = f.host->SegmentOfKey(20);
  f.index->OnHostApplied(20, f.host->SegmentMaxDisp(seg), f.host->SegmentHasOverflow(seg));
  EXPECT_EQ(f.index->pinned_objects(), 0u);
}

TEST(NicIndexTest, EvictionRespectsBudgetAndPins) {
  NicIndex::Options opts;
  opts.memory_budget = 2048;
  Fixture f(/*dm=*/8, /*value_size=*/64, opts);
  Rng rng(4);
  std::vector<Key> keys;
  for (int i = 0; i < 500; ++i) {
    const Key k = rng.Next();
    if (f.host->Insert(k, V(1, 64)).ok()) {
      keys.push_back(k);
    }
  }
  f.index->SyncHintsFromHost();
  // Pin one object via ApplyCommit.
  f.index->ApplyCommit(keys[0], V(2, 64), 2);
  for (Key k : keys) {
    f.index->LookupRemote(k, nullptr);
  }
  EXPECT_LE(f.index->cached_bytes(), opts.memory_budget + 256);
  EXPECT_GT(f.index->evictions(), 0u);
  // The pinned object survived the cache pressure.
  EXPECT_TRUE(f.index->IsCached(keys[0]));
  NicIndex::LookupStats s;
  auto r = f.index->LookupRemote(keys[0], &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, V(2, 64));
}

TEST(NicIndexTest, CacheDisabledNeverAdmits) {
  NicIndex::Options opts;
  opts.cache_values = false;
  Fixture f(/*dm=*/8, /*value_size=*/16, opts);
  ASSERT_TRUE(f.host->Insert(3, V(1)).ok());
  f.index->SyncHintsFromHost();
  for (int i = 0; i < 3; ++i) {
    NicIndex::LookupStats s;
    auto r = f.index->LookupRemote(3, &s);
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(s.cache_hit);
    EXPECT_GE(s.dma_reads, 1u);
  }
}

TEST(NicIndexTest, HintUpdatesMonotoneAndCapped) {
  Fixture f(/*dm=*/8);
  f.index->UpdateHint(0, 5, false);
  EXPECT_EQ(f.index->HintOf(0), 5);
  f.index->UpdateHint(0, 3, false);
  EXPECT_EQ(f.index->HintOf(0), 5);
  f.index->UpdateHint(0, 100, true);
  EXPECT_EQ(f.index->HintOf(0), 8);  // capped at Dm
}

}  // namespace
}  // namespace xenic::store
