#include "src/store/datastore.h"

#include <gtest/gtest.h>

namespace xenic::store {
namespace {

std::vector<TableSpec> TwoTables() {
  return {
      TableSpec{0, "accounts", 10, 16, 8, 8},
      TableSpec{1, "profiles", 10, 300, 8, 8},  // large values
  };
}

TEST(DatastoreTest, LoadAndLocalRead) {
  Datastore ds(TwoTables(), {});
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 7)).ok());
  auto r = ds.table(0).Lookup(1);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, Value(16, 7));
}

TEST(DatastoreTest, LoadSyncsNicHints) {
  NicIndex::Options no;
  no.admit_on_load = false;
  Datastore ds(TwoTables(), no);
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 7)).ok());
  // NIC lookup must succeed with hints set at load time.
  NicIndex::LookupStats s;
  auto r = ds.index(0).LookupRemote(1, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, Value(16, 7));
  EXPECT_EQ(s.dma_reads, 1u);
}

TEST(DatastoreTest, LoadWarmsNicCacheByDefault) {
  Datastore ds(TwoTables(), {});
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 7)).ok());
  NicIndex::LookupStats s;
  auto r = ds.index(0).LookupRemote(1, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(s.cache_hit);
  EXPECT_EQ(s.dma_reads, 0u);
}

TEST(DatastoreTest, ApplyLogRecordUpdatesTables) {
  Datastore ds(TwoTables(), {});
  ASSERT_TRUE(ds.Load(0, 1, Value(16, 1)).ok());
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn = MakeTxnId(0, 1);
  rec.writes.push_back(LogWrite{0, 1, 2, Value(16, 9), false});
  rec.writes.push_back(LogWrite{0, 55, 1, Value(16, 3), false});  // insert
  auto lsn = ds.log().Append(rec);
  ASSERT_TRUE(lsn.ok());
  auto acks = ds.ApplyNext();
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(ds.table(0).Lookup(1)->value, Value(16, 9));
  EXPECT_EQ(ds.table(0).GetSeq(1).value(), 2u);
  EXPECT_EQ(ds.table(0).Lookup(55)->value, Value(16, 3));
  EXPECT_EQ(ds.records_applied(), 1u);
  // Acks carry hint data for each written key's segment.
  for (const auto& a : acks) {
    EXPECT_EQ(a.table, 0);
  }
}

TEST(DatastoreTest, ApplyDeleteRemovesKey) {
  Datastore ds(TwoTables(), {});
  ASSERT_TRUE(ds.Load(0, 7, Value(16, 1)).ok());
  LogRecord rec;
  rec.writes.push_back(LogWrite{0, 7, 0, Value{}, true});
  ds.log().Append(rec);
  ds.ApplyNext();
  EXPECT_FALSE(ds.table(0).Contains(7));
}

TEST(DatastoreTest, ApplyNextOnEmptyLogReturnsEmpty) {
  Datastore ds(TwoTables(), {});
  EXPECT_TRUE(ds.ApplyNext().empty());
}

TEST(DatastoreTest, LargeValueTableRoundTrip) {
  NicIndex::Options no;
  no.admit_on_load = false;
  Datastore ds(TwoTables(), no);
  Value big(300, 0x5A);
  ASSERT_TRUE(ds.Load(1, 99, big).ok());
  NicIndex::LookupStats s;
  auto r = ds.index(1).LookupRemote(99, &s);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, big);
  EXPECT_EQ(s.dma_reads, 2u);
}

}  // namespace
}  // namespace xenic::store
