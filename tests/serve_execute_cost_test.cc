// Pins the EXECUTE-handler NIC cost semantics (DESIGN.md §13). The
// historical code passed `NicOpCost(reads.size() + writes.size())` alongside
// a lambda whose init-captures moved `reads`/`writes` in the same call;
// argument evaluation ran the moves first, so the handler was always charged
// NicOpCost(0) -- the base cost, with no per-key term. Every golden
// transcript encodes that timing, so the cost is now written as an explicit
// NicOpCost(0) in ServeExecute and ServeShipExec. This test fails if anyone
// "fixes" it back: a remote EXECUTE must cost the same NIC-core busy time
// whether it carries one key or six.

#include <gtest/gtest.h>

#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

// Placement helper: find keys whose primary is the wanted node.
std::vector<store::Key> KeysOn(const Partitioner& part, store::NodeId node, size_t count) {
  std::vector<store::Key> out;
  for (store::Key k = 0; out.size() < count; ++k) {
    if (part.PrimaryOf(0, k) == node) {
      out.push_back(k);
    }
  }
  return out;
}

// Remote NIC-core busy time of serving one read-only transaction whose keys
// all live on node 1, submitted at node 0.
sim::Tick RemoteBusyFor(size_t n_keys) {
  XenicClusterOptions o;
  o.num_nodes = 2;
  o.replication = 1;
  o.tables = {store::TableSpec{0, "t", 10, 16, 8, 8}};
  HashPartitioner part(2);
  XenicCluster cluster(o, &part);
  const auto keys = KeysOn(part, 1, n_keys);
  for (store::Key k : keys) {
    store::Value v(16, 0);
    cluster.LoadReplicated(0, k, v);
  }
  cluster.StartWorkers();

  TxnRequest req;
  for (store::Key k : keys) {
    req.reads.push_back({0, k});
  }
  req.execute = [](ExecRound&) {};
  bool done = false;
  cluster.node(0).Submit(std::move(req), [&](TxnOutcome out) {
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    done = true;
  });
  for (int i = 0; i < 1000 && !done; ++i) {
    cluster.engine().RunFor(10 * sim::kNsPerUs);
  }
  EXPECT_TRUE(done);
  const sim::Tick busy = cluster.nic(1).nic_cores().busy_time();
  cluster.StopWorkers();
  cluster.engine().Run();
  return busy;
}

TEST(ServeExecuteCostTest, RemoteExecuteChargesBaseCostOnly) {
  const sim::Tick one = RemoteBusyFor(1);
  const sim::Tick six = RemoteBusyFor(6);
  // Combined ops let a single-shard read-only txn commit inside its one
  // EXECUTE round, so the remote NIC busy time (the handler's NicOpCost(0)
  // plus fixed receive/reply costs, none key-dependent) must be identical:
  // a per-key term in the handler would separate the two by 5 * kNicKeyCost.
  EXPECT_EQ(one, six);
  EXPECT_GT(one, 0);
}

TEST(ServeExecuteCostTest, CoordinatorSideStillScalesWithKeys) {
  // Control: the coordinator's own NIC work (building and parsing the
  // combined op) DOES carry the per-key term, so total simulated time is
  // still key-count sensitive -- the pin above is about the serving side
  // only, not a claim that key count is free end to end.
  XenicClusterOptions o;
  o.num_nodes = 2;
  o.replication = 1;
  o.tables = {store::TableSpec{0, "t", 10, 16, 8, 8}};
  HashPartitioner part(2);

  auto coord_busy = [&](size_t n_keys) {
    XenicCluster cluster(o, &part);
    const auto keys = KeysOn(part, 1, n_keys);
    for (store::Key k : keys) {
      cluster.LoadReplicated(0, k, store::Value(16, 0));
    }
    cluster.StartWorkers();
    TxnRequest req;
    for (store::Key k : keys) {
      req.reads.push_back({0, k});
    }
    req.execute = [](ExecRound&) {};
    bool done = false;
    cluster.node(0).Submit(std::move(req), [&](TxnOutcome) { done = true; });
    for (int i = 0; i < 1000 && !done; ++i) {
      cluster.engine().RunFor(10 * sim::kNsPerUs);
    }
    EXPECT_TRUE(done);
    const sim::Tick busy = cluster.nic(0).nic_cores().busy_time();
    cluster.StopWorkers();
    cluster.engine().Run();
    return busy;
  };

  EXPECT_GT(coord_busy(6), coord_busy(1));
}

}  // namespace
}  // namespace xenic::txn
