// Tests for the hardware timing models: latency composition (Figure 2
// shapes), Ethernet aggregation, DMA engine behaviour (Figure 4 shapes),
// and the RDMA NIC's verbs and ceilings.

#include <gtest/gtest.h>

#include "src/nicmodel/rdma_nic.h"
#include "src/nicmodel/smart_nic.h"

namespace xenic::nicmodel {
namespace {

using sim::Engine;
using sim::Tick;

struct LioFixture {
  LioFixture() : fabric(&engine, model, 3) {}
  Engine engine;
  net::PerfModel model;
  SmartNicFabric fabric;
};

Tick MeasureOnce(Engine& eng, const std::function<void(Engine::Callback)>& op) {
  Tick done_at = 0;
  const Tick start = eng.now();
  op([&] { done_at = eng.now(); });
  eng.Run();
  return done_at - start;
}

TEST(SmartNicTest, NicToNicMessageLatency) {
  LioFixture f;
  const Tick rtt = MeasureOnce(f.engine, [&](Engine::Callback done) {
    f.fabric.node(0).NicSend(1, 256, [&, done = std::move(done)]() mutable {
      f.fabric.node(1).NicSend(0, 256, std::move(done));
    });
  });
  // NIC-to-NIC roundtrip: ~2.5-3.5us (below two-sided RDMA's ~6-7us).
  EXPECT_GT(rtt, 2000u);
  EXPECT_LT(rtt, 4000u);
}

TEST(SmartNicTest, HostInitiationAddsPcieCrossings) {
  LioFixture f;
  const Tick from_nic = MeasureOnce(f.engine, [&](Engine::Callback done) {
    f.fabric.node(0).NicSend(1, 256, [&, done = std::move(done)]() mutable {
      f.fabric.node(1).NicSend(0, 256, std::move(done));
    });
  });
  LioFixture g;
  const Tick from_host = MeasureOnce(g.engine, [&](Engine::Callback done) {
    g.fabric.node(0).HostToNic(256, [&, done = std::move(done)]() mutable {
      g.fabric.node(0).NicSend(1, 256, [&, done = std::move(done)]() mutable {
        g.fabric.node(1).NicSend(0, 256, [&, done = std::move(done)]() mutable {
          g.fabric.node(0).NicToHost(256, std::move(done));
        });
      });
    });
  });
  // Two PCIe crossings add ~1.5-2.5us.
  EXPECT_GT(from_host, from_nic + 1200);
  EXPECT_LT(from_host, from_nic + 3500);
}

TEST(SmartNicTest, AggregationSharesFrames) {
  LioFixture batched;
  int delivered = 0;
  for (int i = 0; i < 20; ++i) {
    batched.fabric.node(0).NicSend(1, 50, [&] { delivered++; });
  }
  batched.engine.Run();
  EXPECT_EQ(delivered, 20);
  // 20 x 50B messages fit one MTU: a single frame (or two with timing).
  EXPECT_LE(batched.fabric.node(0).frames_sent(), 2u);

  LioFixture single;
  for (uint32_t n = 0; n < 3; ++n) {
    single.fabric.node(n).features().eth_aggregation = false;
  }
  delivered = 0;
  for (int i = 0; i < 20; ++i) {
    single.fabric.node(0).NicSend(1, 50, [&] { delivered++; });
  }
  single.engine.Run();
  EXPECT_EQ(delivered, 20);
  EXPECT_EQ(single.fabric.node(0).frames_sent(), 20u);
}

TEST(SmartNicTest, MtuTriggersImmediateFlush) {
  LioFixture f;
  int delivered = 0;
  // 3 x 600B exceeds the 1500B MTU: flushes before the batch window.
  for (int i = 0; i < 3; ++i) {
    f.fabric.node(0).NicSend(1, 600, [&] { delivered++; });
  }
  f.engine.RunFor(f.model.batch_window - 50);
  EXPECT_GE(f.fabric.node(0).frames_sent(), 1u);
  f.engine.Run();
  EXPECT_EQ(delivered, 3);
}

TEST(SmartNicTest, WireBytesIncludeFrameOverhead) {
  LioFixture f;
  f.fabric.node(0).NicSend(1, 100, [] {});
  f.engine.Run();
  EXPECT_EQ(f.fabric.node(0).wire_bytes_sent(), 100u + f.model.frame_overhead);
}

TEST(SmartNicTest, DmaReadSlowerThanWrite) {
  LioFixture f;
  const Tick read = MeasureOnce(
      f.engine, [&](Engine::Callback done) { f.fabric.node(0).DmaRead(256, std::move(done)); });
  LioFixture g;
  const Tick write = MeasureOnce(
      g.engine, [&](Engine::Callback done) { g.fabric.node(0).DmaWrite(256, std::move(done)); });
  EXPECT_GT(read, write);
  EXPECT_GE(read, f.model.dma_read_completion);
  EXPECT_GE(write, f.model.dma_write_completion);
  EXPECT_LT(read, 2500u);
}

TEST(SmartNicTest, DmaEngineThroughputCeiling) {
  LioFixture f;
  uint64_t completed = 0;
  std::function<void()> loop = [&] {
    f.fabric.node(0).DmaRead(64, [&] {
      completed++;
      loop();
    });
  };
  for (int i = 0; i < 64; ++i) {
    loop();
  }
  f.engine.RunFor(500 * sim::kNsPerUs);
  const double mops = static_cast<double>(completed) / 500e3 * 1e3;
  // Vectored submission reaches the 8.7 Mops/s hardware maximum.
  EXPECT_GT(mops, 8.0);
  EXPECT_LT(mops, 9.5);
}

TEST(SmartNicTest, UnbatchedDmaSubmissionLimitsThroughput) {
  LioFixture f;
  f.fabric.node(0).features().async_dma_batching = false;
  uint64_t completed = 0;
  std::function<void()> loop = [&] {
    f.fabric.node(0).DmaRead(64, [&] {
      completed++;
      loop();
    });
  };
  for (int i = 0; i < 64; ++i) {
    loop();
  }
  f.engine.RunFor(500 * sim::kNsPerUs);
  const double mops = static_cast<double>(completed) / 500e3 * 1e3;
  // Per-request descriptor fetches cap the rate at ~1/190ns = 5.3 Mops/s.
  EXPECT_LT(mops, 6.0);
  EXPECT_GT(mops, 4.0);
}

struct RdmaFixture {
  RdmaFixture() {
    for (int i = 0; i < 2; ++i) {
      cores.push_back(std::make_unique<sim::Resource>(&engine, "host", model.host_threads));
      ptrs.push_back(cores.back().get());
    }
    fabric = std::make_unique<RdmaFabric>(&engine, model, ptrs);
  }
  Engine engine;
  net::PerfModel model;
  std::vector<std::unique_ptr<sim::Resource>> cores;
  std::vector<sim::Resource*> ptrs;
  std::unique_ptr<RdmaFabric> fabric;
};

TEST(RdmaNicTest, OneSidedReadLatency) {
  RdmaFixture f;
  const Tick rtt = MeasureOnce(f.engine, [&](Engine::Callback done) {
    f.fabric->node(0).Read(1, 256, std::move(done));
  });
  // ~3.4us (paper Figure 2b).
  EXPECT_GT(rtt, 2800u);
  EXPECT_LT(rtt, 4200u);
}

TEST(RdmaNicTest, TwoSidedRpcSlowerThanOneSided) {
  RdmaFixture f;
  const Tick read = MeasureOnce(f.engine, [&](Engine::Callback done) {
    f.fabric->node(0).Read(1, 256, std::move(done));
  });
  RdmaFixture g;
  const Tick rpc = MeasureOnce(g.engine, [&](Engine::Callback done) {
    g.fabric->node(0).Rpc(1, 256, 256, 0, [] {}, std::move(done));
  });
  EXPECT_GT(rpc, read + 2000);
}

TEST(RdmaNicTest, AtomicExecutesAtTarget) {
  RdmaFixture f;
  uint64_t target_word = 7;
  uint64_t result = 0;
  f.fabric->node(0).Atomic(
      1,
      [&]() -> uint64_t {
        const uint64_t old = target_word;
        target_word = 99;
        return old;
      },
      [&](uint64_t v) { result = v; });
  f.engine.Run();
  EXPECT_EQ(result, 7u);
  EXPECT_EQ(target_word, 99u);
}

TEST(RdmaNicTest, RpcHandlerRunsOnTargetHost) {
  RdmaFixture f;
  bool handled = false;
  bool done = false;
  f.fabric->node(0).Rpc(1, 64, 64, 500, [&] { handled = true; }, [&] { done = true; });
  f.engine.Run();
  EXPECT_TRUE(handled);
  EXPECT_TRUE(done);
  // Handler consumed target host-core time.
  EXPECT_GT(f.cores[1]->busy_time(), 500u);
}

TEST(RdmaNicTest, SmallOpThroughputCeiling) {
  RdmaFixture f;
  uint64_t completed = 0;
  std::function<void()> loop = [&] {
    f.fabric->node(0).Write(1, 32, [&] {
      completed++;
      loop();
    });
  };
  for (int i = 0; i < 256; ++i) {
    loop();
  }
  f.engine.RunFor(500 * sim::kNsPerUs);
  const double mops = static_cast<double>(completed) / 500e3 * 1e3;
  // ~15 Mops/s small-op ceiling (paper section 3.4).
  EXPECT_GT(mops, 11.0);
  EXPECT_LT(mops, 18.0);
}

TEST(RdmaNicTest, ReadDataVisibleAtInitiator) {
  RdmaFixture f;
  int target_value = 42;
  int got = 0;
  f.fabric->node(0).Read(1, 64, [&] { got = target_value; }, [&] { EXPECT_EQ(got, 42); });
  f.engine.Run();
  EXPECT_EQ(got, 42);
}

}  // namespace
}  // namespace xenic::nicmodel
