#include "src/store/commit_log.h"

#include <gtest/gtest.h>

namespace xenic::store {
namespace {

LogRecord MakeRecord(TxnId txn, std::vector<Key> keys) {
  LogRecord r;
  r.type = LogRecordType::kLog;
  r.txn = txn;
  for (Key k : keys) {
    r.writes.push_back(LogWrite{0, k, 1, Value(8, 1), false});
  }
  return r;
}

TEST(CommitLogTest, AppendAssignsMonotoneLsns) {
  CommitLog log;
  auto a = log.Append(MakeRecord(1, {1}));
  auto b = log.Append(MakeRecord(2, {2}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 1u);
  EXPECT_EQ(log.pending(), 2u);
}

TEST(CommitLogTest, PeekPopOrder) {
  CommitLog log;
  log.Append(MakeRecord(1, {1}));
  log.Append(MakeRecord(2, {2}));
  ASSERT_NE(log.Peek(), nullptr);
  EXPECT_EQ(log.Peek()->txn, 1u);
  log.PopApplied();
  EXPECT_EQ(log.Peek()->txn, 2u);
  log.PopApplied();
  EXPECT_EQ(log.Peek(), nullptr);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.unreclaimed(), 2u);
}

TEST(CommitLogTest, ReclaimFreesApplied) {
  CommitLog log;
  log.Append(MakeRecord(1, {1}));
  log.Append(MakeRecord(2, {2}));
  log.PopApplied();
  log.PopApplied();
  log.Reclaim(1);
  EXPECT_EQ(log.unreclaimed(), 1u);
  log.Reclaim(2);
  EXPECT_EQ(log.unreclaimed(), 0u);
}

TEST(CommitLogTest, CapacityBackpressure) {
  CommitLog log(2);
  EXPECT_TRUE(log.Append(MakeRecord(1, {1})).ok());
  EXPECT_TRUE(log.Append(MakeRecord(2, {2})).ok());
  auto r = log.Append(MakeRecord(3, {3}));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCapacity);
  // Apply + reclaim frees space.
  log.PopApplied();
  log.Reclaim(1);
  EXPECT_TRUE(log.Append(MakeRecord(3, {3})).ok());
}

TEST(CommitLogTest, ByteSizeCountsWrites) {
  LogRecord r = MakeRecord(1, {1, 2, 3});
  EXPECT_EQ(r.ByteSize(), 24 + 3 * (24 + 8));
}

TEST(CommitLogTest, RecordContentsPreserved) {
  CommitLog log;
  LogRecord r;
  r.type = LogRecordType::kCommit;
  r.txn = 42;
  r.writes.push_back(LogWrite{3, 77, 9, Value(4, 0xAB), false});
  log.Append(std::move(r));
  const LogRecord* p = log.Peek();
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->type, LogRecordType::kCommit);
  EXPECT_EQ(p->txn, 42u);
  ASSERT_EQ(p->writes.size(), 1u);
  EXPECT_EQ(p->writes[0].table, 3);
  EXPECT_EQ(p->writes[0].key, 77u);
  EXPECT_EQ(p->writes[0].seq, 9u);
  EXPECT_EQ(p->writes[0].value, Value(4, 0xAB));
}

}  // namespace
}  // namespace xenic::store
