// Recovery tests (paper 4.2.1): lease-based failure detection, backup
// promotion with lock-state reconstruction, roll-forward/discard decisions
// from surviving logs, and post-recovery routing via the remapped
// partitioner.

#include <gtest/gtest.h>

#include <optional>

#include "src/chaos/history.h"
#include "src/txn/recovery.h"

namespace xenic::txn {
namespace {

using store::GetI64;
using store::MakeValue;
using store::PutI64;
using store::Value;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out = MakeValue(16, 0);
  PutI64(out, 0, v);
  return out;
}

XenicClusterOptions Opts() {
  XenicClusterOptions o;
  o.num_nodes = 4;
  o.replication = 3;  // primary + 2 backups: one survivor pair per shard
  o.tables = {store::TableSpec{kBank, "bank", 12, 16, 8, 8}};
  return o;
}

store::Key KeyOn(const XenicCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

TEST(ClusterManagerTest, LeasesExpireAndRenew) {
  sim::Engine eng;
  ClusterManager mgr(&eng, 3, 1000);
  EXPECT_TRUE(mgr.IsAlive(0));
  eng.RunUntil(500);
  mgr.RenewLease(0);
  eng.RunUntil(1200);
  EXPECT_TRUE(mgr.IsAlive(0));   // renewed at 500 -> expires 1500
  EXPECT_FALSE(mgr.IsAlive(1));  // never renewed
  auto expired = mgr.ExpiredLeases();
  EXPECT_EQ(expired.size(), 2u);
}

TEST(ClusterManagerTest, MarkFailedBumpsEpochOnce) {
  sim::Engine eng;
  ClusterManager mgr(&eng, 3, 1000);
  const uint64_t e0 = mgr.epoch();
  mgr.MarkFailed(1);
  EXPECT_EQ(mgr.epoch(), e0 + 1);
  mgr.MarkFailed(1);
  EXPECT_EQ(mgr.epoch(), e0 + 1);
  EXPECT_FALSE(mgr.IsAlive(1));
  mgr.RenewLease(1);  // failed nodes cannot renew
  EXPECT_FALSE(mgr.IsAlive(1));
}

TEST(RemappedPartitionerTest, RoutesFailedShards) {
  HashPartitioner base(4);
  RemappedPartitioner remap(&base, {{2, 3}});
  for (store::Key k = 0; k < 1000; ++k) {
    const store::NodeId orig = base.PrimaryOf(0, k);
    const store::NodeId now = remap.PrimaryOf(0, k);
    if (orig == 2) {
      EXPECT_EQ(now, 3u);
    } else {
      EXPECT_EQ(now, orig);
    }
  }
}

TEST(RecoveryTest, RollsForwardCompleteTransactions) {
  HashPartitioner part(4);
  XenicCluster c(Opts(), &part);
  const store::NodeId failed = 1;
  const store::Key key = KeyOn(c, failed);
  c.LoadReplicated(kBank, key, Balance(100));

  // A transaction reached its commit point: LOG records on BOTH surviving
  // backups, but the primary crashed before applying.
  const store::TxnId txn = store::MakeTxnId(0, 99);
  store::LogRecord rec;
  rec.type = store::LogRecordType::kLog;
  rec.txn = txn;
  rec.writes.push_back(store::LogWrite{kBank, key, 2, Balance(150), false});
  for (store::NodeId b : c.map().BackupsOf(failed)) {
    ASSERT_TRUE(c.datastore(b).log().Append(rec).ok());
  }

  const store::NodeId promoted = c.map().BackupsOf(failed)[0];
  RecoveryReport report = RecoverShard(c, failed, promoted);
  EXPECT_EQ(report.rolled_forward, 1u);
  EXPECT_EQ(report.discarded, 0u);
  EXPECT_GE(report.locks_rebuilt, 1u);
  // The new primary holds the committed value, lock released.
  auto r = c.datastore(promoted).table(kBank).Lookup(key);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(GetI64(r->value, 0), 150);
  EXPECT_EQ(r->seq, 2u);
  EXPECT_FALSE(c.datastore(promoted).index(kBank).IsLocked(key));
  // The promoted node's stale backup cache was invalidated: a remote
  // lookup must serve the ROLLED-FORWARD value, not the load-time one.
  store::NicIndex::LookupStats st;
  auto cached = c.datastore(promoted).index(kBank).LookupRemote(key, &st);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(GetI64(cached->value, 0), 150);
  EXPECT_EQ(cached->seq, 2u);
}

TEST(RecoveryTest, DiscardsIncompleteTransactions) {
  HashPartitioner part(4);
  XenicCluster c(Opts(), &part);
  const store::NodeId failed = 1;
  const store::Key key = KeyOn(c, failed);
  c.LoadReplicated(kBank, key, Balance(100));

  // LOG record reached only ONE backup: the commit point was never
  // reached, so recovery must discard it.
  const store::TxnId txn = store::MakeTxnId(2, 7);
  store::LogRecord rec;
  rec.txn = txn;
  rec.writes.push_back(store::LogWrite{kBank, key, 2, Balance(999), false});
  const auto backups = c.map().BackupsOf(failed);
  ASSERT_TRUE(c.datastore(backups[0]).log().Append(rec).ok());

  RecoveryReport report = RecoverShard(c, failed, backups[0]);
  EXPECT_EQ(report.rolled_forward, 0u);
  EXPECT_EQ(report.discarded, 1u);
  auto r = c.datastore(backups[0]).table(kBank).Lookup(key);
  EXPECT_EQ(GetI64(r->value, 0), 100);  // old value preserved
  EXPECT_FALSE(c.datastore(backups[0]).index(kBank).IsLocked(key));
}

TEST(RecoveryTest, EndToEndPromotionServesNewTransactions) {
  // Run real traffic, "fail" a node, promote, remap, and keep running
  // against the promoted primary.
  HashPartitioner part(4);
  XenicClusterOptions opts = Opts();
  XenicCluster c(opts, &part);
  const store::NodeId failed = 2;
  const store::Key a = KeyOn(c, failed);
  const store::Key b = KeyOn(c, 0);
  c.LoadReplicated(kBank, a, Balance(500));
  c.LoadReplicated(kBank, b, Balance(500));
  c.StartWorkers();

  // Commit one transfer before the failure.
  bool done = false;
  TxnRequest req;
  req.reads = {{kBank, a}, {kBank, b}};
  req.writes = {{kBank, a}, {kBank, b}};
  req.execute = [](ExecRound& er) {
    (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) - 50);
    (*er.writes)[1].value = Balance(GetI64((*er.reads)[1].value, 0) + 50);
  };
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    done = true;
    EXPECT_EQ(o, TxnOutcome::kCommitted);
  });
  for (int i = 0; i < 1000 && !done; ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
  }
  c.engine().RunFor(500 * sim::kNsPerUs);

  // Failure detection + promotion.
  ClusterManager mgr(&c.engine(), 4, 1000);
  mgr.MarkFailed(failed);
  const store::NodeId promoted = c.map().BackupsOf(failed)[0];
  RecoverShard(c, failed, promoted);
  EXPECT_EQ(GetI64(c.datastore(promoted).table(kBank).Lookup(a)->value, 0), 450);

  // New transactions route to the promoted primary. (The coordinator map
  // is swapped via the remapped partitioner in a real reconfiguration; we
  // verify the promoted replica serves consistent data.)
  RemappedPartitioner remap(&part, {{failed, promoted}});
  EXPECT_EQ(remap.PrimaryOf(kBank, a), promoted);

  c.StopWorkers();
  c.engine().Run();
}

// Submit one recorded read-modify-write (balance += delta) from `coord`
// and wait for its outcome; committed observations land in `recorder`.
TxnOutcome RunRecordedRmw(XenicCluster& c, chaos::HistoryRecorder& recorder,
                          store::NodeId coord, store::Key key, int64_t delta) {
  TxnRequest req;
  req.reads = {{kBank, key}};
  req.writes = {{kBank, key}};
  req.execute = [delta](ExecRound& er) {
    (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) + delta);
  };
  auto obs = recorder.Instrument(req);
  std::optional<TxnOutcome> out;
  c.node(coord).Submit(std::move(req), [&](TxnOutcome o) { out = o; });
  for (int i = 0; i < 2000 && !out; ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
  }
  EXPECT_TRUE(out.has_value());
  if (out == TxnOutcome::kCommitted) {
    recorder.Commit(obs);
  }
  return out.value_or(TxnOutcome::kAborted);
}

// Crash `failed` mid-protocol and run the full recovery pipeline the chaos
// injector uses; leaves the cluster routing through `remap`.
RecoveryReport CrashAndRecover(XenicCluster& c, store::NodeId failed,
                               store::NodeId promoted, RemappedPartitioner& remap) {
  c.node(failed).Crash();
  const EpochSweepReport sweep = SweepWedgedTxns(c, failed);
  const RecoveryReport report = RecoverShard(c, failed, promoted, sweep.committed_txns);
  RecoverCoordinatorLocks(c, failed);
  c.mutable_map().partitioner = &remap;
  c.mutable_map().MarkFailed(failed);
  return report;
}

TEST(RecoveryTest, CrashBetweenLogAndAckRollsForwardUnderTheChecker) {
  // The coordinator reached the commit point -- LOG records on BOTH
  // surviving backups -- but the primary crashed before any ack came back,
  // so the client never learned the outcome and no observation was
  // committed to the recorder. Recovery must roll the write forward, and a
  // post-recovery transaction must read it: the checker sees that read as a
  // version gap (an unrecorded writer), which is tolerated, and the history
  // must still be serializable.
  HashPartitioner part(4);
  XenicCluster c(Opts(), &part);
  const store::NodeId failed = 1;
  const store::Key key = KeyOn(c, failed);
  c.LoadReplicated(kBank, key, Balance(100));
  c.StartWorkers();

  chaos::HistoryRecorder recorder;
  ASSERT_EQ(RunRecordedRmw(c, recorder, 0, key, 50), TxnOutcome::kCommitted);
  c.engine().RunFor(200 * sim::kNsPerUs);  // let the commit apply everywhere

  const store::TxnId in_doubt = store::MakeTxnId(3, 7777);  // live coordinator
  store::LogRecord staged;
  staged.type = store::LogRecordType::kLog;
  staged.txn = in_doubt;
  staged.writes.push_back(store::LogWrite{kBank, key, 3, Balance(200), false});
  for (store::NodeId b : c.map().BackupsOf(failed)) {
    ASSERT_TRUE(c.datastore(b).log().Append(staged).ok());
  }

  const store::NodeId promoted = c.map().BackupsOf(failed)[0];
  RemappedPartitioner remap(&part, {{failed, promoted}});
  const RecoveryReport report = CrashAndRecover(c, failed, promoted, remap);
  EXPECT_EQ(report.rolled_forward, 1u);
  EXPECT_EQ(report.discarded, 0u);

  ASSERT_EQ(RunRecordedRmw(c, recorder, 0, key, 25), TxnOutcome::kCommitted);
  c.engine().RunFor(200 * sim::kNsPerUs);

  const chaos::CheckResult res = recorder.Check();
  EXPECT_TRUE(res.ok()) << (res.violations.empty() ? "" : res.violations.front());
  EXPECT_EQ(res.txns, 2u);
  EXPECT_EQ(res.version_gaps, 1u);  // the rolled-forward writer was never recorded
  auto r = c.datastore(promoted).table(kBank).Lookup(key);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(GetI64(r->value, 0), 225);  // 200 rolled forward, then +25
  EXPECT_EQ(r->seq, 4u);

  c.StopWorkers();
  c.engine().Run();
}

TEST(RecoveryTest, CrashBeforeFullReplicationDiscardsUnderTheChecker) {
  // The LOG record reached only ONE backup before the primary crashed: the
  // commit point was never reached, so recovery must discard the write. A
  // post-recovery transaction then reads the last committed version -- no
  // version gap, and the discarded value must never surface.
  HashPartitioner part(4);
  XenicCluster c(Opts(), &part);
  const store::NodeId failed = 1;
  const store::Key key = KeyOn(c, failed);
  c.LoadReplicated(kBank, key, Balance(100));
  c.StartWorkers();

  chaos::HistoryRecorder recorder;
  ASSERT_EQ(RunRecordedRmw(c, recorder, 0, key, 50), TxnOutcome::kCommitted);
  c.engine().RunFor(200 * sim::kNsPerUs);

  const store::TxnId in_doubt = store::MakeTxnId(3, 7778);
  store::LogRecord staged;
  staged.type = store::LogRecordType::kLog;
  staged.txn = in_doubt;
  staged.writes.push_back(store::LogWrite{kBank, key, 3, Balance(999), false});
  const auto backups = c.map().BackupsOf(failed);
  ASSERT_TRUE(c.datastore(backups[0]).log().Append(staged).ok());

  const store::NodeId promoted = backups[0];
  RemappedPartitioner remap(&part, {{failed, promoted}});
  const RecoveryReport report = CrashAndRecover(c, failed, promoted, remap);
  EXPECT_EQ(report.rolled_forward, 0u);
  EXPECT_EQ(report.discarded, 1u);

  ASSERT_EQ(RunRecordedRmw(c, recorder, 0, key, 25), TxnOutcome::kCommitted);
  c.engine().RunFor(200 * sim::kNsPerUs);

  const chaos::CheckResult res = recorder.Check();
  EXPECT_TRUE(res.ok()) << (res.violations.empty() ? "" : res.violations.front());
  EXPECT_EQ(res.txns, 2u);
  EXPECT_EQ(res.version_gaps, 0u);  // the discarded write is invisible
  auto r = c.datastore(promoted).table(kBank).Lookup(key);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(GetI64(r->value, 0), 175);  // 100 + 50, discarded 999 never seen, +25
  EXPECT_EQ(r->seq, 3u);

  c.StopWorkers();
  c.engine().Run();
}

}  // namespace
}  // namespace xenic::txn
