// Concurrency-control policy unit and property tests (DESIGN.md §13): flag
// parsing and naming, the OnConflict decision matrices of the 2PL trio,
// CcPriority's total age order, and the deadlock-freedom argument — WAIT_DIE
// only ever creates older→younger waits-for edges, WOUND_WAIT only
// younger→older, so randomized seeded acquire orders can never close a
// cycle, and NO_WAIT never parks at all. The last group drives a real
// contended cluster per policy and checks the engine-level counters agree
// (NO_WAIT's cc_waits stays zero; WOUND_WAIT actually wounds).

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/store/types.h"
#include "src/txn/cc_policy.h"
#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

using store::MakeTxnId;
using store::TxnId;

constexpr CcPolicyKind kAllKinds[] = {CcPolicyKind::kOcc, CcPolicyKind::kNoWait,
                                      CcPolicyKind::kWaitDie, CcPolicyKind::kWoundWait};

TEST(CcPolicyTest, ParseRoundTripsEveryName) {
  for (CcPolicyKind kind : kAllKinds) {
    CcPolicyKind parsed = CcPolicyKind::kOcc;
    ASSERT_TRUE(ParseCcPolicy(CcPolicyName(kind), &parsed)) << CcPolicyName(kind);
    EXPECT_EQ(parsed, kind);
    EXPECT_STREQ(CcPolicy::Get(kind).name(), CcPolicyName(kind));
    EXPECT_EQ(CcPolicy::Get(kind).kind(), kind);
  }
}

TEST(CcPolicyTest, ParseRejectsUnknownNames) {
  CcPolicyKind parsed = CcPolicyKind::kOcc;
  EXPECT_FALSE(ParseCcPolicy("2pl", &parsed));
  EXPECT_FALSE(ParseCcPolicy("", &parsed));
  EXPECT_FALSE(ParseCcPolicy("OCC", &parsed));  // spellings are lowercase
  EXPECT_FALSE(ParseCcPolicy("wait-die", &parsed));
}

TEST(CcPolicyTest, GetReturnsOneSingletonPerKind) {
  for (CcPolicyKind kind : kAllKinds) {
    EXPECT_EQ(&CcPolicy::Get(kind), &CcPolicy::Get(kind));
  }
  EXPECT_NE(&CcPolicy::Get(CcPolicyKind::kOcc), &CcPolicy::Get(CcPolicyKind::kNoWait));
}

TEST(CcPolicyTest, OccValidatesAndNeverLocksReads) {
  const CcPolicy& occ = CcPolicy::Get(CcPolicyKind::kOcc);
  EXPECT_TRUE(occ.validates());
  EXPECT_FALSE(occ.lock_reads());
  // OCC conflicts always deny: the requester aborts and retries.
  EXPECT_EQ(occ.OnConflict(MakeTxnId(0, 1), MakeTxnId(1, 9)), CcAction::kAbort);
  EXPECT_EQ(occ.OnConflict(MakeTxnId(1, 9), MakeTxnId(0, 1)), CcAction::kAbort);
}

TEST(CcPolicyTest, TwoPlTrioLocksReadsAndSkipsValidation) {
  for (CcPolicyKind kind :
       {CcPolicyKind::kNoWait, CcPolicyKind::kWaitDie, CcPolicyKind::kWoundWait}) {
    const CcPolicy& p = CcPolicy::Get(kind);
    EXPECT_TRUE(p.lock_reads()) << p.name();
    EXPECT_FALSE(p.validates()) << p.name();
  }
}

TEST(CcPolicyTest, PriorityIsSequenceMajor) {
  // Sequence dominates: an earlier sequence is older regardless of node id.
  EXPECT_LT(CcPriority(MakeTxnId(5, 10)), CcPriority(MakeTxnId(0, 11)));
  EXPECT_LT(CcPriority(MakeTxnId(3, 1)), CcPriority(MakeTxnId(2, 2)));
}

TEST(CcPolicyTest, PriorityBreaksSequenceTiesByNode) {
  EXPECT_LT(CcPriority(MakeTxnId(0, 7)), CcPriority(MakeTxnId(1, 7)));
  EXPECT_LT(CcPriority(MakeTxnId(1, 7)), CcPriority(MakeTxnId(2, 7)));
}

TEST(CcPolicyTest, PriorityIsATotalOrderOverDistinctIds) {
  Rng rng(101);
  std::set<TxnId> ids;
  while (ids.size() < 200) {
    ids.insert(MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(1000)));
  }
  std::set<uint64_t> priorities;
  for (TxnId id : ids) {
    priorities.insert(CcPriority(id));
  }
  EXPECT_EQ(priorities.size(), ids.size());  // injective => total order
}

TEST(CcPolicyTest, NoWaitAlwaysAborts) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kNoWait);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const TxnId a = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(500));
    const TxnId b = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(500));
    EXPECT_EQ(p.OnConflict(a, b), CcAction::kAbort);
  }
}

TEST(CcPolicyTest, WaitDieOlderRequesterWaits) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWaitDie);
  const TxnId older = MakeTxnId(1, 5);
  const TxnId younger = MakeTxnId(0, 6);
  ASSERT_LT(CcPriority(older), CcPriority(younger));
  EXPECT_EQ(p.OnConflict(older, younger), CcAction::kWait);
}

TEST(CcPolicyTest, WaitDieYoungerRequesterDies) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWaitDie);
  const TxnId older = MakeTxnId(1, 5);
  const TxnId younger = MakeTxnId(0, 6);
  EXPECT_EQ(p.OnConflict(younger, older), CcAction::kAbort);
}

TEST(CcPolicyTest, WoundWaitOlderRequesterWounds) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWoundWait);
  const TxnId older = MakeTxnId(2, 3);
  const TxnId younger = MakeTxnId(2, 4);
  EXPECT_EQ(p.OnConflict(older, younger), CcAction::kWound);
}

TEST(CcPolicyTest, WoundWaitYoungerRequesterWaits) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWoundWait);
  const TxnId older = MakeTxnId(2, 3);
  const TxnId younger = MakeTxnId(2, 4);
  EXPECT_EQ(p.OnConflict(younger, older), CcAction::kWait);
}

// The deadlock-freedom invariant, stated on the decision matrix itself:
// under WAIT_DIE every wait edge (requester waits for holder) points from an
// older transaction to a younger one; under WOUND_WAIT from a younger to an
// older. Any cycle would need at least one edge of the opposite direction.
TEST(CcPolicyTest, WaitDieWaitEdgesPointOldToYoungOnly) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWaitDie);
  Rng rng(11);
  int waits = 0;
  for (int i = 0; i < 500; ++i) {
    const TxnId a = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(300));
    const TxnId b = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(300));
    if (a == b) {
      continue;
    }
    if (p.OnConflict(a, b) == CcAction::kWait) {
      EXPECT_LT(CcPriority(a), CcPriority(b));
      waits++;
    } else {
      EXPECT_GT(CcPriority(a), CcPriority(b));
    }
  }
  EXPECT_GT(waits, 0);
}

TEST(CcPolicyTest, WoundWaitWaitEdgesPointYoungToOldOnly) {
  const CcPolicy& p = CcPolicy::Get(CcPolicyKind::kWoundWait);
  Rng rng(12);
  int waits = 0;
  int wounds = 0;
  for (int i = 0; i < 500; ++i) {
    const TxnId a = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(300));
    const TxnId b = MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(300));
    if (a == b) {
      continue;
    }
    const CcAction act = p.OnConflict(a, b);
    if (act == CcAction::kWait) {
      EXPECT_GT(CcPriority(a), CcPriority(b));
      waits++;
    } else {
      ASSERT_EQ(act, CcAction::kWound);  // never a plain abort of the requester
      EXPECT_LT(CcPriority(a), CcPriority(b));
      wounds++;
    }
  }
  EXPECT_GT(waits, 0);
  EXPECT_GT(wounds, 0);
}

// Randomized acquire orders over a simulated lock table: replay every
// conflict through the policy's OnConflict and record the waits-for edges it
// creates. Whatever the interleaving, the graph must stay acyclic (WAIT_DIE,
// WOUND_WAIT) and NO_WAIT must produce no edges at all.
bool HasCycle(const std::map<TxnId, std::set<TxnId>>& waits_for) {
  std::set<TxnId> done;
  for (const auto& [start, _] : waits_for) {
    if (done.count(start) > 0) {
      continue;
    }
    std::set<TxnId> path;
    std::vector<TxnId> stack = {start};
    std::function<bool(TxnId)> dfs = [&](TxnId t) {
      if (path.count(t) > 0) {
        return true;
      }
      if (done.count(t) > 0) {
        return false;
      }
      path.insert(t);
      auto it = waits_for.find(t);
      if (it != waits_for.end()) {
        for (TxnId next : it->second) {
          if (dfs(next)) {
            return true;
          }
        }
      }
      path.erase(t);
      done.insert(t);
      return false;
    };
    if (dfs(start)) {
      return true;
    }
  }
  return false;
}

void RandomAcquireOrdersStayAcyclic(CcPolicyKind kind, uint64_t seed) {
  const CcPolicy& p = CcPolicy::Get(kind);
  Rng rng(seed);
  constexpr int kTxns = 24;
  constexpr int kKeys = 8;
  std::vector<TxnId> txns;
  for (int i = 0; i < kTxns; ++i) {
    txns.push_back(MakeTxnId(rng.NextBounded(6), 1 + rng.NextBounded(400)));
  }
  std::map<int, TxnId> holder;                // key -> current lock holder
  std::map<TxnId, std::set<TxnId>> waits_for; // requester -> holders waited on
  int parked = 0;
  for (int step = 0; step < 400; ++step) {
    const TxnId t = txns[rng.NextBounded(kTxns)];
    const int key = static_cast<int>(rng.NextBounded(kKeys));
    auto it = holder.find(key);
    if (it == holder.end()) {
      holder[key] = t;       // free: acquire
      waits_for.erase(t);    // no longer blocked on anything
      continue;
    }
    if (it->second == t) {
      holder.erase(it);      // re-touch by the holder: model a release
      continue;
    }
    switch (p.OnConflict(t, it->second)) {
      case CcAction::kAbort:
        waits_for.erase(t);  // requester dies, edges vanish
        break;
      case CcAction::kWound:
        // The holder aborts: its lock frees and its own edges vanish; the
        // requester takes the lock.
        waits_for.erase(it->second);
        holder[key] = t;
        break;
      case CcAction::kWait:
        waits_for[t].insert(it->second);
        parked++;
        break;
    }
    ASSERT_FALSE(HasCycle(waits_for)) << p.name() << " seed " << seed;
  }
  if (kind == CcPolicyKind::kNoWait) {
    EXPECT_EQ(parked, 0);
  } else {
    EXPECT_GT(parked, 0) << p.name() << " seed " << seed;
  }
}

TEST(CcPolicyTest, WaitDieRandomAcquireOrdersNeverCycle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAcquireOrdersStayAcyclic(CcPolicyKind::kWaitDie, seed);
  }
}

TEST(CcPolicyTest, WoundWaitRandomAcquireOrdersNeverCycle) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAcquireOrdersStayAcyclic(CcPolicyKind::kWoundWait, seed);
  }
}

TEST(CcPolicyTest, NoWaitRandomAcquireOrdersNeverPark) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomAcquireOrdersStayAcyclic(CcPolicyKind::kNoWait, seed);
  }
}

// Engine-level counter agreement: drive a deliberately contended RMW mix
// (few keys, many contexts) through a real cluster under each policy and
// check the TxnStats the policies are supposed to produce.
TxnStats RunContended(CcPolicyKind cc, uint64_t seed) {
  XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.features.cc = cc;
  o.tables = {store::TableSpec{0, "t", 8, 16, 8, 8}};
  HashPartitioner part(3);
  XenicCluster cluster(o, &part);
  constexpr int kKeys = 6;  // tiny keyspace: conflicts guaranteed
  for (store::Key k = 0; k < kKeys; ++k) {
    store::Value v(16, 0);
    store::PutI64(v, 0, 100);
    cluster.LoadReplicated(0, k, v);
  }
  cluster.StartWorkers();
  Rng rng(seed);
  int active = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      active--;
      return;
    }
    TxnRequest req;
    store::Key a = rng.NextBounded(kKeys);
    store::Key b = (a + 1 + rng.NextBounded(kKeys - 1)) % kKeys;
    req.reads = {{0, a}, {0, b}};
    req.writes = {{0, a}, {0, b}};
    req.execute = [](ExecRound& er) {
      for (size_t i = 0; i < er.writes->size(); ++i) {
        store::Value v = (*er.reads)[i].value;
        store::PutI64(v, 0, store::GetI64(v, 0) + 1);
        (*er.writes)[i].value = v;
      }
    };
    cluster.node(n).Submit(std::move(req), [&, n, left](TxnOutcome) { run_one(n, left - 1); });
  };
  for (store::NodeId n = 0; n < 3; ++n) {
    for (int c = 0; c < 4; ++c) {
      active++;
      run_one(n, 30);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(100 * sim::kNsPerUs);
  }
  cluster.StopWorkers();
  cluster.engine().Run();
  return cluster.TotalStats();
}

TEST(CcPolicyTest, NoWaitEngineNeverParksOrWounds) {
  const TxnStats s = RunContended(CcPolicyKind::kNoWait, 31);
  EXPECT_GT(s.committed, 0u);
  EXPECT_EQ(s.cc_waits, 0u);
  EXPECT_EQ(s.cc_wounds, 0u);
  EXPECT_EQ(s.abort_wounded, 0u);
}

TEST(CcPolicyTest, WaitDieEngineParksButNeverWounds) {
  const TxnStats s = RunContended(CcPolicyKind::kWaitDie, 32);
  EXPECT_GT(s.committed, 0u);
  EXPECT_GT(s.cc_waits, 0u);
  EXPECT_EQ(s.cc_wounds, 0u);
  EXPECT_EQ(s.abort_wounded, 0u);
}

TEST(CcPolicyTest, WoundWaitEngineWounds) {
  const TxnStats s = RunContended(CcPolicyKind::kWoundWait, 33);
  EXPECT_GT(s.committed, 0u);
  EXPECT_GT(s.cc_waits + s.cc_wounds, 0u);
}

TEST(CcPolicyTest, OccEngineUsesNoCcMachinery) {
  const TxnStats s = RunContended(CcPolicyKind::kOcc, 34);
  EXPECT_GT(s.committed, 0u);
  EXPECT_EQ(s.cc_waits, 0u);
  EXPECT_EQ(s.cc_wounds, 0u);
  EXPECT_EQ(s.abort_wounded, 0u);
}

}  // namespace
}  // namespace xenic::txn
