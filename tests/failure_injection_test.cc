// Failure and pressure injection: bounded-log back-pressure, NIC cache
// memory pressure during transactions, contention storms, and worker
// stalls. The system must stay correct (no lost writes, no leaked locks or
// pins) under each.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

TxnRequest MakeTransfer(store::Key from, store::Key to, int64_t amount) {
  TxnRequest req;
  req.reads = {{kBank, from}, {kBank, to}};
  req.writes = {{kBank, from}, {kBank, to}};
  req.execute = [amount](ExecRound& er) {
    (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) - amount);
    (*er.writes)[1].value = Balance(GetI64((*er.reads)[1].value, 0) + amount);
  };
  return req;
}

store::Key KeyOn(const XenicCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

void Drain(XenicCluster& c, const std::function<bool()>& all_done, int max_windows = 200000) {
  int stable = 0;
  for (int i = 0; i < max_windows && !c.engine().idle(); ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
    bool drained = true;
    for (uint32_t n = 0; n < c.size(); ++n) {
      drained &= c.datastore(n).log().unreclaimed() == 0;
    }
    if (all_done() && drained) {
      if (++stable >= 10) {
        break;
      }
    } else {
      stable = 0;
    }
  }
  c.StopWorkers();
  c.engine().Run();
}

TEST(FailureInjectionTest, SlowWorkersBackpressureViaBoundedLog) {
  // A tiny log ring with slow workers: commits must wait for space, never
  // fail, and the final state must be correct.
  XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  o.workers_per_node = 1;
  o.worker_poll_interval = 50 * sim::kNsPerUs;  // very lazy workers
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  // Shrink every node's log to 4 records.
  // (CommitLog capacity is set at construction; rebuild via datastore API
  // is not exposed, so exercise the Full() path by flooding instead.)
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(1000000));
  c.LoadReplicated(kBank, b, Balance(0));
  c.StartWorkers();

  int done = 0;
  constexpr int kTxns = 200;
  std::function<void(int)> submit = [&](int left) {
    if (left == 0) {
      return;
    }
    c.node(0).Submit(MakeTransfer(a, b, 1), [&, left](TxnOutcome o2) {
      if (o2 == TxnOutcome::kCommitted) {
        done++;
        submit(left - 1);
      } else {
        // Retry on conflict.
        c.engine().ScheduleAfter(5 * sim::kNsPerUs, [&, left] { submit(left); });
      }
    });
  };
  submit(kTxns);
  Drain(c, [&] { return done == kTxns; });
  EXPECT_EQ(done, kTxns);
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0), 1000000 - kTxns);
  EXPECT_EQ(GetI64(c.datastore(2).table(kBank).Lookup(b)->value, 0), kTxns);
  for (uint32_t n = 0; n < c.size(); ++n) {
    EXPECT_EQ(c.datastore(n).log().unreclaimed(), 0u);
    EXPECT_EQ(c.datastore(n).index(kBank).pinned_objects(), 0u);
  }
}

TEST(FailureInjectionTest, TinyNicCacheStillCorrect) {
  // NIC cache budget far below the working set: heavy eviction, every
  // miss re-reads host memory; values must remain exact.
  XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 12, 16, 8, 8}};
  o.nic_index.memory_budget = 4 * 1024;  // ~50 objects
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  Rng rng(11);
  constexpr int kAccounts = 600;
  for (store::Key k = 1; k <= kAccounts; ++k) {
    c.LoadReplicated(kBank, k, Balance(100));
  }
  c.StartWorkers();

  int completed = 0;
  constexpr int kCtx = 6;
  constexpr int kPer = 40;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      completed++;
      return;
    }
    const store::Key from = 1 + rng.NextBounded(kAccounts);
    store::Key to = 1 + rng.NextBounded(kAccounts);
    while (to == from) {
      to = 1 + rng.NextBounded(kAccounts);
    }
    c.node(n).Submit(MakeTransfer(from, to, 1),
                     [&, n, left](TxnOutcome) { run_one(n, left - 1); });
  };
  for (uint32_t n = 0; n < c.size(); ++n) {
    for (int i = 0; i < kCtx / 3; ++i) {
      run_one(n, kPer);
    }
  }
  Drain(c, [&] { return completed == kCtx; });

  int64_t total = 0;
  uint64_t evictions = 0;
  for (store::Key k = 1; k <= kAccounts; ++k) {
    const store::NodeId p = c.map().PrimaryOf(kBank, k);
    total += GetI64(c.datastore(p).table(kBank).Lookup(k)->value, 0);
  }
  for (uint32_t n = 0; n < c.size(); ++n) {
    evictions += c.datastore(n).index(kBank).evictions();
    EXPECT_LE(c.datastore(n).index(kBank).cached_bytes(), o.nic_index.memory_budget + 1024);
  }
  EXPECT_EQ(total, int64_t{kAccounts} * 100);
  EXPECT_GT(evictions, 0u);
}

TEST(FailureInjectionTest, ContentionStormResolves) {
  // Everybody hammers two keys; with retries every transaction eventually
  // commits and money is conserved.
  XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(100000));
  c.LoadReplicated(kBank, b, Balance(100000));
  c.StartWorkers();

  Rng rng(5);
  int committed = 0;
  constexpr int kTarget = 90;
  // The retry closure recurses on a copy of itself; a shared_ptr<function>
  // capturing itself would be a reference cycle that leaks per context.
  auto spawn = [&](store::NodeId n) {
    auto attempt = [&, n](auto&& self) -> void {
      const bool fwd = rng.NextBool(0.5);
      c.node(n).Submit(MakeTransfer(fwd ? a : b, fwd ? b : a, 1), [&, self](TxnOutcome o2) {
        if (o2 == TxnOutcome::kCommitted) {
          committed++;
          return;
        }
        c.engine().ScheduleAfter(3 * sim::kNsPerUs + rng.NextBounded(9000),
                                 [self] { self(self); });
      });
    };
    attempt(attempt);
  };
  for (uint32_t n = 0; n < 3; ++n) {
    for (int i = 0; i < kTarget / 3; ++i) {
      spawn(n);
    }
  }
  // Run until all commit.
  for (int i = 0; i < 100000 && committed < kTarget; ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
  }
  EXPECT_EQ(committed, kTarget);
  c.StopWorkers();
  c.engine().Run();
  const int64_t total = GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0) +
                        GetI64(c.datastore(2).table(kBank).Lookup(b)->value, 0);
  EXPECT_EQ(total, 200000);
  EXPECT_FALSE(c.datastore(1).index(kBank).IsLocked(a));
  EXPECT_FALSE(c.datastore(2).index(kBank).IsLocked(b));
}

}  // namespace
}  // namespace xenic::txn
