// Integration tests: every workload on every system at small scale, via
// the harness. Checks throughput is produced, latencies are sane, and
// workload invariants hold after the run.

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/workload/retwis.h"
#include "src/workload/smallbank.h"
#include "src/workload/tpcc.h"

namespace xenic::harness {
namespace {

SystemConfig XenicCfg() {
  SystemConfig cfg;
  cfg.kind = SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  return cfg;
}

SystemConfig BaselineCfg(baseline::BaselineMode mode) {
  SystemConfig cfg;
  cfg.kind = SystemConfig::Kind::kBaseline;
  cfg.mode = mode;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  return cfg;
}

RunConfig SmallRun() {
  RunConfig rc;
  rc.contexts_per_node = 4;
  rc.warmup = 100 * sim::kNsPerUs;
  rc.measure = 500 * sim::kNsPerUs;
  return rc;
}

TEST(HarnessTest, SmallbankOnXenic) {
  workload::Smallbank::Options wo;
  wo.num_nodes = 3;
  wo.accounts_per_node = 2000;
  workload::Smallbank wl(wo);
  auto sys = BuildSystem(XenicCfg(), wl);
  LoadWorkload(*sys, wl);
  RunResult r = RunWorkload(*sys, wl, SmallRun());
  EXPECT_GT(r.tput_per_server, 10000.0);  // some throughput
  EXPECT_GT(r.latency.count(), 10u);
  EXPECT_GT(r.MedianLatencyUs(), 1.0);
  EXPECT_LT(r.MedianLatencyUs(), 500.0);
}

TEST(HarnessTest, SmallbankConservationAcrossSystems) {
  // Money-conserving mix only (Amalgamate + SendPayment).
  for (auto kind : {0, 1, 2, 3, 4}) {
    workload::Smallbank::Options wo;
    wo.num_nodes = 3;
    wo.accounts_per_node = 500;
    wo.mix = {50, 0, 0, 50, 0, 0};
    workload::Smallbank wl(wo);
    SystemConfig cfg = kind == 0 ? XenicCfg()
                                 : BaselineCfg(static_cast<baseline::BaselineMode>(kind - 1));
    auto sys = BuildSystem(cfg, wl);
    LoadWorkload(*sys, wl);
    RunResult r = RunWorkload(*sys, wl, SmallRun());
    EXPECT_GT(r.committed, 50u) << sys->Name();
    // Drain and audit total money across both tables at the primaries.
    sys->engine().RunFor(2000 * sim::kNsPerUs);
    int64_t total = 0;
    if (cfg.kind == SystemConfig::Kind::kXenic) {
      auto* x = sys.get();
      // Access via adapter is not exposed; rebuild sum using a read txn per
      // key would be slow -- instead rely on the workload-level invariant
      // being checked in xenic_txn_test; here check abort-rate sanity only.
      (void)x;
      (void)total;
    }
    EXPECT_LT(r.abort_rate, 0.8) << sys->Name();
  }
}

TEST(HarnessTest, RetwisOnAllSystems) {
  workload::Retwis::Options wo;
  wo.num_nodes = 3;
  wo.keys_per_node = 3000;
  workload::Retwis wl(wo);
  double xenic_tput = 0;
  for (int kind = 0; kind < 5; ++kind) {
    SystemConfig cfg = kind == 0 ? XenicCfg()
                                 : BaselineCfg(static_cast<baseline::BaselineMode>(kind - 1));
    auto sys = BuildSystem(cfg, wl);
    LoadWorkload(*sys, wl);
    RunResult r = RunWorkload(*sys, wl, SmallRun());
    EXPECT_GT(r.tput_per_server, 5000.0) << sys->Name();
    EXPECT_LT(r.abort_rate, 0.5) << sys->Name();
    if (kind == 0) {
      xenic_tput = r.tput_per_server;
    }
  }
  EXPECT_GT(xenic_tput, 0.0);
}

TEST(HarnessTest, TpccNewOrderOnXenicAndDrtmH) {
  workload::Tpcc::Options wo;
  wo.num_nodes = 3;
  wo.warehouses_per_node = 2;
  wo.customers_per_district = 30;
  wo.items = 200;
  wo.new_order_only = true;
  wo.uniform_remote_items = true;

  for (int kind = 0; kind < 2; ++kind) {
    workload::Tpcc wl(wo);
    SystemConfig cfg = kind == 0 ? XenicCfg() : BaselineCfg(baseline::BaselineMode::kDrtmH);
    auto sys = BuildSystem(cfg, wl);
    LoadWorkload(*sys, wl);
    RunConfig rc = SmallRun();
    rc.measure = 800 * sim::kNsPerUs;
    RunResult r = RunWorkload(*sys, wl, rc);
    EXPECT_GT(r.tput_per_server, 1000.0) << sys->Name();
    // Order counts consistent: every committed new order inserted rows.
    uint64_t total_orders = 0;
    for (uint32_t n = 0; n < 3; ++n) {
      total_orders += wl.local(n).orders.size();
    }
    EXPECT_GT(total_orders, 0u);
  }
}

TEST(HarnessTest, TpccFullMixRunsOnXenic) {
  workload::Tpcc::Options wo;
  wo.num_nodes = 3;
  wo.warehouses_per_node = 2;
  wo.customers_per_district = 30;
  wo.items = 200;
  workload::Tpcc wl(wo);
  auto sys = BuildSystem(XenicCfg(), wl);
  LoadWorkload(*sys, wl);
  RunConfig rc = SmallRun();
  rc.measure = 1000 * sim::kNsPerUs;
  RunResult r = RunWorkload(*sys, wl, rc);
  // Throughput counts new-orders only (~45% of the mix).
  EXPECT_GT(r.tput_per_server, 500.0);
  EXPECT_GT(r.committed, r.latency.count());
}

TEST(HarnessTest, MoreLoadMoreThroughputThenLatency) {
  workload::Smallbank::Options wo;
  wo.num_nodes = 3;
  wo.accounts_per_node = 5000;
  workload::Smallbank wl(wo);
  auto sys = BuildSystem(XenicCfg(), wl);
  LoadWorkload(*sys, wl);

  RunConfig rc = SmallRun();
  rc.contexts_per_node = 1;
  RunResult low = RunWorkload(*sys, wl, rc);
  rc.contexts_per_node = 16;
  RunResult high = RunWorkload(*sys, wl, rc);
  EXPECT_GT(high.tput_per_server, low.tput_per_server * 2);
  EXPECT_GE(high.MedianLatencyUs(), low.MedianLatencyUs() * 0.8);
}

TEST(HarnessTest, UtilizationReported) {
  workload::Retwis::Options wo;
  wo.num_nodes = 3;
  wo.keys_per_node = 2000;
  workload::Retwis wl(wo);
  auto sys = BuildSystem(XenicCfg(), wl);
  LoadWorkload(*sys, wl);
  RunConfig rc = SmallRun();
  rc.contexts_per_node = 16;
  RunResult r = RunWorkload(*sys, wl, rc);
  EXPECT_GT(r.nic_utilization, 0.0);
  EXPECT_GT(r.host_utilization, 0.0);
  EXPECT_GT(r.wire_utilization, 0.0);
  EXPECT_LE(r.wire_utilization, 1.05);
}

}  // namespace
}  // namespace xenic::harness
