#include "src/btree/btree.h"

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"

namespace xenic::btree {
namespace {

Value V(uint8_t fill, size_t n = 8) { return Value(n, fill); }

TEST(BTreeTest, EmptyTree) {
  BTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Get(1).has_value());
  EXPECT_EQ(t.Erase(1).code(), xenic::StatusCode::kNotFound);
  EXPECT_FALSE(t.SeekFirst(0).has_value());
  EXPECT_FALSE(t.SeekLast(~0ull).has_value());
}

TEST(BTreeTest, PutGet) {
  BTree t;
  t.Put(5, V(1));
  EXPECT_EQ(t.Get(5).value(), V(1));
  EXPECT_EQ(t.size(), 1u);
  t.Put(5, V(2));  // overwrite
  EXPECT_EQ(t.Get(5).value(), V(2));
  EXPECT_EQ(t.size(), 1u);
}

TEST(BTreeTest, InsertRejectsDuplicates) {
  BTree t;
  EXPECT_TRUE(t.Insert(1, V(1)).ok());
  EXPECT_EQ(t.Insert(1, V(2)).code(), xenic::StatusCode::kAlreadyExists);
  EXPECT_EQ(t.Get(1).value(), V(1));
}

TEST(BTreeTest, SequentialInsertSplits) {
  BTree t;
  for (uint64_t i = 0; i < 10000; ++i) {
    t.Put(i, V(static_cast<uint8_t>(i)));
  }
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_GT(t.height(), 1);
  t.CheckInvariants();
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_EQ(t.Get(i).value(), V(static_cast<uint8_t>(i)));
  }
}

TEST(BTreeTest, ReverseInsert) {
  BTree t;
  for (uint64_t i = 5000; i > 0; --i) {
    t.Put(i, V(1));
  }
  t.CheckInvariants();
  EXPECT_EQ(t.size(), 5000u);
  auto first = t.SeekFirst(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 1u);
}

TEST(BTreeTest, ScanRange) {
  BTree t;
  for (uint64_t i = 0; i < 1000; i += 2) {
    t.Put(i, V(static_cast<uint8_t>(i)));
  }
  std::vector<Key> seen;
  t.Scan(100, 120, [&](Key k, const Value&) {
    seen.push_back(k);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<Key>{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}));
}

TEST(BTreeTest, ScanEarlyStop) {
  BTree t;
  for (uint64_t i = 0; i < 100; ++i) {
    t.Put(i, V(1));
  }
  int count = 0;
  const size_t visited = t.Scan(0, 99, [&](Key, const Value&) { return ++count < 5; });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(visited, 5u);
}

TEST(BTreeTest, SeekFirstLast) {
  BTree t;
  t.Put(10, V(1));
  t.Put(20, V(2));
  t.Put(30, V(3));
  EXPECT_EQ(t.SeekFirst(15)->first, 20u);
  EXPECT_EQ(t.SeekFirst(20)->first, 20u);
  EXPECT_FALSE(t.SeekFirst(31).has_value());
  EXPECT_EQ(t.SeekLast(25)->first, 20u);
  EXPECT_EQ(t.SeekLast(20)->first, 20u);
  EXPECT_FALSE(t.SeekLast(5).has_value());
  EXPECT_EQ(t.SeekLast(~0ull)->first, 30u);
}

TEST(BTreeTest, EraseAndCollapse) {
  BTree t;
  for (uint64_t i = 0; i < 5000; ++i) {
    t.Put(i, V(1));
  }
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(t.Erase(i).ok()) << i;
  }
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.height(), 1);
  t.CheckInvariants();
  // Tree remains usable.
  t.Put(7, V(7));
  EXPECT_EQ(t.Get(7).value(), V(7));
}

TEST(BTreeTest, FifoChurnLikeNewOrder) {
  // TPC-C NEW-ORDER pattern: insert at the high end, delete from the low
  // end (DELIVERY pops the oldest).
  BTree t;
  uint64_t head = 0;
  uint64_t tail = 0;
  for (int round = 0; round < 20000; ++round) {
    t.Put(tail++, V(1));
    if (tail - head > 100) {
      auto oldest = t.SeekFirst(head);
      ASSERT_TRUE(oldest.has_value());
      ASSERT_TRUE(t.Erase(oldest->first).ok());
      head = oldest->first + 1;
    }
  }
  t.CheckInvariants();
  EXPECT_EQ(t.size(), 100u);
}

TEST(BTreeTest, RandomChurnAgainstStdMap) {
  BTree t;
  std::map<Key, Value> oracle;
  xenic::Rng rng(42);
  for (int step = 0; step < 30000; ++step) {
    const double roll = rng.NextDouble();
    const Key k = rng.NextBounded(2000);
    if (roll < 0.5) {
      Value v(8, static_cast<uint8_t>(rng.Next()));
      t.Put(k, v);
      oracle[k] = v;
    } else if (roll < 0.8) {
      const bool in_oracle = oracle.erase(k) > 0;
      EXPECT_EQ(t.Erase(k).ok(), in_oracle);
    } else {
      auto r = t.Get(k);
      auto it = oracle.find(k);
      ASSERT_EQ(r.has_value(), it != oracle.end());
      if (r) {
        ASSERT_EQ(*r, it->second);
      }
    }
    if (step % 5000 == 4999) {
      t.CheckInvariants();
      ASSERT_EQ(t.size(), oracle.size());
      // Full scan must visit exactly the oracle contents in order.
      std::vector<Key> scanned;
      t.Scan(0, ~0ull, [&](Key key, const Value&) {
        scanned.push_back(key);
        return true;
      });
      ASSERT_EQ(scanned.size(), oracle.size());
      auto it = oracle.begin();
      for (Key key : scanned) {
        ASSERT_EQ(key, it->first);
        ++it;
      }
    }
  }
}

TEST(BTreeTest, ScanAcrossLeafBoundaries) {
  BTree t;
  for (uint64_t i = 0; i < 1000; ++i) {
    t.Put(i * 3, V(1));
  }
  size_t n = t.Scan(0, 3000, [](Key, const Value&) { return true; });
  EXPECT_EQ(n, 1000u);
}

TEST(BTreeTest, CompositeKeysForTpcc) {
  // (warehouse, district, order) composite keys preserve order grouping.
  auto make_key = [](uint64_t w, uint64_t d, uint64_t o) {
    return (w << 40) | (d << 32) | o;
  };
  BTree t;
  for (uint64_t w = 1; w <= 3; ++w) {
    for (uint64_t d = 1; d <= 2; ++d) {
      for (uint64_t o = 1; o <= 50; ++o) {
        t.Put(make_key(w, d, o), V(static_cast<uint8_t>(o)));
      }
    }
  }
  // Oldest order in (2, 1): scan the district's range.
  auto oldest = t.SeekFirst(make_key(2, 1, 0));
  ASSERT_TRUE(oldest.has_value());
  EXPECT_EQ(oldest->first, make_key(2, 1, 1));
  // Newest order in (2, 1).
  auto newest = t.SeekLast(make_key(2, 1, ~0u));
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->first, make_key(2, 1, 50));
  // Range scan stays within the district.
  size_t count = 0;
  t.Scan(make_key(2, 1, 0), make_key(2, 1, ~0u), [&](Key, const Value&) {
    count++;
    return true;
  });
  EXPECT_EQ(count, 50u);
}

}  // namespace
}  // namespace xenic::btree
