// CC-conformance matrix (DESIGN.md §13): every concurrency-control policy ×
// {Smallbank, Retwis RMW mix, skewed YCSB} × 8 seeds must produce a
// serializable history. The HistoryRecorder wraps each generated request to
// capture versions read and keys written; CheckSerializability rebuilds the
// per-key version chains and verifies the precedence graph is acyclic with
// no lost updates. The crash/recovery half of the matrix (the same policies
// under armed fault schedules) runs as the chaos_cc_* ctest entries in
// tools/CMakeLists.txt; together with this file they carry the `cc` label:
// `ctest -L cc` runs the whole matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/chaos/history.h"
#include "src/common/rng.h"
#include "src/txn/xenic_cluster.h"
#include "src/workload/retwis.h"
#include "src/workload/smallbank.h"
#include "src/workload/ycsb.h"

namespace xenic {
namespace {

enum class Wl { kSmallbank, kRetwis, kYcsb };

const char* WlName(Wl w) {
  switch (w) {
    case Wl::kSmallbank:
      return "Smallbank";
    case Wl::kRetwis:
      return "Retwis";
    case Wl::kYcsb:
      return "Ycsb";
  }
  return "?";
}

// Small, contended instances: few keys per node so every policy's conflict
// machinery actually fires within a short closed-loop run.
std::unique_ptr<workload::Workload> BuildWorkload(Wl which) {
  switch (which) {
    case Wl::kSmallbank: {
      workload::Smallbank::Options o;
      o.num_nodes = 3;
      o.accounts_per_node = 40;
      return std::make_unique<workload::Smallbank>(o);
    }
    case Wl::kRetwis: {
      workload::Retwis::Options o;
      o.num_nodes = 3;
      o.keys_per_node = 60;
      // RMW-only mix (Follow / GetTimeline): AddUser and PostTweet write
      // keys they never read, which the lost-update checker cannot order.
      o.mix = {0, 50, 0, 50};
      return std::make_unique<workload::Retwis>(o);
    }
    case Wl::kYcsb: {
      workload::Ycsb::Options o;
      o.num_nodes = 3;
      o.keys_per_node = 12;  // 36 keys at theta .99: heavy hot-key overlap
      o.zipf_theta = 0.99;
      o.read_ratio = 0.5;
      o.ops_per_txn = 3;
      o.value_size = 16;
      return std::make_unique<workload::Ycsb>(o);
    }
  }
  return nullptr;
}

void RunConformance(txn::CcPolicyKind cc, Wl which, uint64_t seed) {
  auto wl = BuildWorkload(which);
  txn::XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.features.cc = cc;
  for (const auto& def : wl->Tables()) {
    o.tables.push_back(
        store::TableSpec{def.id, def.name, def.capacity_log2, def.value_size,
                         def.max_displacement, 8});
  }
  txn::XenicCluster cluster(o, &wl->partitioner());
  wl->Load([&](store::TableId t, store::Key k, const store::Value& v) {
    cluster.LoadReplicated(t, k, v);
  });
  cluster.StartWorkers();

  chaos::HistoryRecorder recorder;
  Rng rng(seed * 7919 + static_cast<uint64_t>(which));
  int active = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      active--;
      return;
    }
    txn::TxnRequest req = wl->NextTxn(n, rng);
    auto obs = recorder.Instrument(req);
    cluster.node(n).Submit(std::move(req), [&, n, left, obs](txn::TxnOutcome out) {
      if (out == txn::TxnOutcome::kCommitted) {
        recorder.Commit(obs);
      }
      run_one(n, left - 1);
    });
  };
  for (store::NodeId n = 0; n < 3; ++n) {
    for (int c = 0; c < 3; ++c) {
      active++;
      run_one(n, 30);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(100 * sim::kNsPerUs);
  }
  cluster.StopWorkers();
  cluster.engine().Run();

  // 270 submissions per seed; even the abort-heavy hot-key instances land
  // well above this floor, which only guards against a vacuous run.
  ASSERT_GT(recorder.history().size(), 30u)
      << txn::CcPolicyName(cc) << "/" << WlName(which) << " seed " << seed;
  const chaos::CheckResult result = recorder.Check();
  EXPECT_TRUE(result.ok()) << [&] {
    std::string all = std::string(txn::CcPolicyName(cc)) + "/" + WlName(which) +
                      " seed " + std::to_string(seed) + ":\n";
    for (const auto& v : result.violations) {
      all += v + "\n";
    }
    return all;
  }();
  // Fault-free runs recover nothing behind the recorder's back: every read
  // version must trace to a recorded writer or the initial load.
  EXPECT_EQ(result.version_gaps, 0u);

  // No lock may outlive the run under any policy -- 2PL read locks and
  // wound/wait park queues included.
  for (store::NodeId n = 0; n < 3; ++n) {
    const auto& ds = cluster.datastore(n);
    for (store::TableId t = 0; t < ds.num_tables(); ++t) {
      EXPECT_EQ(ds.index(t).LockedKeys().size(), 0u)
          << txn::CcPolicyName(cc) << "/" << WlName(which) << " seed " << seed
          << " node " << n;
    }
  }
}

struct Param {
  txn::CcPolicyKind cc;
  Wl wl;
};

class CcConformanceTest : public ::testing::TestWithParam<Param> {};

TEST_P(CcConformanceTest, HistoryIsSerializableAcrossEightSeeds) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RunConformance(GetParam().cc, GetParam().wl, seed);
  }
}

std::vector<Param> Matrix() {
  std::vector<Param> out;
  for (auto cc : {txn::CcPolicyKind::kOcc, txn::CcPolicyKind::kNoWait,
                  txn::CcPolicyKind::kWaitDie, txn::CcPolicyKind::kWoundWait}) {
    for (auto wl : {Wl::kSmallbank, Wl::kRetwis, Wl::kYcsb}) {
      out.push_back(Param{cc, wl});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(PolicyByWorkload, CcConformanceTest, ::testing::ValuesIn(Matrix()),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           std::string name = txn::CcPolicyName(info.param.cc);
                           name[0] = static_cast<char>(std::toupper(name[0]));
                           return name + WlName(info.param.wl);
                         });

}  // namespace
}  // namespace xenic
