#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace xenic {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) {
      same++;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedResets) {
  Rng a(7);
  const uint64_t first = a.Next();
  a.Next();
  a.Seed(7);
  EXPECT_EQ(a.Next(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.NextBounded(1), 0u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= v == 10;
    saw_hi |= v == 13;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BoundedRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextBounded(10)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<uint32_t> weights = {10, 0, 30, 60};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    counts[rng.NextWeighted(weights)]++;
  }
  EXPECT_NEAR(counts[0], n / 10, n / 50);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2], 3 * n / 10, n / 50);
  EXPECT_NEAR(counts[3], 6 * n / 10, n / 50);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  Rng rng(19);
  ZipfGenerator zipf(100, 0.0);
  std::array<int, 100> counts{};
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 100, n / 200);
  }
}

TEST(ZipfTest, StaysInRange) {
  Rng rng(23);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(29);
  ZipfGenerator zipf(10000, 0.99);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next(rng) < 100) {
      head++;
    }
  }
  // Under uniform, the first 1% of ranks would get ~1% of draws; Zipf 0.99
  // concentrates far more.
  EXPECT_GT(head, n / 4);
}

TEST(ZipfTest, RankFrequencyMatchesTheory) {
  Rng rng(31);
  const double alpha = 1.0;
  const uint64_t n_keys = 1000;
  ZipfGenerator zipf(n_keys, alpha);
  std::vector<int> counts(n_keys, 0);
  const int n = 2000000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // P(rank 1) / P(rank 10) should be ~10 for alpha = 1.
  const double ratio = static_cast<double>(counts[0]) / counts[9];
  EXPECT_NEAR(ratio, 10.0, 2.0);
}

TEST(ZipfTest, ModerateSkewHalfAlpha) {
  // Retwis uses alpha = 0.5; ratio of P(1)/P(100) ~ sqrt(100) = 10.
  Rng rng(37);
  ZipfGenerator zipf(100000, 0.5);
  std::vector<int> counts(100000, 0);
  const int n = 3000000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Next(rng)]++;
  }
  const double ratio = static_cast<double>(counts[0]) / std::max(1, counts[99]);
  EXPECT_NEAR(ratio, 10.0, 4.0);
}

TEST(ScrambleKeyTest, InjectiveOnSample) {
  std::vector<uint64_t> outs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outs.push_back(ScrambleKey(i));
  }
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

}  // namespace
}  // namespace xenic
