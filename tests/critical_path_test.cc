// Critical-path extraction and per-transaction tracing tests.
//
// The first half drives TxnTraceSink with hand-built span sets whose
// correct waterfall is known by construction: bucket classification by
// track name, priority resolution for overlapping spans, gap -> queueing,
// retry redo accounting, and the finalized-set handling of late spans.
// The second half is the observer-only contract: attaching a TxnTraceSink
// through the runner must leave every simulation-derived scalar identical,
// for Xenic and for a baseline system.

#include <cmath>

#include "gtest/gtest.h"
#include "src/harness/runner.h"
#include "src/obs/critical_path.h"
#include "src/obs/txn_trace.h"
#include "src/workload/smallbank.h"

namespace xenic {
namespace {

using obs::AggregateTailAttribution;
using obs::BucketBreakdown;
using obs::CostBucket;
using obs::ExtractCriticalPath;
using obs::TailAttribution;
using obs::TxnTraceSink;
using obs::TxnTree;

int B(CostBucket b) { return static_cast<int>(b); }

TEST(TxnTraceSinkTest, ClassifiesTracksByNameConvention) {
  TxnTraceSink sink;
  const uint32_t host = sink.RegisterTrack("n0.host_cores", "service");
  const uint32_t nic = sink.RegisterTrack("n3.nic_cores", "service");
  const uint32_t dma = sink.RegisterTrack("n0.dma_queues", "service");
  const uint32_t wire = sink.RegisterTrack("n0.tx1", "tx");
  const uint32_t wait = sink.RegisterTrack("n0.nic_cores", "wait");
  // Baseline conventions: bare host_cores (shared pool), rdma resources.
  const uint32_t bhost = sink.RegisterTrack("host_cores", "service");
  const uint32_t pipe = sink.RegisterTrack("n1.rdma_pipeline", "service");
  const uint32_t rtx = sink.RegisterTrack("n1.rdma_tx", "tx");

  sink.Span(host, "h", 0, 10, 1);
  sink.Span(nic, "n", 10, 20, 1);
  sink.Span(dma, "d", 20, 30, 1);
  sink.Span(wire, "w", 30, 40, 1);
  sink.Span(wait, "q", 40, 50, 1);
  sink.Span(bhost, "bh", 50, 60, 1);
  sink.Span(pipe, "p", 60, 70, 1);
  sink.Span(rtx, "rt", 70, 80, 1);

  TxnTree tree;
  ASSERT_TRUE(sink.Extract(1, &tree));
  ASSERT_EQ(tree.cost.size(), 8u);
  EXPECT_EQ(tree.cost[0].bucket, CostBucket::kHostCpu);
  EXPECT_EQ(tree.cost[1].bucket, CostBucket::kNicArm);
  EXPECT_EQ(tree.cost[2].bucket, CostBucket::kDma);
  EXPECT_EQ(tree.cost[3].bucket, CostBucket::kWire);
  EXPECT_EQ(tree.cost[4].bucket, CostBucket::kQueueing);
  EXPECT_EQ(tree.cost[5].bucket, CostBucket::kHostCpu);
  EXPECT_EQ(tree.cost[6].bucket, CostBucket::kNicArm);
  EXPECT_EQ(tree.cost[7].bucket, CostBucket::kWire);
}

TEST(TxnTraceSinkTest, PhaseAndNetTracksAndAuditCounters) {
  TxnTraceSink sink;
  const uint32_t phase = sink.RegisterTrack("txn_phases", "n0");
  const uint32_t net = sink.RegisterTrack("node0", "net");
  const uint32_t host = sink.RegisterTrack("n0.host_cores", "service");
  const uint32_t junk = sink.RegisterTrack("mystery_resource", "service");

  sink.Span(phase, "EXECUTE", 0, 100, 7);
  sink.Instant(net, "execute", 5, 7);
  sink.Instant(net, "ack", 6, 0);   // orphan: no txn id
  sink.Span(host, "h", 0, 10, 0);   // zero-id span
  sink.Span(junk, "x", 0, 10, 7);   // unclassified track: ignored
  // Deliberately ambient work (worker poll ticks) is skipped silently: it
  // must not count as a lost-context anomaly nor land in any tree.
  sink.Span(host, "poll", 0, 10, sim::kAmbientTraceCtx);
  sink.Instant(net, "poll", 5, sim::kAmbientTraceCtx);

  TxnTree tree;
  ASSERT_TRUE(sink.Extract(7, &tree));
  ASSERT_EQ(tree.phases.size(), 1u);
  EXPECT_EQ(tree.phases[0].name, "EXECUTE");
  ASSERT_EQ(tree.instants.size(), 1u);
  EXPECT_EQ(tree.instants[0].name, "execute");
  EXPECT_TRUE(tree.cost.empty());
  EXPECT_EQ(sink.orphan_instants(), 1u);
  EXPECT_EQ(sink.zero_id_spans(), 1u);

  // Finalized ids drop stragglers (post-commit cleanup spans).
  sink.Span(host, "late", 200, 210, 7);
  EXPECT_EQ(sink.late_spans(), 1u);
  EXPECT_EQ(sink.pending(), 0u);

  // Discard drops and finalizes too.
  sink.Span(host, "h", 0, 10, 9);
  EXPECT_EQ(sink.pending(), 1u);
  sink.Discard(9);
  EXPECT_EQ(sink.pending(), 0u);
  TxnTree none;
  EXPECT_FALSE(sink.Extract(9, &none));
}

TEST(CriticalPathTest, KnownWaterfall) {
  // [0,10) host, [10,30) wire, [30,35) gap, [35,50) dma. Total 50.
  TxnTree tree;
  tree.id = 1;
  tree.cost.push_back({CostBucket::kHostCpu, "h", 0, 10});
  tree.cost.push_back({CostBucket::kWire, "w", 10, 30});
  tree.cost.push_back({CostBucket::kDma, "d", 35, 50});
  const BucketBreakdown bd = ExtractCriticalPath(tree, 0, 50, 0);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kHostCpu)], 10);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kWire)], 20);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kQueueing)], 5);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kDma)], 15);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kRedo)], 0);
  EXPECT_DOUBLE_EQ(bd.total_ns, 50);
}

TEST(CriticalPathTest, OverlapResolvedByDevicePriority) {
  // A host span covers the whole attempt; a dma span overlaps the middle.
  // The overlap charges to dma (the device doing the work), the rest to
  // the host; nothing is double-counted.
  TxnTree tree;
  tree.cost.push_back({CostBucket::kHostCpu, "h", 0, 100});
  tree.cost.push_back({CostBucket::kDma, "d", 40, 60});
  const BucketBreakdown bd = ExtractCriticalPath(tree, 0, 100, 0);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kHostCpu)], 80);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kDma)], 20);
  EXPECT_DOUBLE_EQ(bd.total_ns, 100);

  // Explicit wait spans rank below everything: overlapped wait time goes
  // to the working bucket, uncovered wait time is queueing either way.
  TxnTree tree2;
  tree2.cost.push_back({CostBucket::kQueueing, "q", 0, 50});
  tree2.cost.push_back({CostBucket::kNicArm, "n", 20, 30});
  const BucketBreakdown bd2 = ExtractCriticalPath(tree2, 0, 50, 0);
  EXPECT_DOUBLE_EQ(bd2.ns[B(CostBucket::kNicArm)], 10);
  EXPECT_DOUBLE_EQ(bd2.ns[B(CostBucket::kQueueing)], 40);
}

TEST(CriticalPathTest, ClipsToAttemptAndBooksRedo) {
  // Spans from before the final attempt are clipped away; the time lost to
  // earlier aborted attempts arrives as redo_ns (attempt_start - logical
  // submit), keeping total = attempt wall + redo.
  TxnTree tree;
  tree.cost.push_back({CostBucket::kHostCpu, "old", 0, 80});    // earlier attempt
  tree.cost.push_back({CostBucket::kHostCpu, "h", 100, 120});
  tree.cost.push_back({CostBucket::kWire, "w", 120, 150});
  const BucketBreakdown bd = ExtractCriticalPath(tree, 100, 150, 100);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kHostCpu)], 20);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kWire)], 30);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kRedo)], 100);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kQueueing)], 0);
  EXPECT_DOUBLE_EQ(bd.total_ns, 150);

  const double sum = bd.ns[0] + bd.ns[1] + bd.ns[2] + bd.ns[3] + bd.ns[4] + bd.ns[5];
  EXPECT_DOUBLE_EQ(sum, bd.total_ns);
}

TEST(CriticalPathTest, EmptyTreeIsAllQueueing) {
  TxnTree tree;
  const BucketBreakdown bd = ExtractCriticalPath(tree, 10, 60, 0);
  EXPECT_DOUBLE_EQ(bd.ns[B(CostBucket::kQueueing)], 50);
  EXPECT_DOUBLE_EQ(bd.total_ns, 50);
}

TEST(TailAttributionTest, NamesFastestGrowingBucket) {
  // 100 txns: everyone pays 1000ns host; the slowest 5 also pay a large
  // wire cost, so the tail gap must be attributed to wire.
  std::vector<BucketBreakdown> paths;
  for (int i = 0; i < 100; ++i) {
    BucketBreakdown bd;
    bd.ns[B(CostBucket::kHostCpu)] = 1000;
    bd.total_ns = 1000;
    if (i >= 95) {
      bd.ns[B(CostBucket::kWire)] = 5000;
      bd.total_ns += 5000;
    }
    paths.push_back(bd);
  }
  const TailAttribution a = AggregateTailAttribution(std::move(paths));
  EXPECT_EQ(a.count, 100u);
  EXPECT_EQ(a.fastest, B(CostBucket::kWire));
  EXPECT_DOUBLE_EQ(a.p50_mean[B(CostBucket::kHostCpu)], 1000);
  EXPECT_DOUBLE_EQ(a.p50_mean[B(CostBucket::kWire)], 0);
  EXPECT_DOUBLE_EQ(a.tail_mean[B(CostBucket::kWire)], 5000);
  EXPECT_DOUBLE_EQ(a.gap[B(CostBucket::kWire)], 5000);
  EXPECT_DOUBLE_EQ(a.p50_total, 1000);
  EXPECT_DOUBLE_EQ(a.tail_total, 6000);
  // Report renders without crashing and names the bucket.
  const std::string table = obs::RenderTxnWaterfall(a, "test");
  EXPECT_NE(table.find("fastest-growing: wire"), std::string::npos);
  const std::string json = obs::TxnAttribJson(a);
  EXPECT_NE(json.find("\"fastest\":\"wire\""), std::string::npos);
}

TEST(TailAttributionTest, EmptyInputIsSafe) {
  const TailAttribution a = AggregateTailAttribution({});
  EXPECT_EQ(a.count, 0u);
  EXPECT_EQ(a.fastest, -1);
  const std::string table = obs::RenderTxnWaterfall(a, "empty");
  EXPECT_NE(table.find("no committed transactions"), std::string::npos);
  const std::string json = obs::TxnAttribJson(a);
  EXPECT_NE(json.find("\"fastest\":null"), std::string::npos);
}

// Observer-only contract: txn tracing through the runner cannot perturb
// the simulation, and it actually yields a breakdown per counted commit.
harness::RunResult RunPoint(harness::SystemConfig cfg, obs::TxnTraceSink* sink) {
  workload::Smallbank::Options wo;
  wo.num_nodes = cfg.num_nodes;
  wo.accounts_per_node = 2000;
  workload::Smallbank wl(wo);
  auto system = harness::BuildSystem(cfg, wl);
  harness::LoadWorkload(*system, wl);
  harness::RunConfig rc;
  rc.contexts_per_node = 8;
  rc.warmup = 50 * sim::kNsPerUs;
  rc.measure = 200 * sim::kNsPerUs;
  rc.txn_trace = sink;
  return harness::RunWorkload(*system, wl, rc);
}

void CheckObserverOnly(harness::SystemConfig cfg) {
  obs::TxnTraceSink sink;
  const harness::RunResult plain = RunPoint(cfg, nullptr);
  const harness::RunResult traced = RunPoint(cfg, &sink);

  EXPECT_EQ(plain.committed, traced.committed);
  EXPECT_EQ(plain.aborted, traced.aborted);
  EXPECT_EQ(plain.sim_events, traced.sim_events);
  EXPECT_EQ(plain.latency.count(), traced.latency.count());
  EXPECT_EQ(plain.latency.Median(), traced.latency.Median());
  EXPECT_EQ(plain.latency.max(), traced.latency.max());
  EXPECT_DOUBLE_EQ(plain.tput_per_server, traced.tput_per_server);

  EXPECT_TRUE(plain.txn_paths.empty());
  ASSERT_EQ(traced.txn_paths.size(), traced.latency.count());
  // Every breakdown is internally consistent and attributes real work.
  double worked = 0;
  for (const auto& bd : traced.txn_paths) {
    double sum = 0;
    for (int b = 0; b < obs::kNumBuckets; ++b) {
      ASSERT_GE(bd.ns[b], 0.0);
      sum += bd.ns[b];
    }
    EXPECT_NEAR(sum, bd.total_ns, 1e-6);
    worked += bd.total_ns - bd.ns[B(CostBucket::kQueueing)] - bd.ns[B(CostBucket::kRedo)];
  }
  EXPECT_GT(worked, 0.0);
  // Transport instants all carried a txn id, and no txn work lost its
  // context across an event boundary (ambient poll ticks are marked with
  // sim::kAmbientTraceCtx and excluded by the sink).
  EXPECT_EQ(sink.orphan_instants(), 0u);
  EXPECT_EQ(sink.zero_id_spans(), 0u);
}

// Trace-context audit regression: timers armed inside traced work (abort
// retry backoff wakeups, parked-lock wakeups, worker poll ticks) must
// neither leak a dead transaction's context nor lose a live one. A
// contended run that actually retries must end with zero lost-context
// spans and zero orphan transport instants. (Late spans -- post-finalize
// stragglers from in-flight work of aborted attempts and post-commit log
// applies -- are expected and deliberately not asserted.)
TEST(TxnAttribDeterminismTest, RetryHeavyRunHasNoContextLeaks) {
  workload::Smallbank::Options wo;
  wo.num_nodes = 2;
  wo.accounts_per_node = 20;  // tiny keyspace: heavy contention, real retries
  workload::Smallbank wl(wo);
  harness::SystemConfig cfg;
  cfg.kind = harness::SystemConfig::Kind::kXenic;
  cfg.num_nodes = 2;
  cfg.replication = 2;
  auto system = harness::BuildSystem(cfg, wl);
  harness::LoadWorkload(*system, wl);
  harness::RunConfig rc;
  rc.contexts_per_node = 8;
  rc.warmup = 50 * sim::kNsPerUs;
  rc.measure = 300 * sim::kNsPerUs;
  rc.retry.max_retries = 8;
  obs::TxnTraceSink sink;
  rc.txn_trace = &sink;
  const harness::RunResult res = harness::RunWorkload(*system, wl, rc);
  EXPECT_GT(res.committed, 0u);
  EXPECT_GT(res.aborted, 0u);  // backoff wakeups really armed
  EXPECT_EQ(sink.zero_id_spans(), 0u);
  EXPECT_EQ(sink.orphan_instants(), 0u);
}

TEST(TxnAttribDeterminismTest, XenicObserverOnly) {
  harness::SystemConfig cfg;
  cfg.kind = harness::SystemConfig::Kind::kXenic;
  cfg.num_nodes = 2;
  cfg.replication = 2;
  CheckObserverOnly(cfg);
}

TEST(TxnAttribDeterminismTest, BaselineObserverOnly) {
  harness::SystemConfig cfg;
  cfg.kind = harness::SystemConfig::Kind::kBaseline;
  cfg.mode = baseline::BaselineMode::kDrtmH;
  cfg.num_nodes = 2;
  cfg.replication = 2;
  CheckObserverOnly(cfg);
}

}  // namespace
}  // namespace xenic
