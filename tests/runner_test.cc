// Harness runner behavior: warmup exclusion, retry accounting, counted
// (tag-filtered) throughput, and determinism for a fixed seed.

#include <gtest/gtest.h>

#include "src/harness/runner.h"
#include "src/workload/smallbank.h"

namespace xenic::harness {
namespace {

std::unique_ptr<workload::Smallbank> MakeWl(uint32_t nodes = 3) {
  workload::Smallbank::Options wo;
  wo.num_nodes = nodes;
  wo.accounts_per_node = 3000;
  return std::make_unique<workload::Smallbank>(wo);
}

SystemConfig Cfg() {
  SystemConfig cfg;
  cfg.kind = SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  return cfg;
}

TEST(RunnerTest, ThroughputScalesWithMeasureWindow) {
  auto wl = MakeWl();
  auto sys = BuildSystem(Cfg(), *wl);
  LoadWorkload(*sys, *wl);
  RunConfig rc;
  rc.contexts_per_node = 8;
  rc.warmup = 100 * sim::kNsPerUs;
  rc.measure = 300 * sim::kNsPerUs;
  const RunResult short_run = RunWorkload(*sys, *wl, rc);
  rc.measure = 1200 * sim::kNsPerUs;
  const RunResult long_run = RunWorkload(*sys, *wl, rc);
  // Rates should agree within noise; commit COUNTS scale ~4x.
  EXPECT_NEAR(long_run.tput_per_server / short_run.tput_per_server, 1.0, 0.3);
  EXPECT_GT(long_run.committed, short_run.committed * 2);
}

TEST(RunnerTest, DeterministicForSeed) {
  double tput[2];
  for (int i = 0; i < 2; ++i) {
    auto wl = MakeWl();
    auto sys = BuildSystem(Cfg(), *wl);
    LoadWorkload(*sys, *wl);
    RunConfig rc;
    rc.contexts_per_node = 6;
    rc.seed = 42;
    rc.warmup = 100 * sim::kNsPerUs;
    rc.measure = 400 * sim::kNsPerUs;
    tput[i] = RunWorkload(*sys, *wl, rc).tput_per_server;
  }
  EXPECT_DOUBLE_EQ(tput[0], tput[1]);
}

TEST(RunnerTest, DifferentSeedsDiffer) {
  double tput[2];
  for (int i = 0; i < 2; ++i) {
    auto wl = MakeWl();
    auto sys = BuildSystem(Cfg(), *wl);
    LoadWorkload(*sys, *wl);
    RunConfig rc;
    rc.contexts_per_node = 6;
    rc.seed = 100 + static_cast<uint64_t>(i);
    rc.warmup = 100 * sim::kNsPerUs;
    rc.measure = 400 * sim::kNsPerUs;
    tput[i] = RunWorkload(*sys, *wl, rc).tput_per_server;
  }
  EXPECT_NE(tput[0], tput[1]);  // different streams, (almost surely) different counts
}

TEST(RunnerTest, LatencyCountsOnlyMeasuredWindow) {
  auto wl = MakeWl();
  auto sys = BuildSystem(Cfg(), *wl);
  LoadWorkload(*sys, *wl);
  RunConfig rc;
  rc.contexts_per_node = 4;
  rc.warmup = 400 * sim::kNsPerUs;
  rc.measure = 400 * sim::kNsPerUs;
  const RunResult r = RunWorkload(*sys, *wl, rc);
  // Latency records == counted commits (Smallbank counts everything).
  EXPECT_EQ(r.latency.count(), r.committed);
}

TEST(RunnerTest, UtilizationWithinBounds) {
  auto wl = MakeWl();
  auto sys = BuildSystem(Cfg(), *wl);
  LoadWorkload(*sys, *wl);
  RunConfig rc;
  rc.contexts_per_node = 32;
  rc.warmup = 100 * sim::kNsPerUs;
  rc.measure = 500 * sim::kNsPerUs;
  const RunResult r = RunWorkload(*sys, *wl, rc);
  EXPECT_GE(r.host_utilization, 0.0);
  EXPECT_LE(r.host_utilization, 1.01);
  EXPECT_GE(r.nic_utilization, 0.0);
  EXPECT_LE(r.nic_utilization, 1.01);
  EXPECT_GE(r.wire_utilization, 0.0);
  EXPECT_LE(r.wire_utilization, 1.05);
}

}  // namespace
}  // namespace xenic::harness
