// Windowed metrics layer: WindowSeries tiling (the one shared windowing
// helper chaos timelines, availability accounting, and the registry all sit
// on), counter/histogram boundary semantics, registry sampling (gauges,
// cumulative deltas), NaN-safe rendering of empty windows, the observer-only
// contract of attaching a registry to RunWorkload, and the per-window
// degraded-service series derived from chaos availability accounting.

#include "src/obs/metrics.h"

#include <gtest/gtest.h>

#include <string>

#include "src/chaos/chaos_run.h"
#include "src/harness/runner.h"
#include "src/workload/smallbank.h"

namespace xenic::obs {
namespace {

constexpr sim::Tick kUs = sim::kNsPerUs;

// --- WindowSeries: the shared tiling rules -------------------------------

TEST(WindowSeriesTest, ExactTiling) {
  WindowSeries s(50 * kUs, 200 * kUs);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.StartOf(3), 150 * kUs);
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s.WidthOf(i), 50 * kUs);
  }
}

TEST(WindowSeriesTest, PartialFinalWindow) {
  WindowSeries s(50 * kUs, 230 * kUs);
  ASSERT_EQ(s.size(), 5u);
  EXPECT_EQ(s.WidthOf(3), 50 * kUs);
  EXPECT_EQ(s.WidthOf(4), 30 * kUs);  // 200..230
  // The widths always tile the domain exactly.
  sim::Tick total = 0;
  for (size_t i = 0; i < s.size(); ++i) {
    total += s.WidthOf(i);
  }
  EXPECT_EQ(total, 230 * kUs);
}

TEST(WindowSeriesTest, IndexOfBoundaries) {
  WindowSeries s(50 * kUs, 200 * kUs);
  size_t i = 99;
  ASSERT_TRUE(s.IndexOf(0, &i));
  EXPECT_EQ(i, 0u);
  // A boundary belongs to the window it starts (start-inclusive).
  ASSERT_TRUE(s.IndexOf(50 * kUs, &i));
  EXPECT_EQ(i, 1u);
  ASSERT_TRUE(s.IndexOf(50 * kUs - 1, &i));
  EXPECT_EQ(i, 0u);
  // ...except exactly-at-end, which folds into the final (closed) window.
  ASSERT_TRUE(s.IndexOf(200 * kUs, &i));
  EXPECT_EQ(i, 3u);
  // Past the end: outside the domain.
  EXPECT_FALSE(s.IndexOf(200 * kUs + 1, &i));
}

TEST(WindowSeriesTest, EmptySeries) {
  WindowSeries def;
  EXPECT_TRUE(def.empty());
  size_t i = 0;
  EXPECT_FALSE(def.IndexOf(0, &i));
  WindowSeries zero_window(0, 100 * kUs);
  EXPECT_TRUE(zero_window.empty());
  EXPECT_EQ(zero_window.CountWithin(0), 0u);
}

TEST(WindowSeriesTest, CountWithinClampsDrainTail) {
  WindowSeries s(50 * kUs, 230 * kUs);  // 5 windows, last partial
  EXPECT_EQ(s.CountWithin(0), 5u);      // 0 = no clamp
  EXPECT_EQ(s.CountWithin(230 * kUs), 5u);
  EXPECT_EQ(s.CountWithin(200 * kUs), 4u);  // partial tail excluded
  EXPECT_EQ(s.CountWithin(150 * kUs), 3u);  // exact boundary: window kept
  EXPECT_EQ(s.CountWithin(149 * kUs), 2u);
  EXPECT_EQ(s.CountWithin(1), 0u);
}

// --- Registry + push metrics ---------------------------------------------

TEST(MetricRegistryTest, CounterDropsOutsideDomain) {
  MetricRegistry reg;
  WindowCounter* c = reg.AddCounter("events");
  c->Add(10 * kUs);  // before BeginWindows: dropped (warmup idiom)
  reg.BeginWindows(WindowSeries(50 * kUs, 100 * kUs), /*origin=*/100 * kUs);
  c->Add(90 * kUs);        // before origin: dropped
  c->Add(100 * kUs);       // window 0 start
  c->Add(149 * kUs + 999);  // still window 0
  c->Add(150 * kUs);       // window 1 (start-inclusive boundary)
  c->Add(200 * kUs);       // exactly at end: folds into final window
  c->Add(200 * kUs + 1);   // past end: dropped (drain idiom)
  EXPECT_EQ(c->ValueAt(0), 2u);
  EXPECT_EQ(c->ValueAt(1), 2u);
  EXPECT_EQ(c->Total(), 4u);
}

TEST(MetricRegistryTest, HistogramMergeAcrossWindowBoundary) {
  MetricRegistry reg;
  WindowHistogram* h = reg.AddHistogram("lat");
  reg.BeginWindows(WindowSeries(50 * kUs, 150 * kUs), 0);
  h->Record(10 * kUs, 1000);
  h->Record(49 * kUs, 3000);
  h->Record(50 * kUs, 5000);  // boundary -> window 1
  ASSERT_NE(h->WindowAt(0), nullptr);
  EXPECT_EQ(h->WindowAt(0)->count(), 2u);
  ASSERT_NE(h->WindowAt(1), nullptr);
  EXPECT_EQ(h->WindowAt(1)->count(), 1u);
  EXPECT_EQ(h->WindowAt(2), nullptr);  // no samples: null, renders "--"
  // Merged re-integrates the split distribution: counts add up and the
  // max survives, exactly as if the windows had never partitioned it.
  const Histogram merged = h->Merged(0, h->size());
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.max(), 5000u);
  const Histogram first_only = h->Merged(0, 1);
  EXPECT_EQ(first_only.count(), 2u);
}

TEST(MetricRegistryTest, EmptyWindowsRenderNaNSafe) {
  MetricRegistry reg;
  WindowHistogram* h = reg.AddHistogram("lat");
  reg.BeginWindows(WindowSeries(50 * kUs, 100 * kUs), 0);
  h->Record(10 * kUs, 1000);  // window 1 stays empty
  const std::string text = reg.Lines("metrics ");
  EXPECT_NE(text.find("metrics lat.count: 1 --"), std::string::npos) << text;
  // p50 of the populated window is bucket-approximate; only the empty
  // window's sentinel is pinned.
  const size_t p50 = text.find("metrics lat.p50: ");
  ASSERT_NE(p50, std::string::npos) << text;
  const std::string p50_line = text.substr(p50, text.find('\n', p50) - p50);
  EXPECT_EQ(p50_line.substr(p50_line.size() - 3), " --") << p50_line;
  const std::string json = reg.Json("test");
  EXPECT_NE(json.find("null"), std::string::npos) << json;
  // OpenMetrics omits empty histogram windows entirely and stays terminated.
  const std::string om = reg.OpenMetrics();
  EXPECT_EQ(om.find("window=\"1\""), std::string::npos) << om;
  EXPECT_NE(om.find("# EOF"), std::string::npos);
}

TEST(MetricRegistryTest, CumulativeDeltasAndGauges) {
  MetricRegistry reg;
  uint64_t monotonic = 100;  // nonzero before BeginWindows: baselined away
  uint64_t level = 7;
  reg.AddCumulative("busy", {}, [&] { return monotonic; });
  reg.AddGauge("depth", {}, [&] { return level; });
  uint64_t hook_runs = 0;
  reg.AddSampleHook([&] { ++hook_runs; });
  reg.BeginWindows(WindowSeries(50 * kUs, 150 * kUs), 0);
  monotonic = 130;
  level = 3;
  reg.CloseWindow(0);
  monotonic = 130;  // idle window: delta 0
  level = 9;
  reg.CloseWindow(1);
  monotonic = 200;
  reg.CloseWindow(2);
  EXPECT_EQ(hook_runs, 3u);
  const std::string text = reg.Lines("");
  // Cumulative: per-window deltas integrate back to final - baseline.
  EXPECT_NE(text.find("busy: 30 0 70"), std::string::npos) << text;
  // Gauge: instantaneous at each close.
  EXPECT_NE(text.find("depth: 3 9 9"), std::string::npos) << text;
}

TEST(MetricRegistryTest, FaultMarksAlignToWindows) {
  MetricRegistry reg;
  reg.BeginWindows(WindowSeries(50 * kUs, 200 * kUs), 0);
  reg.MarkFault(120 * kUs, "crash", 2);
  reg.MarkFault(500 * kUs, "storm", 1);  // outside the series domain
  ASSERT_EQ(reg.faults().size(), 2u);
  EXPECT_TRUE(reg.faults()[0].in_range);
  EXPECT_EQ(reg.faults()[0].window, 2u);
  EXPECT_FALSE(reg.faults()[1].in_range);
  const std::string text = reg.Lines("metrics ");
  EXPECT_NE(text.find("metrics fault at_us=120 kind=crash node=2 window=2"),
            std::string::npos)
      << text;
}

// --- Observer-only contract against the real harness ---------------------

harness::RunResult RunPoint(MetricRegistry* reg) {
  workload::Smallbank::Options wo;
  wo.num_nodes = 3;
  wo.accounts_per_node = 3000;
  workload::Smallbank wl(wo);
  harness::SystemConfig cfg;
  cfg.kind = harness::SystemConfig::Kind::kXenic;
  cfg.num_nodes = 3;
  cfg.replication = 2;
  auto sys = harness::BuildSystem(cfg, wl);
  harness::LoadWorkload(*sys, wl);
  harness::RunConfig rc;
  rc.contexts_per_node = 6;
  rc.seed = 42;
  rc.warmup = 100 * kUs;
  rc.measure = 400 * kUs;
  rc.metrics = reg;
  rc.metrics_window = 50 * kUs;
  return harness::RunWorkload(*sys, wl, rc);
}

TEST(MetricsHarnessTest, AttachingRegistryIsObserverOnly) {
  const harness::RunResult plain = RunPoint(nullptr);
  MetricRegistry reg;
  const harness::RunResult sampled = RunPoint(&reg);
  // Slicing the measure phase into RunUntil calls at window boundaries
  // executes the identical event schedule: every simulation-derived scalar
  // matches, including the event count.
  EXPECT_EQ(sampled.committed, plain.committed);
  EXPECT_EQ(sampled.aborted, plain.aborted);
  EXPECT_EQ(sampled.sim_events, plain.sim_events);
  EXPECT_EQ(sampled.latency.count(), plain.latency.count());
  EXPECT_EQ(sampled.latency.Median(), plain.latency.Median());
  EXPECT_EQ(sampled.latency.P99(), plain.latency.P99());
  // And the windowed series integrates back to the run totals.
  const WindowCounter* committed = reg.FindCounter("txn_committed");
  ASSERT_NE(committed, nullptr);
  EXPECT_EQ(committed->Total(), plain.committed);
  const WindowHistogram* lat = reg.FindHistogram("txn_latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Merged(0, lat->size()).count(), plain.latency.count());
}

TEST(MetricsHarnessTest, ConservationGaugeStaysZero) {
  MetricRegistry reg;
  (void)RunPoint(&reg);
  const std::string text = reg.Lines("");
  const size_t pos = text.find("net_conservation_violations:");
  ASSERT_NE(pos, std::string::npos) << text;
  const std::string line = text.substr(pos, text.find('\n', pos) - pos);
  // Every sampled value must be 0: the transport increments the per-type
  // and total message counters together, always.
  EXPECT_EQ(line.find_first_of("123456789"), std::string::npos) << line;
}

TEST(MetricsHarnessTest, FindersMissGracefully) {
  MetricRegistry reg;
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindHistogram("nope"), nullptr);
  reg.AddCounter("c");
  EXPECT_EQ(reg.FindHistogram("c"), nullptr);  // kind-checked
  EXPECT_NE(reg.FindCounter("c"), nullptr);
}

// --- Chaos: per-window degraded service series ---------------------------

TEST(MetricsChaosTest, DegradedPerWindowSumsToTotal) {
  chaos::ChaosConfig config;
  config.seed = 3;
  config.faults.crashes = 1;
  config.faults.eviction_storms = 0;
  config.faults.stall_windows = 0;
  config.faults.drop_prob = 0;
  config.faults.dup_prob = 0;
  config.faults.delay_prob = 0;
  config.faults.detection_delay = 100 * kUs;  // slow lease: a visible dip
  config.timeline = true;
  const chaos::ChaosVerdict v = chaos::RunChaos(config);
  const chaos::AvailabilityReport avail = chaos::ComputeAvailability(
      v.timeline, v.timeline_faults, v.timeline_horizon);
  ASSERT_FALSE(avail.degraded_us_per_window.empty());
  EXPECT_GT(avail.degraded_service_us, 0u);
  uint64_t sum = 0;
  for (uint64_t w : avail.degraded_us_per_window) {
    sum += w;
  }
  // Per-window integer division rounds each window down independently, so
  // the sum can undershoot the total by at most 1us per window.
  EXPECT_LE(sum, avail.degraded_service_us);
  EXPECT_GE(sum + avail.degraded_us_per_window.size(), avail.degraded_service_us);
}

}  // namespace
}  // namespace xenic::obs
