// SweepExecutor: results must be identical to serial execution for any
// worker count -- both for plain tasks and for full simulation runs.

#include "src/harness/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "src/harness/runner.h"
#include "src/harness/system_adapter.h"
#include "src/workload/smallbank.h"

namespace xenic::harness {
namespace {

TEST(SweepExecutorTest, RunsEveryTaskExactlyOnce) {
  for (uint32_t jobs : {1u, 2u, 8u}) {
    SweepExecutor ex(jobs);
    std::vector<std::atomic<int>> hits(100);
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < hits.size(); ++i) {
      tasks.push_back([&hits, i] { hits[i].fetch_add(1); });
    }
    ex.RunAll(tasks);
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(SweepExecutorTest, MapCollectsResultsByIndexForAnyWorkerCount) {
  std::vector<std::function<uint64_t()>> tasks;
  for (uint64_t i = 0; i < 64; ++i) {
    tasks.push_back([i] { return i * i + 7; });
  }
  SweepExecutor serial(1);
  const std::vector<uint64_t> expected = serial.Map(tasks);
  for (uint32_t jobs : {2u, 8u}) {
    SweepExecutor ex(jobs);
    EXPECT_EQ(ex.Map(tasks), expected) << "jobs=" << jobs;
  }
}

TEST(SweepExecutorTest, TaskExceptionPropagatesAfterJoin) {
  SweepExecutor ex(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 16; ++i) {
    tasks.push_back([i] {
      if (i == 9) {
        throw std::runtime_error("boom");
      }
    });
  }
  EXPECT_THROW(ex.RunAll(tasks), std::runtime_error);
}

TEST(SweepExecutorTest, ParseJobsFlag) {
  const char* argv1[] = {"bench", "--jobs", "6"};
  EXPECT_EQ(SweepExecutor::ParseJobsFlag(3, const_cast<char**>(argv1)), 6u);
  const char* argv2[] = {"bench", "--jobs=3"};
  EXPECT_EQ(SweepExecutor::ParseJobsFlag(2, const_cast<char**>(argv2)), 3u);
  const char* argv3[] = {"bench"};
  EXPECT_EQ(SweepExecutor::ParseJobsFlag(1, const_cast<char**>(argv3), 1), 1u);
}

// The load-bearing guarantee: full simulation runs submitted as independent
// sweep tasks produce bit-identical results for 1, 2, and 8 workers.
TEST(SweepExecutorTest, SimulationSweepIsIdenticalAcrossWorkerCounts) {
  const std::vector<uint32_t> loads = {2, 8, 24};

  struct Point {
    uint64_t committed;
    uint64_t aborted;
    double tput;
    uint64_t median;

    bool operator==(const Point& o) const {
      return committed == o.committed && aborted == o.aborted && tput == o.tput &&
             median == o.median;
    }
  };

  auto run_sweep = [&loads](uint32_t jobs) {
    SweepExecutor ex(jobs);
    std::vector<Point> out(loads.size());
    std::vector<std::function<void()>> tasks;
    for (size_t i = 0; i < loads.size(); ++i) {
      tasks.push_back([&loads, &out, i] {
        workload::Smallbank::Options wo;
        wo.num_nodes = 2;
        wo.accounts_per_node = 4000;
        workload::Smallbank wl(wo);
        SystemConfig cfg;
        cfg.kind = SystemConfig::Kind::kXenic;
        cfg.num_nodes = 2;
        cfg.replication = 2;
        auto sys = BuildSystem(cfg, wl);
        LoadWorkload(*sys, wl);
        RunConfig rc;
        rc.contexts_per_node = loads[i];
        rc.seed = 11;
        rc.warmup = 50 * sim::kNsPerUs;
        rc.measure = 200 * sim::kNsPerUs;
        const RunResult r = RunWorkload(*sys, wl, rc);
        out[i] = Point{r.committed, r.aborted, r.tput_per_server, r.latency.Median()};
      });
    }
    ex.RunAll(tasks);
    return out;
  };

  const std::vector<Point> serial = run_sweep(1);
  EXPECT_TRUE(run_sweep(2) == serial);
  EXPECT_TRUE(run_sweep(8) == serial);
}

}  // namespace
}  // namespace xenic::harness
