// YCSB generator tests (DESIGN.md §13): the three properties the
// concurrency-control comparisons lean on. Key popularity follows the
// zipfian pmf (checked with a chi-square bound; theta 0 degenerates to
// uniform), the read ratio is exact over any window (error diffusion, not
// Bernoulli), and the generated stream is a pure function of the Rng state,
// so per-context streams are byte-identical across --jobs splits.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/ycsb.h"

namespace xenic::workload {
namespace {

Ycsb::Options SmallOptions(double theta, double read_ratio) {
  Ycsb::Options o;
  o.num_nodes = 6;
  o.keys_per_node = 8;  // 48 keys: every bin well-populated
  o.zipf_theta = theta;
  o.read_ratio = read_ratio;
  o.ops_per_txn = 3;
  o.value_size = 16;
  return o;
}

// Chi-square statistic of observed key draws against the zipf pmf
// p(rank) = rank^-theta / H(n). Keys ARE ranks (0-based) by construction.
double ChiSquare(const std::vector<uint64_t>& counts, double theta, uint64_t samples) {
  double h = 0.0;
  for (size_t r = 0; r < counts.size(); ++r) {
    h += 1.0 / std::pow(static_cast<double>(r + 1), theta);
  }
  double chi = 0.0;
  for (size_t r = 0; r < counts.size(); ++r) {
    const double expected =
        static_cast<double>(samples) / (std::pow(static_cast<double>(r + 1), theta) * h);
    const double d = static_cast<double>(counts[r]) - expected;
    chi += d * d / expected;
  }
  return chi;
}

TEST(YcsbTest, ZipfFrequenciesWithinChiSquareBound) {
  Ycsb wl(SmallOptions(0.99, 0.5));
  Rng rng(42);
  constexpr uint64_t kSamples = 200000;
  std::vector<uint64_t> counts(wl.total_keys(), 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    const Key k = wl.PickKey(rng);
    ASSERT_LT(k, wl.total_keys());
    counts[k]++;
  }
  // 47 degrees of freedom: the p=0.001 critical value is ~84.0. A bound of
  // 90 fails reliably if the pmf is off by even one rank (0- vs 1-based
  // shifts chi-square into the thousands at this sample size).
  EXPECT_LT(ChiSquare(counts, 0.99, kSamples), 90.0);
  // Sanity on the shape itself: rank 0 is the hottest key and the head
  // dominates a same-size slice of the tail.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
  uint64_t head = 0;
  uint64_t tail = 0;
  for (size_t r = 0; r < 8; ++r) {
    head += counts[r];
    tail += counts[counts.size() - 1 - r];
  }
  EXPECT_GT(head, 4 * tail);
}

TEST(YcsbTest, ThetaZeroIsUniform) {
  Ycsb wl(SmallOptions(0.0, 0.5));
  Rng rng(43);
  constexpr uint64_t kSamples = 200000;
  std::vector<uint64_t> counts(wl.total_keys(), 0);
  for (uint64_t i = 0; i < kSamples; ++i) {
    counts[wl.PickKey(rng)]++;
  }
  EXPECT_LT(ChiSquare(counts, 0.0, kSamples), 90.0);
}

TEST(YcsbTest, ReadRatioIsExactOverTenThousandOps) {
  for (const double ratio : {0.0, 0.5, 0.95, 1.0}) {
    Ycsb wl(SmallOptions(0.99, ratio));
    uint64_t reads = 0;
    constexpr uint64_t kOps = 10000;
    for (uint64_t i = 0; i < kOps; ++i) {
      if (wl.NextOpIsRead()) {
        reads++;
      }
    }
    const auto expected = static_cast<uint64_t>(ratio * static_cast<double>(kOps));
    EXPECT_NEAR(static_cast<double>(reads), static_cast<double>(expected), 1.0)
        << "ratio " << ratio;
  }
}

TEST(YcsbTest, EveryWindowHoldsTheRatioWithinOne) {
  Ycsb wl(SmallOptions(0.99, 0.7));
  int window_reads = 0;
  for (int i = 1; i <= 5000; ++i) {
    if (wl.NextOpIsRead()) {
      window_reads++;
    }
    if (i % 100 == 0) {
      EXPECT_GE(window_reads, 69);
      EXPECT_LE(window_reads, 71);
      window_reads = 0;
    }
  }
}

TEST(YcsbTest, StreamsAreByteIdenticalAcrossInstances) {
  // Two independently constructed workloads fed identically seeded Rngs
  // must produce identical transactions: this is what makes sweep output
  // independent of how contexts are divided among --jobs workers.
  Ycsb a(SmallOptions(0.9, 0.5));
  Ycsb b(SmallOptions(0.9, 0.5));
  Rng ra(7);
  Rng rb(7);
  for (int i = 0; i < 200; ++i) {
    const txn::TxnRequest ta = a.NextTxn(2, ra);
    const txn::TxnRequest tb = b.NextTxn(2, rb);
    ASSERT_EQ(ta.reads.size(), tb.reads.size());
    ASSERT_EQ(ta.writes.size(), tb.writes.size());
    for (size_t j = 0; j < ta.reads.size(); ++j) {
      EXPECT_EQ(ta.reads[j].key, tb.reads[j].key);
    }
    for (size_t j = 0; j < ta.writes.size(); ++j) {
      EXPECT_EQ(ta.writes[j].key, tb.writes[j].key);
    }
  }
}

TEST(YcsbTest, TxnsDrawDistinctKeysAndUpdatesAreRmw) {
  Ycsb wl(SmallOptions(0.99, 0.5));
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const txn::TxnRequest req = wl.NextTxn(0, rng);
    EXPECT_EQ(req.reads.size(), 3u);  // ops_per_txn distinct keys, all read
    std::set<Key> keys;
    for (const auto& r : req.reads) {
      EXPECT_EQ(r.table, Ycsb::kMain);
      keys.insert(r.key);
    }
    EXPECT_EQ(keys.size(), req.reads.size());
    for (const auto& w : req.writes) {
      // Every write key appears in the read set: the history checker's
      // lost-update contract (and 2PL's lock-upgrade-free locking) need RMW.
      EXPECT_TRUE(keys.count(w.key) > 0);
    }
  }
}

TEST(YcsbTest, TablesAndPlacementSpreadAcrossNodes) {
  Ycsb wl(SmallOptions(0.99, 0.5));
  const auto tables = wl.Tables();
  ASSERT_EQ(tables.size(), 1u);
  EXPECT_EQ(tables[0].id, Ycsb::kMain);
  EXPECT_EQ(tables[0].value_size, 16u);
  // Hash placement: the hot head of the zipf distribution must not all land
  // on one node, or a skewed run measures one server.
  std::set<store::NodeId> nodes;
  for (Key k = 0; k < 8; ++k) {
    nodes.insert(wl.partitioner().PrimaryOf(Ycsb::kMain, k));
  }
  EXPECT_GE(nodes.size(), 3u);
}

TEST(YcsbTest, LoadPopulatesEveryKeyOnce) {
  Ycsb wl(SmallOptions(0.5, 0.5));
  std::set<Key> seen;
  uint64_t dup = 0;
  wl.Load([&](TableId t, Key k, const store::Value& v) {
    EXPECT_EQ(t, Ycsb::kMain);
    EXPECT_EQ(v.size(), 16u);
    if (!seen.insert(k).second) {
      dup++;
    }
  });
  EXPECT_EQ(seen.size(), wl.total_keys());
  EXPECT_EQ(dup, 0u);
}

}  // namespace
}  // namespace xenic::workload
