#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/rng.h"

namespace xenic {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Median(), 0u);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  EXPECT_NEAR(h.Median(), 1234, 20);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 64; ++v) {
    h.Record(v);
  }
  // Sub-64 values are exact buckets.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.max(), 63u);
  EXPECT_NEAR(h.Median(), 32, 1);
}

TEST(HistogramTest, QuantilesOfUniform) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) {
    h.Record(rng.NextBounded(1000000));
  }
  EXPECT_NEAR(static_cast<double>(h.Median()), 500000.0, 500000.0 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.ValueAtQuantile(0.9)), 900000.0, 900000.0 * 0.05);
  EXPECT_NEAR(h.Mean(), 500000.0, 500000.0 * 0.02);
}

TEST(HistogramTest, RelativeErrorBounded) {
  // Every recorded value must be recoverable within ~2x sub-bucket width.
  for (uint64_t v : {1ull, 100ull, 1000ull, 123456ull, 99999999ull, 123456789012ull}) {
    Histogram h;
    h.Record(v);
    const double err =
        std::abs(static_cast<double>(h.Median()) - static_cast<double>(v)) / std::max<double>(1.0, static_cast<double>(v));
    EXPECT_LT(err, 0.02) << "value " << v;
  }
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 1000; ++i) {
    a.Record(100);
    b.Record(10000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 2000u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 10000u);
  EXPECT_NEAR(a.Mean(), 5050.0, 60.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(7);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h;
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    h.Record(rng.NextBounded(1 << 20));
  }
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1500);
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("us"), std::string::npos);
}

TEST(HistogramTest, EmptySummaryIsWellFormed) {
  Histogram h;
  const std::string s = h.Summary();
  EXPECT_NE(s.find("n=0"), std::string::npos);
  // An empty histogram must not leak its internal min sentinel (UINT64_MAX).
  EXPECT_EQ(s.find("18446744073709551615"), std::string::npos);
}

TEST(HistogramTest, MergeWithEmptyIsIdentity) {
  Histogram a;
  a.Record(100);
  a.Record(300);
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 100u);
  EXPECT_EQ(a.max(), 300u);

  // ... in both directions: merging into an empty histogram must not let
  // the empty side's min sentinel win.
  Histogram b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 100u);
  EXPECT_EQ(b.max(), 300u);

  Histogram c;
  c.Merge(empty);
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0u);
  EXPECT_EQ(c.max(), 0u);
}

TEST(HistogramTest, SingleValueQuantileExtremes) {
  Histogram h;
  h.Record(7777);
  // Both quantile extremes of a single sample are that sample (within
  // bucket resolution, clamped to [min, max]).
  EXPECT_EQ(h.ValueAtQuantile(0.0), h.ValueAtQuantile(1.0));
  EXPECT_GE(h.ValueAtQuantile(0.0), h.min());
  EXPECT_LE(h.ValueAtQuantile(1.0), h.max());
}

TEST(HistogramTest, TopBucketSaturates) {
  // Values beyond the top octave clamp into the last bucket instead of
  // indexing out of bounds; quantiles stay within [min, max].
  Histogram h;
  h.Record(std::numeric_limits<uint64_t>::max());
  h.Record(1ull << 50);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
  EXPECT_GE(h.Median(), h.min());
  EXPECT_LE(h.Median(), h.max());
  EXPECT_LE(h.ValueAtQuantile(1.0), h.max());
}

}  // namespace
}  // namespace xenic
