// Unit tests for the serializability history checker on hand-built
// histories: clean chains pass, lost updates and precedence cycles are
// flagged, version gaps (unrecorded recovery writers) are tolerated, and
// the RMW recorder contract is enforced.

#include <gtest/gtest.h>

#include "src/chaos/history.h"

namespace xenic::chaos {
namespace {

constexpr store::TableId kT = 0;
const TableKey kX{kT, 1};
const TableKey kY{kT, 2};

TxnObservation Rmw(std::map<TableKey, store::Seq> reads, std::set<TableKey> writes) {
  TxnObservation obs;
  obs.reads = std::move(reads);
  obs.writes = std::move(writes);
  return obs;
}

TEST(HistoryCheckerTest, EmptyHistoryPasses) {
  const CheckResult r = CheckSerializability({});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.txns, 0u);
  EXPECT_EQ(r.edges, 0u);
}

TEST(HistoryCheckerTest, SerialChainPasses) {
  // x: load(1) -> T0 -> T1 -> T2; each reads the prior version.
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 1}}, {kX}),
      Rmw({{kX, 2}}, {kX}),
      Rmw({{kX, 3}}, {kX}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_EQ(r.txns, 3u);
  // T0->T1 and T1->T2, each seen as both a wr and a ww edge.
  EXPECT_GE(r.edges, 2u);
  EXPECT_EQ(r.version_gaps, 0u);
}

TEST(HistoryCheckerTest, ReadOnlyObserverPasses) {
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 1}}, {kX}),
      Rmw({{kX, 2}}, {}),  // reads T0's write, writes nothing
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok());
}

TEST(HistoryCheckerTest, LostUpdateIsFlagged) {
  // Both read version 1 of x and both committed a write: one update is lost.
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 1}}, {kX}),
      Rmw({{kX, 1}}, {kX}),
  };
  const CheckResult r = CheckSerializability(h);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("lost update"), std::string::npos);
}

TEST(HistoryCheckerTest, WriteSkewCycleIsFlagged) {
  // T0 reads {x@1, y@1}, writes x; T1 reads {x@1, y@1}, writes y.
  // rw: T0 -> T1 (T0 read y@1, T1 produced y@2) and T1 -> T0 -- a cycle,
  // with no lost update since they wrote disjoint keys.
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 1}, {kY, 1}}, {kX}),
      Rmw({{kX, 1}, {kY, 1}}, {kY}),
  };
  const CheckResult r = CheckSerializability(h);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("cycle"), std::string::npos);
}

TEST(HistoryCheckerTest, VersionGapFromRecoveredWriterIsTolerated) {
  // T0 reads x@4: versions 2..4 were produced by transactions recovery
  // rolled forward after their coordinator died, so no observation was ever
  // recorded for them. That is a gap, not a violation.
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 4}}, {kX}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.version_gaps, 1u);
}

TEST(HistoryCheckerTest, ReadOfInitialLoadIsNotAGap) {
  const std::vector<TxnObservation> h = {
      Rmw({{kX, 1}}, {kX}),
  };
  const CheckResult r = CheckSerializability(h);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.version_gaps, 0u);
}

TEST(HistoryCheckerTest, BlindWriteViolatesRecorderContract) {
  // The recorder only instruments read-modify-write transactions; a write
  // with no matching read means the harness recorded garbage.
  TxnObservation obs;
  obs.writes.insert(kX);
  const CheckResult r = CheckSerializability({obs});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.violations.front().find("without reading"), std::string::npos);
}

}  // namespace
}  // namespace xenic::chaos
