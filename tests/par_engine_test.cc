// Parallel (multi-LP) engine tests: conservative-lookahead correctness and
// the byte-identical-for-any---engine-jobs contract (ctest label `par`).
//
// The workload here is a PHOLD-style message-passing topology: every LP
// carries a private LCG stream and a set of self-rescheduling chains; each
// firing mixes the LP digest, then hops either locally (short delay) or to
// another LP at >= the lookahead horizon. The run's digest -- a fold of
// per-LP state in LP order -- is a pure function of the schedule, so any
// dependence on worker count or thread timing shows up as a digest diff.

#include "src/sim/engine.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/lp_trace.h"

namespace xenic::sim {
namespace {

constexpr Tick kLookahead = 850;

// Deterministic per-LP stream (the "own RNG stream per LP" the partitioning
// contract requires: consumed only by that LP's events).
struct LpState {
  uint64_t lcg;
  uint64_t digest = 0;
  uint64_t fires = 0;

  uint64_t Next() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  }
};

struct Topology {
  Engine engine;
  std::vector<LpState> lps;

  explicit Topology(uint32_t num_lps, uint32_t jobs) {
    engine.ConfigureLps(num_lps, kLookahead);
    engine.set_engine_jobs(jobs);
    lps.resize(num_lps);
    for (uint32_t i = 0; i < num_lps; ++i) {
      lps[i].lcg = 0x9e3779b97f4a7c15ull ^ (uint64_t{i} << 32);
    }
  }

  void Fire(uint32_t lp) {
    LpState& st = lps[lp];
    st.fires++;
    const uint64_t r = st.Next();
    st.digest = (st.digest * 31) ^ r ^ engine.now();
    EXPECT_EQ(engine.current_lp(), lp);
    // 1-in-4 hops to another LP (at >= lookahead); otherwise a short local
    // delay that keeps several events per LP inside each epoch window.
    if ((r & 3) == 0 && lps.size() > 1) {
      const uint32_t dst = static_cast<uint32_t>(r >> 8) % static_cast<uint32_t>(lps.size());
      const Tick at = engine.now() + kLookahead + (r >> 40) % 512;
      engine.ScheduleAtLp(dst, at, [this, dst] { Fire(dst); });
    } else {
      engine.ScheduleAfter(1 + (r >> 40) % 400, [this, lp] { Fire(lp); });
    }
  }

  // Seed `chains` initial events per LP from the main thread and run to the
  // horizon. Returns the run digest.
  uint64_t Run(uint32_t chains, Tick horizon) {
    for (uint32_t lp = 0; lp < lps.size(); ++lp) {
      for (uint32_t c = 0; c < chains; ++c) {
        engine.ScheduleAtLp(lp, 1 + c, [this, lp] { Fire(lp); });
      }
    }
    engine.RunUntil(horizon);
    uint64_t digest = 0;
    for (const LpState& st : lps) {
      digest = digest * 1000003 + (st.digest ^ st.fires);
    }
    return digest;
  }
};

TEST(ParEngineTest, SingleLpConfigureIsSerial) {
  Engine eng;
  eng.ConfigureLps(1, 0);
  EXPECT_FALSE(eng.sharded());
  EXPECT_EQ(eng.num_lps(), 1u);
  int runs = 0;
  eng.ScheduleAt(5, [&] { runs++; });
  EXPECT_TRUE(eng.Step());
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(eng.now(), 5u);
}

TEST(ParEngineTest, ByteIdenticalAcrossEngineJobs) {
  // The contract the whole PR exists for: same LP partition => identical
  // execution for every worker count, including re-runs.
  const uint32_t kLps = 8;
  const Tick kHorizon = 200 * kNsPerUs;
  uint64_t expected_digest = 0;
  uint64_t expected_events = 0;
  uint64_t expected_epochs = 0;
  uint64_t expected_cp = 0;
  bool first = true;
  for (uint32_t jobs : {1u, 2u, 8u, 8u}) {
    Topology topo(kLps, jobs);
    const uint64_t digest = topo.Run(/*chains=*/4, kHorizon);
    if (first) {
      expected_digest = digest;
      expected_events = topo.engine.events_executed();
      expected_epochs = topo.engine.barrier_epochs();
      expected_cp = topo.engine.critical_path_events();
      first = false;
      EXPECT_GT(expected_events, 10000u);
      EXPECT_GT(expected_epochs, 0u);
    } else {
      EXPECT_EQ(digest, expected_digest) << "jobs=" << jobs;
      EXPECT_EQ(topo.engine.events_executed(), expected_events) << "jobs=" << jobs;
      EXPECT_EQ(topo.engine.barrier_epochs(), expected_epochs) << "jobs=" << jobs;
      EXPECT_EQ(topo.engine.critical_path_events(), expected_cp) << "jobs=" << jobs;
    }
  }
}

TEST(ParEngineTest, CriticalPathBoundsParallelism) {
  Topology topo(16, 2);
  topo.Run(/*chains=*/4, 100 * kNsPerUs);
  const uint64_t total = topo.engine.events_executed();
  const uint64_t cp = topo.engine.critical_path_events();
  ASSERT_GT(cp, 0u);
  // The critical path can't exceed the total, and with 16 busy LPs the
  // available parallelism (total/cp) should be well above 2x.
  EXPECT_LE(cp, total);
  EXPECT_GT(static_cast<double>(total) / static_cast<double>(cp), 2.0);
}

TEST(ParEngineTest, CrossLpTieBreakIsSourceLpThenSeq) {
  // Three LPs all send to LP 0 at the SAME destination time; LP 2 sends two
  // messages. Merge order must be (time, src LP, src seq): 1a, 2a, 2b --
  // regardless of the order the epoch executed the senders in.
  Engine eng;
  eng.ConfigureLps(3, kLookahead);
  std::vector<std::string> order;
  const Tick at = 10 + kLookahead + 100;
  eng.ScheduleAtLp(2, 10, [&] {
    eng.ScheduleAtLp(0, at, [&] { order.push_back("2a"); });
    eng.ScheduleAtLp(0, at, [&] { order.push_back("2b"); });
  });
  eng.ScheduleAtLp(1, 10, [&] {
    eng.ScheduleAtLp(0, at, [&] { order.push_back("1a"); });
  });
  eng.Run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "1a");
  EXPECT_EQ(order[1], "2a");
  EXPECT_EQ(order[2], "2b");
}

TEST(ParEngineTest, CrossLpPreservesPerSenderFifoAtEqualTimes) {
  Engine eng;
  eng.ConfigureLps(2, kLookahead);
  std::vector<int> order;
  const Tick at = 5 + kLookahead;
  eng.ScheduleAtLp(1, 5, [&] {
    for (int i = 0; i < 8; ++i) {
      eng.ScheduleAtLp(0, at, [&order, i] { order.push_back(i); });
    }
  });
  eng.Run();
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParEngineTest, RunUntilAdvancesEveryLpClock) {
  Engine eng;
  eng.ConfigureLps(4, kLookahead);
  int fired = 0;
  eng.ScheduleAtLp(2, 100, [&] { fired++; });
  const uint64_t n = eng.RunUntil(50 * kNsPerUs);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(fired, 1);
  for (uint32_t lp = 0; lp < 4; ++lp) {
    EXPECT_EQ(eng.lp_now(lp), 50 * kNsPerUs);
  }
  EXPECT_EQ(eng.now(), 50 * kNsPerUs);
  // Events at exactly the RunUntil bound execute (serial contract kept).
  eng.ScheduleAtLp(1, 60 * kNsPerUs, [&] { fired++; });
  eng.RunUntil(60 * kNsPerUs);
  EXPECT_EQ(fired, 2);
}

TEST(ParEngineTest, PerLpCountersAndMainThreadScheduling) {
  Engine eng;
  eng.ConfigureLps(2, kLookahead);
  eng.set_engine_jobs(2);
  EXPECT_EQ(eng.current_lp(), Engine::kNoLp);
  int a = 0;
  int b = 0;
  eng.ScheduleAtLp(0, 10, [&] { a++; });
  eng.ScheduleAtLp(1, 10, [&] { b++; });
  // Plain ScheduleAt from the main thread lands on LP 0.
  eng.ScheduleAt(20, [&] { a += 10; });
  eng.Run();
  EXPECT_EQ(a, 11);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(eng.lp_events_executed(0), 2u);
  EXPECT_EQ(eng.lp_events_executed(1), 1u);
  EXPECT_EQ(eng.events_executed(), 3u);
  EXPECT_EQ(eng.current_lp(), Engine::kNoLp);
}

TEST(ParEngineTest, WorkerPoolSurvivesJobsResizeAndReuse) {
  // Same engine across several Run calls with different worker counts:
  // the pool rebuilds without losing determinism.
  Topology topo(4, 1);
  uint64_t d1 = topo.Run(2, 40 * kNsPerUs);
  topo.engine.set_engine_jobs(3);
  topo.engine.RunFor(40 * kNsPerUs);
  topo.engine.set_engine_jobs(8);
  topo.engine.RunFor(40 * kNsPerUs);

  Topology ref(4, 1);
  uint64_t r1 = ref.Run(2, 40 * kNsPerUs);
  ref.engine.RunFor(40 * kNsPerUs);
  ref.engine.RunFor(40 * kNsPerUs);
  EXPECT_EQ(d1, r1);
  uint64_t dig = 0;
  uint64_t rdig = 0;
  for (size_t i = 0; i < 4; ++i) {
    dig = dig * 1000003 + (topo.lps[i].digest ^ topo.lps[i].fires);
    rdig = rdig * 1000003 + (ref.lps[i].digest ^ ref.lps[i].fires);
  }
  EXPECT_EQ(dig, rdig);
  EXPECT_EQ(topo.engine.events_executed(), ref.engine.events_executed());
}

// Trace-context propagation across LP boundaries: the sender's context is
// restored at the destination (per-LP ctx state, per-LP sinks).
class CtxProbeSink : public TraceSink {
 public:
  uint32_t RegisterTrack(const std::string&, const std::string&) override { return 0; }
  void Span(uint32_t, const char*, Tick, Tick, uint64_t) override {}
  void Instant(uint32_t, const char*, Tick, uint64_t) override {}
};

TEST(ParEngineTest, TraceContextCrossesLpBoundary) {
  Engine eng;
  eng.ConfigureLps(2, kLookahead);
  CtxProbeSink sink0;
  CtxProbeSink sink1;
  eng.set_lp_trace(0, &sink0);
  eng.set_lp_trace(1, &sink1);
  uint64_t seen_remote = 0;
  uint64_t seen_local_after = 0;
  eng.ScheduleAtLp(0, 10, [&] {
    eng.set_trace_ctx(42);
    eng.ScheduleAtLp(1, 10 + kLookahead, [&] { seen_remote = eng.trace_ctx(); });
    eng.ScheduleAfter(5, [&] { seen_local_after = eng.trace_ctx(); });
  });
  eng.Run();
  EXPECT_EQ(seen_remote, 42u);       // ctx rode the cross-LP message
  EXPECT_EQ(seen_local_after, 42u);  // and the local capture still works
}

// Per-LP sinks merge deterministically: each LP's span stream is
// identical for any worker count (no locking, no cross-thread writes), so
// LpTraceSet's merged JSON must be byte-identical across --engine-jobs --
// with real spans in it, and with the same event count as an untraced
// run. Chains hop between 4 LPs; every hop emits a span into the current
// LP's own sink through the engine's per-shard trace() dispatch.
TEST(ParEngineTest, LpTraceSetMergesByteIdenticallyAcrossJobs) {
  auto run = [](uint32_t jobs, std::string* json, size_t* span_count, uint64_t* events) {
    Engine eng;
    eng.ConfigureLps(4, kLookahead);
    eng.set_engine_jobs(jobs);
    obs::LpTraceSet traces(&eng);
    struct LpState {
      uint32_t track = ~uint32_t{0};
      uint64_t lcg = 0;
      uint64_t hops = 0;
    };
    auto lps = std::make_shared<std::vector<LpState>>(4);
    for (int i = 0; i < 4; ++i) {
      (*lps)[i].lcg = 1234567 + i;
    }
    auto fire = std::make_shared<std::function<void(uint32_t)>>();
    *fire = [&eng, lps, fire](uint32_t lp) {
      LpState& st = (*lps)[lp];
      TraceSink* sink = eng.trace();  // this LP's own sink
      ASSERT_NE(sink, nullptr);
      if (st.track == ~uint32_t{0}) {
        st.track = sink->RegisterTrack("worker", "ops");
      }
      st.lcg = st.lcg * 6364136223846793005ull + 1442695040888963407ull;
      const uint64_t r = st.lcg >> 33;
      const Tick now = eng.now();
      sink->Span(st.track, "op", now, now + 10, (r | 1));
      if (++st.hops >= 200) {
        return;  // retire this chain
      }
      if (r % 3 == 0) {
        const uint32_t dst = (lp + 1) % 4;
        eng.ScheduleAtLp(dst, now + kLookahead + r % 100, [fire, dst] { (*fire)(dst); });
      } else {
        eng.ScheduleAfter(1 + r % 200, [fire, lp] { (*fire)(lp); });
      }
    };
    for (uint32_t lp = 0; lp < 4; ++lp) {
      eng.ScheduleAtLp(lp, 1 + lp, [fire, lp] { (*fire)(lp); });
    }
    eng.Run();
    traces.Detach();
    *json = traces.MergedJson();
    *span_count = traces.num_events();
    *events = eng.events_executed();
  };

  std::string ref_json;
  size_t ref_spans = 0;
  uint64_t ref_events = 0;
  run(1, &ref_json, &ref_spans, &ref_events);
  EXPECT_GT(ref_spans, 100u);
  EXPECT_NE(ref_json.find("lp3.worker"), std::string::npos);
  for (uint32_t jobs : {2u, 8u}) {
    std::string json;
    size_t spans = 0;
    uint64_t events = 0;
    run(jobs, &json, &spans, &events);
    EXPECT_EQ(events, ref_events) << "jobs " << jobs;
    EXPECT_EQ(spans, ref_spans) << "jobs " << jobs;
    EXPECT_EQ(json, ref_json) << "jobs " << jobs;  // byte-identical merge
  }
}

TEST(ParEngineTest, DetachedScheduleDropsContextOnLp) {
  Engine eng;
  eng.ConfigureLps(2, kLookahead);
  CtxProbeSink sink;
  eng.set_lp_trace(0, &sink);
  uint64_t seen = 99;
  eng.ScheduleAtLp(0, 10, [&] {
    eng.set_trace_ctx(7);
    eng.ScheduleDetachedAfter(5, [&] { seen = eng.trace_ctx(); });
  });
  eng.Run();
  EXPECT_EQ(seen, 0u);  // ambient timer: no inherited transaction identity
}

}  // namespace
}  // namespace xenic::sim
