// End-to-end tests of the chaos harness: benign runs pass every audit,
// verdicts are deterministic functions of (config, seed, epoch), fault
// plans replay byte-for-byte, and the registered crash-mid-commit schedule
// exercises both recovery paths (roll-forward and discard) while the
// serializability checker passes on the surviving history.

#include <gtest/gtest.h>

#include "src/chaos/chaos_run.h"

namespace xenic::chaos {
namespace {

FaultSpec DefaultMix() {
  FaultSpec f;
  f.crashes = 1;
  f.eviction_storms = 2;
  f.stall_windows = 1;
  f.drop_prob = 0.01;
  f.dup_prob = 0.01;
  f.delay_prob = 0.02;
  return f;
}

TEST(ChaosRunTest, BenignRunPassesEveryAudit) {
  ChaosConfig config;
  config.seed = 1;
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_GT(v.committed, 0u);
  EXPECT_EQ(v.unfinished, 0u);
  EXPECT_EQ(v.actual_total, v.expected_total);
  EXPECT_EQ(v.check.version_gaps, 0u);  // nothing recovered behind the recorder
  EXPECT_EQ(v.faults.crashes, 0u);
}

TEST(ChaosRunTest, VerdictIsDeterministic) {
  ChaosConfig config;
  config.seed = 5;
  config.faults = DefaultMix();
  const ChaosVerdict a = RunChaos(config);
  const ChaosVerdict b = RunChaos(config);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(a.events_executed, 0u);
}

TEST(ChaosRunTest, EpochSelectsADifferentSchedule) {
  ChaosConfig config;
  config.seed = 5;
  config.faults = DefaultMix();
  const ChaosVerdict e1 = RunChaos(config);
  config.epoch = 2;
  const ChaosVerdict e2 = RunChaos(config);
  EXPECT_NE(e1.events_executed, e2.events_executed);
}

TEST(ChaosRunTest, FaultPlanReplaysByteForByte) {
  FaultSpec spec = DefaultMix();
  const FaultPlan a = FaultPlan::Generate(42, 7, spec, 6, 600 * sim::kNsPerUs);
  const FaultPlan b = FaultPlan::Generate(42, 7, spec, 6, 600 * sim::kNsPerUs);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 4u);  // 1 crash + 2 storms + 1 stall
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
  const FaultPlan c = FaultPlan::Generate(43, 7, spec, 6, 600 * sim::kNsPerUs);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.events.size(), c.events.size()); ++i) {
    differs = differs || a.events[i].at != c.events[i].at || a.events[i].node != c.events[i].node;
  }
  EXPECT_TRUE(differs) << "seed is not feeding the plan";
}

// The acceptance schedule registered in ctest as chaos_both_recovery_paths:
// seed 15 with two stall windows crashes a node mid-commit with in-doubt
// records parked behind a stalled log, and recovery must roll some forward
// (provably replicated or reported committed) and discard the rest.
TEST(ChaosRunTest, CrashScheduleExercisesBothRecoveryPaths) {
  ChaosConfig config;
  config.seed = 15;
  config.faults = DefaultMix();
  config.faults.stall_windows = 2;
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_EQ(v.faults.crashes, 1u);
  EXPECT_GT(v.faults.rolled_forward, 0u);
  EXPECT_GT(v.faults.discarded, 0u);
}

TEST(ChaosRunTest, BaselineSkipsCrashesButTakesWireFaults) {
  ChaosConfig config;
  config.seed = 2;
  config.system.kind = harness::SystemConfig::Kind::kBaseline;
  config.system.mode = baseline::BaselineMode::kDrtmH;
  config.faults = DefaultMix();
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_EQ(v.faults.crashes, 0u);
  EXPECT_EQ(v.faults.crashes_skipped, 1u);
  EXPECT_GT(v.frames_delayed + v.frames_duplicated, 0u);
  EXPECT_EQ(v.unfinished, 0u);
}

}  // namespace
}  // namespace xenic::chaos
