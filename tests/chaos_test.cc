// End-to-end tests of the chaos harness: benign runs pass every audit,
// verdicts are deterministic functions of (config, seed, epoch), fault
// plans replay byte-for-byte, and the registered crash-mid-commit schedule
// exercises both recovery paths (roll-forward and discard) while the
// serializability checker passes on the surviving history.

#include <gtest/gtest.h>

#include "src/chaos/chaos_run.h"

namespace xenic::chaos {
namespace {

FaultSpec DefaultMix() {
  FaultSpec f;
  f.crashes = 1;
  f.eviction_storms = 2;
  f.stall_windows = 1;
  f.drop_prob = 0.01;
  f.dup_prob = 0.01;
  f.delay_prob = 0.02;
  return f;
}

TEST(ChaosRunTest, BenignRunPassesEveryAudit) {
  ChaosConfig config;
  config.seed = 1;
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_GT(v.committed, 0u);
  EXPECT_EQ(v.unfinished, 0u);
  EXPECT_EQ(v.actual_total, v.expected_total);
  EXPECT_EQ(v.check.version_gaps, 0u);  // nothing recovered behind the recorder
  EXPECT_EQ(v.faults.crashes, 0u);
}

TEST(ChaosRunTest, VerdictIsDeterministic) {
  ChaosConfig config;
  config.seed = 5;
  config.faults = DefaultMix();
  const ChaosVerdict a = RunChaos(config);
  const ChaosVerdict b = RunChaos(config);
  EXPECT_EQ(a.Summary(), b.Summary());
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_GT(a.events_executed, 0u);
}

TEST(ChaosRunTest, EpochSelectsADifferentSchedule) {
  ChaosConfig config;
  config.seed = 5;
  config.faults = DefaultMix();
  const ChaosVerdict e1 = RunChaos(config);
  config.epoch = 2;
  const ChaosVerdict e2 = RunChaos(config);
  EXPECT_NE(e1.events_executed, e2.events_executed);
}

TEST(ChaosRunTest, FaultPlanReplaysByteForByte) {
  FaultSpec spec = DefaultMix();
  const FaultPlan a = FaultPlan::Generate(42, 7, spec, 6, 600 * sim::kNsPerUs);
  const FaultPlan b = FaultPlan::Generate(42, 7, spec, 6, 600 * sim::kNsPerUs);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_EQ(a.events.size(), 4u);  // 1 crash + 2 storms + 1 stall
  for (size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
  const FaultPlan c = FaultPlan::Generate(43, 7, spec, 6, 600 * sim::kNsPerUs);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.events.size(), c.events.size()); ++i) {
    differs = differs || a.events[i].at != c.events[i].at || a.events[i].node != c.events[i].node;
  }
  EXPECT_TRUE(differs) << "seed is not feeding the plan";
}

// The acceptance schedule registered in ctest as chaos_both_recovery_paths:
// seed 15 with two stall windows crashes a node mid-commit with in-doubt
// records parked behind a stalled log, and recovery must roll some forward
// (provably replicated or reported committed) and discard the rest.
TEST(ChaosRunTest, CrashScheduleExercisesBothRecoveryPaths) {
  ChaosConfig config;
  config.seed = 15;
  config.faults = DefaultMix();
  config.faults.stall_windows = 2;
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_EQ(v.faults.crashes, 1u);
  EXPECT_GT(v.faults.rolled_forward, 0u);
  EXPECT_GT(v.faults.discarded, 0u);
}

TEST(ChaosRunTest, BaselineSkipsCrashesButTakesWireFaults) {
  ChaosConfig config;
  config.seed = 2;
  config.system.kind = harness::SystemConfig::Kind::kBaseline;
  config.system.mode = baseline::BaselineMode::kDrtmH;
  config.faults = DefaultMix();
  const ChaosVerdict v = RunChaos(config);
  EXPECT_TRUE(v.ok()) << v.Summary();
  EXPECT_EQ(v.faults.crashes, 0u);
  EXPECT_EQ(v.faults.crashes_skipped, 1u);
  EXPECT_GT(v.frames_delayed + v.frames_duplicated, 0u);
  EXPECT_EQ(v.unfinished, 0u);
}

// Regression for the --timeline final-partial-window bug: with a run
// length (horizon + drain) that is not a multiple of the bin width, the
// bin layout used to overhang the run end (floor-count + 1 full-width
// bins) and post-drain audit completions were clamped into the final bin,
// inflating the short window's rate. Bins must tile exactly [0, run_end]
// with a truthfully narrower final bin, and nothing past the drain may be
// recorded. The timeline is pure observation, so the verdict must match a
// run with the feature off.
TEST(ChaosRunTest, TimelineFinalPartialWindowTilesRunExactly) {
  ChaosConfig config;
  config.seed = 5;
  config.faults = DefaultMix();
  config.timeline = true;
  config.timeline_window = 70 * sim::kNsPerUs;  // 800us run -> 12 bins, last one 30us
  const sim::Tick run_end = config.horizon + config.drain;
  ASSERT_NE(run_end % config.timeline_window, 0u);  // the schedule really is partial
  const ChaosVerdict v = RunChaos(config);
  ASSERT_EQ(v.timeline.size(), (run_end + config.timeline_window - 1) / config.timeline_window);
  sim::Tick expect_start = 0;
  uint64_t binned = 0;
  for (const auto& b : v.timeline) {
    EXPECT_EQ(b.start, expect_start);
    EXPECT_GT(b.width, 0u);
    EXPECT_LE(b.width, config.timeline_window);
    EXPECT_LE(b.start + b.width, run_end);  // no bin overhangs the run
    expect_start += b.width;
    binned += b.committed;
  }
  EXPECT_EQ(expect_start, run_end);  // bins tile the run exactly
  EXPECT_LT(v.timeline.back().width, config.timeline_window);
  EXPECT_GT(binned, 0u);
  EXPECT_LE(binned, v.committed);  // audit-phase completions stay un-binned

  ChaosConfig plain = config;
  plain.timeline = false;
  const ChaosVerdict p = RunChaos(plain);
  EXPECT_EQ(v.Summary(), p.Summary());
  EXPECT_EQ(v.events_executed, p.events_executed);
}

}  // namespace
}  // namespace xenic::chaos
