// Property tests for the NIC caching index under host-table churn: remote
// lookups must always find every live key regardless of hint staleness,
// hints must remain upper bounds after refresh, and cost receipts must stay
// bounded. Parameterized over displacement limits and cache budgets.

#include <gtest/gtest.h>

#include <unordered_set>

#include "src/common/rng.h"
#include "src/store/nic_index.h"

namespace xenic::store {
namespace {

struct Param {
  uint16_t dm;
  uint64_t budget;
  bool cache_values;
};

class NicIndexChurnTest : public ::testing::TestWithParam<Param> {};

TEST_P(NicIndexChurnTest, LookupsCompleteUnderChurn) {
  const Param p = GetParam();
  RobinhoodTable::Options o;
  o.capacity_log2 = 11;
  o.value_size = 24;
  o.max_displacement = p.dm;
  RobinhoodTable host(o);
  NicIndex::Options no;
  no.memory_budget = p.budget;
  no.cache_values = p.cache_values;
  no.admit_on_load = false;
  NicIndex index(&host, no);

  Rng rng(1000 + p.dm);
  std::vector<Key> live;
  const auto target = static_cast<size_t>(0.85 * static_cast<double>(host.capacity()));
  uint64_t lookups = 0;
  uint64_t max_reads = 0;

  for (int step = 0; step < 30000; ++step) {
    const double roll = rng.NextDouble();
    if (live.size() < target && roll < 0.45) {
      const Key k = rng.Next();
      Value v(24, static_cast<uint8_t>(k));
      if (host.Insert(k, v).ok()) {
        live.push_back(k);
      }
    } else if (!live.empty() && roll < 0.6) {
      const size_t i = rng.NextBounded(live.size());
      // Updates bump the version; the NIC's cached copy goes stale and the
      // metadata path must still return the HOST's view when uncached...
      // (in the full system the commit protocol keeps them coherent; here
      // we emulate host-side maintenance, so drop the cached copy first).
      host.Update(live[i], Value(24, static_cast<uint8_t>(step)));
    } else if (!live.empty() && roll < 0.7) {
      const size_t i = rng.NextBounded(live.size());
      ASSERT_TRUE(host.Erase(live[i]).ok());
      live[i] = live.back();
      live.pop_back();
    } else if (!live.empty()) {
      // Remote lookup of a random live key: must be found.
      const Key k = live[rng.NextBounded(live.size())];
      // The cache is not maintained by a commit protocol in this test, so
      // only consult the host structure (metadata reads bypass values).
      NicIndex::LookupStats st;
      std::optional<NicIndex::RemoteObject> r;
      if (p.cache_values) {
        // Cached values may be stale relative to direct host Update()
        // calls (no protocol here), but the key must still be FOUND.
        r = index.LookupRemote(k, &st);
      } else {
        r = index.ReadMetadata(k, &st);
      }
      ASSERT_TRUE(r.has_value()) << "lost key " << k << " at step " << step;
      lookups++;
      max_reads = std::max<uint64_t>(max_reads, st.dma_reads);
      if (!st.cache_hit) {
        EXPECT_GE(st.dma_reads, 1u);
        EXPECT_GT(st.objects_read, 0u);
      }
    }
    if (step % 5000 == 4999) {
      index.SyncHintsFromHost();
      // Hints must upper-bound every key's displacement after a sync.
      std::vector<uint8_t> region;
      host.ReadRegion(0, host.capacity(), region);
      for (size_t s = 0; s < host.capacity(); ++s) {
        SlotView view(region.data() + s * host.slot_size(),
                      host.slot_size() - sizeof(SlotHeader));
        if (view.occupied()) {
          const size_t seg = host.SegmentOfKey(view.key());
          ASSERT_GE(index.HintOf(seg), std::min<uint16_t>(view.disp(), host.max_displacement()));
        }
      }
    }
  }
  ASSERT_GT(lookups, 1000u);
  // Cost receipts stay bounded: worst case is first read + adjacent chunks
  // + overflow + large hop; for these parameters, a handful.
  EXPECT_LE(max_reads, 8u);
  if (p.budget != 0) {
    EXPECT_LE(index.cached_bytes(), p.budget + 512);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, NicIndexChurnTest,
                         ::testing::Values(Param{8, 0, false}, Param{16, 0, false},
                                           Param{0, 0, false}, Param{8, 8192, true},
                                           Param{32, 64 * 1024, true}),
                         [](const ::testing::TestParamInfo<Param>& info) {
                           return "dm" + std::to_string(info.param.dm) + "_budget" +
                                  std::to_string(info.param.budget / 1024) + "k" +
                                  (info.param.cache_values ? "_cached" : "_meta");
                         });

}  // namespace
}  // namespace xenic::store
