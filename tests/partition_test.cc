// LP partitioning tests (ctest label `par`): balanced contiguous blocks,
// lookahead derivation from the perf model, and replica-chain locality.

#include "src/harness/partition.h"

#include "gtest/gtest.h"

namespace xenic::harness {
namespace {

TEST(PartitionTest, BalancedContiguousBlocks) {
  for (uint32_t nodes : {1u, 6u, 24u, 96u, 97u}) {
    for (uint32_t target : {1u, 2u, 8u, 32u, 200u}) {
      const LpPartition part = PartitionNodes(nodes, target);
      ASSERT_EQ(part.lp_of_node.size(), nodes);
      EXPECT_EQ(part.num_lps, std::min(target, nodes));
      std::vector<uint32_t> sizes(part.num_lps, 0);
      uint32_t prev = 0;
      for (uint32_t n = 0; n < nodes; ++n) {
        const uint32_t lp = part.NodeLp(n);
        ASSERT_LT(lp, part.num_lps);
        EXPECT_GE(lp, prev) << "mapping must be monotone (contiguous blocks)";
        prev = lp;
        sizes[lp]++;
      }
      uint32_t mn = nodes;
      uint32_t mx = 0;
      for (uint32_t s : sizes) {
        EXPECT_GT(s, 0u) << "no empty LP";
        mn = std::min(mn, s);
        mx = std::max(mx, s);
      }
      EXPECT_LE(mx - mn, 1u) << "balanced within one node";
    }
  }
}

TEST(PartitionTest, ZeroTargetMeansSingleLp) {
  const LpPartition part = PartitionNodes(6, 0);
  EXPECT_EQ(part.num_lps, 1u);
  for (uint32_t lp : part.lp_of_node) {
    EXPECT_EQ(lp, 0u);
  }
}

TEST(PartitionTest, DeriveLookaheadIsWireLatency) {
  net::PerfModel model;
  EXPECT_EQ(DeriveLookahead(model), model.wire_latency);
  model.wire_latency = 1234;
  EXPECT_EQ(DeriveLookahead(model), 1234u);
}

TEST(PartitionTest, PartitionClusterStampsLookahead) {
  txn::ClusterMap map;
  map.num_nodes = 24;
  map.replication = 3;
  const LpPartition part = PartitionCluster(map, 8, 850);
  EXPECT_EQ(part.num_lps, 8u);
  EXPECT_EQ(part.lookahead, 850u);
  // A single-LP partition needs no lookahead (serial execution).
  const LpPartition serial = PartitionCluster(map, 1, 850);
  EXPECT_EQ(serial.num_lps, 1u);
  EXPECT_EQ(serial.lookahead, 0u);
}

TEST(PartitionTest, ChainLocalityOfContiguousBlocks) {
  txn::ClusterMap map;
  map.num_nodes = 24;
  map.replication = 3;
  // 8 LPs of 3 nodes: each block boundary splits (replication - 1) = 2
  // chains, so 24 - 8*2 = 8 of 24 chains stay local.
  const LpPartition part = PartitionNodes(24, 8);
  EXPECT_NEAR(LocalChainFraction(map, part), 8.0 / 24.0, 1e-9);
  // Coarser partition, better locality: 4 LPs of 6 -> 16/24 local.
  EXPECT_NEAR(LocalChainFraction(map, PartitionNodes(24, 4)), 16.0 / 24.0, 1e-9);
  // Single LP: everything local.
  EXPECT_NEAR(LocalChainFraction(map, PartitionNodes(24, 1)), 1.0, 1e-9);
}

}  // namespace
}  // namespace xenic::harness
