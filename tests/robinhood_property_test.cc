// Property-style tests: the Robinhood table against a std::unordered_map
// oracle under random churn, across a parameter sweep of displacement
// limits, value sizes, and occupancies.

#include <gtest/gtest.h>

#include <unordered_map>

#include "src/common/rng.h"
#include "src/store/robinhood_table.h"

namespace xenic::store {
namespace {

struct ChurnParam {
  uint16_t dm;
  size_t value_size;
  double occupancy;
};

class RobinhoodChurnTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(RobinhoodChurnTest, MatchesOracleUnderChurn) {
  const ChurnParam p = GetParam();
  RobinhoodTable::Options o;
  o.capacity_log2 = 10;
  o.value_size = p.value_size;
  o.max_displacement = p.dm;
  RobinhoodTable t(o);
  std::unordered_map<Key, std::pair<Value, Seq>> oracle;
  Rng rng(1234 + p.dm);
  const size_t target = static_cast<size_t>(p.occupancy * t.capacity());

  auto random_value = [&] {
    Value v(p.value_size);
    for (auto& b : v) {
      b = static_cast<uint8_t>(rng.Next());
    }
    return v;
  };

  for (int step = 0; step < 20000; ++step) {
    const double roll = rng.NextDouble();
    if (oracle.size() < target && roll < 0.5) {
      // Insert a fresh key.
      Key k = rng.Next();
      while (oracle.count(k) != 0) {
        k = rng.Next();
      }
      Value v = random_value();
      ASSERT_TRUE(t.Insert(k, v).ok());
      oracle[k] = {v, 1};
    } else if (!oracle.empty() && roll < 0.7) {
      // Update a random existing key.
      auto it = oracle.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.NextBounded(oracle.size()) % 32));
      Value v = random_value();
      ASSERT_TRUE(t.Update(it->first, v).ok());
      it->second.first = v;
      it->second.second++;
    } else if (!oracle.empty() && roll < 0.9) {
      // Erase a random existing key.
      auto it = oracle.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.NextBounded(oracle.size()) % 32));
      ASSERT_TRUE(t.Erase(it->first).ok());
      oracle.erase(it);
    } else {
      // Negative lookup.
      Key k = rng.Next();
      if (oracle.count(k) == 0) {
        EXPECT_FALSE(t.Lookup(k).has_value());
      }
    }

    if (step % 1000 == 999) {
      // Full oracle audit.
      ASSERT_EQ(t.size(), oracle.size());
      for (const auto& [k, vs] : oracle) {
        auto r = t.Lookup(k);
        ASSERT_TRUE(r.has_value()) << "lost key " << k << " at step " << step;
        ASSERT_EQ(r->value, vs.first);
        ASSERT_EQ(r->seq, vs.second);
      }
    }
  }
}

TEST_P(RobinhoodChurnTest, InvariantSurvivesChurn) {
  const ChurnParam p = GetParam();
  RobinhoodTable::Options o;
  o.capacity_log2 = 9;
  o.value_size = p.value_size;
  o.max_displacement = p.dm;
  RobinhoodTable t(o);
  Rng rng(99 + p.dm);
  std::vector<Key> live;
  const size_t target = static_cast<size_t>(p.occupancy * t.capacity());

  auto check_invariant = [&] {
    std::vector<uint8_t> region;
    t.ReadRegion(0, t.capacity(), region);
    const size_t mask = t.capacity() - 1;
    for (size_t s = 0; s < t.capacity(); ++s) {
      SlotView view = t.ViewInRegion(region, s);
      if (!view.occupied()) {
        continue;
      }
      const size_t home = (s - view.disp()) & mask;
      ASSERT_EQ(home, t.HomeSlot(view.key()));
      for (size_t d = 0; d < view.disp(); ++d) {
        SlotView path = t.ViewInRegion(region, (home + d) & mask);
        ASSERT_TRUE(path.occupied());
        ASSERT_GE(path.disp(), d);
      }
    }
  };

  for (int step = 0; step < 4000; ++step) {
    if (live.size() < target && rng.NextBool(0.6)) {
      const Key k = rng.Next();
      if (t.Insert(k, Value(p.value_size, 1)).ok()) {
        live.push_back(k);
      }
    } else if (!live.empty()) {
      const size_t i = rng.NextBounded(live.size());
      ASSERT_TRUE(t.Erase(live[i]).ok());
      live[i] = live.back();
      live.pop_back();
    }
    if (step % 200 == 199) {
      check_invariant();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RobinhoodChurnTest,
    ::testing::Values(ChurnParam{4, 8, 0.5}, ChurnParam{8, 8, 0.85}, ChurnParam{8, 64, 0.9},
                      ChurnParam{16, 16, 0.9}, ChurnParam{32, 8, 0.93}, ChurnParam{0, 8, 0.9},
                      ChurnParam{8, 300, 0.8}),
    [](const ::testing::TestParamInfo<ChurnParam>& info) {
      return "dm" + std::to_string(info.param.dm) + "_v" + std::to_string(info.param.value_size) +
             "_occ" + std::to_string(static_cast<int>(info.param.occupancy * 100));
    });

}  // namespace
}  // namespace xenic::store
