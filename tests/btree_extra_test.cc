// Additional B+tree coverage: boundary keys, dense duplicates of Put,
// interleaved scan-and-mutate patterns, and deep-tree structural checks.

#include <gtest/gtest.h>

#include "src/btree/btree.h"
#include "src/common/rng.h"

namespace xenic::btree {
namespace {

Value V(uint8_t fill) { return Value(8, fill); }

TEST(BTreeExtraTest, BoundaryKeys) {
  BTree t;
  t.Put(0, V(1));
  t.Put(~0ull, V(2));
  EXPECT_EQ(t.Get(0).value(), V(1));
  EXPECT_EQ(t.Get(~0ull).value(), V(2));
  EXPECT_EQ(t.SeekFirst(0)->first, 0u);
  EXPECT_EQ(t.SeekLast(~0ull)->first, ~0ull);
  size_t n = t.Scan(0, ~0ull, [](Key, const Value&) { return true; });
  EXPECT_EQ(n, 2u);
}

TEST(BTreeExtraTest, RepeatedOverwritesKeepSize) {
  BTree t;
  for (int round = 0; round < 50; ++round) {
    for (Key k = 0; k < 100; ++k) {
      t.Put(k, V(static_cast<uint8_t>(round)));
    }
  }
  EXPECT_EQ(t.size(), 100u);
  t.CheckInvariants();
  for (Key k = 0; k < 100; ++k) {
    EXPECT_EQ(t.Get(k).value(), V(49));
  }
}

TEST(BTreeExtraTest, DeepTreeHeightGrowsLogarithmically) {
  BTree t;
  for (Key k = 0; k < 200000; ++k) {
    t.Put(k, V(1));
  }
  t.CheckInvariants();
  // Fanout >= 16 effective: height should stay small.
  EXPECT_LE(t.height(), 6);
  EXPECT_EQ(t.size(), 200000u);
}

TEST(BTreeExtraTest, ScanSeesConsistentSnapshotBetweenMutations) {
  BTree t;
  for (Key k = 0; k < 1000; ++k) {
    t.Put(k * 2, V(1));  // even keys
  }
  // Collect, then mutate, then re-scan.
  std::vector<Key> first;
  t.Scan(0, 2000, [&](Key k, const Value&) {
    first.push_back(k);
    return true;
  });
  for (Key k : first) {
    if (k % 4 == 0) {
      ASSERT_TRUE(t.Erase(k).ok());
    }
  }
  std::vector<Key> second;
  t.Scan(0, 2000, [&](Key k, const Value&) {
    second.push_back(k);
    return true;
  });
  EXPECT_EQ(second.size(), first.size() - (first.size() + 1) / 2);
  for (Key k : second) {
    EXPECT_EQ(k % 4, 2u);
  }
  t.CheckInvariants();
}

TEST(BTreeExtraTest, AlternatingInsertEraseAtSameKeys) {
  BTree t;
  Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const Key k = rng.NextBounded(64);
    if (t.Contains(k)) {
      ASSERT_TRUE(t.Erase(k).ok());
    } else {
      ASSERT_TRUE(t.Insert(k, V(1)).ok());
    }
    if (round % 50 == 49) {
      t.CheckInvariants();
    }
  }
}

TEST(BTreeExtraTest, SeekFirstOnEmptyRanges) {
  BTree t;
  t.Put(100, V(1));
  t.Put(200, V(2));
  EXPECT_FALSE(t.SeekFirst(201).has_value());
  EXPECT_EQ(t.SeekFirst(101)->first, 200u);
  EXPECT_FALSE(t.SeekLast(99).has_value());
  EXPECT_EQ(t.SeekLast(199)->first, 100u);
  size_t n = t.Scan(101, 199, [](Key, const Value&) { return true; });
  EXPECT_EQ(n, 0u);
}

}  // namespace
}  // namespace xenic::btree
