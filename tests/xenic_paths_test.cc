// Path-level tests of the Xenic engine: message/hop accounting for the
// multi-hop optimization, local-to-distributed escalation, locked-read
// aborts, the no-smart-ops lock round, and read-your-log freshness of the
// local fast path.

#include <gtest/gtest.h>

#include "src/txn/xenic_cluster.h"

namespace xenic::txn {
namespace {

using store::GetI64;
using store::PutI64;
using store::PutU64;
using store::Value;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

XenicClusterOptions Opts(uint32_t nodes = 3, uint32_t repl = 2) {
  XenicClusterOptions o;
  o.num_nodes = nodes;
  o.replication = repl;
  o.tables = {store::TableSpec{kBank, "bank", 12, 16, 8, 8}};
  o.workers_per_node = 2;
  return o;
}

store::Key KeyOn(const XenicCluster& c, store::NodeId node, uint64_t salt = 0) {
  for (store::Key k = salt * 100000 + 1;; ++k) {
    if (c.map().PrimaryOf(kBank, k) == node) {
      return k;
    }
  }
}

TxnRequest Transfer(store::Key a, store::Key b, int64_t amt) {
  TxnRequest req;
  req.reads = {{kBank, a}, {kBank, b}};
  req.writes = {{kBank, a}, {kBank, b}};
  req.execute = [amt](ExecRound& er) {
    (*er.writes)[0].value = Balance(GetI64((*er.reads)[0].value, 0) - amt);
    (*er.writes)[1].value = Balance(GetI64((*er.reads)[1].value, 0) + amt);
  };
  return req;
}

void RunToDone(XenicCluster& c, bool* done) {
  for (int i = 0; i < 5000 && !*done; ++i) {
    c.engine().RunFor(10 * sim::kNsPerUs);
  }
  ASSERT_TRUE(*done);
  c.engine().RunFor(1000 * sim::kNsPerUs);
  c.StopWorkers();
  c.engine().Run();
}

TEST(XenicPathsTest, MultiHopUsesFewerMessagesAndLowerLatency) {
  // Same 2-shard transfer, with and without occ_multihop: the shipped path
  // must commit with lower latency (one fewer serial message delay).
  sim::Tick lat[2];
  uint64_t msgs[2];
  for (int multihop = 0; multihop < 2; ++multihop) {
    XenicClusterOptions o = Opts();
    o.features.occ_multihop = multihop == 1;
    HashPartitioner part(3);
    XenicCluster c(o, &part);
    const store::Key a = KeyOn(c, 0);
    const store::Key b = KeyOn(c, 1);
    c.LoadReplicated(kBank, a, Balance(100));
    c.LoadReplicated(kBank, b, Balance(100));
    c.StartWorkers();

    bool done = false;
    const sim::Tick start = c.engine().now();
    sim::Tick end = 0;
    c.node(0).Submit(Transfer(a, b, 5), [&](TxnOutcome out) {
      EXPECT_EQ(out, TxnOutcome::kCommitted);
      end = c.engine().now();
      done = true;
    });
    RunToDone(c, &done);
    lat[multihop] = end - start;
    msgs[multihop] = c.TotalStats().messages;
    if (multihop == 1) {
      EXPECT_EQ(c.node(0).stats().shipped_multihop, 1u);
    }
  }
  EXPECT_LT(lat[1], lat[0]);
  EXPECT_LE(msgs[1], msgs[0]);
}

TEST(XenicPathsTest, LocalTxnEscalatesWhenRemoteKeyDiscovered) {
  HashPartitioner part(3);
  XenicCluster c(Opts(), &part);
  const store::Key local_ptr = KeyOn(c, 0);
  const store::Key remote = KeyOn(c, 1);
  Value pv(16, 0);
  PutU64(pv, 0, remote);
  c.LoadReplicated(kBank, local_ptr, pv);
  c.LoadReplicated(kBank, remote, Balance(321));
  c.StartWorkers();

  int64_t got = -1;
  TxnRequest req;
  req.reads = {{kBank, local_ptr}};
  req.allow_ship = false;
  req.execute = [&got](ExecRound& er) {
    if (er.round == 0) {
      er.add_reads->push_back({kBank, store::GetU64((*er.reads)[0].value, 0)});
      return;
    }
    got = GetI64((*er.reads)[1].value, 0);
  };
  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    EXPECT_EQ(o, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);
  EXPECT_EQ(got, 321);
  // It went over the network (escalated), despite starting local.
  EXPECT_GT(c.node(0).stats().messages, 0u);
}

TEST(XenicPathsTest, ExecuteAbortsOnLockedRead) {
  // A read-set key locked by another transaction aborts EXECUTE (paper
  // 4.2 step 2).
  HashPartitioner part(3);
  XenicCluster c(Opts(), &part);
  const store::Key a = KeyOn(c, 1);
  c.LoadReplicated(kBank, a, Balance(10));
  c.StartWorkers();
  // Simulate a lock held by a stuck transaction.
  ASSERT_TRUE(c.datastore(1).index(kBank).AcquireLock(a, store::MakeTxnId(2, 9)).ok());

  TxnRequest req;
  req.reads = {{kBank, a}};
  req.writes = {};
  req.allow_ship = true;
  req.execute = [](ExecRound&) {};
  // Make it non-local and non-single-shard-read-only so EXECUTE is real:
  const store::Key other = KeyOn(c, 2);
  c.LoadReplicated(kBank, other, Balance(1));
  req.reads.push_back({kBank, other});

  bool done = false;
  c.node(0).Submit(std::move(req), [&](TxnOutcome o) {
    EXPECT_EQ(o, TxnOutcome::kAborted);
    done = true;
  });
  RunToDone(c, &done);
  c.datastore(1).index(kBank).ReleaseLock(a, store::MakeTxnId(2, 9));
}

TEST(XenicPathsTest, NoSmartOpsStillCommitsViaLockRound) {
  XenicClusterOptions o = Opts();
  o.features.smart_remote_ops = false;
  o.features.occ_multihop = false;
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  const store::Key a = KeyOn(c, 1);
  const store::Key b = KeyOn(c, 2);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(100));
  c.StartWorkers();

  bool done = false;
  c.node(0).Submit(Transfer(a, b, 10), [&](TxnOutcome out) {
    EXPECT_EQ(out, TxnOutcome::kCommitted);
    done = true;
  });
  RunToDone(c, &done);
  EXPECT_EQ(GetI64(c.datastore(1).table(kBank).Lookup(a)->value, 0), 90);
  EXPECT_EQ(GetI64(c.datastore(2).table(kBank).Lookup(b)->value, 0), 110);
  // Separate read + lock rounds: strictly more protocol rounds than the
  // combined operation needs.
  EXPECT_GE(c.node(0).stats().remote_rounds, 3u);
}

TEST(XenicPathsTest, LocalPathReadsYourLog) {
  // Two back-to-back local writes to the same key from the same node: the
  // second must observe the first's value even though the worker has not
  // applied it yet (FreshLookup), and must commit without spurious aborts.
  XenicClusterOptions o = Opts(3, 2);
  o.worker_poll_interval = 500 * sim::kNsPerUs;  // glacial workers
  HashPartitioner part(3);
  XenicCluster c(o, &part);
  const store::Key a = KeyOn(c, 0);
  const store::Key b = KeyOn(c, 0, 1);
  c.LoadReplicated(kBank, a, Balance(100));
  c.LoadReplicated(kBank, b, Balance(0));
  c.StartWorkers();

  int committed = 0;
  bool done = false;
  std::function<void(int)> chain = [&](int left) {
    if (left == 0) {
      done = true;
      return;
    }
    c.node(0).Submit(Transfer(a, b, 10), [&, left](TxnOutcome out) {
      ASSERT_EQ(out, TxnOutcome::kCommitted) << "spurious abort at txn " << 5 - left;
      committed++;
      chain(left - 1);
    });
  };
  chain(5);
  RunToDone(c, &done);
  EXPECT_EQ(committed, 5);
  EXPECT_EQ(GetI64(c.datastore(0).table(kBank).Lookup(a)->value, 0), 50);
  EXPECT_EQ(GetI64(c.datastore(0).table(kBank).Lookup(b)->value, 0), 50);
}

}  // namespace
}  // namespace xenic::txn
