// Simulator stress and determinism: heavy randomized event cascades over
// resources and channels must replay identically for a fixed seed, and the
// queueing behaviour must honor conservation laws (every submitted job
// completes exactly once; busy time equals the sum of service demands).

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sim/channel.h"
#include "src/sim/resource.h"

namespace xenic::sim {
namespace {

// Run a randomized workload of interleaved resource jobs, channel sends,
// and chained events; return a fingerprint of the completion order.
uint64_t RunChaos(uint64_t seed, uint64_t* total_busy) {
  Engine eng;
  Resource cores(&eng, "cores", 3);
  Channel link(&eng, "link", 2.0, 75);
  Rng rng(seed);
  uint64_t fingerprint = 14695981039346656037ull;
  uint64_t busy_expected = 0;
  int completions = 0;
  int submitted = 0;

  auto note = [&](uint64_t token) {
    fingerprint = (fingerprint ^ (token + eng.now())) * 1099511628211ull;
    completions++;
  };

  std::function<void(int)> spawn = [&](int depth) {
    if (depth > 3) {
      return;
    }
    const uint64_t kind = rng.NextBounded(3);
    if (kind == 0) {
      const Tick service = 10 + rng.NextBounded(200);
      busy_expected += service;
      submitted++;
      cores.Submit(service, [&, depth] {
        note(1);
        if (rng.NextBool(0.4)) {
          spawn(depth + 1);
        }
      });
    } else if (kind == 1) {
      submitted++;
      link.Send(16 + rng.NextBounded(512), [&, depth] {
        note(2);
        if (rng.NextBool(0.4)) {
          spawn(depth + 1);
        }
      });
    } else {
      submitted++;
      eng.ScheduleAfter(rng.NextBounded(500), [&, depth] {
        note(3);
        if (rng.NextBool(0.4)) {
          spawn(depth + 1);
        }
      });
    }
  };

  for (int i = 0; i < 2000; ++i) {
    spawn(0);
  }
  eng.Run();
  EXPECT_EQ(completions, submitted) << "lost or duplicated completions";
  EXPECT_EQ(cores.busy_time(), busy_expected);
  EXPECT_EQ(cores.busy(), 0u);
  EXPECT_EQ(cores.queue_depth(), 0u);
  if (total_busy != nullptr) {
    *total_busy = busy_expected;
  }
  return fingerprint;
}

TEST(SimStressTest, DeterministicReplay) {
  uint64_t busy1 = 0;
  uint64_t busy2 = 0;
  const uint64_t f1 = RunChaos(12345, &busy1);
  const uint64_t f2 = RunChaos(12345, &busy2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(busy1, busy2);
}

TEST(SimStressTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunChaos(1, nullptr), RunChaos(2, nullptr));
}

TEST(SimStressTest, ConservationAcrossSeeds) {
  for (uint64_t seed : {7ull, 77ull, 777ull}) {
    RunChaos(seed, nullptr);  // EXPECTs inside check conservation
  }
}

}  // namespace
}  // namespace xenic::sim
