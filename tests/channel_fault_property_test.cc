// Property tests for the Channel fault hook.
//
// The core contract (chaos determinism rests on it): a hook that returns
// the default FaultDecision on every send is bit-identical to having no
// hook at all -- same delivery ticks, same delivery order, same byte
// accounting, same Utilization. The remaining tests pin the semantics of
// each fault knob: drops charge the wire but never deliver, duplicates
// charge extra occupancy but deliver nothing, extra delay shifts only the
// faulted frame's propagation.

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/channel.h"

namespace xenic::sim {
namespace {

struct Delivery {
  int id;
  Tick at;
  bool operator==(const Delivery& o) const { return id == o.id && at == o.at; }
};

// Drive `ch` with a seeded mix of back-to-back, gapped, and extra-occupancy
// sends; returns every delivery as (send id, tick).
std::vector<Delivery> DriveSeededTraffic(Engine& e, Channel& ch, uint64_t seed) {
  auto log = std::make_shared<std::vector<Delivery>>();
  Rng rng(seed);
  Tick at = 0;
  for (int id = 0; id < 200; ++id) {
    const uint64_t bytes = 8 + rng.NextBounded(1500);
    const Tick extra = rng.NextBounded(3) == 0 ? rng.NextBounded(20) : 0;
    at += rng.NextBounded(2) == 0 ? 0 : rng.NextBounded(300);
    e.ScheduleAt(at, [&ch, log, &e, id, bytes, extra] {
      ch.Send(bytes, extra, [log, &e, id] { log->push_back({id, e.now()}); });
    });
  }
  e.Run();
  return *log;
}

TEST(ChannelFaultPropertyTest, ZeroProbabilityHookIsBitIdenticalToNoHook) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    Engine plain_engine;
    Channel plain(&plain_engine, "link", 12.5, 100);
    const auto baseline = DriveSeededTraffic(plain_engine, plain, seed);

    Engine hooked_engine;
    Channel hooked(&hooked_engine, "link", 12.5, 100);
    uint64_t hook_calls = 0;
    hooked.set_fault_hook([&hook_calls](uint64_t) {
      hook_calls++;
      return Channel::FaultDecision{};  // identity: no drop, no dup, no delay
    });
    const auto faulted = DriveSeededTraffic(hooked_engine, hooked, seed);

    EXPECT_EQ(baseline, faulted) << "seed " << seed;
    EXPECT_EQ(hook_calls, 200u);
    EXPECT_EQ(plain.bytes_sent(), hooked.bytes_sent());
    EXPECT_EQ(plain.sends(), hooked.sends());
    EXPECT_DOUBLE_EQ(plain.Utilization(10000), hooked.Utilization(10000));
    EXPECT_EQ(hooked.frames_dropped(), 0u);
    EXPECT_EQ(hooked.frames_duplicated(), 0u);
    EXPECT_EQ(hooked.frames_delayed(), 0u);
    EXPECT_EQ(plain_engine.events_executed(), hooked_engine.events_executed());
  }
}

TEST(ChannelFaultPropertyTest, ClearingTheHookRestoresTheFastPath) {
  Engine e;
  Channel ch(&e, "link", 1.0, 10);
  ch.set_fault_hook([](uint64_t) { return Channel::FaultDecision{}; });
  EXPECT_TRUE(ch.has_fault_hook());
  ch.set_fault_hook(nullptr);
  EXPECT_FALSE(ch.has_fault_hook());
  Tick delivered = 0;
  ch.Send(50, [&] { delivered = e.now(); });
  e.Run();
  EXPECT_EQ(delivered, 60u);
}

TEST(ChannelFaultPropertyTest, DropChargesTheWireButNeverDelivers) {
  Engine e;
  Channel ch(&e, "link", 1.0, 10);
  ch.set_fault_hook([](uint64_t) {
    Channel::FaultDecision d;
    d.drop = true;
    return d;
  });
  bool delivered = false;
  ch.Send(100, [&] { delivered = true; });
  Tick second = 0;
  ch.set_fault_hook(nullptr);
  ch.Send(100, [&] { second = e.now(); });
  e.Run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(ch.frames_dropped(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 200u);  // the lost frame still serialized
  // The dropped frame occupied [0,100), so the survivor occupies [100,200)
  // and arrives at 210.
  EXPECT_EQ(second, 210u);
}

TEST(ChannelFaultPropertyTest, DuplicateChargesOccupancyButDeliversOnce) {
  Engine e;
  Channel ch(&e, "link", 1.0, 10);
  ch.set_fault_hook([](uint64_t) {
    Channel::FaultDecision d;
    d.duplicates = 1;
    return d;
  });
  int deliveries = 0;
  Tick first_at = 0;
  ch.Send(100, [&] {
    deliveries++;
    first_at = e.now();
  });
  ch.set_fault_hook(nullptr);
  Tick second_at = 0;
  ch.Send(100, [&] { second_at = e.now(); });
  e.Run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(first_at, 110u);  // primary copy keeps the no-fault schedule
  EXPECT_EQ(ch.frames_duplicated(), 1u);
  EXPECT_EQ(ch.bytes_sent(), 300u);  // primary + duplicate + follower
  // The duplicate occupied [100,200), pushing the follower to [200,300).
  EXPECT_EQ(second_at, 310u);
}

TEST(ChannelFaultPropertyTest, ExtraDelayShiftsOnlyTheFaultedFrame) {
  Engine e;
  Channel ch(&e, "link", 1.0, 10);
  int calls = 0;
  ch.set_fault_hook([&calls](uint64_t) {
    Channel::FaultDecision d;
    if (calls++ == 0) {
      d.extra_delay = 500;
    }
    return d;
  });
  Tick first = 0;
  Tick second = 0;
  ch.Send(100, [&] { first = e.now(); });
  ch.Send(100, [&] { second = e.now(); });
  e.Run();
  // Delay is propagation-side only: occupancy is unchanged, so the second
  // frame still serializes right behind the first and overtakes it.
  EXPECT_EQ(first, 610u);
  EXPECT_EQ(second, 210u);
  EXPECT_EQ(ch.frames_delayed(), 1u);
}

}  // namespace
}  // namespace xenic::sim
