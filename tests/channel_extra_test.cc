// Tests for Channel's per-send fixed occupancy (per-frame port time,
// unbatched PCIe queue handling) and its interaction with serialization.

#include <gtest/gtest.h>

#include "src/sim/channel.h"

namespace xenic::sim {
namespace {

TEST(ChannelExtraTest, FixedOccupancyDelaysDelivery) {
  Engine e;
  Channel ch(&e, "port", 1.0, 0);
  Tick t = 0;
  ch.Send(100, /*extra_occupancy=*/50, [&] { t = e.now(); });
  e.Run();
  EXPECT_EQ(t, 150u);
}

TEST(ChannelExtraTest, FixedOccupancySerializes) {
  // Two sends with fixed cost: the second waits for bytes + fixed of the
  // first (the unbatched per-message cost the Figure 3 experiment models).
  Engine e;
  Channel ch(&e, "port", 1.0, 0);
  std::vector<Tick> at;
  for (int i = 0; i < 3; ++i) {
    ch.Send(10, 90, [&] { at.push_back(e.now()); });
  }
  e.Run();
  EXPECT_EQ(at, (std::vector<Tick>{100, 200, 300}));
}

TEST(ChannelExtraTest, ZeroExtraMatchesPlainSend) {
  Engine e;
  Channel a(&e, "a", 2.0, 10);
  Channel b(&e, "b", 2.0, 10);
  Tick ta = 0;
  Tick tb = 0;
  a.Send(100, [&] { ta = e.now(); });
  b.Send(100, 0, [&] { tb = e.now(); });
  e.Run();
  EXPECT_EQ(ta, tb);
}

TEST(ChannelExtraTest, BatchedVsUnbatchedOccupancy) {
  // 10 messages of 20B: one batched frame (shared fixed cost) finishes far
  // sooner than 10 unbatched sends (fixed cost each).
  Engine e;
  Channel batched(&e, "b", 1.0, 0);
  Channel single(&e, "s", 1.0, 0);
  Tick t_batched = 0;
  Tick t_single = 0;
  batched.Send(200, 100, [&] { t_batched = e.now(); });
  for (int i = 0; i < 10; ++i) {
    single.Send(20, 100, [&] { t_single = e.now(); });
  }
  e.Run();
  EXPECT_EQ(t_batched, 300u);
  EXPECT_EQ(t_single, 1200u);
}

}  // namespace
}  // namespace xenic::sim
