// Transport-layer contract tests.
//
// Conservation laws: the typed per-message counters the transport maintains
// must agree with (a) the protocol-level TxnStats::messages counter and
// (b) the byte counters the NIC models charge to the wire. Any send path
// that bypasses the transport (or double-counts through it) breaks one of
// these sums. The clusters are driven directly (no harness runner) so the
// NIC byte counters and the TxnStats counters cover the same interval.
//
// Typed faults: arming a MsgSelector-matched drop on one node must actually
// fire, must not wedge the protocol (drop-as-retransmit semantics), and
// must leave the committed history serializable.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "src/baseline/baseline_cluster.h"
#include "src/chaos/history.h"
#include "src/common/rng.h"
#include "src/net/message.h"
#include "src/net/transport.h"
#include "src/txn/xenic_cluster.h"

namespace xenic {
namespace {

using store::GetI64;
using store::PutI64;
using store::Value;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

TEST(WireCatalogue, Formulas) {
  using namespace net::wire;
  EXPECT_EQ(Ack(), kHeader + kAckBody);
  EXPECT_EQ(ExecuteReq(2, 1, 16), kHeader + 3 * kKeyEntry + 16u);
  EXPECT_EQ(ExecuteReq(2, 1), kHeader + 3 * kKeyEntry);
  EXPECT_EQ(SeqList(3), kHeader + 3 * kSeqEntry);
  EXPECT_EQ(ValidateReq(2), kHeader + 2 * (kKeyEntry + kSeqEntry));
  EXPECT_EQ(KeyList(4), kHeader + 4 * kKeyEntry);
  // One-sided verbs charge both directions of the roundtrip.
  EXPECT_EQ(OneSidedRead(64), 2 * kVerbHeader + 64u);
  EXPECT_EQ(OneSidedWrite(64), 2 * kVerbHeader + 64u);
  EXPECT_EQ(AtomicOp(), 2 * kVerbHeader + 8u);
  EXPECT_EQ(Rpc(32, 16), 2 * kVerbHeader + 32u + 16u);
}

TEST(MsgSelector, ParseAndMatch) {
  net::MsgSelector s;
  ASSERT_TRUE(net::ParseMsgSelector("validate", &s));
  EXPECT_EQ(s.type, net::MsgType::kValidate);
  EXPECT_TRUE(s.Matches(net::MsgType::kValidate, net::MsgType::kCount));
  EXPECT_FALSE(s.Matches(net::MsgType::kLog, net::MsgType::kCount));

  // "<x>_reply" selects the ACKs acknowledging <x> -- except exec_reply,
  // which is a first-class message type.
  ASSERT_TRUE(net::ParseMsgSelector("validate_reply", &s));
  EXPECT_EQ(s.type, net::MsgType::kAck);
  EXPECT_EQ(s.reply_to, net::MsgType::kValidate);
  EXPECT_TRUE(s.Matches(net::MsgType::kAck, net::MsgType::kValidate));
  EXPECT_FALSE(s.Matches(net::MsgType::kAck, net::MsgType::kLog));
  EXPECT_FALSE(s.Matches(net::MsgType::kValidate, net::MsgType::kCount));

  ASSERT_TRUE(net::ParseMsgSelector("exec_reply", &s));
  EXPECT_EQ(s.type, net::MsgType::kExecReply);

  ASSERT_TRUE(net::ParseMsgSelector("any", &s));
  EXPECT_TRUE(s.Matches(net::MsgType::kCommit, net::MsgType::kCount));
  EXPECT_TRUE(s.Matches(net::MsgType::kAck, net::MsgType::kLog));

  EXPECT_FALSE(net::ParseMsgSelector("bogus", &s));
  EXPECT_FALSE(net::ParseMsgSelector("bogus_reply", &s));
}

// Rebalancing transfer: reads and writes the same keys (the common
// protocol shape; exercises EXECUTE/LOG/COMMIT paths).
TxnRequest Transfer(std::vector<store::Key> keys) {
  TxnRequest req;
  for (auto k : keys) {
    req.reads.push_back({kBank, k});
    req.writes.push_back({kBank, k});
  }
  req.execute = [](ExecRound& er) {
    int64_t sum = 0;
    for (const auto& r : *er.reads) {
      sum += GetI64(r.value, 0);
    }
    for (size_t i = 0; i < er.reads->size(); ++i) {
      const int64_t share = sum / static_cast<int64_t>(er.reads->size()) +
                            (i == 0 ? sum % static_cast<int64_t>(er.reads->size()) : 0);
      (*er.writes)[i].value = Balance(share);
    }
  };
  return req;
}

// Transfer variant whose read set strictly contains its write set: the
// read-only keys must be OCC-validated at commit, forcing VALIDATE traffic
// (and VALIDATE acks) that the plain rebalance never generates.
TxnRequest ValidatingTransfer(std::vector<store::Key> read_keys, store::Key write_key) {
  TxnRequest req;
  for (auto k : read_keys) {
    req.reads.push_back({kBank, k});
  }
  req.reads.push_back({kBank, write_key});
  req.writes.push_back({kBank, write_key});
  req.execute = [](ExecRound& er) {
    int64_t sum = 0;
    for (const auto& r : *er.reads) {
      sum += GetI64(r.value, 0);
    }
    (*er.writes)[0].value = Balance(sum / static_cast<int64_t>(er.reads->size()));
  };
  return req;
}

// Drives `txns_per_ctx` transactions from every node (3 contexts each) and
// runs the engine to completion. `make_txn` builds the request from an Rng.
template <typename Cluster>
void Drive(Cluster& cluster, uint32_t nodes, int txns_per_ctx,
           const std::function<TxnRequest(Rng&)>& make_txn, chaos::HistoryRecorder* recorder,
           uint64_t* committed, uint64_t* aborted) {
  Rng rng(4242);
  constexpr int kKeys = 24;
  for (store::Key k = 1; k <= kKeys; ++k) {
    cluster.LoadReplicated(kBank, k, Balance(120));
  }
  cluster.StartWorkers();
  int active = 0;
  std::function<void(store::NodeId, int)> run_one = [&](store::NodeId n, int left) {
    if (left == 0) {
      active--;
      return;
    }
    TxnRequest req = make_txn(rng);
    std::shared_ptr<chaos::TxnObservation> obs;
    if (recorder != nullptr) {
      obs = recorder->Instrument(req);
    }
    cluster.node(n).Submit(std::move(req), [&, n, left, obs](TxnOutcome o) {
      if (o == TxnOutcome::kCommitted) {
        (*committed)++;
        if (obs) {
          recorder->Commit(obs);
        }
      } else {
        (*aborted)++;
      }
      run_one(n, left - 1);
    });
  };
  for (uint32_t n = 0; n < nodes; ++n) {
    for (int c = 0; c < 3; ++c) {
      active++;
      run_one(n, txns_per_ctx);
    }
  }
  while (active > 0 && !cluster.engine().idle()) {
    cluster.engine().RunFor(50 * sim::kNsPerUs);
  }
  cluster.StopWorkers();
  cluster.engine().Run();
  EXPECT_EQ(active, 0);
}

std::function<TxnRequest(Rng&)> RandomTransfer() {
  return [](Rng& rng) {
    constexpr int kKeys = 24;
    const size_t n_keys = 2 + rng.NextBounded(2);
    std::vector<store::Key> keys;
    while (keys.size() < n_keys) {
      const store::Key k = 1 + rng.NextBounded(kKeys);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    return Transfer(keys);
  };
}

TEST(TransportConservation, XenicMessagesAndBytes) {
  txn::XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  txn::HashPartitioner part(3);
  txn::XenicCluster cluster(o, &part);

  uint64_t committed = 0;
  uint64_t aborted = 0;
  Drive(cluster, 3, 25, RandomTransfer(), nullptr, &committed, &aborted);
  ASSERT_GT(committed, 50u);

  uint64_t msgs = 0;
  uint64_t typed_msgs = 0;
  uint64_t typed_bytes = 0;
  uint64_t nic_msgs = 0;
  uint64_t frames = 0;
  uint64_t wire_bytes = 0;
  uint64_t port_bytes = 0;
  for (store::NodeId n = 0; n < 3; ++n) {
    const txn::TxnStats& s = cluster.node(n).stats();
    // Per-node: every counted message carries exactly one type.
    EXPECT_EQ(s.by_type.TotalMsgs(), s.messages) << "node " << n;
    msgs += s.messages;
    typed_msgs += s.by_type.TotalMsgs();
    typed_bytes += s.by_type.TotalBytes();
    nicmodel::SmartNic& nic = cluster.nic(n);
    nic_msgs += nic.messages_sent();
    frames += nic.frames_sent();
    wire_bytes += nic.wire_bytes_sent();
    for (size_t p = 0; p < nic.num_tx_ports(); ++p) {
      port_bytes += nic.tx_port(p).bytes_sent();
    }
  }
  ASSERT_GT(msgs, 0u);
  // Law 1: the typed counters partition TxnStats::messages...
  EXPECT_EQ(typed_msgs, msgs);
  // ...and every counted message reached the NIC (self-sends are neither
  // counted nor transmitted).
  EXPECT_EQ(nic_msgs, msgs);
  // Law 2: typed payload bytes + per-frame eth overhead account for every
  // byte the NIC charged to its tx ports.
  const uint64_t overhead = frames * cluster.nic(0).model().frame_overhead;
  EXPECT_EQ(typed_bytes + overhead, wire_bytes);
  EXPECT_EQ(wire_bytes, port_bytes);
}

class BaselineConservationTest : public ::testing::TestWithParam<baseline::BaselineMode> {};

TEST_P(BaselineConservationTest, MessagesAndBytes) {
  baseline::BaselineClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.mode = GetParam();
  o.tables = {baseline::BaselineStore::TableSpec{kBank, 10, 16}};
  txn::HashPartitioner part(3);
  baseline::BaselineCluster cluster(o, &part);

  uint64_t committed = 0;
  uint64_t aborted = 0;
  Drive(cluster, 3, 25, RandomTransfer(), nullptr, &committed, &aborted);
  ASSERT_GT(committed, 30u);

  uint64_t msgs = 0;
  uint64_t typed_msgs = 0;
  uint64_t typed_bytes = 0;
  uint64_t wire_bytes = 0;
  for (store::NodeId n = 0; n < 3; ++n) {
    const txn::TxnStats& s = cluster.node(n).stats();
    EXPECT_EQ(s.by_type.TotalMsgs(), s.messages) << "node " << n;
    msgs += s.messages;
    typed_msgs += s.by_type.TotalMsgs();
    typed_bytes += s.by_type.TotalBytes();
    wire_bytes += cluster.node(n).nic().wire_bytes_sent();
  }
  ASSERT_GT(msgs, 0u);
  EXPECT_EQ(typed_msgs, msgs);
  // RDMA verbs charge both roundtrip directions to the initiator-side
  // accounting the transport mirrors, so typed bytes cover all wire bytes.
  EXPECT_EQ(typed_bytes, wire_bytes);
}

INSTANTIATE_TEST_SUITE_P(Modes, BaselineConservationTest,
                         ::testing::Values(baseline::BaselineMode::kDrtmH,
                                           baseline::BaselineMode::kDrtmHNC,
                                           baseline::BaselineMode::kFasst,
                                           baseline::BaselineMode::kDrtmR));

TEST(TypedDrop, ValidateReplyDropResolvesAndStaysSerializable) {
  txn::XenicClusterOptions o;
  o.num_nodes = 3;
  o.replication = 2;
  o.tables = {store::TableSpec{kBank, "bank", 10, 16, 8, 8}};
  txn::HashPartitioner part(3);
  txn::XenicCluster cluster(o, &part);

  // Drop every VALIDATE ack node 1 sends (delivered by link-layer
  // retransmit after the default 3us).
  net::Transport::TypedFault fault;
  ASSERT_TRUE(net::ParseMsgSelector("validate_reply", &fault.match));
  cluster.node(1).transport().set_typed_fault(fault);

  uint64_t committed = 0;
  uint64_t aborted = 0;
  chaos::HistoryRecorder recorder;
  // Read-only keys in every read set force VALIDATE rounds against each
  // remote primary -- including node 1, whose acks are being dropped.
  auto make_txn = [](Rng& rng) {
    constexpr int kKeys = 24;
    std::vector<store::Key> reads;
    while (reads.size() < 2) {
      const store::Key k = 1 + rng.NextBounded(kKeys);
      if (std::find(reads.begin(), reads.end(), k) == reads.end()) {
        reads.push_back(k);
      }
    }
    store::Key w = 1 + rng.NextBounded(kKeys);
    while (std::find(reads.begin(), reads.end(), w) != reads.end()) {
      w = 1 + rng.NextBounded(kKeys);
    }
    return ValidatingTransfer(reads, w);
  };
  Drive(cluster, 3, 25, make_txn, &recorder, &committed, &aborted);

  // The fault must have fired, and every chain must have resolved (the
  // retransmit delivers the payload, so nothing wedges).
  EXPECT_GT(cluster.node(1).transport().typed_drops(), 0u);
  EXPECT_EQ(committed + aborted, 3u * 3u * 25u);
  // Validation-heavy transactions abort often under this contention (the
  // dropped acks stretch the OCC window further); progress, not the commit
  // rate, is what must survive the fault.
  EXPECT_GT(committed, 10u);

  const chaos::CheckResult result = recorder.Check();
  EXPECT_TRUE(result.ok()) << [&] {
    std::string all;
    for (const auto& v : result.violations) {
      all += v + "\n";
    }
    return all;
  }();
  EXPECT_EQ(result.version_gaps, 0u);
}

}  // namespace
}  // namespace xenic
