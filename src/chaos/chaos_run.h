// One deterministic chaos run: a seeded bank-transfer workload driven
// through a system under test (Xenic or any baseline) while a FaultPlan
// injects crashes, wire faults, eviction storms, and back-pressure windows.
// Every committed transaction's observation is recorded; at the end the run
// is audited for serializability, money conservation, leaked locks, leaked
// NIC-index pins, and undrained commit logs.
//
// Determinism contract: the verdict -- every counter, every violation
// string, and the simulator's total event count -- is a pure function of
// (ChaosConfig, seed, epoch). Two runs with the same config produce
// byte-identical Summary() output regardless of wall-clock, process, or how
// many runs execute concurrently (each run owns its engine and Rng streams).

#ifndef SRC_CHAOS_CHAOS_RUN_H_
#define SRC_CHAOS_CHAOS_RUN_H_

#include <string>
#include <vector>

#include "src/chaos/fault_plan.h"
#include "src/chaos/history.h"
#include "src/harness/system_adapter.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/txn/retry_policy.h"

namespace xenic::chaos {

// Which closed-loop workload drives the run. kBank (default) is the
// money-conserving transfer mix every historical transcript uses; kYcsb is
// a small skewed YCSB instance (RMW updates, so the history checker still
// applies) without a money invariant -- its Summary omits the money line.
enum class ChaosWorkload : uint8_t { kBank = 0, kYcsb };

struct ChaosConfig {
  uint64_t seed = 1;
  uint64_t epoch = 1;
  harness::SystemConfig system;
  FaultSpec faults;

  sim::Tick horizon = 600 * sim::kNsPerUs;  // submission window
  sim::Tick drain = 200 * sim::kNsPerUs;    // post-horizon settle time
  uint32_t keys = 48;                       // bank accounts / ycsb keyspace
  uint32_t contexts_per_node = 3;           // closed-loop submitters
  int64_t initial_balance = 100;

  ChaosWorkload workload = ChaosWorkload::kBank;
  double ycsb_theta = 0.9;  // zipf skew of the kYcsb keyspace

  // Abort backoff between a submitter's transactions (chaos_runner
  // --retry-policy). Off by default: arming it draws extra Rng values, so
  // the historical per-seed transcripts stay byte-identical without it.
  bool retry_aborts = false;
  txn::RetryPolicyConfig retry;

  // Windowed time series of throughput/aborts/latency around the fault
  // windows (ChaosVerdict::Timeline()). Pure bookkeeping on existing
  // callbacks: enabling it cannot change the verdict. Bins tile exactly
  // [0, horizon + drain]; the final bin is partial (smaller width) when
  // the window does not divide the run, and completions after the drain
  // (the audit phase) are not recorded.
  bool timeline = false;
  sim::Tick timeline_window = 50 * sim::kNsPerUs;

  // Windowed metric sampling (chaos_runner --metrics): per-window
  // committed/aborted/latency series plus TxnStats deltas and the
  // conservation gauge, sampled on the timeline_window cadence via
  // obs::MetricRegistry and rendered as "metrics "-prefixed lines in
  // ChaosVerdict::metrics_text with fault markers aligned to windows.
  // Sampling slices the run into RunUntil calls at window boundaries; the
  // engine executes the identical event schedule either way, so the
  // verdict -- including events_executed -- is byte-identical with it on
  // or off (check_determinism.sh enforces this).
  bool metrics = false;
  // Declarative objectives (chaos_runner --slo) evaluated over the metric
  // windows; non-empty implies metrics sampling. Result lines (prefixed
  // "slo ") land in ChaosVerdict::slo_text.
  obs::SloSpec slo;

  // Engine worker threads (--engine-jobs). A chaos run executes as a
  // single LP -- the closed-loop submitters share one Rng stream, so only
  // serial execution reproduces the historical transcripts -- which makes
  // any value byte-identical by construction; the flag is plumbed through
  // so tools/check_determinism.sh can enforce exactly that end-to-end.
  uint32_t engine_jobs = 1;
};

struct ChaosVerdict {
  std::string system_name;
  uint64_t seed = 0;
  uint64_t epoch = 0;

  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint32_t unfinished = 0;  // chains wedged at run end (crashed coordinators)

  FaultInjector::Stats faults;
  // Typed-drop reporting is emitted only when the fault was armed, so
  // configs without it keep their historical Summary() byte layout.
  bool typed_drop_armed = false;
  // Same convention for planned lease handoffs: the handoffs line appears
  // only when FaultSpec::planned_handoffs > 0.
  bool handoffs_armed = false;
  uint64_t frames_dropped = 0;
  uint64_t frames_duplicated = 0;
  uint64_t frames_delayed = 0;

  CheckResult check;                  // serializability verdict
  bool money_audited = true;          // false for workloads with no invariant
  int64_t expected_total = 0;         // keys * initial_balance
  int64_t actual_total = 0;           // final audit-read sum
  std::vector<std::string> failures;  // non-checker audit failures

  uint64_t events_executed = 0;  // total sim events; the determinism probe

  // Windowed completion series (empty unless ChaosConfig::timeline).
  struct TimelineBin {
    sim::Tick start = 0;
    sim::Tick width = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    uint64_t lat_sum_ns = 0;  // over all completions in the bin
    uint64_t lat_max_ns = 0;
  };
  std::vector<TimelineBin> timeline;
  std::vector<FaultEvent> timeline_faults;  // planned fault markers
  // Submission horizon of the run (availability math must ignore the drain
  // tail, whose throughput decays to zero because submission stopped, not
  // because anything failed). 0 when the timeline is off.
  sim::Tick timeline_horizon = 0;

  // Windowed metric series ("metrics "-prefixed lines; empty unless
  // ChaosConfig::metrics or an SLO is armed) and the SLO objective report
  // ("slo "-prefixed lines; empty unless ChaosConfig::slo is set). Both
  // deterministic, both strippable by prefix.
  std::string metrics_text;
  std::string slo_text;

  bool ok() const { return check.ok() && failures.empty(); }
  // Deterministic multi-line report (identical across runs of one config).
  std::string Summary() const;
  // Deterministic time-series report; every line starts with "timeline "
  // so callers (and check_determinism.sh) can strip it, keeping the
  // default output byte-identical with the feature off.
  std::string Timeline() const;
};

ChaosVerdict RunChaos(const ChaosConfig& config);

// Availability transient of one fault, measured against the pre-fault
// commit-throughput baseline of the timeline bins. All math is integer so
// the derived lines obey the same byte-determinism contract as the rest of
// the transcript.
struct AvailStat {
  FaultEvent fault;
  uint32_t dip_depth_pct = 0;  // worst per-bin commit deficit vs baseline
  uint64_t dip_width_us = 0;   // fault bin until throughput back over 90%
  uint64_t degraded_us = 0;    // deficit-weighted service time lost
};

struct AvailabilityReport {
  // Baseline committed-per-bin as the exact ratio num/den (den = number of
  // bins averaged); kept unreduced so comparisons stay in integers.
  uint64_t baseline_num = 0;
  uint64_t baseline_den = 0;
  std::vector<AvailStat> per_fault;
  uint64_t degraded_service_us = 0;  // sum over faults, integer microseconds
  // Deficit-weighted degraded service accrued per timeline window (summed
  // across faults, indexed like the clamped bins) -- the "degraded service
  // live" series the metrics layer exports. Per-window integer division
  // rounds each window down independently, so the sum can undershoot
  // degraded_service_us by at most one us per window.
  std::vector<uint64_t> degraded_us_per_window;
};

// Derive per-fault dip depth/width and total degraded service time from a
// completed run's timeline. Baseline throughput is averaged over the bins
// strictly before the first fault (over all bins if a fault lands in bin
// 0); a fault's dip ends at the first bin whose committed count recovers to
// >= 90% of baseline. Overlapping faults are each measured independently.
// Bins past `horizon` (the submission window; 0 = no clamp) are excluded --
// the drain tail decays to zero by construction, not by fault.
AvailabilityReport ComputeAvailability(const std::vector<ChaosVerdict::TimelineBin>& bins,
                                       const std::vector<FaultEvent>& faults,
                                       sim::Tick horizon = 0);

}  // namespace xenic::chaos

#endif  // SRC_CHAOS_CHAOS_RUN_H_
