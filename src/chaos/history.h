// Reusable serializability history checker.
//
// Transactions under test are read-modify-write: each one records, for
// every key it touched, the version (Seq) it read; every key it wrote got
// version read+1. From the committed observations the checker rebuilds the
// per-key version chains, derives the precedence graph (write-read,
// write-write, and read-write anti-dependency edges), and verifies it is
// acyclic. Two transactions producing the same version of a key (a lost
// update) or a precedence cycle are serializability violations.
//
// Gaps in a version chain are tolerated and counted, not flagged: a
// crash-recovered transaction can be rolled forward by recovery after its
// coordinator died, so its write exists in the history of versions but no
// observation was ever recorded for it.

#ifndef SRC_CHAOS_HISTORY_H_
#define SRC_CHAOS_HISTORY_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/txn/types.h"

namespace xenic::chaos {

using TableKey = std::pair<store::TableId, store::Key>;

// What one committed transaction observed: the version it read of every key
// in its final read set, and which of those keys it wrote (producing
// version read+1). A key read as absent records version 0.
struct TxnObservation {
  std::map<TableKey, store::Seq> reads;
  std::set<TableKey> writes;
};

struct CheckResult {
  std::vector<std::string> violations;  // empty iff the history passes
  size_t txns = 0;
  size_t edges = 0;
  size_t version_gaps = 0;  // unrecorded writers (tolerated; see header)

  bool ok() const { return violations.empty(); }
};

// Build the precedence graph from the committed observations and check it.
CheckResult CheckSerializability(const std::vector<TxnObservation>& txns);

// Records a run's committed history. Instrument wraps a request's execute
// closure so every execution round (re)captures the versions read and the
// keys written; on a committed outcome the caller hands the observation
// back via Commit. Observations of aborted or unfinished transactions are
// simply dropped by never committing them.
class HistoryRecorder {
 public:
  // Wraps req.execute in place; the returned observation is updated on
  // every execution round (retries and multi-round executions re-record,
  // so the final round's view wins).
  std::shared_ptr<TxnObservation> Instrument(txn::TxnRequest& req);

  void Commit(const std::shared_ptr<TxnObservation>& obs) { history_.push_back(*obs); }

  const std::vector<TxnObservation>& history() const { return history_; }
  CheckResult Check() const { return CheckSerializability(history_); }

 private:
  std::vector<TxnObservation> history_;
};

}  // namespace xenic::chaos

#endif  // SRC_CHAOS_HISTORY_H_
