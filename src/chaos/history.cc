#include "src/chaos/history.h"

#include <queue>
#include <sstream>

namespace xenic::chaos {

namespace {

std::string KeyName(const TableKey& k) {
  std::ostringstream os;
  os << "t" << k.first << "/k" << k.second;
  return os.str();
}

// Kahn's algorithm over the precedence graph; true iff acyclic.
bool Acyclic(const std::vector<std::vector<int>>& adj) {
  const size_t n = adj.size();
  std::vector<int> indeg(n, 0);
  for (const auto& out : adj) {
    for (int v : out) {
      indeg[static_cast<size_t>(v)]++;
    }
  }
  std::queue<int> q;
  for (size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) {
      q.push(static_cast<int>(i));
    }
  }
  size_t seen = 0;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    seen++;
    for (int v : adj[static_cast<size_t>(u)]) {
      if (--indeg[static_cast<size_t>(v)] == 0) {
        q.push(v);
      }
    }
  }
  return seen == n;
}

}  // namespace

CheckResult CheckSerializability(const std::vector<TxnObservation>& txns) {
  CheckResult result;
  result.txns = txns.size();

  // writer_of[k][v] = index of the transaction that produced version v of
  // key k (it read v-1 and wrote). Two writers of one version is a lost
  // update: both read the same version and both committed.
  std::map<TableKey, std::map<store::Seq, int>> writer_of;
  for (size_t i = 0; i < txns.size(); ++i) {
    for (const auto& k : txns[i].writes) {
      auto rit = txns[i].reads.find(k);
      if (rit == txns[i].reads.end()) {
        std::ostringstream os;
        os << "txn " << i << " wrote " << KeyName(k)
           << " without reading it (recorder contract: RMW only)";
        result.violations.push_back(os.str());
        continue;
      }
      const store::Seq produced = rit->second + 1;
      auto [it, fresh] = writer_of[k].emplace(produced, static_cast<int>(i));
      if (!fresh) {
        std::ostringstream os;
        os << "lost update on " << KeyName(k) << ": txns " << it->second << " and " << i
           << " both produced version " << produced;
        result.violations.push_back(os.str());
      }
    }
  }

  // Edges. For txn i reading version r of key k:
  //   wr: the writer of r precedes i.
  //   rw: i precedes the writer of r+1 (unless that writer is i itself).
  // For txn i writing version r+1:
  //   ww: i precedes the writer of r+2.
  std::vector<std::vector<int>> adj(txns.size());
  auto add_edge = [&](int from, int to) {
    if (from != to) {
      adj[static_cast<size_t>(from)].push_back(to);
      result.edges++;
    }
  };
  for (size_t i = 0; i < txns.size(); ++i) {
    for (const auto& [k, r] : txns[i].reads) {
      auto cit = writer_of.find(k);
      if (cit == writer_of.end()) {
        continue;
      }
      const auto& chain = cit->second;
      if (auto it = chain.find(r); it != chain.end()) {
        add_edge(it->second, static_cast<int>(i));
      } else if (r > 1) {
        result.version_gaps++;  // read a version no recorded txn produced
      }
      if (auto it = chain.find(r + 1); it != chain.end()) {
        add_edge(static_cast<int>(i), it->second);
      }
      if (txns[i].writes.count(k) > 0) {
        if (auto it = chain.find(r + 2); it != chain.end()) {
          add_edge(static_cast<int>(i), it->second);
        }
      }
    }
  }

  if (!Acyclic(adj)) {
    result.violations.push_back("serializability violation: precedence cycle");
  }
  return result;
}

std::shared_ptr<TxnObservation> HistoryRecorder::Instrument(txn::TxnRequest& req) {
  auto obs = std::make_shared<TxnObservation>();
  txn::ExecuteFn inner = std::move(req.execute);
  req.execute = [obs, inner = std::move(inner)](txn::ExecRound& er) {
    if (inner) {
      inner(er);
    }
    // Re-record from scratch every round: on retries and multi-round
    // executions only the final round's complete view must survive.
    obs->reads.clear();
    obs->writes.clear();
    for (size_t i = 0; i < er.reads->size(); ++i) {
      const auto& k = (*er.read_keys)[i];
      const auto& r = (*er.reads)[i];
      obs->reads[{k.table, k.key}] = r.found ? r.seq : 0;
    }
    for (const auto& k : *er.write_keys) {
      obs->writes.insert({k.table, k.key});
    }
  };
  return obs;
}

}  // namespace xenic::chaos
