#include "src/chaos/fault_plan.h"

#include "src/repl/failover.h"

#include <algorithm>
#include <cassert>

namespace xenic::chaos {

namespace {

// Decorrelate (seed, epoch) into an Rng stream of its own.
uint64_t PlanSeed(uint64_t seed, uint64_t epoch) {
  return ScrambleKey(seed ^ ScrambleKey(epoch + 0x5bd1e995u));
}

}  // namespace

FaultPlan FaultPlan::Generate(uint64_t seed, uint64_t epoch, const FaultSpec& spec,
                              uint32_t num_nodes, sim::Tick horizon) {
  FaultPlan plan;
  Rng rng(PlanSeed(seed, epoch));
  const sim::Tick lo = horizon / 5;
  const sim::Tick hi = horizon - horizon / 5;
  auto place = [&](FaultKind kind, sim::Tick duration) {
    FaultEvent ev;
    ev.at = lo + static_cast<sim::Tick>(rng.NextBounded(static_cast<uint64_t>(hi - lo)));
    ev.kind = kind;
    ev.node = static_cast<store::NodeId>(rng.NextBounded(num_nodes));
    ev.duration = duration;
    plan.events.push_back(ev);
  };
  for (uint32_t i = 0; i < spec.crashes; ++i) {
    place(FaultKind::kCrash, 0);
  }
  for (uint32_t i = 0; i < spec.eviction_storms; ++i) {
    place(FaultKind::kEvictionStorm, 0);
  }
  for (uint32_t i = 0; i < spec.stall_windows; ++i) {
    place(FaultKind::kStallStart, spec.stall_duration);
  }
  // Placed after the historical kinds so existing plans draw the same RNG
  // sequence; with ONLY handoffs armed, the first draws match a crash-only
  // plan exactly, giving crash-vs-handoff runs the same (at, node) pairs.
  for (uint32_t i = 0; i < spec.planned_handoffs; ++i) {
    place(FaultKind::kPlannedHandoff, 0);
  }
  std::sort(plan.events.begin(), plan.events.end(), [](const FaultEvent& a, const FaultEvent& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    if (a.kind != b.kind) {
      return static_cast<uint8_t>(a.kind) < static_cast<uint8_t>(b.kind);
    }
    return a.node < b.node;
  });
  return plan;
}

FaultInjector::FaultInjector(harness::SystemAdapter& system, const FaultSpec& spec,
                             uint64_t seed, uint64_t epoch)
    : system_(system),
      spec_(spec),
      seed_(seed),
      epoch_(epoch),
      wire_rng_(ScrambleKey(PlanSeed(seed, epoch))) {
  if (txn::XenicCluster* cluster = system_.xenic_cluster()) {
    manager_ = std::make_unique<txn::ClusterManager>(&cluster->engine(), cluster->size(),
                                                     spec_.detection_delay);
    base_partitioner_ = cluster->map().partitioner;
  }
}

bool FaultInjector::NodeCrashed(store::NodeId n) const {
  if (txn::XenicCluster* cluster = system_.xenic_cluster()) {
    return cluster->node(n).crashed();
  }
  return false;
}

void FaultInjector::Arm(sim::Tick horizon) {
  plan_ = FaultPlan::Generate(seed_, epoch_, spec_, system_.num_nodes(), horizon);
  for (const FaultEvent& ev : plan_.events) {
    system_.engine().ScheduleAt(ev.at, [this, ev] { Fire(ev); });
  }
  if (spec_.typed_drop_node >= 0) {
    if (txn::XenicCluster* cluster = system_.xenic_cluster();
        cluster != nullptr && static_cast<uint32_t>(spec_.typed_drop_node) < cluster->size()) {
      net::Transport::TypedFault fault;
      fault.match = spec_.typed_drop;
      fault.retransmit_delay = spec_.retransmit_delay;
      typed_target_ =
          &cluster->node(static_cast<store::NodeId>(spec_.typed_drop_node)).transport();
      typed_target_->set_typed_fault(fault);
    }
  }
  if (spec_.drop_prob > 0 || spec_.dup_prob > 0 || spec_.delay_prob > 0) {
    system_.ForEachWireChannel([this](sim::Channel& ch) {
      ch.set_fault_hook([this](uint64_t bytes) {
        (void)bytes;
        sim::Channel::FaultDecision d;
        if (spec_.drop_prob > 0 && wire_rng_.NextBool(spec_.drop_prob)) {
          // Modeled as a link-layer retransmission (see header).
          d.extra_delay += spec_.retransmit_delay;
          d.duplicates += 1;
        }
        if (spec_.dup_prob > 0 && wire_rng_.NextBool(spec_.dup_prob)) {
          d.duplicates += 1;
        }
        if (spec_.delay_prob > 0 && wire_rng_.NextBool(spec_.delay_prob)) {
          d.extra_delay +=
              1 + static_cast<sim::Tick>(wire_rng_.NextBounded(
                      static_cast<uint64_t>(spec_.max_delay)));
        }
        return d;
      });
    });
  }
}

void FaultInjector::Fire(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrash:
      CrashNode(ev.node);
      break;
    case FaultKind::kEvictionStorm:
      EvictionStorm(ev.node);
      break;
    case FaultKind::kStallStart:
      Stall(ev.node, ev.duration);
      break;
    case FaultKind::kPlannedHandoff:
      PlannedHandoffAt(ev.node);
      break;
  }
}

void FaultInjector::CrashNode(store::NodeId victim) {
  txn::XenicCluster* cluster = system_.xenic_cluster();
  if (cluster == nullptr || manager_ == nullptr) {
    stats_.crashes_skipped++;  // baseline systems have no crash support
    return;
  }
  if (cluster->node(victim).crashed()) {
    stats_.crashes_skipped++;
    return;
  }
  // Keep a quorum: enough survivors for the configured commit point (and
  // for the recovery scan to read from), and at least one live backup of
  // the victim for DetectAndRecover to promote.
  uint32_t live = 0;
  for (store::NodeId n = 0; n < cluster->size(); ++n) {
    live += cluster->node(n).crashed() ? 0 : 1;
  }
  if (!cluster->repl().CrashAllowed(live)) {
    stats_.crashes_skipped++;
    return;
  }
  bool has_live_backup = false;
  for (store::NodeId b : cluster->repl().BackupsOf(victim)) {
    has_live_backup |= !cluster->node(b).crashed();
  }
  if (!has_live_backup) {
    stats_.crashes_skipped++;  // replication 1 (or all backups dead)
    return;
  }
  cluster->node(victim).Crash();
  manager_->MarkFailed(victim);
  stats_.crashes++;
  system_.engine().ScheduleAfter(spec_.detection_delay,
                                 [this, victim] { DetectAndRecover(victim); });
}

void FaultInjector::DetectAndRecover(store::NodeId victim) {
  txn::XenicCluster* cluster = system_.xenic_cluster();
  // Promote the first live backup of the failed primary.
  store::NodeId promoted = victim;
  for (store::NodeId b : cluster->repl().BackupsOf(victim)) {
    if (!cluster->node(b).crashed()) {
      promoted = b;
      break;
    }
  }
  assert(promoted != victim && "no live backup to promote");

  // Order matters: resolve wedged transactions at live coordinators first
  // (commit the provably-replicated, abort + tombstone the rest), then
  // recover the failed shard and the failed coordinator's leftovers against
  // the pre-failure map, and only then swap the remap in.
  txn::EpochSweepReport sweep = txn::SweepWedgedTxns(*cluster, victim);
  stats_.sweep_committed += sweep.committed;
  stats_.sweep_aborted += sweep.aborted;

  txn::RecoveryReport shard =
      txn::RecoverShard(*cluster, victim, promoted, sweep.committed_txns);
  stats_.rolled_forward += shard.rolled_forward;
  stats_.discarded += shard.discarded;

  txn::CoordinatorSweepReport coord = txn::RecoverCoordinatorLocks(*cluster, victim);
  stats_.rolled_forward += coord.rolled_forward;
  stats_.discarded += coord.discarded;
  stats_.locks_released += coord.locks_released;

  // Re-replicate while the map still routes the victim's keys here: the
  // recovered state (backup base + the eager-applied in-doubt tail) is
  // now authoritative at `promoted`, and fan-out for these shards will
  // follow promoted's OWN backup chain from the flip on -- a chain that
  // never held the base snapshot.
  repl::TransferShardState(*cluster, promoted, victim, promoted);

  // Chain-collapsing insert: a promotion chain ending at `victim` (an
  // earlier handoff or crash that moved a shard HERE) must follow the new
  // primary, or the one-hop routing table keeps sending that shard to the
  // dead node.
  repl::RecordPromotion(&promotions_, victim, promoted);
  remapped_ = std::make_unique<txn::RemappedPartitioner>(base_partitioner_, promotions_);
  cluster->mutable_map().partitioner = remapped_.get();
  // Evict the dead node from the membership view last: the sweep and the
  // recovery scans above reason about the pre-failure replica chains, but
  // from here on LOG fan-out must not wait on the dead backup's ack.
  cluster->mutable_map().MarkFailed(victim);
}

void FaultInjector::PlannedHandoffAt(store::NodeId victim) {
  txn::XenicCluster* cluster = system_.xenic_cluster();
  if (cluster == nullptr) {
    stats_.handoffs_skipped++;  // baseline systems have no handoff support
    return;
  }
  repl::HandoffReport r = repl::PlannedHandoff(*cluster, victim, base_partitioner_,
                                               &promotions_, &remapped_);
  if (!r.performed) {
    stats_.handoffs_skipped++;
    return;
  }
  stats_.handoffs++;
  stats_.handoff_stragglers += r.stragglers_aborted;
}

void FaultInjector::EvictionStorm(store::NodeId node) {
  txn::XenicCluster* cluster = system_.xenic_cluster();
  if (cluster == nullptr || cluster->node(node).crashed()) {
    return;
  }
  stats_.storms++;
  auto& ds = cluster->datastore(node);
  for (store::TableId t = 0; t < ds.num_tables(); ++t) {
    for (const auto& e : ds.index(t).CachedEntries()) {
      ds.index(t).Invalidate(e.key);
      stats_.storm_evictions++;
    }
  }
}

void FaultInjector::Stall(store::NodeId node, sim::Tick duration) {
  if (NodeCrashed(node)) {
    return;
  }
  stats_.stalls++;
  system_.StopNodeWorkers(node);
  system_.engine().ScheduleAfter(duration, [this, node] {
    if (!NodeCrashed(node)) {
      system_.StartNodeWorkers(node);
    }
  });
}

}  // namespace xenic::chaos
