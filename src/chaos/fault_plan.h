// Deterministic fault planning and injection.
//
// A FaultPlan is generated up front from (seed, epoch) and a FaultSpec: the
// schedule of node crashes, NIC-index eviction storms, and commit-log
// back-pressure windows is fixed before the run starts, so the same
// (seed, epoch) replays the same chaos byte-for-byte. Per-frame wire faults
// (delay, duplication, modeled drops) are drawn from a dedicated Rng inside
// the deterministic event loop, which makes them equally reproducible.
//
// Fault semantics:
//  - "Drop" is modeled as a retransmission: the frame is charged twice on
//    the wire and delayed by `retransmit_delay`. The commit protocol counts
//    acks and has no retransmission timer of its own, so a true loss would
//    wedge it; modeling the link-layer retry keeps the protocol semantics
//    while still exercising reordering and extra occupancy.
//  - Duplicates charge wire occupancy only; the duplicate frame delivers
//    nothing (the simulator's message closures are single-shot, which
//    models receiver-side transport dedup).
//  - A crash is fail-stop: the node's NIC state (locks, in-flight work) is
//    gone; detection fires after `detection_delay` and runs the epoch
//    sweep, shard recovery, coordinator-lock recovery, and the partitioner
//    remap, in that order.

#ifndef SRC_CHAOS_FAULT_PLAN_H_
#define SRC_CHAOS_FAULT_PLAN_H_

#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/harness/system_adapter.h"
#include "src/net/transport.h"
#include "src/txn/recovery.h"

namespace xenic::chaos {

struct FaultSpec {
  // Per-frame wire fault probabilities (applied on every outbound channel).
  double drop_prob = 0.0;
  double dup_prob = 0.0;
  double delay_prob = 0.0;
  sim::Tick max_delay = 2 * sim::kNsPerUs;         // uniform in [1, max_delay]
  sim::Tick retransmit_delay = 3 * sim::kNsPerUs;  // per modeled drop

  // Scheduled faults over the run horizon.
  uint32_t crashes = 0;           // fail-stop node crashes (with recovery)
  uint32_t eviction_storms = 0;   // NIC-index cache wipe on one node
  uint32_t stall_windows = 0;     // commit-log back-pressure: workers stopped
  // Planned lease handoffs (repl::PlannedHandoff): the victim stays live,
  // its primary role moves to an up-to-date backup with no sweep or scan.
  uint32_t planned_handoffs = 0;
  sim::Tick stall_duration = 60 * sim::kNsPerUs;
  sim::Tick detection_delay = 8 * sim::kNsPerUs;  // crash -> lease expiry

  // Typed message drop (transport-layer fault): every message matching
  // `typed_drop` sent by node `typed_drop_node` is dropped and delivered
  // via link-layer retransmit after `retransmit_delay`. Disabled when the
  // node is negative. Xenic systems only (the hook lives on net::Transport).
  int typed_drop_node = -1;
  net::MsgSelector typed_drop;
};

enum class FaultKind : uint8_t {
  kCrash = 0,
  kEvictionStorm,
  kStallStart,
  kPlannedHandoff,
};

struct FaultEvent {
  sim::Tick at = 0;
  FaultKind kind = FaultKind::kCrash;
  store::NodeId node = 0;
  sim::Tick duration = 0;  // stall windows
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by time

  // Deterministic plan from (seed, epoch): same inputs, same schedule.
  // Events are placed in the middle 60% of the horizon so the system has
  // warm-up and drain time around them.
  static FaultPlan Generate(uint64_t seed, uint64_t epoch, const FaultSpec& spec,
                            uint32_t num_nodes, sim::Tick horizon);
};

// Arms a plan against a running system: schedules the planned events on the
// sim engine and installs per-frame fault hooks on every wire channel.
// Crash events drive the full recovery pipeline (ClusterManager::MarkFailed,
// epoch sweep, RecoverShard, RecoverCoordinatorLocks, RemappedPartitioner
// promotion) and are skipped for baseline systems, which have no crash
// support -- wire faults, stalls, and storms apply everywhere.
class FaultInjector {
 public:
  struct Stats {
    uint64_t crashes = 0;
    uint64_t crashes_skipped = 0;  // too few live nodes / baseline system
    uint64_t storms = 0;
    uint64_t storm_evictions = 0;
    uint64_t stalls = 0;
    uint64_t handoffs = 0;            // planned lease handoffs performed
    uint64_t handoffs_skipped = 0;    // victim crashed / no live backup
    uint64_t handoff_stragglers = 0;  // in-flight txns aborted by handoffs
    uint64_t sweep_committed = 0;
    uint64_t sweep_aborted = 0;
    uint64_t rolled_forward = 0;  // RecoverShard + coordinator sweep
    uint64_t discarded = 0;
    uint64_t locks_released = 0;
    uint64_t typed_drops = 0;  // messages hit by the typed-drop fault
  };

  FaultInjector(harness::SystemAdapter& system, const FaultSpec& spec, uint64_t seed,
                uint64_t epoch);

  // Schedule the plan's events and arm wire hooks. Call once, before Run.
  void Arm(sim::Tick horizon);

  const Stats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  bool NodeCrashed(store::NodeId n) const;
  // True when Arm installed the typed-drop hook (Xenic system, valid node).
  bool typed_drop_armed() const { return typed_target_ != nullptr; }
  uint64_t typed_drops() const {
    return typed_target_ != nullptr ? typed_target_->typed_drops() : 0;
  }

 private:
  void Fire(const FaultEvent& ev);
  void CrashNode(store::NodeId victim);
  void DetectAndRecover(store::NodeId victim);
  void PlannedHandoffAt(store::NodeId victim);
  void EvictionStorm(store::NodeId node);
  void Stall(store::NodeId node, sim::Tick duration);

  harness::SystemAdapter& system_;
  FaultSpec spec_;
  uint64_t seed_ = 0;
  uint64_t epoch_ = 0;
  FaultPlan plan_;
  Rng wire_rng_;
  Stats stats_;
  std::unique_ptr<txn::ClusterManager> manager_;  // Xenic systems only
  net::Transport* typed_target_ = nullptr;        // typed-drop hook location
  std::map<store::NodeId, store::NodeId> promotions_;
  std::unique_ptr<txn::RemappedPartitioner> remapped_;
  const txn::Partitioner* base_partitioner_ = nullptr;
};

}  // namespace xenic::chaos

#endif  // SRC_CHAOS_FAULT_PLAN_H_
