#include "src/chaos/chaos_run.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>

#include "src/workload/workload.h"
#include "src/workload/ycsb.h"

namespace xenic::chaos {

namespace {

using store::GetI64;
using store::PutI64;
using store::Value;
using txn::ExecRound;
using txn::TxnOutcome;
using txn::TxnRequest;

constexpr store::TableId kBank = 0;

Value Balance(int64_t v) {
  Value out(16, 0);
  PutI64(out, 0, v);
  return out;
}

// Closed-loop bank-transfer workload: every transaction reads 2-3 accounts
// and rebalances their total across them (conserving money and creating
// real read-write dependencies between overlapping transactions).
class BankWorkload : public workload::Workload {
 public:
  BankWorkload(uint32_t keys, int64_t initial_balance, uint32_t num_nodes)
      : keys_(keys), initial_balance_(initial_balance), part_(num_nodes) {}

  std::string Name() const override { return "chaos-bank"; }

  std::vector<workload::TableDef> Tables() const override {
    workload::TableDef t;
    t.id = kBank;
    t.name = "bank";
    t.capacity_log2 = 10;
    t.value_size = 16;
    t.max_displacement = 8;
    return {t};
  }

  const txn::Partitioner& partitioner() const override { return part_; }

  void Load(const workload::LoadFn& load) override {
    for (store::Key k = 1; k <= keys_; ++k) {
      load(kBank, k, Balance(initial_balance_));
    }
  }

  TxnRequest NextTxn(store::NodeId coordinator, Rng& rng) override {
    (void)coordinator;
    const size_t n_keys = 2 + rng.NextBounded(2);
    std::vector<store::Key> keys;
    while (keys.size() < n_keys) {
      const store::Key k = 1 + rng.NextBounded(keys_);
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    }
    TxnRequest req;
    for (auto k : keys) {
      req.reads.push_back({kBank, k});
      req.writes.push_back({kBank, k});
    }
    req.execute = [](ExecRound& er) {
      int64_t sum = 0;
      for (const auto& r : *er.reads) {
        sum += GetI64(r.value, 0);
      }
      const auto n = static_cast<int64_t>(er.reads->size());
      for (size_t i = 0; i < er.reads->size(); ++i) {
        (*er.writes)[i].value = Balance(sum / n + (i == 0 ? sum % n : 0));
      }
    };
    return req;
  }

 private:
  uint32_t keys_;
  int64_t initial_balance_;
  txn::HashPartitioner part_;
};

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kEvictionStorm:
      return "storm";
    case FaultKind::kPlannedHandoff:
      return "handoff";
    case FaultKind::kStallStart:
    default:
      return "stall";
  }
}

}  // namespace

ChaosVerdict RunChaos(const ChaosConfig& config) {
  ChaosVerdict verdict;
  verdict.seed = config.seed;
  verdict.epoch = config.epoch;

  std::unique_ptr<workload::Workload> wl;
  if (config.workload == ChaosWorkload::kYcsb) {
    workload::Ycsb::Options yo;
    yo.num_nodes = config.system.num_nodes;
    yo.keys_per_node =
        std::max<uint64_t>(1, config.keys / std::max<uint32_t>(1, config.system.num_nodes));
    yo.zipf_theta = config.ycsb_theta;
    yo.ops_per_txn = 3;
    yo.value_size = 16;
    wl = std::make_unique<workload::Ycsb>(yo);
  } else {
    wl = std::make_unique<BankWorkload>(config.keys, config.initial_balance,
                                        config.system.num_nodes);
  }
  workload::Workload& workload = *wl;
  auto system = harness::BuildSystem(config.system, workload);
  verdict.system_name = system->Name();
  harness::LoadWorkload(*system, workload);
  system->StartWorkers();

  sim::Engine& engine = system->engine();
  engine.set_engine_jobs(config.engine_jobs);
  FaultInjector injector(*system, config.faults, config.seed, config.epoch);
  injector.Arm(config.horizon);

  // Closed-loop submitters. The Rng stream is decorrelated from the fault
  // plan's; callback order inside the engine is deterministic, so one
  // shared stream keeps the whole run a function of (seed, epoch).
  Rng rng(ScrambleKey(config.seed ^ ScrambleKey(config.epoch + 0x243f6a88u)) | 1u);
  HistoryRecorder recorder;

  // Timeline bins (pure bookkeeping on the completion callbacks already in
  // place; never schedules anything, so the verdict is unaffected). The
  // tiling contract this block used to spell out inline -- ceil(run_end /
  // window) bins tiling exactly [0, run_end], partial final bin when the
  // window does not divide the run, post-run completions dropped, t ==
  // run_end folded into the last bin -- now lives in obs::WindowSeries,
  // shared with the metrics registry and the harness.
  std::vector<ChaosVerdict::TimelineBin> bins;
  const sim::Tick run_end = config.horizon + config.drain;
  const bool metrics_armed =
      (config.metrics || !config.slo.empty()) && config.timeline_window > 0;
  obs::WindowSeries series;  // empty unless the bins are armed
  if ((config.timeline || metrics_armed) && config.timeline_window > 0) {
    series = obs::WindowSeries(config.timeline_window, run_end);
    bins.resize(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      bins[i].start = series.StartOf(i);
      bins[i].width = series.WidthOf(i);
    }
  }

  // Windowed metrics (--metrics / --slo). Observer-only by construction:
  // the counters ride the completion callback above the bins already use,
  // and window closes sample at boundaries the engine was going to reach
  // anyway (see the sliced run loop below).
  obs::MetricRegistry reg;
  obs::WindowCounter* m_committed = nullptr;
  obs::WindowCounter* m_aborted = nullptr;
  obs::WindowHistogram* m_latency = nullptr;
  auto stats_snap = std::make_shared<txn::TxnStats>();
  if (metrics_armed) {
    m_committed = reg.AddCounter("chaos_committed");
    m_aborted = reg.AddCounter("chaos_aborted");
    m_latency = reg.AddHistogram("chaos_latency_ns");
    // One TxnStats snapshot per window close, shared by every derived
    // metric (TotalStats walks all nodes; pay that once per window, not
    // once per metric).
    auto* sys = system.get();
    reg.AddSampleHook([stats_snap, sys] { *stats_snap = sys->TotalStats(); });
    reg.AddCumulative("txn_messages", {}, [stats_snap] { return stats_snap->messages; });
    reg.AddCumulative("txn_remote_rounds", {},
                      [stats_snap] { return stats_snap->remote_rounds; });
    reg.AddCumulative("abort_lock_execute", {},
                      [stats_snap] { return stats_snap->abort_lock_execute; });
    reg.AddCumulative("abort_validate", {},
                      [stats_snap] { return stats_snap->abort_validate; });
    reg.AddCumulative("abort_wounded", {},
                      [stats_snap] { return stats_snap->abort_wounded; });
    reg.AddCumulative("nic_log_applied", {},
                      [stats_snap] { return stats_snap->nic_log_applied; });
    // The --msg-breakdown conservation law as a live metric: the per-type
    // message counts must sum to the transport total at every boundary.
    reg.AddGauge("net_conservation_violations", {}, [stats_snap] {
      const uint64_t per_type = stats_snap->by_type.TotalMsgs();
      const uint64_t total = stats_snap->messages;
      return per_type >= total ? per_type - total : total - per_type;
    });
    reg.BeginWindows(series, /*origin=*/0);
  }

  auto record_completion = [&](sim::Tick submitted, bool committed) {
    const sim::Tick now = engine.now();
    if (metrics_armed) {
      // Same domain as the bins: the registry drops post-run_end samples.
      (committed ? m_committed : m_aborted)->Add(now);
      if (committed) {
        // SLO latency is committed-transaction latency (the timeline's
        // lat_sum below deliberately keeps covering all completions).
        m_latency->Record(now, now - submitted);
      }
    }
    if (bins.empty()) {
      return;
    }
    size_t bi = 0;
    if (!series.IndexOf(now, &bi)) {
      // Post-run completion: the money-audit phase keeps the engine moving
      // after the drain, and wedged chains can complete there. Those land
      // outside the timeline's domain; clamping them into the final bin
      // (the old behavior) inflated its counts and latency tail.
      return;
    }
    ChaosVerdict::TimelineBin& b = bins[bi];
    (committed ? b.committed : b.aborted)++;
    const uint64_t lat = now - submitted;
    b.lat_sum_ns += lat;
    if (lat > b.lat_max_ns) {
      b.lat_max_ns = lat;
    }
  };

  uint32_t active = 0;
  std::function<void(store::NodeId, uint32_t)> run_one = [&](store::NodeId n,
                                                             uint32_t tries) {
    if (engine.now() >= config.horizon) {
      active--;
      return;
    }
    TxnRequest req = workload.NextTxn(n, rng);
    auto obs = recorder.Instrument(req);
    const sim::Tick submitted = engine.now();
    // A submit to a crashed coordinator is silently dropped: the chain
    // wedges, which is exactly what a client talking to a dead node sees.
    system->Submit(n, std::move(req), [&, n, obs, submitted, tries](txn::TxnResult res) {
      const bool committed = res.outcome == TxnOutcome::kCommitted;
      if (committed) {
        recorder.Commit(obs);
        verdict.committed++;
      } else {
        verdict.aborted++;
      }
      record_completion(submitted, committed);
      // Armed retry backoff (contention-scaled); with it off the submitter
      // loops back-to-back exactly as it always has (no extra Rng draws).
      if (!committed && config.retry_aborts &&
          res.outcome == TxnOutcome::kAborted) {
        const sim::Tick backoff =
            txn::RetryBackoff(config.retry, tries, res.contention, rng);
        engine.ScheduleAfter(backoff, [&, n, tries] { run_one(n, tries + 1); });
        return;
      }
      run_one(n, 0);
    });
  };
  for (store::NodeId n = 0; n < config.system.num_nodes; ++n) {
    for (uint32_t c = 0; c < config.contexts_per_node; ++c) {
      active++;
      run_one(n, 0);
    }
  }

  if (metrics_armed) {
    // Slice the run at window boundaries. RunUntil never schedules, so this
    // executes the identical event sequence as the single RunUntil/RunFor
    // pair below, and the series tiles [0, horizon + drain] exactly, so the
    // clock lands on run_end either way: the verdict -- events_executed
    // included -- is byte-identical with metrics on or off.
    for (size_t w = 0; w < series.size(); ++w) {
      engine.RunUntil(series.StartOf(w) + series.WidthOf(w));
      reg.CloseWindow(w);
    }
  } else {
    engine.RunUntil(config.horizon);
    engine.RunFor(config.drain);
  }
  verdict.unfinished = active;

  // Chains wedge only when their coordinator died mid-flight; anything
  // beyond that is a transaction the epoch sweep failed to resolve.
  const uint32_t max_wedged =
      config.contexts_per_node * static_cast<uint32_t>(injector.stats().crashes);
  if (verdict.unfinished > max_wedged) {
    std::ostringstream os;
    os << "wedged transactions: " << verdict.unfinished << " chains unfinished but only "
       << max_wedged << " can be stuck on crashed coordinators";
    verdict.failures.push_back(os.str());
  }

  // Money audit through the system itself: one read-all transaction (from
  // the lowest-id live node) sees every committed write via the same
  // pending-aware read path normal transactions use, on Xenic and the
  // baselines alike. It doubles as a liveness probe of the recovered map.
  // Only the bank workload carries the invariant; kYcsb skips the audit
  // (and its Summary line) entirely.
  verdict.money_audited = config.workload == ChaosWorkload::kBank;
  if (verdict.money_audited) {
    store::NodeId reader = 0;
    while (reader < config.system.num_nodes && injector.NodeCrashed(reader)) {
      reader++;
    }
    bool read_done = false;
    int64_t total = 0;
    std::function<void()> submit_read = [&] {
      TxnRequest req;
      for (store::Key k = 1; k <= config.keys; ++k) {
        req.reads.push_back({kBank, k});
      }
      req.execute = [&total](ExecRound& er) {
        int64_t sum = 0;
        for (const auto& r : *er.reads) {
          sum += GetI64(r.value, 0);
        }
        total = sum;
      };
      system->Submit(reader, std::move(req), [&](TxnOutcome o) {
        if (o == TxnOutcome::kCommitted) {
          read_done = true;
        } else {
          submit_read();
        }
      });
    };
    submit_read();
    for (int i = 0; i < 400 && !read_done; ++i) {
      engine.RunFor(5 * sim::kNsPerUs);
    }
    verdict.expected_total = static_cast<int64_t>(config.keys) * config.initial_balance;
    verdict.actual_total = read_done ? total : -1;
    if (!read_done) {
      verdict.failures.push_back("final audit read did not commit (system wedged)");
    } else if (verdict.actual_total != verdict.expected_total) {
      std::ostringstream os;
      os << "money not conserved: expected " << verdict.expected_total << " got "
         << verdict.actual_total;
      verdict.failures.push_back(os.str());
    }
  }

  // Let post-commit release/apply messages of the audit read settle before
  // inspecting NIC and log state.
  engine.RunFor(20 * sim::kNsPerUs);

  if (txn::XenicCluster* cluster = system->xenic_cluster()) {
    for (store::NodeId n = 0; n < cluster->size(); ++n) {
      if (cluster->node(n).crashed()) {
        continue;
      }
      auto& ds = cluster->datastore(n);
      size_t locks = 0;
      uint64_t pins = 0;
      for (store::TableId t = 0; t < ds.num_tables(); ++t) {
        locks += ds.index(t).LockedKeys().size();
        pins += ds.index(t).pinned_objects();
      }
      if (locks > 0) {
        std::ostringstream os;
        os << "leaked locks: node " << n << " holds " << locks << " at quiesce";
        verdict.failures.push_back(os.str());
      }
      if (pins > 0) {
        std::ostringstream os;
        os << "leaked pins: node " << n << " has " << pins << " pinned objects at quiesce";
        verdict.failures.push_back(os.str());
      }
      if (ds.log().unreclaimed() > 0) {
        std::ostringstream os;
        os << "commit log not drained: node " << n << " has " << ds.log().unreclaimed()
           << " unreclaimed records";
        verdict.failures.push_back(os.str());
      }
    }
  }

  verdict.check = recorder.Check();
  verdict.faults = injector.stats();
  verdict.typed_drop_armed = injector.typed_drop_armed();
  verdict.handoffs_armed = config.faults.planned_handoffs > 0;
  verdict.faults.typed_drops = injector.typed_drops();
  system->ForEachWireChannel([&](sim::Channel& ch) {
    verdict.frames_dropped += ch.frames_dropped();
    verdict.frames_duplicated += ch.frames_duplicated();
    verdict.frames_delayed += ch.frames_delayed();
  });
  verdict.events_executed = engine.events_executed();

#ifndef NDEBUG
  // Per-type message conservation (the --msg-breakdown law), promoted from
  // a test-only check to an always-on debug assertion. transport.cc bumps
  // the total and the per-type counter in the same call, so divergence
  // means a lost or double-counted send.
  const txn::TxnStats end_stats = system->TotalStats();
  assert(end_stats.by_type.TotalMsgs() == end_stats.messages);
#endif

  if (metrics_armed) {
    for (const FaultEvent& f : injector.plan().events) {
      reg.MarkFault(f.at, FaultKindName(f.kind), f.node);
    }
    // Degraded-service live series: the availability accounting re-expressed
    // per window (summed across faults), exported next to the raw series.
    const AvailabilityReport avail =
        ComputeAvailability(bins, injector.plan().events, config.horizon);
    reg.SetSeries("repl_degraded_us", {}, avail.degraded_us_per_window);
    if (config.metrics) {
      verdict.metrics_text = reg.Lines("metrics ");
    }
    if (!config.slo.empty()) {
      const auto inputs =
          obs::SloInputsFromSeries(series, m_committed, m_aborted, m_latency);
      verdict.slo_text = obs::EvaluateSlo(config.slo, inputs).Lines("slo ");
    }
  }

  if (config.timeline) {
    verdict.timeline = std::move(bins);
    verdict.timeline_faults = injector.plan().events;
    verdict.timeline_horizon = config.horizon;
  }
  return verdict;
}

std::string ChaosVerdict::Summary() const {
  std::ostringstream os;
  os << "chaos system=" << system_name << " seed=" << seed << " epoch=" << epoch << "\n";
  os << "txns: committed=" << committed << " aborted=" << aborted
     << " unfinished=" << unfinished << "\n";
  os << "faults: crashes=" << faults.crashes << " skipped=" << faults.crashes_skipped
     << " storms=" << faults.storms << " evictions=" << faults.storm_evictions
     << " stalls=" << faults.stalls << "\n";
  os << "recovery: sweep_committed=" << faults.sweep_committed
     << " sweep_aborted=" << faults.sweep_aborted
     << " rolled_forward=" << faults.rolled_forward << " discarded=" << faults.discarded
     << " locks_released=" << faults.locks_released << "\n";
  os << "wire: dropped=" << frames_dropped << " duplicated=" << frames_duplicated
     << " delayed=" << frames_delayed << "\n";
  if (typed_drop_armed) {
    os << "typed_drop: drops=" << faults.typed_drops << "\n";
  }
  if (handoffs_armed) {
    os << "handoffs: performed=" << faults.handoffs << " skipped=" << faults.handoffs_skipped
       << " stragglers_aborted=" << faults.handoff_stragglers << "\n";
  }
  os << "checker: txns=" << check.txns << " edges=" << check.edges
     << " version_gaps=" << check.version_gaps << " violations=" << check.violations.size()
     << "\n";
  if (money_audited) {
    os << "money: expected=" << expected_total << " actual=" << actual_total << "\n";
  }
  for (const auto& v : check.violations) {
    os << "  ! " << v << "\n";
  }
  for (const auto& f : failures) {
    os << "  ! " << f << "\n";
  }
  os << "events_executed=" << events_executed << "\n";
  os << "verdict=" << (ok() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

std::string ChaosVerdict::Timeline() const {
  std::ostringstream os;
  for (const auto& f : timeline_faults) {
    os << "timeline fault at_us=" << f.at / sim::kNsPerUs << " kind=" << FaultKindName(f.kind)
       << " node=" << f.node;
    if (f.duration > 0) {
      os << " duration_us=" << f.duration / sim::kNsPerUs;
    }
    os << "\n";
  }
  for (const auto& b : timeline) {
    const uint64_t n = b.committed + b.aborted;
    os << "timeline win_us=" << b.start / sim::kNsPerUs << " committed=" << b.committed
       << " aborted=" << b.aborted;
    if (n > 0) {
      // Integer ns keep the line free of float-formatting concerns.
      os << " mean_lat_ns=" << b.lat_sum_ns / n << " max_lat_ns=" << b.lat_max_ns;
    }
    os << "\n";
  }
  if (!timeline.empty() && !timeline_faults.empty()) {
    const AvailabilityReport avail =
        ComputeAvailability(timeline, timeline_faults, timeline_horizon);
    for (const auto& a : avail.per_fault) {
      os << "timeline avail fault_at_us=" << a.fault.at / sim::kNsPerUs
         << " kind=" << FaultKindName(a.fault.kind) << " node=" << a.fault.node
         << " dip_depth_pct=" << a.dip_depth_pct << " dip_width_us=" << a.dip_width_us
         << " degraded_us=" << a.degraded_us << "\n";
    }
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%llu.%06llu",
                  static_cast<unsigned long long>(avail.degraded_service_us / 1000000),
                  static_cast<unsigned long long>(avail.degraded_service_us % 1000000));
    os << "timeline avail degraded_service_seconds=" << secs << "\n";
  }
  return os.str();
}

AvailabilityReport ComputeAvailability(const std::vector<ChaosVerdict::TimelineBin>& all_bins,
                                       const std::vector<FaultEvent>& faults,
                                       sim::Tick horizon) {
  AvailabilityReport report;
  // Only bins fully inside the submission window carry signal: the drain
  // tail decays to zero because submission stopped, not because of a fault.
  // The bins are a WindowSeries tiling (uniform width, partial tail), so
  // reconstructing the series and keeping CountWithin(horizon) leading
  // windows is the same prefix filter this loop used to spell out.
  const obs::WindowSeries tiling(
      all_bins.empty() ? 0 : all_bins.front().width,
      all_bins.empty() ? 0 : all_bins.back().start + all_bins.back().width);
  const size_t n_in_horizon = std::min(all_bins.size(), tiling.CountWithin(horizon));
  const std::vector<ChaosVerdict::TimelineBin> bins(all_bins.begin(),
                                                    all_bins.begin() + n_in_horizon);
  report.degraded_us_per_window.assign(bins.size(), 0);
  if (bins.empty() || faults.empty()) {
    return report;
  }
  // Baseline commit throughput: mean committed-per-bin over the healthy
  // prefix (bins entirely before the first fault). Kept as the exact ratio
  // num/den; if the first fault lands in bin 0 there is no healthy prefix
  // and the whole run serves as the (pessimistic) baseline.
  sim::Tick first_fault = faults.front().at;
  for (const auto& f : faults) {
    first_fault = std::min(first_fault, f.at);
  }
  uint64_t num = 0;
  uint64_t den = 0;
  for (const auto& b : bins) {
    if (b.start + b.width <= first_fault) {
      num += b.committed;
      den++;
    }
  }
  if (den == 0 || num == 0) {
    num = 0;
    den = 0;
    for (const auto& b : bins) {
      num += b.committed;
      den++;
    }
  }
  report.baseline_num = num;
  report.baseline_den = den;
  if (num == 0) {
    return report;  // nothing ever committed; "availability" is undefined
  }

  std::vector<uint64_t> weighted_ns_per_window(bins.size(), 0);
  for (const auto& f : faults) {
    AvailStat stat;
    stat.fault = f;
    // The dip window opens at the bin containing the fault (or the first
    // later bin that degrades -- a fault at a bin boundary dips in the next
    // one) and closes at the first bin whose commit count recovers to
    // >= 90% of baseline (committed >= 0.9 * num/den, cross-multiplied so
    // the comparison stays integer). Each degraded bin accrues
    // deficit-weighted service time: a bin at half the baseline throughput
    // contributes half its width.
    uint64_t deficit_weighted_ns = 0;  // sum of width_ns * deficit, / num later
    for (size_t i = 0; i < bins.size(); ++i) {
      const ChaosVerdict::TimelineBin& b = bins[i];
      if (b.start + b.width <= f.at) {
        continue;  // entirely before the fault
      }
      const bool recovered = b.committed * den * 10 >= num * 9;
      if (recovered) {
        if (b.start > f.at) {
          break;  // first healthy bin after the fault ends the dip
        }
        continue;  // fault bin itself healthy; the dip may start next bin
      }
      const uint64_t deficit = num - b.committed * den;  // >0: not recovered
      const uint32_t pct = static_cast<uint32_t>(deficit * 100 / num);
      stat.dip_depth_pct = std::max(stat.dip_depth_pct, pct);
      deficit_weighted_ns += b.width * deficit;
      weighted_ns_per_window[i] += b.width * deficit;
      stat.dip_width_us += b.width / sim::kNsPerUs;
    }
    stat.degraded_us = deficit_weighted_ns / num / sim::kNsPerUs;
    report.degraded_service_us += stat.degraded_us;
    report.per_fault.push_back(stat);
  }
  for (size_t i = 0; i < bins.size(); ++i) {
    report.degraded_us_per_window[i] = weighted_ns_per_window[i] / num / sim::kNsPerUs;
  }
  return report;
}

}  // namespace xenic::chaos
