// Host-resident data store for the RDMA baseline systems (DrTM+H, FaSST,
// DrTM+R): the DrTM+H chained-bucket hash design with per-object version
// counters and lock words in host memory (one-sided ATOMIC-compatible).
//
// Remote access cost depends on the accessing system:
//  * with DrTM+H's coordinator-side address cache, a remote read is a
//    single one-sided READ of the object;
//  * without the cache (NC), the chain is traversed bucket by bucket --
//    PlanLookup reports how many roundtrips and bytes that takes;
//  * FaSST performs the lookup inside an RPC handler on the target host.

#ifndef SRC_BASELINE_BASELINE_STORE_H_
#define SRC_BASELINE_BASELINE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/store/commit_log.h"
#include "src/store/types.h"

namespace xenic::baseline {

using store::Key;
using store::NodeId;
using store::Seq;
using store::TableId;
using store::TxnId;
using store::Value;

class ChainedStore {
 public:
  struct Options {
    size_t capacity_log2 = 16;  // total main slots
    uint32_t bucket_slots = 4;  // B
    size_t value_size = 64;
  };

  explicit ChainedStore(const Options& options);

  struct Object {
    Key key = 0;
    Seq seq = 0;
    TxnId lock_owner = store::kNoTxn;
    Value value;
    bool occupied = false;
  };

  xenic::Status Insert(Key key, const Value& value, Seq seq = 1);
  xenic::Status Apply(Key key, const Value& value, Seq seq);  // upsert
  xenic::Status Erase(Key key);
  const Object* Lookup(Key key) const;
  Object* LookupMutable(Key key);

  // Lock word operations (host-memory CAS semantics; used both by RPC
  // handlers and by one-sided ATOMIC target closures).
  bool TryLock(Key key, TxnId txn);
  void Unlock(Key key, TxnId txn);

  // Remote-read planning for the no-cache configuration: how many chained
  // buckets (roundtrips) a one-sided traversal reads before finding `key`.
  struct LookupPlan {
    uint32_t roundtrips = 1;
    uint64_t bytes = 0;
    bool found = false;
  };
  LookupPlan PlanLookup(Key key) const;

  size_t size() const { return size_; }
  size_t value_size() const { return value_size_; }
  // Wire size of one object (header + value), for one-sided READ sizing.
  uint32_t object_bytes() const { return 24 + static_cast<uint32_t>(value_size_); }

 private:
  struct Bucket {
    std::vector<Object> slots;
    int32_t next = -1;
  };

  size_t HomeBucket(Key key) const { return store::HashKey(key) & mask_; }
  const Bucket* NextBucket(const Bucket& b) const {
    return b.next < 0 ? nullptr : &chain_pool_[static_cast<size_t>(b.next)];
  }

  size_t num_buckets_;
  size_t mask_;
  uint32_t bucket_slots_;
  size_t value_size_;
  std::vector<Bucket> buckets_;
  std::vector<Bucket> chain_pool_;
  size_t size_ = 0;
};

// One node's baseline datastore: tables + host-memory replication log.
class BaselineStore {
 public:
  struct TableSpec {
    TableId id = 0;
    size_t capacity_log2 = 16;
    size_t value_size = 64;
  };

  BaselineStore(const std::vector<TableSpec>& specs);

  ChainedStore& table(TableId id) { return *tables_.at(id); }
  const ChainedStore& table(TableId id) const { return *tables_.at(id); }
  size_t num_tables() const { return tables_.size(); }
  store::CommitLog& log() { return log_; }

 private:
  std::vector<std::unique_ptr<ChainedStore>> tables_;
  store::CommitLog log_;
};

}  // namespace xenic::baseline

#endif  // SRC_BASELINE_BASELINE_STORE_H_
