// Baseline transaction engines over the RDMA NIC model (paper section 5.1):
//
//  * DrTM+H      — hybrid: one-sided READs for execution/validation reads
//                  (with a coordinator-side remote-address cache), RPCs for
//                  locking and commit, one-sided WRITEs for logging.
//  * DrTM+H NC   — DrTM+H without the address cache: execution reads
//                  traverse the chained hash buckets, one roundtrip per
//                  bucket.
//  * FaSST       — two-sided RPCs for every remote operation; lookups and
//                  insertions happen at the RPC handler, and reads+locks
//                  are consolidated into one RPC per shard.
//  * DrTM+R      — one-sided only: ATOMIC CAS locks, READ/WRITE for data
//                  movement, retaining DrTM+H's OCC protocol.
//
// All four share the OCC + primary-backup commit protocol of section 2.2.1
// and operate on the ChainedStore (the DrTM+H data structure). Execution
// logic always runs on the host.

#ifndef SRC_BASELINE_BASELINE_NODE_H_
#define SRC_BASELINE_BASELINE_NODE_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baseline/baseline_store.h"
#include "src/net/transport.h"
#include "src/nicmodel/rdma_nic.h"
#include "src/repl/replication_group.h"
#include "src/sim/resource.h"
#include "src/txn/types.h"

namespace xenic::baseline {

using txn::ClusterMap;
using txn::CommitCallback;
using txn::ExecRound;
using txn::KeyRef;
using txn::ReadResult;
using txn::TxnOutcome;
using txn::TxnRequest;
using txn::TxnStats;
using txn::WriteIntent;

enum class BaselineMode {
  kDrtmH = 0,
  kDrtmHNC,
  kFasst,
  kDrtmR,
};

const char* BaselineModeName(BaselineMode mode);

class BaselineNode {
 public:
  BaselineNode(nicmodel::RdmaNic* nic, sim::Resource* host_cores, BaselineStore* store,
               const ClusterMap* map, BaselineMode mode, std::vector<BaselineNode*>* peers,
               const repl::ReplicationGroup* repl);

  // Returns the transaction id assigned to this submission so harnesses
  // can link retries of the same logical transaction in traces.
  store::TxnId Submit(TxnRequest req, CommitCallback done);

  void StartWorkers(uint32_t count, sim::Tick poll_interval);
  void StopWorkers();
  using WorkerApplyHook = std::function<sim::Tick(const store::LogWrite&)>;
  void set_worker_apply_hook(WorkerApplyHook hook) { worker_apply_hook_ = std::move(hook); }

  store::NodeId id() const { return nic_->id(); }
  BaselineStore& store() { return *store_; }
  nicmodel::RdmaNic& nic() { return *nic_; }
  net::RdmaTransport& transport() { return transport_; }
  sim::Resource& host_cores() { return *host_cores_; }
  TxnStats& stats() { return stats_; }
  BaselineMode mode() const { return mode_; }

 private:
  struct TxnState {
    store::TxnId id = store::kNoTxn;
    TxnRequest req;
    CommitCallback done;
    std::vector<KeyRef> read_keys;
    std::vector<KeyRef> write_keys;
    std::vector<ReadResult> reads;
    std::vector<store::Seq> write_seqs;
    std::vector<WriteIntent> writes;
    std::vector<bool> write_locked;  // per write key
    int round = 0;
    uint32_t pending = 0;
    bool abort = false;
    bool app_abort = false;
    uint32_t exec_read_base = 0;
    uint32_t exec_write_base = 0;
    // Quorum-mode LOG accounting (repl::ReplicationGroup::QuorumArmed).
    // Separate from `pending`, which CommitPhase reuses for its own acks:
    // quorum stragglers must never touch the commit-phase counter.
    std::map<store::NodeId, uint32_t> log_needed;  // shard -> acks still required
    uint32_t log_pending = 0;                      // fan-out sends not yet acked
    bool log_done = false;                         // commit point already fired
  };
  using StatePtr = std::unique_ptr<TxnState>;

  void ExecutePhase(TxnState* st);
  void ReadOneKey(TxnState* st, uint32_t read_idx, sim::Engine::Callback done);
  // Lock phase (non-FaSST modes): after execution, lock the write set; the
  // lock operation revalidates the version for keys that were read
  // optimistically (FaRM-style lock-with-version-check).
  void LockPhase(TxnState* st);
  void LockOneKey(TxnState* st, uint32_t write_idx, sim::Engine::Callback done);
  void FasstExecuteShard(TxnState* st, store::NodeId shard, std::vector<uint32_t> read_idx,
                         std::vector<uint32_t> write_idx, sim::Engine::Callback done);
  void AfterExecuteRound(TxnState* st);
  void RunExecuteLogic(TxnState* st, sim::Engine::Callback next);
  void ValidatePhase(TxnState* st);
  void LogPhase(TxnState* st);
  void CommitPhase(TxnState* st);
  void AbortCleanup(TxnState* st, TxnOutcome outcome);
  void ReportAndFinish(TxnState* st, TxnOutcome outcome);
  void EraseState(store::TxnId id);
  TxnState* FindState(store::TxnId id);
  std::vector<store::LogWrite> ShardWrites(const TxnState& st, store::NodeId shard) const;

  void WorkerTick(uint32_t worker, sim::Tick interval);

  nicmodel::RdmaNic* nic_;
  sim::Resource* host_cores_;
  BaselineStore* store_;
  const ClusterMap* map_;
  const repl::ReplicationGroup* repl_;
  BaselineMode mode_;
  std::vector<BaselineNode*>* peers_;
  std::unordered_map<store::TxnId, StatePtr> txns_;
  uint64_t next_txn_seq_ = 1;
  TxnStats stats_;
  net::RdmaTransport transport_;
  WorkerApplyHook worker_apply_hook_;
  bool workers_running_ = false;
};

}  // namespace xenic::baseline

#endif  // SRC_BASELINE_BASELINE_NODE_H_
