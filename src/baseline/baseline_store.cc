#include "src/baseline/baseline_store.h"

#include <cassert>

namespace xenic::baseline {

ChainedStore::ChainedStore(const Options& options)
    : num_buckets_(1), mask_(0), bucket_slots_(options.bucket_slots),
      value_size_(options.value_size) {
  const size_t target = (size_t{1} << options.capacity_log2) / options.bucket_slots;
  while (num_buckets_ * 2 <= target) {
    num_buckets_ *= 2;
  }
  mask_ = num_buckets_ - 1;
  buckets_.resize(num_buckets_);
  for (auto& b : buckets_) {
    b.slots.resize(bucket_slots_);
  }
}

const ChainedStore::Object* ChainedStore::Lookup(Key key) const {
  const Bucket* b = &buckets_[HomeBucket(key)];
  while (b != nullptr) {
    for (const auto& s : b->slots) {
      if (s.occupied && s.key == key) {
        return &s;
      }
    }
    b = NextBucket(*b);
  }
  return nullptr;
}

ChainedStore::Object* ChainedStore::LookupMutable(Key key) {
  return const_cast<Object*>(Lookup(key));
}

xenic::Status ChainedStore::Insert(Key key, const Value& value, Seq seq) {
  if (Lookup(key) != nullptr) {
    return xenic::Status::AlreadyExists();
  }
  bool in_main = true;
  size_t idx = HomeBucket(key);
  while (true) {
    Bucket& b = in_main ? buckets_[idx] : chain_pool_[idx];
    for (auto& s : b.slots) {
      if (!s.occupied) {
        s = Object{key, seq, store::kNoTxn, value, true};
        size_++;
        return xenic::Status::Ok();
      }
    }
    if (b.next < 0) {
      const auto new_idx = static_cast<int32_t>(chain_pool_.size());
      chain_pool_.emplace_back();
      chain_pool_.back().slots.resize(bucket_slots_);
      chain_pool_.back().slots[0] = Object{key, seq, store::kNoTxn, value, true};
      size_++;
      Bucket& prev = in_main ? buckets_[idx] : chain_pool_[idx];
      prev.next = new_idx;
      return xenic::Status::Ok();
    }
    in_main = false;
    idx = static_cast<size_t>(b.next);
  }
}

xenic::Status ChainedStore::Apply(Key key, const Value& value, Seq seq) {
  if (Object* o = LookupMutable(key)) {
    o->value = value;
    o->seq = seq;
    return xenic::Status::Ok();
  }
  return Insert(key, value, seq);
}

xenic::Status ChainedStore::Erase(Key key) {
  if (Object* o = LookupMutable(key)) {
    *o = Object{};
    size_--;
    return xenic::Status::Ok();
  }
  return xenic::Status::NotFound();
}

bool ChainedStore::TryLock(Key key, TxnId txn) {
  Object* o = LookupMutable(key);
  if (o == nullptr) {
    // Insert a placeholder so the lock word exists (insert-locking).
    xenic::Status s = Insert(key, Value(), 0);
    assert(s.ok());
    (void)s;
    o = LookupMutable(key);
  }
  if (o->lock_owner != store::kNoTxn && o->lock_owner != txn) {
    return false;
  }
  o->lock_owner = txn;
  return true;
}

void ChainedStore::Unlock(Key key, TxnId txn) {
  if (Object* o = LookupMutable(key)) {
    if (o->lock_owner == txn) {
      o->lock_owner = store::kNoTxn;
      // Placeholder inserted by insert-locking with no committed value:
      // remove it again.
      if (o->seq == 0 && o->value.empty()) {
        *o = Object{};
        size_--;
      }
    }
  }
}

ChainedStore::LookupPlan ChainedStore::PlanLookup(Key key) const {
  LookupPlan plan;
  plan.roundtrips = 0;
  const Bucket* b = &buckets_[HomeBucket(key)];
  while (b != nullptr) {
    plan.roundtrips++;
    plan.bytes += static_cast<uint64_t>(bucket_slots_) * object_bytes();
    for (const auto& s : b->slots) {
      if (s.occupied && s.key == key) {
        plan.found = true;
        return plan;
      }
    }
    b = NextBucket(*b);
  }
  return plan;
}

BaselineStore::BaselineStore(const std::vector<TableSpec>& specs) {
  tables_.resize(specs.size());
  for (const auto& spec : specs) {
    assert(spec.id < specs.size());
    ChainedStore::Options o;
    o.capacity_log2 = spec.capacity_log2;
    o.value_size = spec.value_size;
    tables_[spec.id] = std::make_unique<ChainedStore>(o);
  }
}

}  // namespace xenic::baseline
