#include "src/baseline/baseline_cluster.h"

namespace xenic::baseline {

BaselineCluster::BaselineCluster(const BaselineClusterOptions& options,
                                 const txn::Partitioner* partitioner)
    : options_(options), repl_(&map_, options.quorum) {
  map_.num_nodes = options.num_nodes;
  map_.replication = options.replication;
  map_.partitioner = partitioner;

  std::vector<sim::Resource*> cores;
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    host_cores_.push_back(
        std::make_unique<sim::Resource>(&engine_, "host_cores", options.perf.host_threads));
    cores.push_back(host_cores_.back().get());
    stores_.push_back(std::make_unique<BaselineStore>(options.tables));
  }
  fabric_ = std::make_unique<nicmodel::RdmaFabric>(&engine_, options.perf, cores);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<BaselineNode>(&fabric_->node(i), cores[i],
                                                    stores_[i].get(), &map_, options.mode,
                                                    &peers_, &repl_));
  }
  for (auto& n : nodes_) {
    peers_.push_back(n.get());
  }
}

void BaselineCluster::LoadReplicated(store::TableId table, store::Key key,
                                     const store::Value& value, store::Seq seq) {
  const store::NodeId primary = map_.PrimaryOf(table, key);
  stores_[primary]->table(table).Insert(key, value, seq);
  for (store::NodeId b : repl_.BackupsOf(primary)) {
    stores_[b]->table(table).Insert(key, value, seq);
  }
}

void BaselineCluster::StartWorkers() {
  for (auto& n : nodes_) {
    n->StartWorkers(options_.workers_per_node, options_.worker_poll_interval);
  }
}

void BaselineCluster::StopWorkers() {
  for (auto& n : nodes_) {
    n->StopWorkers();
  }
}

txn::TxnStats BaselineCluster::TotalStats() const {
  txn::TxnStats total;
  for (const auto& n : nodes_) {
    const txn::TxnStats& s = n->stats();
    total.committed += s.committed;
    total.aborted += s.aborted;
    total.app_aborted += s.app_aborted;
    total.remote_rounds += s.remote_rounds;
    total.messages += s.messages;
    total.by_type.Merge(s.by_type);
  }
  return total;
}

void BaselineCluster::ResetStats() {
  for (auto& n : nodes_) {
    n->stats().Reset();
  }
}

}  // namespace xenic::baseline
