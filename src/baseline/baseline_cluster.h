// BaselineCluster: assembles a baseline-system deployment (RDMA fabric,
// per-node chained stores, host thread pools, transaction engines) for one
// of the four comparison configurations.

#ifndef SRC_BASELINE_BASELINE_CLUSTER_H_
#define SRC_BASELINE_BASELINE_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/baseline/baseline_node.h"
#include "src/nicmodel/rdma_nic.h"

namespace xenic::baseline {

struct BaselineClusterOptions {
  uint32_t num_nodes = 6;
  uint32_t replication = 3;
  // Commit-point quorum (total copies including the primary); 0 or ==
  // replication means wait-for-all (see repl::ReplicationGroup).
  uint32_t quorum = 0;
  net::PerfModel perf;
  BaselineMode mode = BaselineMode::kDrtmH;
  std::vector<BaselineStore::TableSpec> tables;
  uint32_t workers_per_node = 3;
  sim::Tick worker_poll_interval = 2 * sim::kNsPerUs;
};

class BaselineCluster {
 public:
  BaselineCluster(const BaselineClusterOptions& options, const txn::Partitioner* partitioner);

  sim::Engine& engine() { return engine_; }
  BaselineNode& node(store::NodeId id) { return *nodes_[id]; }
  BaselineStore& store(store::NodeId id) { return *stores_[id]; }
  sim::Resource& host_cores(store::NodeId id) { return *host_cores_[id]; }
  const txn::ClusterMap& map() const { return map_; }
  const repl::ReplicationGroup& repl() const { return repl_; }
  uint32_t size() const { return options_.num_nodes; }
  BaselineMode mode() const { return options_.mode; }

  void LoadReplicated(store::TableId table, store::Key key, const store::Value& value,
                      store::Seq seq = 1);
  void StartWorkers();
  void StopWorkers();
  txn::TxnStats TotalStats() const;
  void ResetStats();

 private:
  BaselineClusterOptions options_;
  sim::Engine engine_;
  txn::ClusterMap map_;
  repl::ReplicationGroup repl_;
  std::vector<std::unique_ptr<sim::Resource>> host_cores_;
  std::unique_ptr<nicmodel::RdmaFabric> fabric_;
  std::vector<std::unique_ptr<BaselineStore>> stores_;
  std::vector<std::unique_ptr<BaselineNode>> nodes_;
  std::vector<BaselineNode*> peers_;
};

}  // namespace xenic::baseline

#endif  // SRC_BASELINE_BASELINE_CLUSTER_H_
