#include "src/baseline/baseline_node.h"

#include <algorithm>
#include <cassert>

namespace xenic::baseline {

namespace {

constexpr sim::Tick kHostInitCost = 100;
constexpr sim::Tick kHostKeyCost = 60;
constexpr sim::Tick kRpcHandlerPerKey = 100;
constexpr sim::Tick kHostFinishBase = 80;
constexpr sim::Tick kWorkerPollCost = 80;
constexpr sim::Tick kWorkerRecordCost = 150;
constexpr sim::Tick kWorkerWriteCost = 120;
constexpr int kWorkerBatch = 16;

bool ContainsKey(const std::vector<KeyRef>& v, const KeyRef& k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

}  // namespace

const char* BaselineModeName(BaselineMode mode) {
  switch (mode) {
    case BaselineMode::kDrtmH:
      return "DrTM+H";
    case BaselineMode::kDrtmHNC:
      return "DrTM+H NC";
    case BaselineMode::kFasst:
      return "FaSST";
    case BaselineMode::kDrtmR:
      return "DrTM+R";
  }
  return "?";
}

BaselineNode::BaselineNode(nicmodel::RdmaNic* nic, sim::Resource* host_cores,
                           BaselineStore* store, const ClusterMap* map, BaselineMode mode,
                           std::vector<BaselineNode*>* peers,
                           const repl::ReplicationGroup* repl)
    : nic_(nic),
      host_cores_(host_cores),
      store_(store),
      map_(map),
      repl_(repl),
      mode_(mode),
      peers_(peers),
      transport_(nic, &stats_.messages, &stats_.by_type) {}

store::TxnId BaselineNode::Submit(TxnRequest req, CommitCallback done) {
  auto st = std::make_unique<TxnState>();
  st->id = store::MakeTxnId(id(), next_txn_seq_++);
  st->req = std::move(req);
  st->done = std::move(done);
  st->read_keys = st->req.reads;
  st->write_keys = st->req.writes;
  st->reads.resize(st->read_keys.size());
  st->write_seqs.assign(st->write_keys.size(), 0);
  st->writes.resize(st->write_keys.size());
  st->write_locked.assign(st->write_keys.size(), false);
  TxnState* raw = st.get();
  txns_[raw->id] = std::move(st);
  const store::TxnId txn = raw->id;
  // Everything downstream (host work, RDMA verbs, replies) inherits this
  // causal context through the engine's event wrapper, so every span the
  // transaction touches carries its id.
  nic_->engine()->set_trace_ctx(txn);
  host_cores_->Submit(kHostInitCost, [this, txn] {
    TxnState* st = FindState(txn);
    assert(st != nullptr);
    ExecutePhase(st);
  });
  return txn;
}

void BaselineNode::ExecutePhase(TxnState* st) {
  stats_.remote_rounds++;
  const uint32_t rbase = st->exec_read_base;
  const uint32_t wbase = st->exec_write_base;

  if (mode_ == BaselineMode::kFasst) {
    // Consolidated per-shard RPCs: one request reads and locks everything
    // this shard holds.
    struct Group {
      store::NodeId shard;
      std::vector<uint32_t> reads;
      std::vector<uint32_t> writes;
    };
    std::vector<Group> groups;
    auto group_of = [&](store::NodeId p) -> Group& {
      for (auto& g : groups) {
        if (g.shard == p) {
          return g;
        }
      }
      groups.push_back(Group{p, {}, {}});
      return groups.back();
    };
    for (uint32_t i = rbase; i < st->read_keys.size(); ++i) {
      group_of(map_->PrimaryOf(st->read_keys[i].table, st->read_keys[i].key)).reads.push_back(i);
    }
    for (uint32_t i = wbase; i < st->write_keys.size(); ++i) {
      group_of(map_->PrimaryOf(st->write_keys[i].table, st->write_keys[i].key))
          .writes.push_back(i);
    }
    st->pending = static_cast<uint32_t>(groups.size());
    if (st->pending == 0) {
      AfterExecuteRound(st);
      return;
    }
    const store::TxnId txn = st->id;
    for (auto& g : groups) {
      FasstExecuteShard(st, g.shard, std::move(g.reads), std::move(g.writes), [this, txn] {
        TxnState* st = FindState(txn);
        if (st == nullptr) {
          return;
        }
        if (--st->pending == 0) {
          if (st->abort) {
            AbortCleanup(st, TxnOutcome::kAborted);
          } else {
            AfterExecuteRound(st);
          }
        }
      });
    }
    return;
  }

  // One-sided modes: the execution phase issues reads only; write locks
  // are acquired after execution completes (FaRM/DrTM phase order).
  (void)wbase;
  st->pending = static_cast<uint32_t>(st->read_keys.size() - rbase);
  if (st->pending == 0) {
    AfterExecuteRound(st);
    return;
  }
  const store::TxnId txn = st->id;
  auto one_done = [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (--st->pending == 0) {
      if (st->abort) {
        AbortCleanup(st, TxnOutcome::kAborted);
      } else {
        AfterExecuteRound(st);
      }
    }
  };
  for (uint32_t i = rbase; i < st->read_keys.size(); ++i) {
    ReadOneKey(st, i, one_done);
  }
}

void BaselineNode::LockPhase(TxnState* st) {
  st->pending = static_cast<uint32_t>(st->write_keys.size());
  if (st->pending == 0) {
    ValidatePhase(st);
    return;
  }
  stats_.remote_rounds++;
  const store::TxnId txn = st->id;
  auto one_done = [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (--st->pending == 0) {
      if (st->abort) {
        AbortCleanup(st, TxnOutcome::kAborted);
      } else {
        ValidatePhase(st);
      }
    }
  };
  for (uint32_t i = 0; i < st->write_keys.size(); ++i) {
    LockOneKey(st, i, one_done);
  }
}

void BaselineNode::ReadOneKey(TxnState* st, uint32_t read_idx, sim::Engine::Callback done) {
  const KeyRef k = st->read_keys[read_idx];
  const store::NodeId shard = map_->PrimaryOf(k.table, k.key);
  const store::TxnId txn = st->id;

  if (shard == id()) {
    host_cores_->Submit(kHostKeyCost, [this, txn, read_idx, k, done = std::move(done)]() mutable {
      TxnState* st = FindState(txn);
      if (st == nullptr) {
        return;
      }
      if (const auto* o = store_->table(k.table).Lookup(k.key)) {
        if (o->lock_owner != store::kNoTxn && o->lock_owner != txn) {
          st->abort = true;
        } else {
          st->reads[read_idx] = ReadResult{true, o->seq, o->value};
        }
      }
      done();
    });
    return;
  }

  BaselineNode* target = (*peers_)[shard];
  ChainedStore& table = target->store_->table(k.table);
  const uint32_t obj_bytes = table.object_bytes();

  // Result holder filled by the target-side closure at access time.
  struct Holder {
    bool found = false;
    store::Seq seq = 0;
    store::TxnId lock = store::kNoTxn;
    store::Value value;
  };
  auto h = std::make_shared<Holder>();
  auto fetch = [&table, key = k.key, h] {
    if (const auto* o = table.Lookup(key)) {
      h->found = true;
      h->seq = o->seq;
      h->lock = o->lock_owner;
      h->value = o->value;
    }
  };
  auto finish = [this, txn, read_idx, h, done = std::move(done)]() mutable {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (h->found && h->lock != store::kNoTxn && h->lock != txn) {
      st->abort = true;
    } else if (h->found) {
      st->reads[read_idx] = ReadResult{true, h->seq, std::move(h->value)};
    }
    done();
  };

  if (mode_ == BaselineMode::kDrtmHNC) {
    // No address cache: traverse the chain, one roundtrip per bucket. The
    // final read carries the object. Each hop is a counted READ message
    // (the extra roundtrips are exactly what the NC ablation measures).
    const auto plan = table.PlanLookup(k.key);
    const uint32_t hops = std::max<uint32_t>(1, plan.roundtrips);
    const uint32_t bucket_bytes = static_cast<uint32_t>(plan.bytes / hops);
    // Build the hop chain back-to-front (the roundtrip count is known up
    // front); a self-capturing shared function here would be a reference
    // cycle leaking once per remote read.
    sim::Engine::Callback chain = [this, shard, bucket_bytes, txn, fetch,
                                   finish = std::move(finish)]() mutable {
      transport_.Read(net::MsgType::kRead, shard, bucket_bytes, fetch, std::move(finish), txn);
    };
    for (uint32_t i = 1; i < hops; ++i) {
      chain = [this, shard, bucket_bytes, txn, next = std::move(chain)]() mutable {
        transport_.Read(net::MsgType::kRead, shard, bucket_bytes, std::move(next), txn);
      };
    }
    chain();
    return;
  }
  // Cached remote address: one READ of the object.
  transport_.Read(net::MsgType::kRead, shard, obj_bytes, fetch, std::move(finish), txn);
}

void BaselineNode::LockOneKey(TxnState* st, uint32_t write_idx, sim::Engine::Callback done) {
  const KeyRef k = st->write_keys[write_idx];
  const store::NodeId shard = map_->PrimaryOf(k.table, k.key);
  const store::TxnId txn = st->id;

  // Version check at lock time for keys read optimistically during
  // execution: the value the write was computed from must still be
  // current, else abort.
  bool has_expected = false;
  store::Seq expected = 0;
  for (size_t i = 0; i < st->read_keys.size(); ++i) {
    if (st->read_keys[i] == k) {
      has_expected = true;
      expected = st->reads[i].seq;
      break;
    }
  }

  if (shard == id()) {
    host_cores_->Submit(kHostKeyCost, [this, txn, write_idx, k, has_expected, expected,
                                       done = std::move(done)]() mutable {
      TxnState* st = FindState(txn);
      if (st == nullptr) {
        return;
      }
      ChainedStore& table = store_->table(k.table);
      if (table.TryLock(k.key, txn)) {
        const auto* o = table.Lookup(k.key);
        const store::Seq cur = o != nullptr ? o->seq : 0;
        if (has_expected && cur != expected) {
          table.Unlock(k.key, txn);
          st->abort = true;
        } else {
          st->write_locked[write_idx] = true;
          st->write_seqs[write_idx] = cur;
        }
      } else {
        st->abort = true;
      }
      done();
    });
    return;
  }

  BaselineNode* target = (*peers_)[shard];
  ChainedStore& table = target->store_->table(k.table);

  if (mode_ == BaselineMode::kDrtmR) {
    // One-sided ATOMIC CAS on the versioned lock word (DrTM encodes the
    // version in the word, so the CAS itself enforces the expected
    // version); bit 0 of the result = acquired.
    transport_.Atomic(
        net::MsgType::kLock, shard,
        [&table, key = k.key, txn, has_expected, expected]() -> uint64_t {
          const auto* o = table.Lookup(key);
          const store::Seq cur = o != nullptr ? o->seq : 0;
          if (has_expected && cur != expected) {
            return 0;
          }
          if (!table.TryLock(key, txn)) {
            return 0;
          }
          return (static_cast<uint64_t>(cur) << 1) | 1u;
        },
        [this, txn, write_idx, done = std::move(done)](uint64_t word) mutable {
          TxnState* st = FindState(txn);
          if (st == nullptr) {
            return;
          }
          if ((word & 1u) == 0) {
            st->abort = true;
          } else {
            st->write_locked[write_idx] = true;
            st->write_seqs[write_idx] = static_cast<store::Seq>(word >> 1);
          }
          done();
        },
        txn);
    return;
  }

  // DrTM+H (both variants): lock via RPC, version-checked in the handler.
  struct Holder {
    bool ok = false;
    store::Seq seq = 0;
  };
  auto h = std::make_shared<Holder>();
  transport_.Rpc(net::MsgType::kLock, shard, 32, 16, kRpcHandlerPerKey,
            [&table, key = k.key, txn, has_expected, expected, h] {
              if (table.TryLock(key, txn)) {
                const auto* o = table.Lookup(key);
                const store::Seq cur = o != nullptr ? o->seq : 0;
                if (has_expected && cur != expected) {
                  table.Unlock(key, txn);
                } else {
                  h->ok = true;
                  h->seq = cur;
                }
              }
            },
            [this, txn, write_idx, h, done = std::move(done)]() mutable {
              TxnState* st = FindState(txn);
              if (st == nullptr) {
                return;
              }
              if (h->ok) {
                st->write_locked[write_idx] = true;
                st->write_seqs[write_idx] = h->seq;
              } else {
                st->abort = true;
              }
              done();
            },
            txn);
}

void BaselineNode::FasstExecuteShard(TxnState* st, store::NodeId shard,
                                     std::vector<uint32_t> read_idx,
                                     std::vector<uint32_t> write_idx,
                                     sim::Engine::Callback done) {
  const store::TxnId txn = st->id;
  const size_t n_keys = read_idx.size() + write_idx.size();

  if (shard == id()) {
    host_cores_->Submit(
        kHostKeyCost * static_cast<sim::Tick>(n_keys),
        [this, txn, read_idx = std::move(read_idx), write_idx = std::move(write_idx),
         done = std::move(done)]() mutable {
          TxnState* st = FindState(txn);
          if (st == nullptr) {
            return;
          }
          for (uint32_t i : write_idx) {
            const KeyRef k = st->write_keys[i];
            if (store_->table(k.table).TryLock(k.key, txn)) {
              const auto* o = store_->table(k.table).Lookup(k.key);
              const store::Seq cur = o != nullptr ? o->seq : 0;
              bool stale = false;
              for (size_t r = 0; r < st->read_keys.size(); ++r) {
                if (st->read_keys[r] == k && st->reads[r].found &&
                    st->reads[r].seq != cur) {
                  stale = true;
                  break;
                }
              }
              if (stale) {
                store_->table(k.table).Unlock(k.key, txn);
                st->abort = true;
              } else {
                st->write_locked[i] = true;
                st->write_seqs[i] = cur;
              }
            } else {
              st->abort = true;
            }
          }
          for (uint32_t i : read_idx) {
            const KeyRef k = st->read_keys[i];
            if (const auto* o = store_->table(k.table).Lookup(k.key)) {
              if (o->lock_owner != store::kNoTxn && o->lock_owner != txn) {
                st->abort = true;
              } else {
                st->reads[i] = ReadResult{true, o->seq, o->value};
              }
            }
          }
          done();
        });
    return;
  }

  BaselineNode* target = (*peers_)[shard];

  struct Holder {
    bool abort = false;
    std::vector<std::pair<uint32_t, ReadResult>> reads;
    std::vector<std::pair<uint32_t, store::Seq>> seqs;
    std::vector<KeyRef> locked;
  };
  auto h = std::make_shared<Holder>();
  uint32_t req_bytes = net::wire::ExecuteReq(read_idx.size(), write_idx.size());
  uint32_t resp_bytes = 32;
  for (uint32_t i : read_idx) {
    resp_bytes += static_cast<uint32_t>(
        target->store_->table(st->read_keys[i].table).value_size());
  }

  // Snapshot key lists for the handler closure. Write keys read in an
  // EARLIER round carry the expected version for a lock-time check (keys
  // read in this same RPC are read+locked atomically by the handler).
  struct WKey {
    uint32_t idx;
    KeyRef key;
    bool has_expected;
    store::Seq expected;
  };
  std::vector<std::pair<uint32_t, KeyRef>> rkeys;
  std::vector<WKey> wkeys;
  for (uint32_t i : read_idx) {
    rkeys.emplace_back(i, st->read_keys[i]);
  }
  for (uint32_t i : write_idx) {
    WKey w{i, st->write_keys[i], false, 0};
    for (size_t r = 0; r < st->read_keys.size(); ++r) {
      if (st->read_keys[r] == w.key && st->reads[r].found) {
        w.has_expected = true;
        w.expected = st->reads[r].seq;
        break;
      }
    }
    wkeys.push_back(w);
  }

  transport_.Rpc(
      net::MsgType::kExecute, shard, req_bytes, resp_bytes,
      kRpcHandlerPerKey * static_cast<sim::Tick>(n_keys),
      [target, txn, h, rkeys = std::move(rkeys), wkeys = std::move(wkeys)] {
        for (const auto& w : wkeys) {
          const auto& k = w.key;
          const uint32_t i = w.idx;
          if (target->store_->table(k.table).TryLock(k.key, txn)) {
            const auto* o = target->store_->table(k.table).Lookup(k.key);
            const store::Seq cur = o != nullptr ? o->seq : 0;
            if (w.has_expected && cur != w.expected) {
              target->store_->table(k.table).Unlock(k.key, txn);
              h->abort = true;
            } else {
              h->locked.push_back(k);
              h->seqs.emplace_back(i, cur);
            }
          } else {
            h->abort = true;
          }
        }
        for (const auto& [i, k] : rkeys) {
          if (const auto* o = target->store_->table(k.table).Lookup(k.key)) {
            if (o->lock_owner != store::kNoTxn && o->lock_owner != txn) {
              h->abort = true;
            } else {
              h->reads.emplace_back(i, ReadResult{true, o->seq, o->value});
            }
          }
        }
        if (h->abort) {
          // All-or-nothing at this shard: release what we took.
          for (const auto& k : h->locked) {
            target->store_->table(k.table).Unlock(k.key, txn);
          }
          h->locked.clear();
        }
      },
      [this, txn, h, done = std::move(done)]() mutable {
        TxnState* st = FindState(txn);
        if (st == nullptr) {
          return;
        }
        if (h->abort) {
          st->abort = true;
        } else {
          for (auto& [i, r] : h->reads) {
            st->reads[i] = std::move(r);
          }
          for (auto& [i, s] : h->seqs) {
            st->write_seqs[i] = s;
            st->write_locked[i] = true;
          }
        }
        done();
      },
      txn);
}

void BaselineNode::AfterExecuteRound(TxnState* st) {
  const store::TxnId txn = st->id;
  RunExecuteLogic(st, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (st->app_abort) {
      AbortCleanup(st, TxnOutcome::kAppAborted);
      return;
    }
    if (st->exec_read_base < st->read_keys.size() ||
        st->exec_write_base < st->write_keys.size()) {
      st->round++;
      ExecutePhase(st);
      return;
    }
    if (mode_ == BaselineMode::kFasst) {
      // FaSST consolidated read+lock already happened per round.
      ValidatePhase(st);
    } else {
      LockPhase(st);
    }
  });
}

void BaselineNode::RunExecuteLogic(TxnState* st, sim::Engine::Callback next) {
  const store::TxnId txn = st->id;
  host_cores_->Submit(st->req.exec_cost, [this, txn, next = std::move(next)]() mutable {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    std::vector<KeyRef> add_reads;
    std::vector<KeyRef> add_writes;
    bool abort_flag = false;
    ExecRound er;
    er.round = st->round;
    er.read_keys = &st->read_keys;
    er.reads = &st->reads;
    er.write_keys = &st->write_keys;
    er.writes = &st->writes;
    er.add_reads = &add_reads;
    er.add_writes = &add_writes;
    er.abort = &abort_flag;
    if (st->req.execute) {
      st->req.execute(er);
    }
    st->app_abort = abort_flag;
    st->exec_read_base = static_cast<uint32_t>(st->read_keys.size());
    st->exec_write_base = static_cast<uint32_t>(st->write_keys.size());
    for (const auto& k : add_reads) {
      st->read_keys.push_back(k);
      st->reads.emplace_back();
    }
    for (const auto& k : add_writes) {
      st->write_keys.push_back(k);
      st->write_seqs.push_back(0);
      st->writes.emplace_back();
      st->write_locked.push_back(false);
    }
    next();
  });
}

void BaselineNode::ValidatePhase(TxnState* st) {
  std::vector<std::pair<uint32_t, KeyRef>> checks;
  std::vector<store::NodeId> involved;
  for (uint32_t i = 0; i < st->read_keys.size(); ++i) {
    const auto& k = st->read_keys[i];
    const store::NodeId p = map_->PrimaryOf(k.table, k.key);
    if (std::find(involved.begin(), involved.end(), p) == involved.end()) {
      involved.push_back(p);
    }
    if (!ContainsKey(st->write_keys, k)) {
      checks.emplace_back(i, k);
    }
  }

  // Atomic-snapshot shortcuts: a single-key read, or (FaSST) a read-only
  // single-shard transaction whose reads happened inside one RPC handler.
  const bool atomic = st->round == 0 && st->write_keys.empty() &&
                      (st->read_keys.size() <= 1 ||
                       (mode_ == BaselineMode::kFasst && involved.size() == 1));
  if (checks.empty() || atomic) {
    if (st->write_keys.empty() && st->req.local_log_writes.empty()) {
      ReportAndFinish(st, TxnOutcome::kCommitted);
      EraseState(st->id);
      return;
    }
    LogPhase(st);
    return;
  }

  stats_.remote_rounds++;
  const store::TxnId txn = st->id;
  auto one_done = [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (--st->pending > 0) {
      return;
    }
    if (st->abort) {
      AbortCleanup(st, TxnOutcome::kAborted);
      return;
    }
    if (st->write_keys.empty() && st->req.local_log_writes.empty()) {
      ReportAndFinish(st, TxnOutcome::kCommitted);
      EraseState(txn);
      return;
    }
    LogPhase(st);
  };

  if (mode_ == BaselineMode::kFasst) {
    // Per-shard validation RPCs.
    struct Group {
      store::NodeId shard;
      std::vector<std::pair<uint32_t, KeyRef>> checks;
    };
    std::vector<Group> groups;
    for (auto& [i, k] : checks) {
      const store::NodeId p = map_->PrimaryOf(k.table, k.key);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const Group& g) { return g.shard == p; });
      if (it == groups.end()) {
        groups.push_back(Group{p, {}});
        it = groups.end() - 1;
      }
      it->checks.emplace_back(i, k);
    }
    st->pending = static_cast<uint32_t>(groups.size());
    for (auto& g : groups) {
      if (g.shard == id()) {
        host_cores_->Submit(
            kHostKeyCost * static_cast<sim::Tick>(g.checks.size()),
            [this, txn, checks = std::move(g.checks), one_done]() mutable {
              TxnState* st = FindState(txn);
              if (st == nullptr) {
                return;
              }
              for (const auto& [i, k] : checks) {
                const auto* o = store_->table(k.table).Lookup(k.key);
                const store::Seq cur = o != nullptr ? o->seq : 0;
                const store::TxnId owner = o != nullptr ? o->lock_owner : store::kNoTxn;
                if (cur != st->reads[i].seq || owner != store::kNoTxn) {
                  st->abort = true;
                }
              }
              one_done();
            });
        continue;
      }
      BaselineNode* target = (*peers_)[g.shard];
      auto ok = std::make_shared<bool>(true);
      std::vector<std::pair<KeyRef, store::Seq>> handler_checks;
      for (const auto& [i, k] : g.checks) {
        handler_checks.emplace_back(k, st->reads[i].seq);
      }
      transport_.Rpc(net::MsgType::kValidate, g.shard,
                net::wire::ValidateReq(handler_checks.size()), 16,
                kRpcHandlerPerKey * static_cast<sim::Tick>(handler_checks.size()),
                [target, ok, handler_checks = std::move(handler_checks)] {
                  for (const auto& [k, expected] : handler_checks) {
                    const auto* o = target->store_->table(k.table).Lookup(k.key);
                    const store::Seq cur = o != nullptr ? o->seq : 0;
                    const store::TxnId owner = o != nullptr ? o->lock_owner : store::kNoTxn;
                    if (cur != expected || owner != store::kNoTxn) {
                      *ok = false;
                    }
                  }
                },
                [this, txn, ok, one_done]() mutable {
                  TxnState* st = FindState(txn);
                  if (st == nullptr) {
                    return;
                  }
                  if (!*ok) {
                    st->abort = true;
                  }
                  one_done();
                },
                txn);
    }
    return;
  }

  // One-sided modes: re-read each key's header (address known from the
  // execute phase, so one roundtrip each).
  st->pending = static_cast<uint32_t>(checks.size());
  for (const auto& [i, k] : checks) {
    const store::NodeId shard = map_->PrimaryOf(k.table, k.key);
    if (shard == id()) {
      const uint32_t idx = i;
      const KeyRef key = k;
      host_cores_->Submit(kHostKeyCost, [this, txn, idx, key, one_done]() mutable {
        TxnState* st = FindState(txn);
        if (st == nullptr) {
          return;
        }
        const auto* o = store_->table(key.table).Lookup(key.key);
        const store::Seq cur = o != nullptr ? o->seq : 0;
        const store::TxnId owner = o != nullptr ? o->lock_owner : store::kNoTxn;
        if (cur != st->reads[idx].seq || owner != store::kNoTxn) {
          st->abort = true;
        }
        one_done();
      });
      continue;
    }
    BaselineNode* target = (*peers_)[shard];
    ChainedStore& table = target->store_->table(k.table);
    struct Holder {
      store::Seq seq = 0;
      store::TxnId lock = store::kNoTxn;
    };
    auto h = std::make_shared<Holder>();
    const uint32_t idx = i;
    const Key key = k.key;
    transport_.Read(net::MsgType::kValidate, shard, 16,
               [&table, key, h] {
                 if (const auto* o = table.Lookup(key)) {
                   h->seq = o->seq;
                   h->lock = o->lock_owner;
                 }
               },
               [this, txn, idx, h, one_done]() mutable {
                 TxnState* st = FindState(txn);
                 if (st == nullptr) {
                   return;
                 }
                 if (h->seq != st->reads[idx].seq || h->lock != store::kNoTxn) {
                   st->abort = true;
                 }
                 one_done();
               },
               txn);
  }
}

std::vector<store::LogWrite> BaselineNode::ShardWrites(const TxnState& st,
                                                       store::NodeId shard) const {
  std::vector<store::LogWrite> out;
  for (size_t i = 0; i < st.write_keys.size(); ++i) {
    const auto& k = st.write_keys[i];
    if (map_->PrimaryOf(k.table, k.key) != shard) {
      continue;
    }
    store::LogWrite w;
    w.table = k.table;
    w.key = k.key;
    w.seq = st.write_seqs[i] + 1;
    w.value = st.writes[i].value;
    w.is_delete = st.writes[i].is_delete;
    out.push_back(std::move(w));
  }
  if (shard == id()) {
    for (const auto& w : st.req.local_log_writes) {
      out.push_back(w);
    }
  }
  return out;
}

void BaselineNode::LogPhase(TxnState* st) {
  std::vector<store::NodeId> shards;
  for (const auto& k : st->write_keys) {
    const store::NodeId p = map_->PrimaryOf(k.table, k.key);
    if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
      shards.push_back(p);
    }
  }
  if (!st->req.local_log_writes.empty() &&
      std::find(shards.begin(), shards.end(), id()) == shards.end()) {
    shards.push_back(id());
  }

  const store::TxnId txn = st->id;
  uint32_t pending = 0;
  struct Send {
    store::NodeId backup;
    store::NodeId shard;
    store::LogRecord rec;
  };
  std::vector<Send> sends;
  for (store::NodeId shard : shards) {
    store::LogRecord rec;
    rec.type = store::LogRecordType::kLog;
    rec.txn = txn;
    rec.writes = ShardWrites(*st, shard);
    for (store::NodeId backup : repl_->BackupsOf(shard)) {
      sends.push_back(Send{backup, shard, rec});
      pending++;
    }
  }
  if (pending == 0) {
    ReportAndFinish(st, TxnOutcome::kCommitted);
    CommitPhase(st);
    return;
  }
  stats_.remote_rounds++;

  const bool quorum = repl_->QuorumArmed();
  std::function<void(store::NodeId)> one_done;
  if (quorum) {
    // Quorum commit point: fire once every written shard collected its
    // required ack count; stragglers keep draining log_pending so the
    // bookkeeping stays honest, but log_done makes them no-ops. The
    // commit-phase counter st->pending is never shared with LOG acks here.
    st->log_pending = pending;
    st->log_done = false;
    st->log_needed.clear();
    for (store::NodeId shard : shards) {
      st->log_needed[shard] = repl_->AcksRequired(shard);
    }
    one_done = [this, txn](store::NodeId shard) {
      TxnState* st = FindState(txn);
      if (st == nullptr) {
        return;
      }
      assert(st->log_pending > 0);
      st->log_pending--;
      auto it = st->log_needed.find(shard);
      if (it != st->log_needed.end() && it->second > 0) {
        it->second--;
      }
      if (st->log_done) {
        return;
      }
      for (const auto& [s, needed] : st->log_needed) {
        if (needed > 0) {
          return;
        }
      }
      st->log_done = true;
      ReportAndFinish(st, TxnOutcome::kCommitted);
      CommitPhase(st);
    };
  } else {
    st->pending = pending;
    one_done = [this, txn](store::NodeId shard) {
      (void)shard;
      TxnState* st = FindState(txn);
      if (st == nullptr) {
        return;
      }
      if (--st->pending > 0) {
        return;
      }
      ReportAndFinish(st, TxnOutcome::kCommitted);
      CommitPhase(st);
    };
  }

  for (auto& s : sends) {
    const auto bytes = static_cast<uint32_t>(s.rec.ByteSize());
    BaselineNode* target = (*peers_)[s.backup];
    auto append = [target, rec = std::move(s.rec)]() mutable {
      auto r = target->store_->log().Append(std::move(rec));
      assert(r.ok() && "baseline backup log overflow");
      (void)r;
    };
    auto acked = [one_done, shard = s.shard] { one_done(shard); };
    if (mode_ == BaselineMode::kFasst) {
      transport_.Rpc(net::MsgType::kLog, s.backup, bytes, 16, kRpcHandlerPerKey,
                     std::move(append), std::move(acked), txn);
    } else {
      // One-sided WRITE into the backup's message log (FaRM-style).
      transport_.Write(net::MsgType::kLog, s.backup, bytes, std::move(append),
                       std::move(acked), txn);
    }
  }
}

void BaselineNode::CommitPhase(TxnState* st) {
  std::vector<store::NodeId> shards;
  for (const auto& k : st->write_keys) {
    const store::NodeId p = map_->PrimaryOf(k.table, k.key);
    if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
      shards.push_back(p);
    }
  }
  const store::TxnId txn = st->id;
  st->pending = 0;

  auto one_done = [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (--st->pending == 0) {
      EraseState(txn);
    }
  };

  if (shards.empty()) {
    EraseState(txn);
    return;
  }

  for (store::NodeId shard : shards) {
    std::vector<store::LogWrite> writes = ShardWrites(*st, shard);
    // Strip workload-managed writes: primaries apply only table writes
    // (host_finish already handled workload structures locally).
    std::erase_if(writes, [this](const store::LogWrite& w) {
      return w.table >= store_->num_tables();
    });
    if (writes.empty()) {
      continue;
    }

    if (shard == id()) {
      st->pending++;
      host_cores_->Submit(kHostKeyCost * static_cast<sim::Tick>(writes.size()),
                          [this, txn, writes, one_done]() mutable {
                            for (const auto& w : writes) {
                              if (w.is_delete) {
                                store_->table(w.table).Erase(w.key);
                              } else {
                                store_->table(w.table).Apply(w.key, w.value, w.seq);
                              }
                              store_->table(w.table).Unlock(w.key, txn);
                            }
                            one_done();
                          });
      continue;
    }

    BaselineNode* target = (*peers_)[shard];
    if (mode_ == BaselineMode::kDrtmR) {
      // One-sided: per key, WRITE the new value then WRITE the unlock.
      for (const auto& w : writes) {
        st->pending++;
        const auto bytes = static_cast<uint32_t>(24 + w.value.size());
        transport_.Write(net::MsgType::kCommit, shard, bytes,
                    [target, w] {
                      if (w.is_delete) {
                        target->store_->table(w.table).Erase(w.key);
                      } else {
                        target->store_->table(w.table).Apply(w.key, w.value, w.seq);
                      }
                    },
                    [this, shard, target, w, txn, one_done]() mutable {
                      transport_.Write(net::MsgType::kUnlock, shard, 8,
                                  [target, w, txn] {
                                    target->store_->table(w.table).Unlock(w.key, txn);
                                  },
                                  one_done, txn);
                    },
                    txn);
      }
      continue;
    }

    // DrTM+H / FaSST: one commit RPC per shard.
    st->pending++;
    uint32_t bytes = 32;
    for (const auto& w : writes) {
      bytes += 24 + static_cast<uint32_t>(w.value.size());
    }
    transport_.Rpc(net::MsgType::kCommit, shard, bytes, 16,
              kRpcHandlerPerKey * static_cast<sim::Tick>(writes.size()),
              [target, writes, txn] {
                for (const auto& w : writes) {
                  if (w.is_delete) {
                    target->store_->table(w.table).Erase(w.key);
                  } else {
                    target->store_->table(w.table).Apply(w.key, w.value, w.seq);
                  }
                  target->store_->table(w.table).Unlock(w.key, txn);
                }
              },
              one_done, txn);
  }

  if (st->pending == 0) {
    EraseState(txn);
  }
}

void BaselineNode::AbortCleanup(TxnState* st, TxnOutcome outcome) {
  const store::TxnId txn = st->id;
  // Release every lock we hold, grouped per shard.
  struct Group {
    store::NodeId shard;
    std::vector<KeyRef> keys;
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < st->write_keys.size(); ++i) {
    if (!st->write_locked[i]) {
      continue;
    }
    const auto& k = st->write_keys[i];
    const store::NodeId p = map_->PrimaryOf(k.table, k.key);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const Group& g) { return g.shard == p; });
    if (it == groups.end()) {
      groups.push_back(Group{p, {}});
      it = groups.end() - 1;
    }
    it->keys.push_back(k);
  }
  for (auto& g : groups) {
    if (g.shard == id()) {
      for (const auto& k : g.keys) {
        store_->table(k.table).Unlock(k.key, txn);
      }
      continue;
    }
    BaselineNode* target = (*peers_)[g.shard];
    if (mode_ == BaselineMode::kDrtmR) {
      for (const auto& k : g.keys) {
        transport_.Write(net::MsgType::kUnlock, g.shard, 8,
                    [target, k, txn] { target->store_->table(k.table).Unlock(k.key, txn); },
                    [] {}, txn);
      }
    } else {
      transport_.Rpc(net::MsgType::kUnlock, g.shard, 32, 8, kRpcHandlerPerKey,
                [target, keys = g.keys, txn] {
                  for (const auto& k : keys) {
                    target->store_->table(k.table).Unlock(k.key, txn);
                  }
                },
                [] {}, txn);
    }
  }
  ReportAndFinish(st, outcome);
  EraseState(txn);
}

void BaselineNode::ReportAndFinish(TxnState* st, TxnOutcome outcome) {
  if (outcome == TxnOutcome::kCommitted) {
    stats_.committed++;
  } else if (outcome == TxnOutcome::kAppAborted) {
    stats_.app_aborted++;
  } else {
    stats_.aborted++;
  }
  auto done = std::move(st->done);
  st->done = nullptr;
  auto host_finish = st->req.host_finish;
  // Same contract as Xenic: the outcome is reported at the commit point;
  // post-commit local structure maintenance is deferred host work.
  host_cores_->Submit(kHostFinishBase,
                      [done = std::move(done), outcome]() mutable { done(outcome); });
  if (host_finish && outcome == TxnOutcome::kCommitted) {
    host_cores_->Submit(st->req.host_finish_cost,
                        [host_finish = std::move(host_finish)]() mutable { host_finish(); });
  }
}

void BaselineNode::EraseState(store::TxnId id) { txns_.erase(id); }

BaselineNode::TxnState* BaselineNode::FindState(store::TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

void BaselineNode::StartWorkers(uint32_t count, sim::Tick poll_interval) {
  workers_running_ = true;
  for (uint32_t w = 0; w < count; ++w) {
    const sim::Tick offset = poll_interval * (w + 1) / count;
    nic_->engine()->ScheduleAfter(offset,
                                  [this, w, poll_interval] { WorkerTick(w, poll_interval); });
  }
}

void BaselineNode::StopWorkers() { workers_running_ = false; }

void BaselineNode::WorkerTick(uint32_t worker, sim::Tick interval) {
  if (!workers_running_) {
    return;
  }
  // Ambient poll: see XenicNode::WorkerTick -- keeps attribution sinks'
  // zero-id counters measuring lost context, not infrastructure ticks.
  nic_->engine()->set_trace_ctx(sim::kAmbientTraceCtx);
  host_cores_->Submit(kWorkerPollCost, [this, worker, interval] {
    int applied = 0;
    sim::Tick extra = 0;
    while (applied < kWorkerBatch) {
      const store::LogRecord* rec = store_->log().Peek();
      if (rec == nullptr) {
        break;
      }
      const uint64_t lsn = rec->lsn;
      extra += kWorkerRecordCost;
      for (const auto& w : rec->writes) {
        extra += kWorkerWriteCost;
        if (w.table < store_->num_tables()) {
          if (w.is_delete) {
            store_->table(w.table).Erase(w.key);
          } else {
            store_->table(w.table).Apply(w.key, w.value, w.seq);
          }
        } else if (worker_apply_hook_) {
          extra += worker_apply_hook_(w);
        }
      }
      store_->log().PopApplied();
      store_->log().Reclaim(lsn + 1);
      applied++;
    }
    sim::Engine* engine = nic_->engine();
    if (extra > 0) {
      host_cores_->Submit(extra, [this, engine, worker, interval] {
        engine->ScheduleAfter(interval, [this, worker, interval] { WorkerTick(worker, interval); });
      });
    } else {
      engine->ScheduleAfter(interval, [this, worker, interval] { WorkerTick(worker, interval); });
    }
  });
}

}  // namespace xenic::baseline
