// Pluggable abort-retry backoff policies for the closed-loop harness (and
// the chaos submitters). The harness historically used one fixed scheme --
// uniform in [base, 2*base] -- which ignores how contended the aborted keys
// actually were; --txn-attrib showed the resulting redo time dominating the
// p50->p95 gap under skew. Three policies are provided:
//
//   kUniform           base + U[0, base]          (the historical default,
//                      reproduced byte-for-byte including its single Rng
//                      draw, so existing seeds keep their exact schedules)
//   kExpJitter         full jitter over a window that doubles per retry,
//                      capped at `backoff_cap`
//   kContentionWindow  window scales with the contention hint the
//                      coordinator returned in the abort result (the
//                      hot-key sketch's level for the conflicting key) and
//                      with the retry count, capped at `backoff_cap`
//
// Determinism: every policy is a pure function of (config, tries,
// contention, rng state). All randomness flows through the caller's seeded
// Rng, so a given (policy, seed) pair produces one schedule regardless of
// --jobs or attached observers.

#ifndef SRC_TXN_RETRY_POLICY_H_
#define SRC_TXN_RETRY_POLICY_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/sim/engine.h"

namespace xenic::txn {

enum class RetryPolicyKind : uint8_t {
  kUniform = 0,
  kExpJitter,
  kContentionWindow,
};

struct RetryPolicyConfig {
  RetryPolicyKind kind = RetryPolicyKind::kUniform;
  sim::Tick backoff_base = 4 * sim::kNsPerUs;  // the historical default
  sim::Tick backoff_cap = 256 * sim::kNsPerUs; // ceiling for the adaptive policies
  uint32_t max_retries = 200;                  // then drop the transaction
};

// One backoff draw for retry number `tries` (0-based) after an abort whose
// result carried `contention` (0 = no signal). Always returns >= 1 tick.
sim::Tick RetryBackoff(const RetryPolicyConfig& cfg, uint32_t tries, uint8_t contention,
                       Rng& rng);

// CLI names: "uniform" | "expjitter" | "cwnd". Returns false on an unknown
// name (out is untouched).
bool ParseRetryPolicy(const std::string& name, RetryPolicyKind* out);
const char* RetryPolicyName(RetryPolicyKind kind);

}  // namespace xenic::txn

#endif  // SRC_TXN_RETRY_POLICY_H_
