// Per-shard hot-key sketch: a small space-saving-style top-K table of keys
// ranked by recent lock/validation conflicts, maintained by the NIC-side
// handlers (pure state -- recording charges no simulated time).
//
// Two consumers:
//   * Contention hints. Level() maps a key's decayed conflict count to a
//     0..255 pressure value that travels back to the aborted transaction's
//     submitter, where the contention-window retry policy scales its
//     backoff by it.
//   * Hot-key fast path routing. IsHot() drives XenicNode's decision to
//     take an all-local transaction through the serialized NIC queue
//     instead of the optimistic race.
//
// Promotion/demotion use hysteresis (promote at >= promote_threshold,
// demote only once decay drags the count to <= demote_threshold) so a key
// flapping around the boundary doesn't thrash the routing decision. Decay
// is lazy and deterministic in sim time: counts halve once per elapsed
// decay_interval, with integer arithmetic only. Eviction of an untracked
// key's slot starts the newcomer at count 1 (lossy-counting style, an
// underestimate), so uniformly spread conflicts can never fake a hot key;
// genuinely hot keys re-accumulate faster than they are evicted.

#ifndef SRC_TXN_HOT_KEY_SKETCH_H_
#define SRC_TXN_HOT_KEY_SKETCH_H_

#include <cstdint>
#include <vector>

#include "src/sim/engine.h"
#include "src/txn/types.h"

namespace xenic::txn {

class HotKeySketch {
 public:
  struct Options {
    uint32_t slots = 64;              // tracked keys per shard
    uint64_t promote_threshold = 6;   // decayed conflicts to flag hot
    uint64_t demote_threshold = 2;    // hysteresis floor (must be < promote)
    sim::Tick decay_interval = 100 * sim::kNsPerUs;  // counts halve per interval
  };

  HotKeySketch();  // default Options
  explicit HotKeySketch(const Options& options);

  // One observed conflict on `key` (lock denied / validation mismatch).
  void RecordConflict(const KeyRef& key, sim::Tick now);

  // Routing decision (with hysteresis). Untracked keys are never hot.
  bool IsHot(const KeyRef& key, sim::Tick now);

  // Contention pressure 0..255; scaled so a key at exactly the promotion
  // threshold reports 128. Untracked keys report 0.
  uint8_t Level(const KeyRef& key, sim::Tick now);

  // Currently hot keys (after decay), for tests and debugging.
  size_t HotCount(sim::Tick now);

 private:
  struct Slot {
    KeyRef key;
    uint64_t count = 0;  // 0 = empty
    bool hot = false;
  };

  void Decay(sim::Tick now);
  Slot* Find(const KeyRef& key);

  Options options_;
  std::vector<Slot> slots_;
  sim::Tick last_decay_ = 0;
};

}  // namespace xenic::txn

#endif  // SRC_TXN_HOT_KEY_SKETCH_H_
