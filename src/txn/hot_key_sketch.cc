#include "src/txn/hot_key_sketch.h"

#include <algorithm>

namespace xenic::txn {

HotKeySketch::HotKeySketch() : HotKeySketch(Options{}) {}

HotKeySketch::HotKeySketch(const Options& options) : options_(options) {
  slots_.resize(options_.slots);
}

void HotKeySketch::Decay(sim::Tick now) {
  if (options_.decay_interval == 0 || now < last_decay_ + options_.decay_interval) {
    return;
  }
  const sim::Tick elapsed = now - last_decay_;
  const uint64_t intervals = elapsed / options_.decay_interval;
  last_decay_ += intervals * options_.decay_interval;
  for (Slot& s : slots_) {
    if (s.count == 0) {
      continue;
    }
    // Halve once per interval; a long idle gap zeroes the slot outright
    // (shifting by >= 64 is UB and the count is dead anyway).
    s.count = intervals >= 64 ? 0 : s.count >> intervals;
    if (s.hot && s.count <= options_.demote_threshold) {
      s.hot = false;
    }
    if (s.count == 0) {
      s = Slot{};
    }
  }
}

HotKeySketch::Slot* HotKeySketch::Find(const KeyRef& key) {
  for (Slot& s : slots_) {
    if (s.count != 0 && s.key == key) {
      return &s;
    }
  }
  return nullptr;
}

void HotKeySketch::RecordConflict(const KeyRef& key, sim::Tick now) {
  Decay(now);
  Slot* slot = Find(key);
  if (slot == nullptr) {
    // Take an empty slot, else evict the coldest non-hot slot; the
    // newcomer starts at 1 (underestimate -- no false promotions).
    Slot* victim = nullptr;
    for (Slot& s : slots_) {
      if (s.count == 0) {
        victim = &s;
        break;
      }
      if (!s.hot && (victim == nullptr || s.count < victim->count)) {
        victim = &s;
      }
    }
    if (victim == nullptr) {
      return;  // every slot is hot; nothing to learn from one more conflict
    }
    *victim = Slot{key, 0, false};
    slot = victim;
  }
  slot->count++;
  if (slot->count >= options_.promote_threshold) {
    slot->hot = true;
  }
}

bool HotKeySketch::IsHot(const KeyRef& key, sim::Tick now) {
  Decay(now);
  Slot* slot = Find(key);
  return slot != nullptr && slot->hot;
}

uint8_t HotKeySketch::Level(const KeyRef& key, sim::Tick now) {
  Decay(now);
  Slot* slot = Find(key);
  if (slot == nullptr) {
    return 0;
  }
  const uint64_t scaled = slot->count * 128 / std::max<uint64_t>(1, options_.promote_threshold);
  return static_cast<uint8_t>(std::min<uint64_t>(255, scaled));
}

size_t HotKeySketch::HotCount(sim::Tick now) {
  Decay(now);
  size_t n = 0;
  for (const Slot& s : slots_) {
    n += s.hot ? 1 : 0;
  }
  return n;
}

}  // namespace xenic::txn
