// Transaction protocol types shared by the Xenic engine and the RDMA
// baselines: transaction requests, execution-logic interface, cluster
// layout (partitioning + replication), feature flags, and per-node
// statistics. Message kinds and wire sizes live in src/net/message.h (the
// transport layer's message catalogue).

#ifndef SRC_TXN_TYPES_H_
#define SRC_TXN_TYPES_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/net/message.h"
#include "src/sim/engine.h"
#include "src/store/commit_log.h"
#include "src/store/types.h"

namespace xenic::txn {

using store::Key;
using store::NodeId;
using store::Seq;
using store::TableId;
using store::TxnId;
using store::Value;

struct KeyRef {
  TableId table = 0;
  Key key = 0;
  bool operator==(const KeyRef& o) const { return table == o.table && key == o.key; }
};

struct KeyRefHash {
  size_t operator()(const KeyRef& k) const {
    return static_cast<size_t>(xenic::ScrambleKey(k.key * 0x9e3779b97f4a7c15ull + k.table));
  }
};

struct ReadResult {
  bool found = false;
  Seq seq = 0;
  Value value;
};

struct WriteIntent {
  Value value;
  bool is_delete = false;
};

// One round of application execution logic. The engine fills `reads`
// (aligned with the transaction's read set, including keys added in earlier
// rounds) and the app fills `writes` (aligned with the write set). Adding
// keys triggers another EXECUTE round (multi-shot transactions, paper
// section 4.2 step 3).
struct ExecRound {
  int round = 0;
  const std::vector<KeyRef>* read_keys = nullptr;
  const std::vector<ReadResult>* reads = nullptr;
  const std::vector<KeyRef>* write_keys = nullptr;
  std::vector<WriteIntent>* writes = nullptr;
  std::vector<KeyRef>* add_reads = nullptr;
  std::vector<KeyRef>* add_writes = nullptr;
  bool* abort = nullptr;
};

using ExecuteFn = std::function<void(ExecRound&)>;

struct TxnRequest {
  std::vector<KeyRef> reads;   // read set (may overlap the write set)
  std::vector<KeyRef> writes;  // write set keys; values produced by execute
  ExecuteFn execute;
  sim::Tick exec_cost = 200;     // host-core ns per execution round
  uint32_t external_bytes = 16;  // application state shipped with the txn
  bool allow_ship = true;        // user annotation: may run on NIC / remote NIC
  uint8_t tag = 0;               // workload-defined transaction type

  // Workload-managed local writes (e.g. TPC-C B+tree rows) that must be
  // replicated to the local shard's backups. Fixed at request creation;
  // backup workers apply them through the node's WorkerApplyHook.
  std::vector<store::LogWrite> local_log_writes;
  // Host work performed after commit on the application thread (B+tree
  // manipulation; paper 5.6 notes TPC-C keeps this on the host).
  sim::Tick host_finish_cost = 0;
  std::function<void()> host_finish;
};

// Outcome reported to the application.
enum class TxnOutcome : uint8_t {
  kCommitted = 0,
  kAborted,       // lock conflict or validation failure: retry
  kAppAborted,    // execution logic chose to abort: do not retry
};

// Where an abort was detected in the pipeline (for --abort-breakdown).
enum class AbortReason : uint8_t {
  kNone = 0,
  kLockExecute,  // lock denied during a remote EXECUTE/LOCK round
  kLockLocal,    // lock denied on the local-write fast path
  kLockShip,     // lock denied on a shipped-execution hop
  kValidate,     // read-set validation failed
  kGap,          // read/write-gap check failed (key read after lock window)
  kWounded,      // aborted by an older transaction's wound (WOUND_WAIT)
  kEpochFence,   // 2PL txn outlived a membership change; its locks may be gone
  kOther,        // anything else (log rejection, forced abort, ...)
};

// Concurrency-control policy for the Xenic engine (src/txn/cc_policy.h has
// the behavior contract). kOcc is the paper's protocol and the default; the
// 2PL trio locks reads at EXECUTE time and skips validation. Anything other
// than kOcc changes event schedules, so -- like hot_key_fastpath -- the
// non-default values are opt-in to keep goldens byte-identical.
enum class CcPolicyKind : uint8_t {
  kOcc = 0,
  kNoWait,     // 2PL, abort on conflict (never parks)
  kWaitDie,    // 2PL, older requester waits / younger dies
  kWoundWait,  // 2PL, older requester wounds the holder / younger waits
};

// Outcome plus the coordinator's contention hint: the hot-key sketch level
// (0..255) of the most contended key the transaction conflicted on, 0 when
// no signal. Implicitly converts to/from TxnOutcome so callbacks that only
// care about the outcome keep working unchanged.
struct TxnResult {
  TxnOutcome outcome = TxnOutcome::kCommitted;
  uint8_t contention = 0;

  TxnResult() = default;
  TxnResult(TxnOutcome o) : outcome(o) {}  // NOLINT(google-explicit-constructor)
  TxnResult(TxnOutcome o, uint8_t c) : outcome(o), contention(c) {}
  operator TxnOutcome() const { return outcome; }  // NOLINT
};

using CommitCallback = std::function<void(TxnResult)>;

// Xenic protocol feature flags (Figure 9 ablations). All on by default.
struct XenicFeatures {
  // Combined remote commit operations (lock+read in one EXECUTE, batched
  // VALIDATE) instead of DrTM+H-style one-op-per-request.
  bool smart_remote_ops = true;
  // Ship execution logic from the host to the coordinator-side NIC.
  bool nic_execution = true;
  // Multi-hop OCC: ship eligible transactions to the remote primary NIC
  // and let backups acknowledge directly to the coordinator NIC.
  bool occ_multihop = true;
  // Route single-shard transactions on sketch-flagged hot keys through a
  // serialized per-key queue on the NIC instead of the optimistic race.
  // Off by default: changes event schedules, so the golden chaos
  // transcript and all existing seeds stay byte-identical.
  bool hot_key_fastpath = false;
  // NIC-ARM-hosted continuous backup apply (repl::LogApplier): replicated
  // LOG records are applied by the NIC ARM cores once their commit point
  // is known (kLogCommit stability gate) instead of by host workers.
  // Off by default: adds kLogCommit traffic and changes event schedules,
  // so the golden chaos transcript and all existing seeds stay identical.
  bool nic_log_apply = false;
  // Serve single-shard read-only transactions from NIC-applied backup
  // state behind a freshness/epoch fence (requires nic_log_apply; see
  // XenicNode::ReplicaReadPath). Off by default, same reason as above.
  bool replica_reads = false;
  // Concurrency-control policy. kOcc (default) is the unmodified paper
  // pipeline; any 2PL kind disables the shipped/hot-key routes, locks the
  // read set at EXECUTE time, and skips VALIDATE (see cc_policy.h).
  CcPolicyKind cc = CcPolicyKind::kOcc;
};

// Key -> primary node placement. Workloads provide an implementation
// (hash-based for Retwis/Smallbank, warehouse-based for TPC-C).
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual NodeId PrimaryOf(TableId table, Key key) const = 0;
};

class HashPartitioner : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t num_nodes) : num_nodes_(num_nodes) {}
  NodeId PrimaryOf(TableId table, Key key) const override {
    return static_cast<NodeId>(xenic::ScrambleKey(key * 0x9e3779b9u + table) % num_nodes_);
  }

 private:
  uint32_t num_nodes_;
};

// Cluster layout: placement plus primary-backup replica chains. With
// replication factor f, shard p is backed up on nodes p+1 .. p+f-1 (mod n).
// `failed` is the membership view: once failure detection evicts a node
// (epoch bump), BackupsOf stops returning it, so commit-time LOG fan-out
// never waits on a dead backup's ack. Until re-replication the affected
// shards simply run at reduced redundancy.
struct ClusterMap {
  uint32_t num_nodes = 1;
  uint32_t replication = 1;  // total copies including the primary
  const Partitioner* partitioner = nullptr;
  std::vector<bool> failed;  // sized lazily by MarkFailed; empty = all live
  // Bumped once per membership change, after recovery rolls the failed
  // node's shards forward. 2PL transactions fence on it at commit time: a
  // lock granted by a node that has since been evicted no longer exists
  // anywhere (the promoted primary rebuilt only swept state), so a txn that
  // started under an older version must abort rather than write unlocked.
  // OCC needs no fence -- VALIDATE re-checks read versions.
  uint64_t version = 0;

  bool IsFailed(NodeId node) const { return node < failed.size() && failed[node]; }
  void MarkFailed(NodeId node) {
    if (failed.size() < num_nodes) {
      failed.resize(num_nodes, false);
    }
    failed[node] = true;
    version++;
  }

  NodeId PrimaryOf(TableId table, Key key) const { return partitioner->PrimaryOf(table, key); }
  std::vector<NodeId> BackupsOf(NodeId primary) const {
    std::vector<NodeId> out;
    for (uint32_t i = 1; i < replication; ++i) {
      const NodeId b = (primary + i) % num_nodes;
      if (!IsFailed(b)) {
        out.push_back(b);
      }
    }
    return out;
  }
  bool IsReplicaOf(NodeId node, NodeId primary) const {
    for (uint32_t i = 0; i < replication; ++i) {
      if ((primary + i) % num_nodes == node) {
        return true;
      }
    }
    return false;
  }
};

// Summed value payload of a read-result set (wire:: formulas take scalar
// byte counts; these keep the summations next to the types they walk).
inline uint64_t ValueBytes(const std::vector<ReadResult>& reads) {
  uint64_t b = 0;
  for (const auto& r : reads) {
    b += r.value.size();
  }
  return b;
}
inline uint64_t ValueBytes(const std::vector<std::pair<uint32_t, ReadResult>>& reads) {
  uint64_t b = 0;
  for (const auto& [i, r] : reads) {
    (void)i;
    b += r.value.size();
  }
  return b;
}
inline uint64_t ValueBytes(const std::vector<WriteIntent>& writes) {
  uint64_t b = 0;
  for (const auto& w : writes) {
    b += w.value.size();
  }
  return b;
}
inline uint64_t ValueBytes(const std::vector<store::LogWrite>& writes) {
  uint64_t b = 0;
  for (const auto& w : writes) {
    b += w.value.size();
  }
  return b;
}

// Per-node protocol statistics. `by_type` breaks `messages` (and the
// payload bytes behind them) down by net::MsgType; the transport layer
// maintains both together, so sum(by_type.msgs) == messages always
// (pinned by transport_test.cc).
struct TxnStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  uint64_t app_aborted = 0;
  uint64_t local_fastpath = 0;
  uint64_t shipped_multihop = 0;
  uint64_t remote_rounds = 0;  // network roundtrip-phases executed
  uint64_t messages = 0;
  net::MsgCounters by_type;

  // Abort-reason breakdown (--abort-breakdown). Sums to `aborted`; app
  // aborts are counted separately above.
  uint64_t abort_lock_execute = 0;
  uint64_t abort_lock_local = 0;
  uint64_t abort_lock_ship = 0;
  uint64_t abort_validate = 0;
  uint64_t abort_gap = 0;
  uint64_t abort_wounded = 0;
  uint64_t abort_epoch_fence = 0;
  uint64_t abort_other = 0;

  // 2PL concurrency-control accounting (zero under OCC).
  uint64_t cc_waits = 0;   // lock requests parked in a wait queue
  uint64_t cc_wounds = 0;  // WOUND messages sent to younger lock holders

  // Hot-key fast path accounting.
  uint64_t hot_path = 0;   // committed/aborted txns routed via the hot path
  uint64_t hot_waits = 0;  // times a hot-path txn parked behind the holder
  uint64_t hot_remote_parks = 0;  // remote lock denials parked at the primary

  // Replication subsystem accounting (repl::, zero at default config).
  uint64_t nic_log_applied = 0;      // records applied by the NIC-ARM applier
  uint64_t replica_reads = 0;        // read-only txns served from backup state
  uint64_t replica_read_fallback = 0;  // freshness fence failed -> distributed

  void Reset() { *this = TxnStats{}; }
};

}  // namespace xenic::txn

#endif  // SRC_TXN_TYPES_H_
