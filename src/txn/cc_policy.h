// Pluggable concurrency control for the Xenic engine (ROADMAP item 3).
//
// The EXECUTE/VALIDATE/LOG pipeline in xenic_node.cc consults a CcPolicy at
// its decision points instead of hard-wiring OCC:
//
//  * kOcc (default): the paper's protocol, unchanged. Write locks are taken
//    inside the combined EXECUTE, reads are optimistic, and the VALIDATE
//    phase re-checks read versions. A lock conflict always denies.
//  * The 2PL trio (kNoWait / kWaitDie / kWoundWait): the EXECUTE handler
//    locks the READ set as well as the write set, every value is read under
//    its lock, and the VALIDATE phase is skipped entirely -- two-phase
//    locking makes the read versions stable by construction. The policies
//    differ only in what a lock conflict does:
//      NO_WAIT    -- deny immediately (the requester aborts and retries).
//      WAIT_DIE   -- an OLDER requester parks in the key's wait queue until
//                    the holder releases; a younger one dies (deny).
//      WOUND_WAIT -- an OLDER requester wounds the holder (a WOUND message
//                    aborts it at its coordinator unless it already passed
//                    its commit point) and parks until the lock frees; a
//                    younger one parks behind the holder.
//
// Deadlock freedom: age is a total order, so WAIT_DIE only ever creates
// waits-for edges from older to younger transactions and WOUND_WAIT only
// from younger to older -- either way the waits-for graph is acyclic and
// NO_WAIT never waits at all. Parked waiters additionally carry a timeout
// (locks released behind the engine's back by recovery sweeps would
// otherwise strand them), after which the request denies like NO_WAIT.
//
// Timestamps: a transaction's age is derived from its TxnId alone.
// MakeTxnId puts the node in the HIGH bits, so ids from different nodes do
// not compare by submission order; CcPriority re-keys as (seq, node) --
// sequence-major approximates global submission age (every node's
// closed-loop contexts advance their sequence at commit rate) and the node
// id breaks ties into a total order. Smaller priority == older. A retried
// transaction draws a fresh (younger) id, which is exactly the restart
// behavior WAIT_DIE/WOUND_WAIT assume for liveness of old transactions.

#ifndef SRC_TXN_CC_POLICY_H_
#define SRC_TXN_CC_POLICY_H_

#include <cstdint>
#include <string>

#include "src/store/types.h"
#include "src/txn/types.h"

namespace xenic::txn {

// What a denied lock request does next (OnConflict result).
enum class CcAction : uint8_t {
  kAbort = 0,  // deny the request; the coordinator aborts and retries
  kWait,       // park in the key's wait queue until release (or timeout)
  kWound,      // abort the holder via its coordinator, then wait
};

// Total-order age key for wound/wait decisions; smaller == older.
inline uint64_t CcPriority(TxnId id) {
  const uint64_t seq = id & ((1ull << 40) - 1);
  const auto node = static_cast<uint64_t>(store::TxnNode(id));
  return (seq << 16) | (node & 0xffff);
}

class CcPolicy {
 public:
  virtual ~CcPolicy() = default;

  virtual CcPolicyKind kind() const = 0;
  virtual const char* name() const = 0;
  // 2PL: the EXECUTE handler locks read-set keys too (and the coordinator
  // must release them at commit/abort on every shard, not just locally).
  virtual bool lock_reads() const = 0;
  // OCC only: run the VALIDATE phase (2PL reads are stable under locks).
  virtual bool validates() const = 0;
  // Conflict resolution: `requester` hit a lock held by `holder`.
  virtual CcAction OnConflict(TxnId requester, TxnId holder) const = 0;

  // Stateless singleton per kind.
  static const CcPolicy& Get(CcPolicyKind kind);
};

constexpr const char* CcPolicyName(CcPolicyKind kind) {
  switch (kind) {
    case CcPolicyKind::kOcc:
      return "occ";
    case CcPolicyKind::kNoWait:
      return "nowait";
    case CcPolicyKind::kWaitDie:
      return "waitdie";
    case CcPolicyKind::kWoundWait:
      return "woundwait";
  }
  return "?";
}

// Parses the --cc flag spelling; returns false on an unknown name.
bool ParseCcPolicy(const std::string& name, CcPolicyKind* out);

}  // namespace xenic::txn

#endif  // SRC_TXN_CC_POLICY_H_
