// Reconfiguration and recovery (paper section 4.2.1).
//
// Xenic adopts FaRM's recovery design: a lease-based cluster manager
// detects failures; when a primary fails, a backup is promoted, lock state
// (which lives only in SmartNIC memory) is reconstructed from the
// transactions found in the surviving replicas' logs, and each in-flight
// transaction is either rolled forward (its LOG record reached every
// surviving replica, so the coordinator may have reported commit) or
// discarded. Only then does the shard serve new transactions.

#ifndef SRC_TXN_RECOVERY_H_
#define SRC_TXN_RECOVERY_H_

#include <map>
#include <vector>

#include "src/sim/engine.h"
#include "src/txn/xenic_cluster.h"

namespace xenic::txn {

// Lease-based membership service (the paper uses Zookeeper; the manager is
// off the critical path either way).
class ClusterManager {
 public:
  ClusterManager(sim::Engine* engine, uint32_t num_nodes, sim::Tick lease_duration);

  void RenewLease(NodeId node);
  bool IsAlive(NodeId node) const;
  // Nodes whose lease has expired as of now.
  std::vector<NodeId> ExpiredLeases() const;
  // Declare a node failed, bumping the configuration epoch.
  void MarkFailed(NodeId node);
  uint64_t epoch() const { return epoch_; }

 private:
  sim::Engine* engine_;
  sim::Tick lease_duration_;
  std::vector<sim::Tick> lease_expiry_;
  std::vector<bool> failed_;
  uint64_t epoch_ = 1;
};

// Partitioner wrapper routing a failed node's shards to promoted backups.
class RemappedPartitioner : public Partitioner {
 public:
  RemappedPartitioner(const Partitioner* base, const std::map<NodeId, NodeId>& promotions)
      : base_(base) {
    // Flatten the promotion map into a node-id-indexed routing table: this
    // sits on every post-failover PrimaryOf, so the hot path is one bounds
    // check and one vector load instead of a tree lookup.
    for (const auto& [from, to] : promotions) {
      if (from >= table_.size()) {
        const size_t old = table_.size();
        table_.resize(static_cast<size_t>(from) + 1);
        for (size_t n = old; n < table_.size(); ++n) {
          table_[n] = static_cast<NodeId>(n);  // identity for untouched shards
        }
      }
      table_[from] = to;
    }
  }

  NodeId PrimaryOf(TableId table, Key key) const override {
    const NodeId p = base_->PrimaryOf(table, key);
    return p < table_.size() ? table_[p] : p;
  }

 private:
  const Partitioner* base_;
  std::vector<NodeId> table_;  // identity except promoted entries
};

// Epoch-change sweep (run at failure detection, before RecoverShard): every
// live coordinator's wedged transactions -- unreported in-flight
// transactions involving the failed node -- are resolved exactly once. A
// transaction whose LOG fan-out already reached (or was applied by) every
// live backup of every written shard is committed by synthesizing the dead
// node's acks; anything else is aborted, its records tombstoned on all live
// nodes and its locks released cluster-wide.
struct EpochSweepReport {
  size_t committed = 0;
  size_t aborted = 0;
  size_t acks_synthesized = 0;
  std::vector<store::TxnId> committed_txns;  // feed to RecoverShard
};
EpochSweepReport SweepWedgedTxns(XenicCluster& cluster, NodeId failed);

struct RecoveryReport {
  size_t records_scanned = 0;
  size_t locks_rebuilt = 0;
  size_t rolled_forward = 0;  // transactions applied at the new primary
  size_t discarded = 0;       // incomplete transactions dropped
};

// Promote `promoted` (a backup) to primary for the shards of `failed`:
// scan surviving replicas' logs for unacknowledged records touching those
// shards, rebuild lock state at the new primary, then roll forward
// transactions whose LOG records reached every surviving replica of every
// written shard (the coordinator may have reported commit) and discard the
// rest, releasing locks and tombstoning the discarded records so no
// surviving backup applies them later.
// `known_committed` lists transactions a preceding SweepWedgedTxns already
// decided to commit (their coordinator is live and was unwedged by
// synthesizing the dead node's acks): they are rolled forward regardless of
// what the log scan alone can prove.
RecoveryReport RecoverShard(XenicCluster& cluster, NodeId failed, NodeId promoted,
                            const std::vector<store::TxnId>& known_committed = {});

// Coordinator-failure sweep: transactions coordinated by `failed` can leave
// locks (EXECUTE acquires them eagerly) and replicated-but-unapplied LOG
// records at live primaries. Completeness is decided with the same global
// rule as RecoverShard: complete transactions are rolled forward at the
// live primaries (with NIC caches refreshed), incomplete ones are
// tombstoned; either way every orphaned lock owned by a failed-coordinator
// transaction is released.
struct CoordinatorSweepReport {
  size_t txns_swept = 0;
  size_t locks_released = 0;
  size_t rolled_forward = 0;
  size_t discarded = 0;
};
CoordinatorSweepReport RecoverCoordinatorLocks(XenicCluster& cluster, NodeId failed);

}  // namespace xenic::txn

#endif  // SRC_TXN_RECOVERY_H_
