// XenicCluster: assembles a full simulated deployment -- the event engine,
// the SmartNIC fabric, one Datastore per node, and the per-node transaction
// engines -- mirroring the paper's 6-server testbed.

#ifndef SRC_TXN_XENIC_CLUSTER_H_
#define SRC_TXN_XENIC_CLUSTER_H_

#include <memory>
#include <vector>

#include "src/nicmodel/smart_nic.h"
#include "src/repl/replication_group.h"
#include "src/store/datastore.h"
#include "src/txn/types.h"
#include "src/txn/xenic_node.h"

namespace xenic::txn {

struct XenicClusterOptions {
  uint32_t num_nodes = 6;
  uint32_t replication = 3;  // total copies (1 primary + 2 backups)
  // Commit-point quorum (total copies including the primary). 0 or ==
  // replication: wait for every live backup's LOG ack -- the historical
  // protocol. Smaller values let the commit point fire early; recovery's
  // roll-forward threshold generalizes to match (repl::ReplicationGroup).
  uint32_t quorum = 0;
  net::PerfModel perf;
  XenicFeatures features;
  nicmodel::NicFeatures nic_features;
  store::NicIndex::Options nic_index;
  std::vector<store::TableSpec> tables;
  uint32_t workers_per_node = 3;
  sim::Tick worker_poll_interval = 2 * sim::kNsPerUs;
  // Host-memory commit-log ring size per node; small values make the
  // back-pressure path easy to hit (chaos testing).
  size_t log_capacity = 1 << 16;
};

class XenicCluster {
 public:
  XenicCluster(const XenicClusterOptions& options, const Partitioner* partitioner);

  sim::Engine& engine() { return engine_; }
  XenicNode& node(NodeId id) { return *nodes_[id]; }
  store::Datastore& datastore(NodeId id) { return *stores_[id]; }
  nicmodel::SmartNic& nic(NodeId id) { return fabric_->node(id); }
  const ClusterMap& map() const { return map_; }
  // Recovery: lets a reconfiguration swap in a RemappedPartitioner after a
  // node failure (every node routes through this shared map).
  ClusterMap& mutable_map() { return map_; }
  const repl::ReplicationGroup& repl() const { return repl_; }
  uint32_t size() const { return options_.num_nodes; }
  const XenicClusterOptions& options() const { return options_; }

  // Load a key into its primary and all backup replicas (tables stay in
  // sync across the replica chain, as after a quiesced run).
  void LoadReplicated(store::TableId table, store::Key key, const store::Value& value,
                      store::Seq seq = 1);

  void StartWorkers();
  void StopWorkers();

  // Aggregate statistics.
  TxnStats TotalStats() const;
  void ResetStats();

 private:
  XenicClusterOptions options_;
  sim::Engine engine_;
  ClusterMap map_;
  repl::ReplicationGroup repl_;
  std::unique_ptr<nicmodel::SmartNicFabric> fabric_;
  std::vector<std::unique_ptr<store::Datastore>> stores_;
  std::vector<std::unique_ptr<XenicNode>> nodes_;
  std::vector<XenicNode*> peers_;
};

}  // namespace xenic::txn

#endif  // SRC_TXN_XENIC_CLUSTER_H_
