#include "src/txn/cc_policy.h"

namespace xenic::txn {

namespace {

class OccPolicy final : public CcPolicy {
 public:
  CcPolicyKind kind() const override { return CcPolicyKind::kOcc; }
  const char* name() const override { return "occ"; }
  bool lock_reads() const override { return false; }
  bool validates() const override { return true; }
  CcAction OnConflict(TxnId, TxnId) const override { return CcAction::kAbort; }
};

class NoWaitPolicy final : public CcPolicy {
 public:
  CcPolicyKind kind() const override { return CcPolicyKind::kNoWait; }
  const char* name() const override { return "nowait"; }
  bool lock_reads() const override { return true; }
  bool validates() const override { return false; }
  CcAction OnConflict(TxnId, TxnId) const override { return CcAction::kAbort; }
};

class WaitDiePolicy final : public CcPolicy {
 public:
  CcPolicyKind kind() const override { return CcPolicyKind::kWaitDie; }
  const char* name() const override { return "waitdie"; }
  bool lock_reads() const override { return true; }
  bool validates() const override { return false; }
  CcAction OnConflict(TxnId requester, TxnId holder) const override {
    // Older (smaller priority) waits for younger; younger dies. Waits-for
    // edges therefore always point old -> young: acyclic.
    return CcPriority(requester) < CcPriority(holder) ? CcAction::kWait : CcAction::kAbort;
  }
};

class WoundWaitPolicy final : public CcPolicy {
 public:
  CcPolicyKind kind() const override { return CcPolicyKind::kWoundWait; }
  const char* name() const override { return "woundwait"; }
  bool lock_reads() const override { return true; }
  bool validates() const override { return false; }
  CcAction OnConflict(TxnId requester, TxnId holder) const override {
    // Older wounds the younger holder (then waits for the lock to free);
    // younger waits. Waits-for edges always point young -> old: acyclic.
    return CcPriority(requester) < CcPriority(holder) ? CcAction::kWound : CcAction::kWait;
  }
};

}  // namespace

const CcPolicy& CcPolicy::Get(CcPolicyKind kind) {
  static const OccPolicy occ;
  static const NoWaitPolicy nowait;
  static const WaitDiePolicy waitdie;
  static const WoundWaitPolicy woundwait;
  switch (kind) {
    case CcPolicyKind::kNoWait:
      return nowait;
    case CcPolicyKind::kWaitDie:
      return waitdie;
    case CcPolicyKind::kWoundWait:
      return woundwait;
    case CcPolicyKind::kOcc:
      break;
  }
  return occ;
}

bool ParseCcPolicy(const std::string& name, CcPolicyKind* out) {
  for (CcPolicyKind k : {CcPolicyKind::kOcc, CcPolicyKind::kNoWait, CcPolicyKind::kWaitDie,
                         CcPolicyKind::kWoundWait}) {
    if (name == CcPolicyName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace xenic::txn
