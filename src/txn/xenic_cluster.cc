#include "src/txn/xenic_cluster.h"

namespace xenic::txn {

XenicCluster::XenicCluster(const XenicClusterOptions& options, const Partitioner* partitioner)
    : options_(options), repl_(&map_, options.quorum) {
  map_.num_nodes = options.num_nodes;
  map_.replication = options.replication;
  map_.partitioner = partitioner;

  fabric_ = std::make_unique<nicmodel::SmartNicFabric>(&engine_, options.perf,
                                                       options.num_nodes);
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    fabric_->node(i).features() = options.nic_features;
    stores_.push_back(std::make_unique<store::Datastore>(options.tables, options.nic_index,
                                                         options.log_capacity));
  }
  for (uint32_t i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<XenicNode>(&fabric_->node(i), stores_[i].get(), &map_,
                                                 &options_.features, &peers_, &repl_));
  }
  for (auto& n : nodes_) {
    peers_.push_back(n.get());
  }
}

void XenicCluster::LoadReplicated(store::TableId table, store::Key key,
                                  const store::Value& value, store::Seq seq) {
  const NodeId primary = map_.PrimaryOf(table, key);
  stores_[primary]->Load(table, key, value, seq);
  for (NodeId b : repl_.BackupsOf(primary)) {
    stores_[b]->Load(table, key, value, seq);
  }
}

void XenicCluster::StartWorkers() {
  for (auto& n : nodes_) {
    n->StartWorkers(options_.workers_per_node, options_.worker_poll_interval);
  }
}

void XenicCluster::StopWorkers() {
  for (auto& n : nodes_) {
    n->StopWorkers();
  }
}

TxnStats XenicCluster::TotalStats() const {
  TxnStats total;
  for (const auto& n : nodes_) {
    const TxnStats& s = n->stats();
    total.committed += s.committed;
    total.aborted += s.aborted;
    total.app_aborted += s.app_aborted;
    total.local_fastpath += s.local_fastpath;
    total.shipped_multihop += s.shipped_multihop;
    total.remote_rounds += s.remote_rounds;
    total.messages += s.messages;
    total.by_type.Merge(s.by_type);
    total.abort_lock_execute += s.abort_lock_execute;
    total.abort_lock_local += s.abort_lock_local;
    total.abort_lock_ship += s.abort_lock_ship;
    total.abort_validate += s.abort_validate;
    total.abort_gap += s.abort_gap;
    total.abort_wounded += s.abort_wounded;
    total.abort_epoch_fence += s.abort_epoch_fence;
    total.abort_other += s.abort_other;
    total.hot_path += s.hot_path;
    total.hot_waits += s.hot_waits;
    total.hot_remote_parks += s.hot_remote_parks;
    total.cc_waits += s.cc_waits;
    total.cc_wounds += s.cc_wounds;
    total.nic_log_applied += s.nic_log_applied;
    total.replica_reads += s.replica_reads;
    total.replica_read_fallback += s.replica_read_fallback;
  }
  return total;
}

void XenicCluster::ResetStats() {
  for (auto& n : nodes_) {
    n->stats().Reset();
  }
}

}  // namespace xenic::txn
