#include "src/txn/retry_policy.h"

#include <algorithm>

namespace xenic::txn {

sim::Tick RetryBackoff(const RetryPolicyConfig& cfg, uint32_t tries, uint8_t contention,
                       Rng& rng) {
  const sim::Tick base = std::max<sim::Tick>(1, cfg.backoff_base);
  const sim::Tick cap = std::max<sim::Tick>(base, cfg.backoff_cap);
  switch (cfg.kind) {
    case RetryPolicyKind::kUniform:
      // Byte-exact reproduction of the historical harness formula,
      // including its single NextBounded draw.
      return cfg.backoff_base + rng.NextBounded(cfg.backoff_base + 1);
    case RetryPolicyKind::kExpJitter: {
      // Full jitter: U[1, window], window doubling per retry up to the cap.
      // The shift is clamped so `base << tries` cannot overflow.
      const uint32_t shift = std::min<uint32_t>(tries, 20);
      const sim::Tick window = std::min<sim::Tick>(cap, base << shift);
      return 1 + rng.NextBounded(window);
    }
    case RetryPolicyKind::kContentionWindow: {
      // Window grows with the product of the contention hint (0..255; 128
      // is the sketch's promotion level) and the retry count: uncontended
      // aborts retry faster than the uniform baseline, hot-key aborts
      // spread out instead of re-colliding. Full jitter over the window --
      // a low mean wait matters more for the redo tail than a high floor,
      // since every tick of backoff is charged to the retry's redo bucket.
      const sim::Tick pressure =
          static_cast<sim::Tick>(contention) * static_cast<sim::Tick>(tries + 1);
      const sim::Tick window = std::min<sim::Tick>(cap, base + base * pressure / 64);
      return 1 + rng.NextBounded(window);
    }
  }
  return base;  // unreachable
}

bool ParseRetryPolicy(const std::string& name, RetryPolicyKind* out) {
  if (name == "uniform") {
    *out = RetryPolicyKind::kUniform;
  } else if (name == "expjitter") {
    *out = RetryPolicyKind::kExpJitter;
  } else if (name == "cwnd") {
    *out = RetryPolicyKind::kContentionWindow;
  } else {
    return false;
  }
  return true;
}

const char* RetryPolicyName(RetryPolicyKind kind) {
  switch (kind) {
    case RetryPolicyKind::kUniform:
      return "uniform";
    case RetryPolicyKind::kExpJitter:
      return "expjitter";
    case RetryPolicyKind::kContentionWindow:
      return "cwnd";
  }
  return "?";
}

}  // namespace xenic::txn
