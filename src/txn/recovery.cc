#include "src/txn/recovery.h"

#include <algorithm>
#include <cassert>

namespace xenic::txn {

ClusterManager::ClusterManager(sim::Engine* engine, uint32_t num_nodes,
                               sim::Tick lease_duration)
    : engine_(engine),
      lease_duration_(lease_duration),
      lease_expiry_(num_nodes, lease_duration),
      failed_(num_nodes, false) {}

void ClusterManager::RenewLease(NodeId node) {
  if (!failed_[node]) {
    lease_expiry_[node] = engine_->now() + lease_duration_;
  }
}

bool ClusterManager::IsAlive(NodeId node) const {
  return !failed_[node] && lease_expiry_[node] > engine_->now();
}

std::vector<NodeId> ClusterManager::ExpiredLeases() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < lease_expiry_.size(); ++n) {
    if (!failed_[n] && lease_expiry_[n] <= engine_->now()) {
      out.push_back(n);
    }
  }
  return out;
}

void ClusterManager::MarkFailed(NodeId node) {
  if (!failed_[node]) {
    failed_[node] = true;
    epoch_++;
  }
}

namespace {

// One transaction's replicated-but-unacknowledged log footprint across the
// live cluster: per written shard, the record and the set of live nodes
// holding a copy.
struct ShardRecord {
  store::LogRecord record;
  std::vector<NodeId> holders;
  // Live nodes whose applied-record index shows they applied (and possibly
  // reclaimed) this shard's record -- receipt evidence with no log copy
  // left. An entry created from this evidence alone has an empty `record`:
  // nothing to re-apply (the evidence is that it already was).
  std::vector<NodeId> appliers;
};
struct TxnLogState {
  uint32_t total_shards = 1;
  std::map<NodeId, ShardRecord> shards;  // keyed by the shard's primary
};

std::vector<NodeId> LiveNodes(XenicCluster& cluster, NodeId failed) {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    if (n != failed && !cluster.node(n).crashed()) {
      out.push_back(n);
    }
  }
  return out;
}

// Which shard a record belongs to: the primary of its first write under the
// pre-failure map (every record's writes target exactly one shard).
NodeId ShardOfRecord(const ClusterMap& map, const store::LogRecord& rec) {
  assert(!rec.writes.empty());
  return map.PrimaryOf(rec.writes.front().table, rec.writes.front().key);
}

// Scan every live node's log for unacknowledged LOG records, grouped by
// transaction. Tombstoned records (epoch-aborted transactions) are dead and
// excluded.
std::map<store::TxnId, TxnLogState> CollectInFlight(XenicCluster& cluster, const ClusterMap& map,
                                                    const std::vector<NodeId>& live) {
  std::map<store::TxnId, TxnLogState> out;
  for (NodeId n : live) {
    auto& ds = cluster.datastore(n);
    for (const auto& rec : ds.log().Snapshot()) {
      if (rec.type != store::LogRecordType::kLog || rec.writes.empty() ||
          ds.IsTombstoned(rec.txn)) {
        continue;
      }
      TxnLogState& t = out[rec.txn];
      t.total_shards = std::max(t.total_shards, rec.total_shards);
      auto [it, inserted] = t.shards.try_emplace(ShardOfRecord(map, rec));
      if (inserted) {
        it->second.record = rec;
      }
      it->second.holders.push_back(n);
    }
  }
  // Second evidence pass: a record applied and reclaimed leaves no log copy
  // but the datastore's applied-record index still names its (txn, shard).
  // Without this a committed transaction whose records were consumed on
  // every replica of one shard looks incomplete ("t.shards.size() <
  // total_shards") and gets discarded -- resurrecting pre-transaction
  // versions on the promoted primary.
  for (auto& [txn, t] : out) {
    for (NodeId n : live) {
      const auto& ds = cluster.datastore(n);
      for (NodeId shard : ds.AppliedShardsOf(txn)) {
        auto [it, inserted] = t.shards.try_emplace(shard);
        (void)inserted;
        it->second.appliers.push_back(n);
      }
    }
  }
  return out;
}

// A backup's host workers apply LOG records eagerly and reclaim them, so
// "holds the record" has two forms of evidence: the record is still in the
// node's log, or every one of its datastore writes already reached the
// node's tables (seqs are monotone, so a later version also proves the
// write took effect). Records carrying only workload-managed writes leave
// no table evidence; for those only the log counts.
bool AppliedAt(const store::Datastore& ds, const store::LogRecord& rec) {
  bool any = false;
  for (const auto& w : rec.writes) {
    if (w.table >= ds.num_tables()) {
      continue;
    }
    any = true;
    const auto seq = ds.table(w.table).GetSeq(w.key);
    if (w.is_delete) {
      continue;  // an erased key proves nothing either way; skip
    }
    if (!seq.has_value() || *seq < w.seq) {
      return false;
    }
  }
  return any;
}

// Global completeness rule: records exist for every written shard and each
// gathered enough copies -- among live holders plus unobservable dead
// backups, counted conservatively for commit -- to have reached the
// coordinator's commit point (repl::ReplicationGroup::CompletenessThreshold;
// at the default wait-for-all quorum this reduces to "every live backup
// holds or applied it"). Exactly then may the coordinator have collected
// its LOG acks and reported commit.
bool IsComplete(XenicCluster& cluster, const TxnLogState& t,
                const std::vector<NodeId>& live) {
  if (t.shards.size() < t.total_shards) {
    return false;
  }
  for (const auto& [shard, sr] : t.shards) {
    size_t evidence = 0;
    for (NodeId b : cluster.repl().BackupsOf(shard)) {
      const bool is_live = std::find(live.begin(), live.end(), b) != live.end();
      if (!is_live) {
        // The dead backup's copy is unobservable: it may have acked before
        // dying, so count it toward the coordinator's quorum (roll-forward
        // of a maybe-reported transaction is the safe direction).
        evidence++;
        continue;
      }
      const bool holds =
          std::find(sr.holders.begin(), sr.holders.end(), b) != sr.holders.end() ||
          std::find(sr.appliers.begin(), sr.appliers.end(), b) != sr.appliers.end() ||
          AppliedAt(cluster.datastore(b), sr.record);
      if (holds) {
        evidence++;
      }
    }
    if (evidence < cluster.repl().CompletenessThreshold(shard)) {
      return false;
    }
  }
  return true;
}

// Apply one write at `ds` if newer, refreshing the NIC index so cached
// copies and location hints cannot go stale.
void ApplyRecoveredWrite(store::Datastore& ds, const store::LogWrite& w) {
  if (w.table >= ds.num_tables()) {
    return;  // workload-managed state is rebuilt by workload-level recovery
  }
  auto& t = ds.table(w.table);
  const auto current = t.GetSeq(w.key).value_or(0);
  if (w.seq > current) {
    if (w.is_delete) {
      t.Erase(w.key);
    } else {
      t.Apply(w.key, w.value, w.seq);
    }
    ds.index(w.table).Invalidate(w.key);
    const size_t seg = t.SegmentOfKey(w.key);
    ds.index(w.table).UpdateHint(seg, t.SegmentMaxDisp(seg), t.SegmentHasOverflow(seg));
  }
}

}  // namespace

EpochSweepReport SweepWedgedTxns(XenicCluster& cluster, NodeId failed) {
  EpochSweepReport report;
  const ClusterMap& map = cluster.map();
  const std::vector<NodeId> live = LiveNodes(cluster, failed);
  for (NodeId n : live) {
    XenicNode& node = cluster.node(n);
    for (const auto& w : node.WedgedOn(failed)) {
      // Commit iff the fan-out demonstrably reached the commit point for
      // every written shard: enough copies among live backups (dead
      // backups count conservatively -- their ack may have been the one
      // that completed the quorum) that only the dead node's acks are
      // missing, and the commit decision is forced. Anything pre-LOG, or
      // with too few records at live backups (in-flight or
      // back-pressured), aborts.
      bool complete = w.logs_sent && !w.records.empty();
      for (const auto& [shard, rec] : w.records) {
        if (!complete) {
          break;
        }
        size_t evidence = 0;
        for (NodeId b : cluster.repl().BackupsOf(shard)) {
          if (std::find(live.begin(), live.end(), b) == live.end()) {
            evidence++;  // unobservable dead backup: counted for commit
            continue;
          }
          bool holds = AppliedAt(cluster.datastore(b), rec);
          if (!holds) {
            for (const auto& r : cluster.datastore(b).log().Snapshot()) {
              if (r.txn == w.id && !r.writes.empty() && ShardOfRecord(map, r) == shard) {
                holds = true;
                break;
              }
            }
          }
          if (holds) {
            evidence++;
          }
        }
        if (evidence < cluster.repl().CompletenessThreshold(shard)) {
          complete = false;
        }
      }
      if (complete) {
        report.acks_synthesized += node.ForceCommitWedged(w.id, failed);
        report.committed++;
        report.committed_txns.push_back(w.id);
      } else {
        // Abort decision is made exactly once, here: tombstone any records
        // the transaction already replicated (live backups must never
        // apply them, and the recovery scan must not roll them forward),
        // release its locks cluster-wide (shipped transactions lock read
        // keys at the remote executor without recording it, so sweep the
        // full key set -- ReleaseLock is owner-checked), then abort.
        for (NodeId m : live) {
          cluster.datastore(m).TombstoneTxn(w.id);
        }
        for (NodeId m : live) {
          auto& ds = cluster.datastore(m);
          for (const auto& k : w.keys) {
            if (k.table < ds.num_tables() && map.PrimaryOf(k.table, k.key) == m) {
              ds.index(k.table).ReleaseLock(k.key, w.id);
            }
          }
        }
        node.ForceAbortWedged(w.id);
        report.aborted++;
      }
    }
  }
  return report;
}

RecoveryReport RecoverShard(XenicCluster& cluster, NodeId failed, NodeId promoted,
                            const std::vector<store::TxnId>& known_committed) {
  RecoveryReport report;
  const ClusterMap& map = cluster.map();
  const std::vector<NodeId> backups = cluster.repl().BackupsOf(failed);
  assert(std::find(backups.begin(), backups.end(), promoted) != backups.end() &&
         "promoted node must be a backup of the failed primary");

  const std::vector<NodeId> live = LiveNodes(cluster, failed);

  // Collect the cluster-wide in-flight log state, then restrict attention
  // to transactions with a record on the failed shard.
  std::map<store::TxnId, TxnLogState> all_in_flight = CollectInFlight(cluster, map, live);
  struct Found {
    store::LogRecord record;
    size_t copies = 0;
    bool complete = false;
  };
  std::map<store::TxnId, Found> in_flight;
  for (const auto& [txn, state] : all_in_flight) {
    auto it = state.shards.find(failed);
    if (it == state.shards.end()) {
      continue;
    }
    Found f;
    f.record = it->second.record;
    f.copies = it->second.holders.size();
    // Three sources of commit evidence, in order of strength: the log scan
    // itself (a record on every live backup of every written shard), the
    // epoch sweep's forced-commit list, and -- for transactions whose
    // coordinator survived -- the coordinator's reported outcome. The last
    // one matters when a reported transaction's records were applied and
    // reclaimed on some shards before the failure (no trace left for the
    // scan) while a stalled backup still holds the failed shard's record.
    const NodeId coord = store::TxnNode(txn);
    const bool coord_says_committed =
        coord < cluster.size() && !cluster.node(coord).crashed() &&
        cluster.node(coord).HasReportedCommit(txn);
    f.complete = IsComplete(cluster, state, live) ||
                 std::find(known_committed.begin(), known_committed.end(), txn) !=
                     known_committed.end() ||
                 coord_says_committed;
    report.records_scanned += f.copies;
    in_flight.emplace(txn, std::move(f));
  }

  // The promoted node's NIC cache was never maintained by the commit
  // protocol for the failed shard (backups' NICs serve no lookups):
  // invalidate every cached value of that shard so lookups refill from the
  // recovered host table.
  auto& promoted_ds = cluster.datastore(promoted);
  for (store::TableId t = 0; t < promoted_ds.num_tables(); ++t) {
    for (const auto& e : promoted_ds.index(t).CachedEntries()) {
      if (map.PrimaryOf(t, e.key) == failed) {
        promoted_ds.index(t).Invalidate(e.key);
      }
    }
  }

  // Rebuild lock state at the new primary before serving (4.2.1: "lock
  // state is reconstructed ... Once all locks are set, the shard can serve
  // new transactions").
  XenicNode& new_primary = cluster.node(promoted);
  std::vector<store::LogRecord> records;
  records.reserve(in_flight.size());
  for (auto& [txn, f] : in_flight) {
    records.push_back(f.record);
  }
  report.locks_rebuilt = new_primary.RebuildLocksFromLog(records);

  // Reconcile: a transaction whose LOG records reached every surviving
  // replica of every written shard may have been reported committed -- roll
  // it forward; anything else never committed and is discarded (and
  // tombstoned so no survivor's worker applies it later).
  for (auto& [txn, f] : in_flight) {
    auto& ds = cluster.datastore(promoted);
    for (const auto& w : f.record.writes) {
      if (w.table >= ds.num_tables()) {
        continue;
      }
      if (map.PrimaryOf(w.table, w.key) != failed) {
        continue;
      }
      if (f.complete) {
        ApplyRecoveredWrite(ds, w);
      }
      ds.index(w.table).ReleaseLock(w.key, txn);
    }
    if (f.complete) {
      // Mark the commit stable at every survivor: with the NIC applier
      // armed (features.nic_log_apply) a kLog record is parked until its
      // transaction's commit point is known, and the dead coordinator can
      // no longer say so. Recovery is the stability authority here.
      for (NodeId n : live) {
        cluster.datastore(n).log().MarkStable(txn);
      }
      report.rolled_forward++;
    } else {
      for (NodeId n : live) {
        cluster.datastore(n).TombstoneTxn(txn);
      }
      report.discarded++;
    }
  }
  return report;
}

CoordinatorSweepReport RecoverCoordinatorLocks(XenicCluster& cluster, NodeId failed) {
  CoordinatorSweepReport report;
  const ClusterMap& map = cluster.map();
  const std::vector<NodeId> live = LiveNodes(cluster, failed);
  std::map<store::TxnId, TxnLogState> in_flight = CollectInFlight(cluster, map, live);

  // Candidates: transactions coordinated by the failed node that left
  // either orphaned locks (EXECUTE locks eagerly) or replicated records.
  std::map<store::TxnId, bool> candidates;  // txn -> has log records
  for (const auto& [txn, state] : in_flight) {
    (void)state;
    if (store::TxnNode(txn) == failed) {
      candidates[txn] = true;
    }
  }
  for (NodeId n : live) {
    auto& ds = cluster.datastore(n);
    for (store::TableId t = 0; t < ds.num_tables(); ++t) {
      for (const auto& lk : ds.index(t).LockedKeys()) {
        if (store::TxnNode(lk.owner) == failed) {
          candidates.try_emplace(lk.owner, in_flight.count(lk.owner) > 0);
        }
      }
    }
  }

  for (const auto& [txn, has_records] : candidates) {
    report.txns_swept++;
    const bool complete =
        has_records && IsComplete(cluster, in_flight.at(txn), live);
    if (complete) {
      // The dead coordinator may have reported commit: finish its job at
      // every live primary (the failed shard itself is RecoverShard's).
      for (const auto& [shard, sr] : in_flight.at(txn).shards) {
        if (shard == failed ||
            std::find(live.begin(), live.end(), shard) == live.end()) {
          continue;
        }
        for (const auto& w : sr.record.writes) {
          ApplyRecoveredWrite(cluster.datastore(shard), w);
        }
      }
      // The dead coordinator never sent its stability notices; unblock any
      // armed NIC appliers still parked on this transaction's records.
      for (NodeId n : live) {
        cluster.datastore(n).log().MarkStable(txn);
      }
      report.rolled_forward++;
    } else {
      for (NodeId n : live) {
        cluster.datastore(n).TombstoneTxn(txn);
      }
      report.discarded++;
    }
    // Either way, every lock the transaction holds at a live node dies.
    for (NodeId n : live) {
      auto& ds = cluster.datastore(n);
      for (store::TableId t = 0; t < ds.num_tables(); ++t) {
        for (const auto& lk : ds.index(t).LockedKeys()) {
          if (lk.owner == txn) {
            ds.index(t).ReleaseLock(lk.key, txn);
            report.locks_released++;
          }
        }
      }
    }
  }
  return report;
}

}  // namespace xenic::txn
