#include "src/txn/recovery.h"

#include <algorithm>
#include <cassert>

namespace xenic::txn {

ClusterManager::ClusterManager(sim::Engine* engine, uint32_t num_nodes,
                               sim::Tick lease_duration)
    : engine_(engine),
      lease_duration_(lease_duration),
      lease_expiry_(num_nodes, lease_duration),
      failed_(num_nodes, false) {}

void ClusterManager::RenewLease(NodeId node) {
  if (!failed_[node]) {
    lease_expiry_[node] = engine_->now() + lease_duration_;
  }
}

bool ClusterManager::IsAlive(NodeId node) const {
  return !failed_[node] && lease_expiry_[node] > engine_->now();
}

std::vector<NodeId> ClusterManager::ExpiredLeases() const {
  std::vector<NodeId> out;
  for (NodeId n = 0; n < lease_expiry_.size(); ++n) {
    if (!failed_[n] && lease_expiry_[n] <= engine_->now()) {
      out.push_back(n);
    }
  }
  return out;
}

void ClusterManager::MarkFailed(NodeId node) {
  if (!failed_[node]) {
    failed_[node] = true;
    epoch_++;
  }
}

RecoveryReport RecoverShard(XenicCluster& cluster, NodeId failed, NodeId promoted) {
  RecoveryReport report;
  const ClusterMap& map = cluster.map();
  const std::vector<NodeId> backups = map.BackupsOf(failed);
  assert(std::find(backups.begin(), backups.end(), promoted) != backups.end() &&
         "promoted node must be a backup of the failed primary");

  // Surviving replicas of the failed node's shard.
  std::vector<NodeId> survivors;
  for (NodeId b : backups) {
    if (b != failed) {
      survivors.push_back(b);
    }
  }

  // Collect unacknowledged records touching the failed shard, per survivor.
  struct Found {
    store::LogRecord record;
    size_t copies = 0;
  };
  std::map<store::TxnId, Found> in_flight;
  for (NodeId s : survivors) {
    for (const auto& rec : cluster.datastore(s).log().Snapshot()) {
      bool touches_failed_shard = false;
      for (const auto& w : rec.writes) {
        if (w.table < cluster.datastore(s).num_tables() &&
            map.PrimaryOf(w.table, w.key) == failed) {
          touches_failed_shard = true;
          break;
        }
      }
      if (!touches_failed_shard) {
        continue;
      }
      report.records_scanned++;
      auto [it, inserted] = in_flight.try_emplace(rec.txn, Found{rec, 0});
      it->second.copies++;
      (void)inserted;
    }
  }

  // The promoted node's NIC cache was never maintained by the commit
  // protocol for the failed shard (backups' NICs serve no lookups):
  // invalidate every cached value of that shard so lookups refill from the
  // recovered host table.
  auto& promoted_ds = cluster.datastore(promoted);
  for (store::TableId t = 0; t < promoted_ds.num_tables(); ++t) {
    for (const auto& e : promoted_ds.index(t).CachedEntries()) {
      if (map.PrimaryOf(t, e.key) == failed) {
        promoted_ds.index(t).Invalidate(e.key);
      }
    }
  }

  // Rebuild lock state at the new primary before serving (4.2.1: "lock
  // state is reconstructed ... Once all locks are set, the shard can serve
  // new transactions").
  XenicNode& new_primary = cluster.node(promoted);
  std::vector<store::LogRecord> records;
  records.reserve(in_flight.size());
  for (auto& [txn, f] : in_flight) {
    records.push_back(f.record);
  }
  report.locks_rebuilt = new_primary.RebuildLocksFromLog(records);

  // Reconcile: a transaction whose LOG record reached every surviving
  // replica may have been reported committed -- roll it forward; anything
  // else never committed and is discarded.
  for (auto& [txn, f] : in_flight) {
    const bool complete = f.copies == survivors.size();
    for (const auto& w : f.record.writes) {
      if (w.table >= cluster.datastore(promoted).num_tables()) {
        continue;
      }
      if (map.PrimaryOf(w.table, w.key) != failed) {
        continue;
      }
      auto& ds = cluster.datastore(promoted);
      if (complete) {
        const auto current = ds.table(w.table).GetSeq(w.key).value_or(0);
        if (w.seq > current) {
          if (w.is_delete) {
            ds.table(w.table).Erase(w.key);
          } else {
            ds.table(w.table).Apply(w.key, w.value, w.seq);
          }
        }
      }
      ds.index(w.table).ReleaseLock(w.key, txn);
    }
    if (complete) {
      report.rolled_forward++;
    } else {
      report.discarded++;
    }
  }
  return report;
}

}  // namespace xenic::txn
