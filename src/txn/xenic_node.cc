#include "src/txn/xenic_node.h"

#include <algorithm>
#include <cassert>

namespace xenic::txn {

namespace {

// Host-core costs (ns) for transaction initiation and local data access.
constexpr sim::Tick kHostInitCost = 100;
constexpr sim::Tick kHostKeyCost = 60;
constexpr sim::Tick kHostFinishBase = 80;

// NIC-core handler costs: per-message base plus per-key work. The base
// matches the measured minimal-RPC handler (section 3.3).
constexpr sim::Tick kNicOpBase = 150;
constexpr sim::Tick kNicKeyCost = 60;

// Hot-key fast path: fallback wakeup for parked waiters (covers lock
// releases that bypass the node's release paths, e.g. recovery sweeps) and
// the cap on how often one transaction may re-park before falling back to
// a normal abort-and-retry.
constexpr sim::Tick kHotParkTimeout = 30 * sim::kNsPerUs;
constexpr uint32_t kHotMaxWaits = 8;
// Remote lock requests park far more conservatively than local hot-path
// txns: every park delays a coordinator that may hold locks at OTHER
// shards. One park per request bounds the cross-shard blocking chain to a
// single timeout (then the deny resolves any distributed cycle), and a
// shallow per-key queue cap keeps hot keys from building convoys -- a
// deep FIFO serializes waiters across several lock generations, which
// costs more in idle coordinator contexts than the saved retry work.
constexpr uint32_t kRemoteMaxParks = 1;
constexpr size_t kRemoteQueueCap = 2;

// 2PL wait queues (WAIT_DIE / WOUND_WAIT). Waiting is the policy's normal
// conflict outcome -- not a hot-key optimization -- so the budget is wider
// than the remote-park cap; the timeout still bounds every wait (releases
// that bypass the node's release paths, e.g. recovery sweeps, would
// otherwise strand a waiter), after which the request denies like NO_WAIT.
constexpr sim::Tick kCcParkTimeout = 30 * sim::kNsPerUs;
constexpr uint32_t kCcMaxParks = 8;

// Robinhood worker costs.
constexpr sim::Tick kWorkerPollCost = 80;
constexpr sim::Tick kWorkerRecordCost = 150;
constexpr sim::Tick kWorkerWriteCost = 120;
constexpr int kWorkerBatch = 16;

bool ContainsKey(const std::vector<KeyRef>& v, const KeyRef& k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

}  // namespace

XenicNode::XenicNode(nicmodel::SmartNic* nic, store::Datastore* ds, const ClusterMap* map,
                     const XenicFeatures* features, std::vector<XenicNode*>* peers,
                     const repl::ReplicationGroup* repl)
    : nic_(nic),
      ds_(ds),
      map_(map),
      features_(features),
      peers_(peers),
      repl_(repl),
      transport_(nic, &crashed_, &stats_.messages, &stats_.by_type) {}

sim::Tick XenicNode::NicOpCost(size_t n_keys) const {
  return kNicOpBase + kNicKeyCost * static_cast<sim::Tick>(n_keys);
}

sim::Tick XenicNode::NicExecCost(sim::Tick host_cost) const {
  return static_cast<sim::Tick>(static_cast<double>(host_cost) /
                                nic_->model().arm_multithread_ratio);
}

std::optional<store::NicIndex::RemoteObject> XenicNode::LookupAccum(
    const KeyRef& k, bool fetch_value, store::NicIndex::LookupStats* agg) {
  store::NicIndex::LookupStats s;
  auto r = fetch_value ? ds_->index(k.table).LookupRemote(k.key, &s)
                       : ds_->index(k.table).ReadMetadata(k.key, &s);
  agg->dma_reads += s.dma_reads;
  agg->bytes_read += s.bytes_read;
  return r;
}

void XenicNode::ReadLocalSets(TxnState* st, const std::vector<uint32_t>& read_idx,
                              store::NicIndex::LookupStats* agg) {
  for (uint32_t i : read_idx) {
    auto r = LookupAccum(st->read_keys[i], /*fetch_value=*/true, agg);
    if (r) {
      st->reads[i] = ReadResult{true, r->seq, std::move(r->value)};
    }
  }
  for (size_t i = 0; i < st->write_keys.size(); ++i) {
    const auto& k = st->write_keys[i];
    if (map_->PrimaryOf(k.table, k.key) != id()) {
      continue;
    }
    auto m = LookupAccum(k, /*fetch_value=*/false, agg);
    st->write_seqs[i] = m ? m->seq : 0;
  }
}

// ---------------------------------------------------------------------------
// Submission and path selection.
// ---------------------------------------------------------------------------

TxnId XenicNode::Submit(TxnRequest req, CommitCallback done) {
  if (crashed_) {
    return 0;  // the application died with the node; no outcome is reported
  }
  auto st = std::make_unique<TxnState>();
  st->id = store::MakeTxnId(id(), next_txn_seq_++);
  st->req = std::move(req);
  st->done = std::move(done);
  st->read_keys = st->req.reads;
  st->write_keys = st->req.writes;
  st->reads.resize(st->read_keys.size());
  st->write_seqs.assign(st->write_keys.size(), 0);
  st->writes.resize(st->write_keys.size());
  st->map_version = map_->version;
  const TxnId id = st->id;
  // Root of this transaction's causal event chain: everything scheduled
  // from here on (host compute, NIC hops, DMA, wire) inherits the id.
  nic_->engine()->set_trace_ctx(id);
  SubmitOnHost(std::move(st));
  return id;
}

void XenicNode::SubmitOnHost(StatePtr st) {
  bool all_local = true;
  for (const auto& k : st->read_keys) {
    all_local &= map_->PrimaryOf(k.table, k.key) == id();
  }
  for (const auto& k : st->write_keys) {
    all_local &= map_->PrimaryOf(k.table, k.key) == id();
  }

  if (all_local && st->write_keys.empty() && st->req.local_log_writes.empty()) {
    LocalReadOnlyPath(std::move(st));
    return;
  }
  if (all_local) {
    if (Cc2pl()) {
      // 2PL: no optimistic race -- lock the read+write set up front on the
      // NIC and execute under locks (subsumes the hot-key route).
      CcLocalPath(std::move(st));
      return;
    }
    if (features_->hot_key_fastpath && !st->write_keys.empty() && TryHotKeyRoute(st)) {
      return;
    }
    LocalWritePath(std::move(st));
    return;
  }

  // Replica read (features.replica_reads): a read-only transaction whose
  // whole read set lives on one remote shard that this node backs up can
  // be served from the NIC-applied local backup state, behind a freshness
  // fence, without any wire round trip.
  NodeId replica_shard = 0;
  if (ReplicaReadEligible(*st, &replica_shard)) {
    ReplicaReadPath(std::move(st), replica_shard);
    return;
  }

  // Distributed: ship the transaction state to the coordinator-side NIC.
  const TxnId txn = st->id;
  TxnState* raw = st.get();
  txns_[txn] = std::move(st);
  const uint32_t bytes = net::wire::TxnDescriptor(raw->read_keys.size(), raw->write_keys.size(),
                                                  raw->req.external_bytes);
  nic_->HostCompute(kHostInitCost, [this, txn, bytes] {
    nic_->HostToNic(bytes, [this, txn] { CoordStartOnNic(txn); });
  });
}

// ---------------------------------------------------------------------------
// Local fast paths (paper 4.2.4).
// ---------------------------------------------------------------------------

void XenicNode::LocalReadOnlyPath(StatePtr st) {
  stats_.local_fastpath++;
  // All reads and execution rounds happen on the host against the local
  // tables within one charged block: atomic, so no validation is needed.
  TxnState* raw = st.get();
  const TxnId txn = raw->id;
  txns_[txn] = std::move(st);

  sim::Tick cost = kHostInitCost + raw->req.exec_cost;
  cost += kHostKeyCost * static_cast<sim::Tick>(raw->read_keys.size());
  nic_->HostCompute(cost, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    bool app_abort = false;
    int round = 0;
    while (true) {
      for (size_t i = 0; i < st->read_keys.size(); ++i) {
        if (st->reads[i].found) {
          continue;
        }
        const auto& k = st->read_keys[i];
        auto r = ds_->FreshLookup(k.table, k.key);
        if (r) {
          st->reads[i] = ReadResult{true, r->seq, std::move(r->value)};
        }
      }
      std::vector<KeyRef> add_reads;
      std::vector<KeyRef> add_writes;
      bool abort_flag = false;
      ExecRound er;
      er.round = round++;
      er.read_keys = &st->read_keys;
      er.reads = &st->reads;
      er.write_keys = &st->write_keys;
      er.writes = &st->writes;
      er.add_reads = &add_reads;
      er.add_writes = &add_writes;
      er.abort = &abort_flag;
      if (st->req.execute) {
        st->req.execute(er);
      }
      if (abort_flag) {
        app_abort = true;
        break;
      }
      assert(add_writes.empty() && "read-only transaction added writes");
      if (add_reads.empty()) {
        break;
      }
      bool all_local = true;
      for (const auto& k : add_reads) {
        all_local &= map_->PrimaryOf(k.table, k.key) == id();
      }
      if (!all_local) {
        // Execution discovered remote keys: escalate to the distributed
        // path (restart from the original key set; nothing was locked).
        EscalateToDistributed(txn);
        return;
      }
      for (const auto& k : add_reads) {
        st->read_keys.push_back(k);
        st->reads.emplace_back();
      }
    }
    auto done = std::move(st->done);
    if (app_abort) {
      stats_.app_aborted++;
    } else {
      stats_.committed++;
    }
    const TxnOutcome outcome = app_abort ? TxnOutcome::kAppAborted : TxnOutcome::kCommitted;
    EraseState(txn);
    done(outcome);
  });
}

bool XenicNode::ReplicaReadEligible(const TxnState& st, NodeId* shard_out) const {
  if (!features_->replica_reads || !features_->nic_log_apply || Cc2pl()) {
    // Requires the NIC applier (stability-gated backup state) and OCC --
    // 2PL reads take locks at the primary by design.
    return false;
  }
  if (!st.write_keys.empty() || !st.req.local_log_writes.empty() || st.read_keys.empty()) {
    return false;
  }
  const NodeId shard = map_->PrimaryOf(st.read_keys[0].table, st.read_keys[0].key);
  for (const auto& k : st.read_keys) {
    if (map_->PrimaryOf(k.table, k.key) != shard) {
      return false;  // multi-shard read set: no single backup holds it all
    }
  }
  if (shard == id() || map_->IsFailed(shard) || !repl_->IsBackupOf(id(), shard)) {
    return false;
  }
  *shard_out = shard;
  return true;
}

void XenicNode::ReplicaReadPath(StatePtr st, NodeId shard) {
  TxnState* raw = st.get();
  const TxnId txn = raw->id;
  txns_[txn] = std::move(st);

  // Same host cost shape as the local read-only path: the reads hit the
  // local (backup) tables, so no NIC or wire work is charged.
  sim::Tick cost = kHostInitCost + raw->req.exec_cost;
  cost += kHostKeyCost * static_cast<sim::Tick>(raw->read_keys.size());
  nic_->HostCompute(cost, [this, txn, shard] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    // Freshness fence. Serve from backup state only while (a) the routing
    // epoch is unchanged since submission, (b) the shard's primary has not
    // been declared failed, and (c) the local commit log is fully drained.
    // With the stability gate, a drained log means every applied record
    // was at or below its transaction's commit point and nothing newer is
    // parked -- the backup tables are a prefix-consistent snapshot of the
    // shard, so the whole read set is one serializable point-in-time view.
    if (st->map_version != map_->version || map_->IsFailed(shard) ||
        ds_->log().Peek() != nullptr) {
      stats_.replica_read_fallback++;
      EscalateToDistributed(txn);
      return;
    }
    bool app_abort = false;
    int round = 0;
    while (true) {
      for (size_t i = 0; i < st->read_keys.size(); ++i) {
        if (st->reads[i].found) {
          continue;
        }
        const auto& k = st->read_keys[i];
        auto r = ds_->FreshLookup(k.table, k.key);
        if (r) {
          st->reads[i] = ReadResult{true, r->seq, std::move(r->value)};
        }
      }
      std::vector<KeyRef> add_reads;
      std::vector<KeyRef> add_writes;
      bool abort_flag = false;
      ExecRound er;
      er.round = round++;
      er.read_keys = &st->read_keys;
      er.reads = &st->reads;
      er.write_keys = &st->write_keys;
      er.writes = &st->writes;
      er.add_reads = &add_reads;
      er.add_writes = &add_writes;
      er.abort = &abort_flag;
      if (st->req.execute) {
        st->req.execute(er);
      }
      if (abort_flag) {
        app_abort = true;
        break;
      }
      assert(add_writes.empty() && "read-only transaction added writes");
      if (add_reads.empty()) {
        break;
      }
      bool same_shard = true;
      for (const auto& k : add_reads) {
        same_shard &= map_->PrimaryOf(k.table, k.key) == shard;
      }
      if (!same_shard) {
        // Execution discovered keys off this shard: the snapshot no longer
        // covers the read set. Restart on the distributed path.
        stats_.replica_read_fallback++;
        EscalateToDistributed(txn);
        return;
      }
      for (const auto& k : add_reads) {
        st->read_keys.push_back(k);
        st->reads.emplace_back();
      }
    }
    auto done = std::move(st->done);
    if (app_abort) {
      stats_.app_aborted++;
    } else {
      stats_.committed++;
      stats_.replica_reads++;
    }
    const TxnOutcome outcome = app_abort ? TxnOutcome::kAppAborted : TxnOutcome::kCommitted;
    EraseState(txn);
    done(outcome);
  });
}

void XenicNode::LocalWritePath(StatePtr st) {
  stats_.local_fastpath++;
  TxnState* raw = st.get();
  const TxnId txn = raw->id;
  txns_[txn] = std::move(st);

  // Optimistic host execution: read local values + run all rounds in one
  // charged block, producing the write set.
  sim::Tick cost = kHostInitCost + raw->req.exec_cost;
  cost += kHostKeyCost *
          static_cast<sim::Tick>(raw->read_keys.size() + raw->write_keys.size());
  nic_->HostCompute(cost, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    bool app_abort = false;
    int round = 0;
    while (true) {
      for (size_t i = 0; i < st->read_keys.size(); ++i) {
        if (st->reads[i].found) {
          continue;
        }
        const auto& k = st->read_keys[i];
        auto r = ds_->FreshLookup(k.table, k.key);
        if (r) {
          st->reads[i] = ReadResult{true, r->seq, std::move(r->value)};
        }
      }
      for (size_t i = 0; i < st->write_keys.size(); ++i) {
        if (st->write_seqs[i] == 0) {
          const auto& k = st->write_keys[i];
          st->write_seqs[i] = ds_->FreshSeq(k.table, k.key).value_or(0);
        }
      }
      std::vector<KeyRef> add_reads;
      std::vector<KeyRef> add_writes;
      bool abort_flag = false;
      ExecRound er;
      er.round = round++;
      er.read_keys = &st->read_keys;
      er.reads = &st->reads;
      er.write_keys = &st->write_keys;
      er.writes = &st->writes;
      er.add_reads = &add_reads;
      er.add_writes = &add_writes;
      er.abort = &abort_flag;
      if (st->req.execute) {
        st->req.execute(er);
      }
      if (abort_flag) {
        app_abort = true;
        break;
      }
      if (add_reads.empty() && add_writes.empty()) {
        break;
      }
      bool all_local = true;
      for (const auto& k : add_reads) {
        all_local &= map_->PrimaryOf(k.table, k.key) == id();
      }
      for (const auto& k : add_writes) {
        all_local &= map_->PrimaryOf(k.table, k.key) == id();
      }
      if (!all_local) {
        EscalateToDistributed(txn);
        return;
      }
      for (const auto& k : add_reads) {
        st->read_keys.push_back(k);
        st->reads.emplace_back();
      }
      for (const auto& k : add_writes) {
        st->write_keys.push_back(k);
        st->write_seqs.push_back(0);
        st->writes.emplace_back();
      }
    }
    if (app_abort) {
      AbortCleanup(st, TxnOutcome::kAppAborted);
      return;
    }

    // Ship the transaction state to the local NIC: acquire write locks and
    // re-validate the optimistic reads, then replicate.
    const uint32_t bytes =
        net::wire::WriteImages(st->writes.size(), txn::ValueBytes(st->writes));
    const TxnId id2 = st->id;
    nic_->HostToNic(bytes, [this, id2] {
      TxnState* st = FindState(id2);
      if (st == nullptr || crashed_) {
        return;
      }
      nic_->NicCompute(NicOpCost(st->write_keys.size() + st->read_keys.size()), [this, id2] {
        TxnState* st = FindState(id2);
        if (st == nullptr || crashed_) {
          return;
        }
        uint8_t contention = 0;
        if (!LockAll(st->id, st->write_keys, &contention)) {
          st->contention_hint = std::max(st->contention_hint, contention);
          st->abort_reason = AbortReason::kLockLocal;
          AbortCleanup(st, TxnOutcome::kAborted);
          return;
        }
        st->locked_shards.push_back(id());
        // Validate: every read and write key's version must still match
        // what the host saw (writes are now locked, reads are not).
        bool ok = true;
        store::NicIndex::LookupStats agg;
        const sim::Tick now = nic_->engine()->now();
        for (size_t i = 0; i < st->read_keys.size() && ok; ++i) {
          auto m = LookupAccum(st->read_keys[i], /*fetch_value=*/false, &agg);
          const Seq cur = m ? m->seq : 0;
          const TxnId owner = m ? m->lock_owner : store::kNoTxn;
          if (cur != st->reads[i].seq || (owner != store::kNoTxn && owner != st->id)) {
            ok = false;
            sketch_.RecordConflict(st->read_keys[i], now);
            st->contention_hint =
                std::max(st->contention_hint, sketch_.Level(st->read_keys[i], now));
          }
        }
        for (size_t i = 0; i < st->write_keys.size() && ok; ++i) {
          auto m = LookupAccum(st->write_keys[i], /*fetch_value=*/false, &agg);
          if ((m ? m->seq : 0) != st->write_seqs[i]) {
            ok = false;
            sketch_.RecordConflict(st->write_keys[i], now);
            st->contention_hint =
                std::max(st->contention_hint, sketch_.Level(st->write_keys[i], now));
          }
        }
        ChargeDmaReads(agg, [this, id2, ok] {
          TxnState* st = FindState(id2);
          if (st == nullptr || crashed_) {
            return;
          }
          if (!ok) {
            st->abort_reason = AbortReason::kValidate;
            AbortCleanup(st, TxnOutcome::kAborted);
            return;
          }
          LogPhase(st);
        });
      });
    });
  });
}

// ---------------------------------------------------------------------------
// Hot-key fast path (XenicFeatures::hot_key_fastpath, p4db-style is_hot
// routing). All-local write transactions whose write set hits a
// sketch-flagged hot key skip the optimistic host execution: the NIC locks
// the full read+write set up front, executes under locks, and goes
// straight to LOG/COMMIT -- no validation race, hence no redo. If the hot
// key is held, the transaction parks in a per-key FIFO *holding zero
// locks* (no hold-and-wait, so no deadlock) until the holder's release
// wakes it.
// ---------------------------------------------------------------------------

bool XenicNode::TryHotKeyRoute(StatePtr& st) {
  const sim::Tick now = nic_->engine()->now();
  const KeyRef* hot = nullptr;
  for (const auto& k : st->write_keys) {
    if (sketch_.IsHot(k, now)) {
      hot = &k;
      break;
    }
  }
  if (hot == nullptr) {
    return false;
  }
  st->hot_path = true;
  st->hot_key = *hot;
  stats_.hot_path++;
  TxnState* raw = st.get();
  const TxnId txn = raw->id;
  txns_[txn] = std::move(st);
  // Same host->NIC handoff as the local write path, minus the optimistic
  // host execution: the work happens on the NIC under locks.
  const uint32_t bytes = net::wire::TxnDescriptor(raw->read_keys.size(), raw->write_keys.size(),
                                                  raw->req.external_bytes);
  nic_->HostCompute(kHostInitCost, [this, txn, bytes] {
    nic_->HostToNic(bytes, [this, txn] { HotKeyStart(txn); });
  });
  return true;
}

void XenicNode::HotKeyStart(TxnId txn) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;
  }
  nic_->NicCompute(NicOpCost(st->read_keys.size() + st->write_keys.size()),
                   [this, txn] { HotKeyAcquire(txn); });
}

void XenicNode::HotKeyAcquire(TxnId txn) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;
  }
  // Lock reads and writes together (like the shipped path: everything is
  // read under locks, so there is no separate validation phase).
  std::vector<KeyRef> keys;
  for (const auto& k : st->read_keys) {
    if (!ContainsKey(keys, k)) {
      keys.push_back(k);
    }
  }
  for (const auto& k : st->write_keys) {
    if (!ContainsKey(keys, k)) {
      keys.push_back(k);
    }
  }
  uint8_t contention = 0;
  KeyRef conflict;
  if (!LockAll(txn, keys, &contention, &conflict)) {
    st->contention_hint = std::max(st->contention_hint, contention);
    if (conflict == st->hot_key && st->hot_waits < kHotMaxWaits) {
      HotKeyPark(st);
      return;
    }
    // Conflict on a cold key, or the queue is not making progress: fall
    // back to a normal abort and let the submitter's retry policy decide.
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kLockLocal;
    }
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  st->lock_all = true;
  st->local_locked = true;
  st->locked_shards.push_back(id());
  // Read the full read set and current write seqs under the locks.
  std::vector<uint32_t> read_idx(st->read_keys.size());
  for (uint32_t i = 0; i < read_idx.size(); ++i) {
    read_idx[i] = i;
  }
  store::NicIndex::LookupStats agg;
  ReadLocalSets(st, read_idx, &agg);
  ChargeDmaReads(agg, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    HotKeyExecute(st);
  });
}

void XenicNode::HotKeyExecute(TxnState* st) {
  const TxnId txn = st->id;
  nic_->NicCompute(NicExecCost(st->req.exec_cost), [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    std::vector<KeyRef> add_reads;
    std::vector<KeyRef> add_writes;
    bool abort_flag = false;
    ExecRound er;
    er.round = st->round++;
    er.read_keys = &st->read_keys;
    er.reads = &st->reads;
    er.write_keys = &st->write_keys;
    er.writes = &st->writes;
    er.add_reads = &add_reads;
    er.add_writes = &add_writes;
    er.abort = &abort_flag;
    if (st->req.execute) {
      st->req.execute(er);
    }
    if (abort_flag) {
      AbortCleanup(st, TxnOutcome::kAppAborted);
      return;
    }
    if (add_reads.empty() && add_writes.empty()) {
      LogPhase(st);
      return;
    }
    bool all_local = true;
    for (const auto& k : add_reads) {
      all_local &= map_->PrimaryOf(k.table, k.key) == id();
    }
    for (const auto& k : add_writes) {
      all_local &= map_->PrimaryOf(k.table, k.key) == id();
    }
    if (!all_local) {
      // Execution discovered remote keys: drop every lock and restart
      // through the distributed path (nothing is held while distributed
      // EXECUTE rounds run, so no cross-path deadlock is possible).
      std::vector<KeyRef> held;
      for (const auto& k : st->read_keys) {
        if (!ContainsKey(held, k)) {
          held.push_back(k);
        }
      }
      for (const auto& k : st->write_keys) {
        if (!ContainsKey(held, k)) {
          held.push_back(k);
        }
      }
      UnlockAll(txn, held);
      st->locked_shards.clear();
      st->local_locked = false;
      st->lock_all = false;
      st->cc_read_locks = false;
      EscalateToDistributed(txn);
      return;
    }
    // Lock the newly added local keys in place (no parking mid-execution:
    // a conflict aborts and the submitter retries).
    std::vector<KeyRef> new_keys;
    auto held_already = [&](const KeyRef& k) {
      return ContainsKey(st->read_keys, k) || ContainsKey(st->write_keys, k);
    };
    for (const auto& k : add_reads) {
      if (!held_already(k) && !ContainsKey(new_keys, k)) {
        new_keys.push_back(k);
      }
    }
    for (const auto& k : add_writes) {
      if (!held_already(k) && !ContainsKey(new_keys, k)) {
        new_keys.push_back(k);
      }
    }
    const auto read_base = static_cast<uint32_t>(st->read_keys.size());
    for (const auto& k : add_reads) {
      st->read_keys.push_back(k);
      st->reads.emplace_back();
    }
    for (const auto& k : add_writes) {
      st->write_keys.push_back(k);
      st->write_seqs.push_back(0);
      st->writes.emplace_back();
    }
    uint8_t contention = 0;
    if (!new_keys.empty() && !LockAll(txn, new_keys, &contention)) {
      st->contention_hint = std::max(st->contention_hint, contention);
      if (st->abort_reason == AbortReason::kNone) {
        st->abort_reason = AbortReason::kLockLocal;
      }
      AbortCleanup(st, TxnOutcome::kAborted);
      return;
    }
    std::vector<uint32_t> new_read_idx;
    for (uint32_t i = read_base; i < st->read_keys.size(); ++i) {
      new_read_idx.push_back(i);
    }
    store::NicIndex::LookupStats agg;
    ReadLocalSets(st, new_read_idx, &agg);
    ChargeDmaReads(agg, [this, txn] {
      TxnState* st = FindState(txn);
      if (st == nullptr || crashed_) {
        return;
      }
      HotKeyExecute(st);
    });
  });
}

void XenicNode::HotKeyPark(TxnState* st) {
  const TxnId txn = st->id;
  st->hot_parked = true;
  st->hot_waits++;
  stats_.hot_waits++;
  hot_waiters_[st->hot_key].push_back(txn);
  // Fallback wakeup: a release that bypasses this node's release paths
  // (recovery sweeps drop locks directly in the index) would otherwise
  // strand the queue. `hot_waits` doubles as a generation counter so a
  // stale timer from an earlier park cannot double-wake.
  const uint32_t gen = st->hot_waits;
  nic_->engine()->ScheduleAfter(kHotParkTimeout, [this, txn, gen] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_ || !st->hot_parked || st->hot_waits != gen) {
      return;
    }
    st->hot_parked = false;
    RemoveHotWaiter(st);
    HotKeyAcquire(txn);
  });
}

void XenicNode::RemoveHotWaiter(TxnState* st) {
  auto it = hot_waiters_.find(st->hot_key);
  if (it == hot_waiters_.end()) {
    return;
  }
  auto& q = it->second;
  auto pos = std::find(q.begin(), q.end(), st->id);
  if (pos != q.end()) {
    q.erase(pos);
  }
  if (q.empty()) {
    hot_waiters_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// 2PL local path (XenicFeatures::cc != kOcc). Every all-local write
// transaction takes this route: the NIC locks the full read+write set up
// front (the policy decides whether a conflict aborts, waits, or wounds),
// executes under the locks, and reuses LogPhase/CommitPhase. Structurally
// the hot-key fast path minus the sketch gate, so execution rounds reuse
// HotKeyExecute (which has no hot-key-specific state).
// ---------------------------------------------------------------------------

void XenicNode::CcLocalPath(StatePtr st) {
  stats_.local_fastpath++;
  TxnState* raw = st.get();
  const TxnId txn = raw->id;
  txns_[txn] = std::move(st);
  const uint32_t bytes = net::wire::TxnDescriptor(raw->read_keys.size(), raw->write_keys.size(),
                                                  raw->req.external_bytes);
  nic_->HostCompute(kHostInitCost, [this, txn, bytes] {
    nic_->HostToNic(bytes, [this, txn] { CcLocalStart(txn); });
  });
}

void XenicNode::CcLocalStart(TxnId txn) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;
  }
  nic_->NicCompute(NicOpCost(st->read_keys.size() + st->write_keys.size()),
                   [this, txn] { CcLocalAcquire(txn, 0); });
}

void XenicNode::CcLocalAcquire(TxnId txn, uint32_t parks) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;  // wounded / swept while parked; the waiter just dies
  }
  std::vector<KeyRef> keys;
  for (const auto& k : st->read_keys) {
    if (!ContainsKey(keys, k)) {
      keys.push_back(k);
    }
  }
  for (const auto& k : st->write_keys) {
    if (!ContainsKey(keys, k)) {
      keys.push_back(k);
    }
  }
  uint8_t contention = 0;
  KeyRef conflict;
  if (!LockAll(txn, keys, &contention, &conflict)) {
    st->contention_hint = std::max(st->contention_hint, contention);
    if (CcHandleConflict(txn, conflict, parks,
                         [this, txn, parks] { CcLocalAcquire(txn, parks + 1); })) {
      return;  // parked (zero locks held) until release, timeout, or wound
    }
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kLockLocal;
    }
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  st->lock_all = true;
  st->local_locked = true;
  st->cc_read_locks = true;
  st->locked_shards.push_back(id());
  std::vector<uint32_t> read_idx(st->read_keys.size());
  for (uint32_t i = 0; i < read_idx.size(); ++i) {
    read_idx[i] = i;
  }
  store::NicIndex::LookupStats agg;
  ReadLocalSets(st, read_idx, &agg);
  ChargeDmaReads(agg, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    HotKeyExecute(st);
  });
}

// ---------------------------------------------------------------------------
// Distributed path: coordinator side.
// ---------------------------------------------------------------------------

void XenicNode::EscalateToDistributed(TxnId txn) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;
  }
  // Reset the optimistic local progress and restart through the NIC.
  st->read_keys = st->req.reads;
  st->write_keys = st->req.writes;
  st->reads.assign(st->read_keys.size(), ReadResult{});
  st->write_seqs.assign(st->write_keys.size(), 0);
  st->writes.assign(st->write_keys.size(), WriteIntent{});
  st->round = 0;
  st->new_exec_read_base = 0;
  st->new_exec_write_base = 0;
  const uint32_t bytes = net::wire::TxnDescriptor(st->read_keys.size(), st->write_keys.size(),
                                                  st->req.external_bytes);
  nic_->HostToNic(bytes, [this, txn] { CoordStartOnNic(txn); });
}

void XenicNode::CoordStartOnNic(TxnId id) {
  TxnState* st = FindState(id);
  if (st == nullptr || crashed_) {
    return;
  }
  st->coord_start = nic_->engine()->now();
  st->phase_start = st->coord_start;
  nic_->NicCompute(NicOpCost(st->read_keys.size() + st->write_keys.size()), [this, id] {
    TxnState* st = FindState(id);
    if (st == nullptr || crashed_) {
      return;
    }
    NodeId remote = 0;
    // The multi-hop shipped path is OCC-specific (its conflict handling is
    // abort-only and its locks are owned by two nodes at once); under a 2PL
    // policy every distributed transaction takes the EXECUTE pipeline,
    // which locks the read set and consults the policy on conflict.
    if (!Cc2pl() && features_->smart_remote_ops && features_->nic_execution &&
        features_->occ_multihop && st->req.allow_ship && ShipEligible(*st, &remote)) {
      ShippedPath(st, remote);
      return;
    }
    ExecutePhase(st);
  });
}

bool XenicNode::ShipEligible(const TxnState& st, NodeId* remote_out) const {
  if (st.write_keys.empty()) {
    return false;  // read-only: the normal path already commits in one RTT
  }
  bool has_remote = false;
  NodeId remote = 0;
  auto check = [&](const KeyRef& k) {
    const NodeId p = map_->PrimaryOf(k.table, k.key);
    if (p == id()) {
      return true;
    }
    if (!has_remote) {
      has_remote = true;
      remote = p;
      return true;
    }
    return p == remote;
  };
  for (const auto& k : st.read_keys) {
    if (!check(k)) {
      return false;
    }
  }
  for (const auto& k : st.write_keys) {
    if (!check(k)) {
      return false;
    }
  }
  if (!has_remote) {
    return false;  // fully local: handled by the local path already
  }
  *remote_out = remote;
  return true;
}

std::vector<XenicNode::ShardGroup> XenicNode::GroupByShard(const TxnState& st,
                                                           bool new_only) const {
  std::vector<ShardGroup> groups;
  auto group_of = [&](NodeId p) -> ShardGroup& {
    for (auto& g : groups) {
      if (g.primary == p) {
        return g;
      }
    }
    groups.push_back(ShardGroup{p, {}, {}});
    return groups.back();
  };
  const uint32_t rbase = new_only ? st.new_exec_read_base : 0;
  const uint32_t wbase = new_only ? st.new_exec_write_base : 0;
  for (uint32_t i = rbase; i < st.read_keys.size(); ++i) {
    group_of(map_->PrimaryOf(st.read_keys[i].table, st.read_keys[i].key)).read_idx.push_back(i);
  }
  for (uint32_t i = wbase; i < st.write_keys.size(); ++i) {
    group_of(map_->PrimaryOf(st.write_keys[i].table, st.write_keys[i].key))
        .write_idx.push_back(i);
  }
  return groups;
}

void XenicNode::ExecutePhase(TxnState* st) {
  stats_.remote_rounds++;
  if (Cc2pl()) {
    // 2PL: the EXECUTE handlers lock read-set keys too, so commit/abort
    // must release them at every granted shard (cc_read_locks) and
    // CommitPhase's release_keys machinery engages (lock_all).
    st->cc_read_locks = true;
    st->lock_all = true;
  }
  const bool new_only = st->round > 0;
  std::vector<ShardGroup> groups = GroupByShard(*st, new_only);

  // Without the combined "smart" remote operations, each read is its own
  // request and write locks move to a separate post-execution round (the
  // one-sided-RDMA-style baseline in Figure 9). A 2PL policy overrides the
  // ablation: locking at execute time requires the combined operation.
  if (!features_->smart_remote_ops && !Cc2pl()) {
    std::vector<ShardGroup> split;
    for (const auto& g : groups) {
      for (uint32_t r : g.read_idx) {
        split.push_back(ShardGroup{g.primary, {r}, {}});
      }
    }
    groups = std::move(split);
  }

  st->pending = static_cast<uint32_t>(groups.size());
  if (st->pending == 0) {
    AfterExecuteRound(st);
    return;
  }
  const TxnId txn = st->id;
  for (const auto& g : groups) {
    std::vector<std::pair<uint32_t, KeyRef>> reads;
    std::vector<std::pair<uint32_t, KeyRef>> writes;
    for (uint32_t i : g.read_idx) {
      reads.emplace_back(i, st->read_keys[i]);
    }
    for (uint32_t i : g.write_idx) {
      writes.emplace_back(i, st->write_keys[i]);
    }
    const uint32_t req_bytes = net::wire::ExecuteReq(reads.size(), writes.size());
    XenicNode* server = (*peers_)[g.primary];
    const NodeId shard = g.primary;
    // Keys the server will lock (mirrors ServeExecute): tracked so a grant
    // that races an abort can be released as orphaned.
    std::vector<KeyRef> lock_keys;
    for (const auto& [i, k] : writes) {
      (void)i;
      lock_keys.push_back(k);
    }
    if (Cc2pl()) {
      for (const auto& [i, k] : reads) {
        (void)i;
        if (!ContainsKey(lock_keys, k)) {
          lock_keys.push_back(k);
        }
      }
    }
    transport_.Send(
        net::MsgType::kExecute, shard, req_bytes,
        [this, server, txn, shard, reads = std::move(reads), writes = std::move(writes),
         lock_keys = std::move(lock_keys)]() mutable {
          server->ServeExecute(
              txn, id(), std::move(reads), std::move(writes),
              [this, server, txn, shard, lock_keys = std::move(lock_keys)](ExecReply r) mutable {
                const uint32_t bytes = net::wire::ExecuteReply(r.reads.size(), ValueBytes(r.reads),
                                                               r.write_seqs.size());
                server->transport().Send(net::MsgType::kExecReply, id(), bytes,
                                         [this, txn, shard, r = std::move(r),
                                          lock_keys = std::move(lock_keys)]() mutable {
                                           OnExecuteResp(txn, shard, r.ok, std::move(r.reads),
                                                         std::move(r.write_seqs),
                                                         std::move(lock_keys), r.contention);
                                         },
                                         txn);
              });
        },
        txn);
  }
}

void XenicNode::OnExecuteResp(TxnId id, NodeId shard, bool ok,
                              std::vector<std::pair<uint32_t, ReadResult>> reads,
                              std::vector<std::pair<uint32_t, Seq>> write_seqs,
                              std::vector<KeyRef> locked_keys, uint8_t contention) {
  TxnState* st = FindState(id);
  if (st == nullptr || crashed_) {
    // Raced with an abort (or this coordinator failed). If the server
    // granted locks, nobody will ever release them through the normal
    // paths: do it here. (`locked_keys` is the write set under OCC -- the
    // same keys `write_seqs` covers -- plus the read set under 2PL.)
    if (st == nullptr && !crashed_ && ok && !locked_keys.empty()) {
      ReleaseOrphanedLocks(id, shard, std::move(locked_keys));
    }
    return;
  }
  if (ok) {
    for (auto& [i, r] : reads) {
      st->reads[i] = std::move(r);
    }
    for (auto& [i, s] : write_seqs) {
      st->write_seqs[i] = s;
    }
    const bool holds_locks = st->cc_read_locks ? !locked_keys.empty() : !write_seqs.empty();
    if (holds_locks &&
        std::find(st->locked_shards.begin(), st->locked_shards.end(), shard) ==
            st->locked_shards.end()) {
      st->locked_shards.push_back(shard);
    }
  } else {
    st->abort = true;
    st->contention_hint = std::max(st->contention_hint, contention);
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kLockExecute;
    }
  }
  assert(st->pending > 0);
  if (--st->pending > 0) {
    return;
  }
  if (st->abort) {
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  AfterExecuteRound(st);
}

bool XenicNode::CheckReadWriteGap(TxnState* st) {
  // Version-gap check for keys both read and written: with the combined
  // EXECUTE operation the lock and read happen atomically in one handler,
  // so the versions trivially match; with smart_remote_ops disabled
  // (separate read and lock requests, the Figure 9 baseline) a concurrent
  // commit can slip between them and must abort this transaction.
  for (size_t j = 0; j < st->write_keys.size(); ++j) {
    for (size_t i = 0; i < st->read_keys.size(); ++i) {
      if (st->read_keys[i] == st->write_keys[j] && st->reads[i].found &&
          st->reads[i].seq != st->write_seqs[j]) {
        if (st->abort_reason == AbortReason::kNone) {
          st->abort_reason = AbortReason::kGap;
        }
        AbortCleanup(st, TxnOutcome::kAborted);
        return false;
      }
    }
  }
  return true;
}

void XenicNode::AfterExecuteRound(TxnState* st) {
  if ((features_->smart_remote_ops || Cc2pl()) && !CheckReadWriteGap(st)) {
    return;
  }
  const TxnId txn = st->id;
  RunExecuteLogic(st, [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    if (st->app_abort) {
      AbortCleanup(st, TxnOutcome::kAppAborted);
      return;
    }
    if (st->new_exec_read_base < st->read_keys.size() ||
        st->new_exec_write_base < st->write_keys.size()) {
      // Execution added keys: another EXECUTE round (multi-shot).
      st->round++;
      ExecutePhase(st);
      return;
    }
    if (!features_->smart_remote_ops && !Cc2pl() && !st->write_keys.empty()) {
      LockRound(st);
      return;
    }
    ValidatePhase(st);
  });
}

void XenicNode::LockRound(TxnState* st) {
  stats_.remote_rounds++;
  const TxnId txn = st->id;
  st->pending = static_cast<uint32_t>(st->write_keys.size());
  if (st->pending == 0) {
    ValidatePhase(st);
    return;
  }
  for (uint32_t i = 0; i < st->write_keys.size(); ++i) {
    const NodeId shard = map_->PrimaryOf(st->write_keys[i].table, st->write_keys[i].key);
    std::vector<std::pair<uint32_t, KeyRef>> writes = {{i, st->write_keys[i]}};
    std::vector<KeyRef> lock_keys = {st->write_keys[i]};
    const uint32_t req_bytes = net::wire::ExecuteReq(0, 1);
    XenicNode* server = (*peers_)[shard];
    transport_.Send(
        net::MsgType::kExecute, shard, req_bytes,
        [this, server, txn, shard, writes = std::move(writes),
         lock_keys = std::move(lock_keys)]() mutable {
          server->ServeExecute(txn, id(), {}, std::move(writes),
                               [this, server, txn, shard,
                                lock_keys = std::move(lock_keys)](ExecReply r) mutable {
                                 const uint32_t bytes = net::wire::SeqList(r.write_seqs.size());
                                 server->transport().Send(
                                     net::MsgType::kExecReply, id(), bytes,
                                     [this, txn, shard, r = std::move(r),
                                      lock_keys = std::move(lock_keys)]() mutable {
                                       OnLockResp(txn, shard, r.ok, std::move(r.write_seqs),
                                                  std::move(lock_keys), r.contention);
                                     },
                                     txn);
                               });
        },
        txn);
  }
}

void XenicNode::OnLockResp(TxnId id, NodeId shard, bool ok,
                           std::vector<std::pair<uint32_t, Seq>> write_seqs,
                           std::vector<KeyRef> locked_keys, uint8_t contention) {
  TxnState* st = FindState(id);
  if (st == nullptr || crashed_) {
    if (st == nullptr && !crashed_ && ok) {
      ReleaseOrphanedLocks(id, shard, std::move(locked_keys));
    }
    return;
  }
  if (ok) {
    for (auto& [i, s] : write_seqs) {
      st->write_seqs[i] = s;
    }
    if (std::find(st->locked_shards.begin(), st->locked_shards.end(), shard) ==
        st->locked_shards.end()) {
      st->locked_shards.push_back(shard);
    }
  } else {
    st->abort = true;
    st->contention_hint = std::max(st->contention_hint, contention);
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kLockExecute;
    }
  }
  assert(st->pending > 0);
  if (--st->pending > 0) {
    return;
  }
  if (st->abort) {
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  if (!CheckReadWriteGap(st)) {
    return;
  }
  ValidatePhase(st);
}

void XenicNode::RunExecuteLogic(TxnState* st, sim::Engine::Callback next) {
  const TxnId txn = st->id;
  auto run_logic = [this, txn] {
    TxnState* st = FindState(txn);
    if (st == nullptr || crashed_) {
      return;
    }
    std::vector<KeyRef> add_reads;
    std::vector<KeyRef> add_writes;
    bool abort_flag = false;
    ExecRound er;
    er.round = st->round;
    er.read_keys = &st->read_keys;
    er.reads = &st->reads;
    er.write_keys = &st->write_keys;
    er.writes = &st->writes;
    er.add_reads = &add_reads;
    er.add_writes = &add_writes;
    er.abort = &abort_flag;
    if (st->req.execute) {
      st->req.execute(er);
    }
    st->app_abort = abort_flag;
    st->new_exec_read_base = static_cast<uint32_t>(st->read_keys.size());
    st->new_exec_write_base = static_cast<uint32_t>(st->write_keys.size());
    for (const auto& k : add_reads) {
      st->read_keys.push_back(k);
      st->reads.emplace_back();
    }
    for (const auto& k : add_writes) {
      st->write_keys.push_back(k);
      st->write_seqs.push_back(0);
      st->writes.emplace_back();
    }
  };

  if (features_->nic_execution && st->req.allow_ship) {
    nic_->NicCompute(NicExecCost(st->req.exec_cost),
                     [run_logic = std::move(run_logic), next = std::move(next)]() mutable {
                       run_logic();
                       next();
                     });
    return;
  }

  // Host execution: ship read values up, compute, ship write values down
  // (two extra PCIe crossings on the critical path).
  const uint32_t up_bytes = net::wire::ReadSet(st->reads.size(), ValueBytes(st->reads));
  const sim::Tick exec_cost = st->req.exec_cost;
  nic_->NicToHost(up_bytes, [this, txn, exec_cost, run_logic = std::move(run_logic),
                             next = std::move(next)]() mutable {
    nic_->HostCompute(exec_cost, [this, txn, run_logic = std::move(run_logic),
                                  next = std::move(next)]() mutable {
      run_logic();
      TxnState* st = FindState(txn);
      if (st == nullptr || crashed_) {
        return;
      }
      const uint32_t down_bytes =
          net::wire::WriteImages(st->writes.size(), ValueBytes(st->writes));
      nic_->HostToNic(down_bytes, std::move(next));
    });
  });
}

void XenicNode::ValidatePhase(TxnState* st) {
  if (st->coord_start != 0) {
    const sim::Tick now = nic_->engine()->now();
    phases_.execute.Record(now - st->phase_start);
    TracePhase("EXECUTE", st->phase_start, now, st->id);
    st->phase_start = now;
  }
  if (!cc_policy().validates()) {
    // 2PL: every read happened under its lock inside EXECUTE, so the read
    // versions are stable by construction -- no validation round. Read-only
    // transactions commit here; CommitPhase releases the read locks at
    // every granted shard (cc_read_locks) and erases the state.
    //
    // "By construction" assumes the grantors are still in the cluster. If
    // the membership changed since submit, a lock we took at the evicted
    // node evaporated with it (recovery only rebuilds locks for swept
    // log records, and we have not logged yet), so a post-recovery txn may
    // be racing us on those keys right now. OCC's VALIDATE would catch the
    // torn read; 2PL has no second look, so fence on the map version.
    if (st->map_version != map_->version) {
      if (st->abort_reason == AbortReason::kNone) {
        st->abort_reason = AbortReason::kEpochFence;
      }
      AbortCleanup(st, TxnOutcome::kAborted);
      return;
    }
    if (st->write_keys.empty() && st->req.local_log_writes.empty()) {
      ReportAndFinish(st, TxnOutcome::kCommitted);
      CommitPhase(st);
      return;
    }
    LogPhase(st);
    return;
  }
  // Keys to validate: read-set keys that are not written (written keys are
  // locked since EXECUTE).
  struct ShardChecks {
    NodeId primary;
    std::vector<std::pair<KeyRef, Seq>> checks;
  };
  std::vector<ShardChecks> shards;
  std::vector<NodeId> involved;
  auto note_shard = [&](NodeId p) {
    if (std::find(involved.begin(), involved.end(), p) == involved.end()) {
      involved.push_back(p);
    }
  };
  for (const auto& k : st->read_keys) {
    note_shard(map_->PrimaryOf(k.table, k.key));
  }
  for (const auto& k : st->write_keys) {
    note_shard(map_->PrimaryOf(k.table, k.key));
  }

  for (size_t i = 0; i < st->read_keys.size(); ++i) {
    const auto& k = st->read_keys[i];
    if (ContainsKey(st->write_keys, k)) {
      continue;
    }
    const NodeId p = map_->PrimaryOf(k.table, k.key);
    auto it = std::find_if(shards.begin(), shards.end(),
                           [&](const ShardChecks& s) { return s.primary == p; });
    if (it == shards.end()) {
      shards.push_back(ShardChecks{p, {}});
      it = shards.end() - 1;
    }
    it->checks.emplace_back(k, st->reads[i].seq);
  }

  // Single-shard, single-round transactions read atomically inside one
  // EXECUTE handler; with the combined operations enabled, read-only ones
  // need no validation round.
  const bool atomic_snapshot = features_->smart_remote_ops && st->round == 0 &&
                               involved.size() == 1 && st->write_keys.empty();
  if (shards.empty() || atomic_snapshot) {
    if (st->write_keys.empty() && st->req.local_log_writes.empty()) {
      ReportAndFinish(st, TxnOutcome::kCommitted);
      return;
    }
    LogPhase(st);
    return;
  }

  if (!features_->smart_remote_ops) {
    // One VALIDATE request per key.
    std::vector<ShardChecks> split;
    for (auto& s : shards) {
      for (auto& c : s.checks) {
        split.push_back(ShardChecks{s.primary, {c}});
      }
    }
    shards = std::move(split);
  }

  stats_.remote_rounds++;
  st->pending = static_cast<uint32_t>(shards.size());
  const TxnId txn = st->id;
  for (auto& s : shards) {
    const uint32_t bytes = net::wire::ValidateReq(s.checks.size());
    XenicNode* server = (*peers_)[s.primary];
    transport_.Send(
        net::MsgType::kValidate, s.primary, bytes,
        [this, server, txn, checks = std::move(s.checks)]() mutable {
          server->ServeValidate(std::move(checks), [this, server, txn](bool ok, uint8_t c) {
            server->transport().SendAck(net::MsgType::kValidate, id(),
                                        [this, txn, ok, c] { OnValidateResp(txn, ok, c); }, txn);
          });
        },
        txn);
  }
}

void XenicNode::OnValidateResp(TxnId id, bool ok, uint8_t contention) {
  TxnState* st = FindState(id);
  if (st == nullptr || crashed_) {
    return;
  }
  if (!ok) {
    st->abort = true;
    st->contention_hint = std::max(st->contention_hint, contention);
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kValidate;
    }
  }
  assert(st->pending > 0);
  if (--st->pending > 0) {
    return;
  }
  if (st->abort) {
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  if (st->write_keys.empty() && st->req.local_log_writes.empty()) {
    ReportAndFinish(st, TxnOutcome::kCommitted);
    return;
  }
  LogPhase(st);
}

std::vector<store::LogWrite> XenicNode::ShardWrites(const TxnState& st, NodeId shard) const {
  std::vector<store::LogWrite> out;
  for (size_t i = 0; i < st.write_keys.size(); ++i) {
    const auto& k = st.write_keys[i];
    if (map_->PrimaryOf(k.table, k.key) != shard) {
      continue;
    }
    store::LogWrite w;
    w.table = k.table;
    w.key = k.key;
    w.seq = st.write_seqs[i] + 1;
    w.value = st.writes[i].value;
    w.is_delete = st.writes[i].is_delete;
    out.push_back(std::move(w));
  }
  if (shard == id()) {
    for (const auto& w : st.req.local_log_writes) {
      out.push_back(w);
    }
  }
  return out;
}

void XenicNode::LogPhase(TxnState* st) {
  if (st->coord_start != 0) {
    const sim::Tick now = nic_->engine()->now();
    phases_.validate.Record(now - st->phase_start);
    TracePhase("VALIDATE", st->phase_start, now, st->id);
    st->phase_start = now;
  }
  // One LOG record per written shard, sent to each of that shard's backups.
  std::vector<NodeId> shards;
  for (const auto& k : st->write_keys) {
    const NodeId p = map_->PrimaryOf(k.table, k.key);
    if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
      shards.push_back(p);
    }
  }
  if (!st->req.local_log_writes.empty() &&
      std::find(shards.begin(), shards.end(), id()) == shards.end()) {
    shards.push_back(id());
  }

  uint32_t pending = 0;
  const TxnId txn = st->id;
  std::vector<std::pair<NodeId, store::LogRecord>> to_send;
  for (NodeId shard : shards) {
    store::LogRecord rec;
    rec.type = store::LogRecordType::kLog;
    rec.txn = txn;
    rec.total_shards = static_cast<uint32_t>(shards.size());
    rec.shard = shard;
    rec.writes = ShardWrites(*st, shard);
    for (NodeId backup : repl_->BackupsOf(shard)) {
      to_send.emplace_back(backup, rec);
      pending++;
    }
  }
  if (pending == 0) {
    // Replication factor 1: commit point reached immediately.
    ReportAndFinish(st, TxnOutcome::kCommitted);
    CommitPhase(st);
    return;
  }
  st->pending = pending;
  st->logs_sent = true;
  st->log_waiting.clear();
  st->log_shards.clear();
  st->log_needed.clear();
  for (const auto& [backup, rec] : to_send) {
    st->log_waiting.push_back(backup);
    st->log_shards.push_back(rec.shard);
  }
  if (repl_->QuorumArmed()) {
    for (NodeId shard : shards) {
      st->log_needed[shard] = repl_->AcksRequired(shard);
    }
  } else {
    st->log_shards.clear();  // wait-for-all: per-shard attribution unused
  }
  stats_.remote_rounds++;
  for (auto& [backup, rec] : to_send) {
    const uint32_t bytes = net::wire::LogAppend(rec.ByteSize());
    XenicNode* server = (*peers_)[backup];
    transport_.Send(
        net::MsgType::kLog, backup, bytes,
        [this, server, txn, rec = std::move(rec)]() mutable {
          server->ServeLog(std::move(rec), [this, server, txn](bool ok) {
            const NodeId from = server->id();
            server->transport().SendAck(net::MsgType::kLog, id(),
                                        [this, txn, ok, from] { OnLogAck(txn, ok, from); }, txn);
          });
        },
        txn);
  }
  if (!st->log_needed.empty()) {
    bool met = true;
    for (const auto& [shard, needed] : st->log_needed) {
      if (needed > 0) {
        met = false;
        break;
      }
    }
    if (met) {
      // Quorum of one (the primary's own copy suffices): the commit point
      // is reached the moment the fan-out is on the wire. Clearing the
      // waiting lists turns every eventual ack into a late-arrival no-op.
      st->log_waiting.clear();
      st->log_shards.clear();
      st->log_needed.clear();
      ReportAndFinish(st, TxnOutcome::kCommitted);
      CommitPhase(st);
    }
  }
}

void XenicNode::OnLogAck(TxnId id, bool ok, NodeId from) {
  TxnState* st = FindState(id);
  if (st == nullptr || crashed_) {
    return;
  }
  // Consume one expected ack from `from`. If none is listed, an epoch sweep
  // already synthesized it (the sender was declared failed) or the quorum
  // commit point already fired: ignore the late arrival instead of
  // double-counting.
  auto it = std::find(st->log_waiting.begin(), st->log_waiting.end(), from);
  if (it == st->log_waiting.end()) {
    return;
  }
  const size_t idx = static_cast<size_t>(it - st->log_waiting.begin());
  st->log_waiting.erase(it);
  if (!st->log_shards.empty()) {
    // Quorum mode: retire this ack against its shard's remaining count.
    const NodeId shard = st->log_shards[idx];
    st->log_shards.erase(st->log_shards.begin() + static_cast<ptrdiff_t>(idx));
    auto ni = st->log_needed.find(shard);
    if (ni != st->log_needed.end() && ni->second > 0) {
      ni->second--;
    }
  }
  if (!ok) {
    st->abort = true;
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kOther;
    }
  }
  assert(st->pending > 0);
  --st->pending;
  if (!st->log_needed.empty()) {
    // Quorum mode. An abort still waits for the full fan-out to drain (the
    // cleanup must not race stragglers); a commit fires as soon as every
    // written shard has its required ack count.
    if (st->abort) {
      if (st->pending > 0) {
        return;
      }
      AbortCleanup(st, TxnOutcome::kAborted);
      return;
    }
    for (const auto& [shard, needed] : st->log_needed) {
      if (needed > 0) {
        return;  // some shard below quorum: keep waiting
      }
    }
    // Commit point: every written shard reached its quorum. Stragglers hit
    // the late-arrival ignore path above; CommitPhase may safely reuse
    // st->pending for its own ack counting.
    st->log_waiting.clear();
    st->log_shards.clear();
    st->log_needed.clear();
    ReportAndFinish(st, TxnOutcome::kCommitted);
    CommitPhase(st);
    return;
  }
  if (st->pending > 0) {
    return;
  }
  if (st->abort) {
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  // Commit point: all backups hold the record. Report to the application,
  // then apply at the primaries in the background.
  ReportAndFinish(st, TxnOutcome::kCommitted);
  CommitPhase(st);
}

void XenicNode::CommitPhase(TxnState* st) {
  if (features_->nic_log_apply && st->logs_sent) {
    // Stability notice for the NIC appliers: each backup parks a LOG
    // record until it learns the transaction reached its commit point
    // (otherwise a quorum straggler could apply a record whose transaction
    // later aborts). Fire-and-forget -- commit progress never waits on it.
    std::vector<NodeId> logged;
    for (const auto& k : st->write_keys) {
      const NodeId p = map_->PrimaryOf(k.table, k.key);
      if (std::find(logged.begin(), logged.end(), p) == logged.end()) {
        logged.push_back(p);
      }
    }
    if (!st->req.local_log_writes.empty() &&
        std::find(logged.begin(), logged.end(), id()) == logged.end()) {
      logged.push_back(id());
    }
    const TxnId stable_txn = st->id;
    for (NodeId shard : logged) {
      for (NodeId backup : repl_->BackupsOf(shard)) {
        XenicNode* server = (*peers_)[backup];
        transport_.Send(
            net::MsgType::kLogCommit, backup, net::wire::LogCommit(),
            [server, stable_txn] { server->ServeLogCommit(stable_txn); }, stable_txn);
      }
    }
  }
  std::vector<NodeId> shards;
  for (const auto& k : st->write_keys) {
    const NodeId p = map_->PrimaryOf(k.table, k.key);
    if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
      shards.push_back(p);
    }
  }
  if (!st->req.local_log_writes.empty() &&
      std::find(shards.begin(), shards.end(), id()) == shards.end()) {
    shards.push_back(id());
  }
  if (st->cc_read_locks || st->lock_all) {
    // Read locks can be held at shards with no writes at all: always under
    // 2PL (cc_read_locks), and on the OCC shipped path whenever the local
    // or executor shard's keys are read-only (e.g. a YCSB mix where the
    // coordinator's key isn't updated). Those shards get a release-only
    // COMMIT; shards already present from the write set are unaffected.
    for (const auto& k : st->read_keys) {
      const NodeId p = map_->PrimaryOf(k.table, k.key);
      if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
        shards.push_back(p);
      }
    }
  }
  st->pending = static_cast<uint32_t>(shards.size());
  const TxnId txn = st->id;
  if (st->pending == 0) {
    EraseState(txn);
    return;
  }
  for (NodeId shard : shards) {
    std::vector<store::LogWrite> writes = ShardWrites(*st, shard);
    // The primary's COMMIT record covers datastore writes only:
    // workload-managed writes are applied by host_finish on the
    // coordinator and by the worker hook at backups (via LOG records).
    std::erase_if(writes,
                  [this](const store::LogWrite& w) { return w.table >= ds_->num_tables(); });
    // Shipped transactions locked their read-set keys too; release them
    // with the commit message.
    std::vector<KeyRef> release_keys;
    if (st->lock_all) {
      for (const auto& k : st->read_keys) {
        if (map_->PrimaryOf(k.table, k.key) == shard && !ContainsKey(st->write_keys, k)) {
          release_keys.push_back(k);
        }
      }
    }
    if (writes.empty() && release_keys.empty()) {
      if (--st->pending == 0) {
        EraseState(txn);
        return;
      }
      continue;
    }
    const uint32_t bytes =
        net::wire::CommitMsg(writes.size(), ValueBytes(writes), release_keys.size());
    XenicNode* server = (*peers_)[shard];
    transport_.Send(
        net::MsgType::kCommit, shard, bytes,
        [this, server, txn, writes = std::move(writes),
         release_keys = std::move(release_keys)]() mutable {
          server->ServeCommit(
              txn, std::move(writes), std::move(release_keys), [this, server, txn] {
                server->transport().SendAck(
                    net::MsgType::kCommit, id(),
                    [this, txn] {
                      TxnState* st = FindState(txn);
                      if (st == nullptr) {
                        return;
                      }
                      assert(st->pending > 0);
                      if (--st->pending == 0) {
                        EraseState(txn);
                      }
                    },
                    txn);
              });
        },
        txn);
  }
}

void XenicNode::ReportAndFinish(TxnState* st, TxnOutcome outcome) {
  if (crashed_) {
    // The application died with the node: drop the callback (marking the
    // outcome as reported so later events cannot double-finish) and skip
    // stats -- a crashed node publishes nothing.
    st->done = nullptr;
    return;
  }
  if (st->coord_start != 0 && outcome == TxnOutcome::kCommitted) {
    const sim::Tick now = nic_->engine()->now();
    phases_.log.Record(now - st->phase_start);
    phases_.total.Record(now - st->coord_start);
    TracePhase("LOG", st->phase_start, now, st->id);
    TracePhase("txn", st->coord_start, now, st->id);
  }
  if (outcome == TxnOutcome::kCommitted) {
    stats_.committed++;
    reported_committed_.insert(st->id);
  } else if (outcome == TxnOutcome::kAppAborted) {
    stats_.app_aborted++;
  } else {
    stats_.aborted++;
    switch (st->abort_reason) {
      case AbortReason::kLockExecute:
        stats_.abort_lock_execute++;
        break;
      case AbortReason::kLockLocal:
        stats_.abort_lock_local++;
        break;
      case AbortReason::kLockShip:
        stats_.abort_lock_ship++;
        break;
      case AbortReason::kValidate:
        stats_.abort_validate++;
        break;
      case AbortReason::kGap:
        stats_.abort_gap++;
        break;
      case AbortReason::kWounded:
        stats_.abort_wounded++;
        break;
      case AbortReason::kEpochFence:
        stats_.abort_epoch_fence++;
        break;
      default:
        stats_.abort_other++;
        break;
    }
  }
  auto done = std::move(st->done);
  st->done = nullptr;
  const TxnResult result(outcome, st->contention_hint);
  const sim::Tick finish_cost = st->req.host_finish_cost;
  auto host_finish = st->req.host_finish;
  nic_->NicToHost(net::wire::Descriptor(), [this, finish_cost, host_finish = std::move(host_finish),
                                     done = std::move(done), result]() mutable {
    // The commit point was the log acks; the application learns the
    // outcome now. Post-commit local work (B+tree maintenance etc.) is
    // deferred host work off the latency path, serialized behind this
    // completion on the host thread pool.
    nic_->HostCompute(kHostFinishBase, [done = std::move(done), result]() mutable {
      done(result);
    });
    if (host_finish && result.outcome == TxnOutcome::kCommitted) {
      nic_->HostCompute(finish_cost,
                        [host_finish = std::move(host_finish)]() mutable { host_finish(); });
    }
  });
}

void XenicNode::ReleaseOrphanedLocks(TxnId txn, NodeId shard, std::vector<KeyRef> keys) {
  if (keys.empty()) {
    return;
  }
  XenicNode* server = (*peers_)[shard];
  const uint32_t bytes = net::wire::KeyList(keys.size());
  transport_.Send(
      net::MsgType::kRelease, shard, bytes,
      [server, txn, keys = std::move(keys)]() mutable {
        server->ServeRelease(txn, std::move(keys));
      },
      txn);
}

void XenicNode::AbortCleanup(TxnState* st, TxnOutcome outcome) {
  const TxnId txn = st->id;
  if (st->hot_parked) {
    st->hot_parked = false;
    RemoveHotWaiter(st);
  }
  // Release locks at every shard that acknowledged EXECUTE (or the local
  // lock set for local/shipped paths).
  for (NodeId shard : st->locked_shards) {
    std::vector<KeyRef> keys;
    for (const auto& k : st->write_keys) {
      if (map_->PrimaryOf(k.table, k.key) == shard) {
        keys.push_back(k);
      }
    }
    if ((st->local_locked && shard == id()) || st->cc_read_locks) {
      for (const auto& k : st->read_keys) {
        if (map_->PrimaryOf(k.table, k.key) == shard && !ContainsKey(keys, k)) {
          keys.push_back(k);
        }
      }
    }
    if (keys.empty()) {
      continue;
    }
    XenicNode* server = (*peers_)[shard];
    const uint32_t bytes = net::wire::KeyList(keys.size());
    transport_.Send(
        net::MsgType::kRelease, shard, bytes,
        [server, txn, keys = std::move(keys)]() mutable {
          server->ServeRelease(txn, std::move(keys));
        },
        txn);
  }
  ReportAndFinish(st, outcome);
  EraseState(txn);
}

void XenicNode::EraseState(TxnId id) { txns_.erase(id); }

XenicNode::TxnState* XenicNode::FindState(TxnId id) {
  auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------------
// Multi-hop shipped execution (paper 4.2.3, Figure 7b).
// ---------------------------------------------------------------------------

void XenicNode::ShippedPath(TxnState* st, NodeId remote) {
  stats_.shipped_multihop++;
  const TxnId txn = st->id;

  // Lock ALL local keys (reads included: the shipped path has no separate
  // validation phase) and read local read-set values.
  std::vector<KeyRef> local_keys;
  std::vector<uint32_t> local_reads;
  for (uint32_t i = 0; i < st->read_keys.size(); ++i) {
    if (map_->PrimaryOf(st->read_keys[i].table, st->read_keys[i].key) == id()) {
      local_keys.push_back(st->read_keys[i]);
      local_reads.push_back(i);
    }
  }
  for (const auto& k : st->write_keys) {
    if (map_->PrimaryOf(k.table, k.key) == id() && !ContainsKey(local_keys, k)) {
      local_keys.push_back(k);
    }
  }

  st->lock_all = true;
  uint8_t contention = 0;
  if (!LockAll(txn, local_keys, &contention)) {
    st->contention_hint = std::max(st->contention_hint, contention);
    st->abort_reason = AbortReason::kLockShip;
    AbortCleanup(st, TxnOutcome::kAborted);
    return;
  }
  if (!local_keys.empty()) {
    st->local_locked = true;
    st->locked_shards.push_back(id());
  }

  // Read local read-set values and the current seqs of local write keys.
  store::NicIndex::LookupStats agg;
  ReadLocalSets(st, local_reads, &agg);

  ChargeDmaReads(agg, [this, txn, remote] {
    TxnState* st = FindState(txn);
    if (st == nullptr) {
      return;
    }
    const uint32_t bytes = net::wire::ShipExec(
        st->read_keys.size(), st->write_keys.size(), st->req.external_bytes,
        ValueBytes(st->reads), st->req.local_log_writes.size(),
        ValueBytes(st->req.local_log_writes));
    // Expected completion signals: one EXEC result plus one ack per backup
    // of every written shard (counted at the remote executor, which knows
    // the final shard set -- precomputed here since shipping fixes the key
    // set).
    std::vector<NodeId> shards;
    for (const auto& k : st->write_keys) {
      const NodeId p = map_->PrimaryOf(k.table, k.key);
      if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
        shards.push_back(p);
      }
    }
    if (!st->req.local_log_writes.empty() &&
        std::find(shards.begin(), shards.end(), id()) == shards.end()) {
      shards.push_back(id());
    }
    st->pending = 1;  // EXEC result
    st->log_waiting.assign(1, kShipExecSignal);
    st->log_shards.clear();
    st->log_needed.clear();
    for (NodeId s : shards) {
      for (NodeId b : repl_->BackupsOf(s)) {
        st->pending++;
        st->log_waiting.push_back(b);
      }
    }
    if (repl_->QuorumArmed()) {
      // Lockstep shard attribution: the EXEC result is modeled as a
      // pseudo-shard requiring exactly one signal, so the quorum test in
      // OnLogAck cannot commit before the executor reports back.
      st->log_shards.assign(1, kShipExecSignal);
      st->log_needed[kShipExecSignal] = 1;
      for (NodeId s : shards) {
        for (NodeId b : repl_->BackupsOf(s)) {
          (void)b;
          st->log_shards.push_back(s);
        }
        st->log_needed[s] = repl_->AcksRequired(s);
      }
    }

    XenicNode* server = (*peers_)[remote];
    transport_.Send(
        net::MsgType::kShipExec, remote, bytes,
        [this, server, txn, st] { server->ServeShipExec(txn, id(), st); }, txn);
  });
}

void XenicNode::ServeShipExec(TxnId txn, NodeId coord, TxnState* st) {
  XenicNode* coordinator = (*peers_)[coord];
  // `st` is a raw pointer into the coordinator's state table. Before any
  // dereference, confirm this node is alive and the coordinator still owns
  // the transaction: a delayed delivery can arrive after an epoch change
  // aborted (and freed) the state.
  if (crashed_ || coordinator->FindState(txn) != st) {
    return;
  }
  // Lock all keys homed here (reads and writes), read read-set values,
  // execute, then fan out LOG records to every backup with acks converging
  // at the coordinator NIC.
  std::vector<KeyRef> my_keys;
  std::vector<uint32_t> my_reads;
  for (uint32_t i = 0; i < st->read_keys.size(); ++i) {
    if (map_->PrimaryOf(st->read_keys[i].table, st->read_keys[i].key) == id()) {
      my_keys.push_back(st->read_keys[i]);
      my_reads.push_back(i);
    }
  }
  for (const auto& k : st->write_keys) {
    if (map_->PrimaryOf(k.table, k.key) == id() && !ContainsKey(my_keys, k)) {
      my_keys.push_back(k);
    }
  }

  auto my_keys_ptr = std::make_shared<std::vector<KeyRef>>(std::move(my_keys));
  auto my_reads_ptr = std::make_shared<std::vector<uint32_t>>(std::move(my_reads));
  // NicOpCost(0), not NicOpCost(my_keys_ptr->size()): the historical code
  // passed `NicOpCost(my_keys.size())` alongside a lambda whose init-capture
  // moved `my_keys` in the same call, and argument evaluation order ran the
  // move first -- so shipped executions have always been charged the base op
  // cost only. Golden transcripts (including the pinned seed-3 schedule)
  // encode that timing; keep it explicit rather than re-derive it by
  // accident.
  nic_->NicCompute(NicOpCost(0), [this, txn, coord, coordinator, st,
                                  my_keys_ptr, my_reads_ptr]() {
    // Lock attempt, re-entered after each remote hot-key park (recursion
    // on a copy of itself, like the EXECUTE handler's read loop).
    auto attempt = [this, txn, coord, coordinator, st, my_keys_ptr, my_reads_ptr](
                       auto&& self, uint32_t parks) -> void {
      if (crashed_ || coordinator->FindState(txn) != st) {
        return;
      }
      // After a park, a crashed coordinator still has the state in its
      // table (crash keeps txns_ for exactly these in-flight pointers), so
      // the FindState guard alone can't see the crash: check it directly
      // rather than lock and execute for a node that will never commit.
      if (parks > 0 && coordinator->crashed()) {
        return;
      }
      uint8_t contention = 0;
      KeyRef conflict{};
      if (!LockAll(txn, *my_keys_ptr, &contention, &conflict)) {
        const sim::Tick now = nic_->engine()->now();
        if (features_->hot_key_fastpath && parks < kRemoteMaxParks &&
            sketch_.IsHot(conflict, now) &&
            ParkRemote(conflict, txn, [self, parks] { self(self, parks + 1); })) {
          // Hot key: the shipped execution is parked behind the holder
          // (zero locks held) instead of failing back to the coordinator.
          return;
        }
        transport_.SendAck(
            net::MsgType::kShipExec, coord,
            [coordinator, txn, contention] { coordinator->OnShipFailure(txn, contention); },
            txn);
        return;
      }

      store::NicIndex::LookupStats agg;
      ReadLocalSets(st, *my_reads_ptr, &agg);

      ChargeDmaReads(agg, [this, txn, coord, coordinator, st, my_keys_ptr]() mutable {
        if (crashed_ || coordinator->FindState(txn) != st) {
          UnlockAll(txn, *my_keys_ptr);
          return;
        }
        // Execute on this NIC.
        nic_->NicCompute(NicExecCost(st->req.exec_cost), [this, txn, coord, coordinator,
                                                          st, my_keys_ptr]() mutable {
          if (crashed_ || coordinator->FindState(txn) != st) {
            UnlockAll(txn, *my_keys_ptr);
            return;
          }
        std::vector<KeyRef> add_reads;
        std::vector<KeyRef> add_writes;
        bool abort_flag = false;
        ExecRound er;
        er.round = 0;
        er.read_keys = &st->read_keys;
        er.reads = &st->reads;
        er.write_keys = &st->write_keys;
        er.writes = &st->writes;
        er.add_reads = &add_reads;
        er.add_writes = &add_writes;
        er.abort = &abort_flag;
        if (st->req.execute) {
          st->req.execute(er);
        }
        assert(add_reads.empty() && add_writes.empty() &&
               "shipped transactions must be single-round (allow_ship misuse)");
        if (abort_flag) {
          UnlockAll(txn, *my_keys_ptr);
          transport_.SendAck(
              net::MsgType::kShipExec, coord,
              [coordinator, txn] {
                TxnState* cst = coordinator->FindState(txn);
                if (cst != nullptr) {
                  cst->app_abort = true;
                }
                coordinator->OnShipFailure(txn);
              },
              txn);
          return;
        }

        // LOG fan-out to all backups of all written shards; acks go
        // straight to the coordinator NIC (the multi-hop pattern).
        std::vector<NodeId> shards;
        for (const auto& k : st->write_keys) {
          const NodeId p = map_->PrimaryOf(k.table, k.key);
          if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
            shards.push_back(p);
          }
        }
        if (!st->req.local_log_writes.empty() &&
            std::find(shards.begin(), shards.end(), coord) == shards.end()) {
          shards.push_back(coord);
        }
        st->logs_sent = true;
        for (NodeId shard : shards) {
          store::LogRecord rec;
          rec.type = store::LogRecordType::kLog;
          rec.txn = txn;
          rec.total_shards = static_cast<uint32_t>(shards.size());
          rec.shard = shard;
          rec.writes = coordinator->ShardWrites(*st, shard);
          for (NodeId backup : repl_->BackupsOf(shard)) {
            const uint32_t bytes = net::wire::LogAppend(rec.ByteSize());
            XenicNode* bnode = (*peers_)[backup];
            transport_.Send(
                net::MsgType::kLog, backup, bytes,
                [coordinator, bnode, txn, rec]() mutable {
                  bnode->ServeLog(std::move(rec), [coordinator, bnode, txn](bool ok) {
                    const NodeId from = bnode->id();
                    bnode->transport().SendAck(net::MsgType::kLog, coordinator->id(),
                                               [coordinator, txn, ok, from] {
                                                 coordinator->OnLogAck(txn, ok, from);
                                               },
                                               txn);
                  });
                },
                txn);
          }
        }

        // EXEC result back to the coordinator (write values for its local
        // commit); counts as one of the pending completion signals.
        const uint32_t result_bytes =
            net::wire::ExecResult(st->writes.size(), ValueBytes(st->writes));
        transport_.Send(
            net::MsgType::kExecReply, coord, result_bytes,
            [coordinator, txn] { coordinator->OnLogAck(txn, true, kShipExecSignal); }, txn);
        });
      });
    };
    attempt(attempt, 0);
  });
}

void XenicNode::OnShipFailure(TxnId txn, uint8_t contention) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_) {
    return;
  }
  st->contention_hint = std::max(st->contention_hint, contention);
  const TxnOutcome outcome = st->app_abort ? TxnOutcome::kAppAborted : TxnOutcome::kAborted;
  if (outcome == TxnOutcome::kAborted && st->abort_reason == AbortReason::kNone) {
    st->abort_reason = AbortReason::kLockShip;
  }
  AbortCleanup(st, outcome);
}

// ---------------------------------------------------------------------------
// Server-side handlers.
// ---------------------------------------------------------------------------

bool XenicNode::LockAll(TxnId txn, const std::vector<KeyRef>& keys, uint8_t* contention,
                        KeyRef* conflict) {
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!ds_->index(keys[i].table).AcquireLock(keys[i].key, txn).ok()) {
      const sim::Tick now = nic_->engine()->now();
      sketch_.RecordConflict(keys[i], now);
      if (contention != nullptr) {
        *contention = std::max(*contention, sketch_.Level(keys[i], now));
      }
      if (conflict != nullptr) {
        *conflict = keys[i];
      }
      for (size_t j = 0; j < i; ++j) {
        ReleaseOne(txn, keys[j]);
      }
      return false;
    }
  }
  return true;
}

void XenicNode::UnlockAll(TxnId txn, const std::vector<KeyRef>& keys) {
  for (const auto& k : keys) {
    ReleaseOne(txn, k);
  }
}

void XenicNode::ReleaseOne(TxnId txn, const KeyRef& key) {
  ds_->index(key.table).ReleaseLock(key.key, txn);
  WakeHotWaiters(key);
  if (!cc_waiters_.empty()) {
    WakeCcWaiters(key);  // empty under OCC: the 2PL queues are never used
  }
}

void XenicNode::WakeHotWaiters(const KeyRef& key) {
  if (hot_waiters_.empty() && remote_waiters_.empty()) {
    return;
  }
  auto it = hot_waiters_.find(key);
  if (it == hot_waiters_.end() || it->second.empty()) {
    // No local hot-path waiter: hand the release to a parked remote lock
    // request instead (one release, one wake, whoever is queued).
    WakeOneRemote(key);
    return;
  }
  const TxnId next = it->second.front();
  it->second.pop_front();
  if (it->second.empty()) {
    hot_waiters_.erase(it);
  }
  // Re-attempt the acquire in a fresh event: the release may happen inside
  // another transaction's lock rollback, mid-iteration over its key list.
  nic_->engine()->ScheduleAfter(0, [this, next] {
    TxnState* st = FindState(next);
    if (st == nullptr || crashed_ || !st->hot_parked) {
      return;
    }
    st->hot_parked = false;
    nic_->engine()->set_trace_ctx(next);
    HotKeyAcquire(next);
  });
}

bool XenicNode::ParkRemote(const KeyRef& key, TxnId txn, std::function<void()> resume) {
  auto& queue = remote_waiters_[key];
  if (queue.size() >= kRemoteQueueCap) {
    return false;  // convoy forming: deny instead of queueing behind it
  }
  stats_.hot_remote_parks++;
  const uint64_t id = ++remote_waiter_seq_;
  queue.push_back(RemoteWaiter{id, txn, std::move(resume)});
  // Fallback wakeup, mirroring HotKeyPark: a release that bypasses this
  // node's release paths (recovery drops locks directly in the index) must
  // not strand the coordinator's pending reply. The entry id keeps a
  // fired timer from double-waking a request a release already resumed.
  nic_->engine()->ScheduleAfter(kHotParkTimeout, [this, key, id] {
    if (crashed_) {
      return;
    }
    auto it = remote_waiters_.find(key);
    if (it == remote_waiters_.end()) {
      return;
    }
    auto pos = std::find_if(it->second.begin(), it->second.end(),
                            [id](const RemoteWaiter& w) { return w.id == id; });
    if (pos == it->second.end()) {
      return;
    }
    RemoteWaiter w = std::move(*pos);
    it->second.erase(pos);
    if (it->second.empty()) {
      remote_waiters_.erase(it);
    }
    nic_->engine()->set_trace_ctx(w.txn);
    w.resume();
  });
  return true;
}

void XenicNode::WakeOneRemote(const KeyRef& key) {
  auto it = remote_waiters_.find(key);
  if (it == remote_waiters_.end() || it->second.empty()) {
    return;
  }
  RemoteWaiter w = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) {
    remote_waiters_.erase(it);
  }
  // Fresh event, same reason as the local wake: the release may happen
  // mid-rollback over another transaction's key list.
  nic_->engine()->ScheduleAfter(0, [this, w = std::move(w)] {
    if (crashed_) {
      return;
    }
    nic_->engine()->set_trace_ctx(w.txn);
    w.resume();
  });
}

// ---------------------------------------------------------------------------
// 2PL conflict handling (WAIT_DIE / WOUND_WAIT wait queues, WOUND delivery).
// ---------------------------------------------------------------------------

bool XenicNode::CcHandleConflict(TxnId txn, const KeyRef& conflict, uint32_t parks,
                                 std::function<void()> resume) {
  const TxnId holder = ds_->index(conflict.table).LockOwner(conflict.key);
  if (holder == store::kNoTxn) {
    // The holder released between the failed acquire and this decision
    // (lock rollbacks run inline). Re-attempt in a fresh event.
    stats_.cc_waits++;
    nic_->engine()->ScheduleAfter(0, [this, txn, resume = std::move(resume)] {
      if (crashed_) {
        return;
      }
      nic_->engine()->set_trace_ctx(txn);
      resume();
    });
    return true;
  }
  const CcAction act = cc_policy().OnConflict(txn, holder);
  if (act == CcAction::kAbort || parks >= kCcMaxParks) {
    return false;  // deny: the coordinator aborts (and retries) the requester
  }
  if (act == CcAction::kWound) {
    // Abort the younger holder at its coordinator so the lock frees; the
    // message rides the transport (a self-wound schedules locally). The
    // holder may already be past its commit point, in which case the wound
    // is a no-op and we fall back to waiting for its release.
    stats_.cc_wounds++;
    const NodeId vcoord = store::TxnNode(holder);
    XenicNode* victim = (*peers_)[vcoord];
    transport_.Send(
        net::MsgType::kWound, vcoord, net::wire::Wound(),
        [victim, holder] { victim->ServeWound(holder); }, txn);
  }
  CcPark(conflict, txn, std::move(resume));
  return true;
}

void XenicNode::CcPark(const KeyRef& key, TxnId txn, std::function<void()> resume) {
  stats_.cc_waits++;
  const uint64_t id = ++cc_waiter_seq_;
  cc_waiters_[key].push_back(CcWaiter{id, txn, std::move(resume)});
  // Fallback wakeup, mirroring ParkRemote: recovery sweeps release locks
  // directly in the index, bypassing ReleaseOne, and must not strand a
  // parked request forever. The entry id keeps a fired timer from
  // double-waking a request a release already resumed.
  nic_->engine()->ScheduleAfter(kCcParkTimeout, [this, key, id] {
    if (crashed_) {
      return;
    }
    auto it = cc_waiters_.find(key);
    if (it == cc_waiters_.end()) {
      return;
    }
    auto pos = std::find_if(it->second.begin(), it->second.end(),
                            [id](const CcWaiter& w) { return w.id == id; });
    if (pos == it->second.end()) {
      return;
    }
    CcWaiter w = std::move(*pos);
    it->second.erase(pos);
    if (it->second.empty()) {
      cc_waiters_.erase(it);
    }
    nic_->engine()->set_trace_ctx(w.txn);
    w.resume();
  });
}

void XenicNode::WakeCcWaiters(const KeyRef& key) {
  auto it = cc_waiters_.find(key);
  while (it != cc_waiters_.end() && !it->second.empty()) {
    // Grant to the OLDEST parked requester (ties by arrival): under
    // WOUND_WAIT an older waiter must not starve behind younger arrivals,
    // and under WAIT_DIE every queued waiter is older than the departed
    // holder anyway, so age order is also fair.
    auto pos = std::min_element(it->second.begin(), it->second.end(),
                                [](const CcWaiter& a, const CcWaiter& b) {
                                  const uint64_t pa = CcPriority(a.txn);
                                  const uint64_t pb = CcPriority(b.txn);
                                  return pa != pb ? pa < pb : a.id < b.id;
                                });
    CcWaiter w = std::move(*pos);
    it->second.erase(pos);
    if (it->second.empty()) {
      cc_waiters_.erase(it);
      it = cc_waiters_.end();
    }
    // Skip waiters whose transaction died while parked (wounded, swept by
    // recovery, or their coordinator crashed): wake the next-oldest
    // instead of letting the release go unused until a timeout fires.
    const NodeId coord = store::TxnNode(w.txn);
    XenicNode* cnode = (*peers_)[coord];
    if (cnode->crashed() || cnode->FindState(w.txn) == nullptr) {
      if (it == cc_waiters_.end()) {
        it = cc_waiters_.find(key);
      }
      continue;
    }
    // Fresh event, same reason as WakeHotWaiters: the release may happen
    // mid-rollback over another transaction's key list.
    nic_->engine()->ScheduleAfter(0, [this, w = std::move(w)] {
      if (crashed_) {
        return;
      }
      nic_->engine()->set_trace_ctx(w.txn);
      w.resume();
    });
    return;
  }
}

void XenicNode::ServeWound(TxnId victim) {
  if (crashed_) {
    return;
  }
  TraceInstant("hop.wound", victim);
  nic_->NicCompute(NicOpCost(0), [this, victim] {
    if (crashed_) {
      return;
    }
    TxnState* st = FindState(victim);
    if (st == nullptr || st->done == nullptr || st->logs_sent) {
      // Already finished, restarted under a new id, or past the commit
      // point (logs out): a wound must not undo a commit decision.
      return;
    }
    if (st->abort_reason == AbortReason::kNone) {
      st->abort_reason = AbortReason::kWounded;
    }
    st->abort = true;
    // Abort NOW rather than lazily flagging: the victim may itself be
    // parked on a lock the wounder holds, and only an immediate release
    // breaks that cycle. In-flight responses tolerate the erased state
    // (ReleaseOrphanedLocks / FindState re-checks on every wake).
    AbortCleanup(st, TxnOutcome::kAborted);
  });
}

void XenicNode::ChargeDmaReads(const store::NicIndex::LookupStats& stats,
                               sim::Engine::Callback done) {
  if (stats.dma_reads == 0) {
    done();
    return;
  }
  const uint64_t per_read = stats.bytes_read / stats.dma_reads;
  auto remaining = std::make_shared<uint32_t>(stats.dma_reads);
  auto shared_done = std::make_shared<sim::Engine::Callback>(std::move(done));
  // The reads of one operation are issued as one vector: they proceed in
  // parallel on the DMA engine; completion is when the last one lands.
  for (uint32_t i = 0; i < stats.dma_reads; ++i) {
    nic_->DmaRead(per_read, [remaining, shared_done] {
      if (--*remaining == 0) {
        (*shared_done)();
      }
    });
  }
}

void XenicNode::NicReadKey(const KeyRef& ref, bool metadata_only,
                           std::function<void(ReadResult, store::TxnId)> done) {
  store::NicIndex::LookupStats s;
  std::optional<store::NicIndex::RemoteObject> r;
  if (metadata_only) {
    r = ds_->index(ref.table).ReadMetadata(ref.key, &s);
  } else {
    r = ds_->index(ref.table).LookupRemote(ref.key, &s);
  }
  ReadResult result;
  TxnId owner = store::kNoTxn;
  if (r) {
    result = ReadResult{true, r->seq, std::move(r->value)};
    owner = r->lock_owner;
  }
  ChargeDmaReads(s, [done = std::move(done), result = std::move(result), owner]() mutable {
    done(std::move(result), owner);
  });
}

void XenicNode::ServeExecute(TxnId txn, NodeId coord,
                             std::vector<std::pair<uint32_t, KeyRef>> reads,
                             std::vector<std::pair<uint32_t, KeyRef>> writes,
                             std::function<void(ExecReply)> reply) {
  if (crashed_) {
    return;  // request lost with the node; the coordinator times out
  }
  TraceInstant("hop.execute", txn);
  // NicOpCost(0), pinned: the historical code passed
  // `NicOpCost(reads.size() + writes.size())` alongside a lambda whose
  // init-captures moved `reads`/`writes` in the same call, and argument
  // evaluation order ran the moves first -- so EXECUTE handlers have always
  // been charged the base op cost only. Golden transcripts (including the
  // pinned seed-3 schedule) encode that timing; keep it explicit rather
  // than re-derive it by accident (regression-pinned by
  // serve_execute_cost_test.cc, like ServeShipExec below).
  nic_->NicCompute(
      NicOpCost(0),
      [this, txn, coord, reads = std::move(reads), writes = std::move(writes),
       reply = std::move(reply)]() mutable {
        if (crashed_) {
          return;
        }
        // Lock the write set first (all-or-nothing at this shard); a 2PL
        // policy locks the read set in the same step, making the reads
        // below stable without a validation round.
        std::vector<KeyRef> lock_keys;
        for (const auto& [i, k] : writes) {
          (void)i;
          lock_keys.push_back(k);
        }
        if (Cc2pl()) {
          for (const auto& [i, k] : reads) {
            (void)i;
            if (!ContainsKey(lock_keys, k)) {
              lock_keys.push_back(k);
            }
          }
        }
        auto reads_ptr = std::make_shared<std::vector<std::pair<uint32_t, KeyRef>>>(
            std::move(reads));
        auto writes_ptr = std::make_shared<std::vector<std::pair<uint32_t, KeyRef>>>(
            std::move(writes));
        auto lock_keys_ptr = std::make_shared<std::vector<KeyRef>>(std::move(lock_keys));
        auto reply_ptr = std::make_shared<std::function<void(ExecReply)>>(std::move(reply));

        // Lock attempt, re-entered after each remote hot-key park (the
        // recursion-on-a-copy idiom `step` below also uses).
        auto attempt = [this, txn, coord, reads_ptr, writes_ptr, lock_keys_ptr, reply_ptr](
                           auto&& self, uint32_t parks) -> void {
          if (crashed_) {
            return;  // the node died while this request was parked
          }
          // A wake after a park must re-check the coordinator: if it
          // crashed, or recovery swept the transaction while we waited,
          // granting locks now would strand them (nobody will release).
          // Dropping the reply is what a lost request looks like, which
          // both of those paths already handle.
          if (parks > 0 && ((*peers_)[coord]->crashed() ||
                            (*peers_)[coord]->FindState(txn) == nullptr)) {
            return;
          }
          uint8_t lock_contention = 0;
          KeyRef conflict{};
          if (!LockAll(txn, *lock_keys_ptr, &lock_contention, &conflict)) {
            const sim::Tick now = nic_->engine()->now();
            if (Cc2pl()) {
              // WAIT_DIE / WOUND_WAIT may park (and wound) instead of
              // denying; NO_WAIT and an exhausted park budget deny here,
              // and the coordinator aborts exactly like an OCC conflict.
              if (CcHandleConflict(txn, conflict, parks,
                                   [self, parks] { self(self, parks + 1); })) {
                return;
              }
              (*reply_ptr)(ExecReply{false, {}, {}, lock_contention});
              return;
            }
            if (features_->hot_key_fastpath && parks < kRemoteMaxParks &&
                sketch_.IsHot(conflict, now) &&
                ParkRemote(conflict, txn, [self, parks] { self(self, parks + 1); })) {
              // Hot key: the pending reply is parked behind the holder
              // (zero locks held) instead of bouncing an abort-retry cycle
              // through the coordinator; timeout, a full queue, or an
              // exhausted park budget denies exactly as the unparked path
              // would.
              return;
            }
            (*reply_ptr)(ExecReply{false, {}, {}, lock_contention});
            return;
          }

          // Abort when a read-set key is locked by another transaction
          // (paper 4.2 step 2).
          auto state = std::make_shared<ExecReply>();
          state->ok = true;

          // Sequentially read each read-set key (charging DMA costs), then
          // fetch current versions for the write set, then reply.
          auto finish = [this, txn, state, writes_ptr, lock_keys_ptr, reply_ptr]() {
            if (!state->ok) {
              UnlockAll(txn, *lock_keys_ptr);
              (*reply_ptr)(ExecReply{false, {}, {}, state->contention});
              return;
            }
            // Current versions for the write set (from NIC metadata; absent
            // keys are inserts with seq 0).
            store::NicIndex::LookupStats agg;
            for (const auto& [i, k] : *writes_ptr) {
              auto m = LookupAccum(k, /*fetch_value=*/false, &agg);
              state->write_seqs.emplace_back(i, m ? m->seq : 0);
            }
            ChargeDmaReads(agg, [state, reply_ptr] { (*reply_ptr)(std::move(*state)); });
          };

          // Recurses on a copy of itself; a shared_ptr<function> capturing
          // itself would be a reference cycle leaking once per EXECUTE.
          auto step = [this, txn, state, reads_ptr, finish](auto&& self,
                                                            size_t idx) -> void {
            if (idx >= reads_ptr->size()) {
              finish();
              return;
            }
            const auto& [i, k] = (*reads_ptr)[idx];
            const uint32_t read_idx = i;
            const KeyRef key = k;
            NicReadKey(k, /*metadata_only=*/false,
                       [this, state, self, idx, read_idx, txn, key](ReadResult r,
                                                                   TxnId owner) mutable {
                         if (owner != store::kNoTxn && owner != txn) {
                           state->ok = false;
                           const sim::Tick now = nic_->engine()->now();
                           sketch_.RecordConflict(key, now);
                           state->contention =
                               std::max(state->contention, sketch_.Level(key, now));
                         } else {
                           state->reads.emplace_back(read_idx, std::move(r));
                         }
                         self(self, idx + 1);
                       });
          };
          step(step, 0);
        };
        attempt(attempt, 0);
      });
}

void XenicNode::ServeValidate(std::vector<std::pair<KeyRef, Seq>> checks,
                              std::function<void(bool, uint8_t)> reply) {
  if (crashed_) {
    return;
  }
  // The VALIDATE wire message doesn't carry the txn id in-band; the causal
  // trace context delivered with the message names it for the span tree.
  TraceInstant("hop.validate", nic_->engine()->trace_ctx());
  nic_->NicCompute(NicOpCost(checks.size()), [this, checks = std::move(checks),
                                              reply = std::move(reply)]() mutable {
    if (crashed_) {
      return;
    }
    bool ok = true;
    uint8_t contention = 0;
    store::NicIndex::LookupStats agg;
    const sim::Tick now = nic_->engine()->now();
    for (const auto& [k, expected] : checks) {
      auto m = LookupAccum(k, /*fetch_value=*/false, &agg);
      const Seq cur = m ? m->seq : 0;
      const TxnId owner = m ? m->lock_owner : store::kNoTxn;
      if (cur != expected || owner != store::kNoTxn) {
        ok = false;
        sketch_.RecordConflict(k, now);
        contention = std::max(contention, sketch_.Level(k, now));
      }
    }
    ChargeDmaReads(agg, [ok, contention, reply = std::move(reply)]() mutable {
      reply(ok, contention);
    });
  });
}

void XenicNode::AppendWhenSpace(store::LogRecord record, sim::Engine::Callback appended) {
  if (crashed_) {
    return;  // the DMA target is gone; retry loops die with the node
  }
  if (ds_->log().Full()) {
    // Host has fallen behind: back-pressure by retrying until workers free
    // ring space. Commit-point decisions never observe a failed append.
    nic_->engine()->ScheduleAfter(
        2 * sim::kNsPerUs, [this, record = std::move(record),
                            appended = std::move(appended)]() mutable {
          AppendWhenSpace(std::move(record), std::move(appended));
        });
    return;
  }
  const auto bytes = static_cast<uint32_t>(record.ByteSize());
  // The record becomes host-visible when the DMA completes: append then,
  // in the same event as the caller's continuation, so the host workers
  // can never observe the record before the NIC's own bookkeeping (cache
  // pinning) is in place.
  nic_->DmaWrite(bytes, [this, record = std::move(record),
                         appended = std::move(appended)]() mutable {
    if (crashed_) {
      return;
    }
    if (ds_->log().Full()) {
      AppendWhenSpace(std::move(record), std::move(appended));
      return;
    }
    auto result = ds_->Append(std::move(record));
    assert(result.ok());
    (void)result;
    appended();
  });
}

void XenicNode::ServeLog(store::LogRecord record, std::function<void(bool)> reply) {
  if (crashed_) {
    return;
  }
  TraceInstant("hop.log", record.txn);
  nic_->NicCompute(NicOpCost(record.writes.size()), [this, record = std::move(record),
                                                     reply = std::move(reply)]() mutable {
    if (crashed_) {
      return;
    }
    AppendWhenSpace(std::move(record),
                    [reply = std::move(reply)]() mutable { reply(true); });
  });
}

void XenicNode::ApplyCommitAtNic(TxnId txn, const std::vector<store::LogWrite>& writes,
                                 sim::Engine::Callback done) {
  if (crashed_) {
    return;
  }
  for (const auto& w : writes) {
    if (w.table >= ds_->num_tables()) {
      continue;  // workload-managed: applied by host workers only
    }
    if (w.is_delete) {
      // Deletes are applied to the host structure synchronously at commit
      // time (no stale-read window via the cache).
      ds_->table(w.table).Erase(w.key);
    } else {
      ds_->index(w.table).ApplyCommit(w.key, w.value, w.seq);
    }
    ReleaseOne(txn, KeyRef{w.table, w.key});
  }
  done();
}

void XenicNode::ServeCommit(TxnId txn, std::vector<store::LogWrite> writes,
                            std::vector<KeyRef> release_keys, sim::Engine::Callback ack) {
  if (crashed_) {
    return;
  }
  nic_->NicCompute(NicOpCost(writes.size()), [this, txn, writes = std::move(writes),
                                              release_keys = std::move(release_keys),
                                              ack = std::move(ack)]() mutable {
    if (crashed_) {
      return;
    }
    store::LogRecord rec;
    rec.type = store::LogRecordType::kCommit;
    rec.txn = txn;
    rec.shard = id();
    rec.writes = writes;
    // The commit record is applied by the host workers; cache entries are
    // updated and pinned now, and locks release once the DMA completes.
    AppendWhenSpace(std::move(rec), [this, txn, writes = std::move(writes),
                                     release_keys = std::move(release_keys),
                                     ack = std::move(ack)]() mutable {
      for (const auto& k : release_keys) {
        ReleaseOne(txn, k);
      }
      ApplyCommitAtNic(txn, writes, std::move(ack));
    });
  });
}

void XenicNode::ServeRelease(TxnId txn, std::vector<KeyRef> keys) {
  if (crashed_) {
    return;
  }
  nic_->NicCompute(NicOpCost(keys.size()), [this, txn, keys = std::move(keys)] {
    if (crashed_) {
      return;
    }
    UnlockAll(txn, keys);
  });
}

void XenicNode::ServeLogCommit(TxnId txn) {
  if (crashed_) {
    return;
  }
  nic_->NicCompute(NicOpCost(0), [this, txn] {
    if (crashed_) {
      return;
    }
    ds_->log().MarkStable(txn);
  });
}

void XenicNode::ServeLeaseHandoff(NodeId from) {
  if (crashed_) {
    return;
  }
  (void)from;  // the routing flip itself happens in repl::PlannedHandoff
  nic_->NicCompute(NicOpCost(0), [] {});
}

// ---------------------------------------------------------------------------
// Robinhood workers (paper step 7).
// ---------------------------------------------------------------------------

void XenicNode::StartWorkers(uint32_t count, sim::Tick poll_interval) {
  if (crashed_) {
    return;  // dead nodes stay dead
  }
  if (features_->nic_log_apply) {
    // Replication subsystem: the commit log is drained by NIC-ARM applier
    // contexts (repl::LogApplier) instead of host Robinhood workers. Same
    // loop and batch shape; the cycles land on the NIC cores and kLog
    // records wait for the coordinator's stability notice.
    if (applier_ == nullptr) {
      applier_ = std::make_unique<repl::LogApplier>(nic_, ds_, &stats_.nic_log_applied);
    }
    applier_->set_apply_hook(worker_apply_hook_);
    applier_->Start(count, poll_interval);
    return;
  }
  workers_running_ = true;
  // Bump the generation so stale ticks from a previous start/stop cycle
  // die instead of doubling the worker pool on restart.
  worker_epoch_++;
  const uint64_t epoch = worker_epoch_;
  workers_ = count;
  for (uint32_t w = 0; w < count; ++w) {
    // Stagger the workers across the poll interval.
    nic_->engine()->ScheduleAfter(
        poll_interval * (w + 1) / count,
        [this, w, poll_interval, epoch] { WorkerTick(w, poll_interval, epoch); });
  }
}

void XenicNode::StopWorkers() {
  workers_running_ = false;
  worker_epoch_++;
  if (applier_ != nullptr) {
    applier_->Stop();
  }
}

void XenicNode::TracePhase(const char* name, sim::Tick start, sim::Tick end, TxnId txn) {
  sim::TraceSink* t = nic_->engine()->trace();
  if (t == nullptr) {
    return;
  }
  if (t != trace_sink_) {
    trace_sink_ = t;
    trace_track_ = t->RegisterTrack("txn_phases", "n" + std::to_string(id()));
  }
  t->Span(trace_track_, name, start, end, txn);
}

void XenicNode::TraceInstant(const char* name, TxnId txn) {
  sim::TraceSink* t = nic_->engine()->trace();
  if (t == nullptr) {
    return;
  }
  if (t != trace_sink_) {
    trace_sink_ = t;
    trace_track_ = t->RegisterTrack("txn_phases", "n" + std::to_string(id()));
  }
  t->Instant(trace_track_, name, nic_->engine()->now(), txn);
}

void XenicNode::WorkerTick(uint32_t worker, sim::Tick interval, uint64_t epoch) {
  if (!workers_running_ || crashed_ || epoch != worker_epoch_) {
    return;
  }
  // Charge the poll, then apply up to a batch of records (charging the
  // apply work before the next poll). The poll is ambient infrastructure,
  // not any transaction's work: mark it so attribution sinks don't count
  // its host_cores span as a lost-context anomaly (obs::TxnTraceSink).
  nic_->engine()->set_trace_ctx(sim::kAmbientTraceCtx);
  nic_->HostCompute(kWorkerPollCost, [this, worker, interval, epoch] {
    if (!workers_running_ || crashed_ || epoch != worker_epoch_) {
      return;
    }
    int applied = 0;
    sim::Tick extra = 0;
    while (applied < kWorkerBatch) {
      const store::LogRecord* rec = ds_->log().Peek();
      if (rec == nullptr) {
        break;
      }
      const uint64_t lsn = rec->lsn;
      if (ds_->IsTombstoned(rec->txn)) {
        // Epoch-aborted transaction: consume the record without applying.
        // Any NIC-side state from the append must be torn down too -- a
        // commit record pinned its cached objects until host apply, and
        // the cached values were never (and will never be) applied here.
        for (const auto& w : rec->writes) {
          if (w.table < ds_->num_tables()) {
            auto& t = ds_->table(w.table);
            const size_t seg = t.SegmentOfKey(w.key);
            ds_->index(w.table).OnHostApplied(w.key, t.SegmentMaxDisp(seg),
                                              t.SegmentHasOverflow(seg));
            ds_->index(w.table).Invalidate(w.key);
          }
        }
        ds_->ClearPending(*rec);
        ds_->log().PopApplied();
        ds_->log().Reclaim(lsn + 1);
        applied++;
        continue;
      }
      extra += kWorkerRecordCost;
      TraceInstant("apply", rec->txn);
      for (const auto& w : rec->writes) {
        extra += kWorkerWriteCost;
        if (w.table < ds_->num_tables()) {
          auto& t = ds_->table(w.table);
          if (w.is_delete) {
            t.Erase(w.key);
          } else {
            t.Apply(w.key, w.value, w.seq);
          }
          const size_t seg = t.SegmentOfKey(w.key);
          // Ack piggybacked on host-to-NIC traffic: unpin + refresh hint.
          ds_->index(w.table).OnHostApplied(w.key, t.SegmentMaxDisp(seg),
                                            t.SegmentHasOverflow(seg));
        } else if (worker_apply_hook_) {
          extra += worker_apply_hook_(w);
        }
      }
      if (rec->type == store::LogRecordType::kLog) {
        ds_->NoteLogApplied(rec->txn, rec->shard);
      }
      ds_->ClearPending(*rec);
      ds_->log().PopApplied();
      ds_->log().Reclaim(lsn + 1);
      applied++;
    }
    if (extra > 0) {
      // Charge the apply work before the next poll.
      nic_->HostCompute(extra, [this, worker, interval, epoch] {
        nic_->engine()->ScheduleAfter(interval, [this, worker, interval, epoch] {
          WorkerTick(worker, interval, epoch);
        });
      });
    } else {
      nic_->engine()->ScheduleAfter(interval, [this, worker, interval, epoch] {
        WorkerTick(worker, interval, epoch);
      });
    }
  });
}

// ---------------------------------------------------------------------------
// Recovery support.
// ---------------------------------------------------------------------------

size_t XenicNode::RebuildLocksFromLog(const std::vector<store::LogRecord>& unacked) {
  size_t locked = 0;
  for (const auto& rec : unacked) {
    for (const auto& w : rec.writes) {
      if (w.table >= ds_->num_tables()) {
        continue;
      }
      if (ds_->index(w.table).AcquireLock(w.key, rec.txn).ok()) {
        locked++;
      }
    }
  }
  return locked;
}

void XenicNode::ClearNicState() {
  txns_.clear();
  hot_waiters_.clear();
  remote_waiters_.clear();
  cc_waiters_.clear();
}

void XenicNode::Crash() {
  crashed_ = true;
  workers_running_ = false;
  worker_epoch_++;
  if (applier_ != nullptr) {
    applier_->Stop();  // the NIC cores die with the node
  }
  hot_waiters_.clear();  // parked submissions die with the node
  // Parked remote lock requests die too: their replies are never sent,
  // which is exactly what a request lost with the node looks like to the
  // coordinator (recovery's wedged-txn sweep resolves it).
  remote_waiters_.clear();
  cc_waiters_.clear();  // same story for 2PL wait queues
  // txns_ is intentionally NOT cleared: shipped executions at remote nodes
  // hold raw pointers into it and guard against a vanished coordinator by
  // re-looking the state up -- freeing it here would leave them dangling
  // for the events already in flight.
}

std::vector<XenicNode::WedgedTxn> XenicNode::WedgedOn(NodeId failed, bool backup_touch) const {
  std::vector<WedgedTxn> out;
  if (crashed_) {
    return out;
  }
  for (const auto& [tid, st] : txns_) {
    if (st->done == nullptr) {
      continue;  // outcome already reported; the commit phase finishes on its own
    }
    bool touches = false;
    for (const auto& k : st->read_keys) {
      touches |= map_->PrimaryOf(k.table, k.key) == failed;
    }
    for (const auto& k : st->write_keys) {
      const NodeId p = map_->PrimaryOf(k.table, k.key);
      touches |= p == failed;
      // A written shard whose backup died can never collect all LOG acks.
      // A planned handoff (backup_touch=false) only wedges transactions
      // whose PRIMARY is departing: the node stays live as a backup, so
      // its acks keep flowing.
      if (backup_touch && !touches) {
        for (NodeId b : repl_->BackupsOf(p)) {
          touches |= b == failed;
        }
      }
    }
    if (!touches) {
      continue;
    }
    WedgedTxn w;
    w.id = tid;
    w.logs_sent = st->logs_sent;
    w.keys = st->read_keys;
    for (const auto& k : st->write_keys) {
      if (!ContainsKey(w.keys, k)) {
        w.keys.push_back(k);
      }
    }
    if (st->logs_sent) {
      // Reconstruct the LOG fan-out (one record per written shard) so the
      // sweep can check which live backups already hold or applied it.
      std::vector<NodeId> shards;
      for (const auto& k : st->write_keys) {
        const NodeId p = map_->PrimaryOf(k.table, k.key);
        if (std::find(shards.begin(), shards.end(), p) == shards.end()) {
          shards.push_back(p);
        }
      }
      if (!st->req.local_log_writes.empty() &&
          std::find(shards.begin(), shards.end(), id()) == shards.end()) {
        shards.push_back(id());
      }
      for (NodeId shard : shards) {
        store::LogRecord rec;
        rec.type = store::LogRecordType::kLog;
        rec.txn = tid;
        rec.total_shards = static_cast<uint32_t>(shards.size());
        rec.shard = shard;
        rec.writes = ShardWrites(*st, shard);
        w.records.emplace_back(shard, std::move(rec));
      }
    }
    out.push_back(std::move(w));
  }
  return out;
}

size_t XenicNode::ForceCommitWedged(TxnId txn, NodeId failed) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_ || st->done == nullptr) {
    return 0;
  }
  size_t synthesized = 0;
  while (FindState(txn) == st &&
         std::find(st->log_waiting.begin(), st->log_waiting.end(), failed) !=
             st->log_waiting.end()) {
    OnLogAck(txn, true, failed);
    synthesized++;
  }
  return synthesized;
}

void XenicNode::ForceAbortWedged(TxnId txn) {
  TxnState* st = FindState(txn);
  if (st == nullptr || crashed_ || st->done == nullptr) {
    return;
  }
  // The sweep released every lock synchronously; suppress the release
  // fan-out (the messages would be harmless owner-checked no-ops, but a
  // dead shard's would be dropped anyway).
  st->locked_shards.clear();
  st->local_locked = false;
  AbortCleanup(st, TxnOutcome::kAborted);
}

}  // namespace xenic::txn
