// XenicNode: one server's transaction engine (paper section 4.2).
//
// Each node is simultaneously a transaction coordinator, the primary of one
// shard, and a backup for other shards. The engine is split between the
// host (application threads, Robinhood worker threads) and the SmartNIC
// (coordinator-side transaction state machines, server-side
// EXECUTE / VALIDATE / LOG / COMMIT handlers).
//
// Paths, selected per transaction:
//  * Local fast path (4.2.4): all keys on this shard. Read-only commits on
//    the host with no NIC involvement; read-write executes optimistically
//    on the host and uses the NIC only for locking, replication and commit.
//  * Standard distributed path (4.2): EXECUTE (combined lock+read) ->
//    [execution on coordinator NIC or host] -> VALIDATE -> LOG -> COMMIT.
//  * Multi-hop shipped path (4.2.3): single-round transactions touching at
//    most {local shard, one remote shard} execute at the remote primary
//    NIC; LOG requests fan out from there and backups acknowledge directly
//    to the coordinator NIC, eliminating one message delay.
//
// Feature flags (XenicFeatures) gate the smart combined operations, NIC
// execution, and the multi-hop optimization for the Figure 9 ablations.

#ifndef SRC_TXN_XENIC_NODE_H_
#define SRC_TXN_XENIC_NODE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/histogram.h"
#include "src/net/transport.h"
#include "src/nicmodel/smart_nic.h"
#include "src/repl/log_applier.h"
#include "src/repl/replication_group.h"
#include "src/store/commit_log.h"
#include "src/store/datastore.h"
#include "src/txn/cc_policy.h"
#include "src/txn/hot_key_sketch.h"
#include "src/txn/types.h"

namespace xenic::txn {

class XenicNode {
 public:
  // `peers` is the cluster registry, filled by XenicCluster before use.
  // `repl` owns every replication decision (fan-out targets, ack quorums);
  // this node never walks the replica chain itself.
  XenicNode(nicmodel::SmartNic* nic, store::Datastore* ds, const ClusterMap* map,
            const XenicFeatures* features, std::vector<XenicNode*>* peers,
            const repl::ReplicationGroup* repl);

  // Application entry point (called in host context): run one transaction.
  // Returns the transaction's id (0 if the node is crashed and the request
  // was silently dropped) so callers can correlate trace spans -- the
  // closed-loop runner links retry attempts through it.
  TxnId Submit(TxnRequest req, CommitCallback done);

  // Start `count` Robinhood worker threads polling the commit log every
  // `poll_interval` ns (paper step 7).
  void StartWorkers(uint32_t count, sim::Tick poll_interval);
  void StopWorkers();

  // Workload hook: applies log writes whose table id is outside the
  // Robinhood datastore (workload-managed structures, e.g. TPC-C B+trees
  // replicated to backups). Returns extra host ns to charge.
  using WorkerApplyHook = std::function<sim::Tick(const store::LogWrite&)>;
  void set_worker_apply_hook(WorkerApplyHook hook) { worker_apply_hook_ = std::move(hook); }

  // Per-phase latency breakdown for distributed transactions (EXECUTE /
  // VALIDATE / LOG as seen by the coordinator NIC).
  struct PhaseBreakdown {
    Histogram execute;
    Histogram validate;
    Histogram log;
    Histogram total;
  };
  const PhaseBreakdown& phases() const { return phases_; }
  PhaseBreakdown& phases() { return phases_; }

  NodeId id() const { return nic_->id(); }
  store::Datastore& datastore() { return *ds_; }
  nicmodel::SmartNic& nic() { return *nic_; }
  TxnStats& stats() { return stats_; }
  const TxnStats& stats() const { return stats_; }
  // Typed message transport (the only way anything leaves this node).
  // Exposed so the chaos layer can arm typed per-MsgType fault hooks.
  net::Transport& transport() { return transport_; }

  // --- Recovery support (paper 4.2.1) ---
  // Rebuild NIC lock state for in-flight transactions found in the log
  // (called on a backup promoted to primary). Returns keys re-locked.
  size_t RebuildLocksFromLog(const std::vector<store::LogRecord>& unacked);
  // Drop all transaction state (simulates NIC lock-state loss on failure).
  void ClearNicState();

  // Fail-stop this node: no submissions, no served requests, no outbound
  // messages, workers halt. In-flight engine events targeting the node
  // become no-ops. Coordinator state is kept (not freed) so that raw
  // TxnState pointers held by in-flight shipped executions stay valid.
  void Crash();
  bool crashed() const { return crashed_; }

  // Epoch-change sweep surface. A wedged transaction is an unreported
  // in-flight transaction coordinated here that involves `failed` (as
  // primary of a touched key or backup of a written shard) and therefore
  // can never finish on its own. The sweep (recovery.cc) decides per
  // transaction: if its LOG fan-out already reached every *live* backup it
  // is committed (the dead node's acks are synthesized), otherwise it is
  // aborted and tombstoned.
  struct WedgedTxn {
    TxnId id = store::kNoTxn;
    bool logs_sent = false;            // LOG fan-out happened (write set final)
    std::vector<KeyRef> keys;          // read ∪ write set (lock sweep surface)
    // Per written shard, the LOG record the fan-out sent (set iff logs_sent).
    std::vector<std::pair<NodeId, store::LogRecord>> records;
  };
  // `backup_touch` additionally flags transactions whose only involvement
  // with `failed` is a written shard replicated there -- needed for crash
  // sweeps (the dead backup's acks never arrive) but not for planned
  // handoff, where the departing node stays live and keeps acking.
  std::vector<WedgedTxn> WedgedOn(NodeId failed, bool backup_touch = true) const;
  // Whether this coordinator reported `txn` committed to its application.
  // Recovery consults live coordinators before discarding an in-doubt
  // record: a reported commit must always be rolled forward, even when the
  // log-scan evidence is incomplete (records already applied and reclaimed
  // elsewhere leave no trace to enumerate).
  bool HasReportedCommit(TxnId txn) const { return reported_committed_.count(txn) > 0; }
  // Synthesize the LOG acks the failed node will never send. Returns the
  // number synthesized; the transaction commits once (and if) the remaining
  // live acks arrive -- for a sweep-verified-complete transaction they are
  // already in flight.
  size_t ForceCommitWedged(TxnId txn, NodeId failed);
  // Planned failover (repl::PlannedHandoff): the departing primary's lease
  // lands here. State transfer already happened through the replicated
  // log; this just charges the NIC handler for installing the lease.
  void ServeLeaseHandoff(NodeId from);
  // Abort a wedged transaction (caller has already tombstoned its records
  // and released its locks cluster-wide, so the normal release fan-out is
  // suppressed).
  void ForceAbortWedged(TxnId txn);

 private:
  // ---- Per-transaction coordinator state (lives on the coordinator NIC).
  struct ShardGroup {
    NodeId primary = 0;
    std::vector<uint32_t> read_idx;   // indexes into TxnState::read_keys
    std::vector<uint32_t> write_idx;  // indexes into TxnState::write_keys
  };
  struct TxnState {
    TxnId id = store::kNoTxn;
    TxnRequest req;
    CommitCallback done;
    // Current key/read/write views (grow across execution rounds).
    std::vector<KeyRef> read_keys;
    std::vector<KeyRef> write_keys;
    std::vector<ReadResult> reads;      // aligned with read_keys
    std::vector<Seq> write_seqs;        // current seq per write key
    std::vector<WriteIntent> writes;    // aligned with write_keys (after exec)
    int round = 0;
    uint32_t pending = 0;     // outstanding responses in the current phase
    bool abort = false;
    bool app_abort = false;
    std::vector<NodeId> locked_shards;  // primaries holding our locks
    bool local_locked = false;          // shipped path: local keys locked
    bool lock_all = false;              // shipped path: read keys locked too
    uint32_t new_exec_read_base = 0;    // first read index of current round
    uint32_t new_exec_write_base = 0;
    sim::Tick coord_start = 0;          // distributed path: NIC start time
    sim::Tick phase_start = 0;          // current phase start time
    // LOG phase: which senders we are still waiting on, one entry per
    // expected ack (a backup id, or kShipExecSignal for the shipped path's
    // EXEC result). Kept in lockstep with `pending` so an epoch sweep can
    // synthesize a dead backup's acks exactly once -- a late real ack whose
    // sender is no longer listed is ignored instead of double-counted.
    std::vector<NodeId> log_waiting;
    // Quorum replication only (repl::ReplicationGroup::QuorumArmed): the
    // shard each outstanding ack replicates (lockstep with log_waiting;
    // kShipExecSignal entries carry the sentinel itself) and the per-shard
    // ack counts still required before the commit point may fire. Both
    // stay empty at the default wait-for-all quorum, keeping that path
    // byte-identical.
    std::vector<NodeId> log_shards;
    std::map<NodeId, uint32_t> log_needed;
    bool logs_sent = false;             // LOG fan-out happened
    uint8_t contention_hint = 0;        // max sketch level across conflicts
    AbortReason abort_reason = AbortReason::kNone;  // first abort cause wins
    // 2PL (CcPolicyKind != kOcc): read-set keys are locked at EVERY shard
    // that acknowledged EXECUTE, so commit/abort must release them there
    // (under OCC only the local/shipped paths lock reads -- see lock_all).
    bool cc_read_locks = false;
    // ClusterMap::version at submit time. 2PL commits fence on it: if the
    // membership changed while we ran, a lock granted by the evicted node
    // is gone and our "stable by construction" reads are not.
    uint64_t map_version = 0;
    // Hot-key fast path bookkeeping.
    bool hot_path = false;    // routed through the serialized NIC path
    bool hot_parked = false;  // waiting in a per-hot-key queue (zero locks!)
    uint32_t hot_waits = 0;   // parks so far (requeue cap + timer generation)
    KeyRef hot_key;           // the serialization key when hot_path
  };

  // Sentinel "sender" for the shipped path's EXEC-result completion signal.
  static constexpr NodeId kShipExecSignal = static_cast<NodeId>(-1);

  using StatePtr = std::unique_ptr<TxnState>;

  // ---- Coordinator-side phases.
  void SubmitOnHost(StatePtr st);
  void LocalReadOnlyPath(StatePtr st);
  // Replica read (features.replica_reads): a single-shard read-only
  // transaction whose shard this node backs is served from the local
  // NIC-applied backup tables iff the freshness fence holds at serve time
  // (membership unchanged since submit AND the local log is fully drained,
  // so the tables are a stable prefix of the shard's commit order);
  // otherwise it escalates to the normal distributed path.
  bool ReplicaReadEligible(const TxnState& st, NodeId* shard_out) const;
  void ReplicaReadPath(StatePtr st, NodeId shard);
  void LocalWritePath(StatePtr st);
  void CoordStartOnNic(TxnId id);
  // A local fast-path execution discovered remote keys: restart the
  // transaction through the distributed path.
  void EscalateToDistributed(TxnId txn);
  bool ShipEligible(const TxnState& st, NodeId* remote_out) const;
  void ShippedPath(TxnState* st, NodeId remote);
  void ExecutePhase(TxnState* st);
  void OnExecuteResp(TxnId id, NodeId shard, bool ok,
                     std::vector<std::pair<uint32_t, ReadResult>> reads,
                     std::vector<std::pair<uint32_t, Seq>> write_seqs,
                     std::vector<KeyRef> locked_keys, uint8_t contention);
  void AfterExecuteRound(TxnState* st);
  // Separate lock round used when smart_remote_ops is disabled (the
  // one-op-per-request ablation baseline): one LOCK request per write key,
  // issued after execution completes, DrTM-style.
  void LockRound(TxnState* st);
  void OnLockResp(TxnId id, NodeId shard, bool ok,
                  std::vector<std::pair<uint32_t, Seq>> write_seqs,
                  std::vector<KeyRef> locked_keys, uint8_t contention);
  // A lock grant arrived for a transaction that no longer exists (the epoch
  // sweep resolved it while the response was in flight): release the
  // orphaned locks at their shard.
  void ReleaseOrphanedLocks(TxnId txn, NodeId shard, std::vector<KeyRef> keys);
  // Version-gap check for keys both read and written; aborts and returns
  // false on a mismatch.
  bool CheckReadWriteGap(TxnState* st);
  void RunExecuteLogic(TxnState* st, sim::Engine::Callback next);
  void ValidatePhase(TxnState* st);
  void OnValidateResp(TxnId id, bool ok, uint8_t contention);
  void LogPhase(TxnState* st);
  void OnLogAck(TxnId id, bool ok, NodeId from);
  void OnShipFailure(TxnId id, uint8_t contention = 0);
  void CommitPhase(TxnState* st);
  void ReportAndFinish(TxnState* st, TxnOutcome outcome);
  void AbortCleanup(TxnState* st, TxnOutcome outcome);
  void EraseState(TxnId id);
  TxnState* FindState(TxnId id);

  // Group the transaction's current keys by primary shard.
  std::vector<ShardGroup> GroupByShard(const TxnState& st, bool new_only) const;
  // Collect the write set of one shard as (key, intent, new seq) triples.
  std::vector<store::LogWrite> ShardWrites(const TxnState& st, NodeId shard) const;

  // ---- Server-side handlers (invoked on this node by peers' closures).
  struct ExecReply {
    bool ok = false;
    std::vector<std::pair<uint32_t, ReadResult>> reads;
    std::vector<std::pair<uint32_t, Seq>> write_seqs;
    uint8_t contention = 0;  // sketch level of the conflicting key on !ok
  };
  void ServeExecute(TxnId txn, NodeId coord, std::vector<std::pair<uint32_t, KeyRef>> reads,
                    std::vector<std::pair<uint32_t, KeyRef>> writes,
                    std::function<void(ExecReply)> reply);
  void ServeValidate(std::vector<std::pair<KeyRef, Seq>> checks,
                     std::function<void(bool, uint8_t)> reply);
  void ServeLog(store::LogRecord record, std::function<void(bool)> reply);
  // Commit-point notification (features.nic_log_apply): stabilizes the
  // transaction's LOG records so the NIC applier may apply and reclaim
  // them. Fire-and-forget; no reply.
  void ServeLogCommit(TxnId txn);
  void ServeCommit(TxnId txn, std::vector<store::LogWrite> writes,
                   std::vector<KeyRef> release_keys, sim::Engine::Callback ack);
  void ServeRelease(TxnId txn, std::vector<KeyRef> keys);
  void ServeShipExec(TxnId txn, NodeId coord, TxnState* coord_state);

  // Lock all given keys in the NIC index; on conflict release those taken
  // and return false. A conflict is recorded in the hot-key sketch; when
  // `contention`/`conflict` are given they receive the sketch level and the
  // identity of the first key that was denied.
  bool LockAll(TxnId txn, const std::vector<KeyRef>& keys, uint8_t* contention = nullptr,
               KeyRef* conflict = nullptr);
  void UnlockAll(TxnId txn, const std::vector<KeyRef>& keys);
  // Single release point for every node-path unlock: drops the lock, then
  // wakes the head of the key's hot-waiter queue (if any).
  void ReleaseOne(TxnId txn, const KeyRef& key);
  void WakeHotWaiters(const KeyRef& key);

  // ---- Hot-key fast path (XenicFeatures::hot_key_fastpath). All-local
  // write transactions whose write set hits a sketch-flagged hot key skip
  // the optimistic race: they lock read+write sets up front on the NIC
  // (parking in a per-key FIFO while holding zero locks if the hot key is
  // taken), execute under locks, and reuse LogPhase/CommitPhase.
  bool TryHotKeyRoute(StatePtr& st);  // true = routed (state consumed)
  void HotKeyStart(TxnId txn);
  void HotKeyAcquire(TxnId txn);
  void HotKeyExecute(TxnState* st);
  void HotKeyPark(TxnState* st);
  void RemoveHotWaiter(TxnState* st);

  // ---- Remote hot-key parking (also hot_key_fastpath). A lock request a
  // coordinator sent here (EXECUTE or shipped execution) that is denied on
  // a sketch-flagged hot key parks its pending reply in a per-key FIFO
  // (zero locks held) and re-attempts when the holder releases, instead of
  // bouncing an abort-retry cycle through the coordinator. The timeout /
  // park-budget fallback denies exactly as before, so the wait is bounded
  // and distributed deadlocks still resolve by abort.
  // Returns false (caller denies as usual) when the key's queue is full.
  bool ParkRemote(const KeyRef& key, TxnId txn, std::function<void()> resume);
  void WakeOneRemote(const KeyRef& key);

  // ---- Pluggable concurrency control (XenicFeatures::cc; cc_policy.h).
  // True when a 2PL policy is active: read sets lock at EXECUTE time, the
  // VALIDATE phase is skipped, and the shipped/hot-key routes are disabled.
  bool Cc2pl() const { return features_->cc != CcPolicyKind::kOcc; }
  const CcPolicy& cc_policy() const { return CcPolicy::Get(features_->cc); }
  // Policy decision for a denied lock at this shard: park `resume` in the
  // key's wait queue (optionally wounding the holder first) and return
  // true, or return false when the policy (or an exhausted park budget)
  // says the requester must abort.
  bool CcHandleConflict(TxnId txn, const KeyRef& conflict, uint32_t parks,
                        std::function<void()> resume);
  // Timestamp-ordered wait queue (one per key, oldest woken first). Parked
  // entries hold the timeout fallback of the hot-key queues: a lock
  // released behind the engine's back (recovery sweeps) must not strand a
  // waiter forever.
  void CcPark(const KeyRef& key, TxnId txn, std::function<void()> resume);
  void WakeCcWaiters(const KeyRef& key);
  // Coordinator-side WOUND handler: abort `victim` unless it already
  // passed its commit point (logs sent / outcome reported) or is gone.
  void ServeWound(TxnId victim);
  // All-local write transactions under 2PL: lock the read+write set up
  // front on the NIC (policy-directed parking on conflict), execute under
  // locks, then LOG/COMMIT -- no optimistic race, no validation.
  void CcLocalPath(StatePtr st);
  void CcLocalStart(TxnId txn);
  void CcLocalAcquire(TxnId txn, uint32_t parks);

  // Read one key at the server-side NIC, charging DMA costs; calls `done`
  // with the result.
  void NicReadKey(const KeyRef& ref, bool metadata_only,
                  std::function<void(ReadResult, store::TxnId)> done);
  // Charge `stats` worth of DMA reads, then `done`.
  void ChargeDmaReads(const store::NicIndex::LookupStats& stats, sim::Engine::Callback done);

  // One NIC-index lookup with its DMA cost folded into `agg` (for a later
  // single ChargeDmaReads). `fetch_value` selects the full value read
  // (LookupRemote) over the metadata probe (ReadMetadata).
  std::optional<store::NicIndex::RemoteObject> LookupAccum(const KeyRef& k, bool fetch_value,
                                                           store::NicIndex::LookupStats* agg);

  // Shipped/local execution prologue shared by ShippedPath and
  // ServeShipExec: fetch the values of the read-set indices in `read_idx`
  // and refresh the current seqs of write keys homed on this node, folding
  // all DMA costs into `agg`.
  void ReadLocalSets(TxnState* st, const std::vector<uint32_t>& read_idx,
                     store::NicIndex::LookupStats* agg);

  // Append a record to the host log via DMA write, waiting (back-pressure)
  // while the bounded ring is full; `appended` runs after the DMA lands.
  void AppendWhenSpace(store::LogRecord record, sim::Engine::Callback appended);

  // Commit application at the primary NIC for `writes` (cache update, pin,
  // unlock); used by both ServeCommit and the local path.
  void ApplyCommitAtNic(TxnId txn, const std::vector<store::LogWrite>& writes,
                        sim::Engine::Callback done);

  // Robinhood worker iteration. `epoch` guards against stale ticks after a
  // stop/start cycle (chaos back-pressure windows restart workers).
  void WorkerTick(uint32_t worker, sim::Tick interval, uint64_t epoch);

  // NIC-core cost helpers.
  sim::Tick NicOpCost(size_t n_keys) const;
  sim::Tick NicExecCost(sim::Tick host_cost) const;

  // Emit a txn phase span / instant on this node's trace lane when an
  // engine trace sink is attached (pure recording; no simulation effect).
  void TracePhase(const char* name, sim::Tick start, sim::Tick end, TxnId id);
  void TraceInstant(const char* name, TxnId id);

  nicmodel::SmartNic* nic_;
  store::Datastore* ds_;
  const ClusterMap* map_;
  const XenicFeatures* features_;
  std::vector<XenicNode*>* peers_;
  const repl::ReplicationGroup* repl_;
  // NIC-ARM log applier (features.nic_log_apply): replaces the host
  // Robinhood workers for this node's commit log. Created on first
  // StartWorkers with the feature armed.
  std::unique_ptr<repl::LogApplier> applier_;
  std::unordered_map<TxnId, StatePtr> txns_;
  // Commit outcomes this coordinator reported (recovery oracle; see
  // HasReportedCommit). Lost with the node on a crash, like any host state.
  std::unordered_set<TxnId> reported_committed_;
  uint64_t next_txn_seq_ = 1;
  TxnStats stats_;
  // Per-shard conflict sketch feeding contention hints and hot-key routing.
  HotKeySketch sketch_;
  // Per-hot-key FIFO of parked transactions (ids only; zero locks held).
  std::unordered_map<KeyRef, std::deque<TxnId>, KeyRefHash> hot_waiters_;
  // Per-hot-key FIFO of parked remote lock requests (EXECUTE / shipped
  // execution); `resume` re-attempts the full lock set. The id lets the
  // timeout fallback find its own entry after wakes reordered the queue.
  struct RemoteWaiter {
    uint64_t id;
    TxnId txn;
    std::function<void()> resume;
  };
  std::unordered_map<KeyRef, std::deque<RemoteWaiter>, KeyRefHash> remote_waiters_;
  uint64_t remote_waiter_seq_ = 0;
  // Per-key 2PL wait queues (WAIT_DIE / WOUND_WAIT). Entries hold zero or
  // more locks at OTHER shards (hold-and-wait is safe: timestamp ordering
  // keeps the global waits-for graph acyclic); wakes go oldest-first.
  struct CcWaiter {
    uint64_t id;
    TxnId txn;
    std::function<void()> resume;
  };
  std::unordered_map<KeyRef, std::vector<CcWaiter>, KeyRefHash> cc_waiters_;
  uint64_t cc_waiter_seq_ = 0;
  net::Transport transport_;
  PhaseBreakdown phases_;
  WorkerApplyHook worker_apply_hook_;
  bool workers_running_ = false;
  bool crashed_ = false;
  uint32_t workers_ = 0;
  uint64_t worker_epoch_ = 0;
  // Cached trace registration (lazily refreshed when a new sink appears).
  sim::TraceSink* trace_sink_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace xenic::txn

#endif  // SRC_TXN_XENIC_NODE_H_
