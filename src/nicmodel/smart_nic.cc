#include "src/nicmodel/smart_nic.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace xenic::nicmodel {

SmartNic::SmartNic(sim::Engine* engine, const net::PerfModel& model, SmartNicFabric* fabric,
                   NodeId id)
    : engine_(engine),
      model_(model),
      fabric_(fabric),
      id_(id),
      nic_cores_(engine, "n" + std::to_string(id) + ".nic_cores", model.nic_cores),
      host_cores_(engine, "n" + std::to_string(id) + ".host_cores", model.host_threads),
      dma_queues_(engine, "n" + std::to_string(id) + ".dma_queues", model.dma_queues),
      dma_submit_port_(engine, "n" + std::to_string(id) + ".dma_submit", 1),
      dma_batcher_(model.dma_vector_max),
      pcie_up_(engine, "n" + std::to_string(id) + ".pcie_up", model.pcie_bytes_per_ns, 0),
      pcie_down_(engine, "n" + std::to_string(id) + ".pcie_down", model.pcie_bytes_per_ns, 0) {
  // Node-qualified names ("n3.tx0") keep trace tracks distinguishable when
  // every node's resources feed one TraceRecorder.
  const std::string prefix = "n" + std::to_string(id) + ".";
  for (uint32_t p = 0; p < model.nic_ports; ++p) {
    tx_ports_.push_back(std::make_unique<sim::Channel>(engine, prefix + "tx" + std::to_string(p),
                                                       model.link_bytes_per_ns,
                                                       model.wire_latency));
    rx_ports_.push_back(std::make_unique<sim::Channel>(engine, prefix + "rx" + std::to_string(p),
                                                       model.link_bytes_per_ns, 0));
  }
}

void SmartNic::NicCompute(sim::Tick cost, sim::Engine::Callback done) {
  nic_cores_.Submit(cost, std::move(done));
}

void SmartNic::HostCompute(sim::Tick cost, sim::Engine::Callback done) {
  host_cores_.Submit(cost, std::move(done));
}

void SmartNic::NicSend(NodeId dst, uint32_t bytes, sim::Engine::Callback deliver_at_dst) {
  if (eth_queues_.size() < fabric_->size()) {
    eth_queues_.resize(fabric_->size());
  }
  messages_sent_++;
  DstQueue& q = eth_queues_[dst];
  q.msgs.push_back(PendingMsg{bytes, engine_->trace_ctx(), std::move(deliver_at_dst)});
  q.bytes += bytes;
  if (!features_.eth_aggregation) {
    FlushEth(dst);
    return;
  }
  if (q.bytes + model_.frame_overhead >= model_.mtu) {
    FlushEth(dst);
    return;
  }
  if (!q.flush_scheduled) {
    q.flush_scheduled = true;
    engine_->ScheduleAfter(model_.batch_window, [this, dst] {
      if (eth_queues_[dst].flush_scheduled) {
        FlushEth(dst);
      }
    });
  }
}

void SmartNic::FlushEth(NodeId dst) {
  DstQueue& q = eth_queues_[dst];
  q.flush_scheduled = false;
  if (q.msgs.empty()) {
    return;
  }
  std::vector<PendingMsg> msgs = std::move(q.msgs);
  q.msgs.clear();
  q.bytes = 0;

  const uint64_t frame_bytes =
      model_.frame_overhead +
      [&] {
        uint64_t b = 0;
        for (const auto& m : msgs) {
          b += m.bytes;
        }
        return b;
      }();
  frames_sent_++;
  wire_bytes_sent_ += frame_bytes;

  // TX software pipeline: gather list assembly on a NIC core, then the
  // port serializes the frame onto the wire.
  const sim::Tick tx_cost =
      model_.nic_frame_tx_cost + model_.nic_msg_cost * static_cast<sim::Tick>(msgs.size());
  auto* port = tx_ports_[next_tx_port_].get();
  next_tx_port_ = (next_tx_port_ + 1) % tx_ports_.size();
  nic_cores_.Submit(tx_cost, [this, port, frame_bytes, dst, msgs = std::move(msgs)]() mutable {
    port->Send(frame_bytes, model_.port_frame_cost, [this, dst, msgs = std::move(msgs)]() mutable {
      fabric_->node(dst).DeliverFrame(std::move(msgs));
    });
  });
}

void SmartNic::DeliverFrame(std::vector<PendingMsg> msgs) {
  // RX port serialization at the destination, then software pipeline on a
  // NIC core, then the per-message handlers run.
  const uint64_t frame_bytes = model_.frame_overhead + [&] {
    uint64_t b = 0;
    for (const auto& m : msgs) {
      b += m.bytes;
    }
    return b;
  }();
  auto* port = rx_ports_[next_rx_port_].get();
  next_rx_port_ = (next_rx_port_ + 1) % rx_ports_.size();
  port->Send(frame_bytes, model_.port_frame_cost, [this, msgs = std::move(msgs)]() mutable {
    const sim::Tick rx_cost =
        model_.nic_frame_rx_cost + model_.nic_msg_cost * static_cast<sim::Tick>(msgs.size());
    nic_cores_.Submit(rx_cost, [this, msgs = std::move(msgs)]() mutable {
      for (auto& m : msgs) {
        // Each handler (and everything it schedules) runs under its own
        // message's transaction context, not the frame's: aggregation must
        // not smear one transaction's work onto its frame-mates.
        engine_->set_trace_ctx(m.ctx);
        m.deliver();
      }
      engine_->set_trace_ctx(0);
    });
  });
}

void SmartNic::HostToNic(uint32_t bytes, sim::Engine::Callback deliver_at_nic) {
  const sim::Tick extra = features_.pcie_aggregation ? 0 : model_.pcie_msg_unbatched_cost;
  pcie_up_.Send(bytes, extra, [this, deliver_at_nic = std::move(deliver_at_nic)]() mutable {
    engine_->ScheduleAfter(model_.host_to_nic_crossing, std::move(deliver_at_nic));
  });
}

void SmartNic::NicToHost(uint32_t bytes, sim::Engine::Callback deliver_at_host) {
  const sim::Tick extra = features_.pcie_aggregation ? 0 : model_.pcie_msg_unbatched_cost;
  pcie_down_.Send(bytes, extra, [this, deliver_at_host = std::move(deliver_at_host)]() mutable {
    engine_->ScheduleAfter(model_.nic_to_host_crossing, std::move(deliver_at_host));
  });
}

void SmartNic::DmaOp(uint64_t bytes, bool is_read, sim::Engine::Callback done) {
  dma_ops_++;
  dma_bytes_ += bytes;
  const sim::Tick completion =
      is_read ? model_.dma_read_completion : model_.dma_write_completion;
  const auto transfer =
      static_cast<sim::Tick>(static_cast<double>(bytes) / model_.pcie_bytes_per_ns);
  const sim::Tick service = std::max<sim::Tick>(model_.dma_engine_service, transfer);

  if (!features_.async_dma_batching) {
    // Unbatched, blocking model: the issuing NIC core pays the full
    // submission cost, the engine fetches one descriptor per request, and
    // the core stalls until the DMA completes.
    nic_cores_.Submit(model_.dma_submit_cost, [this, service, completion,
                                               done = std::move(done)]() mutable {
      dma_submit_port_.Submit(model_.dma_submit_cost, [this, service, completion,
                                                       done = std::move(done)]() mutable {
        const sim::Tick start = engine_->now();
        dma_queues_.Submit(service, [this, start, completion, done = std::move(done)]() mutable {
          const sim::Tick elapsed = engine_->now() - start;
          const sim::Tick wait = completion > elapsed ? completion - elapsed : 0;
          // Core blocks for the whole duration (submission already charged).
          nic_cores_.Submit(wait, std::move(done));
        });
      });
    });
    return;
  }

  // Async vectored model: submission cost and the engine's descriptor
  // fetch are amortized across a vector; the core is free while the DMA
  // engine works. The static model assumes an always-full vector; the
  // adaptive model (NicFeatures::adaptive_dma_batching) sizes the vector
  // from the queue occupancy observed at submission, so idle-engine
  // submissions pay closer to the real descriptor-fetch cost while loaded
  // ones amortize exactly like the static model.
  const uint32_t vec = features_.adaptive_dma_batching
                           ? dma_batcher_.OnSubmit(dma_queues_.queue_depth())
                           : model_.dma_vector_max;
  const sim::Tick submit_share = model_.dma_submit_cost / vec + 1;
  nic_cores_.Submit(submit_share, [this, submit_share, service, completion,
                                   done = std::move(done)]() mutable {
    dma_submit_port_.Submit(submit_share, [this, service, completion,
                                           done = std::move(done)]() mutable {
      const sim::Tick start = engine_->now();
      dma_queues_.Submit(service, [this, start, completion, done = std::move(done)]() mutable {
        const sim::Tick elapsed = engine_->now() - start;
        const sim::Tick wait = completion > elapsed ? completion - elapsed : 0;
        engine_->ScheduleAfter(wait, std::move(done));
      });
    });
  });
}

void SmartNic::DmaRead(uint64_t bytes, sim::Engine::Callback done) {
  DmaOp(bytes, /*is_read=*/true, std::move(done));
}

void SmartNic::DmaWrite(uint64_t bytes, sim::Engine::Callback done) {
  DmaOp(bytes, /*is_read=*/false, std::move(done));
}

double SmartNic::WireUtilization(sim::Tick window) const {
  double total = 0;
  for (const auto& p : tx_ports_) {
    total += p->Utilization(window);
  }
  return total / static_cast<double>(tx_ports_.size());
}

void SmartNic::ResetStats() {
  frames_sent_ = 0;
  messages_sent_ = 0;
  wire_bytes_sent_ = 0;
  dma_ops_ = 0;
  dma_bytes_ = 0;
  nic_cores_.ResetStats();
  host_cores_.ResetStats();
  dma_queues_.ResetStats();
  dma_submit_port_.ResetStats();
  pcie_up_.ResetStats();
  pcie_down_.ResetStats();
  for (auto& p : tx_ports_) {
    p->ResetStats();
  }
  for (auto& p : rx_ports_) {
    p->ResetStats();
  }
}

SmartNicFabric::SmartNicFabric(sim::Engine* engine, const net::PerfModel& model,
                               uint32_t num_nodes)
    : engine_(engine), model_(model) {
  for (uint32_t i = 0; i < num_nodes; ++i) {
    nics_.push_back(std::make_unique<SmartNic>(engine, model_, this, i));
  }
}

}  // namespace xenic::nicmodel
