// Occupancy-aware DMA vector sizing (NicFeatures::adaptive_dma_batching).
//
// The static async model amortizes the engine's submission cost over an
// always-full vector of dma_vector_max descriptors -- optimistic when the
// queues are idle (a lone request still gets charged a 1/15 share).
// DmaVectorBatcher makes the amortization honest: the vector size tracks
// the DMA queues' observed occupancy at each submission, deterministically
// in sim time.
//
//   * depth >= current vector  -> double the vector (up to dma_vector_max):
//     the engine is backed up, so wider vectors are actually being filled.
//   * depth == 0 for kIdleShrinkAfter consecutive submissions -> halve the
//     vector (down to 1): an idle engine is coalescing nothing, so the
//     submitter pays closer to the full descriptor-fetch cost.
//   * intermediate depth -> hold the current size (and reset the idle run).
//
// The batcher starts at dma_vector_max, so under any sustained load -- and
// for at least the first kIdleShrinkAfter submissions of a quiet period --
// its per-op submission share is identical to the static model
// (equivalence pinned by dma_batcher_test.cc). Determinism: the next
// vector size is a pure function of the submission-ordered depth sequence,
// which the engine fixes independently of host threads or tracing.

#ifndef SRC_NICMODEL_DMA_BATCHER_H_
#define SRC_NICMODEL_DMA_BATCHER_H_

#include <cstdint>

namespace xenic::nicmodel {

class DmaVectorBatcher {
 public:
  // Consecutive depth-0 submissions tolerated before the vector shrinks.
  static constexpr uint32_t kIdleShrinkAfter = 4;

  explicit DmaVectorBatcher(uint32_t vector_max)
      : vector_max_(vector_max < 1 ? 1 : vector_max), vector_(vector_max_) {}

  // Current vector size to amortize this submission over, then adapt from
  // the queue depth observed at submission time.
  uint32_t OnSubmit(uint64_t queue_depth) {
    const uint32_t used = vector_;
    if (queue_depth >= vector_) {
      vector_ = vector_ * 2 > vector_max_ ? vector_max_ : vector_ * 2;
      idle_streak_ = 0;
    } else if (queue_depth == 0) {
      if (++idle_streak_ >= kIdleShrinkAfter) {
        vector_ = vector_ > 1 ? vector_ / 2 : 1;
        idle_streak_ = 0;
      }
    } else {
      idle_streak_ = 0;
    }
    return used;
  }

  uint32_t vector() const { return vector_; }
  uint32_t vector_max() const { return vector_max_; }

 private:
  uint32_t vector_max_;
  uint32_t vector_;
  uint32_t idle_streak_ = 0;
};

}  // namespace xenic::nicmodel

#endif  // SRC_NICMODEL_DMA_BATCHER_H_
