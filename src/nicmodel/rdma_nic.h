// Timing model of the Mellanox CX5 100GbE RDMA NIC (paper sections 2.1,
// 3.2, 3.4). The baseline transaction systems (DrTM+H, FaSST, DrTM+R) are
// built on these verbs.
//
//  * One-sided READ / WRITE / ATOMIC: handled entirely by NIC hardware at
//    the target (no host CPU), ~3.4 us RTT at low load, with a per-NIC
//    small-op pipeline ceiling of ~15 Mops/s (doorbell batching assumed).
//  * Two-sided SEND/RECV RPC: crosses the target host (rx ring, poll,
//    handler, send post), ~6.3 us RTT; the handler closure runs on a target
//    host thread and may carry extra application cost.

#ifndef SRC_NICMODEL_RDMA_NIC_H_
#define SRC_NICMODEL_RDMA_NIC_H_

#include <functional>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/perf_model.h"
#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/store/types.h"

namespace xenic::nicmodel {

using store::NodeId;

class RdmaFabric;

class RdmaNic {
 public:
  RdmaNic(sim::Engine* engine, const net::PerfModel& model, RdmaFabric* fabric, NodeId id,
          sim::Resource* host_cores);

  NodeId id() const { return id_; }
  sim::Engine* engine() { return engine_; }

  // One-sided verbs, initiated from a host thread on this node. `bytes` is
  // the payload (data read / written). The optional `at_target` closure
  // executes the actual memory effect at the target when the NIC hardware
  // performs the access (no host CPU there); `done` runs at the initiator
  // when the completion is polled.
  void Read(NodeId dst, uint32_t bytes, sim::Engine::Callback done);
  void Read(NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
            sim::Engine::Callback done);
  void Write(NodeId dst, uint32_t bytes, sim::Engine::Callback done);
  void Write(NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
             sim::Engine::Callback done);
  // Compare-and-swap / fetch-and-add on an 8-byte remote word: `op` runs
  // at the target and returns the result carried back to `done`.
  void Atomic(NodeId dst, sim::SmallFunction<uint64_t()> op,
              sim::SmallFunction<void(uint64_t)> done);

  // Two-sided RPC: `handler_cost` of target host-thread time plus the
  // `handler` closure (which performs real work, e.g. a hash lookup), then
  // a response of `resp_bytes`. `done` runs at the initiator.
  void Rpc(NodeId dst, uint32_t req_bytes, uint32_t resp_bytes, sim::Tick handler_cost,
           sim::Engine::Callback handler, sim::Engine::Callback done);

  sim::Resource& pipeline() { return pipeline_; }
  sim::Resource& host_cores() { return *host_cores_; }
  uint64_t ops() const { return ops_; }
  uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }
  double WireUtilization(sim::Tick window) const { return tx_.Utilization(window); }
  void ResetStats();

  // Wire channel, exposed so fault injectors can arm per-frame hooks.
  sim::Channel& tx() { return tx_; }

 private:
  friend class RdmaFabric;

  struct OneSidedKind {
    bool is_write;
    bool is_atomic;
  };
  void OneSided(NodeId dst, uint32_t bytes, bool is_write, sim::Engine::Callback at_target,
                sim::Engine::Callback done);
  // Target side: NIC hardware handles the request and responds.
  void HandleOneSided(NodeId src, uint32_t req_payload, uint32_t resp_payload, bool is_write,
                      sim::Engine::Callback at_target, sim::Engine::Callback done_at_initiator);
  void HandleRpc(NodeId src, uint32_t resp_bytes, sim::Tick handler_cost,
                 sim::Engine::Callback handler, sim::Engine::Callback done_at_initiator);
  void SendResponse(NodeId src, uint32_t bytes, sim::Engine::Callback done_at_initiator,
                    bool to_host);

  sim::Engine* engine_;
  const net::PerfModel& model_;
  RdmaFabric* fabric_;
  NodeId id_;
  sim::Resource* host_cores_;  // shared with the rest of the node
  sim::Resource pipeline_;     // NIC processing units (~15 Mops/s small ops)
  sim::Channel tx_;            // 100 Gbps link (one per CX5)
  uint64_t ops_ = 0;
  uint64_t wire_bytes_sent_ = 0;

  static constexpr uint32_t kVerbHeader = 42;  // RoCE headers per op on the wire
};

class RdmaFabric {
 public:
  // host_cores[i] is node i's host thread pool (shared with the app).
  RdmaFabric(sim::Engine* engine, const net::PerfModel& model,
             const std::vector<sim::Resource*>& host_cores);

  RdmaNic& node(NodeId id) { return *nics_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(nics_.size()); }

 private:
  sim::Engine* engine_;
  net::PerfModel model_;
  std::vector<std::unique_ptr<RdmaNic>> nics_;
};

}  // namespace xenic::nicmodel

#endif  // SRC_NICMODEL_RDMA_NIC_H_
