// Timing model of one server's on-path SmartNIC (Marvell LiquidIO 3) plus
// its host, and the fabric connecting them (paper sections 3 and 4.3).
//
// The model exposes the primitives Xenic's runtime is built from:
//   * NicCompute / HostCompute — occupy a NIC ARM core / host Xeon thread.
//   * NicSend — NIC-to-NIC message, with opportunistic Ethernet aggregation:
//     messages to the same destination within a poll window share one frame
//     (amortizing frame overhead bytes, per-frame port time, and per-frame
//     software pipeline costs). Disabled via Features for the Figure 9
//     ablations.
//   * HostToNic / NicToHost — PCIe crossings for the coordinator path, with
//     the same batching treatment on the PCIe descriptor queues.
//   * DmaRead / DmaWrite — the NIC's DMA engine: 8 hardware queues,
//     vectored submission, measured submission/completion latencies.
//     With async batching disabled, the issuing NIC core blocks until the
//     DMA completes (the Figure 9a "+Async DMA" ablation).
//
// Payload movement is the protocol layer's job (closures carry real data);
// this class accounts time and bandwidth only.

#ifndef SRC_NICMODEL_SMART_NIC_H_
#define SRC_NICMODEL_SMART_NIC_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/perf_model.h"
#include "src/nicmodel/dma_batcher.h"
#include "src/sim/channel.h"
#include "src/sim/engine.h"
#include "src/sim/resource.h"
#include "src/store/types.h"

namespace xenic::nicmodel {

using store::NodeId;

struct NicFeatures {
  bool eth_aggregation = true;    // batch NIC-to-NIC messages into frames
  bool pcie_aggregation = true;   // batch host<->NIC PCIe message queues
  bool async_dma_batching = true; // vectored, non-blocking DMA submission
  // Occupancy-aware vector sizing on top of async batching (see
  // dma_batcher.h). Off by default: the static always-full-vector model is
  // the historical behavior and every existing seed depends on it.
  bool adaptive_dma_batching = false;
};

class SmartNicFabric;

class SmartNic {
 public:
  SmartNic(sim::Engine* engine, const net::PerfModel& model, SmartNicFabric* fabric, NodeId id);

  NodeId id() const { return id_; }
  NicFeatures& features() { return features_; }
  const net::PerfModel& model() const { return model_; }
  sim::Engine* engine() { return engine_; }

  // --- Compute ---
  void NicCompute(sim::Tick cost, sim::Engine::Callback done);
  void HostCompute(sim::Tick cost, sim::Engine::Callback done);

  // --- NIC-to-NIC messaging ---
  void NicSend(NodeId dst, uint32_t bytes, sim::Engine::Callback deliver_at_dst);

  // --- Host <-> NIC PCIe crossings ---
  void HostToNic(uint32_t bytes, sim::Engine::Callback deliver_at_nic);
  void NicToHost(uint32_t bytes, sim::Engine::Callback deliver_at_host);

  // --- DMA engine ---
  void DmaRead(uint64_t bytes, sim::Engine::Callback done);
  void DmaWrite(uint64_t bytes, sim::Engine::Callback done);

  // --- Introspection / Table 3 knobs ---
  sim::Resource& nic_cores() { return nic_cores_; }
  sim::Resource& host_cores() { return host_cores_; }
  sim::Resource& dma_queues() { return dma_queues_; }
  sim::Resource& dma_submit_port() { return dma_submit_port_; }
  const DmaVectorBatcher& dma_batcher() const { return dma_batcher_; }
  sim::Channel& pcie_up() { return pcie_up_; }
  sim::Channel& pcie_down() { return pcie_down_; }
  sim::Channel& rx_port(size_t i) { return *rx_ports_[i]; }
  uint64_t frames_sent() const { return frames_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }
  uint64_t dma_ops() const { return dma_ops_; }
  uint64_t dma_bytes() const { return dma_bytes_; }
  double WireUtilization(sim::Tick window) const;
  void ResetStats();

  // Wire-facing channels, exposed so fault injectors can arm per-frame
  // drop/delay/duplication hooks (sim::Channel::set_fault_hook).
  size_t num_tx_ports() const { return tx_ports_.size(); }
  sim::Channel& tx_port(size_t i) { return *tx_ports_[i]; }

 private:
  friend class SmartNicFabric;

  struct PendingMsg {
    uint32_t bytes;
    uint64_t ctx;  // sender's transaction trace context (0 = none)
    sim::Engine::Callback deliver;
  };
  struct DstQueue {
    std::vector<PendingMsg> msgs;
    uint32_t bytes = 0;
    bool flush_scheduled = false;
  };

  void FlushEth(NodeId dst);
  void DeliverFrame(std::vector<PendingMsg> msgs);  // runs at destination
  void DmaOp(uint64_t bytes, bool is_read, sim::Engine::Callback done);

  sim::Engine* engine_;
  const net::PerfModel& model_;
  SmartNicFabric* fabric_;
  NodeId id_;
  NicFeatures features_;

  sim::Resource nic_cores_;
  sim::Resource host_cores_;
  sim::Resource dma_queues_;
  // Descriptor-fetch port of the DMA engine: one submission per request,
  // or one per 15-element vector when vectored submission is enabled.
  sim::Resource dma_submit_port_;
  // Occupancy-tracked vector size (adaptive_dma_batching only).
  DmaVectorBatcher dma_batcher_;
  std::vector<std::unique_ptr<sim::Channel>> tx_ports_;
  std::vector<std::unique_ptr<sim::Channel>> rx_ports_;
  sim::Channel pcie_up_;    // host -> NIC descriptor/message queue
  sim::Channel pcie_down_;  // NIC -> host
  size_t next_tx_port_ = 0;
  size_t next_rx_port_ = 0;

  std::vector<DstQueue> eth_queues_;  // per destination

  uint64_t frames_sent_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t wire_bytes_sent_ = 0;
  uint64_t dma_ops_ = 0;
  uint64_t dma_bytes_ = 0;
};

// Registry connecting the cluster's SmartNICs.
class SmartNicFabric {
 public:
  SmartNicFabric(sim::Engine* engine, const net::PerfModel& model, uint32_t num_nodes);

  SmartNic& node(NodeId id) { return *nics_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(nics_.size()); }
  sim::Engine* engine() { return engine_; }
  const net::PerfModel& model() const { return model_; }

 private:
  sim::Engine* engine_;
  net::PerfModel model_;
  std::vector<std::unique_ptr<SmartNic>> nics_;
};

}  // namespace xenic::nicmodel

#endif  // SRC_NICMODEL_SMART_NIC_H_
