#include "src/nicmodel/rdma_nic.h"

#include <memory>
#include <utility>

namespace xenic::nicmodel {

RdmaNic::RdmaNic(sim::Engine* engine, const net::PerfModel& model, RdmaFabric* fabric, NodeId id,
                 sim::Resource* host_cores)
    : engine_(engine),
      model_(model),
      fabric_(fabric),
      id_(id),
      host_cores_(host_cores),
      pipeline_(engine, "n" + std::to_string(id) + ".rdma_pipeline", 1),
      tx_(engine, "n" + std::to_string(id) + ".rdma_tx", model.rdma_link_bytes_per_ns,
          model.wire_latency) {}

void RdmaNic::Read(NodeId dst, uint32_t bytes, sim::Engine::Callback done) {
  OneSided(dst, bytes, /*is_write=*/false, [] {}, std::move(done));
}

void RdmaNic::Read(NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
                   sim::Engine::Callback done) {
  OneSided(dst, bytes, /*is_write=*/false, std::move(at_target), std::move(done));
}

void RdmaNic::Write(NodeId dst, uint32_t bytes, sim::Engine::Callback done) {
  OneSided(dst, bytes, /*is_write=*/true, [] {}, std::move(done));
}

void RdmaNic::Write(NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
                    sim::Engine::Callback done) {
  OneSided(dst, bytes, /*is_write=*/true, std::move(at_target), std::move(done));
}

void RdmaNic::Atomic(NodeId dst, sim::SmallFunction<uint64_t()> op,
                     sim::SmallFunction<void(uint64_t)> done) {
  auto result = std::make_shared<uint64_t>(0);
  OneSided(
      dst, 8, /*is_write=*/false,
      [op = std::move(op), result]() mutable { *result = op(); },
      [result, done = std::move(done)]() mutable { done(*result); });
}

void RdmaNic::OneSided(NodeId dst, uint32_t bytes, bool is_write,
                       sim::Engine::Callback at_target, sim::Engine::Callback done) {
  ops_++;
  // Initiator: verb post (host, doorbell-batched) + NIC pipeline + wire.
  const uint32_t req_payload = is_write ? bytes : 0;
  const uint32_t resp_payload = is_write ? 0 : bytes;
  host_cores_->Submit(model_.rdma_init_cost, [this, dst, req_payload, resp_payload, is_write,
                                              at_target = std::move(at_target),
                                              done = std::move(done)]() mutable {
    // Initiator-side posting is cheap with doorbell batching; the measured
    // ~15 Mops/s small-op ceiling is dominated by target-side processing.
    pipeline_.Submit(model_.rdma_nic_service / 2, [this, dst, req_payload, resp_payload, is_write,
                                               at_target = std::move(at_target),
                                               done = std::move(done)]() mutable {
      const uint64_t wire_bytes = kVerbHeader + req_payload;
      wire_bytes_sent_ += wire_bytes;
      engine_->ScheduleAfter(model_.rdma_nic_hw_cost, [this, dst, wire_bytes, req_payload,
                                                       resp_payload, is_write,
                                                       at_target = std::move(at_target),
                                                       done = std::move(done)]() mutable {
        tx_.Send(wire_bytes, [this, dst, req_payload, resp_payload, is_write,
                              at_target = std::move(at_target), done = std::move(done)]() mutable {
          fabric_->node(dst).HandleOneSided(id_, req_payload, resp_payload, is_write,
                                            std::move(at_target), std::move(done));
        });
      });
    });
  });
}

void RdmaNic::HandleOneSided(NodeId src, uint32_t req_payload, uint32_t resp_payload,
                             bool is_write, sim::Engine::Callback at_target,
                             sim::Engine::Callback done_at_initiator) {
  (void)req_payload;
  // Target NIC hardware: pipeline occupancy, fixed processing latency, PCIe
  // DMA to host memory, then the response.
  pipeline_.Submit(model_.rdma_nic_service, [this, src, resp_payload, is_write,
                                             at_target = std::move(at_target),
                                             done_at_initiator =
                                                 std::move(done_at_initiator)]() mutable {
    const sim::Tick latency = model_.rdma_nic_hw_cost + model_.rdma_target_dma;
    (void)is_write;
    engine_->ScheduleAfter(latency, [this, src, resp_payload,
                                     at_target = std::move(at_target),
                                     done_at_initiator = std::move(done_at_initiator)]() mutable {
      at_target();  // the actual memory effect (reads/CAS on real state)
      SendResponse(src, kVerbHeader + resp_payload, std::move(done_at_initiator),
                   /*to_host=*/false);
    });
  });
}

void RdmaNic::SendResponse(NodeId src, uint32_t bytes, sim::Engine::Callback done_at_initiator,
                           bool to_host) {
  wire_bytes_sent_ += bytes;
  tx_.Send(bytes, [this, src, to_host,
                   done_at_initiator = std::move(done_at_initiator)]() mutable {
    RdmaNic& initiator = fabric_->node(src);
    initiator.pipeline_.Submit(model_.rdma_nic_service / 2, [&initiator, to_host,
                                                         done_at_initiator = std::move(
                                                             done_at_initiator)]() mutable {
      // Completion delivery: DMA of CQE (plus payload for two-sided) and
      // the initiator's poll.
      const sim::Tick extra = to_host ? initiator.model_.rdma_target_dma : 0;
      initiator.engine_->ScheduleAfter(
          initiator.model_.rdma_completion_poll + extra,
          [&initiator, done_at_initiator = std::move(done_at_initiator)]() mutable {
            initiator.host_cores_->Submit(initiator.model_.rdma_init_cost / 2,
                                          std::move(done_at_initiator));
          });
    });
  });
}

void RdmaNic::Rpc(NodeId dst, uint32_t req_bytes, uint32_t resp_bytes, sim::Tick handler_cost,
                  sim::Engine::Callback handler, sim::Engine::Callback done) {
  ops_++;
  host_cores_->Submit(model_.rdma_init_cost, [this, dst, req_bytes, resp_bytes, handler_cost,
                                              handler = std::move(handler),
                                              done = std::move(done)]() mutable {
    pipeline_.Submit(model_.rdma_nic_service / 2, [this, dst, req_bytes, resp_bytes, handler_cost,
                                               handler = std::move(handler),
                                               done = std::move(done)]() mutable {
      const uint64_t wire_bytes = kVerbHeader + req_bytes;
      wire_bytes_sent_ += wire_bytes;
      engine_->ScheduleAfter(model_.rdma_nic_hw_cost, [this, dst, wire_bytes, resp_bytes,
                                                       handler_cost,
                                                       handler = std::move(handler),
                                                       done = std::move(done)]() mutable {
        tx_.Send(wire_bytes, [this, dst, resp_bytes, handler_cost, handler = std::move(handler),
                              done = std::move(done)]() mutable {
          fabric_->node(dst).HandleRpc(id_, resp_bytes, handler_cost, std::move(handler),
                                       std::move(done));
        });
      });
    });
  });
}

void RdmaNic::HandleRpc(NodeId src, uint32_t resp_bytes, sim::Tick handler_cost,
                        sim::Engine::Callback handler, sim::Engine::Callback done_at_initiator) {
  // Target NIC -> host rx ring (DMA + poll), then the handler on a host
  // thread, then the response send posts back through the NIC.
  pipeline_.Submit(model_.rdma_nic_service, [this, src, resp_bytes, handler_cost,
                                             handler = std::move(handler),
                                             done_at_initiator =
                                                 std::move(done_at_initiator)]() mutable {
    const sim::Tick to_host = model_.rdma_nic_hw_cost + model_.rdma_target_dma +
                              model_.rdma_two_sided_target_extra / 2;
    engine_->ScheduleAfter(to_host, [this, src, resp_bytes, handler_cost,
                                     handler = std::move(handler),
                                     done_at_initiator = std::move(done_at_initiator)]() mutable {
      host_cores_->Submit(
          model_.host_rpc_handle_cost + handler_cost,
          [this, src, resp_bytes, handler = std::move(handler),
           done_at_initiator = std::move(done_at_initiator)]() mutable {
            handler();
            // Response: send post + NIC pipeline + wire; delivered to the
            // initiator host (two-sided completions land in host memory).
            pipeline_.Submit(model_.rdma_nic_service,
                             [this, src, resp_bytes,
                              done_at_initiator = std::move(done_at_initiator)]() mutable {
                               engine_->ScheduleAfter(
                                   model_.rdma_nic_hw_cost +
                                       model_.rdma_two_sided_target_extra / 2,
                                   [this, src, resp_bytes,
                                    done_at_initiator =
                                        std::move(done_at_initiator)]() mutable {
                                     SendResponse(src, kVerbHeader + resp_bytes,
                                                  std::move(done_at_initiator),
                                                  /*to_host=*/true);
                                   });
                             });
          });
    });
  });
}

void RdmaNic::ResetStats() {
  ops_ = 0;
  wire_bytes_sent_ = 0;
  pipeline_.ResetStats();
  tx_.ResetStats();
}

RdmaFabric::RdmaFabric(sim::Engine* engine, const net::PerfModel& model,
                       const std::vector<sim::Resource*>& host_cores)
    : engine_(engine), model_(model) {
  for (uint32_t i = 0; i < host_cores.size(); ++i) {
    nics_.push_back(std::make_unique<RdmaNic>(engine, model_, this, i, host_cores[i]));
  }
}

}  // namespace xenic::nicmodel
