// Baseline remote-access hash designs (paper section 4.1.4, Table 2).
//
// * HopscotchTable — FaRM's design: any key lives within a fixed
//   neighborhood of H slots from its home; a remote lookup reads the H-slot
//   neighborhood in one roundtrip and falls back to an overflow chain read
//   (a second roundtrip) when the key spilled.
// * ChainedTable — DrTM+H's design: a closed array of B-slot buckets with
//   linked overflow buckets; a remote lookup reads whole buckets along the
//   chain, one roundtrip per bucket.
//
// Both report the same remote-lookup cost receipt as NicIndex so the
// Table 2 bench compares all designs on equal footing. These tables hold
// keys and versions only (object payloads are irrelevant to the lookup-cost
// comparison; byte counts use a configurable object size).

#ifndef SRC_STORE_ALT_HASH_H_
#define SRC_STORE_ALT_HASH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/store/types.h"

namespace xenic::store {

struct RemoteLookupStats {
  uint32_t roundtrips = 0;
  uint32_t objects_read = 0;
  uint64_t bytes_read = 0;
  bool found = false;
};

// FaRM-style Hopscotch hash table.
class HopscotchTable {
 public:
  struct Options {
    size_t capacity_log2 = 16;
    uint32_t neighborhood = 8;  // H
    size_t object_size = 32;    // bytes per object for byte accounting
  };

  explicit HopscotchTable(const Options& options);

  Status Insert(Key key, Seq seq = 1);
  bool Contains(Key key) const;

  // Remote lookup: one READ of the H-slot neighborhood; a second READ of
  // the home bucket's overflow chain if not found inline.
  std::optional<Seq> RemoteLookup(Key key, RemoteLookupStats* stats) const;

  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  size_t overflow_size() const { return overflow_count_; }

 private:
  struct Slot {
    Key key = 0;
    Seq seq = 0;
    bool occupied = false;
  };

  size_t Home(Key key) const { return HashKey(key) & mask_; }

  size_t capacity_;
  size_t mask_;
  uint32_t neighborhood_;
  size_t object_size_;
  std::vector<Slot> slots_;
  // hop bitmap per home bucket: bit i set => slot home+i holds a key homed here
  std::vector<uint32_t> hop_info_;
  std::vector<std::vector<Slot>> overflow_;
  size_t size_ = 0;
  size_t overflow_count_ = 0;
};

// DrTM+H-style chained bucket table.
class ChainedTable {
 public:
  struct Options {
    size_t capacity_log2 = 16;  // total main-bucket slots
    uint32_t bucket_slots = 4;  // B
    size_t object_size = 32;
  };

  explicit ChainedTable(const Options& options);

  Status Insert(Key key, Seq seq = 1);
  bool Contains(Key key) const;

  // Remote lookup: read B-object buckets along the chain, one roundtrip
  // per bucket.
  std::optional<Seq> RemoteLookup(Key key, RemoteLookupStats* stats) const;

  size_t size() const { return size_; }
  size_t num_buckets() const { return num_buckets_; }
  size_t chained_buckets() const { return chained_buckets_; }

 private:
  struct Slot {
    Key key = 0;
    Seq seq = 0;
    bool occupied = false;
  };
  struct Bucket {
    std::vector<Slot> slots;
    int32_t next = -1;  // index into chain_pool_, -1 = end
  };

  size_t HomeBucket(Key key) const { return HashKey(key) & mask_; }

  size_t num_buckets_;
  size_t mask_;
  uint32_t bucket_slots_;
  size_t object_size_;
  std::vector<Bucket> buckets_;
  std::vector<Bucket> chain_pool_;
  size_t size_ = 0;
  size_t chained_buckets_ = 0;
};

}  // namespace xenic::store

#endif  // SRC_STORE_ALT_HASH_H_
