#include "src/store/commit_log.h"

#include <cassert>

namespace xenic::store {

Result<uint64_t> CommitLog::Append(LogRecord record) {
  if (records_.size() >= capacity_) {
    return Status::Capacity("log ring full");
  }
  record.lsn = next_lsn_++;
  const uint64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

const LogRecord* CommitLog::Peek() const {
  if (applied_ >= records_.size()) {
    return nullptr;
  }
  return &records_[applied_];
}

void CommitLog::PopApplied() {
  assert(applied_ < records_.size());
  applied_++;
}

void CommitLog::Reclaim(uint64_t upto) {
  while (!records_.empty() && records_.front().lsn < upto) {
    assert(applied_ > 0 && "reclaiming a record the host has not applied");
    records_.pop_front();
    applied_--;
    base_lsn_++;
  }
}

}  // namespace xenic::store
