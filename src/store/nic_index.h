// SmartNIC caching index over the host Robinhood table (paper section 4.1.3).
//
// NIC DRAM holds, per host-table segment, an index entry containing:
//   * a small cache of objects homed in that segment (fixed "ways" plus
//     chained overflow pages),
//   * transaction metadata (lock owner, version) for objects touched by
//     ongoing transactions,
//   * the highest known displacement d_i of keys homed in the segment and
//     an overflow flag, which turn cache-miss lookups into a single bounded
//     DMA region read in the common case.
//
// The index is a pure data structure: every remote lookup executes
// synchronously against the host table's DMA-visible surface (ReadRegion /
// ReadOverflow / heap) and returns a cost receipt (DMA reads issued, slots
// and bytes read, cache hit or miss). The NIC runtime converts receipts
// into simulated DMA latency and batching behaviour; benches aggregate them
// directly for Table 2.

#ifndef SRC_STORE_NIC_INDEX_H_
#define SRC_STORE_NIC_INDEX_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/store/robinhood_table.h"
#include "src/store/types.h"

namespace xenic::store {

class NicIndex {
 public:
  struct Options {
    size_t ways_per_entry = 4;   // fixed cache positions per index entry
    uint16_t hint_slack = 1;     // k: slots read beyond d_i (paper picks 1)
    uint64_t memory_budget = 0;  // bytes of NIC DRAM for cached objects; 0 = unlimited
    bool cache_values = true;    // admit looked-up values (Table 2 turns this off)
    // Admit keys into the cache at bulk-load time (models the steady-state
    // warm cache of a long-running deployment; the LiquidIO's 16 GB DRAM
    // comfortably holds the benchmarks' hot tables).
    bool admit_on_load = true;
  };

  // Cost receipt for one remote operation.
  struct LookupStats {
    uint32_t dma_reads = 0;      // region + overflow + large-object reads
    uint32_t objects_read = 0;   // host slots / overflow entries scanned
    uint64_t bytes_read = 0;     // DMA payload bytes
    bool cache_hit = false;
    bool found = false;
  };

  struct RemoteObject {
    Value value;
    Seq seq = 0;
    TxnId lock_owner = kNoTxn;
    bool from_cache = false;
  };

  NicIndex(const RobinhoodTable* host, const Options& options);

  // --- Remote data path (server-side NIC handlers). ---

  // Full remote lookup: cache first, then planned DMA reads against the
  // host table. Admits the object into the cache when cache_values is on.
  std::optional<RemoteObject> LookupRemote(Key key, LookupStats* stats);

  // Version/lock probe for VALIDATE: same read path, value decode skipped.
  std::optional<RemoteObject> ReadMetadata(Key key, LookupStats* stats);

  // --- Transaction metadata (locks live only in NIC memory). ---

  // Acquire the write lock for `txn`. Fails with kAborted when another
  // transaction holds it. Creates a metadata-only entry if needed.
  Status AcquireLock(Key key, TxnId txn);
  void ReleaseLock(Key key, TxnId txn);
  bool IsLocked(Key key) const;
  TxnId LockOwner(Key key) const;

  // --- Commit path. ---

  // Apply a committed write to the cached copy and pin it until the host
  // worker has applied the log record (lookups must not read a stale host
  // slot). Creates the cached entry if absent.
  void ApplyCommit(Key key, const Value& value, Seq seq);

  // Host worker finished applying this key's write; unpin and refresh the
  // location hint (the ack piggybacks the segment's current displacement
  // bound and overflow state on host-to-NIC traffic).
  void OnHostApplied(Key key, uint16_t segment_disp, bool has_overflow);

  // Bulk-load admission (no cost receipt; see Options::admit_on_load).
  void AdmitOnLoad(Key key, const Value& value, Seq seq);

  // --- Hint maintenance. ---

  void UpdateHint(size_t segment, uint16_t disp, bool has_overflow);
  // Bootstrap all hints from the host table (rack bring-up / recovery).
  void SyncHintsFromHost();
  uint16_t HintOf(size_t segment) const { return entries_[segment].d_hint; }

  // --- Introspection. ---

  bool IsCached(Key key) const;
  std::optional<Seq> CachedSeq(Key key) const;
  // Audit surface: every cached object with a value, as (key, seq, value).
  // Used by coherence checks (cache must agree with the host table once
  // the system quiesces).
  struct CachedEntry {
    Key key;
    Seq seq;
    const Value* value;
    bool pinned;
    bool locked;
  };
  std::vector<CachedEntry> CachedEntries() const;

  // Audit/recovery surface: every key whose NIC-resident lock word is held,
  // with its owner. Includes metadata-only entries (no cached value), which
  // CachedEntries() skips -- locks live only in NIC memory, so this is the
  // authoritative lock table for leak audits and coordinator-crash sweeps.
  struct LockedKey {
    Key key;
    TxnId owner;
  };
  std::vector<LockedKey> LockedKeys() const;

  // Drop a key's cached value (metadata/locks survive); used when a backup
  // is promoted to primary: its cache was never maintained by the commit
  // protocol and must refill from the (recovered) host table.
  void Invalidate(Key key);
  uint64_t cached_objects() const { return cached_objects_; }
  uint64_t cached_bytes() const { return cached_bytes_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t pinned_objects() const { return pinned_objects_; }

 private:
  struct CachedObject {
    Key key = 0;
    Seq seq = 0;
    TxnId lock_owner = kNoTxn;
    uint16_t pin_count = 0;
    uint8_t ref = 0;       // CLOCK reference bit
    bool valid = false;
    bool has_value = false;
    Value value;
  };

  struct IndexEntry {
    uint16_t d_hint = 0;
    bool has_overflow = false;
    std::vector<CachedObject> objects;  // first `ways` inline, rest = overflow pages
  };

  CachedObject* Find(Key key);
  const CachedObject* Find(Key key) const;
  // Find-or-create a cache slot for `key` (evicting if over budget).
  CachedObject* Ensure(Key key);
  void Release(IndexEntry& entry, CachedObject& obj);
  uint64_t CostOf(const CachedObject& obj) const { return 48 + obj.value.size(); }
  void EvictUntilWithinBudget();

  // Shared miss path; when want_value is false the large-object hop is
  // skipped (VALIDATE only needs the version).
  std::optional<RemoteObject> MissPath(Key key, bool want_value, LookupStats* stats);

  const RobinhoodTable* host_;
  Options options_;
  uint16_t dm_;  // host displacement limit (probe cap)
  std::vector<IndexEntry> entries_;
  uint64_t cached_objects_ = 0;
  uint64_t cached_bytes_ = 0;
  uint64_t pinned_objects_ = 0;
  uint64_t evictions_ = 0;
  size_t clock_segment_ = 0;
  size_t clock_way_ = 0;
  std::vector<uint8_t> region_buf_;  // scratch for DMA region reads
};

}  // namespace xenic::store

#endif  // SRC_STORE_NIC_INDEX_H_
