// Heap for values larger than the inline-slot threshold (256 B).
//
// Xenic stores large objects outside the host hash table to keep Robinhood
// swaps cheap and DMA lookups small (paper 4.1.2); the table slot holds an
// 8-byte handle and the NIC retrieves the payload with one additional
// single-object DMA read.

#ifndef SRC_STORE_LARGE_OBJECT_HEAP_H_
#define SRC_STORE_LARGE_OBJECT_HEAP_H_

#include <cstdint>
#include <vector>

#include "src/store/types.h"

namespace xenic::store {

class LargeObjectHeap {
 public:
  using Handle = uint64_t;
  static constexpr Handle kNullHandle = ~0ull;

  Handle Alloc(Value value);
  void Free(Handle h);
  // Replace contents in place (object size may change).
  void Update(Handle h, Value value);
  const Value& Get(Handle h) const;
  bool Valid(Handle h) const;

  size_t live_objects() const { return live_; }
  size_t live_bytes() const { return live_bytes_; }

 private:
  struct Slot {
    Value value;
    bool live = false;
  };
  std::vector<Slot> slots_;
  std::vector<Handle> free_list_;
  size_t live_ = 0;
  size_t live_bytes_ = 0;
};

}  // namespace xenic::store

#endif  // SRC_STORE_LARGE_OBJECT_HEAP_H_
