#include "src/store/large_object_heap.h"

#include <cassert>

namespace xenic::store {

LargeObjectHeap::Handle LargeObjectHeap::Alloc(Value value) {
  live_++;
  live_bytes_ += value.size();
  if (!free_list_.empty()) {
    Handle h = free_list_.back();
    free_list_.pop_back();
    slots_[h].value = std::move(value);
    slots_[h].live = true;
    return h;
  }
  slots_.push_back(Slot{std::move(value), true});
  return slots_.size() - 1;
}

void LargeObjectHeap::Free(Handle h) {
  assert(Valid(h));
  live_--;
  live_bytes_ -= slots_[h].value.size();
  slots_[h].live = false;
  slots_[h].value.clear();
  slots_[h].value.shrink_to_fit();
  free_list_.push_back(h);
}

void LargeObjectHeap::Update(Handle h, Value value) {
  assert(Valid(h));
  live_bytes_ -= slots_[h].value.size();
  live_bytes_ += value.size();
  slots_[h].value = std::move(value);
}

const Value& LargeObjectHeap::Get(Handle h) const {
  assert(Valid(h));
  return slots_[h].value;
}

bool LargeObjectHeap::Valid(Handle h) const { return h < slots_.size() && slots_[h].live; }

}  // namespace xenic::store
