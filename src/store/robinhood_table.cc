#include "src/store/robinhood_table.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace xenic::store {

namespace {
// Dm = 0 means "unlimited": displacement is then bounded only by the uint16
// field; real occupancies keep probes in the tens of slots.
constexpr uint16_t kUnlimitedDisp = 0xFFFF;
}  // namespace

RobinhoodTable::RobinhoodTable(const Options& options)
    : capacity_(size_t{1} << options.capacity_log2),
      mask_(capacity_ - 1),
      value_size_(options.value_size),
      large_values_(options.value_size > kInlineValueLimit),
      inline_area_(large_values_ ? sizeof(LargeObjectHeap::Handle) : options.value_size),
      slot_size_(sizeof(SlotHeader) + inline_area_),
      max_displacement_(options.max_displacement == 0 ? kUnlimitedDisp : options.max_displacement),
      segment_slots_(options.segment_slots),
      num_segments_((capacity_ + options.segment_slots - 1) / options.segment_slots),
      data_(new uint8_t[capacity_ * slot_size_]()),
      overflow_(num_segments_),
      seg_max_disp_(num_segments_, 0) {
  assert(options.segment_slots > 0);
}

RobinhoodTable::Element RobinhoodTable::LoadElement(size_t slot) const {
  Element e;
  e.header = Header(slot);
  e.value_area.assign(SlotPtr(slot) + sizeof(SlotHeader), SlotPtr(slot) + slot_size_);
  return e;
}

void RobinhoodTable::StoreElement(size_t slot, const Element& e, uint16_t disp) {
  SlotHeader h = e.header;
  h.disp = disp;
  WriteHeader(slot, h);
  std::memcpy(SlotPtr(slot) + sizeof(SlotHeader), e.value_area.data(), inline_area_);
  NoteDisp(h.key, disp);
  if (swap_step_hook_) {
    swap_step_hook_();
  }
}

void RobinhoodTable::ClearSlot(size_t slot) {
  SlotHeader h{};
  WriteHeader(slot, h);
}

uint16_t RobinhoodTable::EncodeValueArea(const Value& value, std::vector<uint8_t>& area) {
  area.assign(inline_area_, 0);
  if (large_values_) {
    LargeObjectHeap::Handle handle = heap_.Alloc(value);
    std::memcpy(area.data(), &handle, sizeof(handle));
    return kSlotOccupied | kSlotLargeValue;
  }
  std::memcpy(area.data(), value.data(), std::min(value.size(), inline_area_));
  return kSlotOccupied;
}

void RobinhoodTable::FreeSlotPayload(size_t slot) {
  const SlotHeader h = Header(slot);
  if ((h.flags & kSlotLargeValue) != 0) {
    SlotView view(SlotPtr(slot), inline_area_);
    heap_.Free(view.large_handle());
  }
}

Value RobinhoodTable::DecodeValue(const SlotView& view) const {
  if (view.large_value()) {
    return heap_.Get(view.large_handle());
  }
  return Value(view.value_bytes(), view.value_bytes() + value_size_);
}

void RobinhoodTable::NoteDisp(Key key, uint16_t disp) {
  const size_t seg = SegmentOfKey(key);
  seg_max_disp_[seg] = std::max(seg_max_disp_[seg], disp);
}

std::optional<size_t> RobinhoodTable::FindSlot(Key key) const {
  const size_t home = HomeSlot(key);
  size_t pos = home;
  for (uint16_t d = 0; d < max_displacement_; ++d) {
    const SlotHeader h = Header(pos);
    if ((h.flags & kSlotOccupied) == 0) {
      return std::nullopt;
    }
    if (h.key == key) {
      return pos;
    }
    pos = Advance(pos);
    if (pos == home) {
      break;  // wrapped the whole table
    }
  }
  return std::nullopt;
}

std::optional<size_t> RobinhoodTable::FindOverflow(Key key, size_t& segment_out) const {
  const size_t seg = SegmentOfKey(key);
  const auto& bucket = overflow_[seg];
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (bucket[i].key == key) {
      segment_out = seg;
      return i;
    }
  }
  return std::nullopt;
}

std::optional<LookupResult> RobinhoodTable::Lookup(Key key) const {
  if (auto slot = FindSlot(key)) {
    SlotView view(SlotPtr(*slot), inline_area_);
    return LookupResult{DecodeValue(view), view.seq()};
  }
  size_t seg = 0;
  if (auto idx = FindOverflow(key, seg)) {
    const auto& e = overflow_[seg][*idx];
    return LookupResult{e.value, e.seq};
  }
  return std::nullopt;
}

std::optional<Seq> RobinhoodTable::GetSeq(Key key) const {
  if (auto slot = FindSlot(key)) {
    return Header(*slot).seq;
  }
  size_t seg = 0;
  if (auto idx = FindOverflow(key, seg)) {
    return overflow_[seg][*idx].seq;
  }
  return std::nullopt;
}

std::vector<Key> RobinhoodTable::Keys() const {
  std::vector<Key> out;
  out.reserve(size());
  for (size_t s = 0; s < capacity_; ++s) {
    if (Occupied(s)) {
      out.push_back(Header(s).key);
    }
  }
  for (const auto& bucket : overflow_) {
    for (const auto& e : bucket) {
      out.push_back(e.key);
    }
  }
  return out;
}

Status RobinhoodTable::Insert(Key key, const Value& value, Seq seq) {
  if (Contains(key)) {
    return Status::AlreadyExists();
  }
  return InsertInternal(key, value, seq);
}

Status RobinhoodTable::InsertInternal(Key key, const Value& value, Seq seq) {
  if (size_table_ == capacity_ && max_displacement_ == kUnlimitedDisp) {
    return Status::Capacity("table full");
  }

  const size_t home = HomeSlot(key);

  // Phase 1: read-only probe collecting the swap chain. `carried_home`
  // tracks the home of the element currently being carried so the overflow
  // terminal files it under the right segment.
  std::vector<size_t> chain;
  size_t pos = home;
  size_t carried_home = home;
  uint16_t carried_disp = 0;
  bool to_overflow = false;
  size_t probes = 0;

  while (true) {
    if (carried_disp >= max_displacement_) {
      to_overflow = true;
      break;
    }
    const SlotHeader h = Header(pos);
    ++probes;
    if ((h.flags & kSlotOccupied) == 0) {
      break;  // empty terminal at pos
    }
    if (h.disp < carried_disp) {
      chain.push_back(pos);
      carried_home = (pos - h.disp) & mask_;
      carried_disp = h.disp;
    }
    pos = Advance(pos);
    ++carried_disp;
  }
  total_probe_slots_ += probes;
  total_swaps_ += chain.size();

  // Build the new element (allocates in the heap for large-value tables).
  Element fresh;
  fresh.header.key = key;
  fresh.header.seq = seq;
  fresh.header.disp = 0;
  fresh.header.flags = EncodeValueArea(value, fresh.value_area);

  // Phase 2: apply from the terminal backwards (the copy list). Each move
  // writes the destination before the source slot is overwritten by the
  // previous element in the chain, so a concurrent DMA region read always
  // finds every committed key (paper: DMA-consistent swapping).
  if (to_overflow) {
    // The carried element (last displaced resident, or the fresh element
    // when no swap happened) is appended to its home segment's overflow.
    if (chain.empty()) {
      overflow_[SegmentOfSlot(home)].push_back(OverflowEntry{key, seq, value});
      size_overflow_++;
      if (swap_step_hook_) {
        swap_step_hook_();
      }
      return Status::Ok();
    }
    const size_t last = chain.back();
    Element displaced = LoadElement(last);
    SlotView view(SlotPtr(last), inline_area_);
    Value displaced_value = DecodeValue(view);
    if (view.large_value()) {
      heap_.Free(view.large_handle());
    }
    overflow_[SegmentOfSlot(carried_home)].push_back(
        OverflowEntry{displaced.header.key, displaced.header.seq, std::move(displaced_value)});
    size_overflow_++;
    if (swap_step_hook_) {
      swap_step_hook_();
    }
    // Shift the remaining chain: element at chain[i-1] moves into chain[i].
    for (size_t i = chain.size() - 1; i > 0; --i) {
      Element moving = LoadElement(chain[i - 1]);
      const size_t moving_home = (chain[i - 1] - moving.header.disp) & mask_;
      StoreElement(chain[i], moving, static_cast<uint16_t>((chain[i] - moving_home) & mask_));
    }
    StoreElement(chain.front(), fresh, static_cast<uint16_t>((chain.front() - home) & mask_));
    // Note: size_table_ unchanged (one element entered the table, one left
    // to overflow).
    return Status::Ok();
  }

  // Empty terminal at `pos`.
  size_t dest = pos;
  for (size_t i = chain.size(); i > 0; --i) {
    Element moving = LoadElement(chain[i - 1]);
    const size_t moving_home = (chain[i - 1] - moving.header.disp) & mask_;
    StoreElement(dest, moving, static_cast<uint16_t>((dest - moving_home) & mask_));
    dest = chain[i - 1];
  }
  StoreElement(dest, fresh, static_cast<uint16_t>((dest - home) & mask_));
  size_table_++;
  return Status::Ok();
}

Status RobinhoodTable::Update(Key key, const Value& value) {
  if (auto slot = FindSlot(key)) {
    SlotHeader h = Header(*slot);
    if ((h.flags & kSlotLargeValue) != 0) {
      SlotView view(SlotPtr(*slot), inline_area_);
      heap_.Update(view.large_handle(), value);
    } else {
      std::memcpy(SlotPtr(*slot) + sizeof(SlotHeader), value.data(),
                  std::min(value.size(), inline_area_));
    }
    h.seq++;
    WriteHeader(*slot, h);
    return Status::Ok();
  }
  size_t seg = 0;
  if (auto idx = FindOverflow(key, seg)) {
    auto& e = overflow_[seg][*idx];
    e.value = value;
    e.seq++;
    return Status::Ok();
  }
  return Status::NotFound();
}

Status RobinhoodTable::Apply(Key key, const Value& value, Seq seq) {
  if (auto slot = FindSlot(key)) {
    SlotHeader h = Header(*slot);
    if ((h.flags & kSlotLargeValue) != 0) {
      SlotView view(SlotPtr(*slot), inline_area_);
      heap_.Update(view.large_handle(), value);
    } else {
      std::memcpy(SlotPtr(*slot) + sizeof(SlotHeader), value.data(),
                  std::min(value.size(), inline_area_));
    }
    h.seq = seq;
    WriteHeader(*slot, h);
    return Status::Ok();
  }
  size_t seg = 0;
  if (auto idx = FindOverflow(key, seg)) {
    auto& e = overflow_[seg][*idx];
    e.value = value;
    e.seq = seq;
    return Status::Ok();
  }
  return InsertInternal(key, value, seq);
}

Status RobinhoodTable::Erase(Key key) {
  size_t seg = 0;
  if (auto idx = FindOverflow(key, seg)) {
    overflow_[seg].erase(overflow_[seg].begin() + static_cast<ptrdiff_t>(*idx));
    size_overflow_--;
    return Status::Ok();
  }
  auto slot = FindSlot(key);
  if (!slot) {
    return Status::NotFound();
  }
  const size_t s = *slot;
  const uint16_t old_disp = Header(s).disp;
  FreeSlotPayload(s);
  ClearSlot(s);
  size_table_--;

  // Try to pull a qualifying overflow element over the hole. An element
  // with home h qualifies when (a) its displacement at s stays within Dm,
  // (b) it is at least as displaced as the deleted element was (so other
  // keys' probe-path invariants cannot weaken), and (c) every slot on its
  // probe path [h, s) is occupied with disp(t) >= t - h (so the element
  // itself stays findable and future backward shifts stay safe).
  const size_t span = std::min<size_t>(max_displacement_, capacity_);
  const size_t first_seg = SegmentOfSlot((s - (span - 1)) & mask_);
  const size_t seg_count =
      size_overflow_ == 0 ? 0 : (span + segment_slots_ - 1) / segment_slots_ + 1;
  for (size_t k = 0; k < seg_count; ++k) {
    const size_t cand_seg = (first_seg + k) % num_segments_;
    auto& bucket = overflow_[cand_seg];
    for (size_t i = 0; i < bucket.size(); ++i) {
      const size_t h = HomeSlot(bucket[i].key);
      const auto d = static_cast<uint16_t>((s - h) & mask_);
      if (d >= max_displacement_ || d < old_disp) {
        continue;
      }
      bool path_ok = true;
      size_t t = h;
      for (uint16_t pd = 0; pd < d; ++pd, t = Advance(t)) {
        const SlotHeader th = Header(t);
        if ((th.flags & kSlotOccupied) == 0 || th.disp < pd) {
          path_ok = false;
          break;
        }
      }
      if (!path_ok) {
        continue;
      }
      // Re-insert the overflow entry at the hole.
      Element pulled;
      pulled.header.key = bucket[i].key;
      pulled.header.seq = bucket[i].seq;
      pulled.header.flags = EncodeValueArea(bucket[i].value, pulled.value_area);
      StoreElement(s, pulled, d);
      bucket.erase(bucket.begin() + static_cast<ptrdiff_t>(i));
      size_overflow_--;
      size_table_++;
      return Status::Ok();
    }
  }

  // Backward shift: move each following displaced element one slot closer
  // to its home until an empty slot or a disp-0 element ends the run.
  size_t hole = s;
  size_t t = Advance(s);
  while (t != s) {
    const SlotHeader th = Header(t);
    if ((th.flags & kSlotOccupied) == 0 || th.disp == 0) {
      break;
    }
    Element moving = LoadElement(t);
    StoreElement(hole, moving, static_cast<uint16_t>(th.disp - 1));
    ClearSlot(t);
    hole = t;
    t = Advance(t);
  }
  return Status::Ok();
}

void RobinhoodTable::TightenHints() {
  std::fill(seg_max_disp_.begin(), seg_max_disp_.end(), 0);
  for (size_t slot = 0; slot < capacity_; ++slot) {
    const SlotHeader h = Header(slot);
    if ((h.flags & kSlotOccupied) != 0) {
      const size_t home = (slot - h.disp) & mask_;
      const size_t seg = SegmentOfSlot(home);
      seg_max_disp_[seg] = std::max(seg_max_disp_[seg], h.disp);
    }
  }
}

void RobinhoodTable::ReadRegion(size_t start_slot, size_t count, std::vector<uint8_t>& out) const {
  count = std::min(count, capacity_);
  out.resize(count * slot_size_);
  const size_t first = std::min(count, capacity_ - (start_slot & mask_));
  std::memcpy(out.data(), SlotPtr(start_slot & mask_), first * slot_size_);
  if (first < count) {
    std::memcpy(out.data() + first * slot_size_, SlotPtr(0), (count - first) * slot_size_);
  }
}

std::optional<size_t> RobinhoodTable::FindInRegion(const std::vector<uint8_t>& region,
                                                   size_t region_start, Key key) const {
  (void)region_start;
  const size_t slots = region.size() / slot_size_;
  for (size_t i = 0; i < slots; ++i) {
    SlotView view(region.data() + i * slot_size_, inline_area_);
    if (view.occupied() && view.key() == key) {
      return i;
    }
  }
  return std::nullopt;
}

std::vector<RobinhoodTable::OverflowEntry> RobinhoodTable::ReadOverflow(size_t segment) const {
  return overflow_[segment];
}

}  // namespace xenic::store
