// Host-memory commit log (paper sections 4.1.1 and 4.2, step 5-7).
//
// The server-side NIC appends LOG (backup replication) and COMMIT (primary
// apply) records to a region of host memory reserved for logging; host-side
// Robinhood worker threads poll the log, apply write sets to the tables off
// the critical path, and acknowledge so the NIC can reclaim log space and
// unpin cache entries.
//
// The log is a bounded ring: Append fails with kCapacity when the host has
// fallen behind, which back-pressures the NIC (tested explicitly).

#ifndef SRC_STORE_COMMIT_LOG_H_
#define SRC_STORE_COMMIT_LOG_H_

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/store/types.h"

namespace xenic::store {

enum class LogRecordType : uint8_t {
  kLog = 0,     // backup replication record
  kCommit = 1,  // primary apply record
};

struct LogWrite {
  TableId table = 0;
  Key key = 0;
  Seq seq = 0;
  Value value;
  bool is_delete = false;
};

struct LogRecord {
  LogRecordType type = LogRecordType::kLog;
  TxnId txn = kNoTxn;
  uint64_t lsn = 0;  // assigned by Append
  // How many distinct written shards the transaction logged to. Recovery
  // uses this to decide global completeness: a transaction is committed iff
  // records for all `total_shards` shards reached every surviving backup.
  // Fits in the 24-byte record header, so ByteSize() is unchanged.
  uint32_t total_shards = 1;
  // Which shard (primary, under the map the coordinator used) this record
  // replicates. Recovery keys its applied-record index by (txn, shard) so
  // an applied-and-reclaimed record still counts as replication evidence.
  // Also header-resident: ByteSize() unchanged.
  NodeId shard = 0;
  std::vector<LogWrite> writes;

  // Serialized size, used for DMA-write cost accounting.
  size_t ByteSize() const {
    size_t n = 24;  // record header
    for (const auto& w : writes) {
      n += 24 + w.value.size();
    }
    return n;
  }
};

class CommitLog {
 public:
  explicit CommitLog(size_t capacity_records = 1 << 16) : capacity_(capacity_records) {}

  // NIC side: append a record via DMA write. kCapacity when the ring is full.
  Result<uint64_t> Append(LogRecord record);

  // Host side: next unapplied record, or nullptr when drained.
  const LogRecord* Peek() const;
  // Host side: mark the head record applied; it remains buffered until Ack.
  void PopApplied();

  // NIC side: reclaim all records with lsn < `upto` (host acked them).
  void Reclaim(uint64_t upto);

  // Recovery: snapshot every unreclaimed record (applied-but-unacked and
  // pending alike) -- the state a recovery scan reads from host memory.
  std::vector<LogRecord> Snapshot() const {
    return std::vector<LogRecord>(records_.begin(), records_.end());
  }

  bool Full() const { return records_.size() >= capacity_; }
  size_t pending() const { return records_.size() - applied_; }
  size_t unreclaimed() const { return records_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t next_lsn() const { return next_lsn_; }
  uint64_t appended() const { return next_lsn_; }

  // Quorum-applied truncation support (repl::LogApplier): a replicated kLog
  // record may only be applied -- and thus reclaimed -- once its
  // transaction's commit point is known. The coordinator's kLogCommit
  // notification (or recovery roll-forward) marks it; sweep-aborted
  // transactions are tombstoned at the Datastore level instead.
  void MarkStable(TxnId txn) { stable_.insert(txn); }
  bool IsStable(TxnId txn) const { return stable_.count(txn) > 0; }
  size_t stable_marks() const { return stable_.size(); }

 private:
  size_t capacity_;
  std::deque<LogRecord> records_;
  size_t applied_ = 0;  // records at the front that are applied but unacked
  uint64_t next_lsn_ = 0;
  uint64_t base_lsn_ = 0;
  // Transactions whose commit point is known (see MarkStable). Bounded by
  // the transactions of one run; only consulted by the stability-gated NIC
  // applier, so the default host-worker path never reads it.
  std::unordered_set<TxnId> stable_;
};

}  // namespace xenic::store

#endif  // SRC_STORE_COMMIT_LOG_H_
