// Xenic's host-side Robinhood hash table (paper section 4.1.2).
//
// A closed hash table with linear probing and Robinhood displacement
// balancing, modified for the SmartNIC context:
//
//  * Global displacement limit Dm. An insertion whose displacement would
//    reach Dm goes to the per-segment linked overflow bucket instead.
//  * Fixed-size segments; per-segment displacement bookkeeping backs the
//    NIC index's d_i location hints.
//  * DMA-consistent swapping: Robinhood insertion displaces existing
//    elements; the copy list is applied starting from the final (free)
//    position so a concurrent DMA region read never misses a committed key.
//    A hook runs between the individual copy steps so tests can interleave
//    reads at every intermediate state.
//  * Deletion pulls a qualifying overflow element over the hole when one
//    exists, otherwise performs a bounded backward shift (no tombstones).
//  * Values above kInlineValueLimit (256 B) live in a LargeObjectHeap; the
//    slot stores an 8-byte handle that the NIC dereferences with a second
//    single-object DMA read.
//
// The table is backed by one contiguous byte array that plays the role of
// host DRAM: ReadRegion() copies raw slot bytes exactly as the SmartNIC's
// DMA engine would, and the NIC index parses those bytes.

#ifndef SRC_STORE_ROBINHOOD_TABLE_H_
#define SRC_STORE_ROBINHOOD_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common/status.h"
#include "src/store/large_object_heap.h"
#include "src/store/types.h"

namespace xenic::store {

// On-"DRAM" slot header layout. Field order matters: the NIC parses raw
// bytes returned by DMA region reads via SlotView.
struct SlotHeader {
  Key key;        // 8 B
  uint16_t disp;  // displacement from home slot
  uint16_t flags; // kSlotOccupied | kSlotLargeValue
  Seq seq;        // version counter
};
static_assert(sizeof(SlotHeader) == 16);

constexpr uint16_t kSlotOccupied = 1u << 0;
constexpr uint16_t kSlotLargeValue = 1u << 1;

constexpr size_t kInlineValueLimit = 256;

// Read-only view over one slot inside a raw byte region.
class SlotView {
 public:
  SlotView(const uint8_t* bytes, size_t value_area) : bytes_(bytes), value_area_(value_area) {}

  SlotHeader header() const {
    SlotHeader h;
    std::memcpy(&h, bytes_, sizeof(h));
    return h;
  }
  bool occupied() const { return (header().flags & kSlotOccupied) != 0; }
  bool large_value() const { return (header().flags & kSlotLargeValue) != 0; }
  Key key() const { return header().key; }
  Seq seq() const { return header().seq; }
  uint16_t disp() const { return header().disp; }

  // Inline value bytes (for large values: the 8-byte heap handle).
  const uint8_t* value_bytes() const { return bytes_ + sizeof(SlotHeader); }
  size_t value_area() const { return value_area_; }
  LargeObjectHeap::Handle large_handle() const {
    LargeObjectHeap::Handle h;
    std::memcpy(&h, value_bytes(), sizeof(h));
    return h;
  }

 private:
  const uint8_t* bytes_;
  size_t value_area_;
};

// Result of a host-local lookup.
struct LookupResult {
  Value value;
  Seq seq = 0;
};

class RobinhoodTable {
 public:
  struct Options {
    size_t capacity_log2 = 16;  // 2^n slots
    size_t value_size = 64;     // logical object size in bytes
    uint16_t max_displacement = 16;   // Dm; 0 means unlimited
    uint16_t segment_slots = 8;       // slots per segment (NIC index granularity)
  };

  explicit RobinhoodTable(const Options& options);

  // --- Host-local operations (used by local transactions and the
  // Robinhood worker threads applying committed write sets). ---

  // Insert a new key. kAlreadyExists if present; kCapacity if full.
  Status Insert(Key key, const Value& value, Seq seq = 1);
  // Update an existing key in place and bump its version.
  Status Update(Key key, const Value& value);
  // Apply a committed write with an explicit version (log replay path).
  // Inserts the key if absent.
  Status Apply(Key key, const Value& value, Seq seq);
  // Remove a key (table slot or overflow).
  Status Erase(Key key);

  std::optional<LookupResult> Lookup(Key key) const;
  bool Contains(Key key) const { return Lookup(key).has_value(); }
  std::optional<Seq> GetSeq(Key key) const;

  // Every stored key, table slots in slot order then overflow buckets in
  // segment order (a deterministic full scan). Used by the failover state
  // transfer to enumerate a shard's entries; not on any hot path.
  std::vector<Key> Keys() const;

  // --- Geometry, used by the NIC index to plan DMA reads. ---

  size_t capacity() const { return capacity_; }
  size_t size() const { return size_table_ + size_overflow_; }
  size_t overflow_size() const { return size_overflow_; }
  double Occupancy() const { return static_cast<double>(size_table_) / capacity_; }
  size_t slot_size() const { return slot_size_; }
  size_t value_size() const { return value_size_; }
  bool large_values() const { return large_values_; }
  uint16_t max_displacement() const { return max_displacement_; }
  uint16_t segment_slots() const { return segment_slots_; }
  size_t num_segments() const { return num_segments_; }

  size_t HomeSlot(Key key) const { return HashKey(key) & mask_; }
  size_t SegmentOfSlot(size_t slot) const { return slot / segment_slots_; }
  size_t SegmentOfKey(Key key) const { return SegmentOfSlot(HomeSlot(key)); }

  // Host-tracked upper bound on the displacement of keys homed in `segment`.
  // Monotone under inserts; Erase leaves it stale-high (the NIC pays a
  // slightly larger read, never a missed key).
  uint16_t SegmentMaxDisp(size_t segment) const { return seg_max_disp_[segment]; }
  bool SegmentHasOverflow(size_t segment) const {
    return segment < overflow_.size() && !overflow_[segment].empty();
  }
  // Recompute exact per-segment displacement bounds (maintenance sweep).
  void TightenHints();

  // --- DMA-visible surface. ---

  // Copy `count` raw slots starting at `start_slot` (wrapping) into `out`.
  // This is what a SmartNIC DMA read of the table region returns.
  void ReadRegion(size_t start_slot, size_t count, std::vector<uint8_t>& out) const;

  // Parse a raw region (as returned by ReadRegion) searching for `key`.
  // `region_start` is the slot index of the first byte. Returns the offset
  // (in slots) of the match, or nullopt.
  std::optional<size_t> FindInRegion(const std::vector<uint8_t>& region, size_t region_start,
                                     Key key) const;
  SlotView ViewInRegion(const std::vector<uint8_t>& region, size_t slot_offset) const {
    return SlotView(region.data() + slot_offset * slot_size_, slot_size_ - sizeof(SlotHeader));
  }

  struct OverflowEntry {
    Key key;
    Seq seq;
    Value value;
  };
  // Snapshot of a segment's overflow bucket (what a DMA read of the
  // overflow page returns).
  std::vector<OverflowEntry> ReadOverflow(size_t segment) const;

  // Large-object heap (second-hop DMA reads).
  const LargeObjectHeap& heap() const { return heap_; }

  // Decode a value from a slot view, following large-object indirection.
  Value DecodeValue(const SlotView& view) const;

  // Test hook: runs between individual copy steps of a Robinhood insert so
  // tests can interleave DMA reads at every intermediate table state.
  void set_swap_step_hook(std::function<void()> hook) { swap_step_hook_ = std::move(hook); }

  // --- Stats ---
  uint64_t total_swaps() const { return total_swaps_; }
  uint64_t total_probe_slots() const { return total_probe_slots_; }

 private:
  uint8_t* SlotPtr(size_t slot) { return data_.get() + slot * slot_size_; }
  const uint8_t* SlotPtr(size_t slot) const { return data_.get() + slot * slot_size_; }
  SlotHeader Header(size_t slot) const {
    SlotHeader h;
    std::memcpy(&h, SlotPtr(slot), sizeof(h));
    return h;
  }
  void WriteHeader(size_t slot, const SlotHeader& h) { std::memcpy(SlotPtr(slot), &h, sizeof(h)); }
  bool Occupied(size_t slot) const { return (Header(slot).flags & kSlotOccupied) != 0; }
  size_t Advance(size_t slot) const { return (slot + 1) & mask_; }

  // Write a full element into a slot (header + inline value area).
  struct Element {
    SlotHeader header;
    std::vector<uint8_t> value_area;  // slot_size - sizeof(SlotHeader) bytes
  };
  Element LoadElement(size_t slot) const;
  void StoreElement(size_t slot, const Element& e, uint16_t disp);
  void ClearSlot(size_t slot);

  // Encode a logical value into a slot's inline area, allocating in the
  // heap when the table uses large values. Returns flags to set.
  uint16_t EncodeValueArea(const Value& value, std::vector<uint8_t>& area);
  void FreeSlotPayload(size_t slot);

  // Find the table slot holding `key`, if any.
  std::optional<size_t> FindSlot(Key key) const;
  std::optional<size_t> FindOverflow(Key key, size_t& segment_out) const;

  void NoteDisp(Key key, uint16_t disp);

  Status InsertInternal(Key key, const Value& value, Seq seq);

  size_t capacity_;
  size_t mask_;
  size_t value_size_;
  bool large_values_;
  size_t inline_area_;  // bytes of value area per slot
  size_t slot_size_;
  uint16_t max_displacement_;
  uint16_t segment_slots_;
  size_t num_segments_;

  std::unique_ptr<uint8_t[]> data_;
  std::vector<std::vector<OverflowEntry>> overflow_;
  std::vector<uint16_t> seg_max_disp_;
  LargeObjectHeap heap_;

  size_t size_table_ = 0;
  size_t size_overflow_ = 0;
  uint64_t total_swaps_ = 0;
  uint64_t total_probe_slots_ = 0;
  std::function<void()> swap_step_hook_;
};

}  // namespace xenic::store

#endif  // SRC_STORE_ROBINHOOD_TABLE_H_
