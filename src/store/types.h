// Core identifier and value types shared by the data store and protocols.

#ifndef SRC_STORE_TYPES_H_
#define SRC_STORE_TYPES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace xenic::store {

using Key = uint64_t;
using Seq = uint32_t;    // per-object version counter
using TableId = uint16_t;
using NodeId = uint32_t;
using TxnId = uint64_t;  // (node index << 40) | sequence number

constexpr TxnId kNoTxn = 0;

// Value bytes. Values are small (4-660 B in the paper's workloads); a
// vector keeps the code simple and the copies honest (the simulator moves
// real bytes on every modeled DMA).
using Value = std::vector<uint8_t>;

inline Value MakeValue(size_t size, uint8_t fill) { return Value(size, fill); }

// Encode a uint64 into the first 8 bytes of a value (workload payloads).
inline void PutU64(Value& v, size_t offset, uint64_t x) {
  std::memcpy(v.data() + offset, &x, sizeof(x));
}
inline uint64_t GetU64(const Value& v, size_t offset) {
  uint64_t x = 0;
  std::memcpy(&x, v.data() + offset, sizeof(x));
  return x;
}
inline void PutI64(Value& v, size_t offset, int64_t x) {
  PutU64(v, offset, static_cast<uint64_t>(x));
}
inline int64_t GetI64(const Value& v, size_t offset) {
  return static_cast<int64_t>(GetU64(v, offset));
}

// Hash used for table placement. Must match between the host table and the
// NIC index (the NIC plans DMA reads from the key's home slot).
inline uint64_t HashKey(Key key) { return ScrambleKey(key); }

// Build a transaction id from node index and per-node sequence.
inline TxnId MakeTxnId(NodeId node, uint64_t seq) {
  return (static_cast<TxnId>(node + 1) << 40) | (seq & ((1ull << 40) - 1));
}
inline NodeId TxnNode(TxnId id) { return static_cast<NodeId>(id >> 40) - 1; }

}  // namespace xenic::store

#endif  // SRC_STORE_TYPES_H_
