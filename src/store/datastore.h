// Datastore: one node's shard of the replicated database.
//
// Holds the host-side Robinhood tables (all key-value objects live here, in
// "host DRAM"), the per-table SmartNIC caching indexes (in "NIC DRAM"), and
// the host-memory commit log. The transaction engines operate exclusively
// through this facade; the same instance serves as primary for one shard
// and backup for others (replica sets are decided by the cluster layer).

#ifndef SRC_STORE_DATASTORE_H_
#define SRC_STORE_DATASTORE_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <set>
#include <unordered_set>
#include <utility>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/store/commit_log.h"
#include "src/store/nic_index.h"
#include "src/store/robinhood_table.h"
#include "src/store/types.h"

namespace xenic::store {

struct TableSpec {
  TableId id = 0;
  std::string name;
  size_t capacity_log2 = 16;
  size_t value_size = 64;
  uint16_t max_displacement = 16;  // 0 = unlimited
  uint16_t segment_slots = 8;
};

// Per-key feedback produced when the host applies a log record; piggybacked
// on host-to-NIC traffic so the NIC can unpin cache entries and refresh its
// d_i hints.
struct ApplyAck {
  TableId table = 0;
  Key key = 0;
  uint16_t segment_disp = 0;
  bool has_overflow = false;
};

class Datastore {
 public:
  Datastore(const std::vector<TableSpec>& specs, const NicIndex::Options& nic_options,
            size_t log_capacity_records = 1 << 16);

  RobinhoodTable& table(TableId id) { return *tables_.at(id); }
  const RobinhoodTable& table(TableId id) const { return *tables_.at(id); }
  NicIndex& index(TableId id) { return *indexes_.at(id); }
  const NicIndex& index(TableId id) const { return *indexes_.at(id); }
  CommitLog& log() { return log_; }
  size_t num_tables() const { return tables_.size(); }

  // Bulk-load helper (database population); keeps NIC hints in sync.
  Status Load(TableId table, Key key, const Value& value, Seq seq = 1);

  // NIC side: append a record to the host log, maintaining the host's
  // pending-write index (the log lives in host memory, so host readers can
  // see committed-but-unapplied writes -- see FreshLookup).
  Result<uint64_t> Append(LogRecord record);

  // Host-local read that observes the freshest committed state: the newest
  // pending log write for the key if one exists, else the table. Local
  // transactions use this so the deferred worker apply can never make them
  // read stale data (which would fail NIC-side validation spuriously).
  std::optional<LookupResult> FreshLookup(TableId table, Key key) const;
  std::optional<Seq> FreshSeq(TableId table, Key key) const;

  // Remove a record's writes from the pending index (call after applying).
  void ClearPending(const LogRecord& record);
  size_t pending_writes() const { return pending_.size(); }

  // Host worker: apply the next pending log record to the tables. Returns
  // the acks to feed back to the NIC (empty when the log is drained).
  std::vector<ApplyAck> ApplyNext();

  // Apply one record directly (recovery replay path).
  std::vector<ApplyAck> ApplyRecord(const LogRecord& record);

  // Recovery/abort: mark `txn`'s log records dead on this node. Existing
  // records stay buffered (the ring's lsn accounting is untouched) but their
  // writes are dropped from the pending index and must not be applied by
  // workers; late-arriving appends for the txn are swallowed. Used when an
  // epoch change aborts a transaction whose LOG records were already (or are
  // still being) replicated -- without this a surviving backup could apply a
  // write that the coordinator aborted.
  void TombstoneTxn(TxnId txn);
  bool IsTombstoned(TxnId txn) const { return tombstoned_.count(txn) > 0; }

  // Durable applied-record index. A worker noting (txn, shard) here records
  // that this node received, acked, and applied that shard's LOG record --
  // evidence that survives ring reclamation (a real log persists an
  // applied-id watermark as checkpoint metadata). Recovery reads it to tell
  // "applied and reclaimed" apart from "never arrived": without it, a
  // committed transaction whose record was reclaimed on every replica of
  // one shard looks incomplete and gets discarded, resurrecting the old
  // version of its writes on the promoted primary (a lost update).
  void NoteLogApplied(TxnId txn, NodeId shard) { applied_log_.emplace(txn, shard); }
  bool HasAppliedLog(TxnId txn, NodeId shard) const {
    return applied_log_.count({txn, shard}) > 0;
  }
  // Shards of `txn` whose records this node applied, in shard order.
  std::vector<NodeId> AppliedShardsOf(TxnId txn) const {
    std::vector<NodeId> out;
    for (auto it = applied_log_.lower_bound({txn, 0});
         it != applied_log_.end() && it->first == txn; ++it) {
      out.push_back(it->second);
    }
    return out;
  }

  uint64_t records_applied() const { return records_applied_; }

 private:
  struct PendingWrite {
    uint64_t lsn;
    Seq seq;
    Value value;
    bool is_delete;
  };
  static uint64_t PendingKey(TableId table, Key key) {
    return (static_cast<uint64_t>(table) << 48) ^ key;
  }

  std::vector<std::unique_ptr<RobinhoodTable>> tables_;
  std::vector<std::unique_ptr<NicIndex>> indexes_;
  CommitLog log_;
  uint64_t records_applied_ = 0;
  // (table, key) -> stack of committed-but-unapplied writes, newest last.
  std::unordered_map<uint64_t, std::vector<PendingWrite>> pending_;
  // Transactions whose records must not be applied on this node (epoch
  // aborts). Only ever holds txns aborted across an epoch change, so it
  // stays small.
  std::unordered_set<TxnId> tombstoned_;
  // Applied LOG records, keyed (txn, shard); see NoteLogApplied. Ordered so
  // AppliedShardsOf can range-scan one transaction deterministically.
  std::set<std::pair<TxnId, NodeId>> applied_log_;
};

}  // namespace xenic::store

#endif  // SRC_STORE_DATASTORE_H_
