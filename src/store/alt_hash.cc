#include "src/store/alt_hash.h"

#include <cassert>

namespace xenic::store {

HopscotchTable::HopscotchTable(const Options& options)
    : capacity_(size_t{1} << options.capacity_log2),
      mask_(capacity_ - 1),
      neighborhood_(options.neighborhood),
      object_size_(options.object_size),
      slots_(capacity_),
      hop_info_(capacity_, 0),
      overflow_(capacity_) {
  assert(neighborhood_ > 0 && neighborhood_ <= 32);
}

Status HopscotchTable::Insert(Key key, Seq seq) {
  if (Contains(key)) {
    return Status::AlreadyExists();
  }
  const size_t home = Home(key);

  // Linear probe for a free slot.
  size_t free = home;
  size_t dist = 0;
  while (dist < capacity_ && slots_[free].occupied) {
    free = (free + 1) & mask_;
    ++dist;
  }
  if (dist >= capacity_) {
    return Status::Capacity("table full");
  }

  // Hopscotch displacement: while the free slot is outside the home
  // neighborhood, move it closer by relocating an earlier key that is
  // still within its own neighborhood after the move.
  while (dist >= neighborhood_) {
    bool moved = false;
    // Consider candidate slots up to H-1 before the free slot.
    for (size_t back = neighborhood_ - 1; back >= 1; --back) {
      const size_t cand = (free - back) & mask_;
      if (!slots_[cand].occupied) {
        continue;
      }
      const size_t cand_home = Home(slots_[cand].key);
      const size_t new_dist = (free - cand_home) & mask_;
      if (new_dist < neighborhood_) {
        // Relocate candidate into the free slot.
        slots_[free] = slots_[cand];
        slots_[cand].occupied = false;
        const size_t old_dist = (cand - cand_home) & mask_;
        hop_info_[cand_home] &= ~(1u << old_dist);
        hop_info_[cand_home] |= 1u << new_dist;
        free = cand;
        dist = (free - home) & mask_;
        moved = true;
        break;
      }
    }
    if (!moved) {
      // Stuck: spill to the home bucket's overflow chain (FaRM's second-
      // roundtrip case).
      overflow_[home].push_back(Slot{key, seq, true});
      overflow_count_++;
      size_++;
      return Status::Ok();
    }
  }

  slots_[free] = Slot{key, seq, true};
  hop_info_[home] |= 1u << dist;
  size_++;
  return Status::Ok();
}

bool HopscotchTable::Contains(Key key) const {
  RemoteLookupStats st;
  return RemoteLookup(key, &st).has_value();
}

std::optional<Seq> HopscotchTable::RemoteLookup(Key key, RemoteLookupStats* stats) const {
  const size_t home = Home(key);
  stats->roundtrips++;
  stats->objects_read += neighborhood_;
  stats->bytes_read += static_cast<uint64_t>(neighborhood_) * object_size_;
  for (size_t i = 0; i < neighborhood_; ++i) {
    const Slot& s = slots_[(home + i) & mask_];
    if (s.occupied && s.key == key) {
      stats->found = true;
      return s.seq;
    }
  }
  if (!overflow_[home].empty()) {
    stats->roundtrips++;
    stats->objects_read += static_cast<uint32_t>(overflow_[home].size());
    stats->bytes_read += overflow_[home].size() * object_size_;
    for (const Slot& s : overflow_[home]) {
      if (s.key == key) {
        stats->found = true;
        return s.seq;
      }
    }
  }
  return std::nullopt;
}

ChainedTable::ChainedTable(const Options& options)
    : num_buckets_((size_t{1} << options.capacity_log2) / options.bucket_slots),
      mask_(0),
      bucket_slots_(options.bucket_slots),
      object_size_(options.object_size) {
  // Round bucket count down to a power of two for mask addressing.
  size_t n = 1;
  while (n * 2 <= num_buckets_) {
    n *= 2;
  }
  num_buckets_ = n;
  mask_ = n - 1;
  buckets_.resize(num_buckets_);
  for (auto& b : buckets_) {
    b.slots.resize(bucket_slots_);
  }
}

Status ChainedTable::Insert(Key key, Seq seq) {
  if (Contains(key)) {
    return Status::AlreadyExists();
  }
  // Walk by (is_main, index) so appending to chain_pool_ cannot invalidate
  // the cursor.
  bool in_main = true;
  size_t idx = HomeBucket(key);
  while (true) {
    Bucket& b = in_main ? buckets_[idx] : chain_pool_[idx];
    for (auto& s : b.slots) {
      if (!s.occupied) {
        s = Slot{key, seq, true};
        size_++;
        return Status::Ok();
      }
    }
    if (b.next < 0) {
      const auto new_idx = static_cast<int32_t>(chain_pool_.size());
      chain_pool_.emplace_back();
      chain_pool_.back().slots.resize(bucket_slots_);
      chain_pool_.back().slots[0] = Slot{key, seq, true};
      chained_buckets_++;
      size_++;
      // Re-resolve after potential reallocation before linking.
      Bucket& prev = in_main ? buckets_[idx] : chain_pool_[idx];
      prev.next = new_idx;
      return Status::Ok();
    }
    in_main = false;
    idx = static_cast<size_t>(b.next);
  }
}

bool ChainedTable::Contains(Key key) const {
  RemoteLookupStats st;
  return RemoteLookup(key, &st).has_value();
}

std::optional<Seq> ChainedTable::RemoteLookup(Key key, RemoteLookupStats* stats) const {
  const Bucket* b = &buckets_[HomeBucket(key)];
  while (true) {
    stats->roundtrips++;
    stats->objects_read += bucket_slots_;
    stats->bytes_read += static_cast<uint64_t>(bucket_slots_) * object_size_;
    for (const auto& s : b->slots) {
      if (s.occupied && s.key == key) {
        stats->found = true;
        return s.seq;
      }
    }
    if (b->next < 0) {
      return std::nullopt;
    }
    b = &chain_pool_[b->next];
  }
}

}  // namespace xenic::store
