#include "src/store/nic_index.h"

#include <algorithm>
#include <cassert>

namespace xenic::store {

NicIndex::NicIndex(const RobinhoodTable* host, const Options& options)
    : host_(host),
      options_(options),
      dm_(host->max_displacement()),
      entries_(host->num_segments()) {}

NicIndex::CachedObject* NicIndex::Find(Key key) {
  IndexEntry& entry = entries_[host_->SegmentOfKey(key)];
  for (auto& obj : entry.objects) {
    if (obj.valid && obj.key == key) {
      return &obj;
    }
  }
  return nullptr;
}

const NicIndex::CachedObject* NicIndex::Find(Key key) const {
  return const_cast<NicIndex*>(this)->Find(key);
}

NicIndex::CachedObject* NicIndex::Ensure(Key key) {
  if (CachedObject* existing = Find(key)) {
    return existing;
  }
  // Make room first so the freshly created slot cannot evict itself.
  EvictUntilWithinBudget();
  IndexEntry& entry = entries_[host_->SegmentOfKey(key)];
  CachedObject* slot = nullptr;
  for (auto& obj : entry.objects) {
    if (!obj.valid) {
      slot = &obj;
      break;
    }
  }
  if (slot == nullptr) {
    // Allocate another position; positions beyond `ways_per_entry` model
    // the entry's chained overflow pages.
    entry.objects.emplace_back();
    slot = &entry.objects.back();
  }
  *slot = CachedObject{};
  slot->key = key;
  slot->valid = true;
  cached_objects_++;
  cached_bytes_ += CostOf(*slot);
  return slot;
}

void NicIndex::Release(IndexEntry& entry, CachedObject& obj) {
  (void)entry;
  assert(obj.valid);
  cached_bytes_ -= CostOf(obj);
  cached_objects_--;
  obj = CachedObject{};
}

void NicIndex::EvictUntilWithinBudget() {
  if (options_.memory_budget == 0) {
    return;
  }
  size_t sweep = 0;
  const size_t max_sweep = 2 * entries_.size() + 16;
  while (cached_bytes_ > options_.memory_budget && sweep < max_sweep) {
    IndexEntry& entry = entries_[clock_segment_];
    if (clock_way_ >= entry.objects.size()) {
      clock_way_ = 0;
      clock_segment_ = (clock_segment_ + 1) % entries_.size();
      sweep++;
      continue;
    }
    CachedObject& obj = entry.objects[clock_way_];
    clock_way_++;
    if (!obj.valid || obj.pin_count > 0 || obj.lock_owner != kNoTxn) {
      continue;
    }
    if (obj.ref != 0) {
      obj.ref = 0;  // second-chance
      continue;
    }
    Release(entry, obj);
    evictions_++;
  }
}

std::optional<NicIndex::RemoteObject> NicIndex::LookupRemote(Key key, LookupStats* stats) {
  LookupStats local;
  LookupStats* st = stats != nullptr ? stats : &local;
  if (CachedObject* obj = Find(key); obj != nullptr && obj->has_value) {
    obj->ref = 1;
    st->cache_hit = true;
    st->found = true;
    return RemoteObject{obj->value, obj->seq, obj->lock_owner, true};
  }
  return MissPath(key, /*want_value=*/true, st);
}

std::optional<NicIndex::RemoteObject> NicIndex::ReadMetadata(Key key, LookupStats* stats) {
  LookupStats local;
  LookupStats* st = stats != nullptr ? stats : &local;
  if (CachedObject* obj = Find(key); obj != nullptr && (obj->has_value || obj->seq != 0)) {
    obj->ref = 1;
    st->cache_hit = true;
    st->found = true;
    return RemoteObject{Value{}, obj->seq, obj->lock_owner, true};
  }
  return MissPath(key, /*want_value=*/false, st);
}

std::optional<NicIndex::RemoteObject> NicIndex::MissPath(Key key, bool want_value,
                                                         LookupStats* st) {
  const size_t segment = host_->SegmentOfKey(key);
  IndexEntry& entry = entries_[segment];
  const size_t home = host_->HomeSlot(key);
  const size_t slot_size = host_->slot_size();

  // First DMA read: displacement range [0, d_hint + k], capped at Dm - 1.
  const uint32_t first_span = std::min<uint32_t>(
      static_cast<uint32_t>(entry.d_hint) + options_.hint_slack + 1, dm_);
  host_->ReadRegion(home, first_span, region_buf_);
  st->dma_reads++;
  st->objects_read += first_span;
  st->bytes_read += first_span * slot_size;

  // Completes a lookup that located the key at displacement `disp`, with
  // `view` pointing at the slot bytes inside the region just read.
  auto finish = [&](const SlotView& view, size_t disp) {
    RemoteObject out;
    out.seq = view.seq();
    if (want_value) {
      if (view.large_value()) {
        // Second hop: single-object DMA read from the large-object heap.
        out.value = host_->heap().Get(view.large_handle());
        st->dma_reads++;
        st->bytes_read += out.value.size();
      } else {
        out.value = host_->DecodeValue(view);
      }
    }
    entry.d_hint = std::max<uint16_t>(entry.d_hint, static_cast<uint16_t>(disp));
    if (CachedObject* meta = Find(key)) {
      out.lock_owner = meta->lock_owner;
    }
    if (options_.cache_values && want_value) {
      CachedObject* obj = Ensure(key);
      obj->seq = out.seq;
      obj->has_value = true;
      cached_bytes_ -= CostOf(*obj);
      obj->value = out.value;
      cached_bytes_ += CostOf(*obj);
      obj->ref = 1;
      EvictUntilWithinBudget();
    }
    st->found = true;
    return out;
  };

  if (auto offset = host_->FindInRegion(region_buf_, home, key)) {
    return finish(host_->ViewInRegion(region_buf_, *offset), *offset);
  }
  // Stale-hint case: a concurrent host insert moved the key past
  // d_hint + k. With a displacement limit, one second adjacent read covers
  // the remaining range up to Dm; without a limit, read adjacent chunks
  // until the key or an empty slot (a Robinhood probe run cannot continue
  // past an empty slot) appears.
  uint32_t scanned = first_span;
  bool hit_empty = false;
  {
    const size_t slots = region_buf_.size() / slot_size;
    for (size_t i = 0; i < slots; ++i) {
      if (!host_->ViewInRegion(region_buf_, i).occupied()) {
        hit_empty = true;
        break;
      }
    }
  }
  while (!hit_empty && scanned < dm_) {
    const uint32_t chunk =
        std::min<uint32_t>(dm_ - scanned, std::max<uint32_t>(first_span, 16));
    host_->ReadRegion(home + scanned, chunk, region_buf_);
    st->dma_reads++;
    st->objects_read += chunk;
    st->bytes_read += chunk * slot_size;
    if (auto off = host_->FindInRegion(region_buf_, home + scanned, key)) {
      return finish(host_->ViewInRegion(region_buf_, *off), *off + scanned);
    }
    const size_t slots = region_buf_.size() / slot_size;
    for (size_t i = 0; i < slots; ++i) {
      if (!host_->ViewInRegion(region_buf_, i).occupied()) {
        hit_empty = true;
        break;
      }
    }
    scanned += chunk;
  }

  // Not in the table region; consult the segment's overflow page when the
  // host side has one.
  if (entry.has_overflow || host_->SegmentHasOverflow(segment)) {
    auto bucket = host_->ReadOverflow(segment);
    st->dma_reads++;
    st->objects_read += static_cast<uint32_t>(bucket.size());
    for (const auto& e : bucket) {
      st->bytes_read += sizeof(SlotHeader) + e.value.size();
    }
    for (auto& e : bucket) {
      if (e.key == key) {
        RemoteObject out;
        out.seq = e.seq;
        if (want_value) {
          out.value = std::move(e.value);
        }
        if (CachedObject* meta = Find(key)) {
          out.lock_owner = meta->lock_owner;
        }
        st->found = true;
        return out;
      }
    }
  }
  return std::nullopt;
}

void NicIndex::AdmitOnLoad(Key key, const Value& value, Seq seq) {
  if (!options_.cache_values || !options_.admit_on_load) {
    return;
  }
  CachedObject* obj = Ensure(key);
  cached_bytes_ -= CostOf(*obj);
  obj->value = value;
  cached_bytes_ += CostOf(*obj);
  obj->has_value = true;
  obj->seq = seq;
  EvictUntilWithinBudget();
}

Status NicIndex::AcquireLock(Key key, TxnId txn) {
  CachedObject* obj = Ensure(key);
  if (obj->lock_owner != kNoTxn && obj->lock_owner != txn) {
    return Status::Aborted("lock held");
  }
  obj->lock_owner = txn;
  return Status::Ok();
}

void NicIndex::ReleaseLock(Key key, TxnId txn) {
  if (CachedObject* obj = Find(key)) {
    if (obj->lock_owner == txn) {
      obj->lock_owner = kNoTxn;
    }
  }
}

bool NicIndex::IsLocked(Key key) const {
  const CachedObject* obj = Find(key);
  return obj != nullptr && obj->lock_owner != kNoTxn;
}

TxnId NicIndex::LockOwner(Key key) const {
  const CachedObject* obj = Find(key);
  return obj != nullptr ? obj->lock_owner : kNoTxn;
}

void NicIndex::ApplyCommit(Key key, const Value& value, Seq seq) {
  CachedObject* obj = Ensure(key);
  cached_bytes_ -= CostOf(*obj);
  obj->value = value;
  cached_bytes_ += CostOf(*obj);
  obj->has_value = true;
  obj->seq = seq;
  obj->ref = 1;
  if (obj->pin_count == 0) {
    pinned_objects_++;
  }
  obj->pin_count++;
}

void NicIndex::OnHostApplied(Key key, uint16_t segment_disp, bool has_overflow) {
  if (CachedObject* obj = Find(key)) {
    if (obj->pin_count > 0) {
      obj->pin_count--;
      if (obj->pin_count == 0) {
        pinned_objects_--;
      }
    }
  }
  UpdateHint(host_->SegmentOfKey(key), segment_disp, has_overflow);
  EvictUntilWithinBudget();
}

void NicIndex::UpdateHint(size_t segment, uint16_t disp, bool has_overflow) {
  IndexEntry& entry = entries_[segment];
  entry.d_hint = std::max(entry.d_hint, std::min<uint16_t>(disp, dm_));
  entry.has_overflow = entry.has_overflow || has_overflow;
}

void NicIndex::SyncHintsFromHost() {
  for (size_t seg = 0; seg < entries_.size(); ++seg) {
    entries_[seg].d_hint = std::min<uint16_t>(host_->SegmentMaxDisp(seg), dm_);
    entries_[seg].has_overflow = host_->SegmentHasOverflow(seg);
  }
}

bool NicIndex::IsCached(Key key) const {
  const CachedObject* obj = Find(key);
  return obj != nullptr && obj->has_value;
}

void NicIndex::Invalidate(Key key) {
  if (CachedObject* obj = Find(key)) {
    if (obj->pin_count > 0) {
      // A pinned object is a committed value the host has not applied yet:
      // the NIC copy is the only fresh one, so it must survive every form
      // of eviction (the miss path DMA-reads the stale host table).
      return;
    }
    if (obj->has_value) {
      cached_bytes_ -= CostOf(*obj);
      obj->value.clear();
      obj->has_value = false;
      obj->seq = 0;
      cached_bytes_ += CostOf(*obj);
    }
    if (obj->lock_owner == kNoTxn && obj->pin_count == 0) {
      IndexEntry& entry = entries_[host_->SegmentOfKey(key)];
      Release(entry, *obj);
    }
  }
}

std::vector<NicIndex::CachedEntry> NicIndex::CachedEntries() const {
  std::vector<CachedEntry> out;
  for (const auto& entry : entries_) {
    for (const auto& obj : entry.objects) {
      if (obj.valid && obj.has_value) {
        out.push_back(CachedEntry{obj.key, obj.seq, &obj.value, obj.pin_count > 0,
                                  obj.lock_owner != kNoTxn});
      }
    }
  }
  return out;
}

std::vector<NicIndex::LockedKey> NicIndex::LockedKeys() const {
  std::vector<LockedKey> out;
  for (const auto& entry : entries_) {
    for (const auto& obj : entry.objects) {
      if (obj.valid && obj.lock_owner != kNoTxn) {
        out.push_back(LockedKey{obj.key, obj.lock_owner});
      }
    }
  }
  return out;
}

std::optional<Seq> NicIndex::CachedSeq(Key key) const {
  const CachedObject* obj = Find(key);
  if (obj == nullptr || (!obj->has_value && obj->seq == 0)) {
    return std::nullopt;
  }
  return obj->seq;
}

}  // namespace xenic::store
