#include "src/store/datastore.h"

#include <algorithm>
#include <cassert>

namespace xenic::store {

Datastore::Datastore(const std::vector<TableSpec>& specs, const NicIndex::Options& nic_options,
                     size_t log_capacity_records)
    : log_(log_capacity_records) {
  tables_.resize(specs.size());
  indexes_.resize(specs.size());
  for (const auto& spec : specs) {
    assert(spec.id < specs.size() && "table ids must be dense 0..n-1");
    RobinhoodTable::Options opts;
    opts.capacity_log2 = spec.capacity_log2;
    opts.value_size = spec.value_size;
    opts.max_displacement = spec.max_displacement;
    opts.segment_slots = spec.segment_slots;
    tables_[spec.id] = std::make_unique<RobinhoodTable>(opts);
    indexes_[spec.id] = std::make_unique<NicIndex>(tables_[spec.id].get(), nic_options);
  }
}

Status Datastore::Load(TableId table, Key key, const Value& value, Seq seq) {
  Status s = tables_.at(table)->Insert(key, value, seq);
  if (!s.ok()) {
    return s;
  }
  auto& t = *tables_[table];
  const size_t seg = t.SegmentOfKey(key);
  indexes_[table]->UpdateHint(seg, t.SegmentMaxDisp(seg), t.SegmentHasOverflow(seg));
  indexes_[table]->AdmitOnLoad(key, value, seq);
  return Status::Ok();
}

Result<uint64_t> Datastore::Append(LogRecord record) {
  if (IsTombstoned(record.txn)) {
    // Late-arriving record for a transaction the epoch change already
    // aborted: acknowledge (the sender's state is gone anyway) but never
    // buffer it where a worker could apply it.
    return Result<uint64_t>(log_.next_lsn());
  }
  // Only COMMIT records make writes visible to host readers at this node:
  // LOG records target the backup tables, which local transactions never
  // read. Index commit-record writes for FreshLookup.
  const bool index_pending = record.type == LogRecordType::kCommit;
  std::vector<LogWrite> writes;
  if (index_pending) {
    writes = record.writes;  // keep a copy; the record moves into the log
  }
  auto result = log_.Append(std::move(record));
  if (!result.ok()) {
    return result;
  }
  if (index_pending) {
    for (auto& w : writes) {
      if (w.table >= tables_.size()) {
        continue;  // workload-managed writes are not host-table state
      }
      pending_[PendingKey(w.table, w.key)].push_back(
          PendingWrite{*result, w.seq, std::move(w.value), w.is_delete});
    }
  }
  return result;
}

std::optional<LookupResult> Datastore::FreshLookup(TableId table, Key key) const {
  auto it = pending_.find(PendingKey(table, key));
  if (it != pending_.end() && !it->second.empty()) {
    const PendingWrite& w = it->second.back();
    if (w.is_delete) {
      return std::nullopt;
    }
    return LookupResult{w.value, w.seq};
  }
  return tables_.at(table)->Lookup(key);
}

std::optional<Seq> Datastore::FreshSeq(TableId table, Key key) const {
  auto it = pending_.find(PendingKey(table, key));
  if (it != pending_.end() && !it->second.empty()) {
    const PendingWrite& w = it->second.back();
    return w.is_delete ? std::optional<Seq>{} : std::optional<Seq>{w.seq};
  }
  return tables_.at(table)->GetSeq(key);
}

void Datastore::ClearPending(const LogRecord& record) {
  for (const auto& w : record.writes) {
    auto it = pending_.find(PendingKey(w.table, w.key));
    if (it == pending_.end()) {
      continue;
    }
    auto& stack = it->second;
    stack.erase(std::remove_if(stack.begin(), stack.end(),
                               [&](const PendingWrite& p) { return p.lsn == record.lsn; }),
                stack.end());
    if (stack.empty()) {
      pending_.erase(it);
    }
  }
}

std::vector<ApplyAck> Datastore::ApplyNext() {
  const LogRecord* record = log_.Peek();
  if (record == nullptr) {
    return {};
  }
  auto acks = ApplyRecord(*record);
  ClearPending(*record);
  log_.PopApplied();
  return acks;
}

std::vector<ApplyAck> Datastore::ApplyRecord(const LogRecord& record) {
  std::vector<ApplyAck> acks;
  if (IsTombstoned(record.txn)) {
    records_applied_++;  // consumed, writes dropped
    return acks;
  }
  acks.reserve(record.writes.size());
  for (const auto& w : record.writes) {
    if (w.table >= tables_.size()) {
      continue;  // workload-managed write: applied through the worker hook
    }
    auto& t = *tables_.at(w.table);
    if (w.is_delete) {
      t.Erase(w.key);  // NotFound tolerated: replayed record
    } else {
      Status s = t.Apply(w.key, w.value, w.seq);
      assert(s.ok());
      (void)s;
    }
    const size_t seg = t.SegmentOfKey(w.key);
    acks.push_back(ApplyAck{w.table, w.key, t.SegmentMaxDisp(seg), t.SegmentHasOverflow(seg)});
  }
  if (record.type == LogRecordType::kLog) {
    NoteLogApplied(record.txn, record.shard);
  }
  records_applied_++;
  return acks;
}

void Datastore::TombstoneTxn(TxnId txn) {
  if (!tombstoned_.insert(txn).second) {
    return;
  }
  // Drop already-buffered records' writes from the pending-read index so
  // FreshLookup stops serving the aborted values; the records themselves
  // stay in the ring (workers pop-and-skip them, keeping lsn accounting
  // intact).
  for (const auto& rec : log_.Snapshot()) {
    if (rec.txn == txn) {
      ClearPending(rec);
    }
  }
}

}  // namespace xenic::store
