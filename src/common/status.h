// Lightweight status / result types used across the Xenic codebase.
//
// We deliberately avoid exceptions on the data path (the NIC runtime and the
// simulator hot loops run millions of events per second); fallible operations
// return Status or Result<T> instead.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace xenic {

enum class StatusCode {
  kOk = 0,
  kNotFound,       // key or object absent
  kAlreadyExists,  // insertion conflict
  kAborted,        // transaction aborted (lock conflict / validation failure)
  kCapacity,       // structure full (table, cache, log)
  kInvalidArgument,
  kUnavailable,    // node or shard unreachable / recovering
  kInternal,
};

// Human-readable name for a status code.
constexpr std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kCapacity:
      return "CAPACITY";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// A status code plus an optional message. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  explicit Status(StatusCode code) : code_(code) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Capacity(std::string msg = "") {
    return Status(StatusCode::kCapacity, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace xenic

#endif  // SRC_COMMON_STATUS_H_
