// Aligned text-table output for benchmark harnesses.
//
// Benches print paper-style tables (Table 2, Table 3, figure series) to
// stdout; TablePrinter keeps the columns aligned and can also emit CSV for
// downstream plotting.

#ifndef SRC_COMMON_TABLE_PRINTER_H_
#define SRC_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xenic {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Fmt(double v, int precision = 2);
  static std::string Fmt(uint64_t v);
  static std::string FmtOps(double ops_per_sec);  // "1.19M", "232k"
  static std::string FmtUs(double ns);             // nanoseconds -> "12.3"

  // Render with a title, aligned columns, and a separator line.
  std::string Render(const std::string& title) const;
  std::string RenderCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xenic

#endif  // SRC_COMMON_TABLE_PRINTER_H_
