// Fixed-memory latency histogram with approximate percentiles.
//
// Buckets are arranged log2-major with linear sub-buckets, HdrHistogram-style,
// giving <= ~1.6% relative error with 64 sub-buckets per octave. Values are
// nanoseconds in practice but the histogram is unit-agnostic.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xenic {

class Histogram {
 public:
  Histogram();

  void Record(uint64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;

  // Approximate value at quantile q in [0, 1]. Returns 0 for empty histograms.
  uint64_t ValueAtQuantile(double q) const;

  uint64_t Median() const { return ValueAtQuantile(0.5); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }
  uint64_t P999() const { return ValueAtQuantile(0.999); }

  // Approximate count of recorded values greater than `value` (bucket-
  // midpoint granularity, the same resolution as the quantiles). The SLO
  // error-budget accounting counts threshold-exceeding events with this.
  uint64_t CountAbove(uint64_t value) const {
    uint64_t n = 0;
    VisitBuckets([&](uint64_t midpoint, uint64_t count) {
      if (midpoint > value) {
        n += count;
      }
    });
    return n;
  }

  // Invoke fn(bucket_midpoint, count) for each non-empty bucket in
  // ascending value order. Used by --latency-hist dumps.
  template <typename Fn>
  void VisitBuckets(Fn&& fn) const {
    for (size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != 0) {
        fn(BucketMidpoint(i), buckets_[i]);
      }
    }
  }

  // One-line summary, e.g. "n=1000 mean=12.3us p50=11us p99=40us max=80us".
  std::string Summary() const;

 private:
  static constexpr int kSubBucketBits = 6;  // 64 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;  // covers up to ~2^40 ns (~18 min)

  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketMidpoint(size_t index);

  std::vector<uint64_t> buckets_;
  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
};

}  // namespace xenic

#endif  // SRC_COMMON_HISTOGRAM_H_
