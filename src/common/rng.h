// Deterministic random number generation for simulation and workloads.
//
// All randomness in the repository flows through Rng so that any run is
// reproducible from its seed. The generator is xoshiro256**, which is fast
// enough for the simulator hot path and has no measurable bias for our uses.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xenic {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { Seed(seed); }

  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  uint64_t NextRange(uint64_t lo, uint64_t hi) {
    assert(hi >= lo);
    return lo + NextBounded(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Pick an index according to integer weights (sum > 0).
  size_t NextWeighted(const std::vector<uint32_t>& weights);

 private:
  uint64_t state_[4];
};

// Zipf-distributed generator over [0, n). Uses the rejection-inversion method
// of Hormann and Derflinger, which has O(1) sampling cost independent of n
// (important: Retwis draws from 6M keys with alpha = 0.5).
class ZipfGenerator {
 public:
  // alpha >= 0; alpha == 0 degenerates to uniform.
  ZipfGenerator(uint64_t n, double alpha);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
};

// SplitMix64-based hash, used to decorrelate sequential key ids before
// Zipf-ranked access (rank r maps to key ScrambleKey(r) so hot keys are
// spread across the table / cluster).
inline uint64_t ScrambleKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace xenic

#endif  // SRC_COMMON_RNG_H_
