#include "src/common/rng.h"

#include <cmath>

namespace xenic {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation. The retry loop rejects
  // only when the 128-bit product lands in the biased low fringe.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    const uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

size_t Rng::NextWeighted(const std::vector<uint32_t>& weights) {
  uint64_t total = 0;
  for (uint32_t w : weights) {
    total += w;
  }
  assert(total > 0);
  uint64_t pick = NextBounded(total);
  for (size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) {
      return i;
    }
    pick -= weights[i];
  }
  return weights.size() - 1;  // unreachable with sane weights
}

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  assert(n > 0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -alpha));
}

double ZipfGenerator::H(double x) const {
  if (alpha_ == 1.0) {
    return std::log(x);
  }
  return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
}

double ZipfGenerator::HInverse(double x) const {
  if (alpha_ == 1.0) {
    return std::exp(x);
  }
  return std::pow(1.0 + x * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (alpha_ <= 0.0) {
    return rng.NextBounded(n_);
  }
  // Rejection-inversion (Hormann & Derflinger 1996).
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    auto k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= H(kd + 0.5) - std::pow(kd, -alpha_)) {
      return k - 1;  // shift to [0, n)
    }
  }
}

}  // namespace xenic
