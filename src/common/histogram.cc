#include "src/common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace xenic {

Histogram::Histogram()
    : buckets_(static_cast<size_t>(kOctaves) * kSubBuckets, 0),
      count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0) {}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<size_t>(value);
  }
  const int msb = 63 - std::countl_zero(value);
  const int octave = msb - kSubBucketBits + 1;
  const uint64_t sub = value >> octave;  // in [kSubBuckets/2 ... kSubBuckets)
  size_t index = static_cast<size_t>(octave) * kSubBuckets + static_cast<size_t>(sub);
  const size_t last = static_cast<size_t>(kOctaves) * kSubBuckets - 1;
  return std::min(index, last);
}

uint64_t Histogram::BucketMidpoint(size_t index) {
  const size_t octave = index / kSubBuckets;
  const uint64_t sub = index % kSubBuckets;
  if (octave == 0) {
    return sub;
  }
  const uint64_t lo = sub << octave;
  const uint64_t width = 1ull << octave;
  return lo + width / 2;
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::ValueAtQuantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketMidpoint(i), min(), max());
    }
  }
  return max_;
}

namespace {
std::string FormatNs(uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns", static_cast<unsigned long long>(ns));
  }
  return buf;
}
}  // namespace

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%s p50=%s p99=%s max=%s",
                static_cast<unsigned long long>(count_), FormatNs(static_cast<uint64_t>(Mean())).c_str(),
                FormatNs(Median()).c_str(), FormatNs(P99()).c_str(), FormatNs(max()).c_str());
  return buf;
}

}  // namespace xenic
