#include "src/common/table_printer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xenic {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  if (std::isnan(v)) {
    return "--";  // "no data" sentinel (e.g. a latency with zero samples)
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::FmtOps(double ops_per_sec) {
  char buf[48];
  if (ops_per_sec >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", ops_per_sec / 1e6);
  } else if (ops_per_sec >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0fk", ops_per_sec / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", ops_per_sec);
  }
  return buf;
}

std::string TablePrinter::FmtUs(double ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f", ns / 1e3);
  return buf;
}

std::string TablePrinter::Render(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  out += render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TablePrinter::RenderCsv() const {
  auto join = [](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) {
        line += ',';
      }
      line += cells[i];
    }
    line += '\n';
    return line;
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) {
    out += join(row);
  }
  return out;
}

}  // namespace xenic
