// Two-level calendar queue for the discrete-event engine.
//
// Level 0 is a wheel of kWheelSize single-tick buckets covering the
// near-term window [base_, base_ + kWheelSize): the common case, since most
// simulated events land within a few microseconds of the current time.
// Pushing into the window is O(1), and because every bucket spans exactly
// one tick, a wheel entry needs neither its time (the bucket index encodes
// it) nor its sequence number (sequence numbers are globally monotone, so
// FIFO order within a bucket IS (time, seq) order) -- an entry is just the
// callback, one cache line. Level 1 is a binary heap holding events at or
// beyond the window; when the wheel drains, the window is re-based at the
// earliest overflow event and every overflow event inside the new window
// migrates into its bucket, so each event passes through the heap at most
// once.
//
// Pop order is exactly (time, seq): deterministic and identical to the
// reference binary-heap engine (see calendar_queue_test.cc).

#ifndef SRC_SIM_CALENDAR_QUEUE_H_
#define SRC_SIM_CALENDAR_QUEUE_H_

#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/sim/sbo_callback.h"

namespace xenic::sim {

using Tick = uint64_t;

class CalendarQueue {
 public:
  static constexpr size_t kWheelBits = 12;
  static constexpr size_t kWheelSize = size_t{1} << kWheelBits;  // 4096 ticks ≈ 4 us

  CalendarQueue() : wheel_(kWheelSize) { occupied_.fill(0); }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Insert an event. `t` must be >= the time of the last popped event and
  // `seq` strictly greater than every previously pushed sequence number
  // (the engine's monotone event counter guarantees both).
  void Push(Tick t, uint64_t seq, SmallCallback cb) {
    assert(t >= base_ && "event precedes the wheel window (engine now_ invariant broken)");
    if (t - base_ < kWheelSize) {
      const size_t idx = static_cast<size_t>(t - base_);
      assert(idx >= cursor_ && "event precedes the consumed wheel prefix");
      wheel_[idx].items.push_back(std::move(cb));
      MarkOccupied(idx);
      ++wheel_count_;
    } else {
      PushOverflow(t, seq, std::move(cb));
    }
    ++size_;
  }

  // Earliest (time, seq) event's time. Requires !empty().
  Tick PeekTime() const {
    assert(size_ > 0);
    if (wheel_count_ == 0) {
      // All wheel events consumed: the overflow min is the global min. Do
      // not rebase here -- the window may only move when an event is
      // popped, so base_ never runs ahead of the engine clock.
      return overflow_.front().time;
    }
    return base_ + FirstOccupied();
  }

  // Remove the earliest (time, seq) event and move its callback out --
  // a proper mutable pop, unlike priority_queue::top()'s const ref.
  // Requires !empty().
  SmallCallback PopNext(Tick* time_out) {
    assert(size_ > 0);
    if (wheel_count_ == 0) {
      RebaseFromOverflow();
    }
    const size_t idx = FirstOccupied();
    cursor_ = idx;
    Bucket& b = wheel_[idx];
    *time_out = base_ + idx;
    SmallCallback cb = std::move(b.items[b.head]);
    ++b.head;
    if (b.head == b.items.size()) {
      b.items.clear();  // keeps capacity; buckets are reused as the wheel wraps
      b.head = 0;
      ClearOccupied(idx);
    }
    --wheel_count_;
    --size_;
    return cb;
  }

 private:
  // Overflow entries carry explicit (time, seq) so the heap can restore
  // total order when events migrate back into the wheel.
  struct Item {
    Tick time;
    uint64_t seq;
    SmallCallback cb;
  };
  // Heap comparator ("later than"): with std::push_heap/pop_heap this makes
  // overflow_ a min-heap on (time, seq). The free-function heap algorithms
  // move elements, so popping needs no const_cast (std::priority_queue::top
  // returns const& and would).
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };
  struct Bucket {
    std::vector<SmallCallback> items;
    size_t head = 0;  // consumed prefix; items[head..) are pending
  };

  // Index (>= cursor_) of the first non-empty bucket. Requires
  // wheel_count_ > 0 (so a set bit at or after cursor_ exists).
  size_t FirstOccupied() const {
    size_t word = cursor_ >> 6;
    uint64_t bits = occupied_[word] & (~uint64_t{0} << (cursor_ & 63));
    while (bits == 0) {
      ++word;
      assert(word < occupied_.size() && "wheel_count_ > 0 but no occupied bucket");
      bits = occupied_[word];
    }
    return (word << 6) + static_cast<size_t>(std::countr_zero(bits));
  }
  void MarkOccupied(size_t idx) { occupied_[idx >> 6] |= uint64_t{1} << (idx & 63); }
  void ClearOccupied(size_t idx) { occupied_[idx >> 6] &= ~(uint64_t{1} << (idx & 63)); }

  void PushOverflow(Tick t, uint64_t seq, SmallCallback cb);

  // Move the window so it starts at the earliest overflow event and pull
  // every overflow event inside the new window into the wheel. Called only
  // when the wheel is empty and the overflow heap is not.
  void RebaseFromOverflow();

  std::vector<Bucket> wheel_;
  std::array<uint64_t, kWheelSize / 64> occupied_;
  Tick base_ = 0;      // time of wheel slot 0
  size_t cursor_ = 0;  // slots before cursor_ are fully consumed
  size_t wheel_count_ = 0;
  std::vector<Item> overflow_;  // binary heap via std::push_heap/pop_heap
  size_t size_ = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_CALENDAR_QUEUE_H_
