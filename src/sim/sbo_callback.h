// Small-buffer-optimized, move-only callables for simulation events.
//
// The engine hot path schedules and executes millions of short-lived
// callbacks; std::function heap-allocates for captures beyond ~2 words and
// requires copyability. SmallFunction<R(Args...)> stores captures up to
// kInlineSize bytes inline (no allocation), falls back to the heap for
// larger captures, and accepts move-only captures (unique_ptr, other
// SmallFunctions, ...). SmallCallback is the engine's event type.

#ifndef SRC_SIM_SBO_CALLBACK_H_
#define SRC_SIM_SBO_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace xenic::sim {

template <typename Signature>
class SmallFunction;

template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
 public:
  // Covers two shared_ptrs + a handful of scalars without allocating.
  static constexpr size_t kInlineSize = 48;

  SmallFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::ops;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::ops;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      Relocate(other);
    }
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        Relocate(other);
      }
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { Reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) {
        ops_->destroy(storage_);
      }
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    // Move-construct *dst from *src, then destroy *src; both point at raw
    // kInlineSize storage. nullptr means "memcpy the storage" -- correct
    // for trivially copyable inline captures and for heap mode (where the
    // storage holds only the Fn pointer), and avoids an indirect call on
    // the engine's event-move hot path.
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr means trivially destructible: destruction is a no-op.
    void (*destroy)(void* storage) noexcept;
  };

  // Steal other's target. Precondition: other.ops_ != nullptr and *this is
  // empty (default-constructed or just Reset).
  void Relocate(SmallFunction& other) noexcept {
    if (other.ops_->relocate == nullptr) {
      std::memcpy(storage_, other.storage_, kInlineSize);
    } else {
      other.ops_->relocate(storage_, other.storage_);
    }
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  template <typename Fn>
  struct InlineOps {
    static R Invoke(void* s, Args&&... args) {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
    }
    static void Relocate(void* dst, void* src) noexcept {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      ::new (dst) Fn(std::move(*from));
      from->~Fn();
    }
    static void Destroy(void* s) noexcept { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }
    static constexpr Ops ops{&Invoke,
                             std::is_trivially_copyable_v<Fn> ? nullptr : &Relocate,
                             std::is_trivially_destructible_v<Fn> ? nullptr : &Destroy};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Ptr(void* s) { return *std::launder(reinterpret_cast<Fn**>(s)); }
    static R Invoke(void* s, Args&&... args) {
      return (*Ptr(s))(std::forward<Args>(args)...);
    }
    static void Destroy(void* s) noexcept { delete Ptr(s); }
    // Relocation is the storage memcpy (moves the owning pointer).
    static constexpr Ops ops{&Invoke, nullptr, &Destroy};
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

using SmallCallback = SmallFunction<void()>;

}  // namespace xenic::sim

#endif  // SRC_SIM_SBO_CALLBACK_H_
