// Resource: a k-server FIFO service center.
//
// Models pools of execution units with queueing: host cores, NIC cores, DMA
// engine queues, RDMA NIC processing pipelines. Each submitted job occupies
// one server for its service time; excess jobs wait in FIFO order. Busy-time
// accounting supports utilization-law sanity checks in tests and the
// Table 3 thread-count analysis.
//
// Queueing observability: every job's wait (submit -> server grant) feeds
// cheap always-on scalars (total wait, jobs started, peak queue depth) and,
// when a histogram is attached (obs::ResourceMonitor), a full wait-time
// distribution. When an Engine trace sink is attached, each job's service
// interval is emitted as a span. Neither path schedules events or alters
// timing: accounting is invisible to the simulation.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/common/histogram.h"
#include "src/sim/engine.h"

namespace xenic::sim {

class Resource {
 public:
  Resource(Engine* engine, std::string name, uint32_t servers);

  // Occupy one server for `service` ns, then run `done`. Jobs queue FIFO.
  void Submit(Tick service, Engine::Callback done);

  // Number of servers (can be lowered/raised between runs for Table 3).
  uint32_t servers() const { return servers_; }
  void set_servers(uint32_t servers) { servers_ = servers; }

  const std::string& name() const { return name_; }
  uint32_t busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }
  uint64_t completed() const { return completed_; }
  Tick busy_time() const { return busy_time_; }

  // --- Queueing accounting (since the last ResetStats) ---
  Tick wait_time_total() const { return wait_time_total_; }
  uint64_t jobs_started() const { return jobs_started_; }
  size_t peak_queue_depth() const { return peak_queue_depth_; }
  double MeanWaitNs() const {
    return jobs_started_ == 0
               ? 0.0
               : static_cast<double>(wait_time_total_) / static_cast<double>(jobs_started_);
  }
  // Attach (or detach, with nullptr) a wait-time histogram. Each job's
  // queueing delay is recorded at server-grant time. The histogram is owned
  // by the caller and is pure bookkeeping: attaching one cannot perturb the
  // simulation.
  void set_wait_histogram(Histogram* hist) { wait_hist_ = hist; }

  // Fraction of server capacity used over `window` ns. Guards window == 0
  // (no elapsed time => nothing meaningful to report, not a divide-by-zero)
  // and servers_ == 0 (possible through set_servers between runs).
  double Utilization(Tick window) const {
    if (window == 0 || servers_ == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / (static_cast<double>(window) * servers_);
  }

  void ResetStats() {
    busy_time_ = 0;
    completed_ = 0;
    wait_time_total_ = 0;
    jobs_started_ = 0;
    peak_queue_depth_ = 0;
  }

 private:
  struct Job {
    Tick service;
    Tick enqueued;
    uint64_t ctx;  // transaction context at submit time (0 = none)
    Engine::Callback done;
  };

  void Start(Job job);
  void Finish(Tick service, uint64_t ctx, Engine::Callback done);
  void EnsureTracks(TraceSink* t);

  Engine* engine_;
  std::string name_;
  uint32_t servers_;
  uint32_t busy_ = 0;
  std::deque<Job> queue_;
  Tick busy_time_ = 0;
  uint64_t completed_ = 0;
  Tick wait_time_total_ = 0;
  uint64_t jobs_started_ = 0;
  size_t peak_queue_depth_ = 0;
  Histogram* wait_hist_ = nullptr;
  // Cached trace registration (lazily refreshed when a new sink appears).
  // Service intervals and queue waits go to separate lanes so a consumer
  // can tell busy time from head-of-line blocking per transaction.
  TraceSink* trace_sink_ = nullptr;
  uint32_t trace_track_ = 0;
  uint32_t trace_wait_track_ = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_RESOURCE_H_
