// Resource: a k-server FIFO service center.
//
// Models pools of execution units with queueing: host cores, NIC cores, DMA
// engine queues, RDMA NIC processing pipelines. Each submitted job occupies
// one server for its service time; excess jobs wait in FIFO order. Busy-time
// accounting supports utilization-law sanity checks in tests and the
// Table 3 thread-count analysis.

#ifndef SRC_SIM_RESOURCE_H_
#define SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/sim/engine.h"

namespace xenic::sim {

class Resource {
 public:
  Resource(Engine* engine, std::string name, uint32_t servers);

  // Occupy one server for `service` ns, then run `done`. Jobs queue FIFO.
  void Submit(Tick service, Engine::Callback done);

  // Number of servers (can be lowered/raised between runs for Table 3).
  uint32_t servers() const { return servers_; }
  void set_servers(uint32_t servers) { servers_ = servers; }

  const std::string& name() const { return name_; }
  uint32_t busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }
  uint64_t completed() const { return completed_; }
  Tick busy_time() const { return busy_time_; }

  // Fraction of server capacity used over `window` ns.
  double Utilization(Tick window) const {
    if (window == 0 || servers_ == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / (static_cast<double>(window) * servers_);
  }

  void ResetStats() {
    busy_time_ = 0;
    completed_ = 0;
  }

 private:
  struct Job {
    Tick service;
    Engine::Callback done;
  };

  void Start(Job job);
  void Finish(Tick service, Engine::Callback done);

  Engine* engine_;
  std::string name_;
  uint32_t servers_;
  uint32_t busy_ = 0;
  std::deque<Job> queue_;
  Tick busy_time_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_RESOURCE_H_
