#include "src/sim/resource.h"

#include <cassert>
#include <utility>

namespace xenic::sim {

Resource::Resource(Engine* engine, std::string name, uint32_t servers)
    : engine_(engine), name_(std::move(name)), servers_(servers) {
  assert(servers > 0);
}

void Resource::Submit(Tick service, Engine::Callback done) {
  if (busy_ < servers_) {
    Start(Job{service, engine_->now(), std::move(done)});
  } else {
    queue_.push_back(Job{service, engine_->now(), std::move(done)});
    if (queue_.size() > peak_queue_depth_) {
      peak_queue_depth_ = queue_.size();
    }
  }
}

void Resource::Start(Job job) {
  const Tick wait = engine_->now() - job.enqueued;
  wait_time_total_ += wait;
  jobs_started_++;
  if (wait_hist_ != nullptr) {
    wait_hist_->Record(wait);
  }
  busy_++;
  const Tick service = job.service;
  engine_->ScheduleAfter(service, [this, service, done = std::move(job.done)]() mutable {
    Finish(service, std::move(done));
  });
}

void Resource::Finish(Tick service, Engine::Callback done) {
  if (TraceSink* t = engine_->trace()) {
    if (t != trace_sink_) {
      trace_sink_ = t;
      trace_track_ = t->RegisterTrack(name_, "service");
    }
    t->Span(trace_track_, name_.c_str(), engine_->now() - service, engine_->now(), 0);
  }
  busy_--;
  busy_time_ += service;
  completed_++;
  if (!queue_.empty() && busy_ < servers_) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    Start(std::move(next));
  }
  done();
}

}  // namespace xenic::sim
