#include "src/sim/resource.h"

#include <cassert>
#include <utility>

namespace xenic::sim {

Resource::Resource(Engine* engine, std::string name, uint32_t servers)
    : engine_(engine), name_(std::move(name)), servers_(servers) {
  assert(servers > 0);
}

void Resource::Submit(Tick service, Engine::Callback done) {
  // The submitting event's transaction context rides along with the job so
  // both the wait and the service span name the right transaction even when
  // the grant happens inside another job's completion event.
  const uint64_t ctx = engine_->trace_ctx();
  if (busy_ < servers_) {
    Start(Job{service, engine_->now(), ctx, std::move(done)});
  } else {
    queue_.push_back(Job{service, engine_->now(), ctx, std::move(done)});
    if (queue_.size() > peak_queue_depth_) {
      peak_queue_depth_ = queue_.size();
    }
  }
}

void Resource::EnsureTracks(TraceSink* t) {
  if (t != trace_sink_) {
    trace_sink_ = t;
    trace_track_ = t->RegisterTrack(name_, "service");
    trace_wait_track_ = t->RegisterTrack(name_, "wait");
  }
}

void Resource::Start(Job job) {
  const Tick wait = engine_->now() - job.enqueued;
  wait_time_total_ += wait;
  jobs_started_++;
  if (wait_hist_ != nullptr) {
    wait_hist_->Record(wait);
  }
  if (wait > 0) {
    if (TraceSink* t = engine_->trace()) {
      EnsureTracks(t);
      t->Span(trace_wait_track_, name_.c_str(), job.enqueued, engine_->now(), job.ctx);
    }
  }
  busy_++;
  const Tick service = job.service;
  engine_->ScheduleAfter(service, [this, service, ctx = job.ctx,
                                   done = std::move(job.done)]() mutable {
    // Restore the job's own context: the engine-level capture would carry
    // the context of whichever event performed the grant.
    engine_->set_trace_ctx(ctx);
    Finish(service, ctx, std::move(done));
  });
}

void Resource::Finish(Tick service, uint64_t ctx, Engine::Callback done) {
  if (TraceSink* t = engine_->trace()) {
    EnsureTracks(t);
    t->Span(trace_track_, name_.c_str(), engine_->now() - service, engine_->now(), ctx);
  }
  busy_--;
  busy_time_ += service;
  completed_++;
  if (!queue_.empty() && busy_ < servers_) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    Start(std::move(next));
  }
  done();
}

}  // namespace xenic::sim
