#include "src/sim/resource.h"

#include <cassert>
#include <utility>

namespace xenic::sim {

Resource::Resource(Engine* engine, std::string name, uint32_t servers)
    : engine_(engine), name_(std::move(name)), servers_(servers) {
  assert(servers > 0);
}

void Resource::Submit(Tick service, Engine::Callback done) {
  if (busy_ < servers_) {
    Start(Job{service, std::move(done)});
  } else {
    queue_.push_back(Job{service, std::move(done)});
  }
}

void Resource::Start(Job job) {
  busy_++;
  const Tick service = job.service;
  engine_->ScheduleAfter(service, [this, service, done = std::move(job.done)]() mutable {
    Finish(service, std::move(done));
  });
}

void Resource::Finish(Tick service, Engine::Callback done) {
  busy_--;
  busy_time_ += service;
  completed_++;
  if (!queue_.empty() && busy_ < servers_) {
    Job next = std::move(queue_.front());
    queue_.pop_front();
    Start(std::move(next));
  }
  done();
}

}  // namespace xenic::sim
