#include "src/sim/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace xenic::sim {

Channel::Channel(Engine* engine, std::string name, double bytes_per_ns, Tick latency)
    : engine_(engine), name_(std::move(name)), bytes_per_ns_(bytes_per_ns), latency_(latency) {
  assert(bytes_per_ns > 0.0);
}

void Channel::Send(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered) {
  const Tick start = std::max(engine_->now(), next_free_);
  const auto tx_time =
      static_cast<Tick>(std::llround(static_cast<double>(bytes) / bytes_per_ns_));
  next_free_ = start + tx_time + extra_occupancy;
  bytes_sent_ += bytes;
  sends_++;
  engine_->ScheduleAt(next_free_ + latency_, std::move(delivered));
}

}  // namespace xenic::sim
