#include "src/sim/channel.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace xenic::sim {

Channel::Channel(Engine* engine, std::string name, double bytes_per_ns, Tick latency)
    : engine_(engine), name_(std::move(name)), bytes_per_ns_(bytes_per_ns), latency_(latency) {
  assert(bytes_per_ns > 0.0);
}

Tick Channel::Occupy(uint64_t bytes, Tick extra_occupancy) {
  const Tick now = engine_->now();
  const Tick wait = next_free_ > now ? next_free_ - now : 0;
  wait_time_total_ += wait;
  if (wait > peak_backlog_) {
    peak_backlog_ = wait;
  }
  if (wait_hist_ != nullptr) {
    wait_hist_->Record(wait);
  }
  const Tick start = std::max(now, next_free_);
  const auto tx_time =
      static_cast<Tick>(std::llround(static_cast<double>(bytes) / bytes_per_ns_));
  next_free_ = start + tx_time + extra_occupancy;
  busy_time_ += tx_time + extra_occupancy;
  bytes_sent_ += bytes;
  sends_++;
  if (TraceSink* t = engine_->trace()) {
    if (t != trace_sink_) {
      trace_sink_ = t;
      trace_track_ = t->RegisterTrack(name_, "tx");
      trace_wait_track_ = t->RegisterTrack(name_, "wait");
    }
    // Spans carry the sending event's transaction context (aggregated
    // frames attribute to the transaction whose message triggered the
    // flush -- see DESIGN.md on the batching caveat). The service span
    // runs through propagation (`latency_`), not just serialization, so
    // critical-path extraction books time-of-flight as wire, not as an
    // unattributed gap.
    const uint64_t ctx = engine_->trace_ctx();
    if (wait > 0) {
      t->Span(trace_wait_track_, name_.c_str(), now, start, ctx);
    }
    t->Span(trace_track_, name_.c_str(), start, next_free_ + latency_, ctx);
  }
  return next_free_;
}

void Channel::Send(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered) {
  if (fault_hook_) {
    SendFaulted(bytes, extra_occupancy, std::move(delivered));
    return;
  }
  engine_->ScheduleAt(Occupy(bytes, extra_occupancy) + latency_, std::move(delivered));
}

void Channel::SendFaulted(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered) {
  const FaultDecision d = fault_hook_(bytes);
  if (d.drop) {
    // The frame still serializes onto the wire before being lost, so the
    // occupancy charge stands; only the delivery vanishes.
    Occupy(bytes, extra_occupancy);
    frames_dropped_++;
    return;
  }
  // The first copy follows the exact no-hook schedule (plus any injected
  // delay): a default FaultDecision is bit-identical to the fast path.
  const Tick tail = Occupy(bytes, extra_occupancy);
  if (d.extra_delay > 0) {
    frames_delayed_++;
  }
  engine_->ScheduleAt(tail + latency_ + d.extra_delay, std::move(delivered));
  // Duplicates charge the channel again but deliver nothing: the receiver's
  // transport layer discards the redundant copies, and the callback (move-
  // only) has already been consumed by the primary delivery.
  for (uint32_t i = 0; i < d.duplicates; i++) {
    Occupy(bytes, extra_occupancy);
    frames_duplicated_++;
  }
}

}  // namespace xenic::sim
