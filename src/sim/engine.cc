#include "src/sim/engine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>

namespace xenic::sim {

namespace {
constexpr Tick kNoEvent = std::numeric_limits<Tick>::max();
}  // namespace

thread_local Engine::Shard* Engine::tls_shard_ = nullptr;

// ---------------------------------------------------------------------------
// Worker pool: persistent threads that execute LP epochs. Work distribution
// is a shared atomic cursor over the LP index space (LPs are heterogeneous;
// static striping would idle workers behind the busiest LP). All shard state
// handed between threads is synchronized through the pool mutex at epoch
// boundaries: a worker's writes are released when it re-acquires the mutex
// to decrement `running`, and acquired by whichever thread (main between
// epochs, any worker next epoch) locks it afterwards.
// ---------------------------------------------------------------------------

struct Engine::Pool {
  Pool(Engine* e, uint32_t n) : eng(e) {
    threads.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      threads.emplace_back([this] { Worker(); });
    }
  }
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(m);
      stop = true;
    }
    cv_work.notify_all();
    for (auto& t : threads) {
      t.join();
    }
  }

  void Worker() {
    uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(m);
    for (;;) {
      cv_work.wait(lk, [&] { return stop || gen != seen; });
      if (stop) {
        return;
      }
      seen = gen;
      const Tick h = horizon;
      lk.unlock();
      const uint32_t n = static_cast<uint32_t>(eng->shards_.size());
      for (;;) {
        const uint32_t lp = next_lp.fetch_add(1, std::memory_order_relaxed);
        if (lp >= n) {
          break;
        }
        eng->RunShardTo(*eng->shards_[lp], h);
      }
      lk.lock();
      if (--running == 0) {
        cv_done.notify_one();
      }
    }
  }

  Engine* eng;
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  uint64_t gen = 0;
  Tick horizon = 0;
  uint32_t running = 0;
  bool stop = false;
  std::atomic<uint32_t> next_lp{0};
  std::vector<std::thread> threads;
};

Engine::Engine() = default;
Engine::~Engine() = default;

// ---------------------------------------------------------------------------
// Scheduling.
// ---------------------------------------------------------------------------

void Engine::ScheduleOnShard(Shard& s, Tick t, Callback cb) {
  assert(t >= s.now && "cannot schedule in the past");
  if (s.trace != nullptr && s.trace_ctx != 0) {
    // Capture the current transaction context into the event and restore it
    // at dispatch. Only done while a sink is attached: the wrapper changes
    // neither the callback's effect nor the event's (time, seq) slot, so
    // traced runs execute the exact untraced schedule.
    cb = Callback([sp = &s, ctx = s.trace_ctx, inner = std::move(cb)]() mutable {
      sp->trace_ctx = ctx;
      inner();
    });
  }
  s.queue.Push(t, s.next_seq++, std::move(cb));
}

void Engine::ScheduleAt(Tick t, Callback cb) {
  if (Shard* s = CurrentShard()) {
    ScheduleOnShard(*s, t, std::move(cb));
    return;
  }
  if (!shards_.empty()) {
    // Main thread scheduling into a sharded engine (seeding between runs):
    // LP 0 by convention. Use ScheduleAtLp to target a specific LP.
    ScheduleOnShard(*shards_[0], t, std::move(cb));
    return;
  }
  assert(t >= now_ && "cannot schedule in the past");
  if (trace_ != nullptr && trace_ctx_ != 0) {
    cb = Callback([this, ctx = trace_ctx_, inner = std::move(cb)]() mutable {
      trace_ctx_ = ctx;
      inner();
    });
  }
  queue_.Push(t, next_seq_++, std::move(cb));
}

void Engine::ScheduleDetachedAt(Tick t, Callback cb) {
  if (Shard* s = CurrentShard()) {
    assert(t >= s->now && "cannot schedule in the past");
    s->queue.Push(t, s->next_seq++, std::move(cb));
    return;
  }
  if (!shards_.empty()) {
    Shard& s0 = *shards_[0];
    assert(t >= s0.now && "cannot schedule in the past");
    s0.queue.Push(t, s0.next_seq++, std::move(cb));
    return;
  }
  assert(t >= now_ && "cannot schedule in the past");
  queue_.Push(t, next_seq_++, std::move(cb));
}

void Engine::ScheduleAtLp(uint32_t lp, Tick t, Callback cb) {
  assert(sharded() && "ScheduleAtLp requires ConfigureLps with num_lps > 1");
  assert(lp < shards_.size());
  Shard* dst = shards_[lp].get();
  Shard* cur = CurrentShard();
  if (cur == nullptr || cur == dst) {
    // Local (same-LP) schedule, or main-thread seeding between runs.
    ScheduleOnShard(*dst, t, std::move(cb));
    return;
  }
  // Cross-LP send: conservative synchronization is only safe when the event
  // cannot land inside a window another LP may already be executing, i.e.
  // at least `lookahead` past the sender's clock (the model guarantees this
  // naturally when every cross-LP interaction rides a Channel whose latency
  // bounds the lookahead from below).
  assert(t >= cur->now + lookahead_ && "cross-LP event under the lookahead horizon");
  if (cur->trace != nullptr && cur->trace_ctx != 0) {
    cb = Callback([dst, ctx = cur->trace_ctx, inner = std::move(cb)]() mutable {
      dst->trace_ctx = ctx;
      inner();
    });
  }
  cur->outbox[lp].push_back(Shard::Mail{t, cur->mail_seq++, std::move(cb)});
}

// ---------------------------------------------------------------------------
// Serial execution (single-LP path; unchanged from the serial engine).
// ---------------------------------------------------------------------------

bool Engine::Step() {
  assert(!sharded() && "Step() is serial-only; sharded engines use Run/RunUntil");
  if (queue_.empty()) {
    return false;
  }
  Tick t = 0;
  Callback cb = queue_.PopNext(&t);
  now_ = t;
  events_executed_++;
  trace_ctx_ = 0;  // events scheduled without a context run without one
  cb();
  return true;
}

uint64_t Engine::Run() {
  if (sharded()) {
    return RunShardedUntil(0, /*bounded=*/false);
  }
  const uint64_t before = events_executed_;
  while (Step()) {
  }
  return events_executed_ - before;
}

uint64_t Engine::RunUntil(Tick t) {
  if (sharded()) {
    return RunShardedUntil(t, /*bounded=*/true);
  }
  const uint64_t before = events_executed_;
  while (!queue_.empty() && queue_.PeekTime() <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
  return events_executed_ - before;
}

// ---------------------------------------------------------------------------
// Parallel execution.
// ---------------------------------------------------------------------------

void Engine::ConfigureLps(uint32_t num_lps, Tick lookahead) {
  assert(num_lps >= 1);
  assert(!sharded() && "ConfigureLps may be called at most once");
  assert(queue_.empty() && events_executed_ == 0 && now_ == 0 &&
         "ConfigureLps requires a fresh engine");
  if (num_lps == 1) {
    return;  // serial path, bit-identical to an unconfigured engine
  }
  assert(lookahead > 0 && "conservative synchronization needs positive lookahead");
  lookahead_ = lookahead;
  shards_.reserve(num_lps);
  for (uint32_t i = 0; i < num_lps; ++i) {
    auto s = std::make_unique<Shard>();
    s->id = i;
    s->owner = this;
    s->trace = trace_;
    s->outbox.resize(num_lps);
    shards_.push_back(std::move(s));
  }
}

void Engine::set_engine_jobs(uint32_t jobs) {
  jobs_ = jobs == 0 ? 1 : jobs;
}

void Engine::set_trace(TraceSink* sink) {
  trace_ = sink;
  for (auto& s : shards_) {
    s->trace = sink;
  }
}

void Engine::set_lp_trace(uint32_t lp, TraceSink* sink) {
  assert(lp < shards_.size());
  shards_[lp]->trace = sink;
}

uint64_t Engine::events_executed() const {
  uint64_t n = events_executed_;
  for (const auto& s : shards_) {
    n += s->events_executed;
  }
  return n;
}

bool Engine::idle() const {
  if (!queue_.empty()) {
    return false;
  }
  for (const auto& s : shards_) {
    if (!s->queue.empty()) {
      return false;
    }
  }
  return true;
}

size_t Engine::pending_events() const {
  size_t n = queue_.size();
  for (const auto& s : shards_) {
    n += s->queue.size();
  }
  return n;
}

Tick Engine::NextEventTime() const {
  Tick next = kNoEvent;
  for (const auto& s : shards_) {
    if (!s->queue.empty()) {
      next = std::min(next, s->queue.PeekTime());
    }
  }
  return next;
}

// Drain one LP's events with time < horizon. Runs on exactly one thread per
// epoch; which thread varies, but the executed sequence is the LP's own
// (time, seq) order, so results cannot depend on the assignment.
void Engine::RunShardTo(Shard& s, Tick horizon) {
  tls_shard_ = &s;
  while (!s.queue.empty() && s.queue.PeekTime() < horizon) {
    Tick t = 0;
    SmallCallback cb = s.queue.PopNext(&t);
    s.now = t;
    s.events_executed++;
    s.trace_ctx = 0;
    cb();
  }
  tls_shard_ = nullptr;
}

void Engine::RunEpoch(Tick horizon) {
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  const uint32_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    for (auto& s : shards_) {
      RunShardTo(*s, horizon);
    }
    return;
  }
  if (pool_ == nullptr || pool_->threads.size() != workers - 1) {
    pool_.reset();  // join any old pool before spawning the new size
    pool_ = std::make_unique<Pool>(this, workers - 1);
  }
  Pool& p = *pool_;
  p.next_lp.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(p.m);
    p.horizon = horizon;
    p.running = static_cast<uint32_t>(p.threads.size());
    ++p.gen;
  }
  p.cv_work.notify_all();
  // The main thread is worker 0.
  for (;;) {
    const uint32_t lp = p.next_lp.fetch_add(1, std::memory_order_relaxed);
    if (lp >= n) {
      break;
    }
    RunShardTo(*shards_[lp], horizon);
  }
  std::unique_lock<std::mutex> lk(p.m);
  p.cv_done.wait(lk, [&p] { return p.running == 0; });
}

// Barrier merge: move every staged cross-LP message into its destination
// queue in the total order (time, source LP, source send seq). The order is
// a pure function of the simulated schedule -- never of thread timing -- so
// the destination's (time, seq) ordering, and with it the whole run, is
// identical for every worker count.
void Engine::DeliverMail() {
  struct MailIn {
    Tick t;
    uint32_t src;
    uint64_t seq;
    SmallCallback cb;
  };
  std::vector<MailIn> merged;
  const uint32_t n = static_cast<uint32_t>(shards_.size());
  for (uint32_t dst = 0; dst < n; ++dst) {
    merged.clear();
    for (uint32_t src = 0; src < n; ++src) {
      auto& box = shards_[src]->outbox[dst];
      for (auto& m : box) {
        merged.push_back(MailIn{m.t, src, m.seq, std::move(m.cb)});
      }
      box.clear();
    }
    if (merged.empty()) {
      continue;
    }
    std::sort(merged.begin(), merged.end(), [](const MailIn& a, const MailIn& b) {
      if (a.t != b.t) {
        return a.t < b.t;
      }
      if (a.src != b.src) {
        return a.src < b.src;
      }
      return a.seq < b.seq;
    });
    Shard& d = *shards_[dst];
    for (auto& m : merged) {
      d.queue.Push(m.t, d.next_seq++, std::move(m.cb));
    }
  }
}

uint64_t Engine::RunShardedUntil(Tick t, bool bounded) {
  const uint64_t before = events_executed();
  for (;;) {
    const Tick next = NextEventTime();
    if (next == kNoEvent || (bounded && next > t)) {
      break;
    }
    // Epoch window [next, horizon): at most `lookahead` wide, so no cross-LP
    // message produced inside it (targets >= sender now + lookahead >= next
    // + lookahead >= horizon) can land inside it. Bounded runs clip the
    // window at t + 1 so events at exactly t execute (RunUntil contract);
    // the clip only shrinks the window, preserving safety.
    Tick horizon = next + lookahead_;
    if (horizon < next) {
      horizon = kNoEvent;  // lookahead overflow: unbounded window is safe
    }
    if (bounded && t + 1 < horizon) {
      horizon = t + 1;
    }
    for (auto& s : shards_) {
      s->epoch_start = s->events_executed;
    }
    RunEpoch(horizon);
    uint64_t widest = 0;
    for (auto& s : shards_) {
      widest = std::max(widest, s->events_executed - s->epoch_start);
    }
    critical_path_events_ += widest;
    barrier_epochs_++;
    DeliverMail();
  }
  if (bounded) {
    for (auto& s : shards_) {
      if (s->now < t) {
        s->now = t;
      }
    }
    if (now_ < t) {
      now_ = t;
    }
  } else {
    Tick latest = now_;
    for (auto& s : shards_) {
      latest = std::max(latest, s->now);
    }
    now_ = latest;
  }
  return events_executed() - before;
}

}  // namespace xenic::sim
