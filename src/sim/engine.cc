#include "src/sim/engine.h"

#include <cassert>

namespace xenic::sim {

void Engine::ScheduleAt(Tick t, Callback cb) {
  assert(t >= now_ && "cannot schedule in the past");
  queue_.push(Event{t, next_seq_++, std::move(cb)});
}

bool Engine::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top returns a const ref; move the callback out via a
  // const_cast that is safe because we pop immediately after.
  auto& top = const_cast<Event&>(queue_.top());
  now_ = top.time;
  Callback cb = std::move(top.cb);
  queue_.pop();
  events_executed_++;
  cb();
  return true;
}

uint64_t Engine::Run() {
  uint64_t n = 0;
  while (Step()) {
    ++n;
  }
  return n;
}

uint64_t Engine::RunUntil(Tick t) {
  uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Step();
    ++n;
  }
  if (now_ < t) {
    now_ = t;
  }
  return n;
}

}  // namespace xenic::sim
