#include "src/sim/engine.h"

#include <cassert>

namespace xenic::sim {

void Engine::ScheduleAt(Tick t, Callback cb) {
  assert(t >= now_ && "cannot schedule in the past");
  if (trace_ != nullptr && trace_ctx_ != 0) {
    // Capture the current transaction context into the event and restore it
    // at dispatch. Only done while a sink is attached: the wrapper changes
    // neither the callback's effect nor the event's (time, seq) slot, so
    // traced runs execute the exact untraced schedule.
    cb = Callback([this, ctx = trace_ctx_, inner = std::move(cb)]() mutable {
      trace_ctx_ = ctx;
      inner();
    });
  }
  queue_.Push(t, next_seq_++, std::move(cb));
}

bool Engine::Step() {
  if (queue_.empty()) {
    return false;
  }
  Tick t = 0;
  Callback cb = queue_.PopNext(&t);
  now_ = t;
  events_executed_++;
  trace_ctx_ = 0;  // events scheduled without a context run without one
  cb();
  return true;
}

uint64_t Engine::Run() {
  const uint64_t before = events_executed_;
  while (Step()) {
  }
  return events_executed_ - before;
}

uint64_t Engine::RunUntil(Tick t) {
  const uint64_t before = events_executed_;
  while (!queue_.empty() && queue_.PeekTime() <= t) {
    Step();
  }
  if (now_ < t) {
    now_ = t;
  }
  return events_executed_ - before;
}

}  // namespace xenic::sim
