// Channel: a serializing, fixed-latency pipe.
//
// Models one direction of an Ethernet link, a PCIe lane bundle, or the path
// through a switch. Transmissions serialize at `bytes_per_ns`; each delivery
// additionally incurs `latency` ns of propagation. Byte accounting feeds the
// bandwidth-saturation checks in the Figure 8 benches.
//
// Queueing observability mirrors sim::Resource: each send's head-of-line
// wait (how long the frame sat behind earlier traffic before its first byte
// hit the wire) feeds always-on scalars and an optionally attached wait
// histogram; busy-time accounting separates serialization occupancy from
// idle air. With an Engine trace sink attached, each transmission's
// occupancy interval is emitted as a span. None of it perturbs the
// simulation.

#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/common/histogram.h"
#include "src/sim/engine.h"

namespace xenic::sim {

class Channel {
 public:
  // Per-send fault decision, produced by an optional hook (chaos testing).
  // The default-constructed decision is the identity: the send behaves
  // exactly as if no hook were installed -- same occupancy accounting, same
  // delivery tick, same event-insertion order.
  struct FaultDecision {
    bool drop = false;          // destroy the frame; callback never runs
    uint32_t duplicates = 0;    // extra copies that re-occupy the channel
    Tick extra_delay = 0;       // added propagation delay for this frame
  };
  using FaultHook = std::function<FaultDecision(uint64_t bytes)>;

  Channel(Engine* engine, std::string name, double bytes_per_ns, Tick latency);

  // Transmit `bytes`; `delivered` runs when the tail arrives at the far end.
  void Send(uint64_t bytes, Engine::Callback delivered) { Send(bytes, 0, std::move(delivered)); }

  // Same, plus `extra_occupancy` ns of fixed channel time for this send
  // (per-frame port overhead, unbatched queue-handling cost, ...).
  void Send(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered);

  // Install (or clear, with nullptr) the fault hook. The hook is consulted
  // once per Send; duplicated copies do not re-enter the hook.
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }
  bool has_fault_hook() const { return static_cast<bool>(fault_hook_); }

  uint64_t frames_dropped() const { return frames_dropped_; }
  uint64_t frames_duplicated() const { return frames_duplicated_; }
  uint64_t frames_delayed() const { return frames_delayed_; }

  const std::string& name() const { return name_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t sends() const { return sends_; }
  double bytes_per_ns() const { return bytes_per_ns_; }
  // Propagation delay per delivery (ns). Every cross-node event rides a
  // channel, so the minimum latency over a topology's channels is a valid
  // conservative lookahead for LP partitioning (harness::DeriveLookahead).
  Tick latency() const { return latency_; }

  // --- Queueing accounting (since the last ResetStats) ---
  // Occupancy (serialization + per-frame extras) charged to the wire.
  Tick busy_time() const { return busy_time_; }
  // Total / peak head-of-line wait: time frames spent queued behind earlier
  // traffic before starting to serialize.
  Tick wait_time_total() const { return wait_time_total_; }
  Tick peak_backlog() const { return peak_backlog_; }
  double MeanWaitNs() const {
    return sends_ == 0 ? 0.0
                       : static_cast<double>(wait_time_total_) / static_cast<double>(sends_);
  }
  // Attach (or detach, with nullptr) a wait-time histogram (caller-owned,
  // pure bookkeeping; see sim::Resource::set_wait_histogram).
  void set_wait_histogram(Histogram* hist) { wait_hist_ = hist; }

  // Fraction of link payload capacity used over `window` ns (bytes-based;
  // excludes per-frame fixed costs -- see BusyFraction for those). Guards
  // window == 0: an empty window reports 0, not a divide-by-zero.
  double Utilization(Tick window) const {
    if (window == 0) {
      return 0.0;
    }
    return static_cast<double>(bytes_sent_) / (bytes_per_ns_ * static_cast<double>(window));
  }

  // Fraction of wall time the channel was occupied (serialization plus
  // per-frame overheads) -- the queueing-relevant utilization.
  double BusyFraction(Tick window) const {
    if (window == 0) {
      return 0.0;
    }
    return static_cast<double>(busy_time_) / static_cast<double>(window);
  }

  void ResetStats() {
    bytes_sent_ = 0;
    sends_ = 0;
    frames_dropped_ = 0;
    frames_duplicated_ = 0;
    frames_delayed_ = 0;
    busy_time_ = 0;
    wait_time_total_ = 0;
    peak_backlog_ = 0;
  }

 private:
  // Charge one transmission's occupancy (serialization + extra) and byte
  // accounting; returns the tick at which the tail leaves the channel.
  Tick Occupy(uint64_t bytes, Tick extra_occupancy);

  void SendFaulted(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered);

  Engine* engine_;
  std::string name_;
  double bytes_per_ns_;
  Tick latency_;
  Tick next_free_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t sends_ = 0;
  uint64_t frames_dropped_ = 0;
  uint64_t frames_duplicated_ = 0;
  uint64_t frames_delayed_ = 0;
  Tick busy_time_ = 0;
  Tick wait_time_total_ = 0;
  Tick peak_backlog_ = 0;
  Histogram* wait_hist_ = nullptr;
  TraceSink* trace_sink_ = nullptr;
  uint32_t trace_track_ = 0;
  uint32_t trace_wait_track_ = 0;
  FaultHook fault_hook_;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_CHANNEL_H_
