// Channel: a serializing, fixed-latency pipe.
//
// Models one direction of an Ethernet link, a PCIe lane bundle, or the path
// through a switch. Transmissions serialize at `bytes_per_ns`; each delivery
// additionally incurs `latency` ns of propagation. Byte accounting feeds the
// bandwidth-saturation checks in the Figure 8 benches.

#ifndef SRC_SIM_CHANNEL_H_
#define SRC_SIM_CHANNEL_H_

#include <cstdint>
#include <string>

#include "src/sim/engine.h"

namespace xenic::sim {

class Channel {
 public:
  Channel(Engine* engine, std::string name, double bytes_per_ns, Tick latency);

  // Transmit `bytes`; `delivered` runs when the tail arrives at the far end.
  void Send(uint64_t bytes, Engine::Callback delivered) { Send(bytes, 0, std::move(delivered)); }

  // Same, plus `extra_occupancy` ns of fixed channel time for this send
  // (per-frame port overhead, unbatched queue-handling cost, ...).
  void Send(uint64_t bytes, Tick extra_occupancy, Engine::Callback delivered);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t sends() const { return sends_; }
  double bytes_per_ns() const { return bytes_per_ns_; }

  // Fraction of link capacity used over `window` ns.
  double Utilization(Tick window) const {
    if (window == 0) {
      return 0.0;
    }
    return static_cast<double>(bytes_sent_) / (bytes_per_ns_ * static_cast<double>(window));
  }

  void ResetStats() {
    bytes_sent_ = 0;
    sends_ = 0;
  }

 private:
  Engine* engine_;
  std::string name_;
  double bytes_per_ns_;
  Tick latency_;
  Tick next_free_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t sends_ = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_CHANNEL_H_
