#include "src/sim/calendar_queue.h"

#include <algorithm>

namespace xenic::sim {

void CalendarQueue::PushOverflow(Tick t, uint64_t seq, SmallCallback cb) {
  overflow_.push_back(Item{t, seq, std::move(cb)});
  std::push_heap(overflow_.begin(), overflow_.end(), Later{});
}

void CalendarQueue::RebaseFromOverflow() {
  assert(wheel_count_ == 0 && !overflow_.empty());
  base_ = overflow_.front().time;
  cursor_ = 0;
  // Migrate every overflow event inside the new window. Heap pops come out
  // in (time, seq) order and seq is globally monotone, so appends preserve
  // FIFO-equals-(time, seq) within each single-tick bucket.
  while (!overflow_.empty() && overflow_.front().time - base_ < kWheelSize) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Item it = std::move(overflow_.back());
    overflow_.pop_back();
    const size_t idx = static_cast<size_t>(it.time - base_);
    wheel_[idx].items.push_back(std::move(it.cb));
    MarkOccupied(idx);
    ++wheel_count_;
  }
}

}  // namespace xenic::sim
