// TraceSink: the simulator-side half of the observability layer.
//
// A sink is attached to an Engine (Engine::set_trace) before a run;
// instrumented components (Resource, Channel, the transaction engines) emit
// spans and instants through it. The contract that keeps traced and
// untraced runs byte-identical is structural: a sink only *records* -- it
// never schedules events, consumes randomness, or feeds any value back into
// the simulation. When no sink is attached the cost at every emission site
// is a single null-pointer branch.
//
// Tracks are lanes in the exported trace (obs::TraceRecorder maps them to
// Chrome trace-event pid/tid pairs). Components register lazily and cache
// the (sink, track) pair, so attaching a fresh sink re-registers cleanly.

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <string>

#include "src/sim/calendar_queue.h"

namespace xenic::sim {

// Reserved correlation id for work that is deliberately not attributed to
// any transaction: periodic infrastructure (worker poll ticks, log-apply
// batches) sets this as the engine trace context before charging a
// resource. Attribution sinks (obs::TxnTraceSink) skip ambient spans
// silently, so their zero-id anomaly counters measure *lost* context --
// txn work whose id fell off across an event boundary -- rather than
// counting every poll. Id 0 remains "no context", which on a cost track
// is exactly that anomaly.
constexpr uint64_t kAmbientTraceCtx = ~uint64_t{0};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Register a lane named `track` under the process-level group `process`
  // (e.g. "node3" / "nic_cores"). Ids are assigned in call order.
  virtual uint32_t RegisterTrack(const std::string& process, const std::string& track) = 0;

  // A duration event on `track` covering [start, end] sim-ns. `id` is a
  // free-form correlation id (transaction id, 0 if unused).
  virtual void Span(uint32_t track, const char* name, Tick start, Tick end, uint64_t id) = 0;

  // A zero-duration marker.
  virtual void Instant(uint32_t track, const char* name, Tick at, uint64_t id) = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_TRACE_H_
