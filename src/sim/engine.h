// Discrete-event simulation engine.
//
// Time is measured in integer nanoseconds (Tick). Events are callbacks
// ordered by (time, insertion sequence); the sequence tiebreak makes every
// run fully deterministic for a given seed and schedule, which the test
// suite and the ablation benches rely on.
//
// Hot path: callbacks are SmallCallback (captures up to 48 B stay inline in
// the event record -- no heap allocation) and the event queue is a two-level
// calendar queue (O(1) schedule/dispatch for the near-term horizon where
// almost all events land). See calendar_queue.h for the ordering proof.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>

#include "src/sim/calendar_queue.h"
#include "src/sim/sbo_callback.h"
#include "src/sim/trace.h"

namespace xenic::sim {

constexpr Tick kNsPerUs = 1000;
constexpr Tick kNsPerMs = 1000 * 1000;
constexpr Tick kNsPerSec = 1000 * 1000 * 1000;

class Engine {
 public:
  using Callback = SmallCallback;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Tick now() const { return now_; }
  uint64_t events_executed() const { return events_executed_; }
  bool idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

  // Schedule cb at absolute time t (>= now).
  void ScheduleAt(Tick t, Callback cb);

  // Schedule cb `delay` ns from now.
  void ScheduleAfter(Tick delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  // Execute the next event. Returns false if the queue is empty.
  bool Step();

  // Run until the queue drains. Returns events executed by this call
  // (events_executed() advances by the same amount).
  uint64_t Run();

  // Run until simulated time reaches `t` (events at exactly `t` execute).
  // The clock is advanced to `t` even if the queue drains earlier. Returns
  // events executed by this call (the events_executed() delta, so the two
  // counters cannot drift).
  uint64_t RunUntil(Tick t);

  uint64_t RunFor(Tick duration) { return RunUntil(now_ + duration); }

  // Observability sink (null = tracing off). The sink is write-only from
  // the simulation's point of view: attaching one never changes event
  // order, timing, or any simulated result (see trace.h), which
  // check_determinism.sh enforces end-to-end.
  TraceSink* trace() const { return trace_; }
  void set_trace(TraceSink* sink) { trace_ = sink; }

  // Trace context: the transaction id the currently executing event is
  // working on behalf of (0 = none). With a sink attached, ScheduleAt
  // captures the current context into each scheduled event and restores it
  // at dispatch, so identity propagates causally through resource grants,
  // channel deliveries, and remote message handlers without any component
  // re-plumbing ids by hand. Pure bookkeeping: the context feeds only span
  // ids, never a simulated decision, so traced and untraced runs stay
  // byte-identical (the wrapping itself is skipped when no sink is
  // attached).
  uint64_t trace_ctx() const { return trace_ctx_; }
  void set_trace_ctx(uint64_t ctx) { trace_ctx_ = ctx; }

 private:
  CalendarQueue queue_;
  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  TraceSink* trace_ = nullptr;
  uint64_t trace_ctx_ = 0;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_ENGINE_H_
