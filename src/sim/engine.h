// Discrete-event simulation engine.
//
// Time is measured in integer nanoseconds (Tick). Events are callbacks
// ordered by (time, insertion sequence); the sequence tiebreak makes every
// run fully deterministic for a given seed and schedule, which the test
// suite and the ablation benches rely on.
//
// Hot path: callbacks are SmallCallback (captures up to 48 B stay inline in
// the event record -- no heap allocation) and the event queue is a two-level
// calendar queue (O(1) schedule/dispatch for the near-term horizon where
// almost all events land). See calendar_queue.h for the ordering proof.
//
// Parallel mode (ConfigureLps): the event space is partitioned into
// logical processes (LPs), each with its own calendar queue, clock, and
// sequence counter, synchronized conservatively with a caller-supplied
// lookahead (the minimum cross-LP propagation delay -- for the cluster
// model, sim::Channel wire latency). Execution proceeds in barrier epochs:
// every LP independently drains its events in the window
// [global_min, global_min + lookahead), then cross-LP messages posted
// during the epoch are merged into their destination queues in the total
// order (time, source LP, source send sequence). Because a cross-LP send
// must target a time >= sender_now + lookahead (asserted), no merged
// message can land inside the window an LP already executed -- the
// classical conservative-PDES safety argument -- so the executed schedule,
// and therefore every simulated result, is byte-identical for any worker
// count (--engine-jobs), including 1. DESIGN.md section 14 has the full
// derivation. A single-LP engine (the default; ConfigureLps(1, ...) is a
// no-op) takes exactly the historical serial path.

#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/calendar_queue.h"
#include "src/sim/sbo_callback.h"
#include "src/sim/trace.h"

namespace xenic::sim {

constexpr Tick kNsPerUs = 1000;
constexpr Tick kNsPerMs = 1000 * 1000;
constexpr Tick kNsPerSec = 1000 * 1000 * 1000;

class Engine {
 public:
  using Callback = SmallCallback;

  // Returned by current_lp() when the calling thread is not inside an LP
  // event (main thread, or a different engine's worker).
  static constexpr uint32_t kNoLp = ~uint32_t{0};

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Tick now() const {
    const Shard* s = CurrentShard();
    return s != nullptr ? s->now : now_;
  }
  uint64_t events_executed() const;
  bool idle() const;
  size_t pending_events() const;

  // Schedule cb at absolute time t (>= now). In sharded mode, called from
  // inside an LP event this stays on the executing LP; called from the
  // main thread (between Run* calls) it lands on LP 0.
  void ScheduleAt(Tick t, Callback cb);

  // Schedule cb `delay` ns from now.
  void ScheduleAfter(Tick delay, Callback cb) { ScheduleAt(now() + delay, std::move(cb)); }

  // Like ScheduleAt, but never captures the current trace context: the
  // event runs on behalf of no transaction even when armed inside a traced
  // span. For ambient timers (worker poll ticks, retry wakeups) whose
  // firing is not causally part of the arming transaction's critical path
  // -- capturing the arming context there misattributes whatever the timer
  // does to a transaction that may already have finished (see the trace-
  // context audit, engine_test.cc).
  void ScheduleDetachedAt(Tick t, Callback cb);
  void ScheduleDetachedAfter(Tick delay, Callback cb) {
    ScheduleDetachedAt(now() + delay, std::move(cb));
  }

  // Execute the next event. Returns false if the queue is empty.
  // Single-LP engines only (sharded engines advance via Run/RunUntil).
  bool Step();

  // Run until the queue drains. Returns events executed by this call
  // (events_executed() advances by the same amount).
  uint64_t Run();

  // Run until simulated time reaches `t` (events at exactly `t` execute).
  // The clock is advanced to `t` even if the queue drains earlier. Returns
  // events executed by this call (the events_executed() delta, so the two
  // counters cannot drift).
  uint64_t RunUntil(Tick t);

  uint64_t RunFor(Tick duration) { return RunUntil(now() + duration); }

  // Observability sink (null = tracing off). The sink is write-only from
  // the simulation's point of view: attaching one never changes event
  // order, timing, or any simulated result (see trace.h), which
  // check_determinism.sh enforces end-to-end. On a sharded engine this
  // attaches the sink to every LP; with more than one worker the caller
  // must either provide a thread-safe sink or use per-LP sinks
  // (set_lp_trace + obs::LpTraceSet) instead.
  TraceSink* trace() const {
    const Shard* s = CurrentShard();
    return s != nullptr ? s->trace : trace_;
  }
  void set_trace(TraceSink* sink);

  // Trace context: the transaction id the currently executing event is
  // working on behalf of (0 = none). With a sink attached, ScheduleAt
  // captures the current context into each scheduled event and restores it
  // at dispatch, so identity propagates causally through resource grants,
  // channel deliveries, and remote message handlers without any component
  // re-plumbing ids by hand. Pure bookkeeping: the context feeds only span
  // ids, never a simulated decision, so traced and untraced runs stay
  // byte-identical (the wrapping itself is skipped when no sink is
  // attached). In sharded mode the context is per-LP state.
  uint64_t trace_ctx() const {
    const Shard* s = CurrentShard();
    return s != nullptr ? s->trace_ctx : trace_ctx_;
  }
  void set_trace_ctx(uint64_t ctx) {
    Shard* s = CurrentShard();
    (s != nullptr ? s->trace_ctx : trace_ctx_) = ctx;
  }

  // --- Parallel (multi-LP) mode -------------------------------------------

  // Partition the engine into `num_lps` logical processes synchronized with
  // `lookahead` (> 0 when num_lps > 1): a cross-LP event must be scheduled
  // at least `lookahead` ns past the sender's clock. Must be called on a
  // fresh engine, before anything is scheduled, at most once.
  // ConfigureLps(1, ...) keeps the engine on the exact serial path.
  void ConfigureLps(uint32_t num_lps, Tick lookahead);

  bool sharded() const { return !shards_.empty(); }
  uint32_t num_lps() const {
    return shards_.empty() ? 1 : static_cast<uint32_t>(shards_.size());
  }
  Tick lookahead() const { return lookahead_; }

  // Worker threads used to execute LP epochs (default 1 = serial; results
  // are byte-identical for every value). Inert on a single-LP engine.
  void set_engine_jobs(uint32_t jobs);
  uint32_t engine_jobs() const { return jobs_; }

  // LP the calling thread is currently executing an event for, or kNoLp.
  uint32_t current_lp() const {
    const Shard* s = CurrentShard();
    return s != nullptr ? s->id : kNoLp;
  }

  // Schedule onto a specific LP. From inside an event of another LP this is
  // a cross-LP send: `t` must be >= sender now + lookahead (asserted), and
  // delivery order at the destination follows the total (time, source LP,
  // source send seq) tie-break. From the destination LP itself or from the
  // main thread it is an ordinary local schedule.
  void ScheduleAtLp(uint32_t lp, Tick t, Callback cb);

  // Per-LP observability sinks (sharded engines; pure bookkeeping). Each
  // LP's spans go only to its own sink, so sinks need no locking; merge
  // deterministically afterwards with obs::LpTraceSet.
  void set_lp_trace(uint32_t lp, TraceSink* sink);
  TraceSink* lp_trace(uint32_t lp) const { return shards_[lp]->trace; }

  Tick lp_now(uint32_t lp) const { return shards_[lp]->now; }
  uint64_t lp_events_executed(uint32_t lp) const { return shards_[lp]->events_executed; }

  // Conservative-sync diagnostics: barrier epochs executed, and the sum
  // over epochs of the largest per-LP event count in that epoch -- the
  // parallel schedule's critical path. total events / critical path is the
  // run's machine-independent speedup bound (bench_sim_speed records it).
  uint64_t barrier_epochs() const { return barrier_epochs_; }
  uint64_t critical_path_events() const { return critical_path_events_; }

 private:
  // One logical process: a complete serial engine core. Heap-allocated so
  // worker threads never share a cache line of hot state.
  struct Shard {
    CalendarQueue queue;
    Tick now = 0;
    uint64_t next_seq = 0;
    uint64_t events_executed = 0;
    TraceSink* trace = nullptr;
    uint64_t trace_ctx = 0;
    uint32_t id = 0;
    Engine* owner = nullptr;
    uint64_t mail_seq = 0;     // per-sender send counter (tie-break component)
    uint64_t epoch_start = 0;  // events_executed at epoch entry (critical path)
    // Cross-LP sends staged during an epoch, one box per destination;
    // drained by the barrier merge between epochs.
    struct Mail {
      Tick t;
      uint64_t seq;
      SmallCallback cb;
    };
    std::vector<std::vector<Mail>> outbox;
  };
  struct Pool;  // worker threads (engine.cc)

  static thread_local Shard* tls_shard_;
  Shard* CurrentShard() const {
    Shard* s = tls_shard_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  void ScheduleOnShard(Shard& s, Tick t, Callback cb);
  void RunShardTo(Shard& s, Tick horizon);
  void RunEpoch(Tick horizon);
  void DeliverMail();
  Tick NextEventTime() const;  // min over shards; kNoEvent when all idle
  uint64_t RunShardedUntil(Tick t, bool bounded);

  CalendarQueue queue_;
  Tick now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  TraceSink* trace_ = nullptr;
  uint64_t trace_ctx_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  Tick lookahead_ = 0;
  uint32_t jobs_ = 1;
  uint64_t barrier_epochs_ = 0;
  uint64_t critical_path_events_ = 0;
  std::unique_ptr<Pool> pool_;
};

}  // namespace xenic::sim

#endif  // SRC_SIM_ENGINE_H_
