#include "src/obs/txn_trace.h"

#include <cctype>
#include <utility>

namespace xenic::obs {

const char* BucketName(CostBucket b) {
  switch (b) {
    case CostBucket::kHostCpu:
      return "host_cpu";
    case CostBucket::kNicArm:
      return "nic_arm";
    case CostBucket::kDma:
      return "dma";
    case CostBucket::kWire:
      return "wire";
    case CostBucket::kQueueing:
      return "queueing";
    case CostBucket::kRedo:
      return "redo";
  }
  return "?";
}

namespace {

// Strip the per-node qualifier ("n3.host_cores" -> "host_cores"); baseline
// shared resources register without one.
std::string StripNodePrefix(const std::string& name) {
  if (name.size() < 2 || name[0] != 'n' || !std::isdigit(static_cast<unsigned char>(name[1]))) {
    return name;
  }
  size_t i = 1;
  while (i < name.size() && std::isdigit(static_cast<unsigned char>(name[i]))) {
    ++i;
  }
  if (i < name.size() && name[i] == '.') {
    return name.substr(i + 1);
  }
  return name;
}

bool HasPrefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Maps a resource/channel name (node prefix stripped) to the cost bucket
// its service time belongs to. Returns false for unrecognized names.
bool ClassifyResource(const std::string& bare, CostBucket* out) {
  if (bare == "host_cores") {
    *out = CostBucket::kHostCpu;
    return true;
  }
  if (bare == "nic_cores" || bare == "rdma_pipeline") {
    *out = CostBucket::kNicArm;
    return true;
  }
  if (bare == "dma_queues" || bare == "dma_submit" || bare == "pcie_up" || bare == "pcie_down") {
    *out = CostBucket::kDma;
    return true;
  }
  if (bare == "rdma_tx" || HasPrefix(bare, "tx") || HasPrefix(bare, "rx")) {
    *out = CostBucket::kWire;
    return true;
  }
  return false;
}

}  // namespace

uint32_t TxnTraceSink::RegisterTrack(const std::string& process, const std::string& track) {
  TrackInfo info;
  if (process == "txn_phases") {
    info.kind = TrackKind::kPhase;
  } else if (track == "net") {
    info.kind = TrackKind::kNet;
  } else {
    CostBucket bucket;
    if (ClassifyResource(StripNodePrefix(process), &bucket)) {
      info.kind = TrackKind::kCost;
      // Queue-wait lanes are queueing regardless of which resource the
      // transaction was waiting for; service lanes get the resource's
      // bucket.
      info.bucket = track == "wait" ? CostBucket::kQueueing : bucket;
    }
  }
  tracks_.push_back(info);
  return static_cast<uint32_t>(tracks_.size() - 1);
}

void TxnTraceSink::Span(uint32_t track, const char* name, sim::Tick start, sim::Tick end,
                        uint64_t id) {
  if (track >= tracks_.size()) {
    return;
  }
  const TrackInfo& info = tracks_[track];
  if (info.kind == TrackKind::kIgnore || info.kind == TrackKind::kNet) {
    return;
  }
  if (id == sim::kAmbientTraceCtx) {
    return;  // deliberately unattributed infrastructure work (poll ticks)
  }
  if (id == 0) {
    zero_id_spans_++;
    return;
  }
  if (finalized_.count(id) != 0) {
    late_spans_++;
    return;
  }
  TxnTree& tree = pending_[id];
  tree.id = id;
  if (info.kind == TrackKind::kPhase) {
    tree.phases.push_back(TxnPhase{name, start, end});
  } else {
    tree.cost.push_back(TxnSpan{info.bucket, name, start, end});
  }
}

void TxnTraceSink::Instant(uint32_t track, const char* name, sim::Tick at, uint64_t id) {
  if (track >= tracks_.size() || tracks_[track].kind != TrackKind::kNet) {
    return;
  }
  if (id == sim::kAmbientTraceCtx) {
    return;
  }
  if (id == 0) {
    orphan_instants_++;
    return;
  }
  if (finalized_.count(id) != 0) {
    late_spans_++;
    return;
  }
  TxnTree& tree = pending_[id];
  tree.id = id;
  tree.instants.push_back(TxnInstant{name, at});
}

bool TxnTraceSink::Extract(uint64_t id, TxnTree* out) {
  auto it = pending_.find(id);
  finalized_.insert(id);
  if (it == pending_.end()) {
    return false;
  }
  *out = std::move(it->second);
  pending_.erase(it);
  return true;
}

void TxnTraceSink::Discard(uint64_t id) {
  pending_.erase(id);
  finalized_.insert(id);
}

}  // namespace xenic::obs
