// TraceRecorder: collects simulator spans/instants and exports them as
// Chrome trace-event JSON (loadable in about:tracing and Perfetto).
//
// The recorder is the standard sim::TraceSink implementation: attach it to
// an Engine with set_trace() before a run, detach (set_trace(nullptr))
// after, then WriteJson(). Tracks registered under the same process name
// share a pid; each track becomes a tid within it, with process_name /
// thread_name metadata so the viewer labels lanes by resource.
//
// Recording is append-only bookkeeping -- no engine interaction -- so a
// traced run's simulation results are byte-identical to an untraced run
// (tools/check_determinism.sh enforces this end-to-end).

#ifndef SRC_OBS_TRACE_RECORDER_H_
#define SRC_OBS_TRACE_RECORDER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/trace.h"

namespace xenic::obs {

class TraceRecorder : public sim::TraceSink {
 public:
  // `pid_base` offsets every assigned pid, so multiple recorders (one per
  // LP -- see obs::LpTraceSet) can merge into one trace without process
  // collisions.
  explicit TraceRecorder(uint32_t pid_base = 0) : pid_base_(pid_base) {}

  uint32_t RegisterTrack(const std::string& process, const std::string& track) override;
  void Span(uint32_t track, const char* name, sim::Tick start, sim::Tick end,
            uint64_t id) override;
  void Instant(uint32_t track, const char* name, sim::Tick at, uint64_t id) override;

  size_t num_events() const { return events_.size(); }
  size_t num_tracks() const { return tracks_.size(); }

  // Serialize as a Chrome trace-event JSON object. `ToJson` is the
  // in-memory variant used by tests; `WriteJson` returns false on I/O
  // failure.
  std::string ToJson() const;
  bool WriteJson(const std::string& path) const;

  // Append this recorder's metadata + events into an in-progress
  // traceEvents array (`*first` tracks whether a comma is needed).
  // LpTraceSet splices per-LP recorders into one merged document with it.
  void AppendJsonEvents(std::string* out, bool* first) const;

 private:
  struct Track {
    uint32_t pid;
    uint32_t tid;
    std::string process;
    std::string name;
  };
  struct Event {
    uint32_t track;
    uint32_t name_id;
    sim::Tick start;
    sim::Tick dur;  // 0 with instant = true
    uint64_t id;
    bool instant;
  };

  uint32_t InternName(const char* name);

  uint32_t pid_base_ = 0;
  std::vector<Track> tracks_;
  std::unordered_map<std::string, uint32_t> pid_by_process_;
  std::unordered_map<std::string, uint32_t> name_ids_;
  std::vector<std::string> names_;
  std::vector<Event> events_;
};

}  // namespace xenic::obs

#endif  // SRC_OBS_TRACE_RECORDER_H_
