#include "src/obs/resource_stats.h"

#include <unordered_map>

namespace xenic::obs {

ResourceMonitor::~ResourceMonitor() {
  for (const auto& e : entries_) {
    if (e->ref.pool != nullptr) {
      e->ref.pool->set_wait_histogram(nullptr);
    }
    if (e->ref.link != nullptr) {
      e->ref.link->set_wait_histogram(nullptr);
    }
  }
}

void ResourceMonitor::Track(const ResourceRef& ref) {
  entries_.push_back(std::make_unique<Entry>(Entry{ref, Histogram()}));
  Entry* e = entries_.back().get();
  if (e->ref.pool != nullptr) {
    e->ref.pool->set_wait_histogram(&e->wait);
  }
  if (e->ref.link != nullptr) {
    e->ref.link->set_wait_histogram(&e->wait);
  }
}

void ResourceMonitor::ResetWindow() {
  for (const auto& e : entries_) {
    e->wait.Reset();
  }
}

std::vector<ResourceSnapshot> ResourceMonitor::Snapshot(sim::Tick window) const {
  std::vector<ResourceSnapshot> rows;
  std::unordered_map<std::string, size_t> row_by_name;
  for (const auto& e : entries_) {
    auto [it, inserted] = row_by_name.try_emplace(e->ref.name, rows.size());
    if (inserted) {
      rows.emplace_back();
      rows.back().name = e->ref.name;
      rows.back().is_link = e->ref.link != nullptr;
    }
    ResourceSnapshot& row = rows[it->second];
    row.instances++;
    row.wait.Merge(e->wait);
    if (e->ref.pool != nullptr) {
      const sim::Resource& r = *e->ref.pool;
      row.servers += r.servers();
      row.utilization += r.Utilization(window);
      row.busy_ns += r.busy_time();
      row.completed += r.completed();
      if (r.peak_queue_depth() > row.peak_queue) {
        row.peak_queue = r.peak_queue_depth();
      }
    } else if (e->ref.link != nullptr) {
      const sim::Channel& c = *e->ref.link;
      row.utilization += c.BusyFraction(window);
      row.wire_utilization += c.Utilization(window);
      row.busy_ns += c.busy_time();
      row.completed += c.sends();
      if (c.peak_backlog() > row.peak_queue) {
        row.peak_queue = c.peak_backlog();
      }
    }
  }
  for (ResourceSnapshot& row : rows) {
    if (row.instances > 0) {
      row.utilization /= row.instances;
      row.wire_utilization /= row.instances;
    }
    row.mean_wait_ns = row.wait.Mean();
    row.p99_wait_ns = row.wait.P99();
    row.max_wait_ns = row.wait.max();
  }
  return rows;
}

}  // namespace xenic::obs
