// Critical-path extraction and tail-latency attribution.
//
// ExtractCriticalPath projects a transaction's span tree onto its attempt
// interval [attempt_start, end] and splits the wall time into cost
// buckets. The projection is a boundary sweep: at every instant the time
// is charged to the highest-priority bucket with an active span --
//
//     dma > wire > nic_arm > host_cpu > queueing
//
// -- so when a core blocks on a device the time is attributed to the
// device actually working, not to the blocked core. Instants with no
// active span at all (nothing in the system was working on the
// transaction) are queueing. Time burned by earlier aborted attempts of
// the same logical transaction (redo) is passed in by the harness, which
// is the only layer that can link retries.
//
// AggregateTailAttribution then compares where the median and the tail
// spend their time: per-bucket means over a p50 cohort (totals in the
// [p40, p60] band) and a tail cohort ([p95, max]), plus the per-bucket
// tail gap ranked so the report can name the component that grows fastest
// between median and tail.

#ifndef SRC_OBS_CRITICAL_PATH_H_
#define SRC_OBS_CRITICAL_PATH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/txn_trace.h"

namespace xenic::obs {

// Per-transaction result: ns in each bucket; total_ns is the attempt wall
// time plus redo, and equals the sum of the buckets by construction.
struct BucketBreakdown {
  double ns[kNumBuckets] = {};
  double total_ns = 0;
};

BucketBreakdown ExtractCriticalPath(const TxnTree& tree, sim::Tick attempt_start, sim::Tick end,
                                    sim::Tick redo_ns);

struct TailAttribution {
  uint64_t count = 0;           // transactions aggregated
  double p50_mean[kNumBuckets] = {};
  double tail_mean[kNumBuckets] = {};
  double p50_total = 0;
  double tail_total = 0;
  double gap[kNumBuckets] = {};  // tail_mean - p50_mean
  int ranked[kNumBuckets] = {};  // bucket indices by gap, descending
  int fastest = -1;              // ranked[0], or -1 when count == 0
};

// Sorts the breakdowns by total and aggregates cohort means. Empty input
// yields a zero report with fastest == -1.
TailAttribution AggregateTailAttribution(std::vector<BucketBreakdown> paths);

// Waterfall table: one row per bucket with p50/tail cohort means, the tail
// gap, and the gap share; followed by a one-line verdict naming the
// fastest-growing bucket.
std::string RenderTxnWaterfall(const TailAttribution& a, const std::string& title);

// {"count":N,"p50_total_us":..,"tail_total_us":..,"fastest":"wire",
//  "buckets":[{"bucket":"host_cpu","p50_us":..,"tail_us":..,"gap_us":..},..]}
std::string TxnAttribJson(const TailAttribution& a);

}  // namespace xenic::obs

#endif  // SRC_OBS_CRITICAL_PATH_H_
