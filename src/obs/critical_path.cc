#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>

#include "src/common/table_printer.h"

namespace xenic::obs {

namespace {

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

// Sweep-line event: a cost span's edge, +1 at start, -1 at end.
struct Edge {
  sim::Tick at;
  int delta;
  int bucket;
};

// Higher value wins when spans overlap: charge blocked-core time to the
// device actually doing the work.
int Priority(CostBucket b) {
  switch (b) {
    case CostBucket::kDma:
      return 4;
    case CostBucket::kWire:
      return 3;
    case CostBucket::kNicArm:
      return 2;
    case CostBucket::kHostCpu:
      return 1;
    case CostBucket::kQueueing:  // explicit wait spans; gaps are queueing anyway
      return 0;
    case CostBucket::kRedo:
      return 0;
  }
  return 0;
}

}  // namespace

BucketBreakdown ExtractCriticalPath(const TxnTree& tree, sim::Tick attempt_start, sim::Tick end,
                                    sim::Tick redo_ns) {
  BucketBreakdown out;
  if (end < attempt_start) {
    end = attempt_start;
  }

  std::vector<Edge> edges;
  edges.reserve(tree.cost.size() * 2);
  for (const TxnSpan& s : tree.cost) {
    // Clip to the attempt interval; spans wholly outside it (e.g. from an
    // earlier attempt that the harness chose not to discard) contribute
    // nothing here -- their time is the redo bucket.
    const sim::Tick lo = std::max(s.start, attempt_start);
    const sim::Tick hi = std::min(s.end, end);
    if (hi <= lo) {
      continue;
    }
    edges.push_back(Edge{lo, +1, static_cast<int>(s.bucket)});
    edges.push_back(Edge{hi, -1, static_cast<int>(s.bucket)});
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) { return a.at < b.at; });

  int active[kNumBuckets] = {};
  sim::Tick prev = attempt_start;
  size_t i = 0;
  auto charge = [&](sim::Tick upto) {
    if (upto <= prev) {
      return;
    }
    int best = static_cast<int>(CostBucket::kQueueing);
    int best_prio = -1;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (active[b] > 0) {
        const int p = Priority(static_cast<CostBucket>(b));
        if (p > best_prio) {
          best_prio = p;
          best = b;
        }
      }
    }
    out.ns[best] += static_cast<double>(upto - prev);
    prev = upto;
  };
  while (i < edges.size()) {
    const sim::Tick t = edges[i].at;
    charge(t);
    while (i < edges.size() && edges[i].at == t) {
      active[edges[i].bucket] += edges[i].delta;
      ++i;
    }
  }
  charge(end);

  out.ns[static_cast<int>(CostBucket::kRedo)] += static_cast<double>(redo_ns);
  out.total_ns = static_cast<double>(end - attempt_start) + static_cast<double>(redo_ns);
  return out;
}

TailAttribution AggregateTailAttribution(std::vector<BucketBreakdown> paths) {
  TailAttribution a;
  a.count = paths.size();
  for (int b = 0; b < kNumBuckets; ++b) {
    a.ranked[b] = b;
  }
  if (paths.empty()) {
    return a;
  }
  std::sort(paths.begin(), paths.end(),
            [](const BucketBreakdown& x, const BucketBreakdown& y) {
              return x.total_ns < y.total_ns;
            });

  const size_t n = paths.size();
  auto cohort_mean = [&](size_t lo, size_t hi, double* means, double* total) {
    // [lo, hi] inclusive; callers guarantee lo <= hi < n.
    const double cnt = static_cast<double>(hi - lo + 1);
    for (size_t i = lo; i <= hi; ++i) {
      for (int b = 0; b < kNumBuckets; ++b) {
        means[b] += paths[i].ns[b];
      }
      *total += paths[i].total_ns;
    }
    for (int b = 0; b < kNumBuckets; ++b) {
      means[b] /= cnt;
    }
    *total /= cnt;
  };
  const size_t p50_lo = n * 40 / 100;
  const size_t p50_hi = std::max(p50_lo, std::min(n - 1, n * 60 / 100));
  cohort_mean(p50_lo, p50_hi, a.p50_mean, &a.p50_total);
  cohort_mean(std::min(n - 1, n * 95 / 100), n - 1, a.tail_mean, &a.tail_total);

  for (int b = 0; b < kNumBuckets; ++b) {
    a.gap[b] = a.tail_mean[b] - a.p50_mean[b];
  }
  std::stable_sort(a.ranked, a.ranked + kNumBuckets,
                   [&](int x, int y) { return a.gap[x] > a.gap[y]; });
  a.fastest = a.ranked[0];
  return a;
}

std::string RenderTxnWaterfall(const TailAttribution& a, const std::string& title) {
  TablePrinter table({"bucket", "p50_us", "tail_us", "gap_us", "gap_share%"});
  const double total_gap = a.tail_total - a.p50_total;
  for (int r = 0; r < kNumBuckets; ++r) {
    const int b = a.ranked[r];
    const double share = total_gap > 0 ? 100.0 * a.gap[b] / total_gap : 0.0;
    table.AddRow({
        BucketName(static_cast<CostBucket>(b)),
        FmtDouble(a.p50_mean[b] / 1000.0, 2),
        FmtDouble(a.tail_mean[b] / 1000.0, 2),
        FmtDouble(a.gap[b] / 1000.0, 2),
        FmtDouble(share, 1),
    });
  }
  std::string out = table.Render(title);
  if (a.count == 0) {
    out += "tail gap: (no committed transactions traced)\n";
  } else {
    const int f = a.fastest;
    out += "txns=" + std::to_string(a.count) + " p50 total " +
           FmtDouble(a.p50_total / 1000.0, 2) + "us -> tail total " +
           FmtDouble(a.tail_total / 1000.0, 2) + "us; fastest-growing: " +
           BucketName(static_cast<CostBucket>(f)) + " (+" + FmtDouble(a.gap[f] / 1000.0, 2) +
           "us)\n";
  }
  return out;
}

std::string TxnAttribJson(const TailAttribution& a) {
  std::string out = "{\"count\":" + std::to_string(a.count);
  out += ",\"p50_total_us\":" + FmtDouble(a.p50_total / 1000.0, 3);
  out += ",\"tail_total_us\":" + FmtDouble(a.tail_total / 1000.0, 3);
  out += ",\"fastest\":";
  if (a.count == 0) {
    out += "null";
  } else {
    out += std::string("\"") + BucketName(static_cast<CostBucket>(a.fastest)) + "\"";
  }
  out += ",\"buckets\":[";
  for (int b = 0; b < kNumBuckets; ++b) {
    if (b != 0) {
      out += ',';
    }
    out += std::string("{\"bucket\":\"") + BucketName(static_cast<CostBucket>(b)) + "\"";
    out += ",\"p50_us\":" + FmtDouble(a.p50_mean[b] / 1000.0, 3);
    out += ",\"tail_us\":" + FmtDouble(a.tail_mean[b] / 1000.0, 3);
    out += ",\"gap_us\":" + FmtDouble(a.gap[b] / 1000.0, 3);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace xenic::obs
