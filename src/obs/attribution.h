// Bottleneck attribution: rank resource snapshots and name the binding one.
//
// Given the per-resource rows collected by ResourceMonitor over a
// measurement window, Attribute() orders them by how hard they are working
// (utilization, then mean queueing delay) and names the binding resource --
// the service center that limits throughput at this operating point. When
// no resource is meaningfully saturated the report says so instead of
// inventing a bottleneck: Xenic under contention is frequently
// protocol-bound (OCC aborts, lock waits), not resource-bound, and the
// report must be honest about that.

#ifndef SRC_OBS_ATTRIBUTION_H_
#define SRC_OBS_ATTRIBUTION_H_

#include <string>
#include <vector>

#include "src/obs/resource_stats.h"

namespace xenic::obs {

struct BottleneckReport {
  // Rows ordered by (utilization desc, mean wait desc, name asc).
  std::vector<ResourceSnapshot> ranked;
  // Index into `ranked` of the binding resource, or -1 if `ranked` is empty.
  int binding = -1;
  // True when the binding resource is busy enough (>= kSaturationFloor) to
  // plausibly limit throughput; false means "nothing saturated" and the
  // system is likely bound by protocol behaviour, not a service center.
  bool saturated = false;
};

// Utilization below this is not called a bottleneck.
inline constexpr double kSaturationFloor = 0.5;

BottleneckReport Attribute(std::vector<ResourceSnapshot> rows);

// Human-readable table (TablePrinter-aligned) plus a one-line verdict.
std::string RenderAttribution(const BottleneckReport& report, const std::string& title);

// JSON array of ranked rows plus the verdict, for embedding in bench JSON:
// {"binding":"nic_cores","saturated":true,"resources":[{...},...]}
std::string AttributionJson(const BottleneckReport& report);

}  // namespace xenic::obs

#endif  // SRC_OBS_ATTRIBUTION_H_
