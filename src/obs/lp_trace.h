// LpTraceSet: per-LP trace recording for a sharded (multi-LP) engine,
// merged deterministically afterwards.
//
// A single TraceRecorder attached with Engine::set_trace works on a
// sharded engine only while --engine-jobs is 1: with real worker threads,
// LPs emit concurrently and an unsynchronized recorder would race (and a
// locked one would interleave nondeterministically). LpTraceSet gives
// each LP its own recorder via Engine::set_lp_trace -- no locking, no
// cross-thread writes -- and merges them after the run by LP id. Each
// LP's event stream is byte-identical for any worker count (the engine's
// determinism contract), so the merged JSON is too: tracks are namespaced
// "lp<k>.<process>" and pids are offset per LP, making the merge a pure
// function of the per-LP streams.
//
// Usage:
//   sim::Engine eng;
//   eng.ConfigureLps(8, lookahead);
//   obs::LpTraceSet traces(&eng);   // attaches to every LP
//   ... run ...
//   traces.Detach();                // or let the destructor do it
//   traces.WriteJson("out.trace.json");

#ifndef SRC_OBS_LP_TRACE_H_
#define SRC_OBS_LP_TRACE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/obs/trace_recorder.h"
#include "src/sim/engine.h"

namespace xenic::obs {

class LpTraceSet {
 public:
  // Attaches one recorder per LP. The engine must be sharded
  // (ConfigureLps called) and must outlive this set or be detached first.
  explicit LpTraceSet(sim::Engine* engine);
  ~LpTraceSet();

  LpTraceSet(const LpTraceSet&) = delete;
  LpTraceSet& operator=(const LpTraceSet&) = delete;

  // Detach every per-LP sink from the engine (idempotent; the recorded
  // events stay available for merging).
  void Detach();

  uint32_t num_lps() const { return static_cast<uint32_t>(sinks_.size()); }
  const TraceRecorder& lp(uint32_t k) const { return *sinks_[k]; }
  size_t num_events() const;

  // Deterministic merged Chrome trace: LP streams spliced in LP order,
  // each in its own pid namespace.
  std::string MergedJson() const;
  bool WriteJson(const std::string& path) const;

 private:
  // Pid space reserved per LP; more processes than this in one LP would
  // collide with the next LP's namespace.
  static constexpr uint32_t kPidStride = 4096;

  class LpSink : public TraceRecorder {
   public:
    LpSink(uint32_t lp, uint32_t pid_base)
        : TraceRecorder(pid_base), prefix_("lp" + std::to_string(lp) + ".") {}
    uint32_t RegisterTrack(const std::string& process, const std::string& track) override {
      return TraceRecorder::RegisterTrack(prefix_ + process, track);
    }

   private:
    std::string prefix_;
  };

  sim::Engine* engine_;
  std::vector<std::unique_ptr<LpSink>> sinks_;
};

}  // namespace xenic::obs

#endif  // SRC_OBS_LP_TRACE_H_
