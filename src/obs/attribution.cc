#include "src/obs/attribution.h"

#include <algorithm>
#include <cstdio>

#include "src/common/table_printer.h"

namespace xenic::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string FmtDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace

BottleneckReport Attribute(std::vector<ResourceSnapshot> rows) {
  BottleneckReport report;
  report.ranked = std::move(rows);
  std::stable_sort(report.ranked.begin(), report.ranked.end(),
                   [](const ResourceSnapshot& a, const ResourceSnapshot& b) {
                     if (a.utilization != b.utilization) {
                       return a.utilization > b.utilization;
                     }
                     if (a.mean_wait_ns != b.mean_wait_ns) {
                       return a.mean_wait_ns > b.mean_wait_ns;
                     }
                     return a.name < b.name;
                   });
  if (!report.ranked.empty()) {
    report.binding = 0;
    report.saturated = report.ranked[0].utilization >= kSaturationFloor;
  }
  return report;
}

std::string RenderAttribution(const BottleneckReport& report, const std::string& title) {
  TablePrinter table({"resource", "kind", "inst", "srv", "util%", "wire%", "wait_us", "p99_wait_us",
                      "peak_q", "done"});
  for (const ResourceSnapshot& r : report.ranked) {
    table.AddRow({
        r.name,
        r.is_link ? "link" : "pool",
        TablePrinter::Fmt(static_cast<uint64_t>(r.instances)),
        r.is_link ? "-" : TablePrinter::Fmt(static_cast<uint64_t>(r.servers)),
        FmtDouble(100.0 * r.utilization, 1),
        r.is_link ? FmtDouble(100.0 * r.wire_utilization, 1) : "-",
        FmtDouble(r.mean_wait_ns / 1000.0, 2),
        FmtDouble(static_cast<double>(r.p99_wait_ns) / 1000.0, 2),
        TablePrinter::Fmt(r.peak_queue),
        TablePrinter::Fmt(r.completed),
    });
  }
  std::string out = table.Render(title);
  if (report.binding < 0) {
    out += "binding: (no resources tracked)\n";
  } else {
    const ResourceSnapshot& top = report.ranked[report.binding];
    if (report.saturated) {
      out += "binding: " + top.name + " (" + FmtDouble(100.0 * top.utilization, 1) +
             "% utilized, mean wait " + FmtDouble(top.mean_wait_ns / 1000.0, 2) + "us)\n";
    } else {
      out += "binding: none saturated (top: " + top.name + " at " +
             FmtDouble(100.0 * top.utilization, 1) +
             "%); throughput is protocol-bound (aborts/locking), not resource-bound\n";
    }
  }
  return out;
}

std::string AttributionJson(const BottleneckReport& report) {
  std::string out = "{\"binding\":";
  if (report.binding < 0) {
    out += "null";
  } else {
    out += "\"" + JsonEscape(report.ranked[report.binding].name) + "\"";
  }
  out += ",\"saturated\":";
  out += report.saturated ? "true" : "false";
  out += ",\"resources\":[";
  bool first = true;
  for (const ResourceSnapshot& r : report.ranked) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"" + JsonEscape(r.name) + "\"";
    out += ",\"kind\":\"";
    out += r.is_link ? "link" : "pool";
    out += "\",\"instances\":" + std::to_string(r.instances);
    out += ",\"servers\":" + std::to_string(r.servers);
    out += ",\"utilization\":" + FmtDouble(r.utilization, 6);
    out += ",\"wire_utilization\":" + FmtDouble(r.wire_utilization, 6);
    out += ",\"busy_ns\":" + std::to_string(r.busy_ns);
    out += ",\"completed\":" + std::to_string(r.completed);
    out += ",\"mean_wait_ns\":" + FmtDouble(r.mean_wait_ns, 2);
    out += ",\"p99_wait_ns\":" + std::to_string(r.p99_wait_ns);
    out += ",\"max_wait_ns\":" + std::to_string(r.max_wait_ns);
    out += ",\"peak_queue\":" + std::to_string(r.peak_queue);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace xenic::obs
