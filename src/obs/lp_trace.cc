#include "src/obs/lp_trace.h"

#include <cassert>
#include <cstdio>

namespace xenic::obs {

LpTraceSet::LpTraceSet(sim::Engine* engine) : engine_(engine) {
  assert(engine->sharded() && "LpTraceSet needs a sharded engine (ConfigureLps first)");
  const uint32_t n = engine->num_lps();
  sinks_.reserve(n);
  for (uint32_t lp = 0; lp < n; ++lp) {
    sinks_.push_back(std::make_unique<LpSink>(lp, lp * kPidStride));
    engine->set_lp_trace(lp, sinks_.back().get());
  }
}

LpTraceSet::~LpTraceSet() { Detach(); }

void LpTraceSet::Detach() {
  if (engine_ == nullptr) {
    return;
  }
  for (uint32_t lp = 0; lp < num_lps(); ++lp) {
    if (engine_->lp_trace(lp) == sinks_[lp].get()) {
      engine_->set_lp_trace(lp, nullptr);
    }
  }
  engine_ = nullptr;
}

size_t LpTraceSet::num_events() const {
  size_t n = 0;
  for (const auto& s : sinks_) {
    n += s->num_events();
  }
  return n;
}

std::string LpTraceSet::MergedJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const auto& s : sinks_) {
    s->AppendJsonEvents(&out, &first);
  }
  out += "]}";
  return out;
}

bool LpTraceSet::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = MergedJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace xenic::obs
