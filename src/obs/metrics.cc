#include "src/obs/metrics.h"

#include <sstream>

namespace xenic::obs {

WindowSeries::WindowSeries(sim::Tick window, sim::Tick end)
    : window_(window), end_(end) {
  if (window_ == 0) {
    return;
  }
  // ceil(end / window) windows tile exactly [0, end] (at least one even for
  // a degenerate zero-length run, so exactly-at-end samples have a home).
  count_ = std::max<size_t>(1, static_cast<size_t>((end_ + window_ - 1) / window_));
}

bool WindowSeries::IndexOf(sim::Tick t, size_t* index) const {
  if (count_ == 0 || t > end_) {
    return false;
  }
  *index = std::min(count_ - 1, static_cast<size_t>(t / window_));
  return true;
}

size_t WindowSeries::CountWithin(sim::Tick clamp) const {
  if (clamp == 0) {
    return count_;
  }
  size_t n = 0;
  while (n < count_ && StartOf(n) + WidthOf(n) <= clamp) {
    n++;
  }
  return n;
}

void WindowCounter::Add(sim::Tick t, uint64_t n) {
  if (!reg_->active() || t < reg_->origin()) {
    return;
  }
  size_t i = 0;
  if (reg_->series().IndexOf(t - reg_->origin(), &i)) {
    values_[i] += n;
  }
}

uint64_t WindowCounter::Total() const {
  uint64_t sum = 0;
  for (uint64_t v : values_) {
    sum += v;
  }
  return sum;
}

void WindowHistogram::Record(sim::Tick t, uint64_t value) {
  if (!reg_->active() || t < reg_->origin()) {
    return;
  }
  size_t i = 0;
  if (reg_->series().IndexOf(t - reg_->origin(), &i)) {
    if (windows_[i] == nullptr) {
      windows_[i] = std::make_unique<Histogram>();
    }
    windows_[i]->Record(value);
  }
}

const Histogram* WindowHistogram::WindowAt(size_t i) const {
  return i < windows_.size() ? windows_[i].get() : nullptr;
}

Histogram WindowHistogram::Merged(size_t lo, size_t hi) const {
  Histogram out;
  for (size_t i = lo; i < hi && i < windows_.size(); ++i) {
    if (windows_[i] != nullptr) {
      out.Merge(*windows_[i]);
    }
  }
  return out;
}

WindowCounter* MetricRegistry::AddCounter(const std::string& name, MetricLabels labels) {
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->kind = Kind::kCounter;
  m->counter.reset(new WindowCounter(this));
  WindowCounter* out = m->counter.get();
  metrics_.push_back(std::move(m));
  return out;
}

WindowHistogram* MetricRegistry::AddHistogram(const std::string& name, MetricLabels labels) {
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->kind = Kind::kHistogram;
  m->hist.reset(new WindowHistogram(this));
  WindowHistogram* out = m->hist.get();
  metrics_.push_back(std::move(m));
  return out;
}

void MetricRegistry::AddGauge(const std::string& name, MetricLabels labels,
                              std::function<uint64_t()> read) {
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->kind = Kind::kGauge;
  m->read = std::move(read);
  metrics_.push_back(std::move(m));
}

void MetricRegistry::AddCumulative(const std::string& name, MetricLabels labels,
                                   std::function<uint64_t()> read) {
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->kind = Kind::kCumulative;
  m->read = std::move(read);
  metrics_.push_back(std::move(m));
}

void MetricRegistry::SetSeries(const std::string& name, MetricLabels labels,
                               std::vector<uint64_t> values) {
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->labels = std::move(labels);
  m->kind = Kind::kSeries;
  m->values = std::move(values);
  m->values.resize(series_.size(), 0);
  metrics_.push_back(std::move(m));
}

void MetricRegistry::AddSampleHook(std::function<void()> hook) {
  hooks_.push_back(std::move(hook));
}

void MetricRegistry::BeginWindows(const WindowSeries& series, sim::Tick origin) {
  series_ = series;
  origin_ = origin;
  active_ = true;
  for (auto& m : metrics_) {
    switch (m->kind) {
      case Kind::kCounter:
        m->counter->values_.assign(series_.size(), 0);
        break;
      case Kind::kHistogram:
        m->hist->windows_.clear();
        m->hist->windows_.resize(series_.size());
        break;
      case Kind::kGauge:
      case Kind::kCumulative:
        m->values.assign(series_.size(), 0);
        // Baseline the delta at window-0 open, so a source that was already
        // counting before the measurement window (it was just Reset, but a
        // caller may attach late) reports only in-window activity.
        m->last = m->kind == Kind::kCumulative ? m->read() : 0;
        break;
      case Kind::kSeries:
        m->values.resize(series_.size(), 0);
        break;
    }
  }
}

void MetricRegistry::CloseWindow(size_t i) {
  if (!active_ || i >= series_.size()) {
    return;
  }
  for (auto& hook : hooks_) {
    hook();
  }
  for (auto& m : metrics_) {
    if (m->kind == Kind::kGauge) {
      m->values[i] = m->read();
    } else if (m->kind == Kind::kCumulative) {
      const uint64_t now = m->read();
      m->values[i] = now - m->last;
      m->last = now;
    }
  }
}

const WindowCounter* MetricRegistry::FindCounter(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m->kind == Kind::kCounter && m->name == name) {
      return m->counter.get();
    }
  }
  return nullptr;
}

const WindowHistogram* MetricRegistry::FindHistogram(const std::string& name) const {
  for (const auto& m : metrics_) {
    if (m->kind == Kind::kHistogram && m->name == name) {
      return m->hist.get();
    }
  }
  return nullptr;
}

void MetricRegistry::MarkFault(sim::Tick at, const std::string& kind, uint32_t node) {
  FaultMark f;
  f.at = at;
  f.kind = kind;
  f.node = node;
  const sim::Tick rel = at >= origin_ ? at - origin_ : 0;
  size_t idx = 0;
  f.in_range = at >= origin_ && series_.IndexOf(rel, &idx);
  f.window = idx;
  faults_.push_back(f);
}

namespace {

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += labels[i].first + "=" + labels[i].second;
  }
  out += '}';
  return out;
}

const char* KindName(uint8_t k) {
  switch (k) {
    case 0:
      return "counter";
    case 1:
      return "histogram";
    case 2:
      return "gauge";
    case 3:
      return "counter";  // cumulative sources are counters, stored as deltas
    default:
      return "series";
  }
}

std::string JsonLabels(const MetricLabels& labels) {
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += "\"" + labels[i].first + "\":\"" + labels[i].second + "\"";
  }
  out += '}';
  return out;
}

}  // namespace

std::string MetricRegistry::Lines(const std::string& prefix) const {
  std::ostringstream os;
  os << prefix << "window_ns=" << series_.window() << " end_ns=" << series_.end()
     << " windows=" << series_.size() << " origin_ns=" << origin_ << "\n";
  for (const auto& f : faults_) {
    os << prefix << "fault at_us=" << f.at / sim::kNsPerUs << " kind=" << f.kind
       << " node=" << f.node << " window=";
    if (f.in_range) {
      os << f.window;
    } else {
      os << "--";
    }
    os << "\n";
  }
  for (const auto& m : metrics_) {
    const std::string id = m->name + RenderLabels(m->labels);
    if (m->kind == Kind::kHistogram) {
      // count / p50 / p99 sub-series; empty windows render "--" (the text
      // twin of the NaN-sentinel convention in P999LatencyUs).
      for (const char* stat : {"count", "p50", "p99"}) {
        os << prefix << id << "." << stat << ":";
        for (size_t i = 0; i < series_.size(); ++i) {
          const Histogram* h = m->hist->WindowAt(i);
          os << ' ';
          if (h == nullptr || h->count() == 0) {
            os << "--";
          } else if (std::string(stat) == "count") {
            os << h->count();
          } else if (std::string(stat) == "p50") {
            os << h->Median();
          } else {
            os << h->P99();
          }
        }
        os << "\n";
      }
      continue;
    }
    os << prefix << id << ":";
    for (size_t i = 0; i < series_.size(); ++i) {
      os << ' '
         << (m->kind == Kind::kCounter ? m->counter->ValueAt(i)
                                       : (i < m->values.size() ? m->values[i] : 0));
    }
    os << "\n";
  }
  return os.str();
}

std::string MetricRegistry::Json(const std::string& bench, const std::string& extra_json) const {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"window_ns\":" << series_.window()
     << ",\"end_ns\":" << series_.end() << ",\"origin_ns\":" << origin_ << ",\"windows\":[";
  for (size_t i = 0; i < series_.size(); ++i) {
    if (i > 0) {
      os << ',';
    }
    os << "{\"start_ns\":" << series_.StartOf(i) << ",\"width_ns\":" << series_.WidthOf(i)
       << "}";
  }
  os << "],\"faults\":[";
  for (size_t i = 0; i < faults_.size(); ++i) {
    const FaultMark& f = faults_[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"at_ns\":" << f.at << ",\"kind\":\"" << f.kind << "\",\"node\":" << f.node
       << ",\"window\":";
    if (f.in_range) {
      os << f.window;
    } else {
      os << "null";
    }
    os << "}";
  }
  os << "],\"metrics\":[";
  for (size_t mi = 0; mi < metrics_.size(); ++mi) {
    const Metric& m = *metrics_[mi];
    if (mi > 0) {
      os << ',';
    }
    os << "{\"name\":\"" << m.name << "\",\"labels\":" << JsonLabels(m.labels)
       << ",\"kind\":\"" << KindName(static_cast<uint8_t>(m.kind)) << "\"";
    if (m.kind == Kind::kHistogram) {
      auto stat = [&](const char* key, auto&& get) {
        os << ",\"" << key << "\":[";
        for (size_t i = 0; i < series_.size(); ++i) {
          if (i > 0) {
            os << ',';
          }
          const Histogram* h = m.hist->WindowAt(i);
          if (h == nullptr || h->count() == 0) {
            os << "null";
          } else {
            os << get(*h);
          }
        }
        os << "]";
      };
      stat("count", [](const Histogram& h) { return h.count(); });
      stat("p50", [](const Histogram& h) { return h.Median(); });
      stat("p99", [](const Histogram& h) { return h.P99(); });
      stat("max", [](const Histogram& h) { return h.max(); });
    } else {
      os << ",\"values\":[";
      for (size_t i = 0; i < series_.size(); ++i) {
        if (i > 0) {
          os << ',';
        }
        os << (m.kind == Kind::kCounter ? m.counter->ValueAt(i)
                                        : (i < m.values.size() ? m.values[i] : 0));
      }
      os << "]";
    }
    os << "}";
  }
  os << "]";
  if (!extra_json.empty()) {
    os << ",\"slo\":" << extra_json;
  }
  os << "}";
  return os.str();
}

std::string MetricRegistry::OpenMetrics(const std::string& prefix,
                                        const MetricLabels& extra) const {
  std::ostringstream os;
  auto labels = [&](const Metric& m, size_t window) {
    std::string out = "{";
    bool first = true;
    for (const auto& kv : extra) {
      out += (first ? "" : ",") + kv.first + "=\"" + kv.second + "\"";
      first = false;
    }
    for (const auto& kv : m.labels) {
      out += (first ? "" : ",") + kv.first + "=\"" + kv.second + "\"";
      first = false;
    }
    out += (first ? "" : ",");
    out += "window=\"" + std::to_string(window) + "\"}";
    return out;
  };
  for (const auto& mp : metrics_) {
    const Metric& m = *mp;
    const std::string name = prefix + "_" + m.name;
    if (m.kind == Kind::kHistogram) {
      os << "# TYPE " << name << " summary\n";
      for (size_t i = 0; i < series_.size(); ++i) {
        const Histogram* h = m.hist->WindowAt(i);
        if (h == nullptr || h->count() == 0) {
          continue;  // OpenMetrics has no NaN row; absent sample = no data
        }
        std::string l = labels(m, i);
        l.pop_back();  // reopen to append the quantile label
        os << name << l << ",quantile=\"0.5\"} " << h->Median() << "\n";
        os << name << l << ",quantile=\"0.99\"} " << h->P99() << "\n";
        os << name << "_count" << labels(m, i) << " " << h->count() << "\n";
      }
      continue;
    }
    const bool counter = m.kind == Kind::kCounter || m.kind == Kind::kCumulative;
    os << "# TYPE " << name << (counter ? " counter\n" : " gauge\n");
    for (size_t i = 0; i < series_.size(); ++i) {
      const uint64_t v = m.kind == Kind::kCounter
                             ? m.counter->ValueAt(i)
                             : (i < m.values.size() ? m.values[i] : 0);
      os << name << (counter ? "_total" : "") << labels(m, i) << " " << v << "\n";
    }
  }
  os << "# EOF\n";
  return os.str();
}

}  // namespace xenic::obs
