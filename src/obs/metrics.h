// Windowed metrics: a deterministic, observer-only time-series layer over
// the simulated cluster.
//
// WindowSeries is the one shared windowing helper: it tiles [0, end] with
// ceil(end/window) windows whose final window is partial (smaller width)
// when the window does not divide the run, drops samples past the end, and
// folds samples at exactly the end into the final window. The chaos
// --timeline bins, the availability-dip accounting, and the metric
// registry's sampling cadence all sit on it, so the partial-window bug
// class (fixed once in PR 8) cannot recur independently in three places.
//
// MetricRegistry holds named metrics in first-registration order
// (deterministic output) and samples them on a simulated-time cadence:
//   - WindowCounter / WindowHistogram: push-style, fed from completion
//     callbacks already in place (the chaos-timeline idiom -- pure
//     bookkeeping, never schedules anything).
//   - gauges / cumulatives: pull-style reader callbacks sampled when the
//     driver closes a window. Cumulative sources (monotonic counters such
//     as Resource::busy_time) are stored as per-window deltas.
//
// Determinism contract: attaching a registry is observer-only. The driver
// samples by slicing one RunFor into repeated RunUntil calls at window
// boundaries -- the engine executes the identical event schedule either
// way (RunUntil never schedules; it only bounds dispatch), so every
// simulation-derived scalar, including events_executed, is byte-identical
// with metrics on or off. tools/check_determinism.sh enforces this.
//
// All stored and rendered values are integers (ns, counts); empty
// histogram windows render as "--" (text) / null (JSON), matching the
// NaN-sentinel convention of P999LatencyUs.

#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/sim/engine.h"

namespace xenic::obs {

// Tiles [0, end] with `window`-wide windows. Default-constructed (or
// window == 0): empty, every lookup misses.
class WindowSeries {
 public:
  WindowSeries() = default;
  WindowSeries(sim::Tick window, sim::Tick end);

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  sim::Tick window() const { return window_; }
  sim::Tick end() const { return end_; }
  sim::Tick StartOf(size_t i) const { return static_cast<sim::Tick>(i) * window_; }
  // The final window is partial when `window` does not divide `end`;
  // consumers normalizing to rates must use this, not window().
  sim::Tick WidthOf(size_t i) const { return std::min(window_, end_ - StartOf(i)); }

  // Window containing `t`. Samples at exactly `end` fold into the final
  // (closed) window; samples past it are outside the domain -> false.
  bool IndexOf(sim::Tick t, size_t* index) const;

  // Number of leading windows that lie entirely within [0, clamp]
  // (clamp == 0 keeps all). Availability math uses this to exclude
  // drain-tail windows, partial or not, past the submission horizon.
  size_t CountWithin(sim::Tick clamp) const;

 private:
  sim::Tick window_ = 0;
  sim::Tick end_ = 0;
  size_t count_ = 0;
};

// Metric labels, rendered in the given order (callers keep it canonical).
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class MetricRegistry;

// Push-style per-window event counter. Add() before BeginWindows or with a
// timestamp outside the series domain is dropped (warmup / drain).
class WindowCounter {
 public:
  void Add(sim::Tick t, uint64_t n = 1);
  uint64_t ValueAt(size_t i) const { return i < values_.size() ? values_[i] : 0; }
  uint64_t Total() const;
  size_t size() const { return values_.size(); }

 private:
  friend class MetricRegistry;
  explicit WindowCounter(const MetricRegistry* reg) : reg_(reg) {}
  const MetricRegistry* reg_;
  std::vector<uint64_t> values_;
};

// Push-style windowed histogram (one Histogram per window). Record() with a
// timestamp at a window boundary lands in the window the boundary starts
// (start-inclusive), except exactly-at-end which folds into the final
// window -- the same tiling rule every WindowSeries consumer uses.
class WindowHistogram {
 public:
  void Record(sim::Tick t, uint64_t value);
  // Null for windows with no samples (callers render "--" / null).
  const Histogram* WindowAt(size_t i) const;
  // Merged distribution over windows [lo, hi).
  Histogram Merged(size_t lo, size_t hi) const;
  size_t size() const { return windows_.size(); }

 private:
  friend class MetricRegistry;
  explicit WindowHistogram(const MetricRegistry* reg) : reg_(reg) {}
  const MetricRegistry* reg_;
  std::vector<std::unique_ptr<Histogram>> windows_;
};

// One planned fault, aligned to the window that contains it (the alignment
// chaos timelines need to overlay markers on the series).
struct FaultMark {
  sim::Tick at = 0;
  std::string kind;
  uint32_t node = 0;
  bool in_range = false;  // false: fault fired outside the series domain
  size_t window = 0;      // valid when in_range
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- Registration (before BeginWindows; first-registration order is the
  // output order, so it must be deterministic -- which every caller's
  // enumeration already is, e.g. SystemAdapter::ForEachResource).
  WindowCounter* AddCounter(const std::string& name, MetricLabels labels = {});
  WindowHistogram* AddHistogram(const std::string& name, MetricLabels labels = {});
  // Instantaneous reading sampled when a window closes (queue depths).
  void AddGauge(const std::string& name, MetricLabels labels,
                std::function<uint64_t()> read);
  // Monotonic source (busy_ns, completed, messages); stored per-window
  // deltas, so the series integrates back to the source's final value.
  void AddCumulative(const std::string& name, MetricLabels labels,
                     std::function<uint64_t()> read);
  // Post-run series computed outside the registry (e.g. per-window
  // degraded service time derived from availability accounting).
  void SetSeries(const std::string& name, MetricLabels labels,
                 std::vector<uint64_t> values);
  // Runs first at every CloseWindow, in registration order; sources that
  // share an expensive snapshot (TxnStats) refresh it here once.
  void AddSampleHook(std::function<void()> hook);

  // --- Sampling (driven by the harness at window boundaries).
  void BeginWindows(const WindowSeries& series, sim::Tick origin);
  void CloseWindow(size_t i);
  bool active() const { return active_; }
  const WindowSeries& series() const { return series_; }
  sim::Tick origin() const { return origin_; }

  // `at` is engine time (same clock as BeginWindows' origin).
  void MarkFault(sim::Tick at, const std::string& kind, uint32_t node);
  const std::vector<FaultMark>& faults() const { return faults_; }

  // Name lookup (first match; null when absent or of another kind), so SLO
  // evaluation can find the standard harness series without the registrant
  // having to thread raw pointers through.
  const WindowCounter* FindCounter(const std::string& name) const;
  const WindowHistogram* FindHistogram(const std::string& name) const;

  // --- Deterministic exports.
  // One line per metric, every line prefixed with `prefix` (callers pass
  // "metrics " so check_determinism.sh can strip them). Integer-only;
  // empty histogram windows render "--".
  std::string Lines(const std::string& prefix) const;
  // JSON object: windows, fault markers, every metric as a value array
  // (null for empty histogram windows). `extra_json` (e.g. an SLO report)
  // is spliced in as a top-level "slo" member when non-empty.
  std::string Json(const std::string& bench, const std::string& extra_json = "") const;
  // OpenMetrics text exposition; every sample carries a window="i" label
  // (plus `extra`), counters get the _total suffix, ends with # EOF.
  std::string OpenMetrics(const std::string& prefix = "xenic",
                          const MetricLabels& extra = {}) const;

 private:
  friend class WindowCounter;
  friend class WindowHistogram;

  enum class Kind : uint8_t { kCounter, kHistogram, kGauge, kCumulative, kSeries };
  struct Metric {
    std::string name;
    MetricLabels labels;
    Kind kind;
    std::unique_ptr<WindowCounter> counter;   // kCounter
    std::unique_ptr<WindowHistogram> hist;    // kHistogram
    std::function<uint64_t()> read;           // kGauge / kCumulative
    uint64_t last = 0;                        // kCumulative delta base
    std::vector<uint64_t> values;             // kGauge / kCumulative / kSeries
  };

  std::vector<std::unique_ptr<Metric>> metrics_;
  std::vector<std::function<void()>> hooks_;
  std::vector<FaultMark> faults_;
  WindowSeries series_;
  sim::Tick origin_ = 0;
  bool active_ = false;
};

}  // namespace xenic::obs

#endif  // SRC_OBS_METRICS_H_
