#include "src/obs/slo.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace xenic::obs {

namespace {

// One clause: "p99<50us" or "goodput>0.95".
bool ParseClause(const std::string& clause, SloObjective* out, std::string* error) {
  auto fail = [&](const char* why) {
    if (error != nullptr) {
      *error = "bad SLO clause '" + clause + "': " + why;
    }
    return false;
  };
  out->spec = clause;
  if (clause.rfind("goodput>", 0) == 0) {
    const std::string v = clause.substr(8);
    char* end = nullptr;
    const double f = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0' || f <= 0 || f >= 1) {
      return fail("goodput wants a fraction in (0, 1)");
    }
    out->kind = SloKind::kGoodput;
    out->min_goodput_ppm = static_cast<uint64_t>(std::llround(f * 1e6));
    out->budget_ppm = 1000000 - out->min_goodput_ppm;
    return true;
  }
  if (clause.size() < 2 || clause[0] != 'p') {
    return fail("expected pQQ<BOUND or goodput>F");
  }
  const size_t lt = clause.find('<');
  if (lt == std::string::npos || lt < 2) {
    return fail("latency objective wants pQQ<BOUND");
  }
  // pQQ -> quantile QQ / 10^digits (p99 -> 0.99, p999 -> 0.999), kept as
  // exact ppm so the budget needs no float round-trip.
  uint64_t q_ppm = 0;
  uint64_t scale = 1000000;
  for (size_t i = 1; i < lt; ++i) {
    if (clause[i] < '0' || clause[i] > '9') {
      return fail("quantile digits");
    }
    if (scale < 10) {
      return fail("quantile too precise (max p99999)");
    }
    scale /= 10;
    q_ppm = q_ppm * 10 + static_cast<uint64_t>(clause[i] - '0');
  }
  q_ppm *= scale;
  if (q_ppm == 0 || q_ppm >= 1000000) {
    return fail("quantile must be in (0, 1)");
  }
  const std::string bound = clause.substr(lt + 1);
  char* end = nullptr;
  const double v = std::strtod(bound.c_str(), &end);
  if (end == bound.c_str() || v <= 0) {
    return fail("latency bound");
  }
  uint64_t unit_ns = 0;
  const std::string unit(end);
  if (unit == "ns") {
    unit_ns = 1;
  } else if (unit == "us") {
    unit_ns = 1000;
  } else if (unit == "ms") {
    unit_ns = 1000000;
  } else {
    return fail("latency unit (ns|us|ms)");
  }
  out->kind = SloKind::kLatencyQuantile;
  out->quantile = static_cast<double>(q_ppm) / 1e6;
  out->threshold_ns = static_cast<uint64_t>(std::llround(v * static_cast<double>(unit_ns)));
  out->budget_ppm = 1000000 - q_ppm;
  return true;
}

}  // namespace

bool ParseSloSpec(const std::string& text, SloSpec* spec, std::string* error) {
  spec->objectives.clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) {
      comma = text.size();
    }
    const std::string clause = text.substr(pos, comma - pos);
    if (!clause.empty()) {
      SloObjective obj;
      if (!ParseClause(clause, &obj, error)) {
        return false;
      }
      spec->objectives.push_back(obj);
    }
    pos = comma + 1;
  }
  if (spec->objectives.empty()) {
    if (error != nullptr) {
      *error = "empty SLO spec";
    }
    return false;
  }
  return true;
}

SloReport EvaluateSlo(const SloSpec& spec, const std::vector<SloWindowInput>& windows) {
  SloReport report;
  for (const SloObjective& obj : spec.objectives) {
    SloObjectiveResult r;
    r.objective = obj;
    r.windows_total = windows.size();

    // Per-window event/bad-event counts, first pass (run totals size the
    // error budget before exhaustion can be located).
    std::vector<uint64_t> events(windows.size(), 0);
    std::vector<uint64_t> bad(windows.size(), 0);
    for (size_t i = 0; i < windows.size(); ++i) {
      const SloWindowInput& w = windows[i];
      if (obj.kind == SloKind::kLatencyQuantile) {
        const Histogram* h = w.latency;
        events[i] = h == nullptr ? 0 : h->count();
        bad[i] = (h == nullptr || events[i] == 0) ? 0 : h->CountAbove(obj.threshold_ns);
      } else {
        events[i] = w.committed + w.aborted;
        bad[i] = w.aborted;
      }
      r.total_events += events[i];
      r.bad_events += bad[i];
    }

    // Run budget: budget_ppm * total_events bad-event-millionths.
    const uint64_t allowed_x1e6 = obj.budget_ppm * r.total_events;
    uint64_t cum_bad = 0;
    for (size_t i = 0; i < windows.size(); ++i) {
      const SloWindowInput& w = windows[i];
      if (events[i] == 0) {
        continue;  // zero traffic: vacuously compliant, no burn
      }
      r.windows_with_traffic++;
      bool violating = false;
      if (obj.kind == SloKind::kLatencyQuantile) {
        // Strict bound: pQQ < T is violated at exactly T.
        violating = w.latency->ValueAtQuantile(obj.quantile) >= obj.threshold_ns;
      } else {
        // goodput > F is violated at exactly F (cross-multiplied integers).
        violating = w.committed * 1000000 <= obj.min_goodput_ppm * events[i];
      }
      if (violating) {
        r.windows_violating++;
        if (r.first_violation_us < 0) {
          r.first_violation_us = static_cast<int64_t>(w.start / sim::kNsPerUs);
        }
      }
      if (obj.budget_ppm > 0) {
        const uint64_t burn =
            bad[i] * 1000000000ULL / (events[i] * obj.budget_ppm);
        r.max_window_burn_x1000 = std::max(r.max_window_burn_x1000, burn);
      }
      cum_bad += bad[i];
      if (r.budget_exhausted_us < 0 && allowed_x1e6 > 0 &&
          cum_bad * 1000000 > allowed_x1e6) {
        r.budget_exhausted_us = static_cast<int64_t>(w.start / sim::kNsPerUs);
      }
    }
    if (r.total_events > 0 && obj.budget_ppm > 0) {
      r.run_burn_x1000 = r.bad_events * 1000000000ULL / (r.total_events * obj.budget_ppm);
      r.budget_consumed_ppm =
          r.bad_events * 1000000000000ULL / (r.total_events * obj.budget_ppm);
    }
    report.objectives.push_back(std::move(r));
  }
  return report;
}

std::vector<SloWindowInput> SloInputsFromSeries(const WindowSeries& series,
                                               const WindowCounter* committed,
                                               const WindowCounter* aborted,
                                               const WindowHistogram* latency) {
  std::vector<SloWindowInput> out;
  out.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    SloWindowInput w;
    w.start = series.StartOf(i);
    w.width = series.WidthOf(i);
    w.committed = committed != nullptr ? committed->ValueAt(i) : 0;
    w.aborted = aborted != nullptr ? aborted->ValueAt(i) : 0;
    w.latency = latency != nullptr ? latency->WindowAt(i) : nullptr;
    out.push_back(w);
  }
  return out;
}

std::string SloReport::Lines(const std::string& prefix) const {
  std::ostringstream os;
  for (const auto& r : objectives) {
    os << prefix << "objective=" << r.objective.spec << " violated=" << (r.violated() ? 1 : 0)
       << " windows_violating=" << r.windows_violating
       << " windows_traffic=" << r.windows_with_traffic << " windows=" << r.windows_total
       << " first_violation_us=" << r.first_violation_us << " bad_events=" << r.bad_events
       << " total_events=" << r.total_events
       << " budget_consumed_ppm=" << r.budget_consumed_ppm
       << " max_window_burn_x1000=" << r.max_window_burn_x1000
       << " run_burn_x1000=" << r.run_burn_x1000
       << " budget_exhausted_us=" << r.budget_exhausted_us << "\n";
  }
  os << prefix << "verdict=" << (ok() ? "OK" : "VIOLATED") << "\n";
  return os.str();
}

std::string SloReport::Json() const {
  std::ostringstream os;
  os << "{\"ok\":" << (ok() ? "true" : "false") << ",\"objectives\":[";
  for (size_t i = 0; i < objectives.size(); ++i) {
    const auto& r = objectives[i];
    if (i > 0) {
      os << ',';
    }
    os << "{\"spec\":\"" << r.objective.spec << "\",\"violated\":"
       << (r.violated() ? "true" : "false") << ",\"windows_violating\":" << r.windows_violating
       << ",\"windows_traffic\":" << r.windows_with_traffic
       << ",\"windows\":" << r.windows_total
       << ",\"first_violation_us\":" << r.first_violation_us
       << ",\"bad_events\":" << r.bad_events << ",\"total_events\":" << r.total_events
       << ",\"budget_consumed_ppm\":" << r.budget_consumed_ppm
       << ",\"max_window_burn_x1000\":" << r.max_window_burn_x1000
       << ",\"run_burn_x1000\":" << r.run_burn_x1000
       << ",\"budget_exhausted_us\":" << r.budget_exhausted_us << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace xenic::obs
