// Declarative service-level objectives over the windowed metric series,
// with SRE-style error-budget accounting.
//
// An objective spec is a comma list, e.g. "p99<50us,goodput>0.95":
//   pQQ<Tus | pQQ<Tms | pQQ<Tns   latency quantile bound per window
//   goodput>F                     committed / (committed + aborted) > F
//
// Semantics (pinned by tests/slo_test.cc):
//   - Window-level violation is strict: "p99<50us" is violated when the
//     window's p99 is >= 50us (exactly-at-threshold violates "< T");
//     "goodput>0.95" is violated at exactly 0.95.
//   - Zero-traffic windows are vacuously compliant: no events means no bad
//     events, no budget burn, and no quantile to test.
//   - Error budget: the allowed bad-event fraction implied by the
//     objective -- 1-q for a latency quantile bound (p99 -> 1% of events
//     may exceed T), 1-F for goodput. A window's burn rate is its
//     bad-event fraction over the budget (x1000: 1000 = burning exactly at
//     budget); the run-level budget is budget * total run events, and
//     budget_exhausted_us reports the first window where cumulative bad
//     events cross it.
//
// Everything stored and rendered is integer (ppm / x1000 fixed point), so
// SLO reports obey the same byte-determinism contract as the rest of the
// observability stack.

#ifndef SRC_OBS_SLO_H_
#define SRC_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace xenic::obs {

enum class SloKind : uint8_t { kLatencyQuantile, kGoodput };

struct SloObjective {
  SloKind kind = SloKind::kLatencyQuantile;
  std::string spec;           // original text, e.g. "p99<50us"
  double quantile = 0;        // kLatencyQuantile: e.g. 0.99
  uint64_t threshold_ns = 0;  // kLatencyQuantile latency bound
  uint64_t min_goodput_ppm = 0;  // kGoodput: F in parts-per-million
  // Allowed bad-event fraction in ppm (10000 = 1%).
  uint64_t budget_ppm = 0;
};

struct SloSpec {
  std::vector<SloObjective> objectives;
  bool empty() const { return objectives.empty(); }
};

// Parse "p99<50us,goodput>0.95". On failure returns false and, when
// `error` is non-null, names the offending clause.
bool ParseSloSpec(const std::string& text, SloSpec* spec, std::string* error = nullptr);

// One sampling window's inputs, in series order.
struct SloWindowInput {
  sim::Tick start = 0;
  sim::Tick width = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  const Histogram* latency = nullptr;  // null / empty = no completions
};

struct SloObjectiveResult {
  SloObjective objective;
  uint64_t windows_total = 0;
  uint64_t windows_with_traffic = 0;
  uint64_t windows_violating = 0;
  int64_t first_violation_us = -1;  // start of first violating window
  uint64_t total_events = 0;
  uint64_t bad_events = 0;
  // Fraction of the run's error budget consumed, ppm (1000000 = exactly
  // exhausted; can exceed it).
  uint64_t budget_consumed_ppm = 0;
  int64_t budget_exhausted_us = -1;  // window start where cumulative bad
                                     // events crossed the run budget
  uint64_t max_window_burn_x1000 = 0;  // worst single-window burn rate
  uint64_t run_burn_x1000 = 0;         // whole-run average burn rate
  bool violated() const { return windows_violating > 0; }
};

struct SloReport {
  std::vector<SloObjectiveResult> objectives;
  bool ok() const {
    for (const auto& o : objectives) {
      if (o.violated()) {
        return false;
      }
    }
    return true;
  }
  // Deterministic "slo "-prefixed lines (integer-only).
  std::string Lines(const std::string& prefix) const;
  std::string Json() const;
};

SloReport EvaluateSlo(const SloSpec& spec, const std::vector<SloWindowInput>& windows);

// Build the per-window inputs from the standard harness metrics (the
// txn_committed / txn_aborted counters and the txn_latency_ns histogram
// registered by RunWorkload, or their chaos equivalents).
std::vector<SloWindowInput> SloInputsFromSeries(const WindowSeries& series,
                                                const WindowCounter* committed,
                                                const WindowCounter* aborted,
                                                const WindowHistogram* latency);

}  // namespace xenic::obs

#endif  // SRC_OBS_SLO_H_
