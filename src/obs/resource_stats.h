// Per-resource queueing statistics for bottleneck attribution.
//
// A ResourceRef names one concrete service center in the simulated
// deployment -- a k-server pool (sim::Resource: NIC cores, host threads,
// DMA queues, RDMA pipeline) or a serializing link (sim::Channel: wire
// ports, PCIe queues). SystemAdapter::ForEachResource enumerates them with
// canonical node-independent names so the same resource on every node
// aggregates into one row.
//
// ResourceMonitor attaches wait-time histograms to the referenced resources
// for the duration of a run and snapshots everything -- utilization,
// busy/idle breakdown, wait distribution, peak queue depth -- into
// ResourceSnapshot rows at the end of the measurement window. Attaching a
// monitor is pure bookkeeping: it cannot change simulation results.

#ifndef SRC_OBS_RESOURCE_STATS_H_
#define SRC_OBS_RESOURCE_STATS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/sim/channel.h"
#include "src/sim/resource.h"

namespace xenic::obs {

struct ResourceRef {
  std::string name;  // canonical, node-independent ("nic_cores", "wire_tx0")
  uint32_t node = 0;
  sim::Resource* pool = nullptr;  // exactly one of pool / link is set
  sim::Channel* link = nullptr;
};

struct ResourceSnapshot {
  std::string name;
  bool is_link = false;
  uint32_t instances = 0;  // resources aggregated under this name
  uint32_t servers = 0;    // pools: total servers across instances
  // Mean occupancy across instances. Pools: busy server-time over capacity.
  // Links: occupied wall-time (serialization + per-frame costs).
  double utilization = 0;
  double wire_utilization = 0;  // links only: payload bytes over capacity
  uint64_t busy_ns = 0;         // summed busy time
  uint64_t completed = 0;       // jobs finished / frames sent
  double mean_wait_ns = 0;      // queueing delay before service
  uint64_t p99_wait_ns = 0;
  uint64_t max_wait_ns = 0;
  // Pools: deepest FIFO backlog (jobs). Links: longest head-of-line wait a
  // frame would have observed (ns).
  uint64_t peak_queue = 0;
  Histogram wait;  // merged wait-time distribution
};

class ResourceMonitor {
 public:
  ResourceMonitor() = default;
  ResourceMonitor(const ResourceMonitor&) = delete;
  ResourceMonitor& operator=(const ResourceMonitor&) = delete;
  ~ResourceMonitor();  // detaches all histograms

  // Start observing `ref` (attaches a caller-invisible wait histogram).
  void Track(const ResourceRef& ref);

  // Clear the wait histograms; call alongside the system's ResetStats at
  // the start of the measurement window.
  void ResetWindow();

  // Aggregate everything observed since ResetWindow into per-name rows,
  // in first-Track order (deterministic).
  std::vector<ResourceSnapshot> Snapshot(sim::Tick window) const;

  size_t tracked() const { return entries_.size(); }

 private:
  struct Entry {
    ResourceRef ref;
    Histogram wait;
  };
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace xenic::obs

#endif  // SRC_OBS_RESOURCE_STATS_H_
