// Per-transaction span collection for critical-path analysis.
//
// TxnTraceSink is a sim::TraceSink that, instead of exporting events to a
// file, groups them by correlation id (the transaction id every
// instrumented component stamps on its spans) into per-transaction span
// trees. The harness extracts a finished transaction's tree and feeds it
// to the critical-path extractor (critical_path.h), which splits the
// attempt's wall time into cost buckets.
//
// Classification happens once per track at registration time: resource
// names follow the repo-wide convention "n<id>.<resource>" (baselines use
// a bare "host_cores"), and the track name distinguishes service spans
// ("service"/"tx") from queue-wait spans ("wait"), protocol phases
// (process "txn_phases") and transport instants (track "net").
//
// Like every TraceSink, this is an observer: it records and never feeds
// anything back into the simulation. Traced and untraced runs are
// byte-identical in simulation results.

#ifndef SRC_OBS_TXN_TRACE_H_
#define SRC_OBS_TXN_TRACE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/sim/trace.h"

namespace xenic::obs {

// Where a slice of a transaction's wall time went. kQueueing covers both
// explicit resource-wait spans and uncovered gaps (nothing was working on
// the transaction); kRedo is time lost to aborted attempts, computed by
// the harness across retries rather than from spans.
enum class CostBucket : int {
  kHostCpu = 0,
  kNicArm,
  kDma,
  kWire,
  kQueueing,
  kRedo,
};
inline constexpr int kNumBuckets = 6;

const char* BucketName(CostBucket b);

struct TxnSpan {
  CostBucket bucket;
  std::string name;
  sim::Tick start;
  sim::Tick end;
};

struct TxnPhase {
  std::string name;  // "EXECUTE", "VALIDATE", "LOG", "txn"
  sim::Tick start;
  sim::Tick end;
};

struct TxnInstant {
  std::string name;  // transport message type
  sim::Tick at;
};

// Everything recorded for one transaction id: resource/channel cost spans
// (service + wait), protocol phase spans, and transport send markers.
struct TxnTree {
  uint64_t id = 0;
  std::vector<TxnSpan> cost;
  std::vector<TxnPhase> phases;
  std::vector<TxnInstant> instants;
};

class TxnTraceSink : public sim::TraceSink {
 public:
  uint32_t RegisterTrack(const std::string& process, const std::string& track) override;
  void Span(uint32_t track, const char* name, sim::Tick start, sim::Tick end,
            uint64_t id) override;
  void Instant(uint32_t track, const char* name, sim::Tick at, uint64_t id) override;

  // Move the tree for `id` into *out and mark the id finalized (late
  // stragglers -- e.g. worker log-apply spans landing after commit -- are
  // dropped and counted). Returns false if nothing was recorded for `id`
  // or it was already finalized.
  bool Extract(uint64_t id, TxnTree* out);

  // Drop everything recorded for `id` (aborted attempt, warmup txn) and
  // mark it finalized.
  void Discard(uint64_t id);

  // Diagnostics for the id-plumbing audit: spans/instants that arrived
  // with id 0 could not be attributed to any transaction.
  uint64_t zero_id_spans() const { return zero_id_spans_; }
  uint64_t orphan_instants() const { return orphan_instants_; }
  uint64_t late_spans() const { return late_spans_; }
  size_t pending() const { return pending_.size(); }

 private:
  enum class TrackKind { kIgnore, kCost, kPhase, kNet };
  struct TrackInfo {
    TrackKind kind = TrackKind::kIgnore;
    CostBucket bucket = CostBucket::kQueueing;
  };

  std::vector<TrackInfo> tracks_;
  std::unordered_map<uint64_t, TxnTree> pending_;
  std::unordered_set<uint64_t> finalized_;
  uint64_t zero_id_spans_ = 0;
  uint64_t orphan_instants_ = 0;
  uint64_t late_spans_ = 0;
};

}  // namespace xenic::obs

#endif  // SRC_OBS_TXN_TRACE_H_
