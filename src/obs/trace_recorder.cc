#include "src/obs/trace_recorder.h"

#include <cstdio>

namespace xenic::obs {

namespace {

// Minimal JSON string escape: the names we emit are identifiers, but a
// workload or resource name with a quote/backslash must not corrupt the
// document.
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// Ticks are integer ns; Chrome trace ts/dur are microseconds. Emit with ns
// precision (3 decimals) to keep the trace exact.
void AppendUs(std::string* out, sim::Tick ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  *out += buf;
}

}  // namespace

uint32_t TraceRecorder::RegisterTrack(const std::string& process, const std::string& track) {
  auto [it, inserted] = pid_by_process_.try_emplace(
      process, pid_base_ + static_cast<uint32_t>(pid_by_process_.size()) + 1);
  uint32_t tid = 1;
  for (const Track& t : tracks_) {
    if (t.pid == it->second) {
      tid++;
    }
  }
  tracks_.push_back(Track{it->second, tid, process, track});
  return static_cast<uint32_t>(tracks_.size() - 1);
}

uint32_t TraceRecorder::InternName(const char* name) {
  auto [it, inserted] = name_ids_.try_emplace(name, static_cast<uint32_t>(names_.size()));
  if (inserted) {
    names_.emplace_back(name);
  }
  return it->second;
}

void TraceRecorder::Span(uint32_t track, const char* name, sim::Tick start, sim::Tick end,
                         uint64_t id) {
  // Ambient infrastructure work renders like un-correlated work: no id arg.
  if (id == sim::kAmbientTraceCtx) {
    id = 0;
  }
  events_.push_back(
      Event{track, InternName(name), start, end >= start ? end - start : 0, id, false});
}

void TraceRecorder::Instant(uint32_t track, const char* name, sim::Tick at, uint64_t id) {
  if (id == sim::kAmbientTraceCtx) {
    id = 0;
  }
  events_.push_back(Event{track, InternName(name), at, 0, id, true});
}

std::string TraceRecorder::ToJson() const {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  AppendJsonEvents(&out, &first);
  out += "]}";
  return out;
}

void TraceRecorder::AppendJsonEvents(std::string* out_ptr, bool* first_ptr) const {
  std::string& out = *out_ptr;
  bool& first = *first_ptr;
  auto sep = [&] {
    if (!first) {
      out += ',';
    }
    first = false;
  };
  // Metadata: label processes and threads.
  std::unordered_map<uint32_t, bool> pid_named;
  for (const Track& t : tracks_) {
    if (!pid_named[t.pid]) {
      pid_named[t.pid] = true;
      sep();
      out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" + std::to_string(t.pid) +
             ",\"tid\":0,\"args\":{\"name\":\"" + Escape(t.process) + "\"}}";
    }
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" + std::to_string(t.pid) +
           ",\"tid\":" + std::to_string(t.tid) + ",\"args\":{\"name\":\"" + Escape(t.name) +
           "\"}}";
  }
  for (const Event& e : events_) {
    const Track& t = tracks_[e.track];
    sep();
    out += "{\"name\":\"" + Escape(names_[e.name_id]) + "\",\"cat\":\"sim\",\"ph\":\"";
    out += e.instant ? 'i' : 'X';
    out += "\",\"ts\":";
    AppendUs(&out, e.start);
    if (e.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":";
      AppendUs(&out, e.dur);
    }
    out += ",\"pid\":" + std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid);
    if (e.id != 0) {
      out += ",\"args\":{\"id\":" + std::to_string(e.id) + "}";
    }
    out += "}";
  }
}

bool TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace xenic::obs
