// The message catalogue: every RPC the protocol layers put on a wire has a
// net::MsgType, and every wire size is computed by a wire:: formula here.
// This is the single place that knows what a message costs in bytes; the
// protocol code (src/txn, src/baseline), the chaos layer (typed fault
// hooks), and the obs layer (per-type counters, trace instants) all share
// it. DESIGN.md section 10 documents the catalogue (payload formula,
// direction, who serves each type).
//
// Nothing here touches the simulator: this header is pure accounting so
// that txn::TxnStats can embed MsgCounters without dragging in the NIC
// models. The Transport classes that actually move messages live in
// src/net/transport.h.

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>

namespace xenic::net {

// One tag per protocol verb. The Xenic engine uses kExecute..kAck; the
// RDMA baselines (DrTM+H, FaSST, DrTM+R) add the one-sided read/lock/unlock
// verbs. kCount doubles as the "no type / match any" sentinel in the typed
// fault hooks.
enum class MsgType : uint8_t {
  kExecute = 0,  // combined lock+read fan-out (Xenic) / FaSST exec RPC
  kExecReply,    // execute results back to the coordinator
  kValidate,     // OCC read-set version checks at the primary
  kLog,          // commit-record replication to backups
  kCommit,       // write-back + lock release at the primary
  kRelease,      // lock release without install (aborts, orphan sweep)
  kShipExec,     // Xenic execution shipping to the data's home NIC
  kAck,          // fixed-size acknowledgements (validate/log/commit/ship)
  kRead,         // baseline one-sided reads (DrTM+H/NC, DrTM+R validate)
  kLock,         // baseline lock acquisition (CAS or per-key lock RPC)
  kUnlock,       // baseline lock release / abort cleanup
  kWound,        // WOUND_WAIT: abort demand sent to a younger lock holder
  kLogCommit,    // commit-point notification to backups (stabilizes LOG records)
  kLeaseHandoff,  // planned failover: lease transfer to an up-to-date backup
  kCount,
};

inline constexpr size_t kNumMsgTypes = static_cast<size_t>(MsgType::kCount);

constexpr const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kExecute:
      return "EXECUTE";
    case MsgType::kExecReply:
      return "EXEC_REPLY";
    case MsgType::kValidate:
      return "VALIDATE";
    case MsgType::kLog:
      return "LOG";
    case MsgType::kCommit:
      return "COMMIT";
    case MsgType::kRelease:
      return "RELEASE";
    case MsgType::kShipExec:
      return "SHIP_EXEC";
    case MsgType::kAck:
      return "ACK";
    case MsgType::kRead:
      return "READ";
    case MsgType::kLock:
      return "LOCK";
    case MsgType::kUnlock:
      return "UNLOCK";
    case MsgType::kWound:
      return "WOUND";
    case MsgType::kLogCommit:
      return "LOG_COMMIT";
    case MsgType::kLeaseHandoff:
      return "LEASE_HANDOFF";
    case MsgType::kCount:
      return "ANY";
  }
  return "?";
}

// Per-type message and byte counters. Embedded in txn::TxnStats; the
// conservation laws (sum of msgs[] == TxnStats::messages, sum of bytes[]
// plus frame overhead == wire channel bytes) are pinned by
// transport_test.cc.
struct MsgCounters {
  uint64_t msgs[kNumMsgTypes] = {};
  uint64_t bytes[kNumMsgTypes] = {};

  void Count(MsgType t, uint64_t b) {
    msgs[static_cast<size_t>(t)]++;
    bytes[static_cast<size_t>(t)] += b;
  }
  void Merge(const MsgCounters& o) {
    for (size_t i = 0; i < kNumMsgTypes; ++i) {
      msgs[i] += o.msgs[i];
      bytes[i] += o.bytes[i];
    }
  }
  uint64_t TotalMsgs() const {
    uint64_t t = 0;
    for (uint64_t m : msgs) t += m;
    return t;
  }
  uint64_t TotalBytes() const {
    uint64_t t = 0;
    for (uint64_t b : bytes) t += b;
    return t;
  }
  uint64_t MsgCount(MsgType t) const { return msgs[static_cast<size_t>(t)]; }
  uint64_t ByteCount(MsgType t) const { return bytes[static_cast<size_t>(t)]; }
};

// Wire-format size formulas (bytes). The simulator moves closures, but
// every message is charged the size a real implementation would put on the
// wire. These subsume the old txn::MsgSize constants; no size arithmetic
// may appear outside src/net (tools/check_no_raw_sends.sh).
namespace wire {

inline constexpr uint32_t kHeader = 24;    // msg type, txn id, counts
inline constexpr uint32_t kKeyEntry = 12;  // table + key + flags
inline constexpr uint32_t kSeqEntry = 4;   // version/sequence number
inline constexpr uint32_t kAckBody = 8;    // status + txn id echo
// RoCE headers per RDMA verb on the wire (baseline CX5 NIC model).
inline constexpr uint32_t kVerbHeader = 42;

// Fixed-size acknowledgement (validate/log/commit/ship-failure replies).
constexpr uint32_t Ack() { return kHeader + kAckBody; }

// WOUND: victim txn id demand sent to a lock holder's coordinator
// (WOUND_WAIT conflict resolution; fire-and-forget, no reply).
constexpr uint32_t Wound() { return kHeader + kAckBody; }

// EXECUTE fan-out: key list for the whole read+write set, plus any opaque
// application payload (`external`).
constexpr uint32_t ExecuteReq(size_t n_reads, size_t n_writes, uint32_t external = 0) {
  return kHeader + static_cast<uint32_t>((n_reads + n_writes) * kKeyEntry) + external;
}

// EXEC_REPLY: one versioned value per read plus one sequence per acquired
// write lock. `read_value_bytes` is the summed value payload.
constexpr uint32_t ExecuteReply(size_t n_reads, uint64_t read_value_bytes, size_t n_write_seqs) {
  return kHeader + static_cast<uint32_t>(n_reads * kSeqEntry) +
         static_cast<uint32_t>(read_value_bytes) + static_cast<uint32_t>(n_write_seqs * kSeqEntry);
}

// Lock-only round reply: the acquired sequence numbers.
constexpr uint32_t SeqList(size_t n_seqs) {
  return kHeader + static_cast<uint32_t>(n_seqs * kSeqEntry);
}

// VALIDATE: (key, expected version) pairs for the remote read set.
constexpr uint32_t ValidateReq(size_t n_keys) {
  return kHeader + static_cast<uint32_t>(n_keys * (kKeyEntry + kSeqEntry));
}

// LOG: a serialized commit record shipped to each backup.
constexpr uint32_t LogAppend(uint64_t record_bytes) {
  return kHeader + static_cast<uint32_t>(record_bytes);
}

// LOG_COMMIT: commit-point notification to a backup -- just the txn id
// echo, so the backup's applier may stabilize (and later reclaim) the
// transaction's LOG records. Fire-and-forget, no reply.
constexpr uint32_t LogCommit() { return kHeader + kAckBody; }

// LEASE_HANDOFF: planned-failover lease transfer from the departing
// primary to the promoted backup. The shard state itself is already
// replicated through the log, so the transfer carries only the lease
// (shard id + epoch echo, ack-sized).
constexpr uint32_t LeaseHandoff() { return kHeader + kAckBody; }

// Write set with versions and values (commit install; FaSST commit RPC).
constexpr uint32_t WriteSet(size_t n_writes, uint64_t value_bytes) {
  return kHeader + static_cast<uint32_t>(n_writes * (kKeyEntry + kSeqEntry)) +
         static_cast<uint32_t>(value_bytes);
}

// COMMIT: write set plus the read-set keys whose locks are released.
constexpr uint32_t CommitMsg(size_t n_writes, uint64_t value_bytes, size_t n_release_keys) {
  return WriteSet(n_writes, value_bytes) + static_cast<uint32_t>(n_release_keys * kKeyEntry);
}

// RELEASE / orphan sweep: bare key list.
constexpr uint32_t KeyList(size_t n_keys) {
  return kHeader + static_cast<uint32_t>(n_keys * kKeyEntry);
}

// SHIP_EXEC: the whole transaction context moves to the data's home NIC --
// descriptor key list, opaque execute payload, values already read, and
// the local-log write images the shipper installed.
constexpr uint32_t ShipExec(size_t n_reads, size_t n_writes, uint32_t external,
                            uint64_t read_value_bytes, size_t n_log_writes,
                            uint64_t log_value_bytes) {
  return kHeader + external + static_cast<uint32_t>((n_reads + n_writes) * kKeyEntry) +
         static_cast<uint32_t>(read_value_bytes) +
         static_cast<uint32_t>(n_log_writes * kKeyEntry) + static_cast<uint32_t>(log_value_bytes);
}

// Shipped-execution result returned to the coordinator: written keys and
// values (the coordinator needs them for its reply to the application).
constexpr uint32_t ExecResult(size_t n_writes, uint64_t value_bytes) {
  return kHeader + static_cast<uint32_t>(n_writes * kKeyEntry) +
         static_cast<uint32_t>(value_bytes);
}

// --- PCIe DMA descriptors (host <-> SmartNIC crossings) ---

// Host submits a transaction to its NIC: key list + opaque payload (same
// layout as the EXECUTE fan-out).
constexpr uint32_t TxnDescriptor(size_t n_reads, size_t n_writes, uint32_t external) {
  return ExecuteReq(n_reads, n_writes, external);
}

// Write images DMA'd down for install (no version column: the NIC owns
// sequence assignment).
constexpr uint32_t WriteImages(size_t n_writes, uint64_t value_bytes) {
  return kHeader + static_cast<uint32_t>(n_writes * kKeyEntry) +
         static_cast<uint32_t>(value_bytes);
}

// Read set DMA'd up to a host execute callback.
constexpr uint32_t ReadSet(size_t n_reads, uint64_t read_value_bytes) {
  return kHeader + static_cast<uint32_t>(n_reads * kSeqEntry) +
         static_cast<uint32_t>(read_value_bytes);
}

// Completion descriptor (finish report, bare header).
constexpr uint32_t Descriptor() { return kHeader; }

// --- RDMA verb wire costs (request + response, as charged by RdmaNic) ---

constexpr uint32_t OneSidedRead(uint32_t bytes) { return 2 * kVerbHeader + bytes; }
constexpr uint32_t OneSidedWrite(uint32_t bytes) { return 2 * kVerbHeader + bytes; }
constexpr uint32_t AtomicOp() { return 2 * kVerbHeader + 8; }
constexpr uint32_t Rpc(uint32_t req_bytes, uint32_t resp_bytes) {
  return 2 * kVerbHeader + req_bytes + resp_bytes;
}

}  // namespace wire
}  // namespace xenic::net

#endif  // SRC_NET_MESSAGE_H_
