// Calibration constants for the simulated hardware (paper section 3).
//
// Every number here is either taken directly from the paper's measurements
// or fitted so the section 3 microbenchmarks (Figures 2-4, the RPC
// throughput experiment in 3.3, Table 1) reproduce. DESIGN.md section 5
// documents the derivations. All times in nanoseconds, rates in bytes/ns.

#ifndef SRC_NET_PERF_MODEL_H_
#define SRC_NET_PERF_MODEL_H_

#include <cstdint>

#include "src/sim/engine.h"

namespace xenic::net {

struct PerfModel {
  // --- Network fabric ---
  double link_bytes_per_ns = 6.25;   // 50 Gbps per LiquidIO port
  uint32_t nic_ports = 2;            // 2x50GbE per LiquidIO
  sim::Tick wire_latency = 850;      // one-way propagation + ToR switch
  uint32_t frame_overhead = 62;      // eth+ip+udp headers + preamble + IFG
  uint32_t mtu = 1500;               // aggregation limit per frame
  sim::Tick port_frame_cost = 100;   // fixed per-frame port/driver time

  // --- LiquidIO SmartNIC ---
  uint32_t nic_cores = 24;           // 2.2 GHz ARM threads
  sim::Tick nic_frame_rx_cost = 120;   // software pipeline, per inbound frame
  sim::Tick nic_frame_tx_cost = 100;   // per outbound frame (gather + enqueue)
  sim::Tick nic_msg_cost = 20;         // per-message demux/gather within a frame
  sim::Tick nic_rpc_handle_cost = 150; // minimal echo handler (fits 71.8 Mops/s @16 thr)
  // Opportunistic-batching poll interval: the NIC flushes gather lists at
  // every burst-loop iteration, so an idle NIC adds only ~one loop of
  // delay; under load the MTU-full condition drives the batching.
  sim::Tick batch_window = 200;

  // --- LiquidIO DMA engine (section 3.5) ---
  uint32_t dma_queues = 8;
  uint32_t dma_vector_max = 15;
  sim::Tick dma_submit_cost = 190;       // NIC-core time per submission
  sim::Tick dma_read_completion = 1295;  // submit-to-completion, small reads
  sim::Tick dma_write_completion = 570;
  sim::Tick dma_engine_service = 920;    // per-op queue occupancy (8 queues -> 8.7 Mops/s)
  double pcie_bytes_per_ns = 7.0;        // PCIe 3.0 x8 effective payload rate

  // --- Host (Xeon Gold 5218) ---
  uint32_t host_threads = 32;
  sim::Tick host_rpc_handle_cost = 650;  // DPDK rx+handle+tx per op (23 Mops/s @16 thr)
  sim::Tick host_poll_gap = 300;         // mean host polling delay, NIC-to-host delivery
  sim::Tick host_to_nic_crossing = 900;  // DPDK tx + NIC PCIe descriptor pull
  sim::Tick nic_to_host_crossing = 870;  // DMA write (570) + host poll (300)
  sim::Tick pcie_msg_unbatched_cost = 500;  // per-message PCIe queue handling, no batching

  // --- Mellanox CX5 RDMA NIC (sections 2.1 / 3.2 / 3.4) ---
  double rdma_link_bytes_per_ns = 12.5;  // 100 Gbps
  sim::Tick rdma_init_cost = 100;        // host verb post (doorbell-batched)
  sim::Tick rdma_nic_hw_cost = 300;      // NIC hardware pipeline per op, latency
  sim::Tick rdma_nic_service = 66;       // pipeline occupancy per small op (~15 Mops/s)
  sim::Tick rdma_target_dma = 700;       // target-side PCIe access (x16, hw engine)
  sim::Tick rdma_completion_poll = 250;  // initiator CQ poll
  // Two-sided: adds target host rx-ring delivery + handler + send post.
  sim::Tick rdma_two_sided_target_extra = 1800;

  // --- Core performance ratios (Table 1) ---
  double arm_multithread_ratio = 0.31;   // ARM per-thread / Xeon per-thread, all cores
  double arm_singlethread_ratio = 0.49;  // single-threaded

  // Derived helpers.
  double total_bandwidth_bytes_per_ns() const { return link_bytes_per_ns * nic_ports; }
};

// Off-path SmartNIC configuration (paper sections 3.1 and 4.3.4): the SoC
// sits behind an internal switch with no low-level host-memory interface,
// so SoC<->host traffic pays network-stack costs. Calibrated from the
// paper's BlueField/Stingray measurements: RDMA writes to host 3.5 us from
// remote, but 4.5 us to SoC memory and 5.1 us from the SoC to host memory.
// Xenic's latency advantage evaporates on such hardware -- the bench
// bench_ext_offpath demonstrates it.
inline PerfModel OffPathPerfModel() {
  PerfModel m;
  // SoC-to-host accesses go through the internal network path instead of a
  // DMA engine: ~2.5 us each way on top of processing.
  m.host_to_nic_crossing = 2600;
  m.nic_to_host_crossing = 2600;
  m.dma_read_completion = 2600;   // "DMA" is an internal RDMA read
  m.dma_write_completion = 2100;
  m.dma_engine_service = 920;     // message rate comparable
  m.pcie_msg_unbatched_cost = 800;
  // The internal switch adds a hop to every inbound/outbound frame.
  m.wire_latency = 1100;
  return m;
}

}  // namespace xenic::net

#endif  // SRC_NET_PERF_MODEL_H_
