// Typed RPC transport: the only layer allowed to put protocol messages on
// a wire. Transport wraps the SmartNIC message path (Xenic), RdmaTransport
// wraps the CX5 verb set (the baselines); both tag every send with a
// net::MsgType from the catalogue in message.h and account it into the
// owner's MsgCounters, so the bench layer can print per-type breakdowns,
// the chaos layer can fault individual message classes, and the obs layer
// can name wire activity in traces.
//
// Simulation invariance contract: with no typed fault armed, routing a
// send through Transport schedules exactly the events the old raw
// XenicNode::SendMsg / RdmaNic call sites scheduled -- same ticks, same
// order. Everything the transport adds (counters, trace instants) is pure
// bookkeeping. tools/check_determinism.sh pins this.

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstdint>

#include "src/net/message.h"
#include "src/nicmodel/rdma_nic.h"
#include "src/nicmodel/smart_nic.h"
#include "src/sim/engine.h"
#include "src/sim/trace.h"
#include "src/store/types.h"

namespace xenic::net {

using store::NodeId;

// Selects a message class for a typed fault hook: an exact type, and for
// kAck sends optionally the request kind being acknowledged (so "VALIDATE
// replies" can be faulted without touching LOG or COMMIT acks).
struct MsgSelector {
  MsgType type = MsgType::kCount;      // kCount = match any type
  MsgType reply_to = MsgType::kCount;  // kCount = any; else only matching acks

  bool Matches(MsgType t, MsgType rt) const {
    if (type != MsgType::kCount && t != type) {
      return false;
    }
    return reply_to == MsgType::kCount || rt == reply_to;
  }
};

// Parse "validate", "ack", "validate_reply", "log_reply", ... into a
// selector ("<x>_reply" means an ACK acknowledging <x>). Returns false on
// unknown names.
bool ParseMsgSelector(const char* name, MsgSelector* out);

// Per-node transport over the SmartNIC message path. Owns no state beyond
// bookkeeping pointers: the node keeps its TxnStats, the NIC keeps the
// wire. Crash semantics, the uncounted self-delivery fast path, and the
// counted NicSend path replicate XenicNode::SendMsg byte-for-byte.
class Transport {
 public:
  // Typed fault: every matching outbound message is "dropped" with the
  // chaos layer's drop-as-retransmit semantics -- the dropped copy still
  // burns wire occupancy, and a retransmitted copy delivers the payload
  // after `retransmit_delay`. (The commit protocol counts acks and has no
  // retransmission timer of its own; a true loss would wedge it.)
  struct TypedFault {
    MsgSelector match;
    sim::Tick retransmit_delay = 3000;  // 3 us, matching chaos::FaultSpec
  };

  Transport(nicmodel::SmartNic* nic, const bool* crashed, uint64_t* messages,
            MsgCounters* counters)
      : nic_(nic), crashed_(crashed), messages_(messages), counters_(counters) {}

  NodeId self() const { return nic_->id(); }

  // Send `bytes` of `type` to `dst`, running `at_dst` on delivery.
  // `trace_id` names the transaction in trace instants; `reply_to` tags
  // what an ACK acknowledges (fault matching only -- ACK wire size is
  // fixed).
  void Send(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback at_dst,
            uint64_t trace_id = 0, MsgType reply_to = MsgType::kCount);

  // Fixed-size acknowledgement of a `reply_to` request.
  void SendAck(MsgType reply_to, NodeId dst, sim::Engine::Callback at_dst, uint64_t trace_id = 0) {
    Send(MsgType::kAck, dst, wire::Ack(), std::move(at_dst), trace_id, reply_to);
  }

  void set_typed_fault(const TypedFault& f) {
    fault_ = f;
    fault_armed_ = true;
  }
  void clear_typed_fault() { fault_armed_ = false; }
  uint64_t typed_drops() const { return typed_drops_; }

 private:
  friend class TransportTestPeer;

  void Transmit(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback at_dst);
  void MaybeTraceSend(MsgType type, NodeId dst, uint64_t trace_id);

  nicmodel::SmartNic* nic_;
  const bool* crashed_;
  uint64_t* messages_;
  MsgCounters* counters_;

  TypedFault fault_;
  bool fault_armed_ = false;
  uint64_t typed_drops_ = 0;

  // Cached trace registration (re-registers when a fresh sink attaches).
  sim::TraceSink* trace_sink_ = nullptr;
  uint32_t trace_track_ = 0;
};

// Typed wrapper over the baseline RDMA verb set. Each call forwards to the
// identically-shaped RdmaNic verb (so timing is untouched) and accounts
// one message of `type` with the full request+response wire cost the NIC
// model charges (wire::OneSidedRead/Write/AtomicOp/Rpc).
class RdmaTransport {
 public:
  RdmaTransport(nicmodel::RdmaNic* nic, uint64_t* messages, MsgCounters* counters)
      : nic_(nic), messages_(messages), counters_(counters) {}

  NodeId self() const { return nic_->id(); }

  void Read(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback done,
            uint64_t trace_id = 0);
  void Read(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
            sim::Engine::Callback done, uint64_t trace_id = 0);
  void Write(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback done,
             uint64_t trace_id = 0);
  void Write(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback at_target,
             sim::Engine::Callback done, uint64_t trace_id = 0);
  void Atomic(MsgType type, NodeId dst, sim::SmallFunction<uint64_t()> op,
              sim::SmallFunction<void(uint64_t)> done, uint64_t trace_id = 0);
  void Rpc(MsgType type, NodeId dst, uint32_t req_bytes, uint32_t resp_bytes,
           sim::Tick handler_cost, sim::Engine::Callback handler, sim::Engine::Callback done,
           uint64_t trace_id = 0);

 private:
  void Account(MsgType type, uint64_t wire_bytes, NodeId dst, uint64_t trace_id);

  nicmodel::RdmaNic* nic_;
  uint64_t* messages_;
  MsgCounters* counters_;

  sim::TraceSink* trace_sink_ = nullptr;
  uint32_t trace_track_ = 0;
};

}  // namespace xenic::net

#endif  // SRC_NET_TRANSPORT_H_
