#include "src/net/transport.h"

#include <cstring>
#include <string>
#include <utility>

namespace xenic::net {

bool ParseMsgSelector(const char* name, MsgSelector* out) {
  struct Entry {
    const char* name;
    MsgType type;
  };
  static constexpr Entry kTypes[] = {
      {"execute", MsgType::kExecute}, {"exec_reply", MsgType::kExecReply},
      {"validate", MsgType::kValidate}, {"log", MsgType::kLog},
      {"commit", MsgType::kCommit},   {"release", MsgType::kRelease},
      {"ship_exec", MsgType::kShipExec}, {"ack", MsgType::kAck},
      {"read", MsgType::kRead},       {"lock", MsgType::kLock},
      {"unlock", MsgType::kUnlock},   {"wound", MsgType::kWound},
      {"log_commit", MsgType::kLogCommit}, {"lease_handoff", MsgType::kLeaseHandoff},
      {"any", MsgType::kCount},
  };
  const std::string s(name);
  // "<x>_reply" (other than exec_reply, a first-class type) selects the
  // ACK messages acknowledging <x>.
  const std::string suffix = "_reply";
  if (s != "exec_reply" && s.size() > suffix.size() &&
      s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0) {
    const std::string base = s.substr(0, s.size() - suffix.size());
    for (const Entry& e : kTypes) {
      if (base == e.name) {
        out->type = MsgType::kAck;
        out->reply_to = e.type;
        return true;
      }
    }
    return false;
  }
  for (const Entry& e : kTypes) {
    if (s == e.name) {
      out->type = e.type;
      out->reply_to = MsgType::kCount;
      return true;
    }
  }
  return false;
}

void Transport::MaybeTraceSend(MsgType type, NodeId dst, uint64_t trace_id) {
  sim::TraceSink* sink = nic_->engine()->trace();
  if (sink == nullptr) {
    return;
  }
  if (sink != trace_sink_) {
    trace_sink_ = sink;
    trace_track_ = sink->RegisterTrack("node" + std::to_string(self()), "net");
  }
  (void)dst;
  if (trace_id == 0) {
    // Call sites without the txn id in hand (recovery sweeps, ack paths)
    // fall back to the causal context of the sending event, so no send is
    // orphaned from its transaction tree.
    trace_id = nic_->engine()->trace_ctx();
  }
  sink->Instant(trace_track_, MsgTypeName(type), nic_->engine()->now(), trace_id);
}

void Transport::Transmit(MsgType type, NodeId dst, uint32_t bytes,
                         sim::Engine::Callback at_dst) {
  (*messages_)++;
  counters_->Count(type, bytes);
  nic_->NicSend(dst, bytes, std::move(at_dst));
}

void Transport::Send(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback at_dst,
                     uint64_t trace_id, MsgType reply_to) {
  if (crashed_ != nullptr && *crashed_) {
    return;  // fail-stop: nothing leaves a crashed node
  }
  if (dst == self()) {
    // Local shard: the coordinator-side NIC handles its own primary's
    // operations directly -- no wire, no PCIe, not a counted message.
    nic_->engine()->ScheduleAfter(0, std::move(at_dst));
    return;
  }
  MaybeTraceSend(type, dst, trace_id);
  if (fault_armed_ && fault_.match.Matches(type, reply_to)) {
    // Drop-as-retransmit: the dropped copy burns wire occupancy but
    // delivers nothing; the link-layer retry carries the payload after the
    // retransmission delay. Both copies are real sends (counted).
    typed_drops_++;
    Transmit(type, dst, bytes, [] {});
    nic_->engine()->ScheduleAfter(
        fault_.retransmit_delay,
        [this, type, dst, bytes, at_dst = std::move(at_dst)]() mutable {
          if (*crashed_) {
            return;
          }
          Transmit(type, dst, bytes, std::move(at_dst));
        });
    return;
  }
  Transmit(type, dst, bytes, std::move(at_dst));
}

void RdmaTransport::Account(MsgType type, uint64_t wire_bytes, NodeId dst, uint64_t trace_id) {
  (void)dst;
  (*messages_)++;
  counters_->Count(type, wire_bytes);
  sim::TraceSink* sink = nic_->engine()->trace();
  if (sink == nullptr) {
    return;
  }
  if (sink != trace_sink_) {
    trace_sink_ = sink;
    trace_track_ = sink->RegisterTrack("node" + std::to_string(self()), "net");
  }
  if (trace_id == 0) {
    trace_id = nic_->engine()->trace_ctx();  // same fallback as Transport
  }
  sink->Instant(trace_track_, MsgTypeName(type), nic_->engine()->now(), trace_id);
}

void RdmaTransport::Read(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback done,
                         uint64_t trace_id) {
  Account(type, wire::OneSidedRead(bytes), dst, trace_id);
  nic_->Read(dst, bytes, std::move(done));
}

void RdmaTransport::Read(MsgType type, NodeId dst, uint32_t bytes,
                         sim::Engine::Callback at_target, sim::Engine::Callback done,
                         uint64_t trace_id) {
  Account(type, wire::OneSidedRead(bytes), dst, trace_id);
  nic_->Read(dst, bytes, std::move(at_target), std::move(done));
}

void RdmaTransport::Write(MsgType type, NodeId dst, uint32_t bytes, sim::Engine::Callback done,
                          uint64_t trace_id) {
  Account(type, wire::OneSidedWrite(bytes), dst, trace_id);
  nic_->Write(dst, bytes, std::move(done));
}

void RdmaTransport::Write(MsgType type, NodeId dst, uint32_t bytes,
                          sim::Engine::Callback at_target, sim::Engine::Callback done,
                          uint64_t trace_id) {
  Account(type, wire::OneSidedWrite(bytes), dst, trace_id);
  nic_->Write(dst, bytes, std::move(at_target), std::move(done));
}

void RdmaTransport::Atomic(MsgType type, NodeId dst, sim::SmallFunction<uint64_t()> op,
                           sim::SmallFunction<void(uint64_t)> done, uint64_t trace_id) {
  Account(type, wire::AtomicOp(), dst, trace_id);
  nic_->Atomic(dst, std::move(op), std::move(done));
}

void RdmaTransport::Rpc(MsgType type, NodeId dst, uint32_t req_bytes, uint32_t resp_bytes,
                        sim::Tick handler_cost, sim::Engine::Callback handler,
                        sim::Engine::Callback done, uint64_t trace_id) {
  Account(type, wire::Rpc(req_bytes, resp_bytes), dst, trace_id);
  nic_->Rpc(dst, req_bytes, resp_bytes, handler_cost, std::move(handler), std::move(done));
}

}  // namespace xenic::net
