#include "src/harness/partition.h"

#include <algorithm>

namespace xenic::harness {

LpPartition PartitionNodes(uint32_t num_nodes, uint32_t target_lps) {
  LpPartition part;
  if (target_lps == 0) {
    target_lps = 1;
  }
  part.num_lps = std::min(target_lps, std::max(num_nodes, 1u));
  part.lp_of_node.resize(num_nodes);
  for (uint32_t n = 0; n < num_nodes; ++n) {
    // Balanced contiguous blocks: block sizes differ by at most one and the
    // mapping is monotone in node id, keeping consecutive replica chains
    // together wherever the arithmetic allows.
    part.lp_of_node[n] =
        static_cast<uint32_t>((static_cast<uint64_t>(n) * part.num_lps) / num_nodes);
  }
  return part;
}

LpPartition PartitionCluster(const txn::ClusterMap& map, uint32_t target_lps,
                             sim::Tick lookahead) {
  LpPartition part = PartitionNodes(map.num_nodes, target_lps);
  part.lookahead = part.num_lps > 1 ? lookahead : 0;
  return part;
}

sim::Tick DeriveLookahead(const net::PerfModel& model) { return model.wire_latency; }

double LocalChainFraction(const txn::ClusterMap& map, const LpPartition& part) {
  if (map.num_nodes == 0 || part.lp_of_node.size() < map.num_nodes) {
    return 0.0;
  }
  uint32_t local = 0;
  for (uint32_t p = 0; p < map.num_nodes; ++p) {
    const uint32_t lp = part.lp_of_node[p];
    bool all_local = true;
    for (uint32_t i = 1; i < map.replication; ++i) {
      all_local &= part.lp_of_node[(p + i) % map.num_nodes] == lp;
    }
    local += all_local ? 1 : 0;
  }
  return static_cast<double>(local) / static_cast<double>(map.num_nodes);
}

}  // namespace xenic::harness
