// SystemAdapter: uniform driver interface over the Xenic cluster and the
// four baseline clusters, so every benchmark runs the same workload code
// against every system.

#ifndef SRC_HARNESS_SYSTEM_ADAPTER_H_
#define SRC_HARNESS_SYSTEM_ADAPTER_H_

#include <functional>
#include <memory>
#include <string>

#include "src/baseline/baseline_cluster.h"
#include "src/obs/resource_stats.h"
#include "src/txn/xenic_cluster.h"
#include "src/workload/workload.h"

namespace xenic::harness {

class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;
  virtual std::string Name() const = 0;
  virtual sim::Engine& engine() = 0;
  virtual uint32_t num_nodes() const = 0;
  // Returns the node-assigned txn id (0 if the node refused, e.g. crashed)
  // so callers can tie traces from retries back to one logical transaction.
  virtual uint64_t Submit(store::NodeId node, txn::TxnRequest req, txn::CommitCallback done) = 0;
  virtual void LoadReplicated(store::TableId t, store::Key k, const store::Value& v) = 0;
  virtual void SetWorkerHook(store::NodeId node,
                             std::function<sim::Tick(const store::LogWrite&)> hook) = 0;
  virtual void StartWorkers() = 0;
  virtual void StopWorkers() = 0;
  virtual txn::TxnStats TotalStats() const = 0;
  virtual void ResetStats() = 0;
  // Mean outbound wire utilization across nodes over `window` ns.
  virtual double WireUtilization(sim::Tick window) const = 0;
  // Mean host-core and NIC-core utilization (NIC is 0 for baselines).
  virtual double HostUtilization(sim::Tick window) const = 0;
  virtual double NicUtilization(sim::Tick window) const = 0;
  // Total DMA operations / payload bytes since the last ResetStats
  // (0 for the RDMA baselines, whose PCIe work is inside the NIC model).
  virtual uint64_t DmaOps() const = 0;
  virtual uint64_t DmaBytes() const = 0;

  // Visit every service center in the deployment (obs::ResourceMonitor
  // attaches wait-time accounting through this). Refs carry canonical
  // node-independent names so the same resource aggregates across nodes.
  virtual void ForEachResource(const std::function<void(const obs::ResourceRef&)>& fn) = 0;

  // --- Chaos hooks ---
  // Visit every outbound wire channel in the deployment (fault injectors
  // arm sim::Channel fault hooks through this).
  virtual void ForEachWireChannel(const std::function<void(sim::Channel&)>& fn) = 0;
  // Per-node worker control (back-pressure windows stall one node's log
  // apply pipeline without touching the rest of the cluster).
  virtual void StopNodeWorkers(store::NodeId node) = 0;
  virtual void StartNodeWorkers(store::NodeId node) = 0;
  // Underlying cluster access for system-specific faults (node crashes,
  // recovery); null for systems of the other kind.
  virtual txn::XenicCluster* xenic_cluster() { return nullptr; }
  virtual baseline::BaselineCluster* baseline_cluster() { return nullptr; }
};

// Configuration of the system under test.
struct SystemConfig {
  enum class Kind { kXenic, kBaseline };
  Kind kind = Kind::kXenic;
  baseline::BaselineMode mode = baseline::BaselineMode::kDrtmH;  // when kBaseline
  txn::XenicFeatures features;                                   // when kXenic
  nicmodel::NicFeatures nic_features;                            // when kXenic
  net::PerfModel perf;
  uint32_t num_nodes = 6;
  uint32_t replication = 3;
  // Total copies (primary included) that must ack before commit; 0 or
  // >= replication keeps the historical wait-for-all behavior.
  uint32_t quorum = 0;
  uint32_t workers_per_node = 3;
  uint64_t nic_cache_budget = 0;        // bytes; 0 = unlimited
  uint16_t max_displacement_override = 0;  // replace every table's Dm; 0 = keep
  size_t capacity_log2_override = 0;       // replace every table's capacity; 0 = keep
  size_t log_capacity = 1 << 16;  // commit-log ring records per node (Xenic)
};

// Build a system ready to run `workload` (tables created, hooks wired; the
// database is NOT yet loaded -- call LoadWorkload).
std::unique_ptr<SystemAdapter> BuildSystem(const SystemConfig& config,
                                           workload::Workload& workload);

// Populate the database through the adapter.
void LoadWorkload(SystemAdapter& system, workload::Workload& workload);

}  // namespace xenic::harness

#endif  // SRC_HARNESS_SYSTEM_ADAPTER_H_
