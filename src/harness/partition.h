// Node-group partitioning for the parallel (multi-LP) engine.
//
// An LP partition assigns every node of a cluster map to one logical
// process. Contiguous balanced blocks are used: the repo-wide placement
// convention puts a shard's replica chain on consecutive node ids
// (ClusterMap::PrimaryOf/BackupsOf), so contiguous blocks keep most
// primary->backup traffic LP-local and split at most (replication - 1)
// chains per block boundary.
//
// The lookahead fed to Engine::ConfigureLps is derived from the perf
// model: every cross-node interaction rides a wire channel with at least
// `PerfModel::wire_latency` ns of propagation delay, so wire latency is a
// lower bound on how far in the future any cross-LP event can land --
// exactly the conservative-synchronization requirement (DESIGN.md §14).
//
// Note on cluster runs: the closed-loop harness drives all nodes from one
// shared Rng stream, so a full cluster run is only byte-identical to the
// historical transcripts when it executes as a single LP -- which is what
// RunWorkload/RunChaos do (RunConfig::engine_jobs is applied to the
// engine but a 1-LP engine executes serially by construction). Multi-LP
// execution is exercised by workloads with per-LP streams
// (bench_sim_speed's topology section, tests/par_engine_test.cc).

#ifndef SRC_HARNESS_PARTITION_H_
#define SRC_HARNESS_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/net/perf_model.h"
#include "src/sim/engine.h"
#include "src/txn/types.h"

namespace xenic::harness {

struct LpPartition {
  uint32_t num_lps = 1;
  std::vector<uint32_t> lp_of_node;  // node id -> LP id
  sim::Tick lookahead = 0;           // ns; 0 when num_lps == 1

  uint32_t NodeLp(uint32_t node) const { return lp_of_node[node]; }
};

// Balanced contiguous blocks: num_lps = min(target_lps, num_nodes) groups
// whose sizes differ by at most one, nodes in id order. target_lps == 0 is
// treated as 1.
LpPartition PartitionNodes(uint32_t num_nodes, uint32_t target_lps);

// Same, taking the node count and placement from a cluster map and
// stamping the partition with the given lookahead.
LpPartition PartitionCluster(const txn::ClusterMap& map, uint32_t target_lps,
                             sim::Tick lookahead);

// Minimum cross-node propagation delay of the model: the conservative
// lookahead for any partition of its cluster.
sim::Tick DeriveLookahead(const net::PerfModel& model);

// Fraction of the map's replica chains (primary + backups of each shard
// owner) that stay entirely inside one LP -- a locality diagnostic for
// choosing target_lps.
double LocalChainFraction(const txn::ClusterMap& map, const LpPartition& part);

}  // namespace xenic::harness

#endif  // SRC_HARNESS_PARTITION_H_
