#include "src/harness/runner.h"

#include <cassert>
#include <chrono>
#include <memory>
#include <string>

namespace xenic::harness {

namespace {

struct Shared {
  SystemAdapter* system = nullptr;
  workload::Workload* workload = nullptr;
  const RunConfig* config = nullptr;
  Rng rng;
  bool measuring = false;
  bool stopped = false;
  uint64_t counted_commits = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  Histogram latency;
  // Non-null only while RunConfig::txn_trace is the attached engine sink.
  obs::TxnTraceSink* txn_sink = nullptr;
  std::vector<obs::BucketBreakdown> txn_paths;
  // Windowed metric feeds (non-null only with RunConfig::metrics). Push
  // sites mirror the scalar counters above exactly, so the series always
  // integrates back to the RunResult totals.
  obs::WindowCounter* m_committed = nullptr;
  obs::WindowCounter* m_aborted = nullptr;
  obs::WindowHistogram* m_latency = nullptr;
};

// One closed-loop application context.
void RunContext(std::shared_ptr<Shared> sh, store::NodeId node) {
  if (sh->stopped) {
    return;
  }
  auto req = sh->workload->NextTxn(node, sh->rng);
  const uint8_t tag = req.tag;
  const sim::Tick start = sh->system->engine().now();

  // Retry closure that recurses by passing a copy of itself along; a
  // shared_ptr<function> capturing itself would be a reference cycle that
  // leaks once per transaction.
  auto attempt = [sh, node, tag, start](auto&& self, txn::TxnRequest r,
                                        uint32_t tries) -> void {
    txn::TxnRequest copy = r;
    // The system assigns the attempt's txn id only when Submit returns,
    // but the commit callback must be constructed first -- so the id
    // travels through a box filled in below. The callback can never fire
    // before Submit returns (all completion paths go through engine
    // events), so the box is always populated by the time it is read.
    auto id_box = std::make_shared<uint64_t>(0);
    const sim::Tick attempt_start = sh->system->engine().now();
    const uint64_t id = sh->system->Submit(
        node, std::move(copy),
        [sh, node, tag, start, attempt_start, id_box, self, r = std::move(r),
         tries](txn::TxnResult res) mutable {
          if (sh->stopped) {
            return;
          }
          sim::Engine& eng = sh->system->engine();
          if (res.outcome == txn::TxnOutcome::kAborted &&
              tries < sh->config->retry.max_retries) {
            if (tries == 0 && sh->measuring) {
              sh->aborts++;
              if (sh->m_aborted != nullptr) {
                sh->m_aborted->Add(eng.now());
              }
            }
            if (sh->txn_sink != nullptr && *id_box != 0) {
              // Aborted attempt: its spans are not replayed into the
              // retry's tree; the lost time shows up as the redo bucket.
              sh->txn_sink->Discard(*id_box);
            }
            // Backoff per the configured policy, scaled by the contention
            // hint the coordinator returned with the abort.
            const sim::Tick backoff =
                txn::RetryBackoff(sh->config->retry, tries, res.contention, sh->rng);
            // Detached: this completion runs under the aborted attempt's
            // trace context (the system sets it for the commit/abort
            // path), and that id was just Discard()ed above -- a plain
            // ScheduleAfter would re-attach the dead id to the wakeup and
            // surface as late/orphan spans in TxnTraceSink.
            eng.ScheduleDetachedAfter(
                backoff, [sh, self = std::move(self), r = std::move(r),
                          tries]() mutable {
                  if (!sh->stopped) {
                    self(self, std::move(r), tries + 1);
                  }
                });
            return;
          }
          bool counted = false;
          if (res.outcome == txn::TxnOutcome::kCommitted && sh->measuring) {
            sh->commits++;
            if (sh->m_committed != nullptr) {
              sh->m_committed->Add(eng.now());
            }
            if (sh->workload->CountsForThroughput(tag)) {
              counted = true;
              sh->counted_commits++;
              sh->latency.Record(eng.now() - start);
              if (sh->m_latency != nullptr) {
                sh->m_latency->Record(eng.now(), eng.now() - start);
              }
            }
          }
          if (sh->txn_sink != nullptr && *id_box != 0) {
            if (counted) {
              obs::TxnTree tree;
              sh->txn_sink->Extract(*id_box, &tree);
              sh->txn_paths.push_back(obs::ExtractCriticalPath(
                  tree, attempt_start, eng.now(), attempt_start - start));
            } else {
              sh->txn_sink->Discard(*id_box);
            }
          }
          RunContext(sh, node);
        });
    *id_box = id;
  };
  attempt(attempt, std::move(req), 0);
}

}  // namespace

RunResult RunWorkload(SystemAdapter& system, workload::Workload& workload,
                      const RunConfig& config) {
  auto sh = std::make_shared<Shared>();
  sh->system = &system;
  sh->workload = &workload;
  sh->config = &config;
  sh->rng.Seed(config.seed);

  const uint64_t events_before = system.engine().events_executed();
  const auto wall_start = std::chrono::steady_clock::now();
  system.engine().set_engine_jobs(config.engine_jobs);

  // Observability attachments. Both are pure bookkeeping: the monitor only
  // hangs histograms off resources, the trace sink only records spans.
  // Simulation results are byte-identical with or without them
  // (tools/check_determinism.sh enforces this).
  obs::ResourceMonitor monitor;
  if (config.collect_resources) {
    system.ForEachResource([&monitor](const obs::ResourceRef& ref) { monitor.Track(ref); });
  }
  sim::TraceSink* sink = config.trace != nullptr
                             ? config.trace
                             : static_cast<sim::TraceSink*>(config.txn_trace);
  if (sink != nullptr) {
    system.engine().set_trace(sink);
    if (config.trace == nullptr) {
      sh->txn_sink = config.txn_trace;
    }
  }

  // Windowed metric sources. Registration order is the export order, so it
  // is fixed here once: push counters, the TxnStats breakdown, the
  // conservation gauge, DMA, then per-resource sources in ForEachResource
  // order (deterministic per adapter).
  obs::MetricRegistry* reg = config.metrics;
  if (reg != nullptr) {
    sh->m_committed = reg->AddCounter("txn_committed");
    sh->m_aborted = reg->AddCounter("txn_aborted");
    sh->m_latency = reg->AddHistogram("txn_latency_ns");
    // One TxnStats snapshot per window close, shared by all derived sources
    // (TotalStats walks every node; pay it once per window, not per metric).
    auto snap = std::make_shared<txn::TxnStats>();
    SystemAdapter* sys = &system;
    reg->AddSampleHook([snap, sys] { *snap = sys->TotalStats(); });
    reg->AddCumulative("txn_messages", {}, [snap] { return snap->messages; });
    reg->AddCumulative("txn_remote_rounds", {}, [snap] { return snap->remote_rounds; });
    reg->AddCumulative("txn_local_fastpath", {}, [snap] { return snap->local_fastpath; });
    reg->AddCumulative("txn_app_aborted", {}, [snap] { return snap->app_aborted; });
    reg->AddCumulative("abort_lock_execute", {},
                       [snap] { return snap->abort_lock_execute; });
    reg->AddCumulative("abort_lock_local", {}, [snap] { return snap->abort_lock_local; });
    reg->AddCumulative("abort_lock_ship", {}, [snap] { return snap->abort_lock_ship; });
    reg->AddCumulative("abort_validate", {}, [snap] { return snap->abort_validate; });
    reg->AddCumulative("abort_gap", {}, [snap] { return snap->abort_gap; });
    reg->AddCumulative("abort_wounded", {}, [snap] { return snap->abort_wounded; });
    reg->AddCumulative("abort_epoch_fence", {},
                       [snap] { return snap->abort_epoch_fence; });
    reg->AddCumulative("abort_other", {}, [snap] { return snap->abort_other; });
    reg->AddCumulative("cc_waits", {}, [snap] { return snap->cc_waits; });
    reg->AddCumulative("hot_path", {}, [snap] { return snap->hot_path; });
    reg->AddCumulative("nic_log_applied", {}, [snap] { return snap->nic_log_applied; });
    reg->AddCumulative("replica_reads", {}, [snap] { return snap->replica_reads; });
    // The --msg-breakdown conservation law as a live metric: per-type
    // message counts must sum to the transport total at every boundary
    // (sampling happens between events, where the law always holds).
    reg->AddGauge("net_conservation_violations", {}, [snap] {
      const uint64_t per_type = snap->by_type.TotalMsgs();
      const uint64_t total = snap->messages;
      return per_type >= total ? per_type - total : total - per_type;
    });
    reg->AddCumulative("dma_ops", {}, [sys] { return sys->DmaOps(); });
    reg->AddCumulative("dma_bytes", {}, [sys] { return sys->DmaBytes(); });
    system.ForEachResource([reg](const obs::ResourceRef& ref) {
      const obs::MetricLabels labels = {{"res", ref.name},
                                        {"node", std::to_string(ref.node)}};
      if (ref.pool != nullptr) {
        sim::Resource* pool = ref.pool;
        reg->AddGauge("resource_queue_depth", labels,
                      [pool] { return static_cast<uint64_t>(pool->queue_depth()); });
        reg->AddCumulative("resource_busy_ns", labels,
                           [pool] { return static_cast<uint64_t>(pool->busy_time()); });
        reg->AddCumulative("resource_completed", labels,
                           [pool] { return pool->completed(); });
      } else if (ref.link != nullptr) {
        sim::Channel* link = ref.link;
        reg->AddCumulative("link_busy_ns", labels,
                           [link] { return static_cast<uint64_t>(link->busy_time()); });
        reg->AddCumulative("link_bytes_sent", labels,
                           [link] { return link->bytes_sent(); });
      }
    });
  }

  system.StartWorkers();
  for (uint32_t n = 0; n < system.num_nodes(); ++n) {
    for (uint32_t c = 0; c < config.contexts_per_node; ++c) {
      RunContext(sh, n);
    }
  }

  // Warmup.
  system.engine().RunFor(config.warmup);
  // Measure.
  sh->measuring = true;
  system.ResetStats();
  monitor.ResetWindow();
  const sim::Tick t0 = system.engine().now();
  if (reg != nullptr && config.metrics_window > 0) {
    // Slice the measurement window at metric boundaries. RunUntil never
    // schedules and the series tiles [0, measure] exactly, so this executes
    // the identical event sequence as the single RunFor below and lands the
    // clock on the same tick -- every result scalar is byte-identical.
    reg->BeginWindows(obs::WindowSeries(config.metrics_window, config.measure), t0);
    for (size_t w = 0; w < reg->series().size(); ++w) {
      system.engine().RunUntil(t0 + reg->series().StartOf(w) + reg->series().WidthOf(w));
      reg->CloseWindow(w);
    }
  } else {
    system.engine().RunFor(config.measure);
  }
  const sim::Tick window = system.engine().now() - t0;
  sh->measuring = false;

  RunResult result;
  result.txn_stats = system.TotalStats();
  // Per-type message conservation (the --msg-breakdown law), promoted from
  // a test-only check to an always-on debug assertion: transport bumps the
  // total and the per-type counter together, so divergence means a lost or
  // double-counted send.
  assert(result.txn_stats.by_type.TotalMsgs() == result.txn_stats.messages);
  result.committed = sh->commits;
  result.aborted = sh->aborts;
  result.abort_rate = sh->commits + sh->aborts == 0
                          ? 0.0
                          : static_cast<double>(sh->aborts) /
                                static_cast<double>(sh->commits + sh->aborts);
  result.tput_per_server = static_cast<double>(sh->counted_commits) /
                           (static_cast<double>(window) / 1e9) / system.num_nodes();
  result.latency = sh->latency;
  result.wire_utilization = system.WireUtilization(window);
  result.dma_ops = system.DmaOps();
  result.dma_bytes = system.DmaBytes();
  result.host_utilization = system.HostUtilization(window);
  result.nic_utilization = system.NicUtilization(window);
  result.measure_window = window;
  if (config.collect_resources) {
    result.resources = monitor.Snapshot(window);
  }

  // Tear down: let in-flight work drain without restarting contexts.
  sh->stopped = true;
  system.StopWorkers();
  system.engine().RunFor(200 * sim::kNsPerUs);
  if (sink != nullptr) {
    system.engine().set_trace(nullptr);
  }
  result.txn_paths = std::move(sh->txn_paths);

  result.sim_events = system.engine().events_executed() - events_before;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  result.sim_events_per_sec =
      result.wall_seconds > 0 ? static_cast<double>(result.sim_events) / result.wall_seconds : 0;
  return result;
}

}  // namespace xenic::harness
